// Quickstart: trace a small program with the builder DSL, estimate it on a
// default hardware profile, and print the full report.
//
//   $ ./quickstart
//
// The program is a toy phase-estimation-flavored circuit mixing Cliffords,
// T gates, Toffolis, rotations, and measurements, so every part of the
// estimation pipeline (layout, rotation synthesis, code distance, T
// factories, rQOPS) participates.
#include <cstdio>

#include "circuit/builder.hpp"
#include "core/estimator.hpp"
#include "counter/logical_counter.hpp"
#include "report/report.hpp"

int main() {
  using namespace qre;

  // 1. Specify the algorithm by tracing it (the Q#/Qiskit stand-in).
  LogicalCounter counter;
  ProgramBuilder bld(counter);

  Register data = bld.alloc_register(8);
  Register anc = bld.alloc_register(4);
  for (QubitId q : data) bld.h(q);
  for (int layer = 0; layer < 50; ++layer) {
    for (std::size_t i = 0; i < anc.size(); ++i) {
      bld.ccx(data[2 * i], data[2 * i + 1], anc[i]);
    }
    bld.t(data[0]);
    bld.rz(0.02 * layer + 0.01, data[3]);
    for (std::size_t i = 0; i < anc.size(); ++i) {
      bld.ccx(data[2 * i], data[2 * i + 1], anc[i]);
    }
  }
  for (QubitId q : data) bld.mz(q);
  bld.free_register(anc);
  bld.free_register(data);

  std::printf("Pre-layout counts: %s\n\n", counter.counts().to_json().dump().c_str());

  // 2. Pick a hardware profile and an error budget; estimate.
  EstimationInput input =
      EstimationInput::for_profile(counter.counts(), "qubit_gate_ns_e3", 1e-3);
  ResourceEstimate result = estimate(input);

  // 3. Inspect the result (all eight output groups of the paper, IV-D).
  std::printf("%s\n", report_to_text(result).c_str());
  std::printf("%s\n", space_diagram(result).c_str());
  return 0;
}
