// Estimating the factoring kernel: modular exponentiation, the quantum part
// of Shor's algorithm, built here from windowed modular multiplication
// (Gidney, arXiv:1905.07682). A single controlled modular multiplication is
// traced and composed 2n times with LogicalCounts::repeated/sequential —
// the "known logical estimates" workflow of paper Section IV-B3 — so a
// RSA-2048 estimate takes seconds.
//
// For small moduli the very same circuits run on the sparse simulator; this
// example first demonstrates 7^e mod 15 evaluated by the quantum circuit.
#include <cstdio>

#include "arith/modular.hpp"
#include "circuit/builder.hpp"
#include "common/format.hpp"
#include "core/estimator.hpp"
#include "sim/sparse_simulator.hpp"

int main() {
  using namespace qre;

  // --- 1. Functional check on the simulator -------------------------------.
  std::printf("Simulated modular exponentiation, 7^e mod 15:\n");
  for (std::uint64_t e = 0; e < 8; ++e) {
    SparseSimulator sim(e + 1);
    ProgramBuilder bld(sim);
    Register exponent = bld.alloc_register(3);
    Register acc = bld.alloc_register(4);
    bld.xor_constant(exponent, e);
    bld.xor_constant(acc, 1);
    mod_exp(bld, 7, 15, exponent, acc, 2);
    std::printf("  e=%llu -> %llu (classical: %llu)\n",
                static_cast<unsigned long long>(e),
                static_cast<unsigned long long>(sim.peek_classical(acc)),
                static_cast<unsigned long long>(mod_pow(7, e, 15)));
  }

  // --- 2. Resource estimates for cryptographic sizes ----------------------.
  std::printf("\nFactoring-kernel estimates (budget 1e-3, qubit_maj_ns_e6, floquet):\n");
  std::printf("%-10s %-14s %-6s %-16s %-12s\n", "modulus", "logicalQubits", "d",
              "physicalQubits", "runtime");
  for (std::uint64_t bits : {512ull, 1024ull, 2048ull}) {
    LogicalCounts counts = factoring_counts(bits);
    EstimationInput input = EstimationInput::for_profile(counts, "qubit_maj_ns_e6", 1e-3);
    ResourceEstimate e = estimate(input);
    std::printf("%-10llu %-14llu %-6llu %-16s %-12s\n",
                static_cast<unsigned long long>(bits),
                static_cast<unsigned long long>(e.algorithmic_logical_qubits),
                static_cast<unsigned long long>(e.logical_qubit.code_distance),
                format_count(e.total_physical_qubits).c_str(),
                format_duration_ns(e.runtime_ns).c_str());
  }
  std::printf("\nThe estimate composes one traced controlled modular multiplication\n"
              "2n times via LogicalCounts::repeated — the AccountForEstimates\n"
              "pattern of paper Section IV-B3.\n");
  return 0;
}
