// Customizing every hardware knob of Section IV-C: a custom qubit model (a
// preset with overrides and a fully custom one), a custom QEC scheme given
// as formula strings, a custom distillation unit, an explicit error-budget
// partition, and T-factory constraints — all specified via JSON, as the
// cloud service accepts them.
#include <cstdio>

#include "arith/multipliers.hpp"
#include "common/format.hpp"
#include "core/estimator.hpp"
#include "report/report.hpp"

int main() {
  using namespace qre;

  LogicalCounts counts = multiplier_counts(MultiplierKind::kWindowed, 256);

  // --- Custom qubit model: start from a preset, override two fields -------.
  json::Value qubit_json = json::parse(R"({
    "name": "qubit_maj_ns_e4",
    "tGateErrorRate": 0.02,
    "oneQubitMeasurementTime": 150
  })");

  // --- Custom QEC scheme as formula strings --------------------------------.
  json::Value qec_json = json::parse(R"({
    "errorCorrectionThreshold": 0.008,
    "crossingPrefactor": 0.06,
    "logicalCycleTime": "4 * oneQubitMeasurementTime * codeDistance",
    "physicalQubitsPerLogicalQubit": "3 * codeDistance * codeDistance + 4 * codeDistance"
  })");

  // --- Custom distillation unit --------------------------------------------.
  json::Value unit_json = json::parse(R"({
    "name": "15-to-1 custom",
    "numInputTs": 15,
    "numOutputTs": 1,
    "failureProbabilityFormula": "15 * inputErrorRate + 356 * cliffordErrorRate",
    "outputErrorRateFormula": "35 * inputErrorRate ^ 3 + 7.1 * cliffordErrorRate",
    "physicalQubitSpecification": {"numUnitQubits": 24, "durationFormula": "20 * oneQubitMeasurementTime"},
    "logicalQubitSpecification": {"numUnitQubits": 16, "durationInLogicalCycles": 15}
  })");

  EstimationInput input;
  input.counts = counts;
  input.qubit = QubitParams::from_json(qubit_json);
  input.qec = QecScheme::from_json(qec_json, input.qubit.instruction_set);
  input.budget = ErrorBudget::from_parts(4e-5, 4e-5, 2e-5);
  input.distillation_units = {DistillationUnit::from_json(unit_json)};
  input.constraints = Constraints::from_json(json::parse(R"({"maxTFactories": 10})"));

  ResourceEstimate e = estimate(input);
  std::printf("Custom hardware estimate for the 256-bit windowed multiplier:\n\n%s\n",
              report_to_text(e).c_str());

  std::printf("Full JSON result:\n%s\n", report_to_json(e).pretty().c_str());
  return 0;
}
