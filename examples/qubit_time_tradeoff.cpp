// The paper's qubit-time trade-off, reproduced as a frontier job: capping
// the number of parallel T factories sheds factory qubits at the price of a
// stretched schedule, and the achievable (physical qubits, runtime) pairs
// form a Pareto frontier. This example runs the 2048-bit windowed
// multiplier (the paper's flagship workload) through the adaptive explorer
// — the schema-v2 "frontier" job kind — instead of a fixed cap grid, and
// prints the non-dominated set plus the probe statistics.
//
// The same job as a JSON document lives in examples/frontier_job.json:
//   qre_cli examples/frontier_job.json
#include <cstdio>

#include "api/api.hpp"
#include "arith/multipliers.hpp"
#include "json/json.hpp"

int main() {
  using namespace qre;

  LogicalCounts counts = multiplier_counts(MultiplierKind::kWindowed, 2048);

  // The factory footprint is a few percent of the total for this workload,
  // so the qubit tolerance is set well below the default: the explorer
  // should resolve the factory trade-off, not dismiss it as flat.
  json::Object frontier;
  frontier.emplace_back("maxProbes", 32);
  frontier.emplace_back("qubitTolerance", 0.002);
  frontier.emplace_back("runtimeTolerance", 0.05);

  json::Object job;
  job.emplace_back("schemaVersion", 2);
  job.emplace_back("logicalCounts", counts.to_json());
  json::Object qubit;
  qubit.emplace_back("name", "qubit_gate_ns_e3");
  job.emplace_back("qubitParams", json::Value(std::move(qubit)));
  job.emplace_back("errorBudget", 1e-4);
  job.emplace_back("frontier", json::Value(std::move(frontier)));

  api::EstimateRequest request = api::EstimateRequest::parse(json::Value(std::move(job)));
  api::EstimateResponse response = api::run(request);
  if (!response.success) {
    std::fprintf(stderr, "frontier job failed: %s\n", response.diagnostics.summary().c_str());
    return 1;
  }

  std::printf("Qubit-time trade-off: 2048-bit windowed multiplication on qubit_gate_ns_e3\n\n");
  std::printf("%-14s %-16s %-12s\n", "maxTFactories", "physicalQubits", "runtime(s)");
  for (const json::Value& point : response.result.at("frontier").as_array()) {
    const json::Value* cap = point.find("maxTFactories");
    std::printf("%-14s %-16llu %-12.3g\n",
                cap != nullptr ? std::to_string(cap->as_uint()).c_str() : "(uncapped)",
                static_cast<unsigned long long>(point.at("physicalQubits").as_uint()),
                point.at("runtime").as_double() * 1e-9);
  }
  const json::Value& stats = response.result.at("frontierStats");
  std::printf("\n%zu probes in %zu waves kept %zu non-dominated points\n",
              static_cast<std::size_t>(stats.at("numProbes").as_uint()),
              static_cast<std::size_t>(stats.at("numWaves").as_uint()),
              static_cast<std::size_t>(stats.at("numPoints").as_uint()));
  return 0;
}
