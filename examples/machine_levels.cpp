// The paper's Section II framing from the machine side: what does a device
// with a given number of physical qubits achieve on each hardware profile?
// Classifies machines into the three quantum computing implementation
// levels (foundational / resilient / scale) and reports rQOPS — including
// the ~1e6 rQOPS "first quantum supercomputer" milestone and the physical
// qubit budget each profile needs to reach Level 3.
#include <cstdio>

#include "common/error.hpp"
#include "common/format.hpp"
#include "core/advantage.hpp"

int main() {
  using namespace qre;

  constexpr double kTargetLogicalError = 1e-12;  // per logical operation

  std::printf("Machine capability by physical qubit budget (target P_L = 1e-12)\n\n");
  std::printf("%-18s %-14s %-5s %-14s %-10s %-22s\n", "profile", "physQubits", "d",
              "logicalQubits", "rQOPS", "level");
  for (const std::string& name : QubitParams::preset_names()) {
    QubitParams qubit = QubitParams::from_name(name);
    QecScheme scheme = QecScheme::default_for(qubit.instruction_set);
    for (std::uint64_t budget : {10'000ull, 1'000'000ull, 100'000'000ull}) {
      MachineCapability cap = machine_capability(qubit, scheme, budget, kTargetLogicalError);
      std::printf("%-18s %-14s %-5llu %-14llu %-10s %-22s\n", name.c_str(),
                  format_count(budget).c_str(),
                  static_cast<unsigned long long>(cap.code_distance),
                  static_cast<unsigned long long>(cap.logical_qubits),
                  format_sci(cap.rqops).c_str(),
                  std::string(to_string(cap.level)).c_str());
    }
    std::printf("\n");
  }

  std::printf("Physical qubits needed to reach Level 3 (1e12 reliable ops, 1e6 s,\n"
              ">= 1e6 rQOPS):\n");
  for (const std::string& name : QubitParams::preset_names()) {
    QubitParams qubit = QubitParams::from_name(name);
    QecScheme scheme = QecScheme::default_for(qubit.instruction_set);
    try {
      std::uint64_t needed = physical_qubits_for_scale(qubit, scheme, kTargetLogicalError);
      std::printf("  %-18s %s physical qubits\n", name.c_str(),
                  format_count(needed).c_str());
    } catch (const Error& e) {
      std::printf("  %-18s not reachable (%s)\n", name.c_str(), e.what());
    }
  }
  return 0;
}
