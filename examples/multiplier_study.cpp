// The paper's Section V use case in miniature: estimate the three integer
// multiplication algorithms (standard long multiplication, Karatsuba,
// windowed) for a few input sizes on qubit_maj_ns_e4 with the floquet code,
// and print a comparison — the workload behind Figures 3 and 4.
#include <cstdio>

#include "arith/multipliers.hpp"
#include "common/format.hpp"
#include "core/estimator.hpp"

int main() {
  using namespace qre;

  std::printf("Multiplication study (qubit_maj_ns_e4, floquet code, budget 1e-4)\n\n");
  std::printf("%-12s %-6s %-14s %-5s %-16s %-12s\n", "algorithm", "bits", "logicalQubits",
              "d", "physicalQubits", "runtime");

  for (MultiplierKind kind :
       {MultiplierKind::kStandard, MultiplierKind::kKaratsuba, MultiplierKind::kWindowed}) {
    for (std::uint64_t bits : {64ull, 256ull, 1024ull}) {
      LogicalCounts counts = multiplier_counts(kind, bits);
      EstimationInput input = EstimationInput::for_profile(counts, "qubit_maj_ns_e4", 1e-4);
      ResourceEstimate e = estimate(input);
      std::printf("%-12s %-6llu %-14llu %-5llu %-16s %-12s\n",
                  std::string(to_string(kind)).c_str(),
                  static_cast<unsigned long long>(bits),
                  static_cast<unsigned long long>(e.algorithmic_logical_qubits),
                  static_cast<unsigned long long>(e.logical_qubit.code_distance),
                  format_count(e.total_physical_qubits).c_str(),
                  format_duration_ns(e.runtime_ns).c_str());
    }
    std::printf("\n");
  }

  std::printf("Conclusion to compare with the paper: even this classically trivial\n"
              "task needs millions of physical qubits, and the asymptotically best\n"
              "algorithm (Karatsuba) is not the practical winner at these sizes.\n");
  return 0;
}
