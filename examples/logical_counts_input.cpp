// The "known logical estimates" input path (paper Section IV-B3): instead
// of tracing a program, start from pre-computed logical counts — the
// AccountForEstimates / LogicalCounts equivalent — provided as JSON, and
// convert them to physical estimates on two different hardware profiles.
//
// The counts below are the paper's physical-chemistry-scale example: a
// quantum dynamics workload with ~100 logical qubits and ~1e6 T gates.
#include <cstdio>

#include "common/format.hpp"
#include "core/estimator.hpp"
#include "report/report.hpp"

int main() {
  using namespace qre;

  json::Value counts_json = json::parse(R"({
    "numQubits": 100,
    "tCount": 1000000,
    "rotationCount": 30000,
    "rotationDepth": 11000,
    "cczCount": 250000,
    "measurementCount": 150000
  })");
  LogicalCounts counts = LogicalCounts::from_json(counts_json);

  for (const char* profile : {"qubit_gate_ns_e3", "qubit_maj_ns_e6"}) {
    EstimationInput input = EstimationInput::for_profile(counts, profile, 1e-3);
    ResourceEstimate e = estimate(input);
    std::printf("--- %s ---\n", profile);
    std::printf("  code distance        %llu\n",
                static_cast<unsigned long long>(e.logical_qubit.code_distance));
    std::printf("  T states             %s\n", format_count(e.num_tstates).c_str());
    std::printf("  T states/rotation    %llu\n",
                static_cast<unsigned long long>(e.num_ts_per_rotation));
    std::printf("  T factories          %llu\n",
                static_cast<unsigned long long>(e.num_t_factories));
    std::printf("  physical qubits      %s\n",
                format_count(e.total_physical_qubits).c_str());
    std::printf("  runtime              %s\n", format_duration_ns(e.runtime_ns).c_str());
    std::printf("  rQOPS                %s\n\n", format_sci(e.rqops).c_str());
  }

  std::printf("The same counts can be loaded from a file with\n"
              "  LogicalCounts::from_json(json::parse_file(path))\n");
  return 0;
}
