// The QIR input path (paper Section IV-B2): emit a program as QIR
// base-profile text (as PyQIR or a compiler would), then feed that text to
// the estimator — program -> QIR -> logical counts -> physical estimate.
#include <cstdio>

#include "arith/adders.hpp"
#include "circuit/builder.hpp"
#include "core/estimator.hpp"
#include "counter/logical_counter.hpp"
#include "qir/qir_emitter.hpp"
#include "qir/qir_reader.hpp"
#include "report/report.hpp"

int main() {
  using namespace qre;

  // Produce QIR for an 8-bit adder with carry-out.
  qir::QirEmitter emitter("adder8");
  {
    ProgramBuilder bld(emitter);
    Register a = bld.alloc_register(8);
    Register b = bld.alloc_register(8);
    QubitId carry = bld.alloc();
    add_into(bld, a, b, carry);
    for (QubitId q : b) bld.mz(q);
    bld.mz(carry);
  }
  std::string qir_text = emitter.finish();
  std::printf("=== Emitted QIR (first lines) ===\n");
  std::size_t shown = 0;
  for (std::size_t pos = 0; pos < qir_text.size() && shown < 12; ++shown) {
    std::size_t eol = qir_text.find('\n', pos);
    std::printf("%s\n", qir_text.substr(pos, eol - pos).c_str());
    pos = eol + 1;
  }
  std::printf("... (%zu bytes total)\n\n", qir_text.size());

  // Replay the QIR into the counter and estimate.
  LogicalCounter counter;
  qir::replay(qir_text, counter);
  std::printf("Counts extracted from QIR: %s\n\n",
              counter.counts().to_json().dump().c_str());

  EstimationInput input =
      EstimationInput::for_profile(counter.counts(), "qubit_gate_ns_e4", 1e-3);
  ResourceEstimate e = estimate(input);
  std::printf("%s\n", report_to_text(e).c_str());
  return 0;
}
