#!/usr/bin/env bash
# Gates CI on sweep-throughput regressions.
#
# Compares a freshly measured BENCH_estimator.json against the committed
# one. Raw items/s depends on the runner, so the gate compares the KERNEL
# ADVANTAGE instead: sweep_items_per_sec normalized by the same run's
# sweep_items_per_sec_scalar (the scalar path on the same grid, same
# machine, same load). A drop of more than the threshold in that ratio
# means the batch kernel itself regressed, not the hardware.
#
# Usage: scripts/check_bench_regression.sh <fresh.json> [committed.json]
set -euo pipefail

fresh="${1:?usage: check_bench_regression.sh <fresh.json> [committed.json]}"
committed="${2:-BENCH_estimator.json}"
threshold="${QRE_BENCH_REGRESSION_THRESHOLD:-0.10}"

python3 - "$fresh" "$committed" "$threshold" <<'PY'
import json
import sys

fresh_path, committed_path, threshold = sys.argv[1], sys.argv[2], float(sys.argv[3])

def speedup(path):
    with open(path) as f:
        metrics = json.load(f)["metrics"]
    kernel = metrics["sweep_items_per_sec"]
    scalar = metrics["sweep_items_per_sec_scalar"]
    if scalar <= 0:
        sys.exit(f"{path}: sweep_items_per_sec_scalar must be positive, got {scalar}")
    return kernel, scalar, kernel / scalar

fresh_kernel, fresh_scalar, fresh_ratio = speedup(fresh_path)
committed_kernel, committed_scalar, committed_ratio = speedup(committed_path)

print(f"committed: kernel {committed_kernel:10.0f} items/s  "
      f"scalar {committed_scalar:10.0f} items/s  advantage {committed_ratio:.3f}x")
print(f"fresh:     kernel {fresh_kernel:10.0f} items/s  "
      f"scalar {fresh_scalar:10.0f} items/s  advantage {fresh_ratio:.3f}x")

floor = committed_ratio * (1.0 - threshold)
if fresh_ratio < floor:
    sys.exit(f"REGRESSION: kernel advantage {fresh_ratio:.3f}x is more than "
             f"{threshold:.0%} below the committed {committed_ratio:.3f}x "
             f"(floor {floor:.3f}x)")
print(f"OK: kernel advantage within {threshold:.0%} of the committed ratio "
      f"(floor {floor:.3f}x)")
PY
