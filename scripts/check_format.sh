#!/usr/bin/env bash
# Checks (never rewrites) clang-format conformance of the C++ files changed
# relative to a base ref, per the .clang-format at the repo root. Scoped to
# changed files deliberately: the baseline was adopted without a mass
# reformat, so only lines you touch are held to it.
#
# Usage: scripts/check_format.sh [base-ref]
#
# The base defaults to the merge base with origin/main (falling back to
# HEAD~1, so push-to-main CI checks the commit itself). Exits 0 with a
# notice when clang-format is not installed — the CI static-analysis job
# pins one; local runs without it just skip.
set -euo pipefail

repo_root=$(cd "$(dirname "$0")/.." && pwd)
cd "$repo_root"

clang_format=""
for candidate in clang-format-18 clang-format; do
  if command -v "$candidate" > /dev/null 2>&1; then
    clang_format=$candidate
    break
  fi
done
if [ -z "$clang_format" ]; then
  echo "check_format: clang-format not installed; skipping (CI runs it)" >&2
  exit 0
fi

base=${1:-}
if [ -z "$base" ]; then
  base=$(git merge-base HEAD origin/main 2>/dev/null || true)
fi
if [ -z "$base" ] || [ "$base" = "$(git rev-parse HEAD)" ]; then
  base=$(git rev-parse HEAD~1 2>/dev/null || true)
fi
if [ -z "$base" ]; then
  echo "check_format: no base ref to diff against; skipping" >&2
  exit 0
fi

changed=$(git diff --name-only --diff-filter=ACMR "$base" -- \
            '*.cpp' '*.hpp' | sort -u)
if [ -z "$changed" ]; then
  echo "check_format: no C++ files changed since ${base:0:12}"
  exit 0
fi

status=0
while IFS= read -r file; do
  [ -f "$file" ] || continue
  if ! "$clang_format" --dry-run -Werror "$file"; then
    status=1
  fi
done <<<"$changed"

count=$(wc -l <<<"$changed")
if [ "$status" -eq 0 ]; then
  echo "check_format: $count changed file(s) conform ($clang_format)"
else
  echo "check_format: formatting violations above; fix with: $clang_format -i <file>" >&2
fi
exit "$status"
