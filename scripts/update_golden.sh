#!/usr/bin/env bash
# Regenerates the golden-file regression corpus under tests/data/golden/.
#
# Usage: scripts/update_golden.sh [build-dir]   (default: build)
#
# Run this ONLY after a deliberate modeling or serialization change, and
# review the resulting diff like any other code change: the goldens are the
# contract that the Figure 3/4 reproductions and the frontier explorer keep
# producing exactly the numbers they produce today.
set -euo pipefail

build_dir=${1:-build}
repo_root=$(cd "$(dirname "$0")/.." && pwd)

cmake --build "$build_dir" --target test_golden -j
mkdir -p "$repo_root/tests/data/golden"
QRE_UPDATE_GOLDEN=1 "$build_dir/test_golden"
echo
echo "Golden files refreshed; review with: git diff tests/data/golden/"
