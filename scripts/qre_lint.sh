#!/usr/bin/env bash
# Builds (if needed) and runs the qre_lint project-invariant linter against
# the repo root. See tools/qre_lint.cpp for what it checks and
# docs/static_analysis.md for the conventions it enforces.
#
# Usage: scripts/qre_lint.sh [build-dir]   (default: build)
set -euo pipefail

build_dir=${1:-build}
repo_root=$(cd "$(dirname "$0")/.." && pwd)

if [ ! -f "$build_dir/CMakeCache.txt" ]; then
  cmake -B "$build_dir" -S "$repo_root" > /dev/null
fi
cmake --build "$build_dir" --target qre_lint -j > /dev/null
"$build_dir/qre_lint" "$repo_root"
