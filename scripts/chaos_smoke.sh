#!/usr/bin/env bash
# Chaos drill for the resilience layer, used by the CI `chaos` job and
# runnable locally: starts qre_serve with fault-injection failpoints armed
# (build with -DQRE_FAILPOINTS=ON, the default), hammers the endpoint
# surface while errors, delays, and cancellations fire, then proves the
# invariants that matter:
#
#   - the daemon never crashes (healthz answers throughout),
#   - requestsTotal stays monotone across probes,
#   - a DELETE on a running job reaches the terminal "cancelled" state,
#   - a crash failpoint between temp-write and rename kills the process
#     but leaves the persistent store fully readable (corruptRecords == 0),
#   - a clean restart over the same store serves again and drains with
#     exit 0.
#
# usage: scripts/chaos_smoke.sh [build-dir]   (default: build)
set -euo pipefail

BUILD_DIR=${1:-build}
REPO_DIR=$(cd "$(dirname "$0")/.." && pwd)
SERVE="$REPO_DIR/$BUILD_DIR/qre_serve"
CLI="$REPO_DIR/$BUILD_DIR/qre_cli"
JOB="$REPO_DIR/examples/fig4_sweep_job.json"
WORK_DIR=$(mktemp -d)
SERVER_PID=""

cleanup() {
  if [[ -n "$SERVER_PID" ]] && kill -0 "$SERVER_PID" 2>/dev/null; then
    kill -KILL "$SERVER_PID" 2>/dev/null || true
  fi
  rm -rf "$WORK_DIR"
}
trap cleanup EXIT

fail() {
  echo "FAIL: $1" >&2
  exit 1
}

# curl with retries: the read-fault failpoint intentionally drops a slice
# of connections, so any single probe may fail without meaning anything.
# All the retried requests here are idempotent or safely repeatable.
rcurl() {
  local attempt
  for attempt in $(seq 1 10); do
    if curl -fsS --max-time 30 "$@" 2>/dev/null; then
      return 0
    fi
    sleep 0.1
  done
  echo "rcurl: giving up after 10 attempts: $*" >&2
  return 1
}

start_server() {  # start_server <port-file> [extra args...]
  local port_file=$1
  shift
  "$SERVE" --port 0 --port-file "$port_file" --job-workers 1 \
    --cache-dir "$CACHE_DIR" "$@" &
  SERVER_PID=$!
  for _ in $(seq 1 100); do
    [[ -s "$port_file" ]] && break
    kill -0 "$SERVER_PID" 2>/dev/null || fail "qre_serve died during startup"
    sleep 0.1
  done
  [[ -s "$port_file" ]] || fail "port file never appeared"
  BASE="http://127.0.0.1:$(cat "$port_file")"
}

stop_server() {  # graceful TERM, exit must be 0
  kill -TERM "$SERVER_PID"
  for _ in $(seq 1 100); do
    kill -0 "$SERVER_PID" 2>/dev/null || break
    sleep 0.1
  done
  if wait "$SERVER_PID"; then
    SERVER_PID=""
  else
    fail "qre_serve exited non-zero after SIGTERM"
  fi
}

[[ -x "$SERVE" ]] || fail "$SERVE not built"
[[ -x "$CLI" ]] || fail "$CLI not built"

if ! "$SERVE" --help | grep -q -- '--failpoints'; then
  fail "qre_serve lacks --failpoints (built from an old tree?)"
fi

CACHE_DIR="$WORK_DIR/cache"

# --- leg 1: error + delay injection under load ----------------------------
# A quarter of estimate evaluations throw, every store persist stalls a
# little, and connection reads occasionally fail. The daemon must shrug all
# of it off: errors isolate per item, broken connections close cleanly.
start_server "$WORK_DIR/port1" --failpoints \
  'engine.evaluate.before=25%error;store.persist.before_write=delay(10);server.conn.before_read=5%error'
echo "chaos: serving at $BASE with error/delay schedule"

rcurl "$BASE/healthz" | jq -e '.status == "ok"' > /dev/null || fail "healthz (pre)"

PREV_TOTAL=0
for round in $(seq 1 6); do
  # Sync estimates: 4xx/5xx-free transport is NOT guaranteed per request
  # (injected read faults drop connections), so retry-loop with curl's
  # non-fatal mode and only require overall progress.
  curl -sS -X POST --data-binary "@$JOB" "$BASE/v2/estimate" > /dev/null 2>&1 || true
  # Async submit + poll to a terminal state (failed is fine — 25% of items
  # throw — crashed or stuck is not).
  ID=$(curl -sS -X POST --data-binary "@$JOB" "$BASE/v2/jobs" | jq -er '.id' 2>/dev/null) \
    || ID=""
  if [[ -n "$ID" ]]; then
    for _ in $(seq 1 200); do
      STATE=$(curl -sS "$BASE/v2/jobs/$ID" | jq -er '.status' 2>/dev/null) || STATE=""
      case "$STATE" in succeeded|failed|cancelled) break ;; esac
      sleep 0.1
    done
    case "$STATE" in
      succeeded|failed|cancelled) ;;
      *) fail "async job $ID never reached a terminal state (last: '$STATE')" ;;
    esac
  fi

  kill -0 "$SERVER_PID" 2>/dev/null || fail "qre_serve crashed during round $round"
  TOTAL=$(rcurl "$BASE/metrics" | jq -er '.server.requestsTotal') \
    || fail "metrics unreadable in round $round"
  [[ "$TOTAL" -ge "$PREV_TOTAL" ]] || fail "requestsTotal went backwards ($PREV_TOTAL -> $TOTAL)"
  PREV_TOTAL=$TOTAL
done

rcurl "$BASE/metrics" | jq -e '.failpoints.triggered | length >= 1' > /dev/null \
  || fail "no failpoint ever triggered — schedule not armed?"

# --- leg 2: cancel a running job mid-sweep --------------------------------
# Re-arm over the live process is not possible (failpoints arm at startup),
# but the delay schedule already makes sweeps slow enough to catch running.
ID=$(rcurl -X POST --data-binary "@$JOB" "$BASE/v2/jobs" | jq -er '.id') \
  || fail "cancel-drill submit"
for _ in $(seq 1 100); do
  STATE=$(rcurl "$BASE/v2/jobs/$ID" | jq -er '.status') || STATE=""
  [[ -n "$STATE" && "$STATE" != "queued" ]] && break
  sleep 0.05
done
CODE=$(curl -sS -o "$WORK_DIR/cancel.json" -w '%{http_code}' -X DELETE "$BASE/v2/jobs/$ID")
case "$CODE" in
  200|202) ;;  # queued-cancel or running-cancel, both fine
  409) ;;      # the job beat us to a terminal state — acceptable in chaos
  *) fail "DELETE /v2/jobs/$ID answered HTTP $CODE" ;;
esac
if [[ "$CODE" == "200" || "$CODE" == "202" ]]; then
  for _ in $(seq 1 200); do
    STATE=$(rcurl "$BASE/v2/jobs/$ID" | jq -er '.status') || STATE=""
    [[ "$STATE" == "cancelled" ]] && break
    sleep 0.05
  done
  [[ "$STATE" == "cancelled" ]] || fail "cancelled job stuck in '$STATE'"
fi

stop_server
echo "chaos: error/delay leg survived; store at $CACHE_DIR"

# --- leg 3: crash between temp-write and rename ---------------------------
# Seed a fresh dir with the leg-1 snapshot, then run a batch the store has
# never seen: the new records make the persist dirty, the armed crash kills
# the process (exit 42) mid-persist, and the seeded snapshot must survive
# byte-identical.
[[ -s "$CACHE_DIR/estimates.qrestore" ]] || fail "no store snapshot after leg 1"
CRASH_DIR="$WORK_DIR/crash-cache"
mkdir -p "$CRASH_DIR"
cp "$CACHE_DIR/estimates.qrestore" "$CRASH_DIR/estimates.qrestore"
cp "$CACHE_DIR/estimates.qrestore" "$WORK_DIR/before_crash.qrestore"
cat > "$WORK_DIR/crash_job.json" <<'EOF'
{
  "schemaVersion": 2,
  "logicalCounts": {"numQubits": 12, "tCount": 500},
  "qubitParams": {"name": "qubit_gate_ns_e3"},
  "items": [
    {"errorBudget": 0.01},
    {"errorBudget": 0.001}
  ]
}
EOF

set +e
QRE_FAILPOINTS='store.persist.before_rename=crash' \
  "$CLI" --cache-dir "$CRASH_DIR" "$WORK_DIR/crash_job.json" > /dev/null 2>&1
CRASH_EXIT=$?
set -e
[[ "$CRASH_EXIT" == "42" ]] \
  || fail "crash failpoint did not fire (exit $CRASH_EXIT, expected 42)"

cmp -s "$CRASH_DIR/estimates.qrestore" "$WORK_DIR/before_crash.qrestore" \
  || fail "crash mutated the live snapshot"
"$CLI" store info "$CRASH_DIR/estimates.qrestore" \
  | jq -e '.corruptRecords == 0 and .records >= 1' > /dev/null \
  || fail "store corrupt after crash drill"

# --- leg 4: clean restart over the survived store -------------------------
start_server "$WORK_DIR/port2"
echo "chaos: restarted cleanly at $BASE"
curl -fsS "$BASE/healthz" | jq -e '.status == "ok"' > /dev/null || fail "healthz (restart)"
curl -fsS "$BASE/metrics" | jq -e '.store.enabled == true and .store.loaded >= 1' \
  > /dev/null || fail "restart did not load the survived store"
STATUS=$(curl -sS -o /dev/null -w '%{http_code}' \
              -X POST --data-binary "@$JOB" "$BASE/v2/estimate")
[[ "$STATUS" == "200" ]] || fail "estimate after restart returned HTTP $STATUS"
stop_server

echo "chaos: OK"
