#!/usr/bin/env bash
# End-to-end smoke test of the qre_serve daemon, used by CI and runnable
# locally: starts the server on an ephemeral port, exercises the endpoint
# surface with curl (health, version, profiles, validate, sync estimate of
# the checked-in Figure 4 sweep, async job lifecycle, NDJSON streaming,
# metrics), then checks that SIGTERM drains gracefully with exit code 0.
#
# usage: scripts/server_smoke.sh [build-dir]   (default: build)
#
# The observability surface is part of the contract: the first daemon runs
# with --trace-file and --access-log, and the script asserts the Prometheus
# exposition parses, X-Request-Id round-trips into the access log, GET
# /v2/trace exports spans, and the drain writes a loadable trace file.
#
# The last leg restarts the daemon against the same --cache-dir and checks
# that every previously seen job is answered from the persistent store:
# byte-identical response, zero raw estimates in the fresh process.
set -euo pipefail

BUILD_DIR=${1:-build}
REPO_DIR=$(cd "$(dirname "$0")/.." && pwd)
SERVE="$REPO_DIR/$BUILD_DIR/qre_serve"
JOB="$REPO_DIR/examples/fig4_sweep_job.json"
FRONTIER_JOB="$REPO_DIR/examples/frontier_job.json"
WORK_DIR=$(mktemp -d)
PORT_FILE="$WORK_DIR/port"
SERVER_PID=""

cleanup() {
  if [[ -n "$SERVER_PID" ]] && kill -0 "$SERVER_PID" 2>/dev/null; then
    kill -KILL "$SERVER_PID" 2>/dev/null || true
  fi
  rm -rf "$WORK_DIR"
}
trap cleanup EXIT

fail() {
  echo "FAIL: $1" >&2
  exit 1
}

[[ -x "$SERVE" ]] || fail "$SERVE not built"

CACHE_DIR="$WORK_DIR/cache"
TRACE_FILE="$WORK_DIR/trace.json"
ACCESS_LOG="$WORK_DIR/access.log"
"$SERVE" --port 0 --port-file "$PORT_FILE" --job-workers 1 --cache-dir "$CACHE_DIR" \
         --trace-file "$TRACE_FILE" --access-log "$ACCESS_LOG" &
SERVER_PID=$!

for _ in $(seq 1 100); do
  [[ -s "$PORT_FILE" ]] && break
  kill -0 "$SERVER_PID" 2>/dev/null || fail "qre_serve died during startup"
  sleep 0.1
done
[[ -s "$PORT_FILE" ]] || fail "port file never appeared"
BASE="http://127.0.0.1:$(cat "$PORT_FILE")"
echo "smoke: serving at $BASE"

# --- probes ---------------------------------------------------------------
curl -fsS "$BASE/healthz" | jq -e '.status == "ok"' > /dev/null || fail "healthz"
curl -fsS "$BASE/version" | jq -e '.schemaVersion == 2 and (.version | length > 0)' \
  > /dev/null || fail "version"
curl -fsS "$BASE/v2/profiles" | jq -e '.qubitParams | length >= 6' > /dev/null \
  || fail "profiles"

# --- validate + sync estimate (the ISSUE's acceptance POST) ---------------
curl -fsS -X POST --data-binary "@$JOB" "$BASE/v2/validate" \
  | jq -e '.valid == true' > /dev/null || fail "validate"
STATUS=$(curl -sS -o "$WORK_DIR/estimate.json" -w '%{http_code}' \
              -X POST --data-binary "@$JOB" "$BASE/v2/estimate")
[[ "$STATUS" == "200" ]] || fail "estimate returned HTTP $STATUS"
jq -e '.success == true and (.result.results | length == 18)' \
  "$WORK_DIR/estimate.json" > /dev/null || fail "estimate payload"

# --- frontier job kind (sync + NDJSON probe stream) -----------------------
STATUS=$(curl -sS -o "$WORK_DIR/frontier.json" -w '%{http_code}' \
              -X POST --data-binary "@$FRONTIER_JOB" "$BASE/v2/estimate")
[[ "$STATUS" == "200" ]] || fail "frontier estimate returned HTTP $STATUS"
jq -e '.success == true and (.result.frontier | length >= 3)
       and (.result.frontierStats.numProbes >= 3)' \
  "$WORK_DIR/frontier.json" > /dev/null || fail "frontier payload"
curl -fsS -X POST -H 'Accept: application/x-ndjson' --data-binary "@$FRONTIER_JOB" \
     "$BASE/v2/estimate" > "$WORK_DIR/frontier.ndjson" || fail "frontier ndjson"
head -n 1 "$WORK_DIR/frontier.ndjson" | jq -e '.item == 0 and (.result.result != null)' \
  > /dev/null || fail "frontier probe stream"
tail -n 1 "$WORK_DIR/frontier.ndjson" | jq -e '.frontierStats.numPoints >= 3' \
  > /dev/null || fail "frontier stats line"

# --- async job lifecycle --------------------------------------------------
JOB_ID=$(curl -fsS -X POST --data-binary "@$JOB" "$BASE/v2/jobs" | jq -er '.id') \
  || fail "submit"
for _ in $(seq 1 300); do
  STATE=$(curl -fsS "$BASE/v2/jobs/$JOB_ID" | jq -er '.status')
  [[ "$STATE" != "queued" && "$STATE" != "running" ]] && break
  sleep 0.1
done
[[ "$STATE" == "succeeded" ]] || fail "async job ended as '$STATE'"
curl -fsS "$BASE/v2/jobs/$JOB_ID" | jq -e '.response.success == true' > /dev/null \
  || fail "async job payload"

# --- NDJSON streaming -----------------------------------------------------
curl -fsS -X POST -H 'Accept: application/x-ndjson' --data-binary "@$JOB" \
     "$BASE/v2/estimate" > "$WORK_DIR/stream.ndjson" || fail "ndjson request"
LINES=$(wc -l < "$WORK_DIR/stream.ndjson")
[[ "$LINES" == "19" ]] || fail "expected 19 NDJSON lines (18 items + stats), got $LINES"
head -n 1 "$WORK_DIR/stream.ndjson" | jq -e '.item == 0' > /dev/null || fail "ndjson order"
tail -n 1 "$WORK_DIR/stream.ndjson" | jq -e '.batchStats.numItems == 18' > /dev/null \
  || fail "ndjson stats line"

# --- metrics reflect the traffic ------------------------------------------
curl -fsS "$BASE/metrics" | jq -e '
  .server.requestsTotal >= 8 and
  .estimateCache.misses > 0 and
  .jobs.succeeded >= 1' > /dev/null || fail "metrics"

# --- prometheus exposition ------------------------------------------------
curl -fsS -D "$WORK_DIR/prom_headers" "$BASE/metrics?format=prometheus" \
  > "$WORK_DIR/prom.txt" || fail "prometheus scrape"
grep -qi '^content-type: text/plain; version=0.0.4' "$WORK_DIR/prom_headers" \
  || fail "prometheus content type"
# Every non-empty line must be a comment or a qre_-prefixed sample. (The
# label block is matched greedily: route labels like "GET /v2/jobs/{id}"
# contain literal braces.)
if grep -vE '^($|#|qre_[a-z_]+(\{.*\})? -?[0-9])' "$WORK_DIR/prom.txt" \
     | grep -q .; then
  fail "prometheus exposition has malformed lines"
fi
grep -q '^qre_requests_total ' "$WORK_DIR/prom.txt" || fail "prometheus counter"
grep -q 'le="+Inf"' "$WORK_DIR/prom.txt" || fail "prometheus histogram +Inf"
grep -q 'qre_requests_by_route_total{route="POST /v2/estimate"}' \
  "$WORK_DIR/prom.txt" || fail "prometheus route labels"

# --- request ids: echoed when supplied, generated otherwise ---------------
curl -fsS -D "$WORK_DIR/reqid_headers" -H 'X-Request-Id: smoke-req-1' \
     "$BASE/healthz" > /dev/null || fail "request-id probe"
grep -qi '^x-request-id: smoke-req-1' "$WORK_DIR/reqid_headers" \
  || fail "supplied X-Request-Id not echoed"
curl -fsS -D "$WORK_DIR/genid_headers" "$BASE/healthz" > /dev/null \
  || fail "generated-id probe"
grep -qi '^x-request-id: qre-' "$WORK_DIR/genid_headers" \
  || fail "no generated X-Request-Id"

# --- live trace export (--trace-file implies --trace) ---------------------
curl -fsS "$BASE/v2/trace" > "$WORK_DIR/trace_live.json" || fail "trace endpoint"
jq -e 'type == "array" and (map(select(.name == "server.request")) | length > 0)
       and (map(select(.name == "api.run")) | length > 0)' \
  "$WORK_DIR/trace_live.json" > /dev/null || fail "trace export spans"

# --- graceful shutdown ----------------------------------------------------
kill -TERM "$SERVER_PID"
for _ in $(seq 1 100); do
  kill -0 "$SERVER_PID" 2>/dev/null || break
  sleep 0.1
done
if wait "$SERVER_PID"; then
  SERVER_PID=""
else
  fail "qre_serve exited non-zero after SIGTERM"
fi

# --- drain artifacts: trace file + access log -----------------------------
[[ -s "$TRACE_FILE" ]] || fail "drain did not write the trace file"
jq -e 'type == "array" and length > 0' "$TRACE_FILE" > /dev/null \
  || fail "trace file is not a Chrome-trace event array"
[[ -s "$ACCESS_LOG" ]] || fail "no access log written"
jq -es 'length > 0' "$ACCESS_LOG" > /dev/null || fail "access log lines not JSON"
jq -es 'map(select(.id == "smoke-req-1" and .route == "GET /healthz"
                   and .status == 200)) | length == 1' "$ACCESS_LOG" > /dev/null \
  || fail "supplied request id missing from access log"
jq -es 'map(select(.route == "POST /v2/estimate" and .status == 200))
        | length >= 2' "$ACCESS_LOG" > /dev/null \
  || fail "estimate requests missing from access log"
jq -es 'all(.ts != "" and .id != "" and .latencyMs >= 0)' "$ACCESS_LOG" \
  > /dev/null || fail "access log entries incomplete"

# --- restart reuse: the store survives the process -------------------------
[[ -s "$CACHE_DIR/estimates.qrestore" ]] || fail "drain did not persist the store"
PORT_FILE2="$WORK_DIR/port2"
"$SERVE" --port 0 --port-file "$PORT_FILE2" --job-workers 1 --cache-dir "$CACHE_DIR" &
SERVER_PID=$!
for _ in $(seq 1 100); do
  [[ -s "$PORT_FILE2" ]] && break
  kill -0 "$SERVER_PID" 2>/dev/null || fail "qre_serve died during restart"
  sleep 0.1
done
[[ -s "$PORT_FILE2" ]] || fail "port file never appeared after restart"
BASE="http://127.0.0.1:$(cat "$PORT_FILE2")"
echo "smoke: restarted at $BASE with cache dir $CACHE_DIR"

STATUS=$(curl -sS -o "$WORK_DIR/estimate2.json" -w '%{http_code}' \
              -X POST --data-binary "@$JOB" "$BASE/v2/estimate")
[[ "$STATUS" == "200" ]] || fail "warm estimate returned HTTP $STATUS"
cmp -s "$WORK_DIR/estimate.json" "$WORK_DIR/estimate2.json" \
  || fail "warm response is not byte-identical to the cold one"

# All 18 sweep items came from the store; the fresh process never designed
# a T-factory, i.e. ran zero raw estimates.
curl -fsS "$BASE/metrics" | jq -e '
  .store.enabled == true and
  .store.loaded >= 18 and
  .store.hits >= 18 and
  .store.misses == 0 and
  .factoryCache.misses == 0' > /dev/null || fail "store metrics after restart"

kill -TERM "$SERVER_PID"
for _ in $(seq 1 100); do
  kill -0 "$SERVER_PID" 2>/dev/null || break
  sleep 0.1
done
if wait "$SERVER_PID"; then
  SERVER_PID=""
else
  fail "restarted qre_serve exited non-zero after SIGTERM"
fi

echo "smoke: OK"
