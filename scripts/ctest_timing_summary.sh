#!/usr/bin/env bash
# Renders a per-test timing table from a ctest JUnit report and enforces the
# per-test time budget.
#
# Usage: ctest_timing_summary.sh <ctest-junit.xml> [budget-seconds]
#
# CI runs ctest with --output-junit and publishes this table as an
# artifact; any single test exceeding the budget (default 120 s) fails the
# build, so slow tests are caught as regressions instead of silently
# stretching the suite. (ctest's own --timeout kills runaway tests; this
# check also catches tests that finish just past the budget.)
set -euo pipefail

junit=$1
budget=${2:-120}

python3 - "$junit" "$budget" <<'EOF'
import sys
import xml.etree.ElementTree as ET

junit_path, budget = sys.argv[1], float(sys.argv[2])
root = ET.parse(junit_path).getroot()
cases = []
for case in root.iter("testcase"):
    cases.append((float(case.get("time", "0")), case.get("name", "?"),
                  case.get("status", "run")))
cases.sort(reverse=True)

print(f"{'seconds':>10}  {'status':<8}  test")
over_budget = []
for seconds, name, status in cases:
    marker = "  <-- OVER BUDGET" if seconds > budget else ""
    print(f"{seconds:10.2f}  {status:<8}  {name}{marker}")
    if seconds > budget:
        over_budget.append(name)
total = sum(seconds for seconds, _, _ in cases)
print(f"\n{len(cases)} tests, {total:.1f} s total, budget {budget:.0f} s/test")

if over_budget:
    print(f"ERROR: {len(over_budget)} test(s) exceeded the {budget:.0f} s budget: "
          + ", ".join(over_budget), file=sys.stderr)
    sys.exit(1)
EOF
