#!/usr/bin/env bash
# Asserts qre_cli --help documents every flag the argument parser accepts.
#
# Usage: check_cli_help.sh <path-to-qre_cli> <path-to-tools/qre_cli.cpp>
#
# The accepted-flag list is extracted from the parser source (the
# `arg == "--..."` comparisons in parse_args), so adding a flag without
# help text fails the cli_help_documents_flags ctest instead of silently
# shipping an undocumented option.
set -euo pipefail

cli=$1
src=$2

help_text=$("$cli" --help)

flags=$(grep -oE 'arg == "--?[A-Za-z][A-Za-z-]*"' "$src" \
          | grep -oE -- '--?[A-Za-z][A-Za-z-]*' | sort -u)
if [ -z "$flags" ]; then
  echo "error: extracted no flags from $src; did parse_args change shape?" >&2
  exit 1
fi

status=0
while IFS= read -r flag; do
  if ! grep -qF -- "$flag" <<<"$help_text"; then
    echo "FAIL: accepted flag '$flag' is missing from --help" >&2
    status=1
  fi
done <<<"$flags"

count=$(wc -w <<<"$flags")
if [ "$status" -eq 0 ]; then
  echo "ok: all $count accepted flags are documented in --help"
fi
exit "$status"
