// Tests of the concurrent sweep engine (service layer): sweep-grid
// expansion, the memoization cache, the worker pool, and the run_job
// integration — including parallel-vs-serial equivalence on a Figure 4
// style batch.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "api/api.hpp"
#include "common/error.hpp"
#include "core/job.hpp"
#include "service/cache.hpp"
#include "service/engine.hpp"
#include "service/sweep.hpp"

namespace qre {
namespace {

using service::BatchStats;
using service::EngineOptions;
using service::EstimateCache;
using service::SweepAxis;

// ---------------------------------------------------------------- sweep ---

TEST(Sweep, AxesParseArraysAndRanges) {
  json::Value sweep = json::parse(R"({
    "qubitParams": [{"name": "qubit_gate_ns_e3"}, {"name": "qubit_maj_ns_e4"}],
    "errorBudget": {"start": 1e-4, "stop": 1e-2, "steps": 3, "scale": "log"},
    "constraints.maxTFactories": {"start": 1, "stop": 16, "steps": 4}
  })");
  std::vector<SweepAxis> axes = service::sweep_axes(sweep);
  ASSERT_EQ(axes.size(), 3u);

  EXPECT_EQ(axes[0].path, "qubitParams");
  ASSERT_EQ(axes[0].values.size(), 2u);
  EXPECT_EQ(axes[0].values[1].at("name").as_string(), "qubit_maj_ns_e4");

  // Log range hits the decades exactly.
  ASSERT_EQ(axes[1].values.size(), 3u);
  EXPECT_NEAR(axes[1].values[0].as_double(), 1e-4, 1e-12);
  EXPECT_NEAR(axes[1].values[1].as_double(), 1e-3, 1e-11);
  EXPECT_NEAR(axes[1].values[2].as_double(), 1e-2, 1e-10);

  // Linear integer range stays integer-typed.
  ASSERT_EQ(axes[2].values.size(), 4u);
  EXPECT_EQ(axes[2].values[0].as_int(), 1);
  EXPECT_EQ(axes[2].values[1].as_int(), 6);
  EXPECT_EQ(axes[2].values[2].as_int(), 11);
  EXPECT_EQ(axes[2].values[3].as_int(), 16);
  EXPECT_EQ(axes[2].values[3].dump(), "16");  // no trailing ".0"
}

TEST(Sweep, LinearGridErrorSnapsToIntegers) {
  // 1 + (9/33)*99 = 27.999999999999996 in doubles: grid arithmetic must not
  // demote integer-typed fields (factory caps, code distances) to doubles.
  json::Value sweep =
      json::parse(R"({"constraints.maxTFactories": {"start": 1, "stop": 100, "steps": 34}})");
  std::vector<SweepAxis> axes = service::sweep_axes(sweep);
  ASSERT_EQ(axes[0].values.size(), 34u);
  EXPECT_EQ(axes[0].values[9].as_int(), 28);
  EXPECT_EQ(axes[0].values[9].dump(), "28");
  // Genuinely fractional values stay doubles, however small.
  json::Value tiny = json::parse(R"({"errorBudget": {"start": 1e-10, "stop": 3e-10, "steps": 3}})");
  EXPECT_DOUBLE_EQ(service::sweep_axes(tiny)[0].values[1].as_double(), 2e-10);
  EXPECT_NE(service::sweep_axes(tiny)[0].values[1].dump(), "0");
}

TEST(Sweep, OversizedRangeAxisThrowsBeforeAllocating) {
  json::Value sweep =
      json::parse(R"({"a": {"start": 0, "stop": 1, "steps": 4000000000000}})");
  EXPECT_THROW(service::sweep_axes(sweep), Error);
}

TEST(Sweep, MalformedAxesThrow) {
  EXPECT_THROW(service::sweep_axes(json::parse(R"({})")), Error);
  EXPECT_THROW(service::sweep_axes(json::parse(R"({"errorBudget": []})")), Error);
  EXPECT_THROW(service::sweep_axes(json::parse(R"({"errorBudget": 3})")), Error);
  EXPECT_THROW(
      service::sweep_axes(json::parse(R"({"a": {"start": 1, "stop": 2, "steps": 0}})")),
      Error);
  EXPECT_THROW(service::sweep_axes(json::parse(
                   R"({"a": {"start": 0, "stop": 2, "steps": 2, "scale": "log"}})")),
               Error);
  EXPECT_THROW(service::sweep_axes(json::parse(
                   R"({"a": {"start": 1, "stop": 2, "steps": 2, "stepz": 3}})")),
               Error);
}

TEST(Sweep, ExpandCountsOrderingAndInheritance) {
  json::Value job = json::parse(R"({
    "logicalCounts": {"numQubits": 10, "tCount": 100},
    "errorBudget": 0.001,
    "sweep": {
      "qubitParams": [{"name": "qubit_gate_ns_e3"}, {"name": "qubit_maj_ns_e4"}],
      "errorBudget": [0.01, 0.001, 0.0001]
    }
  })");
  std::vector<json::Value> items = service::expand_sweep(job);
  ASSERT_EQ(items.size(), 6u);  // 2 x 3 cartesian grid

  // Row-major: first axis slowest, second fastest.
  EXPECT_EQ(items[0].at("qubitParams").at("name").as_string(), "qubit_gate_ns_e3");
  EXPECT_DOUBLE_EQ(items[0].at("errorBudget").as_double(), 0.01);
  EXPECT_DOUBLE_EQ(items[1].at("errorBudget").as_double(), 0.001);
  EXPECT_DOUBLE_EQ(items[2].at("errorBudget").as_double(), 0.0001);
  EXPECT_EQ(items[3].at("qubitParams").at("name").as_string(), "qubit_maj_ns_e4");
  EXPECT_DOUBLE_EQ(items[3].at("errorBudget").as_double(), 0.01);

  for (const json::Value& item : items) {
    // Non-swept base fields are inherited; the sweep spec itself is gone.
    EXPECT_EQ(item.at("logicalCounts").at("numQubits").as_uint(), 10u);
    EXPECT_EQ(item.find("sweep"), nullptr);
  }
}

TEST(Sweep, DottedPathPreservesSiblingFields) {
  json::Value job = json::parse(R"({
    "logicalCounts": {"numQubits": 10, "tCount": 100},
    "constraints": {"logicalDepthFactor": 2},
    "sweep": {"constraints.maxTFactories": [1, 2]}
  })");
  std::vector<json::Value> items = service::expand_sweep(job);
  ASSERT_EQ(items.size(), 2u);
  // The swept leaf is set, and the base's sibling constraint survives —
  // a shallow item override would have clobbered it.
  EXPECT_EQ(items[0].at("constraints").at("maxTFactories").as_uint(), 1u);
  EXPECT_EQ(items[1].at("constraints").at("maxTFactories").as_uint(), 2u);
  EXPECT_DOUBLE_EQ(items[0].at("constraints").at("logicalDepthFactor").as_double(), 2.0);
}

TEST(Sweep, RangeEndpointsAreBitExactCacheKeys) {
  // Regression: ranged axes used to compute every grid value from the
  // interpolation formula, including the endpoints. For these constants
  // `start * pow(stop / start, 1.0)` (and the linear analogue
  // `start + 1.0 * (stop - start)`) lands one ulp off `stop`, so a range
  // and an explicit array over the same endpoints produced different
  // canonical cache keys — and therefore duplicate persistent-store rows
  // for what the user wrote as one grid point. Endpoints are now clamped
  // to the literal start/stop values.
  json::Value log_sweep = json::parse(R"({
    "errorBudget": {"start": 2e-4, "stop": 1.3e-2, "steps": 5, "scale": "log"}
  })");
  std::vector<SweepAxis> log_axes = service::sweep_axes(log_sweep);
  ASSERT_EQ(log_axes[0].values.size(), 5u);
  EXPECT_EQ(log_axes[0].values.front().dump(), json::parse("2e-4").dump());
  EXPECT_EQ(log_axes[0].values.back().dump(), json::parse("1.3e-2").dump());

  json::Value lin_sweep = json::parse(R"({
    "errorBudget": {"start": 0.0031271755102623604, "stop": 0.011773058992986281,
                    "steps": 3}
  })");
  std::vector<SweepAxis> lin_axes = service::sweep_axes(lin_sweep);
  ASSERT_EQ(lin_axes[0].values.size(), 3u);
  EXPECT_EQ(lin_axes[0].values.back().dump(),
            json::parse("0.011773058992986281").dump());

  // The cache-key level consequence: the last item of a ranged sweep must
  // key identically to an item built from the explicit stop value.
  json::Value ranged_job = json::parse(R"({
    "logicalCounts": {"numQubits": 10, "tCount": 100},
    "sweep": {"errorBudget": {"start": 2e-4, "stop": 1.3e-2, "steps": 5,
                              "scale": "log"}}
  })");
  json::Value explicit_job = json::parse(R"({
    "logicalCounts": {"numQubits": 10, "tCount": 100},
    "sweep": {"errorBudget": [2e-4, 1.3e-2]}
  })");
  std::vector<json::Value> ranged = service::expand_sweep(ranged_job);
  std::vector<json::Value> exact = service::expand_sweep(explicit_job);
  ASSERT_EQ(ranged.size(), 5u);
  ASSERT_EQ(exact.size(), 2u);
  EXPECT_EQ(service::canonical_key(ranged.front()), service::canonical_key(exact.front()));
  EXPECT_EQ(service::canonical_key(ranged.back()), service::canonical_key(exact.back()));
}

TEST(Sweep, DottedPathThroughNonObjectThrows) {
  // Regression: set_path used to silently replace an existing non-object
  // field with a fresh object, so a mistyped axis path clobbered the
  // base value instead of failing.
  json::Value root = json::parse(R"({"constraints": 5})");
  try {
    service::set_path(root, "constraints.maxTFactories", json::Value(1.0));
    FAIL() << "expected set_path to throw";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("constraints.maxTFactories"), std::string::npos) << what;
    EXPECT_NE(what.find("not an object"), std::string::npos) << what;
  }
  // The base document is untouched by the failed descent.
  EXPECT_EQ(root.at("constraints").dump(), "5");

  json::Value job = json::parse(R"({
    "logicalCounts": {"numQubits": 10, "tCount": 100},
    "constraints": 5,
    "sweep": {"constraints.maxTFactories": [1, 2]}
  })");
  EXPECT_THROW(service::expand_sweep(job), Error);
}

TEST(Sweep, GridSizeCap) {
  json::Value job = json::parse(R"({
    "sweep": {
      "a": {"start": 1, "stop": 100, "steps": 100},
      "b": {"start": 1, "stop": 100, "steps": 100}
    }
  })");
  EXPECT_THROW(service::expand_sweep(job, 9999), Error);
  EXPECT_EQ(service::expand_sweep(job, 10000).size(), 10000u);
}

// ---------------------------------------------------------------- cache ---

TEST(Cache, CanonicalKeyIgnoresFieldOrder) {
  json::Value a = json::parse(R"({"x": 1, "y": {"b": 2, "a": [1, 2]}})");
  json::Value b = json::parse(R"({"y": {"a": [1, 2], "b": 2}, "x": 1})");
  json::Value c = json::parse(R"({"x": 1, "y": {"b": 2, "a": [2, 1]}})");
  EXPECT_EQ(service::canonical_key(a), service::canonical_key(b));
  EXPECT_NE(service::canonical_key(a), service::canonical_key(c));  // arrays are ordered
}

TEST(Cache, ComputesEachKeyOnce) {
  EstimateCache cache;
  std::atomic<int> calls{0};
  auto compute = [&] {
    calls.fetch_add(1);
    return json::Value(static_cast<std::int64_t>(42));
  };
  EXPECT_EQ(cache.get_or_compute("k1", compute).as_int(), 42);
  EXPECT_EQ(cache.get_or_compute("k1", compute).as_int(), 42);
  EXPECT_EQ(cache.get_or_compute("k2", compute).as_int(), 42);
  EXPECT_EQ(calls.load(), 2);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 2u);
  EXPECT_EQ(cache.size(), 2u);
}

TEST(Cache, ReplaysFailuresWithoutRecomputing) {
  EstimateCache cache;
  std::atomic<int> calls{0};
  auto failing = [&]() -> json::Value {
    calls.fetch_add(1);
    throw Error("infeasible");
  };
  EXPECT_THROW(cache.get_or_compute("bad", failing), Error);
  EXPECT_THROW(cache.get_or_compute("bad", failing), Error);
  EXPECT_EQ(calls.load(), 1);
}

// --------------------------------------------------------------- engine ---

TEST(Engine, PreservesItemOrderAcrossWorkers) {
  std::vector<json::Value> items;
  for (int i = 0; i < 64; ++i) {
    json::Object o;
    o.emplace_back("id", json::Value(static_cast<std::int64_t>(i)));
    items.push_back(json::Value(std::move(o)));
  }
  auto runner = [](const json::Value& item) {
    json::Object o;
    o.emplace_back("echo", item.at("id"));
    return json::Value(std::move(o));
  };
  EngineOptions options;
  options.num_workers = 8;
  options.use_cache = false;
  json::Array results = service::run_batch(items, runner, options);
  ASSERT_EQ(results.size(), 64u);
  for (int i = 0; i < 64; ++i) EXPECT_EQ(results[i].at("echo").as_int(), i);
}

TEST(Engine, StreamsResultsInItemOrder) {
  std::vector<json::Value> items;
  for (int i = 0; i < 32; ++i) items.push_back(json::Value(json::Object{}));
  std::vector<std::size_t> seen;
  EngineOptions options;
  options.num_workers = 4;
  options.on_result = [&](std::size_t index, const json::Value&) {
    seen.push_back(index);  // engine serializes sink calls
  };
  service::run_batch(items, [](const json::Value&) { return json::Value(json::Object{}); },
                     options);
  ASSERT_EQ(seen.size(), 32u);
  for (std::size_t i = 0; i < seen.size(); ++i) EXPECT_EQ(seen[i], i);
}

TEST(Engine, IsolatesErrorsAndCountsThem) {
  std::vector<json::Value> items;
  for (int i = 0; i < 6; ++i) {
    json::Object o;
    o.emplace_back("id", json::Value(static_cast<std::int64_t>(i)));
    items.push_back(json::Value(std::move(o)));
  }
  auto runner = [](const json::Value& item) -> json::Value {
    if (item.at("id").as_int() % 2 == 1) throw Error("odd items fail");
    return json::Value(json::Object{});
  };
  EngineOptions options;
  options.num_workers = 3;
  BatchStats stats;
  json::Array results = service::run_batch(items, runner, options, &stats);
  ASSERT_EQ(results.size(), 6u);
  for (int i = 0; i < 6; ++i) {
    if (i % 2 == 1) {
      EXPECT_EQ(results[i].at("error").at("code").as_string(), "estimation-failed");
      EXPECT_EQ(results[i].at("error").at("message").as_string(), "odd items fail");
    } else {
      EXPECT_EQ(results[i].find("error"), nullptr);
    }
  }
  EXPECT_EQ(stats.num_errors, 3u);
  EXPECT_EQ(stats.num_items, 6u);
}

TEST(Engine, CacheDeduplicatesIdenticalItems) {
  // 24 items, only 3 distinct: the runner must fire exactly 3 times.
  std::vector<json::Value> items;
  for (int i = 0; i < 24; ++i) {
    json::Object o;
    o.emplace_back("id", json::Value(static_cast<std::int64_t>(i % 3)));
    items.push_back(json::Value(std::move(o)));
  }
  std::atomic<int> calls{0};
  auto runner = [&](const json::Value& item) {
    calls.fetch_add(1);
    json::Object o;
    o.emplace_back("echo", item.at("id"));
    return json::Value(std::move(o));
  };
  EngineOptions options;
  options.num_workers = 4;
  BatchStats stats;
  json::Array results = service::run_batch(items, runner, options, &stats);
  EXPECT_EQ(calls.load(), 3);
  EXPECT_EQ(stats.cache_misses, 3u);
  EXPECT_EQ(stats.cache_hits, 21u);
  for (int i = 0; i < 24; ++i) EXPECT_EQ(results[i].at("echo").as_int(), i % 3);
}

// -------------------------------------------------- run_job integration ---

const char* kFig4StyleSweep = R"({
  "logicalCounts": {
    "numQubits": 100,
    "tCount": 100000,
    "measurementCount": 10000
  },
  "sweep": {
    "qubitParams": [
      {"name": "qubit_gate_ns_e3"}, {"name": "qubit_gate_ns_e4"},
      {"name": "qubit_gate_us_e3"}, {"name": "qubit_gate_us_e4"},
      {"name": "qubit_maj_ns_e4"}, {"name": "qubit_maj_ns_e6"}
    ],
    "errorBudget": {"start": 1e-4, "stop": 1e-1, "steps": 11, "scale": "log"}
  }
})";

TEST(Service, SweepJobParallelMatchesSerial) {
  json::Value job = json::parse(kFig4StyleSweep);

  service::EngineOptions serial;
  serial.num_workers = 1;
  serial.use_cache = false;
  json::Value serial_result = run_job(job, serial);

  service::EngineOptions parallel;
  parallel.num_workers = 4;
  json::Value parallel_result = run_job(job, parallel);

  const json::Array& serial_items = serial_result.at("results").as_array();
  const json::Array& parallel_items = parallel_result.at("results").as_array();
  ASSERT_EQ(serial_items.size(), 66u);  // 6 profiles x 11 budgets >= 64 points
  ASSERT_EQ(parallel_items.size(), 66u);
  for (std::size_t i = 0; i < serial_items.size(); ++i) {
    // Bit-identical output, element by element.
    EXPECT_EQ(serial_items[i].dump(), parallel_items[i].dump()) << "item " << i;
  }
}

TEST(Service, SweepJobMatchesHandWrittenItems) {
  json::Value sweep_job = json::parse(R"({
    "logicalCounts": {"numQubits": 50, "tCount": 50000},
    "errorBudget": 0.001,
    "sweep": {"qubitParams": [{"name": "qubit_gate_ns_e3"}, {"name": "qubit_maj_ns_e4"}]}
  })");
  json::Value items_job = json::parse(R"({
    "logicalCounts": {"numQubits": 50, "tCount": 50000},
    "errorBudget": 0.001,
    "items": [
      {"qubitParams": {"name": "qubit_gate_ns_e3"}},
      {"qubitParams": {"name": "qubit_maj_ns_e4"}}
    ]
  })");
  json::Value a = run_job(sweep_job);
  json::Value b = run_job(items_job);
  EXPECT_EQ(a.at("results").dump(), b.at("results").dump());
}

TEST(Service, BatchStatsReportCacheHitsOnDuplicatedItems) {
  json::Value job = json::parse(R"({
    "logicalCounts": {"numQubits": 50, "tCount": 50000},
    "errorBudget": 0.001,
    "items": [{}, {}, {}, {"errorBudget": 0.01}]
  })");
  json::Value result = run_job(job);
  const json::Value& stats = result.at("batchStats");
  EXPECT_EQ(stats.at("numItems").as_uint(), 4u);
  EXPECT_EQ(stats.at("cacheMisses").as_uint(), 2u);  // two distinct inputs
  EXPECT_EQ(stats.at("cacheHits").as_uint(), 2u);
  EXPECT_EQ(stats.at("numErrors").as_uint(), 0u);
  // The duplicated items share one result.
  const json::Array& results = result.at("results").as_array();
  EXPECT_EQ(results[0].dump(), results[1].dump());
  EXPECT_EQ(results[0].dump(), results[2].dump());
  EXPECT_NE(results[0].dump(), results[3].dump());
}

TEST(Service, SweepAndItemsAreMutuallyExclusive) {
  json::Value job = json::parse(R"({
    "logicalCounts": {"numQubits": 10, "tCount": 100},
    "items": [{}],
    "sweep": {"errorBudget": [0.01]}
  })");
  EXPECT_THROW(run_job(job), Error);
}

TEST(Service, SweepIsolatesInfeasibleGridPoints) {
  // Second qubitParams axis value sits at the QEC threshold: infeasible.
  json::Value job = json::parse(R"({
    "logicalCounts": {"numQubits": 50, "tCount": 50000},
    "errorBudget": 0.001,
    "sweep": {
      "qubitParams": [
        {"name": "qubit_gate_ns_e3"},
        {"name": "qubit_gate_ns_e3", "twoQubitGateErrorRate": 0.5}
      ]
    }
  })");
  json::Value result = run_job(job);
  const json::Array& results = result.at("results").as_array();
  ASSERT_EQ(results.size(), 2u);
  EXPECT_NE(results[0].find("physicalCounts"), nullptr);
  EXPECT_NE(results[1].find("error"), nullptr);
  EXPECT_EQ(result.at("batchStats").at("numErrors").as_uint(), 1u);
}

TEST(Service, RunSingleJobRejectsBatchKeys) {
  json::Value job = json::parse(R"({
    "logicalCounts": {"numQubits": 10, "tCount": 100},
    "items": [{}]
  })");
  EXPECT_THROW(run_single_job(job), Error);
}

// ------------------------------------------------- shared-engine Engine ---

// N threads pushing the SAME batch job through ONE shared Engine (the
// estimation server's configuration) must each produce results that are
// bit-identical to the serial run_job output, and the shared cache's
// counters must be exactly accounted for: the in-flight deduplication in
// EstimateCache guarantees one miss per distinct item no matter how the
// threads interleave.
TEST(Service, ConcurrentRequestsOnOneEngineAreBitIdenticalToSerial) {
  json::Value job = json::parse(R"({
    "schemaVersion": 2,
    "logicalCounts": {"numQubits": 10, "tCount": 1000},
    "qubitParams": {"name": "qubit_gate_ns_e3"},
    "items": [
      {"errorBudget": 0.01},
      {"errorBudget": 0.001},
      {"errorBudget": 0.01}
    ]
  })");
  // 3 items, 2 distinct (items 0 and 2 merge to the same document).
  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kItems = 3;
  constexpr std::size_t kDistinct = 2;

  const std::string serial = run_job(job).at("results").dump();

  api::Registry registry = api::Registry::with_builtins();
  service::Engine engine;
  std::vector<std::string> results(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      api::EstimateRequest request = api::EstimateRequest::parse(job, registry);
      api::EstimateResponse response = api::run(request, engine.options(), registry);
      results[t] = response.success ? response.result.at("results").dump() : "FAILED";
    });
  }
  for (std::thread& thread : threads) thread.join();

  for (std::size_t t = 0; t < kThreads; ++t) {
    EXPECT_EQ(results[t], serial) << "thread " << t << " diverged from the serial run";
  }

  // Consistent stats: every lookup either hit or missed, and only the first
  // computation of each distinct item missed.
  const EstimateCache& cache = engine.cache();
  EXPECT_EQ(cache.misses(), kDistinct);
  EXPECT_EQ(cache.hits(), kThreads * kItems - kDistinct);
  EXPECT_EQ(cache.size(), kDistinct);
  EXPECT_EQ(cache.evictions(), 0u);
}

// Same-document single estimates through one Engine: the serving layer's
// most common request. All responses must be byte-identical and computed
// exactly once.
TEST(Service, ConcurrentSingleEstimatesShareOneComputation) {
  json::Value job = json::parse(R"({
    "schemaVersion": 2,
    "logicalCounts": {"numQubits": 10, "tCount": 1000},
    "errorBudget": 0.01
  })");
  const std::string serial = run_job(job).dump();

  api::Registry registry = api::Registry::with_builtins();
  service::Engine engine;
  constexpr std::size_t kThreads = 8;
  std::vector<std::string> results(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      api::EstimateRequest request = api::EstimateRequest::parse(job, registry);
      api::EstimateResponse response = api::run(request, engine.options(), registry);
      results[t] = response.success ? response.result.dump() : "FAILED";
    });
  }
  for (std::thread& thread : threads) thread.join();

  for (std::size_t t = 0; t < kThreads; ++t) {
    EXPECT_EQ(results[t], serial);
  }
  EXPECT_EQ(engine.cache().misses(), 1u);
  EXPECT_EQ(engine.cache().hits(), kThreads - 1);
}

}  // namespace
}  // namespace qre
