#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "qec/qec_scheme.hpp"

namespace qre {
namespace {

TEST(Qec, SurfaceCodeGateBasedDefaults) {
  QecScheme s = QecScheme::surface_code_gate_based();
  EXPECT_EQ(s.name(), "surface_code");
  EXPECT_DOUBLE_EQ(s.threshold(), 0.01);
  EXPECT_DOUBLE_EQ(s.crossing_prefactor(), 0.03);
  QubitParams q = QubitParams::gate_ns_e3();
  // (4 * 50 + 2 * 100) * d = 400 d ns.
  EXPECT_DOUBLE_EQ(s.logical_cycle_time_ns(q, 9), 3600.0);
  EXPECT_EQ(s.physical_qubits_per_logical_qubit(9), 162u);
}

TEST(Qec, FloquetCodeDefaults) {
  QecScheme s = QecScheme::floquet_code();
  EXPECT_DOUBLE_EQ(s.threshold(), 0.01);
  EXPECT_DOUBLE_EQ(s.crossing_prefactor(), 0.07);
  QubitParams q = QubitParams::maj_ns_e4();
  EXPECT_DOUBLE_EQ(s.logical_cycle_time_ns(q, 13), 3.0 * 100.0 * 13.0);
  EXPECT_EQ(s.physical_qubits_per_logical_qubit(13), 4 * 13 * 13 + 8 * 12);
}

TEST(Qec, MajoranaSurfaceCode) {
  QecScheme s = QecScheme::surface_code_majorana();
  EXPECT_DOUBLE_EQ(s.threshold(), 0.0015);
  EXPECT_DOUBLE_EQ(s.crossing_prefactor(), 0.08);
  QubitParams q = QubitParams::maj_ns_e4();
  EXPECT_DOUBLE_EQ(s.logical_cycle_time_ns(q, 7), 20.0 * 100.0 * 7.0);
}

TEST(Qec, DefaultsPerInstructionSet) {
  EXPECT_EQ(QecScheme::default_for(InstructionSet::kGateBased).name(), "surface_code");
  EXPECT_EQ(QecScheme::default_for(InstructionSet::kMajorana).name(), "floquet_code");
}

TEST(Qec, FromNameValidation) {
  EXPECT_NO_THROW(QecScheme::from_name("surface_code", InstructionSet::kMajorana));
  EXPECT_THROW(QecScheme::from_name("floquet_code", InstructionSet::kGateBased), Error);
  EXPECT_THROW(QecScheme::from_name("color_code", InstructionSet::kGateBased), Error);
}

TEST(Qec, LogicalErrorRateModel) {
  QecScheme s = QecScheme::surface_code_gate_based();
  // P(d) = 0.03 * (p / 0.01)^((d+1)/2).
  EXPECT_NEAR(s.logical_error_rate(1e-3, 3), 0.03 * std::pow(0.1, 2.0), 1e-15);
  EXPECT_NEAR(s.logical_error_rate(1e-3, 9), 0.03 * std::pow(0.1, 5.0), 1e-15);
  // Halving the error rate helps more at larger distance.
  double gain_small = s.logical_error_rate(1e-3, 3) / s.logical_error_rate(5e-4, 3);
  double gain_large = s.logical_error_rate(1e-3, 11) / s.logical_error_rate(5e-4, 11);
  EXPECT_GT(gain_large, gain_small);
}

TEST(Qec, CodeDistanceHandComputed) {
  QecScheme s = QecScheme::surface_code_gate_based();
  // p = 1e-3, target 1e-10: 0.03 * 0.1^((d+1)/2) <= 1e-10 first holds at d=17.
  EXPECT_EQ(s.code_distance_for(1e-3, 1e-10), 17u);
  EXPECT_GT(s.logical_error_rate(1e-3, 15), 1e-10);
  EXPECT_LE(s.logical_error_rate(1e-3, 17), 1e-10);
}

TEST(Qec, CodeDistanceIsMinimalAndOdd) {
  QecScheme s = QecScheme::floquet_code();
  for (double target : {1e-6, 1e-9, 1e-12, 1e-15}) {
    std::uint64_t d = s.code_distance_for(1e-4, target);
    EXPECT_EQ(d % 2, 1u);
    EXPECT_LE(s.logical_error_rate(1e-4, d), target);
    if (d > 1) {
      EXPECT_GT(s.logical_error_rate(1e-4, d - 2), target);
    }
  }
}

TEST(Qec, CodeDistanceMonotoneInTarget) {
  QecScheme s = QecScheme::surface_code_gate_based();
  std::uint64_t previous = 1;
  for (double target = 1e-4; target > 1e-16; target /= 10.0) {
    std::uint64_t d = s.code_distance_for(1e-4, target);
    EXPECT_GE(d, previous);
    previous = d;
  }
}

TEST(Qec, AtThresholdThrows) {
  QecScheme s = QecScheme::surface_code_gate_based();
  EXPECT_THROW(s.code_distance_for(0.01, 1e-10), Error);
  EXPECT_THROW(s.code_distance_for(0.5, 1e-10), Error);
}

TEST(Qec, MaxDistanceExceededThrows) {
  json::Value v = json::parse(R"({"maxCodeDistance": 5})");
  QecScheme s = QecScheme::from_json(v, InstructionSet::kGateBased);
  EXPECT_THROW(s.code_distance_for(5e-3, 1e-12), Error);
}

TEST(Qec, JsonCustomization) {
  json::Value v = json::parse(R"({
    "crossingPrefactor": 0.05,
    "errorCorrectionThreshold": 0.02,
    "logicalCycleTime": "10 * oneQubitGateTime * codeDistance",
    "physicalQubitsPerLogicalQubit": "codeDistance ^ 2"
  })");
  QecScheme s = QecScheme::from_json(v, InstructionSet::kGateBased);
  EXPECT_DOUBLE_EQ(s.crossing_prefactor(), 0.05);
  EXPECT_DOUBLE_EQ(s.threshold(), 0.02);
  QubitParams q = QubitParams::gate_ns_e3();
  EXPECT_DOUBLE_EQ(s.logical_cycle_time_ns(q, 5), 2500.0);
  EXPECT_EQ(s.physical_qubits_per_logical_qubit(5), 25u);
}

TEST(Qec, JsonRoundTrip) {
  QecScheme s = QecScheme::floquet_code();
  QecScheme back = QecScheme::from_json(s.to_json(), InstructionSet::kMajorana);
  EXPECT_EQ(back.name(), s.name());
  EXPECT_DOUBLE_EQ(back.threshold(), s.threshold());
  EXPECT_DOUBLE_EQ(back.crossing_prefactor(), s.crossing_prefactor());
  QubitParams q = QubitParams::maj_ns_e6();
  EXPECT_DOUBLE_EQ(back.logical_cycle_time_ns(q, 9), s.logical_cycle_time_ns(q, 9));
}

TEST(Qec, LogicalQubitBundle) {
  QubitParams q = QubitParams::maj_ns_e4();
  QecScheme s = QecScheme::floquet_code();
  LogicalQubit lq = LogicalQubit::create(q, s, 9);
  EXPECT_EQ(lq.code_distance, 9u);
  EXPECT_EQ(lq.physical_qubits, s.physical_qubits_per_logical_qubit(9));
  EXPECT_DOUBLE_EQ(lq.cycle_time_ns, 2700.0);
  EXPECT_NEAR(lq.clock_frequency_hz(), 1e9 / 2700.0, 1e-6);
  EXPECT_NEAR(lq.logical_error_rate, s.logical_error_rate(1e-4, 9), 1e-18);
  json::Value j = lq.to_json();
  EXPECT_EQ(j.at("codeDistance").as_uint(), 9u);
}

TEST(Qec, FormulaEnvironmentBindsInstructionSet) {
  Environment gate = qec_formula_environment(QubitParams::gate_ns_e3(), 7);
  EXPECT_TRUE(gate.has("twoQubitGateTime"));
  EXPECT_FALSE(gate.has("twoQubitJointMeasurementTime"));
  Environment maj = qec_formula_environment(QubitParams::maj_ns_e4(), 7);
  EXPECT_TRUE(maj.has("twoQubitJointMeasurementTime"));
  EXPECT_FALSE(maj.has("twoQubitGateTime"));
  EXPECT_DOUBLE_EQ(maj.get("codeDistance"), 7.0);
}

class QecDistanceSweep : public ::testing::TestWithParam<double> {};

TEST_P(QecDistanceSweep, ErrorRateDecadeStepsDistance) {
  // Each 100x tightening of the target adds a bounded number of distance
  // steps (the model is exponential in d).
  QecScheme s = QecScheme::surface_code_gate_based();
  double p = GetParam();
  std::uint64_t d1 = s.code_distance_for(p, 1e-8);
  std::uint64_t d2 = s.code_distance_for(p, 1e-10);
  EXPECT_GE(d2, d1);
  EXPECT_LE(d2 - d1, 6u);
}

INSTANTIATE_TEST_SUITE_P(PhysicalRates, QecDistanceSweep,
                         ::testing::Values(1e-3, 5e-4, 1e-4, 1e-5));

TEST(Qec, JsonRejectsOrWarnsOnUnknownKeys) {
  // "crossingPrefator" is a typo for "crossingPrefactor".
  json::Value v = json::parse(R"({"name": "surface_code", "crossingPrefator": 0.05})");
  EXPECT_THROW(QecScheme::from_json(v, InstructionSet::kGateBased), Error);

  Diagnostics diags;
  QecScheme s = QecScheme::from_json(v, InstructionSet::kGateBased, &diags);
  EXPECT_DOUBLE_EQ(s.crossing_prefactor(), 0.03);  // typo did not override
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags.entries()[0].code, "unknown-key");
  EXPECT_EQ(diags.entries()[0].path, "/qecScheme/crossingPrefator");
}

}  // namespace
}  // namespace qre
