// Functional verification of the multiplication circuits against classical
// products, plus closed-form cost checks — these are the workloads behind
// the paper's Figures 3 and 4.
#include <gtest/gtest.h>

#include <tuple>

#include "arith/multipliers.hpp"
#include "circuit/builder.hpp"
#include "common/error.hpp"
#include "counter/logical_counter.hpp"
#include "sim/sparse_simulator.hpp"

namespace qre {
namespace {

std::uint64_t mask_bits(std::size_t n) {
  return n >= 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << n) - 1;
}

class LongMultExhaustive : public ::testing::TestWithParam<int> {};

TEST_P(LongMultExhaustive, MatchesClassicalProduct) {
  int n = GetParam();
  for (std::uint64_t k = 0; k < (1u << n); k += (n >= 4 ? 3 : 1)) {
    for (std::uint64_t y = 0; y < (1u << n); ++y) {
      SparseSimulator sim(k * 101 + y + 1);
      ProgramBuilder bld(sim);
      Register ry = bld.alloc_register(n);
      Register acc = bld.alloc_register(2 * n);
      bld.xor_constant(ry, y);
      long_mult_add_constant(bld, Constant{k, static_cast<std::size_t>(n)}, ry, acc);
      EXPECT_EQ(sim.peek_classical(acc), k * y) << "n=" << n << " k=" << k << " y=" << y;
      EXPECT_EQ(sim.peek_classical(ry), y);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, LongMultExhaustive, ::testing::Values(1, 2, 3, 4));

class WindowedMult : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(WindowedMult, MatchesClassicalProduct) {
  auto [n, w] = GetParam();
  std::uint64_t x = 88172645463325252ull;
  for (int round = 0; round < 24; ++round) {
    x = x * 6364136223846793005ull + 1442695040888963407ull;
    std::uint64_t k = (x >> 32) & mask_bits(n);
    x = x * 6364136223846793005ull + 1442695040888963407ull;
    std::uint64_t y = (x >> 32) & mask_bits(n);
    SparseSimulator sim(x | 1);
    ProgramBuilder bld(sim);
    Register ry = bld.alloc_register(n);
    Register acc = bld.alloc_register(2 * n);
    bld.xor_constant(ry, y);
    windowed_mult_add_constant(bld, Constant{k, static_cast<std::size_t>(n)}, ry, acc, w);
    EXPECT_EQ(sim.peek_classical(acc), k * y)
        << "n=" << n << " w=" << w << " k=" << k << " y=" << y;
    EXPECT_EQ(sim.peek_classical(ry), y);
    bld.free_register(acc[0] == 0 ? Register{} : Register{});  // no-op; lifetimes checked below
    std::uint64_t live = bld.live_qubits();
    EXPECT_EQ(live, static_cast<std::uint64_t>(3 * n));  // only y and acc remain
  }
}

INSTANTIATE_TEST_SUITE_P(WidthsAndWindows, WindowedMult,
                         ::testing::Values(std::tuple{1, 1}, std::tuple{2, 1},
                                           std::tuple{3, 2}, std::tuple{4, 2},
                                           std::tuple{5, 2}, std::tuple{5, 3},
                                           std::tuple{6, 3}, std::tuple{7, 3},
                                           std::tuple{6, 4}));

TEST(WindowedMultExtra, AutomaticWindowSize) {
  EXPECT_EQ(default_window_bits(2), 1u);
  EXPECT_EQ(default_window_bits(64), 6u);
  EXPECT_EQ(default_window_bits(2048), 11u);
  EXPECT_EQ(default_window_bits(16384), 14u);
  EXPECT_EQ(default_window_bits(1u << 20), 16u);  // clamped
}

TEST(WindowedMultExtra, NonDivisibleWindowCount) {
  // n = 7 with w = 3 exercises the final narrow window.
  SparseSimulator sim(5);
  ProgramBuilder bld(sim);
  Register y = bld.alloc_register(7);
  Register acc = bld.alloc_register(14);
  bld.xor_constant(y, 99);
  windowed_mult_add_constant(bld, Constant{113, 7}, y, acc, 3);
  EXPECT_EQ(sim.peek_classical(acc), 99u * 113u);
}

class SchoolbookQQ : public ::testing::TestWithParam<int> {};

TEST_P(SchoolbookQQ, MatchesClassicalProduct) {
  int n = GetParam();
  std::uint64_t s = 424242;
  for (int round = 0; round < 20; ++round) {
    s = s * 6364136223846793005ull + 1442695040888963407ull;
    std::uint64_t xv = (s >> 30) & mask_bits(n);
    s = s * 6364136223846793005ull + 1442695040888963407ull;
    std::uint64_t yv = (s >> 30) & mask_bits(n);
    SparseSimulator sim(s | 1);
    ProgramBuilder bld(sim);
    Register x = bld.alloc_register(n);
    Register y = bld.alloc_register(n);
    Register acc = bld.alloc_register(2 * n);
    bld.xor_constant(x, xv);
    bld.xor_constant(y, yv);
    schoolbook_mult_add(bld, x, y, acc);
    EXPECT_EQ(sim.peek_classical(acc), xv * yv) << "n=" << n;
    EXPECT_EQ(sim.peek_classical(x), xv);
    EXPECT_EQ(sim.peek_classical(y), yv);
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, SchoolbookQQ, ::testing::Values(1, 2, 3, 4, 5, 6));

TEST(MultiplierCosts, LongMultUsesNSquaredAnds) {
  for (std::uint64_t n : {4u, 16u, 64u}) {
    LogicalCounts c = multiplier_counts(MultiplierKind::kStandard, n);
    EXPECT_EQ(c.ccix_count, n * n) << "n=" << n;
    EXPECT_EQ(c.ccz_count, 0u);
    EXPECT_EQ(c.rotation_count, 0u);
  }
}

TEST(MultiplierCosts, WindowedBeatsStandardAtScale) {
  for (std::uint64_t n : {256u, 1024u, 4096u}) {
    LogicalCounts standard = multiplier_counts(MultiplierKind::kStandard, n);
    LogicalCounts windowed = multiplier_counts(MultiplierKind::kWindowed, n);
    double ratio = static_cast<double>(standard.ccix_count) /
                   static_cast<double>(windowed.ccix_count);
    // The windowed gain approaches the window size (~log2 n).
    EXPECT_GT(ratio, 2.5) << "n=" << n;
    EXPECT_LT(ratio, static_cast<double>(default_window_bits(n)) + 2.0) << "n=" << n;
  }
}

TEST(MultiplierCosts, WindowedQubitsComparableToStandard) {
  LogicalCounts standard = multiplier_counts(MultiplierKind::kStandard, 1024);
  LogicalCounts windowed = multiplier_counts(MultiplierKind::kWindowed, 1024);
  // Both use ~4-5.5n logical qubits; windowed needs the lookup output too.
  EXPECT_GT(windowed.num_qubits, standard.num_qubits);
  EXPECT_LT(static_cast<double>(windowed.num_qubits),
            1.6 * static_cast<double>(standard.num_qubits));
}

TEST(MultiplierCosts, SchoolbookQQCostsTwiceStandard) {
  LogicalCounts standard = multiplier_counts(MultiplierKind::kStandard, 128);
  LogicalCounts qq = multiplier_counts(MultiplierKind::kSchoolbookQQ, 128);
  double ratio = static_cast<double>(qq.ccix_count) / static_cast<double>(standard.ccix_count);
  EXPECT_GT(ratio, 1.8);
  EXPECT_LT(ratio, 2.2);
}

TEST(MultiplierCosts, PaperScaleWindowedAnchor) {
  // Section V of the paper: the 2048-bit windowed multiplier runs ~1.1e11
  // logical operations on ~20.6k logical qubits. Our construction lands in
  // the same regime (shape, not bit-exact): C = M + T + 3*(CCZ+CCiX).
  LogicalCounts c = multiplier_counts(MultiplierKind::kWindowed, 2048);
  std::uint64_t depth = c.measurement_count + c.t_count + 3 * (c.ccz_count + c.ccix_count);
  EXPECT_GT(depth, 1'500'000u);
  EXPECT_LT(depth, 15'000'000u);
  EXPECT_GT(c.num_qubits, 8'000u);   // ~5n pre-layout
  EXPECT_LT(c.num_qubits, 14'000u);
}

TEST(MultiplierCosts, AccumulatorTooSmallRejected) {
  LogicalCounter counter;
  ProgramBuilder bld(counter);
  Register y = bld.alloc_register(4);
  Register acc = bld.alloc_register(6);
  EXPECT_THROW(long_mult_add_constant(bld, Constant{3, 4}, y, acc), Error);
  EXPECT_THROW(windowed_mult_add_constant(bld, Constant{3, 4}, y, acc, 2), Error);
}

TEST(MultiplierCosts, DriverValidation) {
  EXPECT_THROW(multiplier_counts(MultiplierKind::kStandard, 0), Error);
  EXPECT_EQ(to_string(MultiplierKind::kWindowed), "windowed");
  EXPECT_EQ(to_string(MultiplierKind::kKaratsuba), "karatsuba");
}

}  // namespace
}  // namespace qre
