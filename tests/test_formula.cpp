#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "formula/formula.hpp"

namespace qre {
namespace {

double eval(const std::string& text, const Environment& env = {}) {
  return Formula::parse(text).evaluate(env);
}

TEST(Formula, Literals) {
  EXPECT_DOUBLE_EQ(eval("42"), 42.0);
  EXPECT_DOUBLE_EQ(eval("3.5"), 3.5);
  EXPECT_DOUBLE_EQ(eval("1e-3"), 1e-3);
  EXPECT_DOUBLE_EQ(eval("2.5E+2"), 250.0);
  EXPECT_DOUBLE_EQ(eval(".5"), 0.5);
}

TEST(Formula, Precedence) {
  EXPECT_DOUBLE_EQ(eval("2 + 3 * 4"), 14.0);
  EXPECT_DOUBLE_EQ(eval("(2 + 3) * 4"), 20.0);
  EXPECT_DOUBLE_EQ(eval("2 - 3 - 4"), -5.0);   // left-assoc
  EXPECT_DOUBLE_EQ(eval("24 / 4 / 2"), 3.0);   // left-assoc
  EXPECT_DOUBLE_EQ(eval("2 ^ 3 ^ 2"), 512.0);  // right-assoc power
  EXPECT_DOUBLE_EQ(eval("2 * 3 ^ 2"), 18.0);   // power binds tighter
  EXPECT_DOUBLE_EQ(eval("-2 ^ 2"), 4.0);       // unary minus then power
  EXPECT_DOUBLE_EQ(eval("2 - -3"), 5.0);
}

TEST(Formula, Functions) {
  EXPECT_DOUBLE_EQ(eval("ceil(1.2)"), 2.0);
  EXPECT_DOUBLE_EQ(eval("floor(1.8)"), 1.0);
  EXPECT_DOUBLE_EQ(eval("sqrt(81)"), 9.0);
  EXPECT_DOUBLE_EQ(eval("abs(-4)"), 4.0);
  EXPECT_DOUBLE_EQ(eval("log2(1024)"), 10.0);
  EXPECT_DOUBLE_EQ(eval("ln(exp(3))"), 3.0);
  EXPECT_DOUBLE_EQ(eval("pow(2, 10)"), 1024.0);
  EXPECT_DOUBLE_EQ(eval("min(3, 5)"), 3.0);
  EXPECT_DOUBLE_EQ(eval("max(3, 5)"), 5.0);
  EXPECT_DOUBLE_EQ(eval("max(min(1,2), 0.5)"), 1.0);
}

TEST(Formula, Variables) {
  Environment env;
  env.set("codeDistance", 11.0);
  env.set("oneQubitMeasurementTime", 100.0);
  EXPECT_DOUBLE_EQ(eval("3 * oneQubitMeasurementTime * codeDistance", env), 3300.0);
  Formula f = Formula::parse("a + b * a");
  EXPECT_EQ(f.variables().size(), 2u);  // deduplicated
  EXPECT_EQ(f.variables()[0], "a");
  EXPECT_EQ(f.variables()[1], "b");
}

TEST(Formula, DefaultQecFormulas) {
  // The formulas shipped with the default schemes evaluate as documented.
  Environment env;
  env.set("codeDistance", 9.0);
  env.set("twoQubitGateTime", 50.0);
  env.set("oneQubitMeasurementTime", 100.0);
  EXPECT_DOUBLE_EQ(
      eval("(4 * twoQubitGateTime + 2 * oneQubitMeasurementTime) * codeDistance", env), 3600.0);
  EXPECT_DOUBLE_EQ(eval("2 * codeDistance * codeDistance", env), 162.0);
  EXPECT_DOUBLE_EQ(eval("4 * codeDistance * codeDistance + 8 * (codeDistance - 1)", env),
                   388.0);
}

TEST(Formula, DistillationFormulas) {
  Environment env;
  env.set("inputErrorRate", 0.05);
  env.set("cliffordErrorRate", 1e-4);
  EXPECT_NEAR(eval("35 * inputErrorRate ^ 3 + 7.1 * cliffordErrorRate", env),
              35 * 0.05 * 0.05 * 0.05 + 7.1e-4, 1e-15);
  EXPECT_NEAR(eval("15 * inputErrorRate + 356 * cliffordErrorRate", env), 0.75 + 0.0356,
              1e-12);
}

TEST(Formula, NumberFollowedByIdentifier) {
  Environment env;
  env.set("e", 7.0);
  // '2e' must not be parsed as a truncated exponent.
  EXPECT_DOUBLE_EQ(eval("2 * e", env), 14.0);
}

TEST(Formula, UnboundVariable) {
  Formula f = Formula::parse("x + 1");
  Environment env;
  env.set("y", 2.0);
  try {
    f.evaluate(env);
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("'x'"), std::string::npos);
  }
}

TEST(Formula, ParseErrors) {
  EXPECT_THROW(Formula::parse(""), Error);
  EXPECT_THROW(Formula::parse("   "), Error);
  EXPECT_THROW(Formula::parse("1 +"), Error);
  EXPECT_THROW(Formula::parse("(1 + 2"), Error);
  EXPECT_THROW(Formula::parse("1 + 2)"), Error);
  EXPECT_THROW(Formula::parse("foo(1)"), Error);       // unknown function
  EXPECT_THROW(Formula::parse("min(1)"), Error);       // arity
  EXPECT_THROW(Formula::parse("ceil(1, 2)"), Error);   // arity
  EXPECT_THROW(Formula::parse("2 ** 3"), Error);
  EXPECT_THROW(Formula::parse("@"), Error);
}

TEST(Formula, EvaluationErrors) {
  Environment env;
  env.set("x", 0.0);
  EXPECT_THROW(eval("1 / x", env), Error);
  EXPECT_THROW(eval("1 / 0"), Error);
  EXPECT_THROW(eval("ln(0) * 0"), Error);  // non-finite intermediate -> non-finite result
}

TEST(Formula, TextRoundTrip) {
  const std::string text = "3 * oneQubitMeasurementTime * codeDistance";
  Formula f = Formula::parse(text);
  EXPECT_EQ(f.text(), text);
}

struct EquivalenceCase {
  const char* lhs;
  const char* rhs;
};

class FormulaEquivalence : public ::testing::TestWithParam<EquivalenceCase> {};

TEST_P(FormulaEquivalence, EvaluatesEqually) {
  Environment env;
  env.set("d", 13.0);
  env.set("t", 100.0);
  EXPECT_NEAR(eval(GetParam().lhs, env), eval(GetParam().rhs, env), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Algebra, FormulaEquivalence,
                         ::testing::Values(EquivalenceCase{"d * (t + 1)", "d * t + d"},
                                           EquivalenceCase{"d ^ 2", "d * d"},
                                           EquivalenceCase{"pow(d, 3)", "d * d * d"},
                                           EquivalenceCase{"sqrt(d * d)", "abs(d)"},
                                           EquivalenceCase{"2 ^ log2(d)", "d"},
                                           EquivalenceCase{"-(d - t)", "t - d"},
                                           EquivalenceCase{"(d + t) / 2", "0.5 * d + 0.5 * t"}));

}  // namespace
}  // namespace qre
