// Exhaustive and property tests for the AND-gadget adders: every circuit is
// executed on the sparse simulator and compared against classical
// arithmetic, including the measurement-based uncomputation paths.
#include <gtest/gtest.h>

#include <tuple>

#include "arith/adders.hpp"
#include "circuit/builder.hpp"
#include "common/error.hpp"
#include "counter/logical_counter.hpp"
#include "sim/sparse_simulator.hpp"

namespace qre {
namespace {

std::uint64_t mask_bits(std::size_t n) {
  return n >= 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << n) - 1;
}

/// Runs b += a on the simulator and returns (b_out, a_out, carry).
struct AddResult {
  std::uint64_t a;
  std::uint64_t b;
  bool carry;
};

AddResult run_add(std::size_t na, std::size_t nb, std::uint64_t a_val, std::uint64_t b_val,
                  bool with_carry, std::uint64_t seed) {
  SparseSimulator sim(seed);
  ProgramBuilder bld(sim);
  Register a = bld.alloc_register(na);
  Register b = bld.alloc_register(nb);
  bld.xor_constant(a, a_val);
  bld.xor_constant(b, b_val);
  std::optional<QubitId> carry;
  if (with_carry) carry = bld.alloc();
  add_into(bld, a, b, carry);
  AddResult r{};
  r.a = sim.peek_classical(a);
  r.b = sim.peek_classical(b);
  r.carry = with_carry && sim.probability_one(*carry) > 0.5;
  return r;
}

class AdderExhaustive : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(AdderExhaustive, ModularSum) {
  auto [na, nb] = GetParam();
  for (std::uint64_t a = 0; a < (1u << na); ++a) {
    for (std::uint64_t b = 0; b < (1u << nb); ++b) {
      AddResult r = run_add(na, nb, a, b, /*with_carry=*/false, a * 131 + b + 1);
      EXPECT_EQ(r.b, (a + b) & mask_bits(nb)) << na << "+" << nb << " a=" << a << " b=" << b;
      EXPECT_EQ(r.a, a) << "addend not restored";
    }
  }
}

TEST_P(AdderExhaustive, ExactSumWithCarry) {
  auto [na, nb] = GetParam();
  for (std::uint64_t a = 0; a < (1u << na); ++a) {
    for (std::uint64_t b = 0; b < (1u << nb); ++b) {
      AddResult r = run_add(na, nb, a, b, /*with_carry=*/true, a * 733 + b + 5);
      std::uint64_t total = (static_cast<std::uint64_t>(r.carry) << nb) | r.b;
      EXPECT_EQ(total, a + b) << na << "+" << nb << " a=" << a << " b=" << b;
      EXPECT_EQ(r.a, a);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, AdderExhaustive,
                         ::testing::Values(std::tuple{1, 1}, std::tuple{1, 2},
                                           std::tuple{2, 2}, std::tuple{1, 4},
                                           std::tuple{2, 4}, std::tuple{3, 3},
                                           std::tuple{3, 5}, std::tuple{4, 4},
                                           std::tuple{5, 5}));

TEST(Adders, WideRandomizedAdd) {
  std::uint64_t x = 0x9E3779B97F4A7C15ull;
  for (int round = 0; round < 12; ++round) {
    x = x * 6364136223846793005ull + 1442695040888963407ull;
    std::uint64_t a_val = x >> 40;  // 24-bit
    x = x * 6364136223846793005ull + 1442695040888963407ull;
    std::uint64_t b_val = x >> 40;
    AddResult r = run_add(24, 24, a_val, b_val, true, x | 1);
    EXPECT_EQ((static_cast<std::uint64_t>(r.carry) << 24) | r.b, a_val + b_val);
  }
}

TEST(Adders, SubtractionExhaustive) {
  for (int n = 1; n <= 4; ++n) {
    for (std::uint64_t a = 0; a < (1u << n); ++a) {
      for (std::uint64_t b = 0; b < (1u << n); ++b) {
        SparseSimulator sim(a * 37 + b + 3);
        ProgramBuilder bld(sim);
        Register ra = bld.alloc_register(n);
        Register rb = bld.alloc_register(n);
        bld.xor_constant(ra, a);
        bld.xor_constant(rb, b);
        sub_into(bld, ra, rb);
        EXPECT_EQ(sim.peek_classical(rb), (b - a) & mask_bits(n)) << "n=" << n;
        EXPECT_EQ(sim.peek_classical(ra), a);
      }
    }
  }
}

TEST(Adders, SubtractNarrowerOperand) {
  SparseSimulator sim(11);
  ProgramBuilder bld(sim);
  Register a = bld.alloc_register(2);
  Register b = bld.alloc_register(5);
  bld.xor_constant(a, 3);
  bld.xor_constant(b, 17);
  sub_into(bld, a, b);
  EXPECT_EQ(sim.peek_classical(b), 14u);
}

TEST(Adders, ControlledAddBothBranches) {
  for (int n = 1; n <= 3; ++n) {
    for (std::uint64_t a = 0; a < (1u << n); ++a) {
      for (std::uint64_t b = 0; b < (1u << n); ++b) {
        for (int ctrl = 0; ctrl < 2; ++ctrl) {
          SparseSimulator sim(a * 311 + b * 7 + ctrl + 1);
          ProgramBuilder bld(sim);
          QubitId c = bld.alloc();
          if (ctrl) bld.x(c);
          Register ra = bld.alloc_register(n);
          Register rb = bld.alloc_register(n);
          bld.xor_constant(ra, a);
          bld.xor_constant(rb, b);
          add_into_controlled(bld, c, ra, rb);
          std::uint64_t expected = ctrl ? ((a + b) & mask_bits(n)) : b;
          EXPECT_EQ(sim.peek_classical(rb), expected);
          EXPECT_EQ(sim.peek_classical(ra), a);
          EXPECT_NEAR(sim.probability_one(c), ctrl, 1e-12);
        }
      }
    }
  }
}

TEST(Adders, ControlledAddOnSuperposedControl) {
  // ctrl = |+>: the adder must entangle cleanly; interfering the control
  // back only works when b == b + a, so instead verify total norm and the
  // two-branch structure.
  SparseSimulator sim(5);
  ProgramBuilder bld(sim);
  QubitId c = bld.alloc();
  bld.h(c);
  Register a = bld.alloc_register(3);
  Register b = bld.alloc_register(3);
  bld.xor_constant(a, 5);
  bld.xor_constant(b, 2);
  add_into_controlled(bld, c, a, b);
  EXPECT_NEAR(sim.norm(), 1.0, 1e-9);
  bool ctrl_value = bld.mz(c);
  EXPECT_EQ(sim.peek_classical(b), ctrl_value ? 7u : 2u);
}

TEST(Adders, ConstantAddExhaustive) {
  for (int n = 1; n <= 4; ++n) {
    for (std::uint64_t k = 0; k < (1u << n); ++k) {
      for (std::uint64_t b = 0; b < (1u << n); ++b) {
        SparseSimulator sim(k * 59 + b + 2);
        ProgramBuilder bld(sim);
        Register rb = bld.alloc_register(n);
        bld.xor_constant(rb, b);
        QubitId carry = bld.alloc();
        add_constant(bld, Constant{k, static_cast<std::size_t>(n)}, rb, carry);
        std::uint64_t total = sim.peek_classical(rb) |
                              (static_cast<std::uint64_t>(sim.probability_one(carry) > 0.5)
                               << n);
        EXPECT_EQ(total, k + b);
      }
    }
  }
}

TEST(Adders, ControlledConstantAdd) {
  for (std::uint64_t k : {0ull, 1ull, 6ull, 13ull, 15ull}) {
    for (int ctrl = 0; ctrl < 2; ++ctrl) {
      SparseSimulator sim(k * 17 + ctrl + 9);
      ProgramBuilder bld(sim);
      QubitId c = bld.alloc();
      if (ctrl) bld.x(c);
      Register rb = bld.alloc_register(4);
      bld.xor_constant(rb, 9);
      add_constant_controlled(bld, c, Constant{k, 4}, rb);
      EXPECT_EQ(sim.peek_classical(rb), ctrl ? ((9 + k) & 15) : 9u);
    }
  }
}

TEST(Adders, AndCountMatchesGidney) {
  // n-1 ANDs for a modular n-bit addition; n with carry-out.
  for (std::size_t n : {2u, 5u, 16u, 33u}) {
    {
      LogicalCounter counter;
      ProgramBuilder bld(counter);
      Register a = bld.alloc_register(n);
      Register b = bld.alloc_register(n);
      add_into(bld, a, b);
      EXPECT_EQ(counter.counts().ccix_count, n - 1) << "n=" << n;
      EXPECT_EQ(counter.counts().measurement_count, n - 1);  // measurement-based unands
      EXPECT_EQ(counter.counts().t_count, 0u);
    }
    {
      LogicalCounter counter;
      ProgramBuilder bld(counter);
      Register a = bld.alloc_register(n);
      Register b = bld.alloc_register(n);
      QubitId carry = bld.alloc();
      add_into(bld, a, b, carry);
      EXPECT_EQ(counter.counts().ccix_count, n);
    }
  }
}

TEST(Adders, ControlledAddCost) {
  // |a| masking ANDs on top of the adder.
  std::size_t n = 20;
  LogicalCounter counter;
  ProgramBuilder bld(counter);
  QubitId c = bld.alloc();
  Register a = bld.alloc_register(n);
  Register b = bld.alloc_register(n);
  add_into_controlled(bld, c, a, b);
  EXPECT_EQ(counter.counts().ccix_count, n + (n - 1));
}

TEST(Adders, UnitaryUncomputeModeUsesNoMeasurements) {
  LogicalCounter counter;
  ProgramBuilder bld(counter);
  bld.set_unitary_uncompute(true);
  Register a = bld.alloc_register(8);
  Register b = bld.alloc_register(8);
  add_into(bld, a, b);
  EXPECT_EQ(counter.counts().measurement_count, 0u);
  EXPECT_EQ(counter.counts().ccix_count, 2u * 7u);  // compute + unitary uncompute
}

TEST(Adders, MismatchedWidthRejected) {
  LogicalCounter counter;
  ProgramBuilder bld(counter);
  Register a = bld.alloc_register(4);
  Register b = bld.alloc_register(2);
  EXPECT_THROW(add_into(bld, a, b), Error);
}

TEST(Adders, AncillasAllFreed) {
  SparseSimulator sim(21);
  ProgramBuilder bld(sim);
  Register a = bld.alloc_register(6);
  Register b = bld.alloc_register(6);
  bld.xor_constant(a, 33);
  bld.xor_constant(b, 27);
  std::uint64_t live_before = bld.live_qubits();
  add_into(bld, a, b);
  EXPECT_EQ(bld.live_qubits(), live_before);  // carries released (and verified |0>)
}

}  // namespace
}  // namespace qre
