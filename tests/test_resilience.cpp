// Resilience-layer tests: CancelToken/deadline semantics, the failpoint
// registry and spec grammar, cancellation observed at run_batch item
// boundaries, client retry/backoff against a scripted fake server, and
// fork()-based crash-recovery drills proving the store's atomic-rename
// contract (a crash between temp-write and rename leaves the previous
// snapshot fully readable).
//
// NOT part of the ThreadSanitizer ctest subset: the crash drills fork(),
// which TSan instrumented binaries handle poorly, and the injection tests
// mutate the process-global failpoint registry.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "common/cancel.hpp"
#include "common/error.hpp"
#include "common/failpoint.hpp"
#include "json/json.hpp"
#include "server/client.hpp"
#include "service/engine.hpp"
#include "store/estimate_store.hpp"
#include "store/store.hpp"

namespace qre {
namespace {

using store::Record;
using store::StoreReader;

/// A scratch directory removed at scope exit.
struct TempDir {
  TempDir() {
    char pattern[] = "/tmp/qre_resilience_test.XXXXXX";
    const char* made = ::mkdtemp(pattern);
    EXPECT_NE(made, nullptr);
    path = made;
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path, ec);
  }
  std::string file(const std::string& name) const { return path + "/" + name; }
  std::string path;
};

/// Disarms every failpoint when a test scope exits, so injection state
/// never leaks between tests.
struct FailpointGuard {
  ~FailpointGuard() { failpoint::reset(); }
};

// ------------------------------------------------------------ CancelToken ---

TEST(CancelToken, NullTokenNeverStops) {
  CancelToken token;
  EXPECT_FALSE(token.cancel_requested());
  EXPECT_FALSE(token.deadline_exceeded());
  EXPECT_FALSE(token.should_stop());
  token.request_cancel();  // no-op on the null token
  EXPECT_FALSE(token.should_stop());
  EXPECT_NO_THROW(token.throw_if_cancelled("test"));
}

TEST(CancelToken, CancellableCopiesShareTheFlag) {
  CancelToken token = CancelToken::cancellable();
  CancelToken copy = token;
  EXPECT_FALSE(copy.should_stop());
  token.request_cancel();
  EXPECT_TRUE(copy.cancel_requested());
  EXPECT_TRUE(copy.should_stop());
  EXPECT_THROW(copy.throw_if_cancelled("unit"), CancelledError);
}

TEST(CancelToken, DeadlineExpiresAndOutranksTheFlag) {
  CancelToken token = CancelToken::cancellable().with_deadline(0.005);
  // Not yet: freshly minted deadlines are in the future.
  EXPECT_FALSE(token.deadline_exceeded());
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_TRUE(token.deadline_exceeded());
  EXPECT_TRUE(token.should_stop());
  // Both conditions hold; the deadline is the reported cause.
  token.request_cancel();
  EXPECT_THROW(token.throw_if_cancelled("unit"), DeadlineExceededError);
}

TEST(CancelToken, WithDeadlineBoundsDerivedScopesIndependently) {
  CancelToken parent = CancelToken::cancellable();
  CancelToken bounded = parent.with_deadline(0.001);
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_TRUE(bounded.should_stop());
  EXPECT_FALSE(parent.should_stop());  // the parent carries no deadline
  bounded.request_cancel();            // ...but the flag is shared both ways
  EXPECT_TRUE(parent.cancel_requested());
}

// -------------------------------------------------------------- failpoints ---

TEST(Failpoint, MalformedSpecsAreRejected) {
  FailpointGuard guard;
  EXPECT_THROW(failpoint::configure("no-equals-sign"), Error);
  EXPECT_THROW(failpoint::configure("UPPER.case=error"), Error);
  EXPECT_THROW(failpoint::configure("site=launch_missiles"), Error);
  EXPECT_THROW(failpoint::configure("site=delay"), Error);        // missing (MS)
  EXPECT_THROW(failpoint::configure("site=150%error"), Error);    // percent > 100
  EXPECT_THROW(failpoint::configure("site=-5%error"), Error);
  EXPECT_NO_THROW(failpoint::configure(""));  // empty spec is always fine
}

TEST(Failpoint, ErrorActionInjectsAtTheNamedSite) {
  if (!failpoint::compiled_in()) GTEST_SKIP() << "built with QRE_FAILPOINTS=OFF";
  FailpointGuard guard;
  failpoint::configure("engine.evaluate.before=error");

  std::vector<json::Value> items(3, json::Value(json::Object{}));
  service::EngineOptions options;
  options.num_workers = 1;
  options.use_cache = false;
  json::Array results = service::run_batch(
      items, [](const json::Value&) { return json::Value(json::Object{}); }, options);

  ASSERT_EQ(results.size(), 3u);
  for (const json::Value& result : results) {
    const json::Value* error = result.find("error");
    ASSERT_NE(error, nullptr);
    EXPECT_EQ(error->at("code").as_string(), "estimation-failed");
    EXPECT_NE(error->at("message").as_string().find("failpoint"), std::string::npos);
  }
  EXPECT_EQ(failpoint::hits("engine.evaluate.before"), 3u);
}

TEST(Failpoint, OffDisarmsAndResetClearsCounters) {
  if (!failpoint::compiled_in()) GTEST_SKIP() << "built with QRE_FAILPOINTS=OFF";
  FailpointGuard guard;
  failpoint::configure("engine.evaluate.before=error");
  failpoint::configure("engine.evaluate.before=off");

  std::vector<json::Value> items(1, json::Value(json::Object{}));
  service::EngineOptions options;
  options.use_cache = false;
  json::Array results = service::run_batch(
      items, [](const json::Value&) { return json::Value(json::Object{}); }, options);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].find("error"), nullptr);

  failpoint::reset();
  EXPECT_EQ(failpoint::hits("engine.evaluate.before"), 0u);
}

TEST(Failpoint, StatsReportTriggeredSites) {
  if (!failpoint::compiled_in()) GTEST_SKIP() << "built with QRE_FAILPOINTS=OFF";
  FailpointGuard guard;
  failpoint::configure("engine.evaluate.before=delay(1)");
  std::vector<json::Value> items(2, json::Value(json::Object{}));
  service::EngineOptions options;
  options.use_cache = false;
  service::run_batch(items, [](const json::Value&) { return json::Value(json::Object{}); },
                     options);

  const json::Value stats = failpoint::stats_to_json();
  EXPECT_TRUE(stats.at("compiledIn").as_bool());
  EXPECT_EQ(stats.at("active").as_uint(), 1u);
  EXPECT_EQ(stats.at("triggered").at("engine.evaluate.before").as_uint(), 2u);
}

// ------------------------------------------------- cancellation in batches ---

TEST(RunBatchCancel, CancelledTokenSkipsEveryItemWithoutRunning) {
  CancelToken token = CancelToken::cancellable();
  token.request_cancel();

  std::atomic<int> executed{0};
  std::vector<json::Value> items(5, json::Value(json::Object{}));
  service::EngineOptions options;
  options.cancel = token;
  options.num_workers = 2;
  json::Array results = service::run_batch(
      items,
      [&executed](const json::Value&) {
        executed.fetch_add(1);
        return json::Value(json::Object{});
      },
      options);

  EXPECT_EQ(executed.load(), 0);
  ASSERT_EQ(results.size(), 5u);
  for (const json::Value& result : results) {
    const json::Value* error = result.find("error");
    ASSERT_NE(error, nullptr);
    EXPECT_EQ(error->at("code").as_string(), "cancelled");
    EXPECT_EQ(error->at("message").as_string(), "item skipped: request cancelled");
  }
}

TEST(RunBatchCancel, DeadlineReportsItsOwnMessage) {
  CancelToken token = CancelToken().with_deadline(0.001);
  std::this_thread::sleep_for(std::chrono::milliseconds(10));

  std::vector<json::Value> items(2, json::Value(json::Object{}));
  service::EngineOptions options;
  options.cancel = token;
  json::Array results = service::run_batch(
      items, [](const json::Value&) { return json::Value(json::Object{}); }, options);

  ASSERT_EQ(results.size(), 2u);
  for (const json::Value& result : results) {
    EXPECT_EQ(result.at("error").at("message").as_string(),
              "item skipped: request deadline exceeded");
  }
}

TEST(RunBatchCancel, CancelledEntriesNeverPoisonASharedCache) {
  service::EstimateCache cache(16);
  json::Object item_body;
  item_body.emplace_back("point", json::Value(std::uint64_t{7}));
  const std::vector<json::Value> items(1, json::Value(std::move(item_body)));

  CancelToken token = CancelToken::cancellable();
  token.request_cancel();
  service::EngineOptions cancelled_options;
  cancelled_options.cancel = token;
  cancelled_options.cache = &cache;
  service::run_batch(items, [](const json::Value&) { return json::Value(json::Object{}); },
                     cancelled_options);
  EXPECT_EQ(cache.size(), 0u);  // the skip left no cache entry behind

  // The same grid point now runs for real and caches a real result.
  service::EngineOptions options;
  options.cache = &cache;
  json::Array results = service::run_batch(
      items,
      [](const json::Value&) {
        json::Object o;
        o.emplace_back("real", json::Value(true));
        return json::Value(std::move(o));
      },
      options);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_NE(results[0].find("real"), nullptr);
  EXPECT_EQ(cache.size(), 1u);
}

// ------------------------------------------------------ crash-recovery drills ---

std::vector<Record> snapshot_records(std::size_t n, const std::string& tag,
                                     std::size_t value_bytes = 16) {
  std::vector<Record> records;
  for (std::size_t i = 0; i < n; ++i) {
    records.push_back({"{\"job\":\"" + tag + std::to_string(i) + "\"}",
                       "{\"v\":\"" + std::string(value_bytes, 'x') + "\"}"});
  }
  return records;
}

/// Forks; the child arms `spec` and overwrites `path` with `next`, which
/// the armed crash failpoint turns into _exit(42). Returns the child's
/// exit status.
int crash_persist(const std::string& spec, const std::string& path,
                  const std::vector<Record>& next) {
  const pid_t pid = ::fork();
  if (pid == 0) {
    // Child: no gtest machinery, no inherited failpoint state beyond the
    // copy-on-write registry we re-arm explicitly.
    try {
      failpoint::configure(spec);
      store::write_store_file(path, next);
    } catch (...) {
      ::_exit(99);  // the failpoint should have crashed us first
    }
    ::_exit(98);  // write completed: the crash never fired
  }
  int status = 0;
  ::waitpid(pid, &status, 0);
  return status;
}

TEST(CrashRecovery, CrashBeforeRenameLeavesPreviousSnapshotReadable) {
  if (!failpoint::compiled_in()) GTEST_SKIP() << "built with QRE_FAILPOINTS=OFF";
  TempDir dir;
  const std::string path = dir.file("estimates.qrestore");
  const std::vector<Record> original = snapshot_records(10, "old");
  store::write_store_file(path, original);

  const int status =
      crash_persist("store.persist.before_rename=crash", path, snapshot_records(20, "new"));
  ASSERT_TRUE(WIFEXITED(status));
  ASSERT_EQ(WEXITSTATUS(status), 42) << "the crash failpoint did not fire";

  // The previous snapshot survived, byte-complete: every record reads back.
  StoreReader reader(path);
  EXPECT_EQ(reader.record_count(), 10u);
  std::size_t seen = 0;
  EXPECT_EQ(reader.for_each([&seen](std::string_view, std::string_view) { ++seen; }), 0u);
  EXPECT_EQ(seen, 10u);
  EXPECT_EQ(reader.corrupt_skipped(), 0u);
}

TEST(CrashRecovery, CrashMidWriteLeavesOnlyATornTempBehind) {
  if (!failpoint::compiled_in()) GTEST_SKIP() << "built with QRE_FAILPOINTS=OFF";
  TempDir dir;
  const std::string path = dir.file("estimates.qrestore");
  const std::vector<Record> original = snapshot_records(5, "old");
  store::write_store_file(path, original);

  // A >64 KiB image guarantees the chunked writer crosses at least one
  // mid-write failpoint check before finishing.
  const int status = crash_persist("store.persist.mid_write=crash", path,
                                   snapshot_records(40, "big", 4096));
  ASSERT_TRUE(WIFEXITED(status));
  ASSERT_EQ(WEXITSTATUS(status), 42) << "the crash failpoint did not fire";

  // The live snapshot is untouched; the torn temp is the only debris.
  StoreReader reader(path);
  EXPECT_EQ(reader.record_count(), 5u);
  EXPECT_EQ(reader.corrupt_skipped(), 0u);
  bool saw_temp = false;
  for (const auto& entry : std::filesystem::directory_iterator(dir.path)) {
    const std::string name = entry.path().filename().string();
    if (name != "estimates.qrestore") {
      EXPECT_EQ(name.find("estimates.qrestore.tmp."), 0u) << name;
      saw_temp = true;
    }
  }
  EXPECT_TRUE(saw_temp);

  // A restarted store opens the snapshot cleanly despite the debris.
  store::EstimateStore restarted(dir.path);
  const store::LoadResult loaded = restarted.load();
  EXPECT_TRUE(loaded.usable);
  EXPECT_EQ(loaded.records_loaded, 5u);
  EXPECT_EQ(loaded.records_skipped, 0u);
}

TEST(CrashRecovery, InjectedErrorBeforeRenameCleansUpItsTemp) {
  if (!failpoint::compiled_in()) GTEST_SKIP() << "built with QRE_FAILPOINTS=OFF";
  FailpointGuard guard;
  TempDir dir;
  const std::string path = dir.file("estimates.qrestore");
  store::write_store_file(path, snapshot_records(3, "old"));

  failpoint::configure("store.persist.before_rename=error");
  EXPECT_THROW(store::write_store_file(path, snapshot_records(6, "new")), Error);
  failpoint::reset();

  // The failed persist unlinked its temp; only the live snapshot remains.
  std::size_t entries = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir.path)) {
    (void)entry;
    ++entries;
  }
  EXPECT_EQ(entries, 1u);
  StoreReader reader(path);
  EXPECT_EQ(reader.record_count(), 3u);
}

TEST(CrashRecovery, StoreOpenFaultDegradesToColdStart) {
  if (!failpoint::compiled_in()) GTEST_SKIP() << "built with QRE_FAILPOINTS=OFF";
  FailpointGuard guard;
  TempDir dir;
  store::write_store_file(dir.file("estimates.qrestore"), snapshot_records(4, "old"));

  failpoint::configure("store.open.before_read=error");
  store::EstimateStore store(dir.path);
  const store::LoadResult loaded = store.load();
  EXPECT_FALSE(loaded.usable);  // cold start, not a crash
  EXPECT_EQ(loaded.records_loaded, 0u);

  failpoint::reset();
  const store::LoadResult reloaded = store.load();
  EXPECT_TRUE(reloaded.usable);
  EXPECT_EQ(reloaded.records_loaded, 4u);
}

// ---------------------------------------------------------- client retries ---

/// A scripted one-shot HTTP server: each accepted connection gets the next
/// canned response, then the connection closes.
class FakeServer {
 public:
  explicit FakeServer(std::vector<std::string> responses)
      : responses_(std::move(responses)) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd_, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = 0;
    EXPECT_EQ(::bind(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr), 0);
    EXPECT_EQ(::listen(fd_, 8), 0);
    socklen_t len = sizeof addr;
    EXPECT_EQ(::getsockname(fd_, reinterpret_cast<sockaddr*>(&addr), &len), 0);
    port_ = ntohs(addr.sin_port);
    thread_ = std::thread([this] { serve(); });
  }

  ~FakeServer() {
    thread_.join();
    ::close(fd_);
  }

  std::uint16_t port() const { return port_; }

 private:
  void serve() {
    for (const std::string& response : responses_) {
      const int conn = ::accept(fd_, nullptr, nullptr);
      if (conn < 0) return;
      // Drain the request headers (enough of them to let the client finish
      // writing), then answer with the canned response and close.
      char buffer[4096];
      (void)::recv(conn, buffer, sizeof buffer, 0);
      (void)::send(conn, response.data(), response.size(), MSG_NOSIGNAL);
      ::close(conn);
    }
  }

  std::vector<std::string> responses_;
  int fd_ = -1;
  std::uint16_t port_ = 0;
  std::thread thread_;
};

const char k503[] =
    "HTTP/1.1 503 Service Unavailable\r\n"
    "Retry-After: 0\r\n"
    "Content-Length: 0\r\n"
    "Connection: close\r\n\r\n";
const char k200[] =
    "HTTP/1.1 200 OK\r\n"
    "Content-Length: 2\r\n"
    "Connection: close\r\n\r\nok";

TEST(ClientRetry, IdempotentRequestRetriesThrough503) {
  FakeServer server({k503, k503, k200});
  server::RetryPolicy policy;
  policy.max_attempts = 3;
  policy.initial_backoff_ms = 1;
  policy.max_backoff_ms = 2;
  server::Client client("127.0.0.1", server.port(), policy);

  const std::uint64_t process_before = server::Client::process_retries();
  const server::Client::Result result = client.get("/healthz");
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.status, 200);
  EXPECT_EQ(result.body, "ok");
  EXPECT_EQ(client.retries(), 2u);
  EXPECT_EQ(server::Client::process_retries(), process_before + 2);
}

TEST(ClientRetry, NonIdempotentPostDoesNotRetryA503) {
  FakeServer server({k503});
  server::RetryPolicy policy;
  policy.max_attempts = 3;
  policy.initial_backoff_ms = 1;
  server::Client client("127.0.0.1", server.port(), policy);

  const server::Client::Result result = client.post("/v2/estimate", "{}");
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.status, 503);  // handed back, not retried
  EXPECT_EQ(client.retries(), 0u);
}

TEST(ClientRetry, ConnectFailureRetriesAndGivesUpCleanly) {
  // Nothing listens here: bind+close reserves a port that then refuses.
  int probe = ::socket(AF_INET, SOCK_STREAM, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;
  ASSERT_EQ(::bind(probe, reinterpret_cast<sockaddr*>(&addr), sizeof addr), 0);
  socklen_t len = sizeof addr;
  ASSERT_EQ(::getsockname(probe, reinterpret_cast<sockaddr*>(&addr), &len), 0);
  const std::uint16_t dead_port = ntohs(addr.sin_port);
  ::close(probe);

  server::RetryPolicy policy;
  policy.max_attempts = 2;
  policy.initial_backoff_ms = 1;
  server::Client client("127.0.0.1", dead_port, policy);
  const server::Client::Result result = client.get("/healthz");
  EXPECT_FALSE(result.ok);
  EXPECT_EQ(client.retries(), 1u);  // one backoff wait, then surrender
}

}  // namespace
}  // namespace qre
