// Tests of the serving-metrics sink (src/server/metrics.*) and its
// Prometheus text exposition (src/server/prometheus.*): latency bucket
// boundaries, status-class accounting, per-route insertion order, and the
// JSON-document → exposition-format rendering (cumulative buckets, labeled
// families, escaping).
#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "json/json.hpp"
#include "server/metrics.hpp"
#include "server/prometheus.hpp"

namespace qre {
namespace {

using server::Metrics;

// ------------------------------------------------------ Metrics JSON ---

TEST(Metrics, LatencyBucketBoundariesAreInclusiveUpperBounds) {
  Metrics m;
  const std::vector<double>& bounds = Metrics::latency_buckets_ms();
  ASSERT_GE(bounds.size(), 3u);
  m.record("GET /metrics", 200, bounds[0]);         // exactly on a bound: le
  m.record("GET /metrics", 200, bounds[0] + 0.001); // just past: next bucket
  m.record("GET /metrics", 200, bounds.back() + 1); // beyond all: overflow

  const json::Value doc = m.to_json();
  const json::Value& latency = doc.at("latencyMs");
  const json::Array& counts = latency.at("counts").as_array();
  ASSERT_EQ(counts.size(), bounds.size() + 1);  // + overflow bucket
  EXPECT_EQ(counts[0].as_uint(), 1u);
  EXPECT_EQ(counts[1].as_uint(), 1u);
  EXPECT_EQ(counts.back().as_uint(), 1u);
  EXPECT_EQ(latency.at("count").as_uint(), 3u);

  const json::Array& reported = latency.at("bucketUpperBoundsMs").as_array();
  ASSERT_EQ(reported.size(), bounds.size());
  for (std::size_t i = 0; i < bounds.size(); ++i) {
    EXPECT_DOUBLE_EQ(reported[i].as_double(), bounds[i]);
    if (i > 0) EXPECT_GT(bounds[i], bounds[i - 1]);  // strictly increasing
  }
}

TEST(Metrics, StatusClassesBucketByHundreds) {
  Metrics m;
  m.record("GET /a", 200, 1.0);
  m.record("GET /a", 204, 1.0);
  m.record("GET /a", 301, 1.0);
  m.record("GET /a", 404, 1.0);
  m.record("GET /a", 429, 1.0);
  m.record("GET /a", 500, 1.0);
  m.record("GET /a", 999, 1.0);  // out of range: counted in total only

  const json::Value by_status = m.to_json().at("responsesByStatus");
  EXPECT_EQ(by_status.at("1xx").as_uint(), 0u);
  EXPECT_EQ(by_status.at("2xx").as_uint(), 2u);
  EXPECT_EQ(by_status.at("3xx").as_uint(), 1u);
  EXPECT_EQ(by_status.at("4xx").as_uint(), 2u);
  EXPECT_EQ(by_status.at("5xx").as_uint(), 1u);
  EXPECT_EQ(m.requests_total(), 7u);
}

TEST(Metrics, RoutesKeepInsertionOrderAndMergeRepeats) {
  Metrics m;
  m.record("POST /v2/estimate", 200, 1.0);
  m.record("GET /metrics", 200, 1.0);
  m.record("POST /v2/estimate", 400, 1.0);
  m.record("(malformed)", 400, 0.0);  // pre-router reject label

  const json::Value doc = m.to_json();
  const json::Object& by_route = doc.at("requestsByRoute").as_object();
  ASSERT_EQ(by_route.size(), 3u);
  EXPECT_EQ(by_route[0].first, "POST /v2/estimate");
  EXPECT_EQ(by_route[0].second.as_uint(), 2u);
  EXPECT_EQ(by_route[1].first, "GET /metrics");
  EXPECT_EQ(by_route[2].first, "(malformed)");
  EXPECT_EQ(by_route[2].second.as_uint(), 1u);
}

TEST(Metrics, FreshInstanceRendersZeroedDocument) {
  Metrics m;
  const json::Value doc = m.to_json();
  EXPECT_EQ(doc.at("requestsTotal").as_uint(), 0u);
  EXPECT_EQ(doc.at("connectionsInFlight").as_int(), 0);
  EXPECT_EQ(doc.at("deadlineExceededTotal").as_uint(), 0u);
  const json::Array& counts = doc.at("latencyMs").at("counts").as_array();
  ASSERT_EQ(counts.size(), Metrics::latency_buckets_ms().size() + 1);
  for (const json::Value& c : counts) EXPECT_EQ(c.as_uint(), 0u);
}

// ------------------------------------------------- Prometheus text ------

TEST(Prometheus, RendersCountersGaugesAndLabeledMaps) {
  const json::Value doc = json::parse(R"({
    "server": {
      "requestsTotal": 12,
      "uptimeSeconds": 3.5,
      "connectionsInFlight": 2,
      "requestsByRoute": {"POST /v2/estimate": 7, "GET /metrics": 5},
      "responsesByStatus": {"2xx": 10, "4xx": 1, "5xx": 1}
    },
    "estimateCache": {"hits": 4, "misses": 8},
    "trace": {"enabled": true, "events": 100, "dropped": 0, "capacity": 65536}
  })");
  const std::string text = server::to_prometheus_text(doc);

  EXPECT_NE(text.find("# TYPE qre_requests_total counter"), std::string::npos);
  EXPECT_NE(text.find("qre_requests_total 12"), std::string::npos);
  EXPECT_NE(text.find("# TYPE qre_uptime_seconds gauge"), std::string::npos);
  EXPECT_NE(text.find("qre_uptime_seconds 3.5"), std::string::npos);
  EXPECT_NE(text.find("qre_connections_in_flight 2"), std::string::npos);
  EXPECT_NE(text.find(R"(qre_requests_by_route_total{route="POST /v2/estimate"} 7)"),
            std::string::npos);
  EXPECT_NE(text.find(R"(qre_responses_total{class="2xx"} 10)"), std::string::npos);
  EXPECT_NE(text.find(R"(qre_cache_hits_total{cache="estimate"} 4)"), std::string::npos);
  // Booleans render as 0/1 gauges.
  EXPECT_NE(text.find("qre_trace_enabled 1"), std::string::npos);
  // Every line is a sample or a # comment, and the text ends in a newline.
  ASSERT_FALSE(text.empty());
  EXPECT_EQ(text.back(), '\n');
  std::size_t start = 0;
  while (start < text.size()) {
    std::size_t end = text.find('\n', start);
    ASSERT_NE(end, std::string::npos);  // no unterminated final line
    const std::string line = text.substr(start, end - start);
    ASSERT_FALSE(line.empty());
    EXPECT_TRUE(line[0] == '#' || line.compare(0, 4, "qre_") == 0) << line;
    start = end + 1;
  }
}

TEST(Prometheus, HistogramIsCumulativeWithInfAndSum) {
  const json::Value doc = json::parse(R"({
    "server": {
      "latencyMs": {
        "bucketUpperBoundsMs": [1, 5, 25],
        "counts": [3, 2, 1, 4],
        "totalMs": 123.5,
        "count": 10
      }
    }
  })");
  const std::string text = server::to_prometheus_text(doc);

  EXPECT_NE(text.find("# TYPE qre_request_latency_ms histogram"), std::string::npos);
  // Per-bucket JSON counts become cumulative exposition counts.
  EXPECT_NE(text.find(R"(qre_request_latency_ms_bucket{le="1"} 3)"), std::string::npos);
  EXPECT_NE(text.find(R"(qre_request_latency_ms_bucket{le="5"} 5)"), std::string::npos);
  EXPECT_NE(text.find(R"(qre_request_latency_ms_bucket{le="25"} 6)"), std::string::npos);
  EXPECT_NE(text.find(R"(qre_request_latency_ms_bucket{le="+Inf"} 10)"), std::string::npos);
  EXPECT_NE(text.find("qre_request_latency_ms_sum 123.5"), std::string::npos);
  EXPECT_NE(text.find("qre_request_latency_ms_count 10"), std::string::npos);
}

TEST(Prometheus, EscapesLabelValues) {
  const json::Value doc = json::parse(R"({
    "server": {"requestsByRoute": {"GET /weird\"route\\path": 1}}
  })");
  const std::string text = server::to_prometheus_text(doc);
  EXPECT_NE(text.find(R"(route="GET /weird\"route\\path")"), std::string::npos);
}

TEST(Prometheus, OmitsAbsentFamiliesAndEmptyMaps) {
  // A minimal document (store disabled, no failpoints): absent JSON paths
  // must produce no output rather than zero-valued samples.
  const json::Value doc = json::parse(R"({"server": {"requestsTotal": 1}})");
  const std::string text = server::to_prometheus_text(doc);
  EXPECT_NE(text.find("qre_requests_total 1"), std::string::npos);
  EXPECT_EQ(text.find("qre_store_"), std::string::npos);
  EXPECT_EQ(text.find("qre_cache_"), std::string::npos);
  EXPECT_EQ(text.find("qre_failpoint"), std::string::npos);
  EXPECT_EQ(text.find("qre_requests_by_route_total"), std::string::npos);
}

TEST(Prometheus, LiveMetricsDocumentRoundTrips) {
  // End-to-end on a real Metrics instance wrapped the way the router wraps
  // it: the exposition must carry the recorded totals.
  Metrics m;
  m.record("GET /metrics", 200, 0.4);
  m.record("POST /v2/estimate", 500, 80.0);
  json::Object root;
  root.emplace_back("server", m.to_json());
  const std::string text = server::to_prometheus_text(json::Value(std::move(root)));
  EXPECT_NE(text.find("qre_requests_total 2"), std::string::npos);
  EXPECT_NE(text.find(R"(qre_responses_total{class="5xx"} 1)"), std::string::npos);
  EXPECT_NE(text.find(R"(qre_request_latency_ms_bucket{le="0.5"} 1)"), std::string::npos);
  EXPECT_NE(text.find("qre_request_latency_ms_count 2"), std::string::npos);
}

}  // namespace
}  // namespace qre
