// Exact-Karatsuba verification (simulator, against classical products,
// including the taped adjoint cleanup) and cost-model calibration checks
// (the standard-vs-Karatsuba crossover the paper reports near 4096 bits).
#include <gtest/gtest.h>

#include "arith/karatsuba.hpp"
#include "arith/multipliers.hpp"
#include "circuit/builder.hpp"
#include "common/error.hpp"
#include "counter/logical_counter.hpp"
#include "sim/sparse_simulator.hpp"

namespace qre {
namespace {

std::uint64_t mask_bits(std::size_t n) {
  return n >= 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << n) - 1;
}

class KaratsubaProductSim : public ::testing::TestWithParam<int> {};

TEST_P(KaratsubaProductSim, OutOfPlaceProductMatches) {
  int n = GetParam();
  KaratsubaOptions opts;
  opts.cutoff = 5;  // force recursion for n >= 6
  std::uint64_t s = 31415926535ull;
  for (int round = 0; round < 8; ++round) {
    s = s * 6364136223846793005ull + 1442695040888963407ull;
    std::uint64_t xv = (s >> 28) & mask_bits(n);
    s = s * 6364136223846793005ull + 1442695040888963407ull;
    std::uint64_t yv = (s >> 28) & mask_bits(n);
    SparseSimulator sim(s | 1);
    ProgramBuilder bld(sim);
    Register x = bld.alloc_register(n);
    Register y = bld.alloc_register(n);
    Register p = bld.alloc_register(2 * n);
    bld.xor_constant(x, xv);
    bld.xor_constant(y, yv);
    karatsuba_product(bld, x, y, p, opts);
    EXPECT_EQ(sim.peek_classical(p), xv * yv) << "n=" << n << " x=" << xv << " y=" << yv;
    EXPECT_EQ(sim.peek_classical(x), xv);
    EXPECT_EQ(sim.peek_classical(y), yv);
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, KaratsubaProductSim, ::testing::Values(6, 7, 8));

class KaratsubaMultAddSim : public ::testing::TestWithParam<int> {};

TEST_P(KaratsubaMultAddSim, AccumulatesAndCleansWorkspace) {
  int n = GetParam();
  KaratsubaOptions opts;
  opts.cutoff = 5;
  std::uint64_t s = 2718281828ull;
  for (int round = 0; round < 6; ++round) {
    s = s * 6364136223846793005ull + 1442695040888963407ull;
    std::uint64_t xv = (s >> 28) & mask_bits(n);
    s = s * 6364136223846793005ull + 1442695040888963407ull;
    std::uint64_t yv = (s >> 28) & mask_bits(n);
    s = s * 6364136223846793005ull + 1442695040888963407ull;
    std::uint64_t acc0 = (s >> 28) & mask_bits(2 * n);
    SparseSimulator sim(s | 1);
    ProgramBuilder bld(sim);
    Register x = bld.alloc_register(n);
    Register y = bld.alloc_register(n);
    Register acc = bld.alloc_register(2 * n);
    bld.xor_constant(x, xv);
    bld.xor_constant(y, yv);
    bld.xor_constant(acc, acc0);
    std::uint64_t live_before = bld.live_qubits();
    karatsuba_mult_add(bld, x, y, acc, opts);
    // All workspace reclaimed; the simulator's release check verified |0>.
    EXPECT_EQ(bld.live_qubits(), live_before);
    EXPECT_EQ(sim.peek_classical(acc), (acc0 + xv * yv) & mask_bits(2 * n)) << "n=" << n;
    EXPECT_EQ(sim.peek_classical(x), xv);
    EXPECT_EQ(sim.peek_classical(y), yv);
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, KaratsubaMultAddSim, ::testing::Values(6, 7, 8));

TEST(Karatsuba, BaseCaseFallsBackToSchoolbook) {
  SparseSimulator sim(9);
  ProgramBuilder bld(sim);
  Register x = bld.alloc_register(4);
  Register y = bld.alloc_register(4);
  Register acc = bld.alloc_register(8);
  bld.xor_constant(x, 13);
  bld.xor_constant(y, 11);
  karatsuba_mult_add(bld, x, y, acc, {});
  EXPECT_EQ(sim.peek_classical(acc), 143u);
}

TEST(Karatsuba, RejectsUnequalOperands) {
  LogicalCounter counter;
  ProgramBuilder bld(counter);
  Register x = bld.alloc_register(4);
  Register y = bld.alloc_register(6);
  Register acc = bld.alloc_register(12);
  EXPECT_THROW(karatsuba_mult_add(bld, x, y, acc, {}), Error);
}

TEST(Karatsuba, ExactCircuitFollowsThreeWayRecurrence) {
  // CCiX(2n) / CCiX(n) approaches 3 as the linear terms fade.
  MultiplierOptions opts;
  opts.cutoff = 8;
  std::uint64_t c16 = multiplier_counts(MultiplierKind::kKaratsubaExact, 16, opts).ccix_count;
  std::uint64_t c32 = multiplier_counts(MultiplierKind::kKaratsubaExact, 32, opts).ccix_count;
  std::uint64_t c64 = multiplier_counts(MultiplierKind::kKaratsubaExact, 64, opts).ccix_count;
  std::uint64_t c128 =
      multiplier_counts(MultiplierKind::kKaratsubaExact, 128, opts).ccix_count;
  double r1 = static_cast<double>(c32) / static_cast<double>(c16);
  double r2 = static_cast<double>(c64) / static_cast<double>(c32);
  double r3 = static_cast<double>(c128) / static_cast<double>(c64);
  EXPECT_GT(r3, 2.6);
  EXPECT_LT(r3, 3.6);
  // Ratios drift toward 3 (from the schoolbook base upward).
  EXPECT_LT(std::abs(r3 - 3.0), std::abs(r1 - 3.0) + 0.5);
  (void)r2;
}

TEST(Karatsuba, ExactCircuitIsMeasurementFreeInProduct) {
  // The taped construction uses unitary uncompute: measurements only appear
  // in the final accumulator addition.
  MultiplierOptions opts;
  opts.cutoff = 8;
  LogicalCounts c = multiplier_counts(MultiplierKind::kKaratsubaExact, 32, opts);
  // Final add of 64-bit product into accumulator: 63 measurement-based
  // unands; everything else is unitary.
  EXPECT_EQ(c.measurement_count, 63u);
}

TEST(KaratsubaModel, RecurrenceIsExact) {
  KaratsubaModel model;
  EXPECT_DOUBLE_EQ(model.toffoli_count(16), 5.5 * 256.0);
  EXPECT_DOUBLE_EQ(model.toffoli_count(32), 5.5 * 1024.0);
  EXPECT_DOUBLE_EQ(model.toffoli_count(64), 3 * 5.5 * 1024.0 + 20.0 * 64.0);
  EXPECT_DOUBLE_EQ(model.toffoli_count(128),
                   3 * model.toffoli_count(64) + 20.0 * 128.0);
}

TEST(KaratsubaModel, PaperCrossoverCalibration) {
  // Paper Section V: Karatsuba first beats standard multiplication around
  // 4096 bits and is consistently better beyond 16384 bits; below 2048 bits
  // it is slower. Standard long multiplication costs n^2 ANDs here.
  KaratsubaModel model;
  auto ratio = [&](std::uint64_t n) {
    return model.toffoli_count(n) / (static_cast<double>(n) * static_cast<double>(n));
  };
  EXPECT_GT(ratio(1024), 1.3);
  EXPECT_GT(ratio(2048), 1.0);
  EXPECT_LT(ratio(4096), 1.0);
  EXPECT_LT(ratio(8192), 0.8);
  EXPECT_LT(ratio(16384), 0.6);
}

TEST(KaratsubaModel, EmitterProducesBatchedCounts) {
  LogicalCounts c = multiplier_counts(MultiplierKind::kKaratsuba, 2048);
  KaratsubaModel model;
  EXPECT_EQ(c.ccix_count, static_cast<std::uint64_t>(std::ceil(model.toffoli_count(2048))));
  EXPECT_EQ(c.measurement_count, c.ccix_count);
  EXPECT_EQ(c.num_qubits, static_cast<std::uint64_t>(8 * 2048));
}

TEST(KaratsubaModel, UsesMoreQubitsThanRivals) {
  // The paper: "the Karatsuba algorithm requires more physical qubits than
  // the other two algorithms" — true already pre-layout.
  std::uint64_t n = 2048;
  std::uint64_t kq = multiplier_counts(MultiplierKind::kKaratsuba, n).num_qubits;
  std::uint64_t sq = multiplier_counts(MultiplierKind::kStandard, n).num_qubits;
  std::uint64_t wq = multiplier_counts(MultiplierKind::kWindowed, n).num_qubits;
  EXPECT_GT(kq, sq);
  EXPECT_GT(kq, wq);
}

TEST(KaratsubaModel, EmitterRequiresCountingBackend) {
  SparseSimulator sim;
  ProgramBuilder bld(sim);
  EXPECT_THROW(emit_karatsuba_model(bld, 64, {}), Error);
}

}  // namespace
}  // namespace qre
