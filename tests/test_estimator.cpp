// End-to-end tests of the estimation pipeline (paper Section III), including
// a fully hand-computed reference case, budget-satisfaction properties
// across profiles and workloads, constraint handling, and frontier Pareto
// invariants.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "arith/qft.hpp"
#include "circuit/builder.hpp"
#include "common/error.hpp"
#include "core/estimator.hpp"
#include "counter/logical_counter.hpp"
#include "layout/layout.hpp"
#include "tfactory/factory_cache.hpp"

namespace qre {
namespace {

LogicalCounts t_workload() {
  LogicalCounts c;
  c.num_qubits = 100;
  c.t_count = 1'000'000;
  c.measurement_count = 100'000;
  return c;
}

TEST(ErrorBudgetTest, DefaultPartitions) {
  ErrorBudget b = ErrorBudget::from_total(9e-4);
  ErrorBudgetPartition rot = b.resolve(true, true);
  EXPECT_DOUBLE_EQ(rot.logical, 3e-4);
  EXPECT_DOUBLE_EQ(rot.tstates, 3e-4);
  EXPECT_DOUBLE_EQ(rot.rotations, 3e-4);
  ErrorBudgetPartition no_rot = b.resolve(true, false);
  EXPECT_DOUBLE_EQ(no_rot.logical, 4.5e-4);
  EXPECT_DOUBLE_EQ(no_rot.rotations, 0.0);
  ErrorBudgetPartition clifford_only = b.resolve(false, false);
  EXPECT_DOUBLE_EQ(clifford_only.logical, 9e-4);
}

TEST(ErrorBudgetTest, ExplicitPartsAndJson) {
  ErrorBudget b = ErrorBudget::from_parts(1e-4, 2e-4, 3e-4);
  EXPECT_DOUBLE_EQ(b.total(), 6e-4);
  ErrorBudgetPartition p = b.resolve(true, true);
  EXPECT_DOUBLE_EQ(p.tstates, 2e-4);
  ErrorBudget from_num = ErrorBudget::from_json(json::parse("0.001"));
  EXPECT_DOUBLE_EQ(from_num.total(), 1e-3);
  ErrorBudget from_obj =
      ErrorBudget::from_json(json::parse(R"({"logical":1e-5,"tstates":1e-5,"rotations":0})"));
  EXPECT_DOUBLE_EQ(from_obj.total(), 2e-5);
  EXPECT_THROW(from_obj.resolve(true, true), Error);  // rotations present, budget zero
  EXPECT_THROW(ErrorBudget::from_total(0.0), Error);
  EXPECT_THROW(ErrorBudget::from_total(1.5), Error);
}

TEST(Estimator, HandComputedReferenceCase) {
  // 100 algorithmic qubits, 1e6 T gates, 1e5 measurements on gate_ns_e3
  // with the surface code and a 1e-3 budget (no rotations -> 1/2, 1/2, 0).
  EstimationInput input = EstimationInput::for_profile(t_workload(), "qubit_gate_ns_e3", 1e-3);
  ResourceEstimate e = estimate(input);

  // Layout: Q = 2*100 + ceil(sqrt(800)) + 1 = 230.
  EXPECT_EQ(e.algorithmic_logical_qubits, 230u);
  // Depth: C = M + T = 1.1e6 (no CCZ/CCiX/rotations).
  EXPECT_EQ(e.algorithmic_logical_depth, 1'100'000u);
  EXPECT_EQ(e.num_tstates, 1'000'000u);
  EXPECT_EQ(e.num_ts_per_rotation, 0u);

  // Required logical error: 5e-4 / (230 * 1.1e6) = 1.976e-12 -> d = 21.
  EXPECT_NEAR(e.required_logical_qubit_error_rate, 5e-4 / (230.0 * 1.1e6), 1e-18);
  EXPECT_EQ(e.logical_qubit.code_distance, 21u);
  EXPECT_EQ(e.logical_qubit.physical_qubits, 2u * 21 * 21);
  // Cycle: (4*50 + 2*100) * 21 = 8400 ns.
  EXPECT_DOUBLE_EQ(e.logical_qubit.cycle_time_ns, 8400.0);

  EXPECT_EQ(e.physical_qubits_for_algorithm, 230u * 882);
  // No factory cap: runtime = C * cycle.
  EXPECT_DOUBLE_EQ(e.runtime_ns, 1.1e6 * 8400.0);
  EXPECT_NEAR(e.rqops, 230.0 * (1e9 / 8400.0), 1e-3);
  EXPECT_NEAR(e.logical_operations, 230.0 * 1.1e6, 1.0);

  // T factory: required per-T error 5e-4 / 1e6 = 5e-10.
  EXPECT_NEAR(e.required_tstate_error_rate, 5e-10, 1e-20);
  ASSERT_TRUE(e.tfactory.has_value());
  EXPECT_FALSE(e.tfactory->no_distillation());
  EXPECT_LE(e.tfactory->output_error_rate, 5e-10);
  EXPECT_GE(e.num_t_factories, 1u);
  EXPECT_EQ(e.total_physical_qubits,
            e.physical_qubits_for_algorithm + e.physical_qubits_for_tfactories);
  EXPECT_EQ(e.physical_qubits_for_tfactories,
            e.num_t_factories * e.tfactory->physical_qubits);

  // Budget respected.
  EXPECT_LE(e.achieved_logical_error, 5e-4 * (1 + 1e-9));
  EXPECT_LE(e.achieved_tstate_error, 5e-4 * (1 + 1e-9));
}

TEST(Estimator, FactorySupplyCoversDemand) {
  EstimationInput input = EstimationInput::for_profile(t_workload(), "qubit_gate_ns_e3", 1e-3);
  ResourceEstimate e = estimate(input);
  ASSERT_TRUE(e.tfactory.has_value());
  // Total invocations across all copies deliver enough T states within the
  // runtime.
  double delivered = static_cast<double>(e.num_t_factory_invocations) *
                     e.tfactory->tstates_per_invocation;
  EXPECT_GE(delivered + 1.0, static_cast<double>(e.num_tstates));
  double per_copy_time = static_cast<double>(e.num_invocations_per_factory) *
                         e.tfactory->duration_ns;
  EXPECT_LE(per_copy_time, e.runtime_ns * (1 + 1e-9));
}

struct SweepCase {
  const char* profile;
  double budget;
};

class BudgetSweep : public ::testing::TestWithParam<SweepCase> {};

TEST_P(BudgetSweep, InvariantsHoldAcrossProfilesAndBudgets) {
  auto [profile, budget] = GetParam();
  LogicalCounts counts;
  counts.num_qubits = 50;
  counts.t_count = 2'000;
  counts.ccz_count = 10'000;
  counts.ccix_count = 5'000;
  counts.measurement_count = 20'000;
  counts.rotation_count = 300;
  counts.rotation_depth = 120;
  EstimationInput input = EstimationInput::for_profile(counts, profile, budget);
  ResourceEstimate e = estimate(input);

  EXPECT_EQ(e.logical_qubit.code_distance % 2, 1u);
  EXPECT_GT(e.total_physical_qubits, 0u);
  EXPECT_GT(e.runtime_ns, 0.0);
  EXPECT_GT(e.rqops, 0.0);
  EXPECT_EQ(e.algorithmic_logical_qubits, post_layout_logical_qubits(50));

  // Depth formula: C = M + R + T + 3*(CCZ+CCiX) + nT * D_R.
  std::uint64_t expected_depth = 20'000 + 300 + 2'000 + 3 * 15'000 +
                                 e.num_ts_per_rotation * 120;
  EXPECT_EQ(e.algorithmic_logical_depth, expected_depth);
  // T states: T + 4*(CCZ+CCiX) + nT * R.
  EXPECT_EQ(e.num_tstates, 2'000 + 4 * 15'000 + e.num_ts_per_rotation * 300);
  // Rotation synthesis cost: ceil(0.53*log2(R/eps_syn) + 5.3).
  double eps_syn = budget / 3.0;
  auto expected_nt = static_cast<std::uint64_t>(
      std::ceil(0.53 * std::log2(300.0 / eps_syn) + 5.3 - 1e-9));
  EXPECT_EQ(e.num_ts_per_rotation, expected_nt);

  // Budgets respected.
  EXPECT_LE(e.achieved_logical_error, e.budget.logical * (1 + 1e-9));
  EXPECT_LE(e.achieved_tstate_error, e.budget.tstates * (1 + 1e-9));
  EXPECT_NEAR(e.budget.logical + e.budget.tstates + e.budget.rotations, budget, budget * 1e-9);

  // rQOPS definition.
  EXPECT_NEAR(e.rqops,
              static_cast<double>(e.algorithmic_logical_qubits) * e.clock_frequency_hz,
              e.rqops * 1e-12);
}

INSTANTIATE_TEST_SUITE_P(
    ProfilesAndBudgets, BudgetSweep,
    ::testing::Values(SweepCase{"qubit_gate_ns_e3", 1e-2}, SweepCase{"qubit_gate_ns_e3", 1e-4},
                      SweepCase{"qubit_gate_ns_e4", 1e-3}, SweepCase{"qubit_gate_us_e3", 1e-3},
                      SweepCase{"qubit_gate_us_e4", 1e-4}, SweepCase{"qubit_maj_ns_e4", 1e-3},
                      SweepCase{"qubit_maj_ns_e4", 1e-4}, SweepCase{"qubit_maj_ns_e6", 1e-3}),
    [](const ::testing::TestParamInfo<SweepCase>& info) {
      std::string name = info.param.profile;
      name += info.param.budget == 1e-2 ? "_e2" : (info.param.budget == 1e-3 ? "_e3" : "_e4");
      return name;
    });

TEST(Estimator, TighterBudgetNeverCheaper) {
  LogicalCounts counts = t_workload();
  ResourceEstimate loose =
      estimate(EstimationInput::for_profile(counts, "qubit_maj_ns_e4", 1e-2));
  ResourceEstimate tight =
      estimate(EstimationInput::for_profile(counts, "qubit_maj_ns_e4", 1e-5));
  EXPECT_GE(tight.logical_qubit.code_distance, loose.logical_qubit.code_distance);
  EXPECT_GE(tight.total_physical_qubits, loose.total_physical_qubits);
  EXPECT_GE(tight.runtime_ns, loose.runtime_ns);
}

TEST(Estimator, CliffordOnlyProgramNeedsNoFactories) {
  LogicalCounts counts;
  counts.num_qubits = 16;
  counts.measurement_count = 5'000;
  counts.clifford_count = 100'000;
  EstimationInput input = EstimationInput::for_profile(counts, "qubit_gate_ns_e3", 1e-3);
  ResourceEstimate e = estimate(input);
  EXPECT_EQ(e.num_tstates, 0u);
  EXPECT_EQ(e.num_t_factories, 0u);
  EXPECT_EQ(e.physical_qubits_for_tfactories, 0u);
  EXPECT_FALSE(e.tfactory.has_value());
  EXPECT_DOUBLE_EQ(e.budget.logical, 1e-3);  // everything went to the logical part
}

TEST(Estimator, RawTStatesWithoutDistillation) {
  // us-scale ions have 1e-6 T error; a loose budget needs no distillation.
  LogicalCounts counts;
  counts.num_qubits = 10;
  counts.t_count = 50;
  counts.measurement_count = 10;
  EstimationInput input = EstimationInput::for_profile(counts, "qubit_gate_us_e3", 1e-2);
  ResourceEstimate e = estimate(input);
  ASSERT_TRUE(e.tfactory.has_value());
  EXPECT_TRUE(e.tfactory->no_distillation());
  EXPECT_EQ(e.num_t_factories, 0u);
  EXPECT_EQ(e.physical_qubits_for_tfactories, 0u);
}

TEST(Estimator, LogicalDepthFactorStretchesSchedule) {
  EstimationInput input = EstimationInput::for_profile(t_workload(), "qubit_gate_ns_e3", 1e-3);
  ResourceEstimate base = estimate(input);
  input.constraints.logical_depth_factor = 4.0;
  ResourceEstimate slow = estimate(input);
  EXPECT_GE(slow.logical_depth, 4 * slow.algorithmic_logical_depth);
  EXPECT_GT(slow.runtime_ns, base.runtime_ns);
  // Fewer factory copies are needed when there is more time.
  EXPECT_LE(slow.num_t_factories, base.num_t_factories);
  // Stretching the schedule may demand a larger code distance, never smaller.
  EXPECT_GE(slow.logical_qubit.code_distance, base.logical_qubit.code_distance);
}

TEST(Estimator, MaxTFactoriesCapRespected) {
  EstimationInput input = EstimationInput::for_profile(t_workload(), "qubit_gate_ns_e3", 1e-3);
  ResourceEstimate base = estimate(input);
  ASSERT_GT(base.num_t_factories, 2u);
  input.constraints.max_t_factories = 2;
  ResourceEstimate capped = estimate(input);
  EXPECT_LE(capped.num_t_factories, 2u);
  EXPECT_GE(capped.runtime_ns, base.runtime_ns);
  EXPECT_LE(capped.physical_qubits_for_tfactories, base.physical_qubits_for_tfactories);
  // Supply still covers demand.
  ASSERT_TRUE(capped.tfactory.has_value());
  double delivered = static_cast<double>(capped.num_t_factory_invocations) *
                     capped.tfactory->tstates_per_invocation;
  EXPECT_GE(delivered + 1.0, static_cast<double>(capped.num_tstates));
}

TEST(Estimator, MaxDurationValidates) {
  EstimationInput input = EstimationInput::for_profile(t_workload(), "qubit_gate_ns_e3", 1e-3);
  ResourceEstimate base = estimate(input);
  input.constraints.max_duration_ns = base.runtime_ns * 0.5;
  EXPECT_THROW(estimate(input), Error);
  input.constraints.max_duration_ns = base.runtime_ns * 2.0;
  EXPECT_NO_THROW(estimate(input));
}

TEST(Estimator, MaxPhysicalQubitsTradesRuntime) {
  EstimationInput input = EstimationInput::for_profile(t_workload(), "qubit_gate_ns_e3", 1e-3);
  ResourceEstimate base = estimate(input);
  ASSERT_GT(base.num_t_factories, 2u);
  std::uint64_t limit = base.physical_qubits_for_algorithm +
                        base.physical_qubits_for_tfactories / 2;
  input.constraints.max_physical_qubits = limit;
  ResourceEstimate squeezed = estimate(input);
  EXPECT_LE(squeezed.total_physical_qubits, limit);
  EXPECT_GE(squeezed.runtime_ns, base.runtime_ns);
  // An impossible bound still throws.
  input.constraints.max_physical_qubits = base.physical_qubits_for_algorithm / 10;
  EXPECT_THROW(estimate(input), Error);
}

TEST(Estimator, MaxPhysicalQubitsWithMaxDurationStaysFeasible) {
  // Both bounds at once: the cap search probes low factory caps whose
  // stretched schedules violate maxDuration; those probes must steer the
  // search upward, not reject the job.
  EstimationInput input = EstimationInput::for_profile(t_workload(), "qubit_gate_ns_e3", 1e-3);
  ResourceEstimate base = estimate(input);
  ASSERT_GT(base.num_t_factories, 2u);
  std::uint64_t limit = base.physical_qubits_for_algorithm +
                        base.physical_qubits_for_tfactories / 2;
  input.constraints.max_physical_qubits = limit;
  ResourceEstimate squeezed = estimate(input);
  // A duration bound just above the squeezed schedule: satisfiable, but
  // violated by every slower (lower-cap) schedule.
  input.constraints.max_duration_ns = squeezed.runtime_ns * 1.01;
  ResourceEstimate both = estimate(input);
  EXPECT_LE(both.total_physical_qubits, limit);
  EXPECT_LE(both.runtime_ns, *input.constraints.max_duration_ns);
}

TEST(Estimator, FrontierIsPareto) {
  EstimationInput input = EstimationInput::for_profile(t_workload(), "qubit_gate_ns_e3", 1e-3);
  std::vector<ResourceEstimate> frontier = estimate_frontier(input, 8);
  ASSERT_GE(frontier.size(), 2u);
  for (std::size_t i = 1; i < frontier.size(); ++i) {
    EXPECT_GT(frontier[i].runtime_ns, frontier[i - 1].runtime_ns);
    EXPECT_LT(frontier[i].total_physical_qubits, frontier[i - 1].total_physical_qubits);
  }
  // The fastest point is the unconstrained estimate.
  ResourceEstimate base = estimate(input);
  EXPECT_DOUBLE_EQ(frontier.front().runtime_ns, base.runtime_ns);
}

TEST(Estimator, FrontierReusesTheBaseFactoryDesign) {
  // Every capped frontier point shares the base point's factory (the cap
  // changes the schedule, not the required T-state quality), so the
  // process-level FactoryCache must serve all of them from one design.
  EstimationInput input = EstimationInput::for_profile(t_workload(), "qubit_gate_ns_e3", 1e-3);
  FactoryCache& cache = FactoryCache::global();
  cache.clear();
  std::vector<ResourceEstimate> frontier = estimate_frontier(input, 8);
  ASSERT_GE(frontier.size(), 2u);
  EXPECT_EQ(cache.misses(), 1u);  // one design problem across the whole frontier
  EXPECT_GE(cache.hits(), frontier.size() - 1);
  // And the hit rate only improves when the same input is estimated again.
  std::uint64_t hits_before = cache.hits();
  estimate(input);
  EXPECT_EQ(cache.hits(), hits_before + 1);
  EXPECT_EQ(cache.misses(), 1u);
}

TEST(Estimator, QftRotationWorkload) {
  LogicalCounter counter;
  ProgramBuilder bld(counter);
  Register reg = bld.alloc_register(12);
  qft(bld, reg);
  LogicalCounts counts = counter.counts();
  EXPECT_EQ(counts.rotation_count, 3u * (12 * 11 / 2));
  EXPECT_GT(counts.rotation_depth, 0u);

  EstimationInput input = EstimationInput::for_profile(counts, "qubit_gate_ns_e4", 1e-3);
  ResourceEstimate e = estimate(input);
  EXPECT_GE(e.num_ts_per_rotation, 6u);
  EXPECT_GT(e.num_tstates, counts.rotation_count * e.num_ts_per_rotation - 1);
  EXPECT_DOUBLE_EQ(e.budget.rotations, 1e-3 / 3.0);
}

TEST(Estimator, NumTsPerRotationOverride) {
  LogicalCounts counts;
  counts.num_qubits = 8;
  counts.rotation_count = 100;
  counts.rotation_depth = 100;
  EstimationInput input = EstimationInput::for_profile(counts, "qubit_gate_ns_e3", 1e-3);
  input.constraints.num_ts_per_rotation = 30;
  ResourceEstimate e = estimate(input);
  EXPECT_EQ(e.num_ts_per_rotation, 30u);
  EXPECT_EQ(e.num_tstates, 3000u);
  EXPECT_EQ(e.algorithmic_logical_depth, 100u + 30u * 100u);
}

TEST(Estimator, ConstraintsJsonRoundTrip) {
  json::Value v = json::parse(R"({
    "logicalDepthFactor": 2.5,
    "maxTFactories": 7,
    "maxDuration": 1e12,
    "maxPhysicalQubits": 5000000,
    "numTsPerRotation": 17
  })");
  Constraints c = Constraints::from_json(v);
  EXPECT_DOUBLE_EQ(*c.logical_depth_factor, 2.5);
  EXPECT_EQ(*c.max_t_factories, 7u);
  EXPECT_DOUBLE_EQ(*c.max_duration_ns, 1e12);
  EXPECT_EQ(*c.max_physical_qubits, 5'000'000u);
  EXPECT_EQ(*c.num_ts_per_rotation, 17u);
  Constraints back = Constraints::from_json(c.to_json());
  EXPECT_EQ(*back.max_t_factories, 7u);
  EXPECT_THROW(Constraints::from_json(json::parse(R"({"logicalDepthFactor": 0.5})")), Error);
  // Typos ("maxTFactoris") are rejected, or warned about through a sink.
  json::Value typo = json::parse(R"({"maxTFactoris": 4})");
  EXPECT_THROW(Constraints::from_json(typo), Error);
  Diagnostics diags;
  Constraints lenient = Constraints::from_json(typo, &diags);
  EXPECT_FALSE(lenient.max_t_factories.has_value());
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags.entries()[0].path, "/constraints/maxTFactoris");
  // Same for the error budget object ("totl" vs "total").
  EXPECT_THROW(ErrorBudget::from_json(json::parse(R"({"totl": 0.01})")), Error);
}

TEST(Estimator, InfeasibleTargetsExplain) {
  LogicalCounts counts = t_workload();
  EstimationInput input = EstimationInput::for_profile(counts, "qubit_maj_ns_e4", 1e-3);
  input.factory_options.max_rounds = 1;  // cannot reach per-T 5e-10 from 5e-2
  try {
    estimate(input);
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("T factory"), std::string::npos);
  }
}

TEST(Estimator, ZeroQubitProgramRejected) {
  LogicalCounts counts;
  counts.num_qubits = 0;
  EstimationInput input;
  input.counts = counts;
  EXPECT_THROW(estimate(input), Error);
}

}  // namespace
}  // namespace qre
