#include <gtest/gtest.h>

#include "circuit/builder.hpp"
#include "common/error.hpp"
#include "counter/logical_counter.hpp"

namespace qre {
namespace {

TEST(Counter, BasicGateCounts) {
  LogicalCounter counter;
  ProgramBuilder bld(counter);
  Register q = bld.alloc_register(3);
  bld.t(q[0]);
  bld.tdg(q[1]);
  bld.ccz(q[0], q[1], q[2]);
  bld.ccix(q[0], q[1], q[2]);
  bld.ccx(q[0], q[1], q[2]);  // costed as CCZ
  bld.h(q[0]);
  bld.cx(q[0], q[1]);
  bld.mz(q[2]);
  bld.mx(q[0]);

  const LogicalCounts& c = counter.counts();
  EXPECT_EQ(c.num_qubits, 3u);
  EXPECT_EQ(c.t_count, 2u);
  EXPECT_EQ(c.ccz_count, 2u);
  EXPECT_EQ(c.ccix_count, 1u);
  EXPECT_EQ(c.measurement_count, 2u);
  EXPECT_EQ(c.clifford_count, 2u);
  EXPECT_EQ(c.rotation_count, 0u);
  EXPECT_EQ(c.rotation_depth, 0u);
}

TEST(Counter, MeasurementsReturnFalse) {
  LogicalCounter counter;
  ProgramBuilder bld(counter);
  QubitId q = bld.alloc();
  EXPECT_FALSE(bld.mz(q));
  EXPECT_FALSE(bld.mx(q));
}

TEST(Counter, HighWaterTracksReuse) {
  LogicalCounter counter;
  ProgramBuilder bld(counter);
  Register a = bld.alloc_register(4);
  bld.free_register(a);
  Register b = bld.alloc_register(3);  // reuses freed ids
  EXPECT_EQ(counter.counts().num_qubits, 4u);
  Register c = bld.alloc_register(4);  // 3 + 4 live now
  EXPECT_EQ(counter.counts().num_qubits, 7u);
  bld.free_register(c);
  bld.free_register(b);
}

TEST(Counter, ParallelRotationsShareALayer) {
  LogicalCounter counter;
  ProgramBuilder bld(counter);
  Register q = bld.alloc_register(3);
  bld.rz(0.1, q[0]);
  bld.rz(0.2, q[1]);
  bld.rz(0.3, q[2]);
  EXPECT_EQ(counter.counts().rotation_count, 3u);
  EXPECT_EQ(counter.counts().rotation_depth, 1u);
}

TEST(Counter, SequentialRotationsStackLayers) {
  LogicalCounter counter;
  ProgramBuilder bld(counter);
  QubitId q = bld.alloc();
  bld.rz(0.1, q);
  bld.rz(0.2, q);
  bld.rz(0.3, q);
  EXPECT_EQ(counter.counts().rotation_depth, 3u);
}

TEST(Counter, NonRotationLayersSeparateRotations) {
  LogicalCounter counter;
  ProgramBuilder bld(counter);
  QubitId q = bld.alloc();
  bld.rz(0.1, q);
  bld.t(q);  // non-Clifford layer without a rotation
  bld.rz(0.2, q);
  EXPECT_EQ(counter.counts().rotation_depth, 2u);
  EXPECT_EQ(counter.counts().t_count, 1u);
}

TEST(Counter, CliffordsAreTransparentToLayering) {
  LogicalCounter counter;
  ProgramBuilder bld(counter);
  Register q = bld.alloc_register(2);
  bld.rz(0.1, q[0]);
  bld.h(q[0]);
  bld.cx(q[0], q[1]);  // Cliffords do not advance layers
  bld.rz(0.2, q[1]);   // operand layer still 0 -> lands in layer 1 with the first
  EXPECT_EQ(counter.counts().rotation_depth, 1u);
}

TEST(Counter, EntanglingNonCliffordsPropagateLayers) {
  LogicalCounter counter;
  ProgramBuilder bld(counter);
  Register q = bld.alloc_register(3);
  bld.rz(0.1, q[0]);             // layer 1 on q0
  bld.ccz(q[0], q[1], q[2]);     // layer 2 on q0,q1,q2
  bld.rz(0.2, q[2]);             // layer 3 -> second rotation layer
  EXPECT_EQ(counter.counts().rotation_depth, 2u);
}

TEST(Counter, RotationKindsAllCount) {
  LogicalCounter counter;
  ProgramBuilder bld(counter);
  QubitId q = bld.alloc();
  bld.rx(0.1, q);
  bld.ry(0.1, q);
  bld.rz(0.1, q);
  bld.r1(0.1, q);
  EXPECT_EQ(counter.counts().rotation_count, 4u);
  EXPECT_EQ(counter.counts().rotation_depth, 4u);
}

TEST(Counter, CphaseCostsThreeRotations) {
  LogicalCounter counter;
  ProgramBuilder bld(counter);
  Register q = bld.alloc_register(2);
  bld.cphase(0.7, q[0], q[1]);
  EXPECT_EQ(counter.counts().rotation_count, 3u);
  EXPECT_EQ(counter.counts().clifford_count, 2u);
}

TEST(Counter, AndGadgetCosts) {
  LogicalCounter counter;
  ProgramBuilder bld(counter);
  Register q = bld.alloc_register(2);
  QubitId t = bld.alloc();
  bld.compute_and(q[0], q[1], t);
  bld.uncompute_and(q[0], q[1], t);
  bld.free(t);
  const LogicalCounts& c = counter.counts();
  EXPECT_EQ(c.ccix_count, 1u);        // compute
  EXPECT_EQ(c.measurement_count, 1u); // measurement-based uncompute
  EXPECT_EQ(c.t_count, 0u);
}

TEST(Counter, BatchedEvents) {
  LogicalCounter counter;
  ProgramBuilder bld(counter);
  (void)bld.alloc();
  counter.on_gate_batch(Gate::kCcix, 1000);
  counter.on_gate_batch(Gate::kCcz, 10);
  counter.on_gate_batch(Gate::kT, 7);
  counter.on_gate_batch(Gate::kCx, 4000);
  counter.on_measure_batch(Gate::kMz, 1000);
  const LogicalCounts& c = counter.counts();
  EXPECT_EQ(c.ccix_count, 1000u);
  EXPECT_EQ(c.ccz_count, 10u);
  EXPECT_EQ(c.t_count, 7u);
  EXPECT_EQ(c.clifford_count, 4000u);
  EXPECT_EQ(c.measurement_count, 1000u);
  EXPECT_THROW(counter.on_gate_batch(Gate::kRz, 5), Error);
}

TEST(Counter, CountsJsonRoundTrip) {
  LogicalCounts c;
  c.num_qubits = 230;
  c.t_count = 1000000;
  c.rotation_count = 52;
  c.rotation_depth = 40;
  c.ccz_count = 11;
  c.ccix_count = 22;
  c.measurement_count = 9;
  c.clifford_count = 123;
  LogicalCounts back = LogicalCounts::from_json(c.to_json());
  EXPECT_EQ(back, c);
}

TEST(Counter, CountsJsonValidation) {
  EXPECT_THROW(LogicalCounts::from_json(json::parse(R"({"tCount": 5})")), Error);
  EXPECT_THROW(LogicalCounts::from_json(json::parse(R"({"numQubits": 0})")), Error);
  // rotationDepth > rotationCount is inconsistent.
  EXPECT_THROW(LogicalCounts::from_json(json::parse(
                   R"({"numQubits": 2, "rotationCount": 1, "rotationDepth": 3})")),
               Error);
  // rotations without depth are inconsistent.
  EXPECT_THROW(
      LogicalCounts::from_json(json::parse(R"({"numQubits": 2, "rotationCount": 4})")), Error);
  LogicalCounts minimal = LogicalCounts::from_json(json::parse(R"({"numQubits": 3})"));
  EXPECT_EQ(minimal.num_qubits, 3u);
  EXPECT_FALSE(minimal.has_non_clifford());
  // Typos ("tCont") are rejected, or downgraded to warnings with a sink.
  json::Value typo = json::parse(R"({"numQubits": 3, "tCont": 5})");
  EXPECT_THROW(LogicalCounts::from_json(typo), Error);
  Diagnostics diags;
  LogicalCounts parsed = LogicalCounts::from_json(typo, &diags);
  EXPECT_EQ(parsed.t_count, 0u);
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags.entries()[0].path, "/logicalCounts/tCont");
}

}  // namespace
}  // namespace qre
