// Positive control for the negative compile-test: the same shape as
// thread_safety_violation.cpp with the lock discipline done right, which
// MUST compile cleanly under `-Wthread-safety -Werror=thread-safety`.
// Together the pair proves the analysis configuration both fires on real
// violations and stays quiet on correct code — a violation-only test could
// "pass" because of an unrelated compile error.
//
// This file also exercises every wrapper in common/mutex.hpp (Mutex,
// SharedMutex, CondVar, all three scoped locks and a QRE_REQUIRES helper)
// so a regression in the wrappers' own annotations is caught here, not in
// the middle of the server build.
#include "common/mutex.hpp"
#include "common/thread_annotations.hpp"

namespace {

class Counter {
 public:
  void increment() {
    qre::MutexLock lock(mutex_);
    increment_locked();
    changed_.notify_all();
  }

  void wait_for_nonzero() {
    qre::MutexLock lock(mutex_);
    while (value_ == 0) changed_.wait(mutex_);
  }

  int value() const {
    qre::MutexLock lock(mutex_);
    return value_;
  }

 private:
  void increment_locked() QRE_REQUIRES(mutex_) { value_ += 1; }

  mutable qre::Mutex mutex_;
  qre::CondVar changed_;
  int value_ QRE_GUARDED_BY(mutex_) = 0;
};

class Table {
 public:
  void set(int v) {
    qre::WriterLock lock(mutex_);
    value_ = v;
  }

  int get() const {
    qre::ReaderLock lock(mutex_);
    return value_;
  }

 private:
  mutable qre::SharedMutex mutex_;
  int value_ QRE_GUARDED_BY(mutex_) = 0;
};

}  // namespace

int main() {
  Counter counter;
  counter.increment();
  counter.wait_for_nonzero();
  Table table;
  table.set(counter.value());
  return table.get() == 1 ? 0 : 1;
}
