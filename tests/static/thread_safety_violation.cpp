// Negative compile-test: a deliberate lock-discipline violation that MUST
// fail to compile under `-Wthread-safety -Werror=thread-safety` (the
// static_thread_safety_violation ctest entry is marked WILL_FAIL). If this
// file ever compiles in the QRE_THREAD_SAFETY configuration, the analysis
// is not actually firing — annotations that merely parse prove nothing.
//
// Keep this file minimal: the only error it may contain is the missing
// lock, so a failure is unambiguously the analysis firing (the companion
// thread_safety_ok.cpp compiles the same shape correctly as the control).
#include "common/mutex.hpp"
#include "common/thread_annotations.hpp"

namespace {

class Counter {
 public:
  void increment() {
    value_ += 1;  // BUG (intentional): guarded write without holding mutex_
  }

  int value() const {
    qre::MutexLock lock(mutex_);
    return value_;
  }

 private:
  mutable qre::Mutex mutex_;
  int value_ QRE_GUARDED_BY(mutex_) = 0;
};

}  // namespace

int main() {
  Counter counter;
  counter.increment();
  return counter.value() == 1 ? 0 : 1;
}
