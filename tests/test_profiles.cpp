#include <gtest/gtest.h>

#include "common/error.hpp"
#include "profiles/qubit_params.hpp"

namespace qre {
namespace {

TEST(Profiles, GateNsPresets) {
  QubitParams q = QubitParams::gate_ns_e3();
  EXPECT_EQ(q.name, "qubit_gate_ns_e3");
  EXPECT_EQ(q.instruction_set, InstructionSet::kGateBased);
  EXPECT_DOUBLE_EQ(q.one_qubit_gate_time_ns, 50.0);
  EXPECT_DOUBLE_EQ(q.two_qubit_gate_time_ns, 50.0);
  EXPECT_DOUBLE_EQ(q.one_qubit_measurement_time_ns, 100.0);
  EXPECT_DOUBLE_EQ(q.t_gate_time_ns, 50.0);
  EXPECT_DOUBLE_EQ(q.one_qubit_gate_error_rate, 1e-3);
  EXPECT_DOUBLE_EQ(q.t_gate_error_rate, 1e-3);

  QubitParams q4 = QubitParams::gate_ns_e4();
  EXPECT_DOUBLE_EQ(q4.two_qubit_gate_error_rate, 1e-4);
  EXPECT_DOUBLE_EQ(q4.t_gate_error_rate, 1e-4);
  EXPECT_DOUBLE_EQ(q4.one_qubit_gate_time_ns, 50.0);  // same speed, lower error
}

TEST(Profiles, GateUsPresets) {
  QubitParams q = QubitParams::gate_us_e3();
  EXPECT_DOUBLE_EQ(q.one_qubit_gate_time_ns, 100e3);
  EXPECT_DOUBLE_EQ(q.one_qubit_measurement_time_ns, 100e3);
  EXPECT_DOUBLE_EQ(q.one_qubit_gate_error_rate, 1e-3);
  // Ion-like presets model very accurate T gates (Beverland et al. Table V).
  EXPECT_DOUBLE_EQ(q.t_gate_error_rate, 1e-6);
  EXPECT_DOUBLE_EQ(QubitParams::gate_us_e4().two_qubit_gate_error_rate, 1e-4);
}

TEST(Profiles, MajoranaPresets) {
  QubitParams q = QubitParams::maj_ns_e4();
  EXPECT_EQ(q.instruction_set, InstructionSet::kMajorana);
  // Parameters quoted in the paper's Section V for qubit_maj_ns_e4.
  EXPECT_DOUBLE_EQ(q.one_qubit_measurement_time_ns, 100.0);
  EXPECT_DOUBLE_EQ(q.two_qubit_joint_measurement_time_ns, 100.0);
  EXPECT_DOUBLE_EQ(q.t_gate_time_ns, 100.0);
  EXPECT_DOUBLE_EQ(q.clifford_error_rate(), 1e-4);
  EXPECT_DOUBLE_EQ(q.t_gate_error_rate, 0.05);

  QubitParams q6 = QubitParams::maj_ns_e6();
  EXPECT_DOUBLE_EQ(q6.clifford_error_rate(), 1e-6);
  EXPECT_DOUBLE_EQ(q6.t_gate_error_rate, 0.01);
}

TEST(Profiles, PresetNamesCoverFigureFour) {
  const auto& names = QubitParams::preset_names();
  ASSERT_EQ(names.size(), 6u);
  for (const std::string& name : names) {
    QubitParams q = QubitParams::from_name(name);
    EXPECT_EQ(q.name, name);
    EXPECT_NO_THROW(q.validate());
  }
}

TEST(Profiles, UnknownNameThrows) {
  try {
    QubitParams::from_name("qubit_gate_ms_e9");
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("qubit_gate_ns_e3"), std::string::npos);
  }
}

TEST(Profiles, CliffordErrorIsWorstCase) {
  QubitParams q = QubitParams::gate_ns_e4();
  q.one_qubit_measurement_error_rate = 3e-4;
  EXPECT_DOUBLE_EQ(q.clifford_error_rate(), 3e-4);
  q.idle_error_rate = 5e-4;
  EXPECT_DOUBLE_EQ(q.clifford_error_rate(), 5e-4);
  EXPECT_DOUBLE_EQ(q.readout_error_rate(), 3e-4);
}

TEST(Profiles, JsonPresetWithOverride) {
  json::Value v = json::parse(R"({"name": "qubit_maj_ns_e4", "tGateErrorRate": 0.03})");
  QubitParams q = QubitParams::from_json(v);
  EXPECT_DOUBLE_EQ(q.t_gate_error_rate, 0.03);
  EXPECT_DOUBLE_EQ(q.one_qubit_measurement_error_rate, 1e-4);  // preset value kept
  EXPECT_EQ(q.instruction_set, InstructionSet::kMajorana);
}

TEST(Profiles, JsonFullyCustomModel) {
  json::Value v = json::parse(R"({
    "name": "my_qubit",
    "instructionSet": "GateBased",
    "oneQubitMeasurementTime": 80,
    "oneQubitGateTime": 20,
    "twoQubitGateTime": 30,
    "tGateTime": 25,
    "oneQubitMeasurementErrorRate": 1e-3,
    "oneQubitGateErrorRate": 5e-4,
    "twoQubitGateErrorRate": 2e-3,
    "tGateErrorRate": 4e-3,
    "idleErrorRate": 1e-4
  })");
  QubitParams q = QubitParams::from_json(v);
  EXPECT_EQ(q.name, "my_qubit");
  EXPECT_DOUBLE_EQ(q.two_qubit_gate_time_ns, 30.0);
  EXPECT_DOUBLE_EQ(q.clifford_error_rate(), 2e-3);
}

TEST(Profiles, JsonCustomRequiresInstructionSet) {
  json::Value v = json::parse(R"({"name": "custom_thing"})");
  EXPECT_THROW(QubitParams::from_json(v), Error);
}

TEST(Profiles, JsonRejectsOrWarnsOnUnknownKeys) {
  // "tGateTim" is a typo for "tGateTime"; v1 silently ignored it.
  json::Value v = json::parse(R"({"name": "qubit_gate_ns_e3", "tGateTim": 25})");
  EXPECT_THROW(QubitParams::from_json(v), Error);

  Diagnostics diags;
  QubitParams q = QubitParams::from_json(v, &diags);
  EXPECT_DOUBLE_EQ(q.t_gate_time_ns, 50.0);  // typo did not override anything
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags.entries()[0].code, "unknown-key");
  EXPECT_EQ(diags.entries()[0].path, "/qubitParams/tGateTim");
  EXPECT_FALSE(diags.has_errors());
}

TEST(Profiles, JsonRoundTrip) {
  for (const std::string& name : QubitParams::preset_names()) {
    QubitParams q = QubitParams::from_name(name);
    QubitParams back = QubitParams::from_json(q.to_json());
    EXPECT_EQ(back.name, q.name);
    EXPECT_EQ(back.instruction_set, q.instruction_set);
    EXPECT_DOUBLE_EQ(back.t_gate_error_rate, q.t_gate_error_rate);
    EXPECT_DOUBLE_EQ(back.one_qubit_measurement_time_ns, q.one_qubit_measurement_time_ns);
    EXPECT_DOUBLE_EQ(back.idle_error_rate, q.idle_error_rate);
  }
}

TEST(Profiles, ValidationCatchesBadValues) {
  QubitParams q = QubitParams::gate_ns_e3();
  q.t_gate_error_rate = 0.0;
  EXPECT_THROW(q.validate(), Error);
  q = QubitParams::gate_ns_e3();
  q.two_qubit_gate_time_ns = -5.0;
  EXPECT_THROW(q.validate(), Error);
  q = QubitParams::maj_ns_e4();
  q.two_qubit_joint_measurement_error_rate = 1.5;
  EXPECT_THROW(q.validate(), Error);
}

}  // namespace
}  // namespace qre
