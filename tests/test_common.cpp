#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/format.hpp"
#include "common/math.hpp"

namespace qre {
namespace {

TEST(Math, CeilDiv) {
  EXPECT_EQ(ceil_div(0, 3), 0u);
  EXPECT_EQ(ceil_div(1, 3), 1u);
  EXPECT_EQ(ceil_div(3, 3), 1u);
  EXPECT_EQ(ceil_div(4, 3), 2u);
  EXPECT_EQ(ceil_div(10, 1), 10u);
  EXPECT_EQ(ceil_div(7, 0), 0u);  // guarded
}

TEST(Math, BitLength) {
  EXPECT_EQ(bit_length(0), 0);
  EXPECT_EQ(bit_length(1), 1);
  EXPECT_EQ(bit_length(2), 2);
  EXPECT_EQ(bit_length(3), 2);
  EXPECT_EQ(bit_length(255), 8);
  EXPECT_EQ(bit_length(256), 9);
}

TEST(Math, Log2Helpers) {
  EXPECT_EQ(ilog2_floor(1), 0);
  EXPECT_EQ(ilog2_floor(2), 1);
  EXPECT_EQ(ilog2_floor(3), 1);
  EXPECT_EQ(ilog2_floor(1024), 10);
  EXPECT_EQ(ilog2_ceil(1), 0);
  EXPECT_EQ(ilog2_ceil(2), 1);
  EXPECT_EQ(ilog2_ceil(3), 2);
  EXPECT_EQ(ilog2_ceil(1025), 11);
}

TEST(Math, Pow2Helpers) {
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(64));
  EXPECT_FALSE(is_pow2(0));
  EXPECT_FALSE(is_pow2(65));
  EXPECT_EQ(next_pow2(1), 1u);
  EXPECT_EQ(next_pow2(5), 8u);
  EXPECT_EQ(next_odd(4), 5u);
  EXPECT_EQ(next_odd(5), 5u);
}

TEST(Math, CeilToU64) {
  EXPECT_EQ(ceil_to_u64(0.0), 0u);
  EXPECT_EQ(ceil_to_u64(1.0), 1u);
  EXPECT_EQ(ceil_to_u64(1.2), 2u);
  // Robust against values that are integral up to floating-point noise.
  EXPECT_EQ(ceil_to_u64(3.0000000000000004), 3u);
  EXPECT_THROW(ceil_to_u64(-1.0), Error);
}

TEST(Format, Duration) {
  EXPECT_EQ(format_duration_ns(340.0), "340 ns");
  EXPECT_EQ(format_duration_ns(12.4e6), "12.40 ms");
  EXPECT_EQ(format_duration_ns(2.5e9), "2.50 s");
  EXPECT_EQ(format_duration_ns(3 * 3600e9), "3.00 hours");
}

TEST(Format, Count) {
  EXPECT_EQ(format_count(0), "0");
  EXPECT_EQ(format_count(999), "999");
  EXPECT_EQ(format_count(20597), "20,597");
  EXPECT_EQ(format_count(1234567890), "1,234,567,890");
}

TEST(Format, Scientific) {
  EXPECT_EQ(format_sci(0.0), "0");
  EXPECT_EQ(format_sci(1.12e11), "1.12e+11");
  EXPECT_EQ(format_sci(0.0001), "1.00e-04");
  EXPECT_EQ(format_sci(42.0), "42");
}

TEST(ErrorHandling, RequireAndAssert) {
  EXPECT_THROW(throw_error("boom"), Error);
  try {
    QRE_REQUIRE(false, "specific message");
    FAIL() << "QRE_REQUIRE did not throw";
  } catch (const Error& e) {
    EXPECT_STREQ(e.what(), "specific message");
  }
  EXPECT_THROW(QRE_ASSERT(1 == 2), std::logic_error);
}

}  // namespace
}  // namespace qre
