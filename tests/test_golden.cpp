// Golden-file regression suite: the paper's Figure 3 multiplication sweep,
// the Figure 4 hardware-profile comparison, and the frontier example job
// are re-run end to end (workload tracing -> job document -> api::run) and
// their normalized result documents diffed against canonical JSONs under
// tests/data/golden/. Any drift in the counter, the estimator pipeline, or
// the report serialization shows up as a diff here.
//
// To regenerate intentionally (after a deliberate modeling change):
//   scripts/update_golden.sh [build-dir]
// which re-runs this binary with QRE_UPDATE_GOLDEN=1 so it rewrites the
// golden files instead of comparing.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "api/api.hpp"
#include "bench/bench_util.hpp"
#include "json/json.hpp"

#ifndef QRE_SOURCE_DIR
#define QRE_SOURCE_DIR "."
#endif

namespace qre {
namespace {

const char* kGoldenDir = QRE_SOURCE_DIR "/tests/data/golden/";

bool update_mode() { return std::getenv("QRE_UPDATE_GOLDEN") != nullptr; }

/// Strips the run-shape-dependent sections (batchStats carries the worker
/// count) so the golden text depends only on estimation results.
json::Value normalize(const json::Value& result) {
  if (!result.is_object()) return result;
  json::Object pruned;
  for (const auto& [key, value] : result.as_object()) {
    if (key != "batchStats") pruned.emplace_back(key, value);
  }
  return json::Value(std::move(pruned));
}

void check_against_golden(const std::string& name, const json::Value& result) {
  const std::string path = std::string(kGoldenDir) + name;
  const std::string rendered = normalize(result).pretty() + "\n";
  if (update_mode()) {
    std::ofstream out(path);
    ASSERT_TRUE(out.good()) << "cannot write " << path;
    out << rendered;
    std::printf("updated %s (%zu bytes)\n", path.c_str(), rendered.size());
    return;
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "missing golden file " << path
                         << "; run scripts/update_golden.sh to create it";
  std::ostringstream stored;
  stored << in.rdbuf();
  if (stored.str() != rendered) {
    // Locate the first differing line so the failure is actionable without
    // dumping two multi-kilobyte documents.
    std::istringstream a(stored.str());
    std::istringstream b(rendered);
    std::string line_a;
    std::string line_b;
    std::size_t line_number = 0;
    while (true) {
      ++line_number;
      const bool more_a = static_cast<bool>(std::getline(a, line_a));
      const bool more_b = static_cast<bool>(std::getline(b, line_b));
      if (!more_a && !more_b) break;
      if (line_a != line_b || more_a != more_b) {
        FAIL() << name << " drifted from its golden at line " << line_number
               << "\n  golden: " << (more_a ? line_a : "<eof>")
               << "\n  actual: " << (more_b ? line_b : "<eof>")
               << "\nIf the change is intentional, refresh with scripts/update_golden.sh";
      }
      line_a.clear();
      line_b.clear();
    }
  }
  SUCCEED();
}

json::Value run_or_die(const json::Value& job) {
  api::Registry registry = api::Registry::with_builtins();
  api::EstimateRequest request = api::EstimateRequest::parse(job, registry);
  EXPECT_TRUE(request.ok()) << request.diagnostics.summary();
  api::EstimateResponse response = api::run(request, {}, registry);
  EXPECT_TRUE(response.success) << response.diagnostics.summary();
  return response.result;
}

json::Value counts_item(MultiplierKind kind, std::uint64_t bits) {
  json::Object item;
  item.emplace_back("logicalCounts", bench::workload_cache().get(kind, bits).to_json());
  return json::Value(std::move(item));
}

TEST(Golden, Fig3MultiplicationSweep) {
  // The Figure 3 configuration (qubit_maj_ns_e4, default floquet code,
  // total budget 1e-4) over the three algorithms at 32..2048 bits.
  std::vector<std::uint64_t> sizes;
  for (std::uint64_t n = 32; n <= 2048; n *= 2) sizes.push_back(n);
  bench::workload_cache().prefetch(bench::figure_algorithms(), sizes);

  json::Array items;
  for (MultiplierKind kind : bench::figure_algorithms()) {
    for (std::uint64_t bits : sizes) items.push_back(counts_item(kind, bits));
  }
  json::Object job;
  job.emplace_back("schemaVersion", 2);
  json::Object qubit;
  qubit.emplace_back("name", "qubit_maj_ns_e4");
  job.emplace_back("qubitParams", json::Value(std::move(qubit)));
  job.emplace_back("errorBudget", 1e-4);
  job.emplace_back("items", json::Value(std::move(items)));

  check_against_golden("fig3_multiplication_sweep.json", run_or_die(json::Value(std::move(job))));
}

TEST(Golden, Fig4HardwareProfiles) {
  // The Figure 4 configuration: 2048-bit multiplication across the six
  // default hardware profiles (each picking its default QEC scheme).
  bench::workload_cache().prefetch(bench::figure_algorithms(), {2048});

  json::Array items;
  for (MultiplierKind kind : bench::figure_algorithms()) {
    for (const std::string& profile : QubitParams::preset_names()) {
      json::Value item = counts_item(kind, 2048);
      json::Object qubit;
      qubit.emplace_back("name", profile);
      item.set("qubitParams", json::Value(std::move(qubit)));
      items.push_back(std::move(item));
    }
  }
  json::Object job;
  job.emplace_back("schemaVersion", 2);
  job.emplace_back("errorBudget", 1e-4);
  job.emplace_back("items", json::Value(std::move(items)));

  check_against_golden("fig4_hardware_profiles.json", run_or_die(json::Value(std::move(job))));
}

TEST(Golden, FrontierExampleJob) {
  // The checked-in frontier example: locks the adaptive explorer's probe
  // schedule, Pareto filter, and result shape.
  json::Value job = json::parse_file(QRE_SOURCE_DIR "/examples/frontier_job.json");
  check_against_golden("frontier_example.json", run_or_die(job));
}

}  // namespace
}  // namespace qre
