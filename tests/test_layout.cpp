#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "layout/layout.hpp"

namespace qre {
namespace {

TEST(Layout, Formula) {
  // Q = 2*Q_alg + ceil(sqrt(8*Q_alg)) + 1.
  EXPECT_EQ(post_layout_logical_qubits(1), 2 + 3 + 1u);       // sqrt(8)=2.83 -> 3
  EXPECT_EQ(post_layout_logical_qubits(2), 4 + 4 + 1u);       // sqrt(16)=4
  EXPECT_EQ(post_layout_logical_qubits(10), 20 + 9 + 1u);     // sqrt(80)=8.94 -> 9
  EXPECT_EQ(post_layout_logical_qubits(100), 200 + 29 + 1u);  // sqrt(800)=28.3 -> 29
}

TEST(Layout, MatchesClosedFormForLargeInputs) {
  for (std::uint64_t q : {1000ull, 10240ull, 123456ull}) {
    std::uint64_t expected =
        2 * q + static_cast<std::uint64_t>(std::ceil(std::sqrt(8.0 * static_cast<double>(q)))) +
        1;
    EXPECT_EQ(post_layout_logical_qubits(q), expected);
  }
}

TEST(Layout, PaperScaleAnchor) {
  // The paper reports ~20,597 logical qubits for the 2048-bit windowed
  // multiplier; a pre-layout width of ~10,150 lands in that regime.
  std::uint64_t q = post_layout_logical_qubits(10150);
  EXPECT_GT(q, 20000u);
  EXPECT_LT(q, 21000u);
}

TEST(Layout, StrictlyIncreasing) {
  std::uint64_t previous = 0;
  for (std::uint64_t q = 1; q < 2000; q += 7) {
    std::uint64_t current = post_layout_logical_qubits(q);
    EXPECT_GT(current, previous);
    previous = current;
  }
}

TEST(Layout, OverheadFactorApproachesTwo) {
  double ratio = static_cast<double>(post_layout_logical_qubits(1000000)) / 1000000.0;
  EXPECT_GT(ratio, 2.0);
  EXPECT_LT(ratio, 2.01);
}

TEST(Layout, ZeroQubitsRejected) { EXPECT_THROW(post_layout_logical_qubits(0), Error); }

}  // namespace
}  // namespace qre
