// Equivalence of the pruned branch-and-bound T-factory search with the
// brute-force enumeration, plus the process-level FactoryCache. The pruned
// search must return *bit-identical* factories — same pipeline, same
// doubles — across every preset qubit profile, every objective, and a grid
// of required error rates; anything weaker would let pruning change
// estimation results.
#include <gtest/gtest.h>

#include <cstdlib>

#include "common/error.hpp"
#include "tfactory/factory_cache.hpp"
#include "tfactory/tfactory.hpp"

namespace qre {
namespace {

void expect_identical(const std::optional<TFactory>& pruned,
                      const std::optional<TFactory>& exhaustive, const std::string& label) {
  ASSERT_EQ(pruned.has_value(), exhaustive.has_value()) << label;
  if (!pruned.has_value()) return;
  const TFactory& a = *pruned;
  const TFactory& b = *exhaustive;
  ASSERT_EQ(a.rounds.size(), b.rounds.size()) << label;
  for (std::size_t r = 0; r < a.rounds.size(); ++r) {
    SCOPED_TRACE(label + ", round " + std::to_string(r));
    EXPECT_EQ(a.rounds[r].unit_name, b.rounds[r].unit_name);
    EXPECT_EQ(a.rounds[r].physical, b.rounds[r].physical);
    EXPECT_EQ(a.rounds[r].code_distance, b.rounds[r].code_distance);
    EXPECT_EQ(a.rounds[r].num_units, b.rounds[r].num_units);
    EXPECT_EQ(a.rounds[r].duration_ns, b.rounds[r].duration_ns);
    EXPECT_EQ(a.rounds[r].failure_probability, b.rounds[r].failure_probability);
    EXPECT_EQ(a.rounds[r].output_error_rate, b.rounds[r].output_error_rate);
    EXPECT_EQ(a.rounds[r].physical_qubits_per_unit, b.rounds[r].physical_qubits_per_unit);
    EXPECT_EQ(a.rounds[r].physical_qubits, b.rounds[r].physical_qubits);
  }
  EXPECT_EQ(a.physical_qubits, b.physical_qubits) << label;
  EXPECT_EQ(a.duration_ns, b.duration_ns) << label;
  EXPECT_EQ(a.input_t_error_rate, b.input_t_error_rate) << label;
  EXPECT_EQ(a.output_error_rate, b.output_error_rate) << label;
  EXPECT_EQ(a.tstates_per_invocation, b.tstates_per_invocation) << label;
}

TEST(TFactorySearch, PrunedMatchesBruteForceAcrossProfilesObjectivesAndTargets) {
  const std::vector<DistillationUnit> units = DistillationUnit::default_units();
  const double targets[] = {1e-6, 1e-8, 1e-10, 1e-12, 1e-14};
  const TFactoryOptions::Objective objectives[] = {
      TFactoryOptions::Objective::kMinVolume, TFactoryOptions::Objective::kMinQubits,
      TFactoryOptions::Objective::kMinDuration};
  for (const std::string& profile : QubitParams::preset_names()) {
    QubitParams qubit = QubitParams::from_name(profile);
    QecScheme scheme = QecScheme::default_for(qubit.instruction_set);
    for (TFactoryOptions::Objective objective : objectives) {
      for (double target : targets) {
        TFactoryOptions pruned_options;
        pruned_options.objective = objective;
        TFactoryOptions exhaustive_options = pruned_options;
        exhaustive_options.exhaustive = true;
        std::string label = profile + ", objective " +
                            std::to_string(static_cast<int>(objective)) + ", target " +
                            std::to_string(target);
        expect_identical(design_tfactory(target, qubit, scheme, units, pruned_options),
                         design_tfactory(target, qubit, scheme, units, exhaustive_options),
                         label);
      }
    }
  }
}

TEST(TFactorySearch, EquivalenceHoldsUnderTightOptionLimits) {
  QubitParams qubit = QubitParams::maj_ns_e4();
  QecScheme scheme = QecScheme::floquet_code();
  const std::vector<DistillationUnit> units = DistillationUnit::default_units();
  for (std::uint64_t max_rounds : {1u, 2u}) {
    for (std::uint64_t max_distance : {5u, 11u}) {
      TFactoryOptions pruned_options;
      pruned_options.max_rounds = max_rounds;
      pruned_options.max_code_distance = max_distance;
      TFactoryOptions exhaustive_options = pruned_options;
      exhaustive_options.exhaustive = true;
      std::string label = "max_rounds " + std::to_string(max_rounds) + ", max_distance " +
                          std::to_string(max_distance);
      expect_identical(design_tfactory(1e-9, qubit, scheme, units, pruned_options),
                       design_tfactory(1e-9, qubit, scheme, units, exhaustive_options),
                       label);
    }
  }
}

TEST(TFactorySearch, ExhaustiveEnvVarForcesBruteForce) {
  QubitParams qubit = QubitParams::maj_ns_e4();
  QecScheme scheme = QecScheme::floquet_code();
  const std::vector<DistillationUnit> units = DistillationUnit::default_units();
  std::optional<TFactory> pruned = design_tfactory(1e-12, qubit, scheme, units);
  ASSERT_EQ(setenv("QRE_EXHAUSTIVE_SEARCH", "1", 1), 0);
  std::optional<TFactory> forced = design_tfactory(1e-12, qubit, scheme, units);
  unsetenv("QRE_EXHAUSTIVE_SEARCH");
  expect_identical(pruned, forced, "env-forced exhaustive");
}

// ------------------------------------------------------ FactoryCache -----

TEST(FactoryCacheTest, RepeatedDesignsHitTheCache) {
  FactoryCache cache;
  QubitParams qubit = QubitParams::maj_ns_e4();
  QecScheme scheme = QecScheme::floquet_code();
  const std::vector<DistillationUnit> units = DistillationUnit::default_units();
  TFactoryOptions options;

  std::optional<TFactory> first = cache.design(1e-12, qubit, scheme, units, options);
  std::optional<TFactory> second = cache.design(1e-12, qubit, scheme, units, options);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.size(), 1u);
  expect_identical(second, first, "cache replay");
  // The cached design equals a fresh search.
  expect_identical(second, design_tfactory(1e-12, qubit, scheme, units, options),
                   "cache vs fresh");
}

TEST(FactoryCacheTest, DistinctProblemsMiss) {
  FactoryCache cache;
  QubitParams qubit = QubitParams::maj_ns_e4();
  QecScheme scheme = QecScheme::floquet_code();
  const std::vector<DistillationUnit> units = DistillationUnit::default_units();
  TFactoryOptions options;

  cache.design(1e-12, qubit, scheme, units, options);
  cache.design(1e-10, qubit, scheme, units, options);  // different target
  TFactoryOptions min_qubits = options;
  min_qubits.objective = TFactoryOptions::Objective::kMinQubits;
  cache.design(1e-12, qubit, scheme, units, min_qubits);  // different objective
  QubitParams other = QubitParams::maj_ns_e6();
  cache.design(1e-12, other, scheme, units, options);  // different qubit
  EXPECT_EQ(cache.misses(), 4u);
  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_EQ(cache.size(), 4u);
}

TEST(FactoryCacheTest, LruEvictionBoundsTheCache) {
  FactoryCache cache(/*capacity=*/2);
  QubitParams qubit = QubitParams::maj_ns_e4();
  QecScheme scheme = QecScheme::floquet_code();
  const std::vector<DistillationUnit> units = DistillationUnit::default_units();
  TFactoryOptions options;

  cache.design(1e-10, qubit, scheme, units, options);
  cache.design(1e-11, qubit, scheme, units, options);
  cache.design(1e-10, qubit, scheme, units, options);  // refresh 1e-10
  cache.design(1e-12, qubit, scheme, units, options);  // evicts LRU (1e-11)
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.evictions(), 1u);
  std::uint64_t hits_before = cache.hits();
  cache.design(1e-10, qubit, scheme, units, options);  // survived (recently used)
  EXPECT_EQ(cache.hits(), hits_before + 1);
  cache.design(1e-11, qubit, scheme, units, options);  // evicted -> recomputed
  EXPECT_EQ(cache.misses(), 4u);
}

TEST(FactoryCacheTest, InfeasibleDesignsAreCachedToo) {
  FactoryCache cache;
  QubitParams qubit = QubitParams::maj_ns_e4();
  QecScheme scheme = QecScheme::floquet_code();
  const std::vector<DistillationUnit> units = DistillationUnit::default_units();
  TFactoryOptions options;
  options.max_rounds = 1;  // cannot reach 1e-9 from 5e-2 in one round

  EXPECT_FALSE(cache.design(1e-9, qubit, scheme, units, options).has_value());
  EXPECT_FALSE(cache.design(1e-9, qubit, scheme, units, options).has_value());
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.hits(), 1u);
}

TEST(FactoryCacheTest, DisabledCacheAlwaysSearches) {
  FactoryCache cache;
  cache.set_enabled(false);
  QubitParams qubit = QubitParams::maj_ns_e4();
  QecScheme scheme = QecScheme::floquet_code();
  const std::vector<DistillationUnit> units = DistillationUnit::default_units();
  std::optional<TFactory> f = cache.design(1e-12, qubit, scheme, units, {});
  ASSERT_TRUE(f.has_value());
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_EQ(cache.misses(), 0u);
  expect_identical(f, design_tfactory(1e-12, qubit, scheme, units, {}), "disabled cache");
}

}  // namespace
}  // namespace qre
