#include <gtest/gtest.h>

#include "common/error.hpp"
#include "json/json.hpp"

namespace qre::json {
namespace {

TEST(Json, ParseScalars) {
  EXPECT_TRUE(parse("null").is_null());
  EXPECT_EQ(parse("true").as_bool(), true);
  EXPECT_EQ(parse("false").as_bool(), false);
  EXPECT_EQ(parse("42").as_int(), 42);
  EXPECT_EQ(parse("-7").as_int(), -7);
  EXPECT_DOUBLE_EQ(parse("2.5").as_double(), 2.5);
  EXPECT_DOUBLE_EQ(parse("1e-4").as_double(), 1e-4);
  EXPECT_EQ(parse("\"hi\"").as_string(), "hi");
}

TEST(Json, IntegersStayIntegers) {
  Value v = parse("1000000000000");
  EXPECT_TRUE(v.is_number());
  EXPECT_EQ(v.as_int(), 1000000000000ll);
  EXPECT_EQ(v.dump(), "1000000000000");
  // Whole-valued doubles also convert to integers on demand.
  EXPECT_EQ(parse("3.0").as_int(), 3);
}

TEST(Json, ParseNested) {
  Value v = parse(R"({"a": [1, 2, {"b": "c"}], "d": {"e": null}})");
  EXPECT_TRUE(v.is_object());
  const Array& a = v.at("a").as_array();
  EXPECT_EQ(a.size(), 3u);
  EXPECT_EQ(a[2].at("b").as_string(), "c");
  EXPECT_TRUE(v.at("d").at("e").is_null());
}

TEST(Json, StringEscapes) {
  EXPECT_EQ(parse(R"("a\nb\t\"c\"\\")").as_string(), "a\nb\t\"c\"\\");
  EXPECT_EQ(parse(R"("A")").as_string(), "A");
  EXPECT_EQ(parse(R"("é")").as_string(), "\xc3\xa9");  // UTF-8 e-acute
}

TEST(Json, DumpRoundTrip) {
  const char* text = R"({"name":"qubit_maj_ns_e4","errorBudget":0.0001,"counts":[1,2,3],)"
                     R"("nested":{"ok":true,"missing":null}})";
  Value v = parse(text);
  Value again = parse(v.dump());
  EXPECT_TRUE(v == again);
}

TEST(Json, ObjectOrderPreserved) {
  Value v = parse(R"({"z": 1, "a": 2, "m": 3})");
  const Object& o = v.as_object();
  EXPECT_EQ(o[0].first, "z");
  EXPECT_EQ(o[1].first, "a");
  EXPECT_EQ(o[2].first, "m");
  EXPECT_EQ(v.dump(), R"({"z":1,"a":2,"m":3})");
}

TEST(Json, PrettyPrinting) {
  Value v = parse(R"({"a": [1, 2]})");
  std::string pretty = v.pretty();
  EXPECT_NE(pretty.find("\n  \"a\": ["), std::string::npos);
  EXPECT_NE(pretty.find("\n    1"), std::string::npos);
}

TEST(Json, SetInsertsAndReplaces) {
  Value v = parse("{}");
  v.set("x", Value(1));
  v.set("y", Value("two"));
  v.set("x", Value(3));
  EXPECT_EQ(v.at("x").as_int(), 3);
  EXPECT_EQ(v.as_object().size(), 2u);
}

TEST(Json, FindMissing) {
  Value v = parse(R"({"present": 1})");
  EXPECT_EQ(v.find("absent"), nullptr);
  EXPECT_THROW(v.at("absent"), Error);
  EXPECT_EQ(parse("[1]").find("x"), nullptr);  // non-object
}

TEST(Json, TypeErrors) {
  Value v = parse(R"({"s": "text", "n": -1})");
  EXPECT_THROW(v.at("s").as_int(), Error);
  EXPECT_THROW(v.at("s").as_array(), Error);
  EXPECT_THROW(v.at("n").as_uint(), Error);  // negative where count expected
  EXPECT_THROW(v.at("s").as_bool(), Error);
}

TEST(Json, ParseErrors) {
  EXPECT_THROW(parse(""), Error);
  EXPECT_THROW(parse("{"), Error);
  EXPECT_THROW(parse("[1,]"), Error);
  EXPECT_THROW(parse("{\"a\" 1}"), Error);
  EXPECT_THROW(parse("tru"), Error);
  EXPECT_THROW(parse("1 2"), Error);
  EXPECT_THROW(parse("\"unterminated"), Error);
  EXPECT_THROW(parse("{1: 2}"), Error);
}

TEST(Json, ErrorsCarryPosition) {
  try {
    parse("{\n  \"a\": tru\n}");
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(Json, NumberFormatting) {
  EXPECT_EQ(Value(0.0001).dump(), "0.0001");
  EXPECT_EQ(Value(std::int64_t{20597}).dump(), "20597");
  EXPECT_EQ(Value(1.12e11).dump(), "1.12e+11");  // double, shortest round-trip
  Value v = parse(Value(0.1).dump());
  EXPECT_DOUBLE_EQ(v.as_double(), 0.1);
}

TEST(Json, ParseFileMissing) { EXPECT_THROW(parse_file("/nonexistent/x.json"), Error); }

}  // namespace
}  // namespace qre::json
