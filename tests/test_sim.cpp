#include <gtest/gtest.h>

#include <cmath>

#include "circuit/builder.hpp"
#include "common/error.hpp"
#include "sim/sparse_simulator.hpp"

namespace qre {
namespace {

TEST(Sim, InitialState) {
  SparseSimulator sim;
  ProgramBuilder bld(sim);
  Register q = bld.alloc_register(3);
  EXPECT_EQ(sim.num_states(), 1u);
  EXPECT_EQ(sim.peek_classical(q), 0u);
  EXPECT_NEAR(sim.norm(), 1.0, 1e-12);
}

TEST(Sim, ClassicalLogicGates) {
  SparseSimulator sim;
  ProgramBuilder bld(sim);
  Register q = bld.alloc_register(4);
  bld.x(q[0]);                 // |0001>
  bld.cx(q[0], q[1]);          // |0011>
  bld.ccx(q[0], q[1], q[2]);   // |0111>
  bld.ccix(q[2], q[1], q[3]);  // Toffoli semantics -> |1111>
  EXPECT_EQ(sim.peek_classical(q), 0b1111u);
  bld.swap(q[0], q[3]);
  bld.x(q[3]);
  EXPECT_EQ(sim.peek_classical(q), 0b0111u);
}

TEST(Sim, HadamardCreatesAndRemovesSuperposition) {
  SparseSimulator sim;
  ProgramBuilder bld(sim);
  QubitId q = bld.alloc();
  bld.h(q);
  EXPECT_EQ(sim.num_states(), 2u);
  EXPECT_NEAR(sim.probability_one(q), 0.5, 1e-12);
  bld.h(q);
  EXPECT_EQ(sim.num_states(), 1u);
  EXPECT_NEAR(sim.probability_one(q), 0.0, 1e-12);
}

TEST(Sim, PhasesInterfere) {
  // H S S H = H Z H = X up to phase: |0> -> |1>.
  SparseSimulator sim;
  ProgramBuilder bld(sim);
  QubitId q = bld.alloc();
  bld.h(q);
  bld.s(q);
  bld.s(q);
  bld.h(q);
  EXPECT_NEAR(sim.probability_one(q), 1.0, 1e-12);
}

TEST(Sim, TGateEighthTurn) {
  // H T T H = H S H: |0> -> probability 1/2 with definite relative phase;
  // verify T^4 = Z via interference instead.
  SparseSimulator sim;
  ProgramBuilder bld(sim);
  QubitId q = bld.alloc();
  bld.h(q);
  for (int i = 0; i < 4; ++i) bld.t(q);
  bld.h(q);
  EXPECT_NEAR(sim.probability_one(q), 1.0, 1e-12);
  // And T Tdg = I.
  SparseSimulator sim2;
  ProgramBuilder bld2(sim2);
  QubitId p = bld2.alloc();
  bld2.h(p);
  bld2.t(p);
  bld2.tdg(p);
  bld2.h(p);
  EXPECT_NEAR(sim2.probability_one(p), 0.0, 1e-12);
}

TEST(Sim, RotationsMatchMatrices) {
  constexpr double kPi = 3.14159265358979323846;
  {
    SparseSimulator sim;
    ProgramBuilder bld(sim);
    QubitId q = bld.alloc();
    bld.ry(kPi, q);  // |0> -> |1>
    EXPECT_NEAR(sim.probability_one(q), 1.0, 1e-12);
  }
  {
    SparseSimulator sim;
    ProgramBuilder bld(sim);
    QubitId q = bld.alloc();
    bld.rx(kPi / 2, q);
    EXPECT_NEAR(sim.probability_one(q), 0.5, 1e-12);
  }
  {
    // R1(pi) == Z: H R1(pi) H == X.
    SparseSimulator sim;
    ProgramBuilder bld(sim);
    QubitId q = bld.alloc();
    bld.h(q);
    bld.r1(kPi, q);
    bld.h(q);
    EXPECT_NEAR(sim.probability_one(q), 1.0, 1e-12);
  }
  {
    // Rz only shifts relative phase: probabilities unchanged.
    SparseSimulator sim;
    ProgramBuilder bld(sim);
    QubitId q = bld.alloc();
    bld.h(q);
    bld.rz(0.7, q);
    EXPECT_NEAR(sim.probability_one(q), 0.5, 1e-12);
    EXPECT_NEAR(sim.norm(), 1.0, 1e-12);
  }
}

TEST(Sim, CphaseMatchesCz) {
  constexpr double kPi = 3.14159265358979323846;
  // cphase(pi) == CZ: build |++>, apply both, interfere back.
  SparseSimulator sim;
  ProgramBuilder bld(sim);
  Register q = bld.alloc_register(2);
  bld.h(q[0]);
  bld.h(q[1]);
  bld.cphase(kPi, q[0], q[1]);
  bld.cz(q[0], q[1]);  // together: identity
  bld.h(q[0]);
  bld.h(q[1]);
  EXPECT_EQ(sim.peek_classical(q), 0u);
}

TEST(Sim, BellStateCorrelations) {
  SparseSimulator sim(12345);
  ProgramBuilder bld(sim);
  Register q = bld.alloc_register(2);
  bld.h(q[0]);
  bld.cx(q[0], q[1]);
  EXPECT_EQ(sim.num_states(), 2u);
  EXPECT_NEAR(sim.probability_one(q[0]), 0.5, 1e-12);
  bool a = bld.mz(q[0]);
  bool b = bld.mz(q[1]);
  EXPECT_EQ(a, b);  // perfectly correlated
  EXPECT_EQ(sim.num_states(), 1u);
}

TEST(Sim, MeasurementStatistics) {
  int ones = 0;
  for (std::uint64_t seed = 0; seed < 40; ++seed) {
    SparseSimulator sim(seed * 7919 + 1);
    ProgramBuilder bld(sim);
    QubitId q = bld.alloc();
    bld.h(q);
    if (bld.mz(q)) ++ones;
  }
  EXPECT_GT(ones, 5);
  EXPECT_LT(ones, 35);
}

TEST(Sim, MxLeavesXEigenstate) {
  SparseSimulator sim(99);
  ProgramBuilder bld(sim);
  QubitId q = bld.alloc();
  bld.h(q);
  bool first = bld.mx(q);
  // X measurement is repeatable.
  EXPECT_EQ(bld.mx(q), first);
  EXPECT_EQ(bld.mx(q), first);
}

TEST(Sim, ResetForcesZero) {
  SparseSimulator sim(7);
  ProgramBuilder bld(sim);
  QubitId q = bld.alloc();
  bld.x(q);
  bld.reset(q);
  EXPECT_NEAR(sim.probability_one(q), 0.0, 1e-12);
  bld.h(q);
  bld.reset(q);
  EXPECT_NEAR(sim.probability_one(q), 0.0, 1e-12);
}

TEST(Sim, ReleaseChecksZeroState) {
  SparseSimulator sim;
  ProgramBuilder bld(sim);
  QubitId q = bld.alloc();
  bld.x(q);
  EXPECT_THROW(bld.free(q), Error);
}

TEST(Sim, ReleaseChecksSuperposition) {
  SparseSimulator sim;
  ProgramBuilder bld(sim);
  QubitId q = bld.alloc();
  bld.h(q);
  EXPECT_THROW(bld.free(q), Error);
}

TEST(Sim, PeekClassicalRejectsSuperposition) {
  SparseSimulator sim;
  ProgramBuilder bld(sim);
  Register q = bld.alloc_register(2);
  bld.h(q[0]);
  EXPECT_THROW(sim.peek_classical(q), Error);
}

TEST(Sim, QubitReuseAfterRelease) {
  SparseSimulator sim;
  ProgramBuilder bld(sim);
  QubitId a = bld.alloc();
  bld.x(a);
  bld.x(a);
  bld.free(a);
  QubitId b = bld.alloc();  // may reuse the same id/bit
  EXPECT_NEAR(sim.probability_one(b), 0.0, 1e-12);
  bld.free(b);
}

TEST(Sim, Beyond64Qubits) {
  SparseSimulator sim;
  ProgramBuilder bld(sim);
  Register q = bld.alloc_register(100);
  bld.x(q[0]);
  bld.x(q[99]);
  bld.cx(q[99], q[64]);
  bld.ccx(q[0], q[64], q[70]);
  EXPECT_NEAR(sim.probability_one(q[70]), 1.0, 1e-12);
  EXPECT_NEAR(sim.probability_one(q[64]), 1.0, 1e-12);
  bld.ccx(q[0], q[64], q[70]);
  bld.cx(q[99], q[64]);
  bld.x(q[99]);
  bld.x(q[0]);
  bld.free_register(q);  // all back to |0>, release checks pass
}

TEST(Sim, AndGadgetAllInputs) {
  for (unsigned value = 0; value < 4; ++value) {
    SparseSimulator sim(value + 1);
    ProgramBuilder bld(sim);
    Register c = bld.alloc_register(2);
    bld.xor_constant(c, value);
    QubitId t = bld.alloc();
    bld.compute_and(c[0], c[1], t);
    EXPECT_NEAR(sim.probability_one(t), value == 3 ? 1.0 : 0.0, 1e-12);
    bld.uncompute_and(c[0], c[1], t);
    bld.free(t);  // throws if the gadget failed to restore |0>
    EXPECT_EQ(sim.peek_classical(c), value);  // controls unchanged
  }
}

TEST(Sim, AndGadgetPreservesPhasesOnSuperposition) {
  // Prepare |++>, compute AND, uncompute it (measurement-based, with the CZ
  // fix-up), and interfere back: any phase error leaves population outside
  // |00>.
  for (std::uint64_t seed = 1; seed <= 16; ++seed) {
    SparseSimulator sim(seed);
    ProgramBuilder bld(sim);
    Register c = bld.alloc_register(2);
    bld.h(c[0]);
    bld.h(c[1]);
    QubitId t = bld.alloc();
    bld.compute_and(c[0], c[1], t);
    bld.uncompute_and(c[0], c[1], t);
    bld.free(t);
    bld.h(c[0]);
    bld.h(c[1]);
    EXPECT_EQ(sim.peek_classical(c), 0u) << "seed " << seed;
  }
}

TEST(Sim, NormPreservedThroughLongCircuit) {
  SparseSimulator sim(3);
  ProgramBuilder bld(sim);
  Register q = bld.alloc_register(6);
  for (int round = 0; round < 10; ++round) {
    bld.h(q[round % 6]);
    bld.cx(q[round % 6], q[(round + 1) % 6]);
    bld.t(q[(round + 2) % 6]);
    bld.ccz(q[0], q[2], q[4]);
  }
  EXPECT_NEAR(sim.norm(), 1.0, 1e-9);
}

TEST(Sim, BatchedGatesRejected) {
  SparseSimulator sim;
  EXPECT_THROW(sim.on_gate_batch(Gate::kCcix, 10), Error);
  EXPECT_THROW(sim.on_measure_batch(Gate::kMz, 10), Error);
}

}  // namespace
}  // namespace qre
