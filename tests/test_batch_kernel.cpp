// Tests of the vectorized batch-estimation kernel (service layer) and its
// Arena backing store: bit-identity against the scalar path on Fig. 3/4
// style and randomized grids, spliced cache keys, exact cache accounting
// for mixed kernel/fallback batches, warm-vs-cold store identity, kernel
// eligibility declines, and the steady-state allocation contract (zero
// heap allocations per re-evaluated grid point, counted by a global
// operator new hook).
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <map>
#include <mutex>
#include <new>
#include <optional>
#include <random>
#include <string>
#include <utility>
#include <vector>

#include "api/api.hpp"
#include "api/registry.hpp"
#include "common/arena.hpp"
#include "common/error.hpp"
#include "core/estimator.hpp"
#include "core/job.hpp"
#include "json/json.hpp"
#include "service/batch_kernel.hpp"
#include "service/cache.hpp"
#include "service/engine.hpp"
#include "service/sweep.hpp"

// ------------------------------------------- allocation-counting hook ---
//
// Counts every global operator new while armed. Disabled under sanitizers,
// which interpose their own allocator and would misattribute bookkeeping
// allocations to the code under test.
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define QRE_ALLOC_HOOK_DISABLED 1
#endif
#if !defined(QRE_ALLOC_HOOK_DISABLED) && defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define QRE_ALLOC_HOOK_DISABLED 1
#endif
#endif

#ifndef QRE_ALLOC_HOOK_DISABLED

namespace {
std::atomic<bool> g_count_allocs{false};
std::atomic<std::uint64_t> g_alloc_count{0};

void* counted_alloc(std::size_t size) {
  if (g_count_allocs.load(std::memory_order_relaxed)) {
    g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  }
  void* p = std::malloc(size ? size : 1);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
}  // namespace

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

#endif  // QRE_ALLOC_HOOK_DISABLED

namespace qre {
namespace {

using service::BatchStats;
using service::EngineOptions;
using service::EstimateCache;

json::Value run_sweep(const json::Value& job, bool use_kernel, std::size_t workers = 1,
                      EstimateCache* cache = nullptr) {
  EngineOptions options;
  options.num_workers = workers;
  options.use_batch_kernel = use_kernel;
  options.cache = cache;
  return run_job(job, options);
}

// Asserts both runs produced byte-identical result arrays and the same
// top-level batch counters (batchStats differs only by the batchKernel
// block, which records which path ran).
void expect_bit_identical(const json::Value& kernel, const json::Value& scalar) {
  const json::Array& a = kernel.at("results").as_array();
  const json::Array& b = scalar.at("results").as_array();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].dump(), b[i].dump()) << "item " << i;
  }
  const json::Value& sa = kernel.at("batchStats");
  const json::Value& sb = scalar.at("batchStats");
  EXPECT_EQ(sa.at("numItems").dump(), sb.at("numItems").dump());
  EXPECT_EQ(sa.at("numErrors").dump(), sb.at("numErrors").dump());
}

const json::Value& kernel_stats(const json::Value& result) {
  return result.at("batchStats").at("batchKernel");
}

// ---------------------------------------------------------------- arena ---

TEST(Arena, AllocationsAreAlignedAndCounted) {
  Arena arena;
  void* a = arena.allocate(3, 1);
  void* b = arena.allocate(8, 8);
  void* c = arena.allocate(1, 64);
  EXPECT_NE(a, nullptr);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(b) % 8, 0u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(c) % 64, 0u);
  EXPECT_EQ(arena.bytes_allocated(), 12u);  // 3 + 8 + 1, padding excluded
  EXPECT_GE(arena.bytes_reserved(), Arena::kDefaultChunkBytes);
}

TEST(Arena, AllocArrayValueInitializes) {
  Arena arena;
  const std::uint64_t* xs = arena.alloc_array<std::uint64_t>(1000);
  for (std::size_t i = 0; i < 1000; ++i) ASSERT_EQ(xs[i], 0u) << i;
  const double* ds = arena.alloc_array<double>(16);
  for (std::size_t i = 0; i < 16; ++i) ASSERT_EQ(ds[i], 0.0) << i;
}

TEST(Arena, OversizedRequestGetsDedicatedChunk) {
  Arena arena(1024);
  void* big = arena.allocate(1 << 20, 16);
  EXPECT_NE(big, nullptr);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(big) % 16, 0u);
  // A small follow-up allocation still succeeds (fresh normal chunk or the
  // oversized chunk's tail), and the footprint covers both.
  void* small = arena.allocate(64);
  EXPECT_NE(small, nullptr);
  EXPECT_GE(arena.bytes_reserved(), static_cast<std::size_t>(1 << 20));
}

TEST(Arena, ResetKeepsChunksForReuse) {
  Arena arena(4096);
  for (int i = 0; i < 8; ++i) arena.allocate(1024);
  const std::size_t chunks = arena.num_chunks();
  const std::size_t reserved = arena.bytes_reserved();
  arena.reset();
  EXPECT_EQ(arena.bytes_allocated(), 0u);
  // An identically shaped second batch fits in the retained chunks.
  for (int i = 0; i < 8; ++i) arena.allocate(1024);
  EXPECT_EQ(arena.num_chunks(), chunks);
  EXPECT_EQ(arena.bytes_reserved(), reserved);
}

TEST(Arena, ArenaAllocatorWorksWithStdVector) {
  Arena arena;
  std::vector<int, ArenaAllocator<int>> xs{ArenaAllocator<int>(arena)};
  for (int i = 0; i < 1000; ++i) xs.push_back(i);
  for (int i = 0; i < 1000; ++i) ASSERT_EQ(xs[i], i);
  EXPECT_GT(arena.bytes_allocated(), 1000 * sizeof(int) - 1);
}

// --------------------------------------------------- kernel engagement ---

const char* kFig4StyleSweep = R"({
  "logicalCounts": {"numQubits": 100, "tCount": 100000},
  "sweep": {
    "qubitParams": [
      {"name": "qubit_gate_ns_e3"}, {"name": "qubit_gate_ns_e4"},
      {"name": "qubit_maj_ns_e4"}, {"name": "qubit_maj_ns_e6"}
    ],
    "errorBudget": {"start": 1e-4, "stop": 1e-1, "steps": 7, "scale": "log"}
  }
})";

TEST(BatchKernel, EngagesOnFig4StyleSweep) {
  json::Value result = run_sweep(json::parse(kFig4StyleSweep), true);
  const json::Value& ks = kernel_stats(result);
  EXPECT_TRUE(ks.at("engaged").as_bool());
  EXPECT_EQ(ks.find("reason"), nullptr);
  EXPECT_EQ(ks.at("kernelItems").as_uint(), 28u);  // 4 profiles x 7 budgets
  EXPECT_EQ(ks.at("fallbackItems").as_uint(), 0u);
  EXPECT_EQ(result.at("batchStats").at("numItems").as_uint(), 28u);
}

TEST(BatchKernel, DisabledRunsAndItemsBatchesOmitTheStatsBlock) {
  // --no-batch-kernel runs and hand-written "items" batches must keep their
  // batchStats documents byte-identical to pre-kernel releases.
  json::Value scalar = run_sweep(json::parse(kFig4StyleSweep), false);
  EXPECT_EQ(scalar.at("batchStats").find("batchKernel"), nullptr);

  json::Value items_job = json::parse(R"({
    "logicalCounts": {"numQubits": 50, "tCount": 50000},
    "items": [{"errorBudget": 0.001}, {"errorBudget": 0.01}]
  })");
  json::Value items_result = run_sweep(items_job, true);
  EXPECT_EQ(items_result.at("batchStats").find("batchKernel"), nullptr);
}

// ------------------------------------------------------- bit identity ---

TEST(BatchKernel, BitIdenticalToScalarOnFig4StyleGrid) {
  json::Value job = json::parse(kFig4StyleSweep);
  json::Value kernel = run_sweep(job, true);
  json::Value scalar = run_sweep(job, false);
  ASSERT_TRUE(kernel_stats(kernel).at("engaged").as_bool());
  expect_bit_identical(kernel, scalar);
}

TEST(BatchKernel, BitIdenticalToScalarOnFig3StyleGrid) {
  // Figure 3 shape: whole-section logicalCounts axis (different circuit
  // sizes) crossed with hardware profiles.
  json::Value job = json::parse(R"({
    "errorBudget": 0.001,
    "sweep": {
      "logicalCounts": [
        {"numQubits": 45, "tCount": 12000},
        {"numQubits": 130, "tCount": 400000, "measurementCount": 2500},
        {"numQubits": 520, "tCount": 17000000, "cczCount": 310000}
      ],
      "qubitParams": [{"name": "qubit_gate_ns_e3"}, {"name": "qubit_maj_ns_e6"}]
    }
  })");
  json::Value kernel = run_sweep(job, true);
  json::Value scalar = run_sweep(job, false);
  ASSERT_TRUE(kernel_stats(kernel).at("engaged").as_bool());
  expect_bit_identical(kernel, scalar);
}

TEST(BatchKernel, BitIdenticalOnDottedAxesIntoEverySection) {
  json::Value job = json::parse(R"({
    "logicalCounts": {"numQubits": 60, "tCount": 80000},
    "qubitParams": {"name": "qubit_gate_ns_e3"},
    "constraints": {"logicalDepthFactor": 2},
    "sweep": {
      "logicalCounts.tCount": [60000, 90000],
      "errorBudget": {"start": 1e-3, "stop": 1e-2, "steps": 2, "scale": "log"},
      "constraints.maxTFactories": [2, 8]
    }
  })");
  json::Value kernel = run_sweep(job, true);
  json::Value scalar = run_sweep(job, false);
  ASSERT_TRUE(kernel_stats(kernel).at("engaged").as_bool())
      << kernel_stats(kernel).dump();
  EXPECT_EQ(kernel_stats(kernel).at("kernelItems").as_uint(), 8u);
  expect_bit_identical(kernel, scalar);
}

TEST(BatchKernel, ParallelKernelMatchesSerialKernelAndScalar) {
  json::Value job = json::parse(kFig4StyleSweep);
  json::Value serial = run_sweep(job, true, 1);
  json::Value parallel = run_sweep(job, true, 4);
  json::Value scalar = run_sweep(job, false, 1);
  ASSERT_TRUE(kernel_stats(parallel).at("engaged").as_bool());
  expect_bit_identical(parallel, serial);
  expect_bit_identical(parallel, scalar);
}

TEST(BatchKernel, RandomizedGridsAreBitIdenticalToScalar) {
  // Deterministic fuzz over grid shapes: every iteration builds a sweep
  // with a random subset of axis sections and random values, then asserts
  // kernel output is byte-identical to the scalar path.
  std::mt19937 rng(20230807);
  const char* presets[] = {"qubit_gate_ns_e3", "qubit_gate_ns_e4", "qubit_gate_us_e3",
                           "qubit_gate_us_e4", "qubit_maj_ns_e4",  "qubit_maj_ns_e6"};
  auto uniform = [&](int lo, int hi) {
    return std::uniform_int_distribution<int>(lo, hi)(rng);
  };
  for (int iter = 0; iter < 6; ++iter) {
    json::Object sweep;

    json::Array qubits;
    const int num_presets = uniform(1, 3);
    for (int i = 0; i < num_presets; ++i) {
      json::Object q;
      q.emplace_back("name", json::Value(presets[uniform(0, 5)]));
      qubits.push_back(json::Value(std::move(q)));
    }
    sweep.emplace_back("qubitParams", json::Value(std::move(qubits)));

    json::Object budget_range;
    budget_range.emplace_back("start", json::Value(std::pow(10.0, -uniform(3, 5))));
    budget_range.emplace_back("stop", json::Value(0.05));
    budget_range.emplace_back("steps", json::Value(uniform(2, 4)));
    budget_range.emplace_back("scale", json::Value("log"));
    sweep.emplace_back("errorBudget", json::Value(std::move(budget_range)));

    if (uniform(0, 1) == 1) {
      json::Array factories;
      const int num = uniform(1, 2);
      for (int i = 0; i < num; ++i) factories.push_back(json::Value(uniform(1, 8)));
      sweep.emplace_back("constraints.maxTFactories", json::Value(std::move(factories)));
    }
    if (uniform(0, 1) == 1) {
      json::Array tcounts;
      const int num = uniform(1, 2);
      for (int i = 0; i < num; ++i) {
        tcounts.push_back(json::Value(static_cast<std::int64_t>(uniform(1000, 200000))));
      }
      sweep.emplace_back("logicalCounts.tCount", json::Value(std::move(tcounts)));
    }

    json::Object counts;
    counts.emplace_back("numQubits", json::Value(uniform(10, 300)));
    counts.emplace_back("tCount", json::Value(uniform(1000, 500000)));
    json::Object job;
    job.emplace_back("logicalCounts", json::Value(std::move(counts)));
    job.emplace_back("sweep", json::Value(std::move(sweep)));
    json::Value doc{std::move(job)};

    json::Value kernel = run_sweep(doc, true, uniform(1, 4));
    json::Value scalar = run_sweep(doc, false);
    ASSERT_TRUE(kernel_stats(kernel).at("engaged").as_bool())
        << "iter " << iter << ": " << kernel_stats(kernel).dump();
    SCOPED_TRACE("iter " + std::to_string(iter) + " job " + doc.dump());
    expect_bit_identical(kernel, scalar);
  }
}

// -------------------------------------------------- fallback + caching ---

TEST(BatchKernel, InvalidAxisValuesFallBackToIdenticalErrorDocuments) {
  // The third qubit value fails validation, so its grid row runs through
  // the legacy fallback runner; documents must match the scalar path
  // exactly, including the structured error entries.
  json::Value job = json::parse(R"({
    "logicalCounts": {"numQubits": 50, "tCount": 50000},
    "sweep": {
      "qubitParams": [
        {"name": "qubit_gate_ns_e3"},
        {"name": "qubit_maj_ns_e4"},
        {"name": "no_such_preset"}
      ],
      "errorBudget": [0.001, 0.01]
    }
  })");
  json::Value kernel = run_sweep(job, true);
  json::Value scalar = run_sweep(job, false);
  const json::Value& ks = kernel_stats(kernel);
  EXPECT_TRUE(ks.at("engaged").as_bool());
  EXPECT_EQ(ks.at("kernelItems").as_uint(), 4u);
  EXPECT_EQ(ks.at("fallbackItems").as_uint(), 2u);
  EXPECT_EQ(kernel.at("batchStats").at("numErrors").as_uint(), 2u);
  expect_bit_identical(kernel, scalar);
}

TEST(BatchKernel, CacheAccountingIsExactAcrossKernelAndFallbackItems) {
  // 2 qubit values (one invalid) x errorBudget [a, b, a]: six grid items,
  // four distinct documents. Kernel items and fallback items tally hits
  // and misses through the same engine counters — each duplicate is one
  // hit no matter which path computed its original.
  json::Value job = json::parse(R"({
    "logicalCounts": {"numQubits": 50, "tCount": 50000},
    "sweep": {
      "qubitParams": [{"name": "qubit_gate_ns_e3"}, {"name": "no_such_preset"}],
      "errorBudget": [0.001, 0.01, 0.001]
    }
  })");
  json::Value result = run_sweep(job, true);
  const json::Value& stats = result.at("batchStats");
  const json::Value& ks = kernel_stats(result);
  EXPECT_TRUE(ks.at("engaged").as_bool());
  EXPECT_EQ(ks.at("kernelItems").as_uint(), 3u);
  EXPECT_EQ(ks.at("fallbackItems").as_uint(), 3u);
  EXPECT_EQ(stats.at("numItems").as_uint(), 6u);
  EXPECT_EQ(stats.at("cacheMisses").as_uint(), 4u);
  EXPECT_EQ(stats.at("cacheHits").as_uint(), 2u);
  // The duplicated budget re-serves both the kernel-computed result and the
  // fallback error document.
  const json::Array& results = result.at("results").as_array();
  EXPECT_EQ(results[0].dump(), results[2].dump());
  EXPECT_EQ(results[3].dump(), results[5].dump());
  EXPECT_NE(results[3].find("error"), nullptr);

  // Same accounting on the scalar path (satellite: one code path for both).
  json::Value scalar = run_sweep(job, false);
  EXPECT_EQ(scalar.at("batchStats").at("cacheMisses").as_uint(), 4u);
  EXPECT_EQ(scalar.at("batchStats").at("cacheHits").as_uint(), 2u);
}

// A StoreBacking double: an in-memory second-level store with counters.
class MapBacking : public service::StoreBacking {
 public:
  std::optional<json::Value> fetch(const std::string& key) override {
    std::lock_guard<std::mutex> lock(mutex_);
    ++fetches_;
    auto it = entries_.find(key);
    if (it == entries_.end()) return std::nullopt;
    ++served_;
    return it->second;
  }
  void record(const std::string& key, const json::Value& result) override {
    std::lock_guard<std::mutex> lock(mutex_);
    entries_.emplace(key, result);
  }
  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return entries_.size();
  }
  std::uint64_t served() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return served_;
  }

 private:
  mutable std::mutex mutex_;
  std::map<std::string, json::Value> entries_;
  std::uint64_t fetches_ = 0;
  std::uint64_t served_ = 0;
};

TEST(BatchKernel, WarmStoreReplaysBitIdenticalResults) {
  // Cold run populates the store through the kernel; a fresh cache backed
  // by the warm store must replay byte-identical results, which must also
  // match a storeless scalar run. This is the restart-reuse path: spliced
  // kernel keys hit records written under scalar-era keys and vice versa.
  json::Value job = json::parse(kFig4StyleSweep);
  MapBacking store;

  EstimateCache cold_cache;
  cold_cache.set_backing(&store);
  json::Value first = run_sweep(job, true, 2, &cold_cache);
  EXPECT_EQ(store.size(), 28u);
  EXPECT_EQ(store.served(), 0u);

  EstimateCache warm_cache;
  warm_cache.set_backing(&store);
  json::Value replay = run_sweep(job, true, 2, &warm_cache);
  EXPECT_EQ(store.served(), 28u);  // every item served from the store

  json::Value scalar = run_sweep(job, false);
  expect_bit_identical(replay, first);
  expect_bit_identical(replay, scalar);
}

// -------------------------------------------------------- eligibility ---

TEST(BatchKernel, DeclinesRecordReasonAndStillMatchScalar) {
  struct Case {
    const char* name;
    const char* job;
  };
  const Case cases[] = {
      {"frontier estimate type", R"({
        "logicalCounts": {"numQubits": 20, "tCount": 5000},
        "estimateType": "frontier",
        "sweep": {"errorBudget": [0.001, 0.01]}
      })"},
      {"two axes in one section", R"({
        "logicalCounts": {"numQubits": 20, "tCount": 5000},
        "sweep": {
          "constraints.maxTFactories": [1, 4],
          "constraints.logicalDepthFactor": [2, 4]
        }
      })"},
      {"qubit axis with pinned qecScheme", R"({
        "logicalCounts": {"numQubits": 20, "tCount": 5000},
        "qecScheme": {"name": "surface_code"},
        "sweep": {"qubitParams": [{"name": "qubit_gate_ns_e3"}, {"name": "qubit_gate_ns_e4"}]}
      })"},
      {"axis outside the SoA sections", R"({
        "logicalCounts": {"numQubits": 20, "tCount": 5000},
        "sweep": {"qecScheme.name": ["surface_code"], "errorBudget": [0.001, 0.01]}
      })"},
  };
  for (const Case& c : cases) {
    SCOPED_TRACE(c.name);
    json::Value job = json::parse(c.job);
    json::Value kernel = run_sweep(job, true);
    json::Value scalar = run_sweep(job, false);
    const json::Value& ks = kernel_stats(kernel);
    EXPECT_FALSE(ks.at("engaged").as_bool());
    EXPECT_FALSE(ks.at("reason").as_string().empty());
    EXPECT_EQ(ks.at("kernelItems").as_uint(), 0u);
    expect_bit_identical(kernel, scalar);
  }
}

// ------------------------------------------------------- spliced keys ---

TEST(BatchKernel, SplicedKeysMatchCanonicalKeysOfExpandedItems) {
  // Cache correctness hinges on spliced keys being byte-identical to
  // canonical_key() of the expanded documents the scalar path keys on.
  json::Value job = json::parse(R"({
    "logicalCounts": {"numQubits": 60, "tCount": 80000},
    "constraints": {"logicalDepthFactor": 2},
    "sweep": {
      "qubitParams": [{"name": "qubit_gate_ns_e3"}, {"name": "qubit_maj_ns_e6"}],
      "errorBudget": {"start": 1e-4, "stop": 1e-2, "steps": 5, "scale": "log"},
      "constraints.maxTFactories": [1, 2, 16]
    }
  })");
  std::vector<json::Value> items = service::expand_sweep(job);
  service::BatchKernelPlan plan =
      service::plan_batch_kernel(job, items, api::Registry::global());
  ASSERT_TRUE(plan.eligible()) << plan.reason();
  ASSERT_EQ(plan.num_items(), items.size());
  for (std::size_t i = 0; i < items.size(); ++i) {
    EXPECT_EQ(plan.item_key(i), service::canonical_key(items[i])) << "item " << i;
  }
}

// ------------------------------------------------ allocation contract ---

TEST(BatchKernel, SteadyStateEvaluationPerformsZeroHeapAllocations) {
#ifdef QRE_ALLOC_HOOK_DISABLED
  GTEST_SKIP() << "allocation hook disabled under sanitizers";
#else
  // The contract (docs/performance.md): once a worker's scratch buffers
  // have warmed on a grid point, re-evaluating it — decompose, apply,
  // estimate_into, splice_key — touches the heap zero times. Every grid
  // point of a Fig. 4 style batch is checked individually.
  json::Value job = json::parse(kFig4StyleSweep);
  std::vector<json::Value> items = service::expand_sweep(job);
  service::BatchKernelPlan plan =
      service::plan_batch_kernel(job, items, api::Registry::global());
  ASSERT_TRUE(plan.eligible()) << plan.reason();

  service::BatchKernelScratch scratch;
  scratch.input = plan.reference_input();
  scratch.picks.resize(plan.num_axes());

  // Warm pass: grows scratch capacity to the batch's high-water mark and
  // populates the process-level factory and QEC formula caches.
  for (std::size_t i = 0; i < plan.num_items(); ++i) {
    plan.decompose(i, scratch.picks);
    ASSERT_TRUE(plan.picks_valid(scratch.picks));
    plan.apply(scratch.picks, scratch.input);
    estimate_into(scratch.input, scratch.estimate);
    plan.splice_key(scratch.picks, scratch.key_buf);
  }

  for (std::size_t i = 0; i < plan.num_items(); ++i) {
    // Bring the scratch to this grid point, then count a re-evaluation.
    plan.decompose(i, scratch.picks);
    plan.apply(scratch.picks, scratch.input);
    estimate_into(scratch.input, scratch.estimate);
    plan.splice_key(scratch.picks, scratch.key_buf);

    g_alloc_count.store(0, std::memory_order_relaxed);
    g_count_allocs.store(true, std::memory_order_relaxed);
    plan.decompose(i, scratch.picks);
    plan.apply(scratch.picks, scratch.input);
    estimate_into(scratch.input, scratch.estimate);
    plan.splice_key(scratch.picks, scratch.key_buf);
    g_count_allocs.store(false, std::memory_order_relaxed);
    EXPECT_EQ(g_alloc_count.load(std::memory_order_relaxed), 0u) << "item " << i;
  }
#endif
}

}  // namespace
}  // namespace qre
