// Tests for the Section II / III-E machine-capability model: implementation
// levels, rQOPS, reliable-operation capacity, and the Level 3 budget search.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "core/advantage.hpp"

namespace qre {
namespace {

constexpr double kTarget = 1e-12;

TEST(Advantage, ResilientMachineBasics) {
  QubitParams qubit = QubitParams::maj_ns_e4();
  QecScheme scheme = QecScheme::floquet_code();
  MachineCapability cap = machine_capability(qubit, scheme, 1'000'000, kTarget);
  EXPECT_GT(cap.code_distance, 0u);
  EXPECT_EQ(cap.code_distance % 2, 1u);
  EXPECT_GT(cap.logical_qubits, 0u);
  EXPECT_LE(cap.logical_error_rate, kTarget);
  EXPECT_LT(cap.logical_error_rate, qubit.clifford_error_rate());
  EXPECT_GT(cap.rqops, 0.0);
  // rQOPS = logical qubits * clock rate (paper Section III-E).
  EXPECT_NEAR(cap.rqops,
              static_cast<double>(cap.logical_qubits) * (1e9 / cap.logical_cycle_time_ns),
              cap.rqops * 1e-12);
}

TEST(Advantage, LevelOneWhenAtThreshold) {
  QubitParams qubit = QubitParams::gate_ns_e3();
  qubit.two_qubit_gate_error_rate = 0.02;  // above the surface-code threshold
  MachineCapability cap =
      machine_capability(qubit, QecScheme::surface_code_gate_based(), 1'000'000'000, kTarget);
  EXPECT_EQ(cap.level, ComputingLevel::kFoundational);
  EXPECT_EQ(cap.logical_qubits, 0u);
}

TEST(Advantage, LevelOneWhenTooSmall) {
  QubitParams qubit = QubitParams::gate_ns_e3();
  QecScheme scheme = QecScheme::surface_code_gate_based();
  // Far fewer physical qubits than one patch needs.
  MachineCapability cap = machine_capability(qubit, scheme, 100, kTarget);
  EXPECT_EQ(cap.level, ComputingLevel::kFoundational);
  EXPECT_EQ(cap.logical_qubits, 0u);
  EXPECT_GT(cap.code_distance, 0u);
}

TEST(Advantage, LevelsAreMonotoneInBudget) {
  QubitParams qubit = QubitParams::maj_ns_e6();
  QecScheme scheme = QecScheme::floquet_code();
  int previous = 0;
  for (std::uint64_t budget = 100; budget <= 10'000'000'000ull; budget *= 10) {
    MachineCapability cap = machine_capability(qubit, scheme, budget, kTarget);
    EXPECT_GE(static_cast<int>(cap.level), previous);
    previous = static_cast<int>(cap.level);
  }
  EXPECT_EQ(previous, static_cast<int>(ComputingLevel::kScale));
}

TEST(Advantage, ScaleNeedsBothCapacityAndSpeed) {
  QubitParams qubit = QubitParams::maj_ns_e4();
  QecScheme scheme = QecScheme::floquet_code();
  // A machine with a few dozen patches is resilient but below the ~100
  // logical-qubit application workspace -> not at scale.
  MachineCapability small = machine_capability(qubit, scheme, 20'000, kTarget);
  EXPECT_EQ(small.level, ComputingLevel::kResilient);
  EXPECT_LT(small.logical_qubits, 100u);
  MachineCapability large = machine_capability(qubit, scheme, 1'000'000'000ull, kTarget);
  EXPECT_EQ(large.level, ComputingLevel::kScale);
  EXPECT_GE(large.reliable_operations, 1e12);
  EXPECT_GE(large.rqops, 1e6);
  EXPECT_GE(large.logical_qubits, 100u);
}

TEST(Advantage, ReliableOperationsCapping) {
  QubitParams qubit = QubitParams::maj_ns_e4();
  QecScheme scheme = QecScheme::floquet_code();
  AdvantageThresholds short_run;
  short_run.runtime_budget_s = 1e-3;  // a millisecond budget caps by runtime
  MachineCapability cap = machine_capability(qubit, scheme, 10'000'000, kTarget, short_run);
  EXPECT_NEAR(cap.reliable_operations, cap.rqops * 1e-3, cap.reliable_operations * 1e-9);
}

TEST(Advantage, BudgetSearchIsMinimal) {
  QubitParams qubit = QubitParams::maj_ns_e4();
  QecScheme scheme = QecScheme::floquet_code();
  std::uint64_t needed = physical_qubits_for_scale(qubit, scheme, kTarget);
  MachineCapability at = machine_capability(qubit, scheme, needed, kTarget);
  EXPECT_EQ(at.level, ComputingLevel::kScale);
  MachineCapability below = machine_capability(qubit, scheme, needed - 1, kTarget);
  EXPECT_NE(below.level, ComputingLevel::kScale);
}

TEST(Advantage, BudgetSearchFailureExplains) {
  QubitParams qubit = QubitParams::gate_ns_e3();
  qubit.two_qubit_gate_error_rate = 0.5;
  try {
    physical_qubits_for_scale(qubit, QecScheme::surface_code_gate_based(), kTarget);
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("Level 3"), std::string::npos);
  }
}

TEST(Advantage, BetterHardwareNeedsFewerQubitsForScale) {
  QecScheme scheme = QecScheme::floquet_code();
  std::uint64_t realistic =
      physical_qubits_for_scale(QubitParams::maj_ns_e4(), scheme, kTarget);
  std::uint64_t optimistic =
      physical_qubits_for_scale(QubitParams::maj_ns_e6(), scheme, kTarget);
  EXPECT_LT(optimistic, realistic);
}

TEST(Advantage, JsonAndNames) {
  MachineCapability cap = machine_capability(QubitParams::maj_ns_e4(),
                                             QecScheme::floquet_code(), 30'000, kTarget);
  json::Value j = cap.to_json();
  EXPECT_EQ(j.at("logicalQubits").as_uint(), cap.logical_qubits);
  EXPECT_EQ(j.at("level").as_string(), "Level 2 (resilient)");
  EXPECT_EQ(to_string(ComputingLevel::kScale), "Level 3 (scale)");
  EXPECT_THROW(machine_capability(QubitParams::maj_ns_e4(), QecScheme::floquet_code(), 0,
                                  kTarget),
               Error);
}

}  // namespace
}  // namespace qre
