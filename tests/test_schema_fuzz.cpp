// Property/fuzz tests for the input surfaces: deterministic-seed mutation
// of valid schema-v2 documents (key deletion, type swaps, value
// replacement) and raw byte corruption, asserting the validator, the JSON
// parser, the HTTP message layer, and the router never crash and always
// answer with structured diagnostics (or a 4xx envelope) instead.
//
// All randomness is seeded per-iteration, so any failure reproduces
// exactly from the test log.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <random>
#include <string>
#include <vector>

#include "api/api.hpp"
#include "api/frontier.hpp"
#include "common/error.hpp"
#include "json/json.hpp"
#include "server/http.hpp"
#include "server/router.hpp"
#include "store/estimate_store.hpp"
#include "store/store.hpp"

#ifndef QRE_SOURCE_DIR
#define QRE_SOURCE_DIR "."
#endif

namespace qre {
namespace {

const char* kSingleJob = R"({
  "schemaVersion": 2,
  "logicalCounts": {"numQubits": 10, "tCount": 1000, "rotationCount": 10,
                    "rotationDepth": 5},
  "qubitParams": {"name": "qubit_gate_ns_e3"},
  "qecScheme": {"name": "surface_code"},
  "errorBudget": {"logical": 0.0005, "tstates": 0.0003, "rotations": 0.0002},
  "constraints": {"maxTFactories": 4, "logicalDepthFactor": 1.5},
  "estimateType": "singlePoint"
})";

const char* kFrontierJob = R"({
  "schemaVersion": 2,
  "logicalCounts": {"numQubits": 10, "tCount": 1000},
  "qubitParams": {"name": "qubit_gate_ns_e3"},
  "frontier": {"maxProbes": 8, "qubitTolerance": 0.1, "runtimeTolerance": 0.1,
               "errorBudgets": [0.01, 0.001]}
})";

// --------------------------------------------------- document mutations ---

/// A grab-bag of replacement values covering every JSON type plus common
/// pathological numbers.
json::Value random_junk(std::mt19937_64& rng) {
  switch (rng() % 10) {
    case 0: return json::Value(nullptr);
    case 1: return json::Value(true);
    case 2: return json::Value(-1);
    case 3: return json::Value(0);
    case 4: return json::Value(1e308);
    case 5: return json::Value(-1e-308);
    case 6: return json::Value("junk");
    case 7: return json::Value(json::Array{});
    case 8: return json::Value(json::Object{});
    default: return json::Value(3.25);
  }
}

/// Applies one random structural mutation somewhere in the tree: delete a
/// key, swap a value for junk of another type, or recurse into a child.
void mutate(json::Value& node, std::mt19937_64& rng, int depth = 0) {
  if (depth > 6 || (!node.is_object() && !node.is_array()) || rng() % 4 == 0) {
    node = random_junk(rng);
    return;
  }
  if (node.is_object()) {
    json::Object& object = node.as_object();
    if (object.empty()) {
      node = random_junk(rng);
      return;
    }
    const std::size_t pick = rng() % object.size();
    if (rng() % 3 == 0) {
      object.erase(object.begin() + static_cast<std::ptrdiff_t>(pick));  // key deletion
    } else {
      mutate(object[pick].second, rng, depth + 1);
    }
    return;
  }
  json::Array& array = node.as_array();
  if (array.empty()) {
    node = random_junk(rng);
    return;
  }
  const std::size_t pick = rng() % array.size();
  if (rng() % 4 == 0) {
    array.erase(array.begin() + static_cast<std::ptrdiff_t>(pick));
  } else {
    mutate(array[pick], rng, depth + 1);
  }
}

/// The property every input surface must hold: parse + validate never
/// throw, and whatever diagnostics come back are structurally sound.
void expect_graceful_validation(const json::Value& document) {
  api::Registry registry = api::Registry::with_builtins();
  api::EstimateRequest request;
  ASSERT_NO_THROW(request = api::EstimateRequest::parse(document, registry));
  if (request.ok()) {
    ASSERT_NO_THROW(
        api::validate_batch_items(request.document, registry, request.diagnostics));
    if (request.document.is_object() &&
        request.document.find("frontier") != nullptr) {
      ASSERT_NO_THROW(api::FrontierRequest::parse(document, registry));
    }
  }
  for (const Diagnostic& d : request.diagnostics.entries()) {
    EXPECT_FALSE(d.code.empty());
    EXPECT_FALSE(d.message.empty());
    if (!d.path.empty()) {
      EXPECT_EQ(d.path.front(), '/');
    }
  }
  // The diagnostics document itself always serializes.
  EXPECT_NO_THROW((void)request.diagnostics.to_json().dump());
}

TEST(SchemaFuzz, MutatedDocumentsAlwaysValidateGracefully) {
  const std::vector<json::Value> seeds = {
      json::parse(kSingleJob),
      json::parse(kFrontierJob),
      json::parse_file(QRE_SOURCE_DIR "/examples/fig4_sweep_job.json"),
      json::parse_file(QRE_SOURCE_DIR "/examples/frontier_job.json"),
  };
  for (std::size_t seed_index = 0; seed_index < seeds.size(); ++seed_index) {
    for (std::uint64_t iteration = 0; iteration < 300; ++iteration) {
      std::mt19937_64 rng(1000 * seed_index + iteration);
      json::Value document = seeds[seed_index];
      const std::uint64_t rounds = 1 + rng() % 4;
      for (std::uint64_t r = 0; r < rounds; ++r) mutate(document, rng);
      SCOPED_TRACE("seed_index=" + std::to_string(seed_index) +
                   " iteration=" + std::to_string(iteration));
      expect_graceful_validation(document);
    }
  }
}

// ------------------------------------------------------ byte corruption ---

std::string corrupt_bytes(std::string text, std::mt19937_64& rng) {
  if (text.empty()) return text;
  const std::uint64_t edits = 1 + rng() % 8;
  for (std::uint64_t e = 0; e < edits && !text.empty(); ++e) {
    const std::size_t pos = rng() % text.size();
    switch (rng() % 3) {
      case 0: text[pos] = static_cast<char>(rng() % 256); break;   // substitute
      case 1: text.erase(pos, 1); break;                            // delete
      default: text.insert(pos, 1, static_cast<char>(rng() % 256)); // insert
    }
  }
  return text;
}

TEST(SchemaFuzz, CorruptedJsonTextParsesOrThrowsQreError) {
  const std::string source = kSingleJob;
  for (std::uint64_t iteration = 0; iteration < 500; ++iteration) {
    std::mt19937_64 rng(77000 + iteration);
    const std::string corrupted = corrupt_bytes(source, rng);
    SCOPED_TRACE("iteration=" + std::to_string(iteration));
    try {
      json::Value document = json::parse(corrupted);
      // Still-parseable text must still validate gracefully.
      expect_graceful_validation(document);
    } catch (const Error&) {
      // Structured rejection is the expected failure mode.
    }
    // Anything else (std::bad_alloc, segfault, uncaught logic_error) fails
    // the test by escaping the try.
  }
}

// ------------------------------------------------------------ HTTP layer ---

server::ByteSource memory_source(std::string data) {
  auto stream = std::make_shared<std::pair<std::string, std::size_t>>(std::move(data), 0);
  return [stream](char* out, std::size_t len) -> long {
    const std::string& bytes = stream->first;
    std::size_t& pos = stream->second;
    if (pos >= bytes.size()) return 0;
    const std::size_t n = std::min(len, bytes.size() - pos);
    std::memcpy(out, bytes.data() + pos, n);
    pos += n;
    return static_cast<long>(n);
  };
}

TEST(SchemaFuzz, CorruptedHttpRequestsNeverCrashTheMessageLayer) {
  const std::string valid =
      "POST /v2/estimate HTTP/1.1\r\n"
      "Host: fuzz\r\n"
      "Content-Type: application/json\r\n"
      "Content-Length: 17\r\n"
      "\r\n"
      "{\"numQubits\": 10}";
  const std::string chunked =
      "POST /v2/jobs HTTP/1.1\r\n"
      "Transfer-Encoding: chunked\r\n"
      "\r\n"
      "6\r\n{\"a\":1\r\n1\r\n}\r\n0\r\n\r\n";
  for (std::uint64_t iteration = 0; iteration < 600; ++iteration) {
    std::mt19937_64 rng(909000 + iteration);
    const std::string& base = iteration % 2 == 0 ? valid : chunked;
    std::string corrupted = corrupt_bytes(base, rng);
    if (rng() % 3 == 0) corrupted.resize(rng() % (corrupted.size() + 1));  // truncate
    SCOPED_TRACE("iteration=" + std::to_string(iteration));
    std::string buffer;
    server::Request request;
    server::ReadLimits limits;
    limits.max_header_bytes = 4096;
    limits.max_body_bytes = 4096;
    server::ReadStatus status = server::ReadStatus::kBadRequest;
    ASSERT_NO_THROW(status = read_request(memory_source(corrupted), buffer, request, limits));
    if (status == server::ReadStatus::kOk) {
      // Whatever parsed must be internally consistent enough to inspect.
      EXPECT_NO_THROW((void)request.path());
      EXPECT_NO_THROW((void)request.keep_alive());
    }
  }
}

/// Runs one fabricated request through the real router and returns the
/// parsed response; asserts exactly one well-formed response was written.
server::ParsedResponse route(server::Router& router, const std::string& method,
                             const std::string& target, const std::string& body) {
  server::Request request;
  request.method = method;
  request.target = target;
  request.version = "HTTP/1.1";
  request.headers.push_back({"Connection", "close"});
  request.body = body;
  std::string wire;
  server::ByteSink sink = [&wire](std::string_view data) {
    wire.append(data);
    return true;
  };
  router.handle(request, sink);
  std::string buffer;
  server::ParsedResponse response;
  EXPECT_EQ(read_response(memory_source(wire), buffer, response), server::ReadStatus::kOk)
      << "router wrote an unparseable response";
  return response;
}

TEST(SchemaFuzz, RouterAnswersCorruptedBodiesWithStructured4xx) {
  api::Registry registry = api::Registry::with_builtins();
  server::Service service(registry);
  server::Router router(service);

  const std::string source = kSingleJob;
  for (std::uint64_t iteration = 0; iteration < 200; ++iteration) {
    std::mt19937_64 rng(31000 + iteration);
    std::string corrupted = corrupt_bytes(source, rng);
    SCOPED_TRACE("iteration=" + std::to_string(iteration));
    // /v2/validate never estimates, so arbitrary still-valid mutants are
    // cheap; the endpoint must answer 200 or 422 with a diagnostics body,
    // or 400 for unparseable JSON — always a JSON document.
    server::ParsedResponse response = route(router, "POST", "/v2/validate", corrupted);
    EXPECT_TRUE(response.status == 200 || response.status == 400 ||
                response.status == 422)
        << "unexpected status " << response.status;
    json::Value body;
    ASSERT_NO_THROW(body = json::parse(response.body));
    if (response.status == 400) {
      EXPECT_NE(body.find("error"), nullptr);
    } else {
      EXPECT_NE(body.find("diagnostics"), nullptr);
    }
  }

  // Definitely-unparseable bodies on the estimating endpoints: structured
  // 400s, never an exception, never a hung worker. Explicit length keeps
  // the embedded NUL in the body instead of truncating the literal.
  const std::string junk = std::string(1, '\0') + "\xff not json";
  for (const char* target : {"/v2/estimate", "/v2/jobs"}) {
    server::ParsedResponse response = route(router, "POST", target, junk);
    EXPECT_EQ(response.status, 400);
    EXPECT_NE(json::parse(response.body).find("error"), nullptr);
  }
}

// --------------------------------------------------- store image fuzzing ---

// Mutated store files follow the same graceful-degradation contract as
// mutated JSON: the reader either rejects the file as a whole with a
// structured qre::Error (unusable header) or opens it and serves whatever
// records survive their checksums — never a crash, never a wrong value.
TEST(SchemaFuzz, MutatedStoreImagesLoadGracefullyOrRejectCleanly) {
  std::vector<store::Record> records;
  for (int i = 0; i < 12; ++i) {
    records.push_back({"{\"job\":" + std::to_string(i) + "}",
                       "{\"result\":" + std::to_string(i) + "}"});
  }
  const std::string image = store::encode_store(records);

  char dir_pattern[] = "/tmp/qre_fuzz_store.XXXXXX";
  ASSERT_NE(::mkdtemp(dir_pattern), nullptr);
  const std::string dir = dir_pattern;
  const std::string path = dir + "/" + std::string(store::kStoreFileName);

  for (std::uint64_t iteration = 0; iteration < 300; ++iteration) {
    std::mt19937_64 rng(91000 + iteration);
    const std::string corrupted = corrupt_bytes(image, rng);
    {
      std::FILE* f = std::fopen(path.c_str(), "wb");
      ASSERT_NE(f, nullptr);
      std::fwrite(corrupted.data(), 1, corrupted.size(), f);
      std::fclose(f);
    }
    SCOPED_TRACE("iteration=" + std::to_string(iteration));
    try {
      store::StoreReader reader(path);
      // The header survived; every intact record must replay its exact
      // original value, and corrupt ones are skipped, not misread.
      reader.for_each([&](std::string_view key, std::string_view value) {
        for (const store::Record& r : records) {
          if (key == r.key) {
            EXPECT_EQ(value, r.value);
            return;
          }
        }
      });
    } catch (const Error&) {
      // Whole-file rejection is the expected failure mode.
    }

    // The serving layer on top degrades to a logged cold start, never a
    // process failure: load() must not throw on any mutant.
    store::EstimateStore estimate_store(dir);
    store::LoadResult loaded;
    ASSERT_NO_THROW(loaded = estimate_store.load());
    EXPECT_TRUE(loaded.file_found);
  }

  std::remove(path.c_str());
  ::rmdir(dir.c_str());
}

}  // namespace
}  // namespace qre
