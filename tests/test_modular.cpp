// Simulator verification of the modular arithmetic stack — comparators,
// modular adders, windowed modular multiplication (incl. the controlled
// form and its taped-adjoint uncompute), and modular exponentiation —
// against classical arithmetic, plus counting-mode structure checks and the
// factoring workload composition.
#include <gtest/gtest.h>

#include <tuple>

#include "arith/comparators.hpp"
#include "arith/dynamics.hpp"
#include "arith/modular.hpp"
#include "circuit/builder.hpp"
#include "common/error.hpp"
#include "counter/logical_counter.hpp"
#include "sim/sparse_simulator.hpp"

namespace qre {
namespace {

TEST(ClassicalHelpers, ModPowAndInverse) {
  EXPECT_EQ(mod_pow(7, 0, 15), 1u);
  EXPECT_EQ(mod_pow(7, 2, 15), 4u);
  EXPECT_EQ(mod_pow(7, 4, 15), 1u);
  EXPECT_EQ(mod_pow(2, 10, 1000), 24u);
  EXPECT_EQ(mod_inverse(7, 15), 13u);  // 7*13 = 91 = 6*15+1
  EXPECT_EQ(mod_inverse(1, 2), 1u);
  EXPECT_THROW(mod_inverse(6, 15), Error);  // gcd != 1
}

TEST(Comparators, CarryOfSumExhaustive) {
  for (int n = 1; n <= 4; ++n) {
    for (std::uint64_t a = 0; a < (1u << n); ++a) {
      for (std::uint64_t b = 0; b < (1u << n); ++b) {
        for (int cin = 0; cin < 2; ++cin) {
          SparseSimulator sim(a * 97 + b * 3 + cin + 1);
          ProgramBuilder bld(sim);
          Register ra = bld.alloc_register(n);
          Register rb = bld.alloc_register(n);
          QubitId flag = bld.alloc();
          bld.xor_constant(ra, a);
          bld.xor_constant(rb, b);
          carry_of_sum(bld, ra, rb, flag, cin != 0);
          bool expected = (a + b + cin) >> n;
          EXPECT_NEAR(sim.probability_one(flag), expected ? 1.0 : 0.0, 1e-9)
              << "n=" << n << " a=" << a << " b=" << b << " cin=" << cin;
          // Operands untouched.
          EXPECT_EQ(sim.peek_classical(ra), a);
          EXPECT_EQ(sim.peek_classical(rb), b);
        }
      }
    }
  }
}

TEST(Comparators, CompareLessExhaustive) {
  for (int n = 1; n <= 4; ++n) {
    for (std::uint64_t a = 0; a < (1u << n); ++a) {
      for (std::uint64_t b = 0; b < (1u << n); ++b) {
        SparseSimulator sim(a * 13 + b + 2);
        ProgramBuilder bld(sim);
        Register ra = bld.alloc_register(n);
        Register rb = bld.alloc_register(n);
        QubitId flag = bld.alloc();
        bld.xor_constant(ra, a);
        bld.xor_constant(rb, b);
        compare_less(bld, ra, rb, flag);
        EXPECT_NEAR(sim.probability_one(flag), a < b ? 1.0 : 0.0, 1e-9)
            << "a=" << a << " b=" << b;
        EXPECT_EQ(sim.peek_classical(rb), b);
      }
    }
  }
}

TEST(Comparators, CompareGeqConstantExhaustive) {
  const int n = 4;
  for (std::uint64_t k = 1; k <= (1u << n); ++k) {
    for (std::uint64_t v = 0; v < (1u << n); ++v) {
      SparseSimulator sim(k * 31 + v + 7);
      ProgramBuilder bld(sim);
      Register reg = bld.alloc_register(n);
      QubitId flag = bld.alloc();
      bld.xor_constant(reg, v);
      compare_geq_constant(bld, reg, Constant{k, n}, flag);
      EXPECT_NEAR(sim.probability_one(flag), v >= k ? 1.0 : 0.0, 1e-9)
          << "k=" << k << " v=" << v;
      EXPECT_EQ(sim.peek_classical(reg), v);
    }
  }
}

int bits_for_modulus(std::uint64_t modulus) {
  int n = 1;
  while ((std::uint64_t{1} << n) < modulus) ++n;
  return n;
}

class ModAddConstant : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ModAddConstant, Exhaustive) {
  std::uint64_t modulus = GetParam();
  int n = bits_for_modulus(modulus);
  for (std::uint64_t k = 0; k < modulus; ++k) {
    for (std::uint64_t v = 0; v < modulus; ++v) {
      SparseSimulator sim(k * 101 + v + 3);
      ProgramBuilder bld(sim);
      Register reg = bld.alloc_register(n);
      bld.xor_constant(reg, v);
      std::uint64_t live = bld.live_qubits();
      mod_add_constant(bld, k, modulus, reg);
      EXPECT_EQ(sim.peek_classical(reg), (v + k) % modulus)
          << "N=" << modulus << " k=" << k << " v=" << v;
      EXPECT_EQ(bld.live_qubits(), live);  // flag uncomputed and released
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Moduli, ModAddConstant, ::testing::Values(5, 8, 13, 16));

TEST(ModularAdd, QuantumQuantumExhaustive) {
  for (std::uint64_t modulus : {6ull, 11ull, 16ull}) {
    int n = bits_for_modulus(modulus);
    for (std::uint64_t t = 0; t < modulus; t += 2) {
      for (std::uint64_t v = 0; v < modulus; ++v) {
        SparseSimulator sim(t * 211 + v + 5);
        ProgramBuilder bld(sim);
        Register rt = bld.alloc_register(n);
        Register acc = bld.alloc_register(n);
        bld.xor_constant(rt, t);
        bld.xor_constant(acc, v);
        mod_add_into(bld, rt, modulus, acc);
        EXPECT_EQ(sim.peek_classical(acc), (t + v) % modulus)
            << "N=" << modulus << " t=" << t << " v=" << v;
        EXPECT_EQ(sim.peek_classical(rt), t);  // addend preserved
      }
    }
  }
}

class WindowedModMult : public ::testing::TestWithParam<std::tuple<std::uint64_t, int>> {};

TEST_P(WindowedModMult, MatchesClassical) {
  auto [modulus, w] = GetParam();
  int n = bits_for_modulus(modulus);
  std::uint64_t s = 12345;
  for (int round = 0; round < 12; ++round) {
    s = s * 6364136223846793005ull + 1442695040888963407ull;
    std::uint64_t c = (s >> 33) % modulus;
    s = s * 6364136223846793005ull + 1442695040888963407ull;
    std::uint64_t y = (s >> 33) % modulus;
    s = s * 6364136223846793005ull + 1442695040888963407ull;
    std::uint64_t t0 = (s >> 33) % modulus;
    SparseSimulator sim(s | 1);
    ProgramBuilder bld(sim);
    Register ry = bld.alloc_register(n);
    Register target = bld.alloc_register(n);
    bld.xor_constant(ry, y);
    bld.xor_constant(target, t0);
    windowed_mod_mult_add(bld, std::nullopt, c, modulus, ry, target, w);
    std::uint64_t expected =
        static_cast<std::uint64_t>((static_cast<unsigned __int128>(c) * y + t0) % modulus);
    EXPECT_EQ(sim.peek_classical(target), expected)
        << "N=" << modulus << " c=" << c << " y=" << y << " t0=" << t0;
    EXPECT_EQ(sim.peek_classical(ry), y);
  }
}

INSTANTIATE_TEST_SUITE_P(ModuliAndWindows, WindowedModMult,
                         ::testing::Values(std::tuple{15ull, 1}, std::tuple{15ull, 2},
                                           std::tuple{21ull, 2}, std::tuple{32ull, 3},
                                           std::tuple{63ull, 3}));

TEST(ModMulInplace, ControlledBothBranches) {
  const std::uint64_t modulus = 15;
  const int n = 4;
  for (std::uint64_t c : {2ull, 7ull, 11ull, 13ull}) {
    std::uint64_t inverse = mod_inverse(c, modulus);
    for (int ctrl = 0; ctrl < 2; ++ctrl) {
      for (std::uint64_t v : {1ull, 4ull, 8ull, 14ull}) {
        SparseSimulator sim(c * 7 + v * 3 + ctrl + 11);
        ProgramBuilder bld(sim);
        QubitId control = bld.alloc();
        if (ctrl) bld.x(control);
        Register acc = bld.alloc_register(n);
        bld.xor_constant(acc, v);
        std::uint64_t live = bld.live_qubits();
        mod_mul_constant_inplace(bld, control, c, inverse, modulus, acc, 2);
        std::uint64_t expected = ctrl ? (c * v) % modulus : v;
        EXPECT_EQ(sim.peek_classical(acc), expected)
            << "c=" << c << " v=" << v << " ctrl=" << ctrl;
        EXPECT_EQ(bld.live_qubits(), live);  // scratch fully uncomputed
      }
    }
  }
}

TEST(ModExp, ShorStyleEvaluation) {
  // 7^e mod 15 for every 4-bit exponent value, against classical mod_pow.
  const std::uint64_t modulus = 15;
  const std::uint64_t g = 7;
  for (std::uint64_t e = 0; e < 16; ++e) {
    SparseSimulator sim(e * 3 + 1);
    ProgramBuilder bld(sim);
    Register exponent = bld.alloc_register(4);
    Register acc = bld.alloc_register(4);
    bld.xor_constant(exponent, e);
    bld.xor_constant(acc, 1);
    mod_exp(bld, g, modulus, exponent, acc, 2);
    EXPECT_EQ(sim.peek_classical(acc), mod_pow(g, e, modulus)) << "e=" << e;
    EXPECT_EQ(sim.peek_classical(exponent), e);
  }
}

TEST(ModExp, SuperposedExponentStaysConsistent) {
  // Exponent in |+>^2: measuring it afterwards must find acc = g^e mod N.
  const std::uint64_t modulus = 15;
  const std::uint64_t g = 7;
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    SparseSimulator sim(seed * 7919);
    ProgramBuilder bld(sim);
    Register exponent = bld.alloc_register(2);
    Register acc = bld.alloc_register(4);
    for (QubitId q : exponent) bld.h(q);
    bld.xor_constant(acc, 1);
    mod_exp(bld, g, modulus, exponent, acc, 2);
    std::uint64_t e = 0;
    for (std::size_t i = 0; i < exponent.size(); ++i) {
      if (bld.mz(exponent[i])) e |= std::uint64_t{1} << i;
    }
    EXPECT_EQ(sim.peek_classical(acc), mod_pow(g, e, modulus)) << "seed=" << seed;
  }
}

TEST(Factoring, CompositionScalesToRsaSizes) {
  LogicalCounts rsa = factoring_counts(2048);
  // 2n controlled modular multiplications, each ~2 windowed passes of
  // (n/w) * (lookup + ~5n modular-add ANDs).
  EXPECT_GT(rsa.ccix_count, 1e9);
  EXPECT_LT(rsa.ccix_count, 2e11);
  // Width: exponent (2n) + accumulator (n) + multiply scratch (~2n + w).
  EXPECT_GT(rsa.num_qubits, 5 * 2048u);
  EXPECT_LT(rsa.num_qubits, 8 * 2048u);
  EXPECT_EQ(rsa.rotation_count, 0u);
  // Composition is linear in the multiplication count.
  LogicalCounts half = factoring_counts(1024);
  double ratio = static_cast<double>(rsa.ccix_count) / static_cast<double>(half.ccix_count);
  EXPECT_GT(ratio, 3.0);  // ~2x multiplications, each >2x larger
  EXPECT_LT(ratio, 10.0);
}

TEST(Dynamics, IsingCountsMatchClosedForm) {
  IsingModelSpec spec;
  spec.lattice_width = 6;
  spec.lattice_height = 5;
  spec.trotter_steps = 20;
  LogicalCounts c = ising_counts(spec);
  std::size_t sites = 30;
  std::size_t edges = 5 * 5 /*horizontal*/ + 4 * 6 /*vertical*/;
  EXPECT_EQ(c.num_qubits, sites);
  EXPECT_EQ(c.rotation_count, spec.trotter_steps * (sites + edges));
  EXPECT_EQ(c.measurement_count, sites);
  EXPECT_EQ(c.t_count, 0u);
  EXPECT_EQ(c.ccz_count, 0u);
  // Parallel layers: per step one Rx layer plus four edge sweeps; allow
  // scheduler slack but require far fewer layers than rotations.
  EXPECT_GE(c.rotation_depth, spec.trotter_steps * 3);
  EXPECT_LE(c.rotation_depth, spec.trotter_steps * 8);
}

TEST(Dynamics, EvolutionValidatesLattice) {
  LogicalCounter counter;
  ProgramBuilder bld(counter);
  Register wrong = bld.alloc_register(7);
  IsingModelSpec spec;
  EXPECT_THROW(ising_trotter_evolution(bld, wrong, spec), Error);
}

}  // namespace
}  // namespace qre
