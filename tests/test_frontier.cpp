// Tests of the adaptive Pareto explorer (src/frontier/ + api/frontier.hpp):
// bisection refinement against synthetic trade-off models, non-domination
// of every returned point, serial-vs-parallel byte-identity, warm-engine
// probe reuse, and the schema-v2 "frontier" job kind end to end.
#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "api/api.hpp"
#include "api/frontier.hpp"
#include "common/error.hpp"
#include "core/job.hpp"
#include "frontier/explorer.hpp"
#include "json/json.hpp"
#include "service/engine.hpp"

namespace qre {
namespace {

using api::EstimateRequest;
using api::EstimateResponse;
using api::FrontierRequest;
using api::FrontierResponse;
using api::Registry;
using frontier::ExploreOptions;
using frontier::ExploreStats;

// ------------------------------------------------------ synthetic model ---

/// A minimal report document carrying exactly the sections the explorer
/// reads: qubits, runtime, and the unconstrained factory count.
json::Value synthetic_report(std::uint64_t qubits, double runtime_ns,
                             std::uint64_t num_factories) {
  json::Object counts;
  counts.emplace_back("physicalQubits", qubits);
  counts.emplace_back("runtime", runtime_ns);
  json::Object breakdown;
  breakdown.emplace_back("numTfactories", num_factories);
  json::Object report;
  report.emplace_back("physicalCounts", json::Value(std::move(counts)));
  report.emplace_back("physicalCountsBreakdown", json::Value(std::move(breakdown)));
  return json::Value(std::move(report));
}

std::uint64_t cap_of(const json::Value& doc, std::uint64_t unconstrained) {
  if (const json::Value* constraints = doc.find("constraints")) {
    if (const json::Value* cap = constraints->find("maxTFactories")) {
      return std::min(cap->as_uint(), unconstrained);
    }
  }
  return unconstrained;
}

/// qubits = 1000 + 100*cap, runtime = total/cap: every integer cap is a
/// distinct Pareto-optimal point.
service::JobRunner linear_tradeoff_runner(std::uint64_t total_factories) {
  return [total_factories](const json::Value& doc) {
    const std::uint64_t cap = cap_of(doc, total_factories);
    return synthetic_report(1000 + 100 * cap,
                            1e9 * static_cast<double>(total_factories) /
                                static_cast<double>(cap),
                            total_factories);
  };
}

const char* kSyntheticJob = R"({"schemaVersion": 2, "logicalCounts": {"numQubits": 1}})";

json::Value explore_synthetic(const service::JobRunner& runner, ExploreOptions options,
                              ExploreStats* stats = nullptr,
                              service::EngineOptions engine_options = {}) {
  return frontier::explore(json::parse(kSyntheticJob), options, runner, engine_options,
                           stats);
}

struct Point {
  std::uint64_t qubits = 0;
  double runtime = 0.0;
  double budget = 0.0;
  std::uint64_t cap = 0;  // 0 = uncapped
};

std::vector<Point> frontier_points(const json::Value& result) {
  std::vector<Point> points;
  for (const json::Value& entry : result.at("frontier").as_array()) {
    Point p;
    p.qubits = entry.at("physicalQubits").as_uint();
    p.runtime = entry.at("runtime").as_double();
    if (const json::Value* budget = entry.find("errorBudget")) p.budget = budget->as_double();
    if (const json::Value* cap = entry.find("maxTFactories")) p.cap = cap->as_uint();
    EXPECT_NE(entry.find("result"), nullptr);
    points.push_back(p);
  }
  return points;
}

/// Acceptance-criterion check: no returned point may dominate another.
void expect_mutually_non_dominated(const std::vector<Point>& points) {
  for (std::size_t i = 0; i < points.size(); ++i) {
    for (std::size_t j = 0; j < points.size(); ++j) {
      if (i == j) continue;
      const Point& a = points[i];
      const Point& b = points[j];
      const bool dominates = a.qubits <= b.qubits && a.runtime <= b.runtime &&
                             a.budget <= b.budget;
      EXPECT_FALSE(dominates) << "point " << i << " dominates point " << j;
    }
  }
}

TEST(FrontierExplorer, ZeroToleranceRecoversEveryCap) {
  ExploreOptions options;
  options.max_probes = 64;
  options.qubit_tolerance = 0.0;
  options.runtime_tolerance = 0.0;
  ExploreStats stats;
  json::Value result = explore_synthetic(linear_tradeoff_runner(16), options, &stats);

  std::vector<Point> points = frontier_points(result);
  ASSERT_EQ(points.size(), 16u);  // caps 1..15 plus the uncapped point
  expect_mutually_non_dominated(points);
  // Fastest first, monotone trade-off.
  for (std::size_t i = 1; i < points.size(); ++i) {
    EXPECT_GT(points[i].runtime, points[i - 1].runtime);
    EXPECT_LT(points[i].qubits, points[i - 1].qubits);
  }
  EXPECT_EQ(points.front().cap, 0u);   // uncapped = fastest
  EXPECT_EQ(points.back().cap, 1u);    // cap 1 = smallest
  EXPECT_EQ(stats.num_points, 16u);
  EXPECT_EQ(stats.num_failed_probes, 0u);
  EXPECT_EQ(result.at("frontierStats").at("numProbes").as_uint(), stats.num_probes);
}

TEST(FrontierExplorer, RefinementSkipsFlatRegions) {
  // Runtime saturates at cap 4: the whole [4, 16] stretch is flat in one
  // objective, so adaptive bisection must not spend probes resolving it.
  auto runner = [](const json::Value& doc) {
    const std::uint64_t cap = cap_of(doc, 16);
    const std::uint64_t effective = std::min<std::uint64_t>(cap, 4);
    return synthetic_report(1000 + 100 * cap, 16e9 / static_cast<double>(effective), 16);
  };
  ExploreOptions options;
  options.max_probes = 64;
  options.qubit_tolerance = 0.0;
  options.runtime_tolerance = 0.0;
  ExploreStats stats;
  json::Value result = explore_synthetic(runner, options, &stats);

  // Exhaustive resolution would cost 16 probes; the flat tail collapses.
  EXPECT_LT(stats.num_probes, 10u);
  std::vector<Point> points = frontier_points(result);
  expect_mutually_non_dominated(points);
  // The saturated region is represented by its cheapest cap only.
  ASSERT_EQ(points.size(), 4u);
  EXPECT_EQ(points.front().qubits, 1400u);  // cap 4, runtime 4e9
  EXPECT_EQ(points.back().cap, 1u);
}

TEST(FrontierExplorer, ProbeBudgetIsAHardCap) {
  ExploreOptions options;
  options.max_probes = 5;
  options.qubit_tolerance = 0.0;
  options.runtime_tolerance = 0.0;
  ExploreStats stats;
  json::Value result = explore_synthetic(linear_tradeoff_runner(1000), options, &stats);
  EXPECT_LE(stats.num_probes, 5u);
  expect_mutually_non_dominated(frontier_points(result));
}

TEST(FrontierExplorer, InfeasibleProbesAreIsolatedAndBoundaryLocalized) {
  // Caps below 6 are infeasible (as a maxDuration would make them).
  auto runner = [](const json::Value& doc) -> json::Value {
    const std::uint64_t cap = cap_of(doc, 16);
    if (cap < 6) throw Error("schedule exceeds maxDuration");
    return synthetic_report(1000 + 100 * cap, 16e9 / static_cast<double>(cap), 16);
  };
  ExploreOptions options;
  options.max_probes = 64;
  options.qubit_tolerance = 0.0;
  options.runtime_tolerance = 0.0;
  ExploreStats stats;
  json::Value result = explore_synthetic(runner, options, &stats);

  EXPECT_GT(stats.num_failed_probes, 0u);
  std::vector<Point> points = frontier_points(result);
  expect_mutually_non_dominated(points);
  // The boundary cap 6 is found exactly despite the failures around it.
  EXPECT_EQ(points.back().cap, 6u);
  for (const Point& p : points) {
    if (p.cap != 0) {
      EXPECT_GE(p.cap, 6u);
    }
  }
}

TEST(FrontierExplorer, AllProbesFailingThrows) {
  auto runner = [](const json::Value&) -> json::Value {
    throw Error("always infeasible");
  };
  EXPECT_THROW(explore_synthetic(runner, ExploreOptions{}), Error);
}

TEST(FrontierExplorer, MalformedRunnerOutputIsAFailedProbeNotACrash) {
  auto runner = [](const json::Value&) { return json::parse(R"({"weird": true})"); };
  EXPECT_THROW(explore_synthetic(runner, ExploreOptions{}), Error);
}

TEST(FrontierExplorer, ErrorBudgetAxisExploresEveryLevelIn3d) {
  // Higher budget shrinks both qubits and runtime; within a level the cap
  // trades them. All levels contribute non-dominated points.
  auto runner = [](const json::Value& doc) {
    const double budget = doc.at("errorBudget").as_double();
    const double scale = budget >= 1e-2 ? 0.5 : 1.0;
    const std::uint64_t cap = cap_of(doc, 8);
    return synthetic_report(
        static_cast<std::uint64_t>(scale * static_cast<double>(1000 + 100 * cap)),
        scale * 8e9 / static_cast<double>(cap), 8);
  };
  ExploreOptions options;
  options.max_probes = 64;
  options.qubit_tolerance = 0.0;
  options.runtime_tolerance = 0.0;
  options.error_budgets = {1e-2, 1e-4};
  ExploreStats stats;
  json::Value result = explore_synthetic(runner, options, &stats);

  std::vector<Point> points = frontier_points(result);
  expect_mutually_non_dominated(points);
  std::set<double> budgets;
  for (const Point& p : points) budgets.insert(p.budget);
  EXPECT_EQ(budgets.size(), 2u);
  EXPECT_EQ(result.at("frontierStats").at("budgetLevels").as_uint(), 2u);
  // The cheap-budget curve alone would dominate in 2D; the strict-budget
  // points survive because the budget is itself an objective.
  std::size_t strict_points = 0;
  for (const Point& p : points) {
    if (p.budget == 1e-4) ++strict_points;
  }
  EXPECT_GT(strict_points, 1u);
}

// ------------------------------------------------------------ real jobs ---

const char* kRealFrontierJob = R"({
  "schemaVersion": 2,
  "logicalCounts": {"numQubits": 100, "tCount": 1000000, "rotationCount": 30000,
                    "rotationDepth": 11000, "cczCount": 250000,
                    "measurementCount": 150000},
  "qubitParams": {"name": "qubit_gate_ns_e3"},
  "errorBudget": 0.001,
  "frontier": {"maxProbes": 16, "qubitTolerance": 0.02, "runtimeTolerance": 0.02}
})";

TEST(FrontierJob, PointsAreNonDominatedAndBracketTheCapRange) {
  Registry registry = Registry::with_builtins();
  EstimateRequest request = EstimateRequest::parse(json::parse(kRealFrontierJob), registry);
  ASSERT_TRUE(request.ok()) << request.diagnostics.summary();
  EstimateResponse response = api::run(request, {}, registry);
  ASSERT_TRUE(response.success) << response.diagnostics.summary();

  std::vector<Point> points = frontier_points(response.result);
  ASSERT_GE(points.size(), 3u);
  expect_mutually_non_dominated(points);
  EXPECT_EQ(points.front().cap, 0u);  // the unconstrained estimate is fastest
  EXPECT_EQ(points.back().cap, 1u);   // the one-factory floor is smallest
  const json::Value& stats = response.result.at("frontierStats");
  EXPECT_LE(stats.at("numProbes").as_uint(), 16u);
  EXPECT_EQ(stats.at("numPoints").as_uint(), points.size());
}

TEST(FrontierJob, SerialAndParallelExplorationAreByteIdentical) {
  Registry registry = Registry::with_builtins();
  EstimateRequest request = EstimateRequest::parse(json::parse(kRealFrontierJob), registry);
  ASSERT_TRUE(request.ok());

  service::Engine serial_engine;
  service::EngineOptions serial = serial_engine.options();
  serial.num_workers = 1;
  EstimateResponse a = api::run(request, serial, registry);

  service::Engine parallel_engine;
  service::EngineOptions parallel = parallel_engine.options();
  parallel.num_workers = 8;
  EstimateResponse b = api::run(request, parallel, registry);

  ASSERT_TRUE(a.success);
  ASSERT_TRUE(b.success);
  EXPECT_EQ(a.result.dump(), b.result.dump());
}

TEST(FrontierJob, WarmEngineRunsStrictlyFewerRawEstimates) {
  Registry registry = Registry::with_builtins();
  EstimateRequest request = EstimateRequest::parse(json::parse(kRealFrontierJob), registry);
  ASSERT_TRUE(request.ok());

  service::Engine engine;
  EstimateResponse cold = api::run(request, engine.options(), registry);
  ASSERT_TRUE(cold.success);
  const std::uint64_t cold_misses = engine.cache().misses();
  const std::uint64_t cold_hits = engine.cache().hits();
  EXPECT_GT(cold_misses, 0u);  // a cold engine had to estimate

  EstimateResponse warm = api::run(request, engine.options(), registry);
  ASSERT_TRUE(warm.success);
  const std::uint64_t warm_misses = engine.cache().misses() - cold_misses;
  const std::uint64_t warm_hits = engine.cache().hits() - cold_hits;

  EXPECT_LT(warm_misses, cold_misses);  // strictly fewer raw estimates...
  EXPECT_EQ(warm_misses, 0u);           // ...in fact none: probes replay
  const std::uint64_t num_probes =
      warm.result.at("frontierStats").at("numProbes").as_uint();
  EXPECT_EQ(warm_hits, num_probes);
  EXPECT_EQ(cold.result.dump(), warm.result.dump());  // replay is exact
}

TEST(FrontierJob, StreamingObservesEveryProbeInOrder) {
  Registry registry = Registry::with_builtins();
  EstimateRequest request = EstimateRequest::parse(json::parse(kRealFrontierJob), registry);
  ASSERT_TRUE(request.ok());

  std::vector<std::size_t> indices;
  std::vector<json::Value> records;
  service::EngineOptions options;
  options.on_result = [&](std::size_t index, const json::Value& record) {
    indices.push_back(index);
    records.push_back(record);
  };
  EstimateResponse response = api::run(request, options, registry);
  ASSERT_TRUE(response.success);

  const std::uint64_t num_probes =
      response.result.at("frontierStats").at("numProbes").as_uint();
  ASSERT_EQ(indices.size(), num_probes);
  for (std::size_t i = 0; i < indices.size(); ++i) {
    EXPECT_EQ(indices[i], i);  // strictly in probe order
    EXPECT_NE(records[i].find("result"), nullptr);
  }
}

TEST(FrontierJob, RunJobWrapperAndV1UpgradeWork) {
  // No schemaVersion: the v1 shim upgrades in place and the frontier kind
  // still runs through the plain run_job entry point.
  json::Value job = json::parse(kRealFrontierJob);
  json::Object pruned;
  for (const auto& [k, v] : job.as_object()) {
    if (k != "schemaVersion") pruned.emplace_back(k, v);
  }
  json::Value result = run_job(json::Value(std::move(pruned)));
  EXPECT_NE(result.find("frontier"), nullptr);
  EXPECT_NE(result.find("frontierStats"), nullptr);
}

TEST(FrontierJob, LegacyFixedGridEstimateTypeStillWorks) {
  json::Value job = json::parse(kRealFrontierJob);
  json::Object pruned;
  for (const auto& [k, v] : job.as_object()) {
    if (k != "frontier") pruned.emplace_back(k, v);
  }
  json::Value legacy{std::move(pruned)};
  legacy.set("estimateType", json::Value("frontier"));
  json::Value result = run_job(legacy);
  EXPECT_NE(result.find("frontier"), nullptr);
  EXPECT_EQ(result.find("frontierStats"), nullptr);  // fixed grid has no stats
}

// ----------------------------------------------------------- validation ---

const Diagnostic* find_diag(const Diagnostics& diags, std::string_view code,
                            std::string_view path) {
  for (const Diagnostic& d : diags.entries()) {
    if (d.code == code && d.path == path) return &d;
  }
  return nullptr;
}

TEST(FrontierValidation, FrontierRequestRequiresTheSection) {
  Registry registry = Registry::with_builtins();
  FrontierRequest request = FrontierRequest::parse(
      json::parse(R"({"schemaVersion": 2, "logicalCounts": {"numQubits": 5}})"), registry);
  EXPECT_FALSE(request.ok());
  EXPECT_NE(find_diag(request.diagnostics, "required-missing", "/frontier"), nullptr);
}

TEST(FrontierValidation, ParseAcceptsAndEchoesOptions) {
  Registry registry = Registry::with_builtins();
  FrontierRequest request =
      FrontierRequest::parse(json::parse(kRealFrontierJob), registry);
  ASSERT_TRUE(request.ok()) << request.diagnostics.summary();
  EXPECT_EQ(request.options.max_probes, 16u);
  EXPECT_DOUBLE_EQ(request.options.qubit_tolerance, 0.02);
  FrontierResponse response = api::run_frontier(request, {}, registry);
  ASSERT_TRUE(response.success);
  EXPECT_EQ(response.to_json().at("schemaVersion").as_int(), 2);
}

TEST(FrontierValidation, MutuallyExclusiveWithBatchKindsAndLegacyType) {
  Registry registry = Registry::with_builtins();
  Diagnostics diags;
  api::validate_job(json::parse(R"({
    "schemaVersion": 2,
    "logicalCounts": {"numQubits": 5},
    "frontier": {},
    "items": [{}]
  })"), registry, diags);
  EXPECT_NE(find_diag(diags, "mutually-exclusive", "/frontier"), nullptr);

  Diagnostics type_diags;
  api::validate_job(json::parse(R"({
    "schemaVersion": 2,
    "logicalCounts": {"numQubits": 5},
    "frontier": {},
    "estimateType": "frontier"
  })"), registry, type_diags);
  EXPECT_NE(find_diag(type_diags, "mutually-exclusive", "/frontier"), nullptr);
}

TEST(FrontierValidation, SectionFieldsAreRangeChecked) {
  Registry registry = Registry::with_builtins();
  Diagnostics diags;
  api::validate_job(json::parse(R"({
    "schemaVersion": 2,
    "logicalCounts": {"numQubits": 5},
    "frontier": {"maxProbes": 1, "qubitTolerance": -0.5, "runtimeTolerance": "big",
                 "errorBudgets": [0.5, 2.0, "junk"], "typoKey": 1}
  })"), registry, diags);
  EXPECT_NE(find_diag(diags, "value-range", "/frontier/maxProbes"), nullptr);
  EXPECT_NE(find_diag(diags, "value-range", "/frontier/qubitTolerance"), nullptr);
  EXPECT_NE(find_diag(diags, "type-mismatch", "/frontier/runtimeTolerance"), nullptr);
  EXPECT_NE(find_diag(diags, "value-range", "/frontier/errorBudgets/1"), nullptr);
  EXPECT_NE(find_diag(diags, "type-mismatch", "/frontier/errorBudgets/2"), nullptr);
  EXPECT_NE(find_diag(diags, "unknown-key", "/frontier/typoKey"), nullptr);
}

TEST(FrontierValidation, BudgetLevelsMustFitTheProbeBudget) {
  // 3 requested objective levels but only 2 probes: whole levels would be
  // silently dropped, so both the validator and the parser reject it.
  Registry registry = Registry::with_builtins();
  Diagnostics diags;
  api::validate_job(json::parse(R"({
    "schemaVersion": 2,
    "logicalCounts": {"numQubits": 5},
    "frontier": {"maxProbes": 2, "errorBudgets": [0.1, 0.01, 0.001]}
  })"), registry, diags);
  EXPECT_NE(find_diag(diags, "value-range", "/frontier/errorBudgets"), nullptr);

  EXPECT_THROW(ExploreOptions::from_json(json::parse(
                   R"({"maxProbes": 2, "errorBudgets": [0.1, 0.01, 0.001]})")),
               Error);
}

TEST(FrontierValidation, SingleJobEntryPointRejectsFrontierDocuments) {
  EXPECT_THROW(run_single_job(json::parse(kRealFrontierJob)), Error);
}

}  // namespace
}  // namespace qre
