// Tests of the estimation server: the HTTP/1.1 message layer (in-memory
// byte streams, no sockets) and the full serving stack — router, shared
// engine, async job queue, metrics — exercised over real loopback TCP
// through the in-process server::Client.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "api/registry.hpp"
#include "common/failpoint.hpp"
#include "common/trace.hpp"
#include "core/job.hpp"
#include "json/json.hpp"
#include "server/client.hpp"
#include "server/http.hpp"
#include "server/job_queue.hpp"
#include "server/prometheus.hpp"
#include "server/router.hpp"
#include "server/server.hpp"
#include "tfactory/factory_cache.hpp"

namespace qre {
namespace {

using server::Client;
using server::ReadStatus;

// A small, fast job document (counts kept low so a test run stays quick).
const char* kSingleJob = R"({
  "schemaVersion": 2,
  "logicalCounts": {"numQubits": 10, "tCount": 1000},
  "qubitParams": {"name": "qubit_gate_ns_e3"},
  "errorBudget": 0.01
})";

const char* kBatchJob = R"({
  "schemaVersion": 2,
  "logicalCounts": {"numQubits": 10, "tCount": 1000},
  "qubitParams": {"name": "qubit_gate_ns_e3"},
  "items": [
    {"errorBudget": 0.01},
    {"errorBudget": 0.001},
    {"qubitParams": {"name": "qubit_maj_ns_e4"}},
    {"errorBudget": 0.01}
  ]
})";

// ------------------------------------------------------- message layer ---

/// A ByteSource replaying a fixed byte string (EOF afterwards).
server::ByteSource memory_source(std::string data) {
  auto stream = std::make_shared<std::pair<std::string, std::size_t>>(std::move(data), 0);
  return [stream](char* out, std::size_t len) -> long {
    const std::string& bytes = stream->first;
    std::size_t& pos = stream->second;
    if (pos >= bytes.size()) return 0;
    const std::size_t n = std::min(len, bytes.size() - pos);
    std::memcpy(out, bytes.data() + pos, n);
    pos += n;
    return static_cast<long>(n);
  };
}

TEST(Http, ParsesContentLengthRequest) {
  server::ByteSource src = memory_source(
      "POST /v2/estimate HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\n{...}");
  std::string buffer;
  server::Request request;
  ASSERT_EQ(read_request(src, buffer, request), ReadStatus::kOk);
  EXPECT_EQ(request.method, "POST");
  EXPECT_EQ(request.path(), "/v2/estimate");
  EXPECT_EQ(request.body, "{...");  // exactly Content-Length bytes
  EXPECT_TRUE(request.keep_alive());
}

TEST(Http, ParsesChunkedRequestBody) {
  server::ByteSource src = memory_source(
      "POST /v2/jobs HTTP/1.1\r\n"
      "Transfer-Encoding: chunked\r\n"
      "\r\n"
      "5\r\n{\"a\":\r\n"
      "2;ext=1\r\n1}\r\n"
      "0\r\n"
      "Trailer: ignored\r\n"
      "\r\n");
  std::string buffer;
  server::Request request;
  ASSERT_EQ(read_request(src, buffer, request), ReadStatus::kOk);
  EXPECT_EQ(request.body, "{\"a\":1}");
  EXPECT_TRUE(buffer.empty());  // trailers fully consumed
}

TEST(Http, KeepAliveLeavesPipelinedBytesInBuffer) {
  server::ByteSource src = memory_source(
      "GET /healthz HTTP/1.1\r\n\r\nGET /version HTTP/1.1\r\nConnection: close\r\n\r\n");
  std::string buffer;
  server::Request first;
  ASSERT_EQ(read_request(src, buffer, first), ReadStatus::kOk);
  EXPECT_EQ(first.target, "/healthz");
  server::Request second;
  ASSERT_EQ(read_request(src, buffer, second), ReadStatus::kOk);
  EXPECT_EQ(second.target, "/version");
  EXPECT_FALSE(second.keep_alive());
}

TEST(Http, OversizedBodyIsRejected) {
  server::ReadLimits limits;
  limits.max_body_bytes = 8;
  server::ByteSource src = memory_source(
      "POST / HTTP/1.1\r\nContent-Length: 9\r\n\r\n123456789");
  std::string buffer;
  server::Request request;
  EXPECT_EQ(read_request(src, buffer, request, limits), ReadStatus::kTooLarge);
}

TEST(Http, MalformedStartLineIsBadRequest) {
  std::string buffer;
  server::Request request;
  server::ByteSource src = memory_source("NONSENSE\r\n\r\n");
  EXPECT_EQ(read_request(src, buffer, request), ReadStatus::kBadRequest);
}

// ----------------------------------------------------------- full stack ---

/// One live loopback server per fixture instance: its own registry, shared
/// engine, job queue, and metrics, so tests cannot interfere.
class ServerFixture {
 public:
  explicit ServerFixture(server::ServiceOptions service_options = {})
      : registry_(api::Registry::with_builtins()),
        service_(registry_, service_options),
        router_(service_),
        server_(router_, make_server_options()) {
    server_.start();
    client_ = std::make_unique<Client>("127.0.0.1", server_.port());
  }

  static server::ServerOptions make_server_options() {
    server::ServerOptions o;
    o.port = 0;  // ephemeral
    o.num_workers = 2;
    o.receive_timeout_seconds = 5;
    return o;
  }

  server::Service& service() { return service_; }
  server::Server& http_server() { return server_; }
  Client& client() { return *client_; }
  api::Registry& registry() { return registry_; }

  /// Polls GET /v2/jobs/{id} until the job reaches a terminal state.
  json::Value await_job(std::uint64_t id) {
    const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(30);
    for (;;) {
      Client::Result r = client_->get("/v2/jobs/" + std::to_string(id));
      EXPECT_TRUE(r.ok) << r.error;
      json::Value doc = json::parse(r.body);
      const std::string& state = doc.at("status").as_string();
      if (state != "queued" && state != "running" && state != "cancelling") return doc;
      if (std::chrono::steady_clock::now() > deadline) {
        ADD_FAILURE() << "job " << id << " stuck in state " << state;
        return doc;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  }

 private:
  api::Registry registry_;
  server::Service service_;
  server::Router router_;
  server::Server server_;
  std::unique_ptr<Client> client_;
};

server::ServiceOptions frozen_queue_options(std::size_t backlog) {
  // num_workers == 0: submitted jobs never start, making cancel/backlog
  // behavior deterministic.
  server::ServiceOptions o;
  o.jobs.num_workers = 0;
  o.jobs.max_backlog = backlog;
  return o;
}

TEST(Server, SyncEstimateMatchesRunJobByteForByte) {
  ServerFixture fx;
  const json::Value job = json::parse(kSingleJob);
  Client::Result r = fx.client().post("/v2/estimate", kSingleJob);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.status, 200);
  json::Value envelope = json::parse(r.body);
  EXPECT_TRUE(envelope.at("success").as_bool());
  EXPECT_EQ(envelope.at("result").dump(), run_job(job).dump());
}

TEST(Server, SyncBatchEstimateMatchesRunJobByteForByte) {
  // A fresh fixture's shared cache is cold, so even batchStats must agree
  // with a private-cache serial run.
  ServerFixture fx;
  const json::Value job = json::parse(kBatchJob);
  Client::Result r = fx.client().post("/v2/estimate", kBatchJob);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.status, 200);
  json::Value envelope = json::parse(r.body);
  ASSERT_TRUE(envelope.at("success").as_bool());
  EXPECT_EQ(envelope.at("result").dump(), run_job(job).dump());
}

TEST(Server, RepeatedRequestsHitTheSharedCacheAndStayIdentical) {
  ServerFixture fx;
  Client::Result first = fx.client().post("/v2/estimate", kSingleJob);
  ASSERT_TRUE(first.ok) << first.error;
  const std::uint64_t misses_after_first = fx.service().engine().cache().misses();
  Client::Result second = fx.client().post("/v2/estimate", kSingleJob);
  ASSERT_TRUE(second.ok) << second.error;
  EXPECT_EQ(first.body, second.body);
  EXPECT_EQ(fx.service().engine().cache().misses(), misses_after_first);
  EXPECT_GE(fx.service().engine().cache().hits(), 1u);
}

TEST(Server, AsyncJobLifecycle) {
  ServerFixture fx;
  Client::Result submit = fx.client().post("/v2/jobs", kSingleJob);
  ASSERT_TRUE(submit.ok) << submit.error;
  EXPECT_EQ(submit.status, 202);
  json::Value ticket = json::parse(submit.body);
  const std::uint64_t id = ticket.at("id").as_uint();
  EXPECT_EQ(ticket.at("status").as_string(), "queued");

  json::Value done = fx.await_job(id);
  EXPECT_EQ(done.at("status").as_string(), "succeeded");
  const json::Value& response = done.at("response");
  EXPECT_TRUE(response.at("success").as_bool());
  // The async result is the same envelope the sync endpoint produces.
  Client::Result sync = fx.client().post("/v2/estimate", kSingleJob);
  ASSERT_TRUE(sync.ok) << sync.error;
  EXPECT_EQ(response.dump() + "\n", sync.body);

  // Finished jobs are not cancellable, unknown ids are 404.
  Client::Result cancel = fx.client().del("/v2/jobs/" + std::to_string(id));
  ASSERT_TRUE(cancel.ok) << cancel.error;
  EXPECT_EQ(cancel.status, 409);
  Client::Result unknown = fx.client().get("/v2/jobs/999999");
  ASSERT_TRUE(unknown.ok) << unknown.error;
  EXPECT_EQ(unknown.status, 404);
}

TEST(Server, QueuedJobsCancelDeterministically) {
  ServerFixture fx(frozen_queue_options(8));
  Client::Result submit = fx.client().post("/v2/jobs", kSingleJob);
  ASSERT_TRUE(submit.ok) << submit.error;
  const std::uint64_t id = json::parse(submit.body).at("id").as_uint();

  Client::Result before = fx.client().get("/v2/jobs/" + std::to_string(id));
  ASSERT_TRUE(before.ok) << before.error;
  EXPECT_EQ(json::parse(before.body).at("status").as_string(), "queued");

  Client::Result cancel = fx.client().del("/v2/jobs/" + std::to_string(id));
  ASSERT_TRUE(cancel.ok) << cancel.error;
  EXPECT_EQ(cancel.status, 200);
  EXPECT_EQ(json::parse(cancel.body).at("status").as_string(), "cancelled");

  Client::Result after = fx.client().get("/v2/jobs/" + std::to_string(id));
  ASSERT_TRUE(after.ok) << after.error;
  EXPECT_EQ(json::parse(after.body).at("status").as_string(), "cancelled");

  // Cancelling twice is a conflict, not a second cancellation.
  Client::Result again = fx.client().del("/v2/jobs/" + std::to_string(id));
  ASSERT_TRUE(again.ok) << again.error;
  EXPECT_EQ(again.status, 409);
}

TEST(Server, DeleteCancelsARunningJobWithinOneItem) {
  if (!failpoint::compiled_in()) GTEST_SKIP() << "built with QRE_FAILPOINTS=OFF";
  // Each item stalls 200 ms at the evaluate seam, so the 4-item batch runs
  // long enough to be caught mid-flight and cancellation (observed at the
  // next item boundary) still lands far inside the await budget.
  failpoint::configure("engine.evaluate.before=delay(200)");
  struct Disarm {
    ~Disarm() { failpoint::reset(); }
  } disarm;

  ServerFixture fx;
  Client::Result submit = fx.client().post("/v2/jobs", kBatchJob);
  ASSERT_TRUE(submit.ok) << submit.error;
  ASSERT_EQ(submit.status, 202);
  const std::uint64_t id = json::parse(submit.body).at("id").as_uint();

  // Catch the job while it is actually running.
  std::string state = "queued";
  for (int i = 0; i < 2000 && state == "queued"; ++i) {
    Client::Result poll = fx.client().get("/v2/jobs/" + std::to_string(id));
    ASSERT_TRUE(poll.ok) << poll.error;
    state = json::parse(poll.body).at("status").as_string();
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_EQ(state, "running");

  Client::Result cancel = fx.client().del("/v2/jobs/" + std::to_string(id));
  ASSERT_TRUE(cancel.ok) << cancel.error;
  EXPECT_EQ(cancel.status, 202);  // accepted: cancellation is cooperative
  EXPECT_EQ(json::parse(cancel.body).at("status").as_string(), "cancelling");

  // Terminal within the polling budget; partial results are discarded.
  const json::Value terminal = fx.await_job(id);
  EXPECT_EQ(terminal.at("status").as_string(), "cancelled");
  EXPECT_EQ(terminal.find("response"), nullptr);

  // The cancel surfaced in /metrics.
  Client::Result metrics = fx.client().get("/metrics");
  ASSERT_TRUE(metrics.ok) << metrics.error;
  EXPECT_GE(json::parse(metrics.body).at("server").at("cancelRequestsTotal").as_uint(), 1u);
}

TEST(Server, RequestDeadlineAnswers408WithDiagnostic) {
  server::ServiceOptions options;
  options.request_deadline_s = 1e-9;  // expired before the run begins
  ServerFixture fx(options);

  Client::Result r = fx.client().post("/v2/estimate", kSingleJob);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.status, 408);
  const json::Value body = json::parse(r.body);
  EXPECT_FALSE(body.at("success").as_bool());
  bool saw_code = false;
  for (const json::Value& d : body.at("diagnostics").as_array()) {
    if (d.at("code").as_string() == "deadline-exceeded") saw_code = true;
  }
  EXPECT_TRUE(saw_code);

  Client::Result metrics = fx.client().get("/metrics");
  ASSERT_TRUE(metrics.ok) << metrics.error;
  EXPECT_GE(json::parse(metrics.body).at("server").at("deadlineExceededTotal").as_uint(), 1u);
}

TEST(Server, FullBacklogReturns429) {
  ServerFixture fx(frozen_queue_options(2));
  EXPECT_EQ(fx.client().post("/v2/jobs", kSingleJob).status, 202);
  EXPECT_EQ(fx.client().post("/v2/jobs", kSingleJob).status, 202);
  Client::Result overflow = fx.client().post("/v2/jobs", kSingleJob);
  ASSERT_TRUE(overflow.ok) << overflow.error;
  EXPECT_EQ(overflow.status, 429);
  EXPECT_EQ(json::parse(overflow.body).at("error").at("code").as_string(), "backlog-full");
}

TEST(Server, NdjsonStreamsBatchItemsInOrder) {
  ServerFixture fx;
  Client::Result r = fx.client().post("/v2/estimate", kBatchJob,
                                      {{"Accept", "application/x-ndjson"}});
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.status, 200);
  const std::string* content_type = r.header("Content-Type");
  ASSERT_NE(content_type, nullptr);
  EXPECT_EQ(*content_type, "application/x-ndjson");

  std::vector<std::string> lines;
  std::size_t start = 0;
  while (start < r.body.size()) {
    const std::size_t eol = r.body.find('\n', start);
    if (eol == std::string::npos) break;
    lines.push_back(r.body.substr(start, eol - start));
    start = eol + 1;
  }
  ASSERT_EQ(lines.size(), 5u);  // 4 items + batchStats
  for (std::size_t i = 0; i < 4; ++i) {
    json::Value line = json::parse(lines[i]);
    EXPECT_EQ(line.at("item").as_uint(), i);
    EXPECT_TRUE(line.at("result").is_object());
  }
  json::Value last = json::parse(lines.back());
  EXPECT_NE(last.find("batchStats"), nullptr);
  EXPECT_EQ(last.at("batchStats").at("numItems").as_uint(), 4u);

  // The streamed items equal the non-streamed results, in the same order.
  json::Value plain = json::parse(fx.client().post("/v2/estimate", kBatchJob).body);
  const json::Array& results = plain.at("result").at("results").as_array();
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(json::parse(lines[i]).at("result").dump(), results[i].dump());
  }
}

TEST(Server, NdjsonStreamsFrontierProbesAndStats) {
  const char* kFrontierJob = R"({
    "schemaVersion": 2,
    "logicalCounts": {"numQubits": 10, "tCount": 100000},
    "qubitParams": {"name": "qubit_gate_ns_e3"},
    "errorBudget": 0.001,
    "frontier": {"maxProbes": 8, "qubitTolerance": 0.05, "runtimeTolerance": 0.05}
  })";
  ServerFixture fx;
  Client::Result r = fx.client().post("/v2/estimate", kFrontierJob,
                                      {{"Accept", "application/x-ndjson"}});
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.status, 200);

  std::vector<std::string> lines;
  std::size_t start = 0;
  while (start < r.body.size()) {
    const std::size_t eol = r.body.find('\n', start);
    if (eol == std::string::npos) break;
    lines.push_back(r.body.substr(start, eol - start));
    start = eol + 1;
  }
  ASSERT_GE(lines.size(), 3u);  // >= 2 probes + frontierStats
  for (std::size_t i = 0; i + 1 < lines.size(); ++i) {
    json::Value line = json::parse(lines[i]);
    EXPECT_EQ(line.at("item").as_uint(), i);  // deterministic probe order
    EXPECT_TRUE(line.at("result").at("result").is_object());
  }
  json::Value last = json::parse(lines.back());
  ASSERT_NE(last.find("frontierStats"), nullptr);
  EXPECT_EQ(last.at("frontierStats").at("numProbes").as_uint(), lines.size() - 1);

  // The plain (non-streamed) response is the same exploration: same stats,
  // and the shared engine answered the repeat entirely from cache.
  json::Value plain = json::parse(fx.client().post("/v2/estimate", kFrontierJob).body);
  ASSERT_TRUE(plain.at("success").as_bool());
  EXPECT_EQ(plain.at("result").at("frontierStats").dump(),
            last.at("frontierStats").dump());
}

TEST(Server, NdjsonFrontierFailureEndsStreamWithErrorLine) {
  // maxDuration 1 ns: every probe is infeasible, so the exploration itself
  // fails after probe-error lines have gone out. The committed 200 stream
  // must end with an explicit error line, never a clean-looking EOF.
  const char* kDoomedJob = R"({
    "schemaVersion": 2,
    "logicalCounts": {"numQubits": 10, "tCount": 100000},
    "qubitParams": {"name": "qubit_gate_ns_e3"},
    "constraints": {"maxDuration": 1},
    "frontier": {"maxProbes": 8}
  })";
  ServerFixture fx;
  Client::Result r = fx.client().post("/v2/estimate", kDoomedJob,
                                      {{"Accept", "application/x-ndjson"}});
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.status, 200);  // headers were committed before the failure
  const std::size_t last_start = r.body.rfind('\n', r.body.size() - 2);
  json::Value last = json::parse(
      r.body.substr(last_start == std::string::npos ? 0 : last_start + 1));
  ASSERT_NE(last.find("error"), nullptr);
  EXPECT_EQ(last.at("error").at("code").as_string(), "estimation-failed");
}

TEST(Server, MetricsCountersMoveWithTraffic) {
  ServerFixture fx;
  json::Value before = json::parse(fx.client().get("/metrics").body);
  ASSERT_TRUE(fx.client().post("/v2/estimate", kSingleJob).ok);
  ASSERT_EQ(fx.client().post("/v2/jobs", kSingleJob).status, 202);
  json::Value after = json::parse(fx.client().get("/metrics").body);

  EXPECT_GT(after.at("server").at("requestsTotal").as_uint(),
            before.at("server").at("requestsTotal").as_uint());
  EXPECT_GT(after.at("estimateCache").at("misses").as_uint(),
            before.at("estimateCache").at("misses").as_uint());
  EXPECT_GT(after.at("server").at("responsesByStatus").at("2xx").as_uint(),
            before.at("server").at("responsesByStatus").at("2xx").as_uint());

  // The histogram counted every request.
  std::uint64_t histogram_total = 0;
  for (const json::Value& count :
       after.at("server").at("latencyMs").at("counts").as_array()) {
    histogram_total += count.as_uint();
  }
  EXPECT_EQ(histogram_total, after.at("server").at("requestsTotal").as_uint());

  // Route labels are normalized patterns.
  EXPECT_NE(after.at("server").at("requestsByRoute").find("POST /v2/estimate"), nullptr);
  EXPECT_NE(after.at("jobs"), json::Value());
}

TEST(Server, ValidateEndpointDryRuns) {
  ServerFixture fx;
  Client::Result good = fx.client().post("/v2/validate", kSingleJob);
  ASSERT_TRUE(good.ok) << good.error;
  EXPECT_EQ(good.status, 200);
  EXPECT_TRUE(json::parse(good.body).at("valid").as_bool());

  Client::Result bad = fx.client().post("/v2/validate", R"({"schemaVersion": 2})");
  ASSERT_TRUE(bad.ok) << bad.error;
  EXPECT_EQ(bad.status, 422);
  json::Value verdict = json::parse(bad.body);
  EXPECT_FALSE(verdict.at("valid").as_bool());
  EXPECT_GE(verdict.at("diagnostics").as_array().size(), 1u);
  // Validation never runs the estimator.
  EXPECT_EQ(fx.service().engine().cache().misses(), 0u);
}

TEST(Server, ProfilesEndpointDumpsTheRegistry) {
  ServerFixture fx;
  Client::Result r = fx.client().get("/v2/profiles");
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.status, 200);
  EXPECT_EQ(r.body, fx.registry().to_json().dump() + "\n");
}

TEST(Server, HealthVersionAndErrorRoutes) {
  ServerFixture fx;
  EXPECT_EQ(json::parse(fx.client().get("/healthz").body).at("status").as_string(), "ok");

  json::Value version = json::parse(fx.client().get("/version").body);
  EXPECT_FALSE(version.at("version").as_string().empty());
  EXPECT_EQ(version.at("schemaVersion").as_int(), 2);

  EXPECT_EQ(fx.client().get("/no/such/endpoint").status, 404);

  Client::Result wrong_method = fx.client().get("/v2/estimate");
  EXPECT_EQ(wrong_method.status, 405);
  const std::string* allow = wrong_method.header("Allow");
  ASSERT_NE(allow, nullptr);
  EXPECT_EQ(*allow, "POST");

  EXPECT_EQ(fx.client().post("/v2/estimate", "this is not json").status, 400);
  EXPECT_EQ(fx.client().get("/v2/jobs/not-a-number").status, 400);

  // Invalid documents get the full diagnostic envelope with a 400.
  Client::Result invalid = fx.client().post("/v2/estimate", R"({"schemaVersion": 2})");
  EXPECT_EQ(invalid.status, 400);
  json::Value envelope = json::parse(invalid.body);
  EXPECT_FALSE(envelope.at("success").as_bool());
  EXPECT_GE(envelope.at("diagnostics").as_array().size(), 1u);
}

TEST(Server, RestartedServerAnswersFromTheStoreWithZeroRawEstimates) {
  char dir_pattern[] = "/tmp/qre_server_store.XXXXXX";
  ASSERT_NE(::mkdtemp(dir_pattern), nullptr);
  server::ServiceOptions options;
  options.cache_dir = dir_pattern;

  // First server lifecycle: estimate once, then shut down (the Service
  // destructor persists the store, like qre_serve's drain path).
  std::string cold_body;
  {
    ServerFixture fx(options);
    Client::Result r = fx.client().post("/v2/estimate", kSingleJob);
    ASSERT_TRUE(r.ok) << r.error;
    ASSERT_EQ(r.status, 200);
    cold_body = r.body;
  }

  // The T-factory cache is process-global; clearing it means any raw
  // estimation after the "restart" would have to repopulate it.
  FactoryCache::global().clear();

  // Second lifecycle over the same cache dir: the answer must come from
  // the store, byte-identically, with zero raw estimates.
  ServerFixture fx(options);
  Client::Result warm = fx.client().post("/v2/estimate", kSingleJob);
  ASSERT_TRUE(warm.ok) << warm.error;
  EXPECT_EQ(warm.body, cold_body);
  EXPECT_EQ(FactoryCache::global().misses(), 0u);
  ASSERT_NE(fx.service().store(), nullptr);
  EXPECT_EQ(fx.service().store()->hits(), 1u);

  // /metrics carries the store counters.
  Client::Result metrics = fx.client().get("/metrics");
  ASSERT_TRUE(metrics.ok);
  const json::Value metrics_doc = json::parse(metrics.body);
  const json::Value* block = metrics_doc.find("store");
  ASSERT_NE(block, nullptr);
  EXPECT_TRUE(block->at("enabled").as_bool());
  EXPECT_EQ(block->at("hits").as_int(), 1);
  EXPECT_GE(block->at("loaded").as_int(), 1);

  std::error_code ec;
  std::filesystem::remove_all(dir_pattern, ec);
}

// ------------------------------------------------------- observability ---

TEST(Server, RequestIdIsEchoedGeneratedAndInErrorDocuments) {
  ServerFixture fx;

  // A well-formed client id is echoed back verbatim.
  Client::Result echoed =
      fx.client().get("/healthz", {{"X-Request-Id", "client-id.42"}});
  ASSERT_TRUE(echoed.ok) << echoed.error;
  const std::string* id = echoed.header("X-Request-Id");
  ASSERT_NE(id, nullptr);
  EXPECT_EQ(*id, "client-id.42");

  // A malformed client id (spaces) is replaced by a server-assigned one.
  Client::Result replaced =
      fx.client().get("/healthz", {{"X-Request-Id", "not a valid id"}});
  id = replaced.header("X-Request-Id");
  ASSERT_NE(id, nullptr);
  EXPECT_EQ(id->compare(0, 4, "qre-"), 0);

  // Without a client id the server assigns one; consecutive ids differ.
  Client::Result first = fx.client().get("/healthz");
  Client::Result second = fx.client().get("/healthz");
  ASSERT_NE(first.header("X-Request-Id"), nullptr);
  ASSERT_NE(second.header("X-Request-Id"), nullptr);
  EXPECT_NE(*first.header("X-Request-Id"), *second.header("X-Request-Id"));

  // Error documents carry the same id the response header does, so a
  // client-side error report correlates with the server-side log line.
  Client::Result error =
      fx.client().post("/v2/estimate", "not json", {{"X-Request-Id", "err-7"}});
  EXPECT_EQ(error.status, 400);
  ASSERT_NE(error.header("X-Request-Id"), nullptr);
  EXPECT_EQ(*error.header("X-Request-Id"), "err-7");
  EXPECT_EQ(json::parse(error.body).at("requestId").as_string(), "err-7");
}

TEST(Server, PrometheusFormatRendersTheLiveDocument) {
  ServerFixture fx;
  ASSERT_EQ(fx.client().post("/v2/estimate", kSingleJob).status, 200);

  Client::Result r = fx.client().get("/metrics?format=prometheus");
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.status, 200);
  const std::string* content_type = r.header("Content-Type");
  ASSERT_NE(content_type, nullptr);
  EXPECT_EQ(*content_type, server::kPrometheusContentType);

  EXPECT_NE(r.body.find("# TYPE qre_requests_total counter"), std::string::npos);
  EXPECT_NE(r.body.find(R"(qre_requests_by_route_total{route="POST /v2/estimate"} 1)"),
            std::string::npos);
  EXPECT_NE(r.body.find(R"(qre_cache_misses_total{cache="estimate"} 1)"),
            std::string::npos);
  EXPECT_NE(r.body.find(R"(qre_request_latency_ms_bucket{le="+Inf"})"),
            std::string::npos);

  // The default format is unchanged: plain /metrics still returns JSON.
  Client::Result plain = fx.client().get("/metrics");
  EXPECT_TRUE(json::parse(plain.body).at("server").is_object());
}

TEST(Server, TraceEndpointGatesOnTracingAndExportsSpans) {
  struct TracerGuard {
    ~TracerGuard() {
      trace::disable();
      trace::clear();
    }
  } guard;
  trace::disable();

  ServerFixture fx;
  // Tracing off: the endpoint refuses with a structured 409.
  Client::Result off = fx.client().get("/v2/trace");
  EXPECT_EQ(off.status, 409);
  EXPECT_EQ(json::parse(off.body).at("error").at("code").as_string(),
            "tracing-disabled");

  trace::enable(4096);
  ASSERT_EQ(fx.client().post("/v2/estimate", kSingleJob).status, 200);
  Client::Result on = fx.client().get("/v2/trace");
  ASSERT_TRUE(on.ok) << on.error;
  EXPECT_EQ(on.status, 200);

  const json::Value events = json::parse(on.body);
  ASSERT_TRUE(events.is_array());
  bool saw_request_span = false;
  bool saw_api_run = false;
  for (const json::Value& event : events.as_array()) {
    const std::string& name = event.at("name").as_string();
    if (name == "server.request") saw_request_span = true;
    if (name == "api.run") saw_api_run = true;
  }
  EXPECT_TRUE(saw_request_span);
  EXPECT_TRUE(saw_api_run);
}

/// Sends raw bytes over a fresh loopback connection and returns whatever
/// the server wrote back (for requests Client cannot express).
std::string raw_round_trip(std::uint16_t port, const std::string& bytes) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return {};
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  std::string response;
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) == 0 &&
      ::send(fd, bytes.data(), bytes.size(), 0) ==
          static_cast<ssize_t>(bytes.size())) {
    char buf[4096];
    for (;;) {
      const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
      if (n <= 0) break;
      response.append(buf, static_cast<std::size_t>(n));
    }
  }
  ::close(fd);
  return response;
}

TEST(Server, PreRouterRejectsAreCountedLoggedAndCarryRequestIds) {
  char log_pattern[] = "/tmp/qre_access_log.XXXXXX";
  const int log_fd = ::mkstemp(log_pattern);
  ASSERT_GE(log_fd, 0);
  ::close(log_fd);

  // A stack with tiny body limits and the transport observability wired the
  // way qre_serve wires it: ServerOptions::metrics/access_log point at the
  // Service's instances.
  api::Registry registry = api::Registry::with_builtins();
  server::ServiceOptions service_options;
  service_options.access_log_path = log_pattern;
  server::Service service(registry, service_options);
  server::Router router(service);
  server::ServerOptions server_options;
  server_options.port = 0;
  server_options.num_workers = 2;
  server_options.limits.max_body_bytes = 64;
  server_options.metrics = &service.metrics();
  server_options.access_log = service.access_log();
  server::Server server(router, server_options);
  server.start();

  const std::string malformed = raw_round_trip(server.port(), "NONSENSE\r\n\r\n");
  EXPECT_NE(malformed.find("400"), std::string::npos);
  EXPECT_NE(malformed.find("X-Request-Id:"), std::string::npos);
  EXPECT_NE(malformed.find("bad-request"), std::string::npos);

  const std::string body(100, 'x');  // over the 64-byte limit
  const std::string oversized = raw_round_trip(
      server.port(), "POST /v2/estimate HTTP/1.1\r\nContent-Length: " +
                         std::to_string(body.size()) + "\r\n\r\n" + body);
  EXPECT_NE(oversized.find("413"), std::string::npos);
  EXPECT_NE(oversized.find("too-large"), std::string::npos);

  // Both rejects are visible in the metrics document under their reserved
  // route labels, alongside normally-dispatched traffic.
  Client client("127.0.0.1", server.port());
  const json::Value metrics = json::parse(client.get("/metrics").body);
  const json::Value& by_route = metrics.at("server").at("requestsByRoute");
  ASSERT_NE(by_route.find("(malformed)"), nullptr);
  EXPECT_EQ(by_route.at("(malformed)").as_uint(), 1u);
  ASSERT_NE(by_route.find("(too-large)"), nullptr);
  EXPECT_EQ(by_route.at("(too-large)").as_uint(), 1u);
  EXPECT_GE(metrics.at("server").at("responsesByStatus").at("4xx").as_uint(), 2u);

  server.stop();

  // The access log recorded every request — the two rejects under their
  // route labels and the /metrics read — as one JSON object per line.
  std::ifstream log(log_pattern);
  std::string line;
  int malformed_lines = 0;
  int too_large_lines = 0;
  int dispatched_lines = 0;
  while (std::getline(log, line)) {
    const json::Value entry = json::parse(line);
    EXPECT_FALSE(entry.at("id").as_string().empty());
    EXPECT_FALSE(entry.at("ts").as_string().empty());
    const std::string& route = entry.at("route").as_string();
    if (route == "(malformed)") {
      ++malformed_lines;
      EXPECT_EQ(entry.at("status").as_int(), 400);
    } else if (route == "(too-large)") {
      ++too_large_lines;
      EXPECT_EQ(entry.at("status").as_int(), 413);
    } else if (route == "GET /metrics") {
      ++dispatched_lines;
      EXPECT_EQ(entry.at("status").as_int(), 200);
    }
  }
  EXPECT_EQ(malformed_lines, 1);
  EXPECT_EQ(too_large_lines, 1);
  EXPECT_EQ(dispatched_lines, 1);

  std::error_code ec;
  std::filesystem::remove(log_pattern, ec);
}

TEST(Server, GracefulStopRefusesNewConnections) {
  auto fx = std::make_unique<ServerFixture>();
  ASSERT_TRUE(fx->client().get("/healthz").ok);
  const std::uint16_t port = fx->http_server().port();
  fx->http_server().stop();
  fx->http_server().stop();  // idempotent

  Client fresh("127.0.0.1", port);
  EXPECT_FALSE(fresh.get("/healthz").ok);
}

}  // namespace
}  // namespace qre
