// Direct tests of the Tape record/replay/adjoint machinery that the
// Karatsuba and modular multipliers depend on: gate inversion, lifetime
// symmetry (mid-region ancillas re-materialize during the adjoint),
// measurement rejection, and counting-only propagation.
#include <gtest/gtest.h>

#include "circuit/builder.hpp"
#include "circuit/tape.hpp"
#include "common/error.hpp"
#include "counter/logical_counter.hpp"
#include "sim/sparse_simulator.hpp"

namespace qre {
namespace {

TEST(Tape, GateInverses) {
  EXPECT_EQ(inverse_gate(Gate::kT), Gate::kTdg);
  EXPECT_EQ(inverse_gate(Gate::kTdg), Gate::kT);
  EXPECT_EQ(inverse_gate(Gate::kS), Gate::kSdg);
  EXPECT_EQ(inverse_gate(Gate::kSdg), Gate::kS);
  EXPECT_EQ(inverse_gate(Gate::kH), Gate::kH);
  EXPECT_EQ(inverse_gate(Gate::kCx), Gate::kCx);
  EXPECT_EQ(inverse_gate(Gate::kCcz), Gate::kCcz);
}

TEST(Tape, ForwardThenAdjointIsIdentity) {
  SparseSimulator sim(42);
  ProgramBuilder bld(sim);
  Register data = bld.alloc_register(4);
  bld.xor_constant(data, 0b1011);

  Tape tape(&bld.backend());
  Backend* real = bld.swap_backend(&tape);
  bool prev = bld.set_unitary_uncompute(true);
  // A measurement-free region with nested ancilla lifetimes.
  QubitId anc = bld.alloc();
  bld.compute_and(data[0], data[1], anc);
  bld.cx(anc, data[2]);
  bld.t(data[3]);
  bld.rz(0.37, data[0]);
  bld.s(data[1]);
  bld.uncompute_and(data[0], data[1], anc);  // unitary mode: second CCiX
  bld.free(anc);
  bld.set_unitary_uncompute(prev);
  bld.swap_backend(real);

  tape.replay(*real);
  tape.replay_adjoint(*real);
  EXPECT_EQ(sim.peek_classical(data), 0b1011u);
  EXPECT_NEAR(sim.norm(), 1.0, 1e-12);
  EXPECT_TRUE(tape.live_at_end().empty());
}

TEST(Tape, SurvivingWorkspaceReleasedByAdjoint) {
  SparseSimulator sim(7);
  ProgramBuilder bld(sim);
  Register data = bld.alloc_register(2);
  bld.xor_constant(data, 0b11);

  Tape tape(&bld.backend());
  Backend* real = bld.swap_backend(&tape);
  Register workspace = bld.alloc_register(2);  // survives the region
  bld.compute_and(data[0], data[1], workspace[0]);
  bld.cx(workspace[0], workspace[1]);
  bld.swap_backend(real);

  tape.replay(*real);
  EXPECT_NEAR(sim.probability_one(workspace[1]), 1.0, 1e-12);
  tape.replay_adjoint(*real);  // rewinds and releases the workspace
  const std::vector<QubitId> live = tape.live_at_end();  // returns by value
  ASSERT_EQ(live.size(), 2u);
  for (auto it = live.rbegin(); it != live.rend(); ++it) {
    bld.reclaim(*it);
  }
  EXPECT_EQ(bld.live_qubits(), 2u);  // only `data` remains
  EXPECT_EQ(sim.peek_classical(data), 0b11u);
}

TEST(Tape, MidRegionAncillaReusedAcrossLifetimes) {
  // Alloc/free/alloc of the same id inside a region must replay and rewind
  // cleanly (the adjoint re-allocates at the reversed release points).
  SparseSimulator sim(9);
  ProgramBuilder bld(sim);
  QubitId a = bld.alloc();
  bld.x(a);

  Tape tape(&bld.backend());
  Backend* real = bld.swap_backend(&tape);
  QubitId t1 = bld.alloc();
  bld.cx(a, t1);
  bld.cx(a, t1);  // back to |0>
  bld.free(t1);
  QubitId t2 = bld.alloc();  // may reuse t1's id
  bld.cx(a, t2);
  bld.cx(a, t2);
  bld.free(t2);
  bld.swap_backend(real);

  tape.replay(*real);
  tape.replay_adjoint(*real);
  EXPECT_TRUE(tape.live_at_end().empty());
  EXPECT_NEAR(sim.probability_one(a), 1.0, 1e-12);
}

TEST(Tape, RejectsMeasurementsAndReset) {
  Tape tape;
  EXPECT_THROW(tape.on_measure(Gate::kMz, 0), Error);
  EXPECT_THROW(tape.on_reset(0), Error);
  EXPECT_THROW(tape.on_measure_batch(Gate::kMz, 5), Error);
}

TEST(Tape, PropagatesCountingOnly) {
  LogicalCounter counter;
  Tape counting_tape(&counter);
  EXPECT_TRUE(counting_tape.counting_only());
  SparseSimulator sim;
  Tape executing_tape(&sim);
  EXPECT_FALSE(executing_tape.counting_only());
  Tape detached;
  EXPECT_FALSE(detached.counting_only());
}

TEST(Tape, BatchesReplayInBothDirections) {
  Tape tape;
  tape.on_gate_batch(Gate::kCcix, 100);
  tape.on_gate_batch(Gate::kT, 10);
  LogicalCounter counter;
  tape.replay(counter);
  EXPECT_EQ(counter.counts().ccix_count, 100u);
  EXPECT_EQ(counter.counts().t_count, 10u);
  tape.replay_adjoint(counter);
  // Adjoint emits inverse gates: Tdg still accumulates in t_count.
  EXPECT_EQ(counter.counts().ccix_count, 200u);
  EXPECT_EQ(counter.counts().t_count, 20u);
}

TEST(Tape, AdjointInvertsRotationsAndPhases) {
  // |+> with T then S: adjoint must undo exactly (checked via interference).
  SparseSimulator sim(3);
  ProgramBuilder bld(sim);
  QubitId q = bld.alloc();
  bld.h(q);

  Tape tape(&bld.backend());
  Backend* real = bld.swap_backend(&tape);
  bld.t(q);
  bld.s(q);
  bld.rz(1.234, q);
  bld.swap_backend(real);
  tape.replay(*real);
  tape.replay_adjoint(*real);

  bld.h(q);
  EXPECT_NEAR(sim.probability_one(q), 0.0, 1e-12);
}

}  // namespace
}  // namespace qre
