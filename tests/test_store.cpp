// Tests of the persistent estimate store: the on-disk format (round-trip,
// header validation, per-record checksums), atomic persistence, the
// offline merge/gc tooling, and the engine integration — a restarted
// engine must answer previously seen jobs from the store byte-identically
// with zero raw estimates.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "api/api.hpp"
#include "common/error.hpp"
#include "json/json.hpp"
#include "service/engine.hpp"
#include "store/estimate_store.hpp"
#include "store/format.hpp"
#include "store/store.hpp"
#include "tfactory/factory_cache.hpp"

namespace qre {
namespace {

using store::EstimateStore;
using store::Record;
using store::StoreReader;

/// A scratch directory removed at scope exit.
struct TempDir {
  TempDir() {
    char pattern[] = "/tmp/qre_store_test.XXXXXX";
    const char* made = ::mkdtemp(pattern);
    EXPECT_NE(made, nullptr);
    path = made;
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path, ec);
  }
  std::string file(const std::string& name) const { return path + "/" + name; }
  std::string path;
};

std::vector<Record> sample_records(std::size_t n) {
  std::vector<Record> records;
  for (std::size_t i = 0; i < n; ++i) {
    records.push_back({"{\"job\":" + std::to_string(i) + "}",
                       "{\"result\":" + std::to_string(i * 10) + "}"});
  }
  return records;
}

void write_raw(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

/// Rewrites the header CRC after a deliberate header edit, so the edit is
/// reached by the validator instead of tripping the checksum first.
void fix_header_crc(std::string& image) {
  const std::uint32_t crc = store::crc32(std::string_view(image.data(), 56));
  for (int i = 0; i < 4; ++i) {
    image[56 + i] = static_cast<char>((crc >> (8 * i)) & 0xFFu);
  }
}

// ----------------------------------------------------------- primitives ---

TEST(StoreFormat, Crc32MatchesReferenceVector) {
  // The canonical IEEE CRC-32 check value.
  EXPECT_EQ(store::crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(store::crc32(""), 0x00000000u);
}

TEST(StoreFormat, FingerprintIsStableAndSpreads) {
  EXPECT_EQ(store::fingerprint("abc"), store::fingerprint("abc"));
  EXPECT_NE(store::fingerprint("abc"), store::fingerprint("abd"));
  EXPECT_NE(store::fingerprint(""), store::fingerprint(std::string_view("\0", 1)));
}

TEST(StoreFormat, IndexSlotCountIsPowerOfTwoAtHalfLoad) {
  EXPECT_EQ(store::index_slot_count(0), 8u);
  EXPECT_EQ(store::index_slot_count(4), 8u);
  EXPECT_EQ(store::index_slot_count(5), 16u);
  EXPECT_EQ(store::index_slot_count(1000), 2048u);
}

// ------------------------------------------------------ file round-trip ---

TEST(StoreFile, RoundTripsRecordsAndLooksUpByKey) {
  TempDir dir;
  const std::string path = dir.file("s.qrestore");
  const std::vector<Record> records = sample_records(25);
  store::write_store_file(path, records);

  StoreReader reader(path);
  EXPECT_EQ(reader.record_count(), 25u);
  for (const Record& r : records) {
    auto found = reader.lookup(r.key);
    ASSERT_TRUE(found.has_value()) << r.key;
    EXPECT_EQ(*found, r.value);
  }
  EXPECT_FALSE(reader.lookup("{\"job\":999}").has_value());
  EXPECT_EQ(reader.corrupt_skipped(), 0u);
}

TEST(StoreFile, ForEachVisitsInsertionOrder) {
  TempDir dir;
  const std::string path = dir.file("s.qrestore");
  store::write_store_file(path, sample_records(10));

  StoreReader reader(path);
  std::vector<std::string> keys;
  EXPECT_EQ(reader.for_each([&](std::string_view key, std::string_view) {
    keys.emplace_back(key);
  }), 0u);
  ASSERT_EQ(keys.size(), 10u);
  for (std::size_t i = 0; i < keys.size(); ++i) {
    EXPECT_EQ(keys[i], "{\"job\":" + std::to_string(i) + "}");
  }
}

TEST(StoreFile, EmptyStoreRoundTrips) {
  TempDir dir;
  const std::string path = dir.file("empty.qrestore");
  store::write_store_file(path, {});
  StoreReader reader(path);
  EXPECT_EQ(reader.record_count(), 0u);
  EXPECT_FALSE(reader.lookup("anything").has_value());
}

// ------------------------------------------------------ header rejection ---

TEST(StoreFile, RejectsBadMagic) {
  TempDir dir;
  std::string image = store::encode_store(sample_records(3));
  image[0] = 'X';
  const std::string path = dir.file("bad_magic.qrestore");
  write_raw(path, image);
  EXPECT_THROW(StoreReader reader(path), Error);
}

TEST(StoreFile, RejectsWrongVersionCleanly) {
  TempDir dir;
  std::string image = store::encode_store(sample_records(3));
  image[8] = 99;  // version field, little-endian low byte
  fix_header_crc(image);
  const std::string path = dir.file("wrong_version.qrestore");
  write_raw(path, image);
  try {
    StoreReader reader(path);
    FAIL() << "wrong version must be rejected";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("version"), std::string::npos);
  }
}

TEST(StoreFile, RejectsTruncatedFile) {
  TempDir dir;
  std::string image = store::encode_store(sample_records(5));
  // Mid-payload truncation: header intact but file_size disagrees.
  write_raw(dir.file("truncated.qrestore"), image.substr(0, image.size() - 7));
  EXPECT_THROW(StoreReader r(dir.file("truncated.qrestore")), Error);
  // Shorter than the header itself.
  write_raw(dir.file("stub.qrestore"), image.substr(0, 20));
  EXPECT_THROW(StoreReader r(dir.file("stub.qrestore")), Error);
  // Header CRC flips reject too.
  std::string crc_flip = image;
  crc_flip[17] ^= 0x01;  // record-count field; CRC no longer matches
  write_raw(dir.file("crc.qrestore"), crc_flip);
  EXPECT_THROW(StoreReader r(dir.file("crc.qrestore")), Error);
}

TEST(StoreFile, SkipsRecordWithFlippedPayloadByte) {
  TempDir dir;
  const std::vector<Record> records = sample_records(4);
  std::string image = store::encode_store(records);
  const store::Header header = store::parse_header(image);
  // Flip one byte inside the first record's body: its checksum fails, the
  // other records stay readable, nothing crashes.
  image[header.payload_offset + store::kRecordHeaderSize + 2] ^= 0x40;
  const std::string path = dir.file("flipped.qrestore");
  write_raw(path, image);

  StoreReader reader(path);
  EXPECT_FALSE(reader.lookup(records[0].key).has_value());
  EXPECT_GE(reader.corrupt_skipped(), 1u);
  for (std::size_t i = 1; i < records.size(); ++i) {
    auto found = reader.lookup(records[i].key);
    ASSERT_TRUE(found.has_value());
    EXPECT_EQ(*found, records[i].value);
  }
  std::size_t visited = 0;
  EXPECT_EQ(reader.for_each([&](std::string_view, std::string_view) { ++visited; }), 1u);
  EXPECT_EQ(visited, 3u);
}

// ------------------------------------------------------- merge and gc ---

TEST(StoreFile, MergeIsLastWinsOnDuplicateKeys) {
  TempDir dir;
  store::write_store_file(dir.file("a"), {{"k1", "old"}, {"k2", "keep"}});
  store::write_store_file(dir.file("b"), {{"k1", "new"}, {"k3", "add"}});
  EXPECT_EQ(store::merge_store_files({dir.file("a"), dir.file("b")}, dir.file("m")), 3u);

  StoreReader reader(dir.file("m"));
  EXPECT_EQ(*reader.lookup("k1"), "new");
  EXPECT_EQ(*reader.lookup("k2"), "keep");
  EXPECT_EQ(*reader.lookup("k3"), "add");
}

TEST(StoreFile, GcDropsOldestRecordsToFitTheBound) {
  TempDir dir;
  const std::string path = dir.file("gc.qrestore");
  store::write_store_file(path, sample_records(50));
  const auto full_size = std::filesystem::file_size(path);

  const std::uint64_t bound = full_size / 2;
  const std::size_t kept = store::gc_store_file(path, path, bound);
  EXPECT_LT(kept, 50u);
  EXPECT_GT(kept, 0u);
  EXPECT_LE(std::filesystem::file_size(path), bound);

  // Newest records survive, oldest go first.
  StoreReader reader(path);
  EXPECT_TRUE(reader.lookup("{\"job\":49}").has_value());
  EXPECT_FALSE(reader.lookup("{\"job\":0}").has_value());
}

TEST(StoreFile, EnsureDirectoryCreatesNestedPaths) {
  TempDir dir;
  const std::string nested = dir.path + "/a/b/c";
  store::ensure_directory(nested);
  EXPECT_TRUE(std::filesystem::is_directory(nested));
  store::ensure_directory(nested);  // idempotent
  // A file in the way is an error, not a silent success.
  write_raw(dir.file("plain"), "x");
  EXPECT_THROW(store::ensure_directory(dir.file("plain")), Error);
}

// ------------------------------------------------- EstimateStore layer ---

TEST(EstimateStoreTest, PersistsAtomicallyAndReloads) {
  TempDir dir;
  EstimateStore first(dir.path);
  EXPECT_FALSE(first.load().file_found);  // cold start, no file yet
  first.record("{\"k\":1}", json::parse("{\"v\":1}"));
  first.record("{\"k\":2}", json::parse("{\"v\":2}"));
  EXPECT_TRUE(first.persist());
  EXPECT_FALSE(first.persist());  // clean: nothing new to write
  EXPECT_TRUE(first.persist(/*force=*/true));

  EstimateStore second(dir.path);
  const store::LoadResult loaded = second.load();
  EXPECT_TRUE(loaded.usable);
  EXPECT_EQ(loaded.records_loaded, 2u);
  EXPECT_EQ(loaded.records_skipped, 0u);
  auto fetched = second.fetch("{\"k\":1}");
  ASSERT_TRUE(fetched.has_value());
  EXPECT_EQ(fetched->dump(), "{\"v\":1}");
  EXPECT_EQ(second.hits(), 1u);
}

TEST(EstimateStoreTest, DamagedFileDegradesToColdStart) {
  TempDir dir;
  write_raw(dir.path + "/" + store::kStoreFileName, "not a store at all");
  EstimateStore s(dir.path);
  const store::LoadResult loaded = s.load();
  EXPECT_TRUE(loaded.file_found);
  EXPECT_FALSE(loaded.usable);
  EXPECT_FALSE(loaded.message.empty());
  EXPECT_EQ(s.records(), 0u);
  // The store still works — and the next persist repairs the file.
  s.record("{\"k\":1}", json::parse("{\"v\":1}"));
  EXPECT_TRUE(s.persist());
  StoreReader reader(s.path());
  EXPECT_EQ(reader.record_count(), 1u);
}

TEST(EstimateStoreTest, ErrorDocumentsAreNotPersisted) {
  TempDir dir;
  EstimateStore s(dir.path);
  s.record("{\"bad\":1}", json::parse("{\"error\":{\"code\":\"x\",\"message\":\"y\"}}"));
  s.record("{\"good\":1}", json::parse("{\"v\":1}"));
  EXPECT_EQ(s.records(), 1u);
  EXPECT_FALSE(s.fetch("{\"bad\":1}").has_value());
}

TEST(EstimateStoreTest, ConcurrentWritersNeverCorruptTheFile) {
  TempDir dir;
  // Two engines persisting into one directory: each snapshot is complete
  // and atomic, so whichever rename lands last, the file always parses.
  auto writer = [&dir](int id) {
    EstimateStore s(dir.path);
    for (int i = 0; i < 25; ++i) {
      s.record("{\"writer\":" + std::to_string(id) + ",\"i\":" + std::to_string(i) + "}",
               json::parse("{\"v\":" + std::to_string(i) + "}"));
      s.persist(/*force=*/true);
    }
  };
  std::thread a(writer, 1), b(writer, 2);
  a.join();
  b.join();

  StoreReader reader(dir.path + "/" + std::string(store::kStoreFileName));
  EXPECT_GE(reader.record_count(), 25u);
  std::size_t intact = 0;
  EXPECT_EQ(reader.for_each([&](std::string_view, std::string_view) { ++intact; }), 0u);
  EXPECT_EQ(intact, reader.record_count());
}

// ------------------------------------------------- engine integration ---

TEST(EstimateStoreTest, WarmEngineAnswersFromStoreWithZeroComputes) {
  TempDir dir;
  std::vector<json::Value> items;
  for (int i = 0; i < 6; ++i) {
    items.push_back(json::parse("{\"job\":" + std::to_string(i) + "}"));
  }
  std::atomic<int> computes{0};
  const service::JobRunner runner = [&computes](const json::Value& job) {
    computes.fetch_add(1);
    json::Object out;
    out.emplace_back("echo", job);
    return json::Value(std::move(out));
  };

  std::string cold_dump;
  {
    EstimateStore s(dir.path);
    s.load();
    service::Engine engine;
    engine.set_store(&s);
    json::Array results = service::run_batch(items, runner, engine.options());
    cold_dump = json::Value(results).dump();
    EXPECT_EQ(computes.load(), 6);
    EXPECT_TRUE(s.persist());
  }

  // "Restart": a fresh engine and a fresh store object over the same dir.
  computes.store(0);
  EstimateStore s(dir.path);
  EXPECT_EQ(s.load().records_loaded, 6u);
  service::Engine engine;
  engine.set_store(&s);
  json::Array results = service::run_batch(items, runner, engine.options());
  EXPECT_EQ(computes.load(), 0);  // zero raw computes after the restart
  EXPECT_EQ(s.hits(), 6u);
  EXPECT_EQ(json::Value(results).dump(), cold_dump);  // byte-identical
}

TEST(EstimateStoreTest, RealEstimateReplaysByteIdenticallyAcrossRestart) {
  TempDir dir;
  const json::Value job = json::parse(R"({
    "schemaVersion": 2,
    "logicalCounts": {"numQubits": 12, "tCount": 2000},
    "qubitParams": {"name": "qubit_gate_ns_e3"},
    "errorBudget": 0.01
  })");
  api::Registry registry = api::Registry::with_builtins();
  api::EstimateRequest request = api::EstimateRequest::parse(job, registry);
  ASSERT_TRUE(request.ok());

  std::string cold_dump;
  {
    EstimateStore s(dir.path);
    s.load();
    service::Engine engine;
    engine.set_store(&s);
    api::EstimateResponse cold = api::run(request, engine.options(), registry);
    ASSERT_TRUE(cold.success);
    cold_dump = cold.result.dump();
    s.persist();
  }

  // The factory cache is process-global, so clear it: if the warm run
  // were to estimate anything raw, it would have to repopulate it.
  FactoryCache::global().clear();
  EstimateStore s(dir.path);
  EXPECT_EQ(s.load().records_loaded, 1u);
  service::Engine engine;
  engine.set_store(&s);
  api::EstimateResponse warm = api::run(request, engine.options(), registry);
  ASSERT_TRUE(warm.success);
  EXPECT_EQ(warm.result.dump(), cold_dump);          // byte-identical replay
  EXPECT_EQ(s.hits(), 1u);
  EXPECT_EQ(FactoryCache::global().misses(), 0u);    // zero raw estimates
}

}  // namespace
}  // namespace qre
