// Cross-cutting property tests: randomized circuits checked for
// counter/QIR-round-trip agreement, randomized arithmetic compositions
// verified on the simulator, estimator determinism and scaling laws, and a
// formula fuzz against a reference evaluator.
#include <gtest/gtest.h>

#include <cmath>
#include <random>
#include <sstream>

#include "arith/adders.hpp"
#include "arith/multipliers.hpp"
#include "circuit/builder.hpp"
#include "core/estimator.hpp"
#include "counter/logical_counter.hpp"
#include "formula/formula.hpp"
#include "qir/qir_emitter.hpp"
#include "qir/qir_reader.hpp"
#include "report/report.hpp"
#include "sim/sparse_simulator.hpp"

namespace qre {
namespace {

/// Emits a pseudo-random (measurement-free) circuit onto a builder.
void random_circuit(ProgramBuilder& bld, std::mt19937_64& rng, std::size_t num_qubits,
                    std::size_t num_gates) {
  Register q = bld.alloc_register(num_qubits);
  std::uniform_int_distribution<std::size_t> pick(0, num_qubits - 1);
  std::uniform_int_distribution<int> kind(0, 9);
  std::uniform_real_distribution<double> angle(-3.0, 3.0);
  for (std::size_t i = 0; i < num_gates; ++i) {
    std::size_t a = pick(rng);
    std::size_t b = pick(rng);
    std::size_t c = pick(rng);
    if (b == a) b = (a + 1) % num_qubits;
    if (c == a || c == b) c = (std::max(a, b) + 1) % num_qubits;
    switch (kind(rng)) {
      case 0: bld.h(q[a]); break;
      case 1: bld.x(q[a]); break;
      case 2: bld.s(q[a]); break;
      case 3: bld.t(q[a]); break;
      case 4: bld.tdg(q[a]); break;
      case 5: bld.rz(angle(rng), q[a]); break;
      case 6: bld.cx(q[a], q[b]); break;
      case 7: bld.cz(q[a], q[b]); break;
      case 8: bld.ccz(q[a], q[b], q[c]); break;
      case 9: bld.ccix(q[a], q[b], q[c]); break;
    }
  }
}

class RandomCircuits : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomCircuits, QirRoundTripPreservesAllCounts) {
  std::mt19937_64 rng(GetParam());
  LogicalCounter direct;
  {
    ProgramBuilder bld(direct);
    std::mt19937_64 rng_copy = rng;
    random_circuit(bld, rng_copy, 8, 300);
  }
  qir::QirEmitter emitter;
  {
    ProgramBuilder bld(emitter);
    std::mt19937_64 rng_copy = rng;
    random_circuit(bld, rng_copy, 8, 300);
  }
  LogicalCounter via_qir;
  qir::replay(emitter.finish(), via_qir);
  EXPECT_EQ(via_qir.counts(), direct.counts());
}

TEST_P(RandomCircuits, SimulatorPreservesNorm) {
  std::mt19937_64 rng(GetParam() * 77 + 1);
  SparseSimulator sim(GetParam());
  ProgramBuilder bld(sim);
  random_circuit(bld, rng, 10, 120);
  EXPECT_NEAR(sim.norm(), 1.0, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomCircuits, ::testing::Values(1, 2, 3, 5, 8, 13));

TEST(Properties, ChainedArithmeticComposes) {
  // Two multiplier circuits into separate clean accumulators (the
  // multipliers' contract), combined with a general adder; then the first
  // product is subtracted back out, all against classical arithmetic.
  std::mt19937_64 rng(99);
  for (int round = 0; round < 6; ++round) {
    std::uint64_t k1 = rng() & 0x3F;
    std::uint64_t k2 = rng() & 0x3F;
    std::uint64_t y_val = rng() & 0x3F;
    SparseSimulator sim(rng());
    ProgramBuilder bld(sim);
    Register y = bld.alloc_register(6);
    Register p1 = bld.alloc_register(12);
    Register p2 = bld.alloc_register(13);  // headroom for the sum of products
    bld.xor_constant(y, y_val);
    long_mult_add_constant(bld, Constant{k1, 6}, y, p1);
    windowed_mult_add_constant(bld, Constant{k2, 6}, y, slice(p2, 0, 12), 2);
    add_into(bld, p1, p2);  // p2 = k1*y + k2*y, exact in 13 bits
    EXPECT_EQ(sim.peek_classical(p2), (k1 + k2) * y_val) << "k1=" << k1 << " k2=" << k2;
    sub_into(bld, p1, p2);  // back to k2*y
    EXPECT_EQ(sim.peek_classical(p2), k2 * y_val);
    EXPECT_EQ(sim.peek_classical(p1), k1 * y_val);
    EXPECT_EQ(bld.live_qubits(), 31u);
  }
}

TEST(Properties, EstimatorIsDeterministic) {
  LogicalCounts counts;
  counts.num_qubits = 64;
  counts.t_count = 123'456;
  counts.ccz_count = 7'890;
  counts.rotation_count = 111;
  counts.rotation_depth = 45;
  counts.measurement_count = 22'222;
  EstimationInput input = EstimationInput::for_profile(counts, "qubit_maj_ns_e4", 1e-4);
  json::Value first = report_to_json(estimate(input));
  for (int i = 0; i < 3; ++i) {
    json::Value again = report_to_json(estimate(input));
    EXPECT_TRUE(first == again);
  }
}

TEST(Properties, WorkloadScalingLaws) {
  // Doubling the T count can only increase depth-driven quantities.
  LogicalCounts base;
  base.num_qubits = 128;
  base.t_count = 100'000;
  base.measurement_count = 10'000;
  LogicalCounts doubled = base;
  doubled.t_count *= 2;
  ResourceEstimate small =
      estimate(EstimationInput::for_profile(base, "qubit_gate_ns_e3", 1e-3));
  ResourceEstimate large =
      estimate(EstimationInput::for_profile(doubled, "qubit_gate_ns_e3", 1e-3));
  EXPECT_GT(large.runtime_ns, small.runtime_ns);
  EXPECT_GE(large.logical_qubit.code_distance, small.logical_qubit.code_distance);
  EXPECT_GE(large.total_physical_qubits, small.total_physical_qubits);
  EXPECT_EQ(large.algorithmic_logical_qubits, small.algorithmic_logical_qubits);
}

TEST(Properties, ProfileErrorRateOrdering) {
  // Better physical error rates never need a larger code distance.
  LogicalCounts counts;
  counts.num_qubits = 100;
  counts.t_count = 1'000'000;
  counts.measurement_count = 100'000;
  ResourceEstimate e3 =
      estimate(EstimationInput::for_profile(counts, "qubit_gate_ns_e3", 1e-3));
  ResourceEstimate e4 =
      estimate(EstimationInput::for_profile(counts, "qubit_gate_ns_e4", 1e-3));
  EXPECT_LT(e4.logical_qubit.code_distance, e3.logical_qubit.code_distance);
  EXPECT_LT(e4.total_physical_qubits, e3.total_physical_qubits);
  ResourceEstimate maj4 =
      estimate(EstimationInput::for_profile(counts, "qubit_maj_ns_e4", 1e-3));
  ResourceEstimate maj6 =
      estimate(EstimationInput::for_profile(counts, "qubit_maj_ns_e6", 1e-3));
  EXPECT_LT(maj6.logical_qubit.code_distance, maj4.logical_qubit.code_distance);
}

TEST(Properties, FormulaFuzzAgainstReference) {
  // Random arithmetic over (+,-,*) with small integer operands, compared
  // against a direct recursive evaluation.
  std::mt19937_64 rng(2024);
  for (int round = 0; round < 200; ++round) {
    std::uniform_int_distribution<int> literal(1, 9);
    std::uniform_int_distribution<int> op(0, 2);
    std::ostringstream text;
    double reference = literal(rng);
    text << reference;
    double pending_product = reference;
    double total = 0.0;
    bool subtract = false;
    // Build left-to-right with correct precedence tracking.
    int terms = std::uniform_int_distribution<int>(1, 8)(rng);
    for (int i = 0; i < terms; ++i) {
      int o = op(rng);
      double v = literal(rng);
      if (o == 2) {
        text << " * " << v;
        pending_product *= v;
      } else {
        total += subtract ? -pending_product : pending_product;
        subtract = (o == 1);
        text << (subtract ? " - " : " + ") << v;
        pending_product = v;
      }
    }
    total += subtract ? -pending_product : pending_product;
    Formula f = Formula::parse(text.str());
    EXPECT_NEAR(f.evaluate({}), total, 1e-9) << text.str();
  }
}

TEST(Properties, ReportJsonAlwaysReparses) {
  for (const std::string& profile : QubitParams::preset_names()) {
    LogicalCounts counts;
    counts.num_qubits = 32;
    counts.t_count = 5'000;
    counts.ccix_count = 2'000;
    counts.rotation_count = 64;
    counts.rotation_depth = 16;
    counts.measurement_count = 7'000;
    ResourceEstimate e = estimate(EstimationInput::for_profile(counts, profile, 1e-3));
    json::Value dumped = json::parse(report_to_json(e).pretty());
    EXPECT_EQ(dumped.at("physicalCounts").at("physicalQubits").as_uint(),
              e.total_physical_qubits)
        << profile;
  }
}

}  // namespace
}  // namespace qre
