#include <gtest/gtest.h>

#include "circuit/builder.hpp"
#include "common/error.hpp"
#include "counter/logical_counter.hpp"
#include "qir/qir_emitter.hpp"
#include "qir/qir_reader.hpp"
#include "sim/sparse_simulator.hpp"

namespace qre {
namespace {

TEST(QirReader, ParsesBaseProfileCalls) {
  const char* text = R"(
; hand-written module
%Qubit = type opaque
%Result = type opaque
define void @main() #0 {
entry:
  call void @__quantum__qis__h__body(%Qubit* null)
  call void @__quantum__qis__cnot__body(%Qubit* null, %Qubit* inttoptr (i64 1 to %Qubit*))
  call void @__quantum__qis__t__body(%Qubit* inttoptr (i64 1 to %Qubit*))
  call void @__quantum__qis__t__adj(%Qubit* inttoptr (i64 1 to %Qubit*))
  call void @__quantum__qis__rz__body(double 2.5e-1, %Qubit* inttoptr (i64 0 to %Qubit*))
  call void @__quantum__qis__ccz__body(%Qubit* null, %Qubit* inttoptr (i64 1 to %Qubit*), %Qubit* inttoptr (i64 2 to %Qubit*))
  call void @__quantum__qis__mz__body(%Qubit* inttoptr (i64 2 to %Qubit*), %Result* inttoptr (i64 0 to %Result*))
  call void @__quantum__rt__result_record_output(%Result* inttoptr (i64 0 to %Result*), i8* null)
  ret void
}
)";
  LogicalCounter counter;
  qir::replay(text, counter);
  const LogicalCounts& c = counter.counts();
  EXPECT_EQ(c.num_qubits, 3u);
  EXPECT_EQ(c.t_count, 2u);
  EXPECT_EQ(c.rotation_count, 1u);
  EXPECT_EQ(c.rotation_depth, 1u);
  EXPECT_EQ(c.ccz_count, 1u);
  EXPECT_EQ(c.measurement_count, 1u);
  EXPECT_EQ(c.clifford_count, 2u);  // h + cnot
}

TEST(QirReader, MresetzAndAliases) {
  const char* text = R"(
  call void @__quantum__qis__cx__body(%Qubit* null, %Qubit* inttoptr (i64 1 to %Qubit*))
  call void @__quantum__qis__mresetz__body(%Qubit* null, %Result* null)
  call void @__quantum__qis__m__body(%Qubit* inttoptr (i64 1 to %Qubit*), %Result* inttoptr (i64 1 to %Result*))
)";
  LogicalCounter counter;
  qir::replay(text, counter);
  EXPECT_EQ(counter.counts().measurement_count, 2u);
  EXPECT_EQ(counter.counts().clifford_count, 1u);
}

TEST(QirReader, UnknownIntrinsicThrows) {
  const char* text = "call void @__quantum__qis__frobnicate__body(%Qubit* null)";
  LogicalCounter counter;
  try {
    qir::replay(text, counter);
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("frobnicate"), std::string::npos);
  }
}

TEST(QirReader, MalformedOperandThrows) {
  LogicalCounter counter;
  EXPECT_THROW(qir::replay("call void @__quantum__qis__h__body(%Qubit* inttoptr (i64 x))",
                           counter),
               Error);
  EXPECT_THROW(qir::replay("call void @__quantum__qis__h__body(%Qubit* null", counter), Error);
  EXPECT_THROW(qir::replay("call void @__quantum__qis__cnot__body(%Qubit* null)", counter),
               Error);
}

TEST(QirReader, MissingFileThrows) {
  LogicalCounter counter;
  EXPECT_THROW(qir::replay_file("/does/not/exist.ll", counter), Error);
}

void run_reference_program(Backend& backend) {
  ProgramBuilder bld(backend);
  Register q = bld.alloc_register(4);
  bld.h(q[0]);
  bld.cx(q[0], q[1]);
  bld.t(q[1]);
  bld.tdg(q[2]);
  bld.s(q[2]);
  bld.sdg(q[3]);
  bld.rz(0.125, q[3]);
  bld.rx(-0.5, q[0]);
  bld.ccz(q[0], q[1], q[2]);
  bld.ccix(q[1], q[2], q[3]);
  bld.swap(q[0], q[3]);
  bld.mz(q[0]);
  bld.mx(q[1]);
  bld.free_register(q);
}

TEST(QirRoundTrip, EmitThenParsePreservesCounts) {
  // Counts from tracing directly...
  LogicalCounter direct;
  run_reference_program(direct);

  // ...equal counts from emitting QIR and replaying it.
  qir::QirEmitter emitter;
  run_reference_program(emitter);
  std::string text = emitter.finish();
  LogicalCounter via_qir;
  qir::replay(text, via_qir);

  EXPECT_EQ(via_qir.counts().num_qubits, direct.counts().num_qubits);
  EXPECT_EQ(via_qir.counts().t_count, direct.counts().t_count);
  EXPECT_EQ(via_qir.counts().rotation_count, direct.counts().rotation_count);
  EXPECT_EQ(via_qir.counts().rotation_depth, direct.counts().rotation_depth);
  EXPECT_EQ(via_qir.counts().ccz_count, direct.counts().ccz_count);
  EXPECT_EQ(via_qir.counts().ccix_count, direct.counts().ccix_count);
  EXPECT_EQ(via_qir.counts().measurement_count, direct.counts().measurement_count);
  EXPECT_EQ(via_qir.counts().clifford_count, direct.counts().clifford_count);
}

TEST(QirRoundTrip, EmittedModuleIsWellFormed) {
  qir::QirEmitter emitter("reference");
  run_reference_program(emitter);
  std::string text = emitter.finish();
  EXPECT_NE(text.find("define void @reference()"), std::string::npos);
  EXPECT_NE(text.find("%Qubit = type opaque"), std::string::npos);
  EXPECT_NE(text.find("declare void @__quantum__qis__h__body(%Qubit*)"), std::string::npos);
  EXPECT_NE(text.find("\"required_num_qubits\"=\"4\""), std::string::npos);
  EXPECT_NE(text.find("\"required_num_results\"=\"2\""), std::string::npos);
  EXPECT_NE(text.find("ret void"), std::string::npos);
}

TEST(QirRoundTrip, DoubleRoundTripIsStable) {
  qir::QirEmitter first;
  run_reference_program(first);
  std::string text1 = first.finish();

  qir::QirEmitter second;
  qir::replay(text1, second);
  std::string text2 = second.finish();

  LogicalCounter c1;
  qir::replay(text1, c1);
  LogicalCounter c2;
  qir::replay(text2, c2);
  EXPECT_EQ(c1.counts().t_count, c2.counts().t_count);
  EXPECT_EQ(c1.counts().rotation_count, c2.counts().rotation_count);
  EXPECT_EQ(c1.counts().measurement_count, c2.counts().measurement_count);
}

TEST(QirReader, ReplaysOntoSimulator) {
  const char* text = R"(
  call void @__quantum__qis__x__body(%Qubit* null)
  call void @__quantum__qis__cnot__body(%Qubit* null, %Qubit* inttoptr (i64 1 to %Qubit*))
  call void @__quantum__qis__ccx__body(%Qubit* null, %Qubit* inttoptr (i64 1 to %Qubit*), %Qubit* inttoptr (i64 2 to %Qubit*))
  call void @__quantum__qis__x__body(%Qubit* null)
  call void @__quantum__qis__x__body(%Qubit* inttoptr (i64 1 to %Qubit*))
  call void @__quantum__qis__x__body(%Qubit* inttoptr (i64 2 to %Qubit*))
)";
  // |000> -> X,CX,CCX cascade -> |111> -> X all -> |000>: releasable.
  SparseSimulator sim;
  EXPECT_NO_THROW(qir::replay(text, sim));
}

}  // namespace
}  // namespace qre
