#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "tfactory/tfactory.hpp"

namespace qre {
namespace {

TEST(DistillationUnit, DefaultsAreConsistent) {
  DistillationUnit rm = DistillationUnit::rm_prep_15_to_1();
  EXPECT_EQ(rm.num_input_ts, 15u);
  EXPECT_EQ(rm.num_output_ts, 1u);
  EXPECT_TRUE(rm.allow_physical);
  EXPECT_TRUE(rm.allow_logical);
  EXPECT_NO_THROW(rm.validate());

  DistillationUnit se = DistillationUnit::space_efficient_15_to_1();
  EXPECT_FALSE(se.allow_physical);
  EXPECT_TRUE(se.allow_logical);
  EXPECT_EQ(se.logical_qubits_at_logical, 20u);
  EXPECT_EQ(se.duration_in_logical_cycles, 13u);
  EXPECT_EQ(DistillationUnit::default_units().size(), 2u);
}

TEST(DistillationUnit, FormulaEvaluation) {
  DistillationUnit rm = DistillationUnit::rm_prep_15_to_1();
  DistillationOutcome out = evaluate_unit(rm, 0.05, 1e-4, 1e-4);
  EXPECT_NEAR(out.failure_probability, 15 * 0.05 + 356e-4, 1e-12);
  EXPECT_NEAR(out.output_error_rate, 35 * std::pow(0.05, 3) + 7.1e-4, 1e-12);
  // Cubic suppression: much better input -> far better output.
  DistillationOutcome better = evaluate_unit(rm, 1e-4, 1e-7, 1e-7);
  EXPECT_LT(better.output_error_rate, 1e-6);
}

TEST(DistillationUnit, JsonRoundTrip) {
  DistillationUnit rm = DistillationUnit::rm_prep_15_to_1();
  DistillationUnit back = DistillationUnit::from_json(rm.to_json());
  EXPECT_EQ(back.name, rm.name);
  EXPECT_EQ(back.num_input_ts, 15u);
  EXPECT_TRUE(back.allow_physical);
  EXPECT_TRUE(back.allow_logical);
  EXPECT_EQ(back.logical_qubits_at_logical, rm.logical_qubits_at_logical);
  DistillationOutcome a = evaluate_unit(rm, 0.01, 1e-5, 1e-5);
  DistillationOutcome b = evaluate_unit(back, 0.01, 1e-5, 1e-5);
  EXPECT_DOUBLE_EQ(a.output_error_rate, b.output_error_rate);
}

TEST(DistillationUnit, JsonRejectsOrWarnsOnUnknownKeys) {
  json::Value v = DistillationUnit::rm_prep_15_to_1().to_json();
  v.set("numInputT", 7);  // typo for "numInputTs"
  EXPECT_THROW(DistillationUnit::from_json(v), Error);
  Diagnostics diags;
  DistillationUnit u = DistillationUnit::from_json(v, &diags);
  EXPECT_EQ(u.num_input_ts, 15u);  // typo did not override
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags.entries()[0].code, "unknown-key");
}

TEST(DistillationUnit, ValidationRejectsNonsense) {
  DistillationUnit u = DistillationUnit::rm_prep_15_to_1();
  u.num_output_ts = 20;  // outputs more than inputs
  EXPECT_THROW(u.validate(), Error);
  u = DistillationUnit::rm_prep_15_to_1();
  u.allow_physical = false;
  u.allow_logical = false;
  EXPECT_THROW(u.validate(), Error);
}

TEST(TFactory, NoDistillationWhenRawTStatesSuffice) {
  QubitParams q = QubitParams::gate_us_e3();  // T error 1e-6
  QecScheme s = QecScheme::surface_code_gate_based();
  auto f = design_tfactory(1e-5, q, s, DistillationUnit::default_units());
  ASSERT_TRUE(f.has_value());
  EXPECT_TRUE(f->no_distillation());
  EXPECT_EQ(f->physical_qubits, 0u);
  EXPECT_DOUBLE_EQ(f->duration_ns, 0.0);
  EXPECT_DOUBLE_EQ(f->output_error_rate, 1e-6);
}

TEST(TFactory, MajoranaPipelineReachesTightTargets) {
  QubitParams q = QubitParams::maj_ns_e4();  // raw T error 5e-2
  QecScheme s = QecScheme::floquet_code();
  auto f = design_tfactory(1.5e-11, q, s, DistillationUnit::default_units());
  ASSERT_TRUE(f.has_value());
  EXPECT_FALSE(f->no_distillation());
  EXPECT_GE(f->rounds.size(), 2u);
  EXPECT_LE(f->rounds.size(), 3u);
  EXPECT_LE(f->output_error_rate, 1.5e-11);
  EXPECT_GT(f->physical_qubits, 100u);
  EXPECT_GT(f->duration_ns, 0.0);
  EXPECT_GT(f->tstates_per_invocation, 0.5);
  EXPECT_DOUBLE_EQ(f->input_t_error_rate, 0.05);
}

TEST(TFactory, RoundsFeedEachOther) {
  QubitParams q = QubitParams::maj_ns_e4();
  QecScheme s = QecScheme::floquet_code();
  auto f = design_tfactory(1e-12, q, s, DistillationUnit::default_units());
  ASSERT_TRUE(f.has_value());
  const auto& rounds = f->rounds;
  for (std::size_t r = 0; r + 1 < rounds.size(); ++r) {
    double produced = static_cast<double>(rounds[r].num_units) *
                      (1.0 - rounds[r].failure_probability);
    double needed = static_cast<double>(rounds[r + 1].num_units) * 15.0;
    EXPECT_GE(produced + 1e-9, needed) << "round " << r;
    // Error rates improve monotonically along the pipeline.
    EXPECT_LT(rounds[r + 1].output_error_rate, rounds[r].output_error_rate);
  }
  // Logical rounds use non-decreasing code distances.
  std::uint64_t previous = 0;
  for (const DistillationRound& r : rounds) {
    if (!r.physical) {
      EXPECT_GE(r.code_distance, previous);
      previous = r.code_distance;
    }
  }
  EXPECT_EQ(rounds.back().num_units, 1u);
}

TEST(TFactory, FootprintIsMaxAndDurationIsSum) {
  QubitParams q = QubitParams::maj_ns_e4();
  QecScheme s = QecScheme::floquet_code();
  auto f = design_tfactory(1e-12, q, s, DistillationUnit::default_units());
  ASSERT_TRUE(f.has_value());
  std::uint64_t max_qubits = 0;
  double total_duration = 0.0;
  for (const DistillationRound& r : f->rounds) {
    max_qubits = std::max(max_qubits, r.physical_qubits);
    total_duration += r.duration_ns;
    EXPECT_EQ(r.physical_qubits, r.num_units * r.physical_qubits_per_unit);
  }
  EXPECT_EQ(f->physical_qubits, max_qubits);
  EXPECT_DOUBLE_EQ(f->duration_ns, total_duration);
}

TEST(TFactory, TighterTargetsCostMore) {
  QubitParams q = QubitParams::maj_ns_e4();
  QecScheme s = QecScheme::floquet_code();
  double previous_volume = 0.0;
  for (double target : {1e-6, 1e-9, 1e-12, 1e-15}) {
    auto f = design_tfactory(target, q, s, DistillationUnit::default_units());
    ASSERT_TRUE(f.has_value()) << target;
    EXPECT_GE(f->normalized_volume(), previous_volume) << target;
    previous_volume = f->normalized_volume();
  }
}

TEST(TFactory, InfeasibleWithinRoundLimit) {
  QubitParams q = QubitParams::maj_ns_e4();
  QecScheme s = QecScheme::floquet_code();
  TFactoryOptions opts;
  opts.max_rounds = 1;
  auto f = design_tfactory(1e-9, q, s, DistillationUnit::default_units(), opts);
  EXPECT_FALSE(f.has_value());
}

TEST(TFactory, GateBasedPipelines) {
  QubitParams q = QubitParams::gate_ns_e3();  // raw T error 1e-3
  QecScheme s = QecScheme::surface_code_gate_based();
  auto f = design_tfactory(1e-10, q, s, DistillationUnit::default_units());
  ASSERT_TRUE(f.has_value());
  EXPECT_LE(f->output_error_rate, 1e-10);
  EXPECT_FALSE(f->no_distillation());
}

TEST(TFactory, ObjectivesChangeTheWinner) {
  QubitParams q = QubitParams::maj_ns_e4();
  QecScheme s = QecScheme::floquet_code();
  TFactoryOptions min_qubits;
  min_qubits.objective = TFactoryOptions::Objective::kMinQubits;
  TFactoryOptions min_duration;
  min_duration.objective = TFactoryOptions::Objective::kMinDuration;
  auto fq = design_tfactory(1e-12, q, s, DistillationUnit::default_units(), min_qubits);
  auto fd = design_tfactory(1e-12, q, s, DistillationUnit::default_units(), min_duration);
  ASSERT_TRUE(fq.has_value());
  ASSERT_TRUE(fd.has_value());
  EXPECT_LE(fq->physical_qubits, fd->physical_qubits);
  EXPECT_LE(fd->duration_ns, fq->duration_ns);
}

TEST(TFactory, ParetoFrontierIsMonotone) {
  QubitParams q = QubitParams::maj_ns_e4();
  QecScheme s = QecScheme::floquet_code();
  std::vector<TFactory> frontier =
      tfactory_pareto_frontier(1e-12, q, s, DistillationUnit::default_units());
  ASSERT_GE(frontier.size(), 2u);
  for (std::size_t i = 1; i < frontier.size(); ++i) {
    EXPECT_GT(frontier[i].physical_qubits, frontier[i - 1].physical_qubits);
    EXPECT_LT(frontier[i].duration_ns, frontier[i - 1].duration_ns);
  }
}

TEST(TFactory, CustomUnitFromJson) {
  json::Value v = json::parse(R"({
    "name": "5-to-1 toy",
    "numInputTs": 5,
    "numOutputTs": 1,
    "failureProbabilityFormula": "5 * inputErrorRate",
    "outputErrorRateFormula": "10 * inputErrorRate ^ 2 + cliffordErrorRate",
    "logicalQubitSpecification": {"numUnitQubits": 8, "durationInLogicalCycles": 6}
  })");
  DistillationUnit unit = DistillationUnit::from_json(v);
  QubitParams q = QubitParams::maj_ns_e6();  // raw T error 1e-2
  QecScheme s = QecScheme::floquet_code();
  auto f = design_tfactory(1e-7, q, s, {unit});
  ASSERT_TRUE(f.has_value());
  for (const DistillationRound& r : f->rounds) {
    EXPECT_EQ(r.unit_name, "5-to-1 toy");
    EXPECT_FALSE(r.physical);  // the unit has no physical specification
  }
}

TEST(TFactory, JsonReport) {
  QubitParams q = QubitParams::maj_ns_e4();
  QecScheme s = QecScheme::floquet_code();
  auto f = design_tfactory(1e-12, q, s, DistillationUnit::default_units());
  ASSERT_TRUE(f.has_value());
  json::Value j = f->to_json();
  EXPECT_EQ(j.at("numRounds").as_uint(), f->rounds.size());
  EXPECT_EQ(j.at("codeDistancePerRound").as_array().size(), f->rounds.size());
  EXPECT_DOUBLE_EQ(j.at("runtime").as_double(), f->duration_ns);
}

TEST(TFactory, InvalidInputsRejected) {
  QubitParams q = QubitParams::maj_ns_e4();
  QecScheme s = QecScheme::floquet_code();
  EXPECT_THROW(design_tfactory(0.0, q, s, DistillationUnit::default_units()), Error);
  EXPECT_THROW(design_tfactory(1e-12, q, s, {}), Error);
}

}  // namespace
}  // namespace qre
