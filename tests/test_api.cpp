// Tests of the v2 API layer (src/api/): the profile registry and profile
// packs, the versioned job schema with its multi-error validation pass, the
// v1 -> v2 upgrade shim, and the request/response façade with structured
// per-item diagnostics.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "api/api.hpp"
#include "common/error.hpp"
#include "core/job.hpp"

#ifndef QRE_SOURCE_DIR
#define QRE_SOURCE_DIR "."
#endif

namespace qre {
namespace {

using api::EstimateRequest;
using api::EstimateResponse;
using api::Registry;

const Diagnostic* find_diagnostic(const Diagnostics& diags, std::string_view code,
                                  std::string_view path) {
  for (const Diagnostic& d : diags.entries()) {
    if (d.code == code && d.path == path) return &d;
  }
  return nullptr;
}

// ------------------------------------------------------------ registry ---

TEST(Registry, BuiltinsAreSeeded) {
  Registry r = Registry::with_builtins();
  EXPECT_EQ(r.qubit_names().size(), 6u);
  ASSERT_NE(r.find_qubit("qubit_maj_ns_e6"), nullptr);
  EXPECT_EQ(r.find_qubit("qubit_maj_ns_e6")->instruction_set, InstructionSet::kMajorana);
  EXPECT_EQ(r.find_qubit("no_such_profile"), nullptr);

  // surface_code exists for both instruction sets, with different thresholds.
  const QecScheme* gate = r.find_qec("surface_code", InstructionSet::kGateBased);
  const QecScheme* maj = r.find_qec("surface_code", InstructionSet::kMajorana);
  ASSERT_NE(gate, nullptr);
  ASSERT_NE(maj, nullptr);
  EXPECT_DOUBLE_EQ(gate->threshold(), 0.01);
  EXPECT_DOUBLE_EQ(maj->threshold(), 0.0015);
  // floquet_code is Majorana-only.
  EXPECT_EQ(r.find_qec("floquet_code", InstructionSet::kGateBased), nullptr);
  EXPECT_NE(r.find_qec("floquet_code", InstructionSet::kMajorana), nullptr);

  EXPECT_EQ(r.distillation_names().size(), 2u);
  EXPECT_NE(r.find_distillation("15-to-1 RM prep"), nullptr);
}

TEST(Registry, RegisterLookupAndOverride) {
  Registry r = Registry::with_builtins();
  QubitParams custom = QubitParams::gate_ns_e3();
  custom.name = "lab_device";
  custom.t_gate_error_rate = 5e-4;
  r.register_qubit(custom);
  ASSERT_NE(r.find_qubit("lab_device"), nullptr);
  EXPECT_DOUBLE_EQ(r.find_qubit("lab_device")->t_gate_error_rate, 5e-4);
  EXPECT_EQ(r.qubit_names().size(), 7u);

  // Same name again: last registration wins, no duplicate entry.
  custom.t_gate_error_rate = 1e-4;
  r.register_qubit(custom);
  EXPECT_EQ(r.qubit_names().size(), 7u);
  EXPECT_DOUBLE_EQ(r.find_qubit("lab_device")->t_gate_error_rate, 1e-4);

  // Invalid profiles are rejected at registration time.
  QubitParams broken = QubitParams::gate_ns_e3();
  broken.name = "broken";
  broken.t_gate_error_rate = 0.0;
  EXPECT_THROW(r.register_qubit(broken), Error);
}

TEST(Registry, ProfilePackRoundTrip) {
  Registry r = Registry::with_builtins();
  Diagnostics diags;
  json::Value pack = json::parse(R"({
    "schemaVersion": 2,
    "qubitParams": [
      {"name": "fast_transmon", "base": "qubit_gate_ns_e3",
       "oneQubitGateTime": 20, "twoQubitGateTime": 20}
    ],
    "qecSchemes": [
      {"name": "dense_surface", "instructionSet": "GateBased",
       "base": "surface_code", "crossingPrefactor": 0.05}
    ],
    "distillationUnits": [
      {"name": "8-to-2", "numInputTs": 8, "numOutputTs": 2,
       "failureProbabilityFormula": "8 * inputErrorRate",
       "outputErrorRateFormula": "16 * inputErrorRate ^ 2",
       "logicalQubitSpecification": {"numUnitQubits": 12, "durationInLogicalCycles": 9}}
    ]
  })");
  r.load_profile_pack(pack, diags);
  EXPECT_FALSE(diags.has_errors()) << diags.summary();

  const QubitParams* q = r.find_qubit("fast_transmon");
  ASSERT_NE(q, nullptr);
  EXPECT_DOUBLE_EQ(q->one_qubit_gate_time_ns, 20.0);
  EXPECT_DOUBLE_EQ(q->one_qubit_measurement_time_ns, 100.0);  // inherited from base
  const QecScheme* s = r.find_qec("dense_surface", InstructionSet::kGateBased);
  ASSERT_NE(s, nullptr);
  EXPECT_DOUBLE_EQ(s->crossing_prefactor(), 0.05);
  EXPECT_DOUBLE_EQ(s->threshold(), 0.01);  // inherited from surface_code
  ASSERT_NE(r.find_distillation("8-to-2"), nullptr);
  EXPECT_EQ(r.find_distillation("8-to-2")->num_output_ts, 2u);

  // The registry dump reloads into an equivalent registry.
  Registry fresh;
  Diagnostics reload_diags;
  fresh.load_profile_pack(r.to_json(), reload_diags);
  EXPECT_FALSE(reload_diags.has_errors()) << reload_diags.summary();
  ASSERT_NE(fresh.find_qubit("fast_transmon"), nullptr);
  EXPECT_EQ(fresh.find_qubit("fast_transmon")->to_json().dump(), q->to_json().dump());
  ASSERT_NE(fresh.find_qec("dense_surface", InstructionSet::kGateBased), nullptr);
  EXPECT_EQ(fresh.find_qec("dense_surface", InstructionSet::kGateBased)->to_json().dump(),
            s->to_json().dump());
  EXPECT_EQ(fresh.to_json().dump(), r.to_json().dump());
}

TEST(Registry, ProfilePackCollectsErrorsAndKeepsGoodEntries) {
  Registry r = Registry::with_builtins();
  Diagnostics diags;
  json::Value pack = json::parse(R"({
    "qubitParams": [
      {"name": "orphan", "base": "no_such_base"},
      {"oneQubitGateTime": 10},
      {"name": "ok_profile", "base": "qubit_maj_ns_e4", "tGateErrorRate": 0.04}
    ]
  })");
  r.load_profile_pack(pack, diags);
  EXPECT_TRUE(diags.has_errors());
  EXPECT_NE(find_diagnostic(diags, "unknown-name", "/qubitParams/0/base"), nullptr);
  EXPECT_NE(find_diagnostic(diags, "required-missing", "/qubitParams/1/name"), nullptr);
  EXPECT_EQ(r.find_qubit("orphan"), nullptr);
  ASSERT_NE(r.find_qubit("ok_profile"), nullptr);  // valid entry still landed
  EXPECT_DOUBLE_EQ(r.find_qubit("ok_profile")->t_gate_error_rate, 0.04);
}

// -------------------------------------------------- validation & schema ---

TEST(SchemaV2, CollectsAllProblemsWithPointerPaths) {
  // Three distinct field errors plus one unknown key: one response, four
  // diagnostics (the acceptance scenario).
  json::Value job = json::parse_file(std::string(QRE_SOURCE_DIR) +
                                     "/tests/data/invalid_job_v2.json");
  EstimateRequest request = EstimateRequest::parse(job);
  EXPECT_FALSE(request.ok());
  EXPECT_EQ(request.diagnostics.size(), 4u);
  EXPECT_EQ(request.diagnostics.num_errors(), 3u);
  EXPECT_NE(find_diagnostic(request.diagnostics, "value-range", "/logicalCounts/numQubits"),
            nullptr);
  EXPECT_NE(
      find_diagnostic(request.diagnostics, "value-range", "/qubitParams/tGateErrorRate"),
      nullptr);
  EXPECT_NE(find_diagnostic(request.diagnostics, "value-range", "/errorBudget"), nullptr);
  const Diagnostic* unknown = find_diagnostic(request.diagnostics, "unknown-key", "/frobnicate");
  ASSERT_NE(unknown, nullptr);
  EXPECT_EQ(unknown->severity, Severity::kWarning);

  // The whole story fits in one response document.
  EstimateResponse response = api::run(request);
  EXPECT_FALSE(response.success);
  EXPECT_EQ(response.to_json().at("diagnostics").as_array().size(), 4u);
  EXPECT_EQ(response.to_json().find("result"), nullptr);
}

TEST(SchemaV2, InvalidBatchItemsFailIndividually) {
  // One bad item must not reject the whole batch: it degrades to a
  // structured "invalid-item" entry carrying its own diagnostics (pointers
  // relative to the merged item document) while the other items run.
  json::Value job = json::parse(R"({
    "logicalCounts": {"numQubits": 10, "tCount": 100},
    "items": [
      {},
      {"errorBudget": 7.0},
      {"estimateType": "pareto"}
    ]
  })");
  EstimateRequest request = EstimateRequest::parse(job);
  ASSERT_TRUE(request.ok()) << request.diagnostics.summary();
  EstimateResponse response = api::run(request);
  ASSERT_TRUE(response.success);
  const json::Array& results = response.result.at("results").as_array();
  ASSERT_EQ(results.size(), 3u);
  EXPECT_NE(results[0].find("physicalCounts"), nullptr);
  EXPECT_EQ(results[1].at("error").at("code").as_string(), "invalid-item");
  bool budget_path_reported = false;
  for (const json::Value& d : results[1].at("diagnostics").as_array()) {
    budget_path_reported |= d.at("path").as_string() == "/errorBudget";
  }
  EXPECT_TRUE(budget_path_reported);
  EXPECT_EQ(results[2].at("error").at("code").as_string(), "invalid-item");
  EXPECT_EQ(response.result.at("batchStats").at("numErrors").as_uint(), 2u);

  // Structural batch problems still reject the request up front.
  json::Value nested = json::parse(
      R"({"logicalCounts": {"numQubits": 5}, "items": [{"items": []}]})");
  EXPECT_FALSE(EstimateRequest::parse(nested).ok());
}

TEST(SchemaV2, RequiredCountsAndExclusiveBatchKeys) {
  EstimateRequest missing = EstimateRequest::parse(json::parse(R"({"errorBudget": 0.01})"));
  EXPECT_NE(find_diagnostic(missing.diagnostics, "required-missing", "/logicalCounts"),
            nullptr);

  EstimateRequest both = EstimateRequest::parse(json::parse(R"({
    "logicalCounts": {"numQubits": 5},
    "items": [{}],
    "sweep": {"errorBudget": [0.1, 0.01]}
  })"));
  EXPECT_NE(find_diagnostic(both.diagnostics, "mutually-exclusive", "/items"), nullptr);

  // A sweep axis can supply logicalCounts, so it is not required up front.
  EstimateRequest swept = EstimateRequest::parse(json::parse(R"({
    "sweep": {"logicalCounts": [{"numQubits": 5, "tCount": 10}]}
  })"));
  EXPECT_TRUE(swept.ok()) << swept.diagnostics.summary();
}

TEST(SchemaV2, DryRunBatchItemPassFindsPerItemProblems) {
  // validate_batch_items is the --validate deep pass: it surfaces the
  // per-item problems the runner would isolate at execution time, anchored
  // under /items/<i>, without duplicating findings in inherited sections.
  json::Value job = json::parse(R"({
    "logicalCounts": {"numQubits": 10, "tCount": 100},
    "errorBudget": 5.0,
    "items": [
      {"errorBudget": 0.001},
      {"errorBudget": 7.0},
      {}
    ]
  })");
  EstimateRequest request = EstimateRequest::parse(job);
  EXPECT_NE(find_diagnostic(request.diagnostics, "value-range", "/errorBudget"), nullptr);
  Diagnostics deep;
  api::validate_batch_items(request.document, Registry::global(), deep);
  EXPECT_NE(find_diagnostic(deep, "value-range", "/items/1/errorBudget"), nullptr);
  // Item 0 overrides the budget with a valid value: no finding. Item 2
  // inherits the broken base budget, which was already reported top-level.
  EXPECT_EQ(find_diagnostic(deep, "value-range", "/items/0/errorBudget"), nullptr);
  EXPECT_EQ(find_diagnostic(deep, "value-range", "/items/2/errorBudget"), nullptr);
}

TEST(SchemaV2, UpgradeShimStampsVersion) {
  EstimateRequest v1 = EstimateRequest::parse(
      json::parse(R"({"logicalCounts": {"numQubits": 5, "tCount": 10}})"));
  EXPECT_TRUE(v1.ok());
  EXPECT_EQ(v1.source_version, 1);
  EXPECT_EQ(v1.document.at("schemaVersion").as_int(), 2);

  EstimateRequest v2 = EstimateRequest::parse(json::parse(
      R"({"schemaVersion": 2, "logicalCounts": {"numQubits": 5, "tCount": 10}})"));
  EXPECT_TRUE(v2.ok());
  EXPECT_EQ(v2.source_version, 2);

  EstimateRequest v3 = EstimateRequest::parse(json::parse(
      R"({"schemaVersion": 3, "logicalCounts": {"numQubits": 5, "tCount": 10}})"));
  EXPECT_FALSE(v3.ok());
  EXPECT_NE(find_diagnostic(v3.diagnostics, "unsupported-version", "/schemaVersion"),
            nullptr);
}

TEST(SchemaV2, ShimEquivalenceOnFig4Sweep) {
  // The paper's Figure 4 sweep (6 profiles x 3 budgets), as shipped in
  // examples/: the v1 document and its explicit v2 upgrade must produce
  // byte-identical result documents.
  json::Value v1 = json::parse_file(std::string(QRE_SOURCE_DIR) +
                                    "/examples/fig4_sweep_job.json");
  ASSERT_EQ(v1.find("schemaVersion"), nullptr);  // shipped as v1
  json::Value v2 = v1;
  v2.set("schemaVersion", 2);

  json::Value via_shim = run_job(v1);
  json::Value native_v2 = run_job(v2);
  EXPECT_EQ(via_shim.dump(), native_v2.dump());

  EstimateRequest request = EstimateRequest::parse(v1);
  ASSERT_TRUE(request.ok()) << request.diagnostics.summary();
  EstimateResponse response = api::run(request);
  ASSERT_TRUE(response.success);
  EXPECT_EQ(response.result.dump(), via_shim.dump());
}

// ----------------------------------------------------------- the façade ---

TEST(Facade, RunJobThrowsValidationErrorWithDiagnostics) {
  json::Value job = json::parse_file(std::string(QRE_SOURCE_DIR) +
                                     "/tests/data/invalid_job_v2.json");
  try {
    run_job(job);
    FAIL() << "run_job accepted an invalid document";
  } catch (const ValidationError& e) {
    EXPECT_EQ(e.diagnostics().num_errors(), 3u);
    EXPECT_NE(std::string(e.what()).find("/errorBudget"), std::string::npos);
  }
}

TEST(Facade, BatchItemsFailWithStructuredErrors) {
  json::Value job = json::parse(R"({
    "logicalCounts": {"numQubits": 10, "tCount": 1000},
    "items": [
      {},
      {"qubitParams": {"name": "qubit_gate_ns_e3", "twoQubitGateErrorRate": 0.5}}
    ]
  })");
  EstimateRequest request = EstimateRequest::parse(job);
  ASSERT_TRUE(request.ok()) << request.diagnostics.summary();
  EstimateResponse response = api::run(request);
  ASSERT_TRUE(response.success);
  const json::Array& results = response.result.at("results").as_array();
  ASSERT_EQ(results.size(), 2u);
  EXPECT_NE(results[0].find("physicalCounts"), nullptr);
  const json::Value& error = results[1].at("error");
  EXPECT_EQ(error.at("code").as_string(), "estimation-failed");
  EXPECT_FALSE(error.at("message").as_string().empty());
  EXPECT_EQ(response.result.at("batchStats").at("numErrors").as_uint(), 1u);
}

TEST(Facade, DistillationUnitsResolveFromRegistryByName) {
  json::Value job = json::parse(R"({
    "logicalCounts": {"numQubits": 10, "tCount": 1000},
    "distillationUnitSpecifications": [{"name": "15-to-1 space efficient"}]
  })");
  EstimateRequest request = EstimateRequest::parse(job);
  ASSERT_TRUE(request.ok()) << request.diagnostics.summary();
  EstimationInput input = estimation_input_from_json(job);
  ASSERT_EQ(input.distillation_units.size(), 1u);
  EXPECT_FALSE(input.distillation_units[0].allow_physical);
  EXPECT_EQ(input.distillation_units[0].logical_qubits_at_logical, 20u);

  json::Value bad = json::parse(R"({
    "logicalCounts": {"numQubits": 10, "tCount": 1000},
    "distillationUnitSpecifications": [{"name": "no_such_template"}]
  })");
  EXPECT_FALSE(EstimateRequest::parse(bad).ok());
  EXPECT_THROW(estimation_input_from_json(bad), Error);
}

TEST(Facade, GlobalRegistryExtendsJobVocabulary) {
  QubitParams custom = QubitParams::gate_us_e3();
  custom.name = "test_api_custom_qubit";
  Registry::global().register_qubit(custom);
  json::Value job = json::parse(R"({
    "logicalCounts": {"numQubits": 10, "tCount": 1000},
    "qubitParams": {"name": "test_api_custom_qubit"}
  })");
  EXPECT_TRUE(EstimateRequest::parse(job).ok());
  json::Value result = run_job(job);
  EXPECT_EQ(result.at("physicalQubitParameters").at("name").as_string(),
            "test_api_custom_qubit");
}

TEST(Facade, StrictParsersRejectUnknownKeysWithoutSink) {
  json::Value job = json::parse(R"({
    "logicalCounts": {"numQubits": 10, "tCount": 1000},
    "qubitParams": {"name": "qubit_gate_ns_e3", "tGateTim": 25}
  })");
  // Strict path (no diagnostics sink): the typo is an error...
  EXPECT_THROW(estimation_input_from_json(job), Error);
  // ...while the façade downgrades it to a warning and still runs.
  EstimateRequest request = EstimateRequest::parse(job);
  EXPECT_TRUE(request.ok());
  ASSERT_EQ(request.diagnostics.size(), 1u);
  EXPECT_EQ(request.diagnostics.entries()[0].code, "unknown-key");
  EXPECT_EQ(request.diagnostics.entries()[0].path, "/qubitParams/tGateTim");
  EXPECT_TRUE(api::run(request).success);
}

}  // namespace
}  // namespace qre
