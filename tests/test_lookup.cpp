// Tests for QROM lookup / measurement-based unlookup, including the phase
// fix-up correctness on superposed addresses — the heart of the windowed
// multiplier (Gidney, arXiv:1905.07682).
#include <gtest/gtest.h>

#include "arith/lookup.hpp"
#include "circuit/builder.hpp"
#include "common/error.hpp"
#include "counter/logical_counter.hpp"
#include "sim/sparse_simulator.hpp"

namespace qre {
namespace {

LookupData random_table(std::size_t w, std::size_t width, std::uint64_t seed) {
  LookupData data;
  data.data_width = width;
  std::uint64_t x = seed | 1;
  for (std::size_t k = 0; k < (std::size_t{1} << w); ++k) {
    x = x * 6364136223846793005ull + 1442695040888963407ull;
    data.values.push_back((x >> 20) & ((std::uint64_t{1} << width) - 1));
  }
  return data;
}

class LookupWidths : public ::testing::TestWithParam<int> {};

TEST_P(LookupWidths, ClassicalAddressesReadCorrectEntry) {
  int w = GetParam();
  LookupData data = random_table(w, 6, 42 + w);
  for (std::uint64_t addr = 0; addr < (1u << w); ++addr) {
    SparseSimulator sim(addr + 7);
    ProgramBuilder bld(sim);
    Register a = bld.alloc_register(w);
    Register t = bld.alloc_register(6);
    bld.xor_constant(a, addr);
    lookup_xor(bld, a, t, data);
    EXPECT_EQ(sim.peek_classical(t), data.values[addr]) << "w=" << w << " addr=" << addr;
    EXPECT_EQ(sim.peek_classical(a), addr);  // address preserved
    // XOR semantics: looking up twice clears the target.
    lookup_xor(bld, a, t, data);
    EXPECT_EQ(sim.peek_classical(t), 0u);
  }
}

TEST_P(LookupWidths, UnlookupRestoresSuperposedAddress) {
  // Put the address in uniform superposition, lookup, unlookup, then
  // interfere the address back with H^w. Any phase error from the
  // measurement-based unlookup leaves population outside |0...0>.
  int w = GetParam();
  LookupData data = random_table(w, 5, 1234 + w);
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    SparseSimulator sim(seed * 2654435761ull);
    ProgramBuilder bld(sim);
    Register a = bld.alloc_register(w);
    Register t = bld.alloc_register(5);
    for (QubitId q : a) bld.h(q);
    lookup_xor(bld, a, t, data);
    unlookup(bld, a, t, data);
    bld.free_register(t);  // unlookup must have reset it to |0>
    for (QubitId q : a) bld.h(q);
    EXPECT_EQ(sim.peek_classical(a), 0u) << "w=" << w << " seed=" << seed;
    EXPECT_NEAR(sim.norm(), 1.0, 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(AddressWidths, LookupWidths, ::testing::Values(1, 2, 3, 4));

TEST(Lookup, ZeroWidthAddress) {
  LookupData data;
  data.data_width = 4;
  data.values = {0b1010};
  SparseSimulator sim;
  ProgramBuilder bld(sim);
  Register a;  // empty address: single-entry table
  Register t = bld.alloc_register(4);
  lookup_xor(bld, a, t, data);
  EXPECT_EQ(sim.peek_classical(t), 0b1010u);
  unlookup(bld, a, t, data);
  bld.free_register(t);
}

TEST(Lookup, SelectWalkVisitsAllLeavesOnce) {
  LogicalCounter counter;
  ProgramBuilder bld(counter);
  Register a = bld.alloc_register(3);
  std::vector<int> visits(8, 0);
  select_walk(bld, a, [&](std::optional<QubitId> ctrl, std::uint64_t k) {
    EXPECT_TRUE(ctrl.has_value());
    ASSERT_LT(k, 8u);
    ++visits[k];
  });
  for (int v : visits) EXPECT_EQ(v, 1);
}

TEST(Lookup, SelectWalkAndBudget) {
  // The select tree costs 2^w - 2 ANDs (the root split is free).
  for (std::size_t w : {2u, 3u, 4u, 5u}) {
    LogicalCounter counter;
    ProgramBuilder bld(counter);
    Register a = bld.alloc_register(w);
    select_walk(bld, a, [](std::optional<QubitId>, std::uint64_t) {});
    EXPECT_EQ(counter.counts().ccix_count, (std::uint64_t{1} << w) - 2) << "w=" << w;
  }
}

TEST(Lookup, UnlookupCostIsSquareRootStyle) {
  // Structural ANDs: two one-hot lookups over ceil(w/2) bits plus a select
  // over floor(w/2) bits — far below the 2^w of a full lookup.
  for (std::size_t w : {4u, 6u, 8u}) {
    LookupData data;
    data.data_width = 8;  // counting backend: values not needed
    LogicalCounter counter;
    ProgramBuilder bld(counter);
    Register a = bld.alloc_register(w);
    Register t = bld.alloc_register(8);
    // Target must "hold" a looked-up value conceptually; for counting we can
    // go straight to unlookup.
    unlookup(bld, a, t, data);
    std::uint64_t w1 = (w + 1) / 2;
    std::uint64_t w2 = w - w1;
    std::uint64_t expected = 2 * ((std::uint64_t{1} << w1) - 2);
    if (w2 >= 2) expected += (std::uint64_t{1} << w2) - 2;
    EXPECT_EQ(counter.counts().ccix_count, expected) << "w=" << w;
    EXPECT_LT(counter.counts().ccix_count, (std::uint64_t{1} << w) - 2);
    // One X-measurement per target bit plus the AND uncomputations.
    EXPECT_GE(counter.counts().measurement_count, 8u);
  }
}

TEST(Lookup, CountingBackendSkipsValues) {
  // Counting backends work without table values even for wide data.
  LookupData data;
  data.data_width = 4096;  // wider than any executable table
  LogicalCounter counter;
  ProgramBuilder bld(counter);
  Register a = bld.alloc_register(10);
  Register t = bld.alloc_register(16);  // width mismatch tolerated when counting
  lookup_xor(bld, a, t, data);
  EXPECT_EQ(counter.counts().ccix_count, 1022u);
  EXPECT_GT(counter.counts().clifford_count, 0u);
}

TEST(Lookup, ExecutingBackendValidatesTable) {
  SparseSimulator sim;
  ProgramBuilder bld(sim);
  Register a = bld.alloc_register(2);
  Register t = bld.alloc_register(3);
  LookupData bad;
  bad.data_width = 3;
  bad.values = {1, 2};  // needs 4 entries
  EXPECT_THROW(lookup_xor(bld, a, t, bad), Error);
}

}  // namespace
}  // namespace qre
