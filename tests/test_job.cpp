// Tests of the service-style JSON job interface (paper Section IV-A): the
// schema, defaulting, batching with inheritance, frontier jobs, and error
// isolation.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "core/job.hpp"
#include "report/report.hpp"

namespace qre {
namespace {

const char* kBaseJob = R"({
  "logicalCounts": {
    "numQubits": 100,
    "tCount": 1000000,
    "measurementCount": 100000
  },
  "qubitParams": {"name": "qubit_gate_ns_e3"},
  "errorBudget": 0.001
})";

TEST(Job, InputFromJsonDefaults) {
  json::Value minimal = json::parse(R"({"logicalCounts": {"numQubits": 5, "tCount": 10}})");
  EstimationInput input = estimation_input_from_json(minimal);
  EXPECT_EQ(input.qubit.name, "qubit_gate_ns_e3");  // default profile
  EXPECT_EQ(input.qec.name(), "surface_code");
  EXPECT_DOUBLE_EQ(input.budget.total(), 1e-3);
  EXPECT_EQ(input.distillation_units.size(), 2u);
}

TEST(Job, InputFromJsonFull) {
  json::Value job = json::parse(R"({
    "logicalCounts": {"numQubits": 10, "tCount": 100},
    "qubitParams": {"name": "qubit_maj_ns_e4"},
    "qecScheme": {"name": "surface_code"},
    "errorBudget": {"logical": 1e-4, "tstates": 1e-4, "rotations": 0},
    "constraints": {"maxTFactories": 3},
    "distillationUnitSpecifications": [{
      "name": "15-to-1 RM prep",
      "numInputTs": 15,
      "numOutputTs": 1,
      "failureProbabilityFormula": "15 * inputErrorRate + 356 * cliffordErrorRate",
      "outputErrorRateFormula": "35 * inputErrorRate ^ 3 + 7.1 * cliffordErrorRate",
      "logicalQubitSpecification": {"numUnitQubits": 31, "durationInLogicalCycles": 11}
    }]
  })");
  EstimationInput input = estimation_input_from_json(job);
  EXPECT_EQ(input.qubit.instruction_set, InstructionSet::kMajorana);
  EXPECT_EQ(input.qec.name(), "surface_code");  // Majorana surface code
  EXPECT_DOUBLE_EQ(input.qec.threshold(), 0.0015);
  EXPECT_EQ(*input.constraints.max_t_factories, 3u);
  EXPECT_EQ(input.distillation_units.size(), 1u);
  EXPECT_FALSE(input.distillation_units[0].allow_physical);
}

TEST(Job, SinglePointMatchesDirectEstimate) {
  json::Value job = json::parse(kBaseJob);
  json::Value result = run_job(job);
  ResourceEstimate direct = estimate(estimation_input_from_json(job));
  EXPECT_EQ(result.at("physicalCounts").at("physicalQubits").as_uint(),
            direct.total_physical_qubits);
  EXPECT_DOUBLE_EQ(result.at("physicalCounts").at("runtime").as_double(),
                   direct.runtime_ns);
}

TEST(Job, FrontierEstimateType) {
  json::Value job = json::parse(kBaseJob);
  job.set("estimateType", json::Value("frontier"));
  json::Value result = run_job(job);
  const json::Array& points = result.at("frontier").as_array();
  ASSERT_GE(points.size(), 2u);
  double previous_runtime = 0.0;
  std::uint64_t previous_qubits = ~0ull;
  for (const json::Value& point : points) {
    double runtime = point.at("physicalCounts").at("runtime").as_double();
    std::uint64_t qubits = point.at("physicalCounts").at("physicalQubits").as_uint();
    EXPECT_GT(runtime, previous_runtime);
    EXPECT_LT(qubits, previous_qubits);
    previous_runtime = runtime;
    previous_qubits = qubits;
  }
}

TEST(Job, UnknownEstimateTypeThrows) {
  json::Value job = json::parse(kBaseJob);
  job.set("estimateType", json::Value("pareto"));
  EXPECT_THROW(run_job(job), Error);
}

TEST(Job, BatchedItemsInheritAndOverride) {
  json::Value job = json::parse(kBaseJob);
  json::Array items;
  items.push_back(json::parse(R"({})"));  // inherits everything
  items.push_back(json::parse(R"({"qubitParams": {"name": "qubit_maj_ns_e4"}})"));
  items.push_back(json::parse(R"({"errorBudget": 0.01})"));
  job.set("items", json::Value(std::move(items)));

  json::Value result = run_job(job);
  const json::Array& results = result.at("results").as_array();
  ASSERT_EQ(results.size(), 3u);
  // Item 0 equals the non-batched run.
  json::Value single = run_job(json::parse(kBaseJob));
  EXPECT_EQ(results[0].at("physicalCounts").at("physicalQubits").as_uint(),
            single.at("physicalCounts").at("physicalQubits").as_uint());
  // Item 1 switched hardware.
  EXPECT_EQ(results[1].at("physicalQubitParameters").at("name").as_string(),
            "qubit_maj_ns_e4");
  // Item 2 relaxed the budget: never more qubits than item 0.
  EXPECT_LE(results[2].at("physicalCounts").at("physicalQubits").as_uint(),
            results[0].at("physicalCounts").at("physicalQubits").as_uint());
}

TEST(Job, BatchIsolatesItemFailures) {
  json::Value job = json::parse(kBaseJob);
  json::Array items;
  items.push_back(json::parse(R"({})"));
  // Physical error rate at the QEC threshold: infeasible item.
  items.push_back(json::parse(R"({"qubitParams": {
    "name": "qubit_gate_ns_e3",
    "twoQubitGateErrorRate": 0.5
  }})"));
  items.push_back(json::parse(R"({})"));
  job.set("items", json::Value(std::move(items)));

  json::Value result = run_job(job);
  const json::Array& results = result.at("results").as_array();
  ASSERT_EQ(results.size(), 3u);
  EXPECT_NE(results[0].find("physicalCounts"), nullptr);
  EXPECT_NE(results[1].find("error"), nullptr);
  EXPECT_NE(results[2].find("physicalCounts"), nullptr);
}

TEST(Job, NestedItemsAreNotInherited) {
  // items inside an item must not recurse into the batch again.
  json::Value job = json::parse(kBaseJob);
  json::Array items;
  items.push_back(json::parse(R"({"errorBudget": 0.01})"));
  job.set("items", json::Value(std::move(items)));
  json::Value result = run_job(job);
  // One item -> one result, and it is a report, not another batch.
  const json::Array& results = result.at("results").as_array();
  ASSERT_EQ(results.size(), 1u);
  EXPECT_NE(results[0].find("physicalCounts"), nullptr);
  EXPECT_EQ(results[0].find("results"), nullptr);
}

TEST(Job, MissingCountsThrows) {
  EXPECT_THROW(run_job(json::parse(R"({"errorBudget": 0.001})")), Error);
  EXPECT_THROW(run_job(json::parse("[]")), Error);
}

TEST(Job, CountsComposition) {
  LogicalCounts adder;
  adder.num_qubits = 40;
  adder.ccix_count = 19;
  adder.measurement_count = 19;
  LogicalCounts lookup;
  lookup.num_qubits = 55;
  lookup.ccix_count = 62;
  lookup.measurement_count = 70;
  LogicalCounts program = LogicalCounts::sequential({adder.repeated(100), lookup});
  EXPECT_EQ(program.num_qubits, 55u);  // widest subroutine
  EXPECT_EQ(program.ccix_count, 100u * 19 + 62);
  EXPECT_EQ(program.measurement_count, 100u * 19 + 70);
  EXPECT_THROW(LogicalCounts::sequential({}), Error);
  EXPECT_THROW(adder.repeated(0), Error);
}

}  // namespace
}  // namespace qre
