#include <gtest/gtest.h>

#include "core/estimator.hpp"
#include "report/report.hpp"

namespace qre {
namespace {

ResourceEstimate sample_estimate() {
  LogicalCounts counts;
  counts.num_qubits = 100;
  counts.t_count = 1'000'000;
  counts.measurement_count = 100'000;
  EstimationInput input = EstimationInput::for_profile(counts, "qubit_gate_ns_e3", 1e-3);
  return estimate(input);
}

TEST(Report, JsonHasAllOutputGroups) {
  ResourceEstimate e = sample_estimate();
  json::Value j = report_to_json(e);
  // The eight output groups of paper Section IV-D.
  EXPECT_NE(j.find("physicalCounts"), nullptr);
  EXPECT_NE(j.find("physicalCountsBreakdown"), nullptr);
  EXPECT_NE(j.find("logicalQubit"), nullptr);
  EXPECT_NE(j.find("tfactory"), nullptr);
  EXPECT_NE(j.find("logicalCounts"), nullptr);
  EXPECT_NE(j.find("errorBudget"), nullptr);
  EXPECT_NE(j.find("physicalQubitParameters"), nullptr);
  EXPECT_NE(j.find("assumptions"), nullptr);
}

TEST(Report, JsonValuesMatchEstimate) {
  ResourceEstimate e = sample_estimate();
  json::Value j = report_to_json(e);
  EXPECT_EQ(j.at("physicalCounts").at("physicalQubits").as_uint(), e.total_physical_qubits);
  EXPECT_DOUBLE_EQ(j.at("physicalCounts").at("runtime").as_double(), e.runtime_ns);
  EXPECT_DOUBLE_EQ(j.at("physicalCounts").at("rqops").as_double(), e.rqops);
  const json::Value& bd = j.at("physicalCountsBreakdown");
  EXPECT_EQ(bd.at("algorithmicLogicalQubits").as_uint(), e.algorithmic_logical_qubits);
  EXPECT_EQ(bd.at("numTfactories").as_uint(), e.num_t_factories);
  EXPECT_EQ(j.at("logicalQubit").at("codeDistance").as_uint(),
            e.logical_qubit.code_distance);
  EXPECT_EQ(j.at("logicalCounts").at("tCount").as_uint(), 1'000'000u);
  // The whole document serializes and re-parses.
  json::Value back = json::parse(j.pretty());
  EXPECT_EQ(back.at("physicalCounts").at("physicalQubits").as_uint(),
            e.total_physical_qubits);
}

TEST(Report, TextMentionsEveryGroup) {
  ResourceEstimate e = sample_estimate();
  std::string text = report_to_text(e);
  EXPECT_NE(text.find("Physical resource estimates"), std::string::npos);
  EXPECT_NE(text.find("Resource estimates breakdown"), std::string::npos);
  EXPECT_NE(text.find("Logical qubit parameters"), std::string::npos);
  EXPECT_NE(text.find("T factory parameters"), std::string::npos);
  EXPECT_NE(text.find("Pre-layout logical resources"), std::string::npos);
  EXPECT_NE(text.find("Assumed error budget"), std::string::npos);
  EXPECT_NE(text.find("Physical qubit parameters"), std::string::npos);
  EXPECT_NE(text.find("qubit_gate_ns_e3"), std::string::npos);
  EXPECT_NE(text.find("rQOPS"), std::string::npos);
}

TEST(Report, SpaceDiagramSplitsQubits) {
  ResourceEstimate e = sample_estimate();
  std::string diagram = space_diagram(e);
  EXPECT_NE(diagram.find("algorithm"), std::string::npos);
  EXPECT_NE(diagram.find("T factories"), std::string::npos);
  EXPECT_NE(diagram.find('#'), std::string::npos);
}

TEST(Report, AssumptionsListed) {
  const auto& assumptions = estimator_assumptions();
  EXPECT_GE(assumptions.size(), 5u);
  json::Value j = report_to_json(sample_estimate());
  EXPECT_EQ(j.at("assumptions").as_array().size(), assumptions.size());
}

TEST(Report, CliffordOnlyReportOmitsFactory) {
  LogicalCounts counts;
  counts.num_qubits = 5;
  counts.measurement_count = 10;
  EstimationInput input = EstimationInput::for_profile(counts, "qubit_gate_ns_e3", 1e-3);
  ResourceEstimate e = estimate(input);
  json::Value j = report_to_json(e);
  EXPECT_TRUE(j.at("tfactory").is_null());
  std::string text = report_to_text(e);
  EXPECT_EQ(text.find("T factory parameters"), std::string::npos);
}

}  // namespace
}  // namespace qre
