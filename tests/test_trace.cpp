// Tests of the span/event tracer and per-request timing collector
// (src/common/trace.*): ring bounds + dropped accounting, parent links,
// Chrome Trace JSON export, Collector aggregation/percentiles, and the
// opt-in "timings" block api::run appends for "collectTimings": true.
//
// The tracer is process-global state; every test that enables it disables
// and clears it before returning so tests stay order-independent.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "api/api.hpp"
#include "common/trace.hpp"
#include "json/json.hpp"

namespace qre {
namespace {

using api::EstimateRequest;
using api::EstimateResponse;

/// RAII: whatever the test did, leave the global tracer off and empty.
struct TracerGuard {
  ~TracerGuard() {
    trace::disable();
    trace::clear();
  }
};

const trace::Event* find_event(const std::vector<trace::Event>& events,
                               std::string_view name) {
  for (const trace::Event& e : events) {
    if (e.name != nullptr && name == e.name) return &e;
  }
  return nullptr;
}

// ------------------------------------------------------------- tracer ---

TEST(Trace, DisabledIsInert) {
  TracerGuard guard;
  trace::disable();
  trace::clear();
  {
    QRE_TRACE_SPAN("test.disabled");
    QRE_TRACE_INSTANT("test.disabled.instant");
    // Without a tracer or collector the span never claims an id.
    EXPECT_EQ(trace::current_span(), 0u);
  }
  EXPECT_TRUE(trace::snapshot().empty());
  EXPECT_EQ(trace::dropped(), 0u);
  EXPECT_FALSE(trace::enabled());
}

TEST(Trace, SpanNestingRecordsParentLinks) {
  TracerGuard guard;
  trace::enable(1024);
  std::uint64_t outer_id = 0;
  std::uint64_t inner_id = 0;
  {
    trace::Span outer("test.outer");
    outer_id = trace::current_span();
    EXPECT_NE(outer_id, 0u);
    {
      trace::Span inner("test.inner");
      inner_id = trace::current_span();
      EXPECT_NE(inner_id, outer_id);
      QRE_TRACE_INSTANT("test.mark");
    }
    // Closing the inner span restores the outer as current.
    EXPECT_EQ(trace::current_span(), outer_id);
  }
  EXPECT_EQ(trace::current_span(), 0u);

  const std::vector<trace::Event> events = trace::snapshot();
  const trace::Event* outer = find_event(events, "test.outer");
  const trace::Event* inner = find_event(events, "test.inner");
  const trace::Event* mark = find_event(events, "test.mark");
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  ASSERT_NE(mark, nullptr);
  EXPECT_EQ(outer->id, outer_id);
  EXPECT_EQ(outer->parent, 0u);
  EXPECT_EQ(inner->parent, outer_id);
  EXPECT_EQ(mark->parent, inner_id);
  EXPECT_GE(outer->dur_ns, inner->dur_ns);  // outer encloses inner
  EXPECT_LT(mark->dur_ns, 0);               // instants have no duration
  EXPECT_EQ(mark->id, 0u);
}

TEST(Trace, RingIsBoundedAndCountsDrops) {
  TracerGuard guard;
  trace::enable(4);
  EXPECT_EQ(trace::capacity(), 4u);
  for (int i = 0; i < 10; ++i) {
    trace::Span span("test.fill");
  }
  const std::vector<trace::Event> events = trace::snapshot();
  EXPECT_EQ(events.size(), 4u);
  EXPECT_EQ(trace::dropped(), 6u);
  // Overwrite-oldest: the survivors are the four most recent span ids.
  std::uint64_t max_id = 0;
  for (const trace::Event& e : events) max_id = std::max(max_id, e.id);
  for (const trace::Event& e : events) EXPECT_GT(e.id + 4, max_id);

  trace::clear();
  EXPECT_TRUE(trace::snapshot().empty());
  EXPECT_EQ(trace::dropped(), 0u);
  EXPECT_TRUE(trace::enabled());  // clear() does not stop recording
}

TEST(Trace, RecordSpanCrossThreadLandsInRing) {
  TracerGuard guard;
  trace::enable(64);
  const auto start = std::chrono::steady_clock::now();
  const auto end = start + std::chrono::microseconds(1500);
  trace::record_span("test.cross", start, end, /*parent=*/42);
  const std::vector<trace::Event> events = trace::snapshot();
  const trace::Event* cross = find_event(events, "test.cross");
  ASSERT_NE(cross, nullptr);
  EXPECT_EQ(cross->parent, 42u);
  EXPECT_EQ(cross->dur_ns, 1500000);
}

TEST(Trace, ChromeJsonIsValidAndCarriesSpanArgs) {
  TracerGuard guard;
  trace::enable(64);
  {
    trace::Span outer("test.chrome.outer");
    trace::Span inner("test.chrome.inner");
    QRE_TRACE_INSTANT("test.chrome.instant");
  }
  const std::string body = trace::to_chrome_json();
  const json::Value doc = json::parse(body);  // must be one valid JSON array
  ASSERT_TRUE(doc.is_array());
  ASSERT_EQ(doc.as_array().size(), 3u);

  bool saw_duration = false;
  bool saw_instant = false;
  for (const json::Value& event : doc.as_array()) {
    ASSERT_TRUE(event.is_object());
    ASSERT_NE(event.find("name"), nullptr);
    ASSERT_NE(event.find("ph"), nullptr);
    ASSERT_NE(event.find("ts"), nullptr);
    EXPECT_GE(event.at("ts").as_double(), 0.0);  // epoch-relative µs
    const std::string& ph = event.at("ph").as_string();
    if (ph == "X") {
      saw_duration = true;
      EXPECT_GE(event.at("dur").as_double(), 0.0);
      // Parent links survive the export, so Perfetto can rebuild the tree.
      ASSERT_NE(event.find("args"), nullptr);
      EXPECT_NE(event.at("args").find("span"), nullptr);
      EXPECT_NE(event.at("args").find("parent"), nullptr);
    } else {
      EXPECT_EQ(ph, "i");
      saw_instant = true;
    }
  }
  EXPECT_TRUE(saw_duration);
  EXPECT_TRUE(saw_instant);
}

TEST(Trace, StatsReportRingState) {
  TracerGuard guard;
  trace::enable(8);
  {
    trace::Span span("test.stats");
  }
  trace::snapshot();  // flush
  const json::Value stats = trace::stats_to_json();
  EXPECT_TRUE(stats.at("enabled").as_bool());
  EXPECT_EQ(stats.at("events").as_uint(), 1u);
  EXPECT_EQ(stats.at("dropped").as_uint(), 0u);
  EXPECT_EQ(stats.at("capacity").as_uint(), 8u);
}

// ---------------------------------------------------------- collector ---

TEST(Collector, AggregatesPhasesDetailAndCounters) {
  trace::Collector c;
  c.phase("api.expand", 1000000, 500000);
  c.phase("api.execute", 3000000, 2000000);
  c.phase("api.execute", 1000000, 1000000);  // repeated names accumulate
  for (int i = 1; i <= 100; ++i) c.add("engine.item", i * 1000, i * 500);
  c.count("estimate.cache.hit", 3);
  c.count("estimate.cache.hit");
  c.count("estimate.cache.miss");

  const json::Value doc = c.to_json(/*total_wall_ns=*/5000000, /*total_cpu_ns=*/4000000);
  EXPECT_DOUBLE_EQ(doc.at("totalWallMs").as_double(), 5.0);
  EXPECT_DOUBLE_EQ(doc.at("totalCpuMs").as_double(), 4.0);

  const json::Array& phases = doc.at("phases").as_array();
  ASSERT_EQ(phases.size(), 2u);  // insertion order, merged by name
  EXPECT_EQ(phases[0].at("name").as_string(), "api.expand");
  EXPECT_DOUBLE_EQ(phases[0].at("wallMs").as_double(), 1.0);
  EXPECT_EQ(phases[1].at("name").as_string(), "api.execute");
  EXPECT_DOUBLE_EQ(phases[1].at("wallMs").as_double(), 4.0);
  EXPECT_DOUBLE_EQ(phases[1].at("cpuMs").as_double(), 3.0);

  const json::Array& detail = doc.at("detail").as_array();
  ASSERT_EQ(detail.size(), 1u);
  EXPECT_EQ(detail[0].at("name").as_string(), "engine.item");
  EXPECT_EQ(detail[0].at("count").as_uint(), 100u);
  // 1..100 µs uniform: p50 is the midpoint by linear interpolation.
  EXPECT_NEAR(detail[0].at("p50Ms").as_double(), 0.0505, 1e-9);
  EXPECT_NEAR(detail[0].at("p99Ms").as_double(), 0.09901, 1e-9);

  EXPECT_EQ(doc.at("counters").at("estimate.cache.hit").as_uint(), 4u);
  EXPECT_EQ(doc.at("counters").at("estimate.cache.miss").as_uint(), 1u);
}

TEST(Collector, PercentileInterpolatesAndHandlesEdges) {
  EXPECT_DOUBLE_EQ(trace::Collector::percentile({}, 50), 0.0);
  EXPECT_DOUBLE_EQ(trace::Collector::percentile({7}, 0), 7.0);
  EXPECT_DOUBLE_EQ(trace::Collector::percentile({7}, 100), 7.0);
  const std::vector<std::int64_t> sorted = {10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(trace::Collector::percentile(sorted, 0), 10.0);
  EXPECT_DOUBLE_EQ(trace::Collector::percentile(sorted, 50), 25.0);
  EXPECT_DOUBLE_EQ(trace::Collector::percentile(sorted, 100), 40.0);
}

TEST(Collector, SampleCapKeepsTotalsExact) {
  trace::Collector c;
  const std::size_t n = trace::Collector::kMaxSamples + 100;
  for (std::size_t i = 0; i < n; ++i) c.add("test.capped", 1000, 0);
  EXPECT_EQ(c.samples("test.capped").size(), trace::Collector::kMaxSamples);
  const json::Value doc = c.to_json(0, 0);
  // Totals keep accumulating past the sample cap.
  EXPECT_EQ(doc.at("detail").as_array()[0].at("count").as_uint(), n);
  EXPECT_DOUBLE_EQ(doc.at("detail").as_array()[0].at("wallMs").as_double(),
                   static_cast<double>(n) / 1000.0);
}

TEST(Collector, ScopeInstallsAndRestoresThreadLocal) {
  trace::Collector c;
  EXPECT_EQ(trace::current_collector(), nullptr);
  {
    trace::CollectorScope scope(&c);
    EXPECT_EQ(trace::current_collector(), &c);
    {
      trace::Span span("test.collected");
    }
    {
      trace::CollectorScope inner(nullptr);  // explicit un-install
      EXPECT_EQ(trace::current_collector(), nullptr);
    }
    EXPECT_EQ(trace::current_collector(), &c);
  }
  EXPECT_EQ(trace::current_collector(), nullptr);
  // The span aggregated into the collector even with the tracer disabled.
  EXPECT_EQ(c.samples("test.collected").size(), 1u);
}

TEST(Collector, WorkerThreadsShareOneCollector) {
  trace::Collector c;
  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([&c] {
      trace::CollectorScope scope(&c);
      for (int i = 0; i < 8; ++i) {
        trace::Span span("test.worker");
      }
    });
  }
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(c.samples("test.worker").size(), 32u);
}

// --------------------------------------------------- api::run timings ---

json::Value sweep_job(bool collect_timings) {
  std::string text = R"({
    "logicalCounts": {"numQubits": 10, "tCount": 100},
    "sweep": {"constraints.maxTFactories": [1, 2, 3]})";
  if (collect_timings) text += R"(, "collectTimings": true)";
  text += "}";
  return json::parse(text);
}

TEST(ApiTimings, CollectTimingsAppendsBlockWithConsistentPhases) {
  EstimateRequest request = EstimateRequest::parse(sweep_job(true));
  ASSERT_TRUE(request.ok());
  EXPECT_TRUE(request.collect_timings);
  // The flag is stripped during parse: cache keys and stored documents are
  // byte-identical whether or not timing was requested.
  EXPECT_EQ(request.document.find("collectTimings"), nullptr);

  EstimateResponse response = api::run(request);
  ASSERT_TRUE(response.success);
  const json::Value* timings = response.result.find("timings");
  ASSERT_NE(timings, nullptr);

  const double total_wall_ms = timings->at("totalWallMs").as_double();
  EXPECT_GT(total_wall_ms, 0.0);
  double phase_sum_ms = 0.0;
  bool saw_execute = false;
  for (const json::Value& phase : timings->at("phases").as_array()) {
    phase_sum_ms += phase.at("wallMs").as_double();
    if (phase.at("name").as_string() == "api.execute") saw_execute = true;
  }
  EXPECT_TRUE(saw_execute);
  // Phases are the request thread's non-overlapping top-level stages, so
  // their sum tracks the request wall time (acceptance: within 10%).
  EXPECT_GT(phase_sum_ms, 0.5 * total_wall_ms);
  EXPECT_LE(phase_sum_ms, 1.1 * total_wall_ms);

  // Engine items aggregate into the detail tier: one entry per sweep item.
  bool saw_items = false;
  for (const json::Value& entry : timings->at("detail").as_array()) {
    if (entry.at("name").as_string() == "engine.item") {
      saw_items = true;
      EXPECT_EQ(entry.at("count").as_uint(), 3u);
    }
  }
  EXPECT_TRUE(saw_items);
}

TEST(ApiTimings, ResultsAreIdenticalWithAndWithoutTimings) {
  EstimateRequest with = EstimateRequest::parse(sweep_job(true));
  EstimateRequest without = EstimateRequest::parse(sweep_job(false));
  ASSERT_TRUE(with.ok());
  ASSERT_TRUE(without.ok());
  EXPECT_FALSE(without.collect_timings);
  // The normalized documents match exactly once collectTimings is stripped.
  EXPECT_EQ(with.document.dump(), without.document.dump());

  EstimateResponse timed = api::run(with);
  EstimateResponse plain = api::run(without);
  ASSERT_TRUE(timed.success);
  ASSERT_TRUE(plain.success);
  EXPECT_EQ(plain.result.find("timings"), nullptr);

  // Strip the block and the result documents are byte-identical: timing
  // collection must never perturb estimation output.
  json::Value stripped = timed.result;
  ASSERT_TRUE(stripped.is_object());
  json::Object& obj = stripped.as_object();
  for (auto it = obj.begin(); it != obj.end(); ++it) {
    if (it->first == "timings") {
      obj.erase(it);
      break;
    }
  }
  EXPECT_EQ(stripped.dump(), plain.result.dump());
}

}  // namespace
}  // namespace qre
