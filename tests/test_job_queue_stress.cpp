// Concurrency stress test for server::JobQueue: many client threads racing
// submit/status/cancel against a small worker pool, checking the lifecycle
// invariants hold under contention and that a drain always terminates.
// This file is the primary target of the ThreadSanitizer CI job — data
// races in the queue surface here even when the assertions still pass.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <random>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/cancel.hpp"
#include "common/error.hpp"
#include "json/json.hpp"
#include "server/job_queue.hpp"

namespace qre {
namespace {

using server::JobQueue;
using server::JobQueueOptions;

json::Value tiny_document(std::uint64_t payload) {
  json::Object o;
  o.emplace_back("payload", payload);
  return json::Value(std::move(o));
}

TEST(JobQueueStress, RacingSubmitPollCancelKeepsInvariants) {
  JobQueueOptions options;
  options.num_workers = 2;  // deliberately starved relative to the clients
  options.max_backlog = 32;
  options.max_retained = 4096;  // retain everything this test submits

  std::atomic<std::uint64_t> executed{0};
  JobQueue queue(
      [&executed](const json::Value& document, const CancelToken&) {
        executed.fetch_add(1, std::memory_order_relaxed);
        // Occasionally fail so the failed path races too.
        if (document.at("payload").as_uint() % 7 == 0) {
          throw Error("synthetic failure");
        }
        json::Object o;
        o.emplace_back("echo", document.at("payload").as_uint());
        return json::Value(std::move(o));
      },
      options);

  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kOpsPerThread = 200;
  std::vector<std::vector<std::uint64_t>> submitted_per_thread(kThreads);
  std::atomic<std::uint64_t> rejected{0};
  std::atomic<std::uint64_t> cancelled{0};

  std::vector<std::thread> clients;
  for (std::size_t t = 0; t < kThreads; ++t) {
    clients.emplace_back([&, t] {
      std::mt19937_64 rng(t);
      std::vector<std::uint64_t>& mine = submitted_per_thread[t];
      for (std::size_t op = 0; op < kOpsPerThread; ++op) {
        switch (rng() % 4) {
          case 0:
          case 1: {  // submit (half the traffic)
            const std::optional<std::uint64_t> id =
                queue.submit(tiny_document(rng() % 1000));
            if (id.has_value()) {
              mine.push_back(*id);
            } else {
              rejected.fetch_add(1, std::memory_order_relaxed);
            }
            break;
          }
          case 2: {  // poll someone's job (or a bogus id)
            const std::uint64_t id = mine.empty() ? rng() % 2048 : mine[rng() % mine.size()];
            const std::optional<json::Value> status = queue.status(id);
            if (status.has_value()) {
              const std::string& state = status->at("status").as_string();
              EXPECT_TRUE(state == "queued" || state == "running" ||
                          state == "cancelling" || state == "succeeded" ||
                          state == "failed" || state == "cancelled")
                  << state;
            }
            break;
          }
          default: {  // cancel one of ours
            if (!mine.empty()) {
              const JobQueue::CancelResult result = queue.cancel(mine[rng() % mine.size()]);
              // kCancelled (was queued) and kCancelling (was running) both
              // guarantee a terminal "cancelled" — cancel wins over a runner
              // that happens to finish.
              if (result == JobQueue::CancelResult::kCancelled ||
                  result == JobQueue::CancelResult::kCancelling) {
                cancelled.fetch_add(1, std::memory_order_relaxed);
              }
            }
            break;
          }
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();

  // Ids are unique across all threads (monotonic allocation never reuses).
  std::set<std::uint64_t> all_ids;
  std::size_t total_submitted = 0;
  for (const auto& ids : submitted_per_thread) {
    total_submitted += ids.size();
    all_ids.insert(ids.begin(), ids.end());
  }
  EXPECT_EQ(all_ids.size(), total_submitted);

  queue.drain();  // must terminate: running jobs finish, queued jobs cancel

  // After the drain every submitted job is terminal, and the terminal
  // counters account for exactly the accepted submissions.
  std::uint64_t succeeded = 0;
  std::uint64_t failed = 0;
  std::uint64_t cancelled_terminal = 0;
  for (std::uint64_t id : all_ids) {
    const std::optional<json::Value> status = queue.status(id);
    ASSERT_TRUE(status.has_value()) << "job " << id << " evicted despite retention";
    const std::string& state = status->at("status").as_string();
    if (state == "succeeded") {
      ++succeeded;
      EXPECT_NE(status->find("response"), nullptr);
    } else if (state == "failed") {
      ++failed;
    } else if (state == "cancelled") {
      ++cancelled_terminal;
    } else {
      ADD_FAILURE() << "job " << id << " not terminal after drain: " << state;
    }
  }
  EXPECT_EQ(succeeded + failed + cancelled_terminal, total_submitted);
  EXPECT_GE(cancelled_terminal, cancelled.load());  // drain cancels the rest
  // Cancel-wins: a job whose runner executed can still terminate cancelled
  // (its response is discarded), so executed bounds the counted terminals
  // from above instead of matching exactly.
  EXPECT_GE(executed.load(), succeeded + failed);

  const json::Value stats = queue.stats_to_json();
  EXPECT_EQ(stats.at("succeeded").as_uint(), succeeded);
  EXPECT_EQ(stats.at("failed").as_uint(), failed);
  EXPECT_EQ(stats.at("cancelled").as_uint(), cancelled_terminal);
  EXPECT_EQ(stats.at("queued").as_uint(), 0u);
  EXPECT_EQ(stats.at("running").as_uint(), 0u);
}

TEST(JobQueueStress, BoundedBacklogShedsLoadUnderBurst) {
  JobQueueOptions options;
  options.num_workers = 0;  // frozen: nothing ever starts
  options.max_backlog = 8;
  JobQueue queue(
      [](const json::Value&, const CancelToken&) { return json::Value(json::Object{}); },
      options);

  std::atomic<std::uint64_t> accepted{0};
  std::atomic<std::uint64_t> rejected{0};
  std::vector<std::thread> clients;
  for (std::size_t t = 0; t < 8; ++t) {
    clients.emplace_back([&] {
      for (std::size_t i = 0; i < 64; ++i) {
        if (queue.submit(tiny_document(i)).has_value()) {
          accepted.fetch_add(1, std::memory_order_relaxed);
        } else {
          rejected.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();
  // The backlog bound held no matter the interleaving...
  EXPECT_EQ(accepted.load(), 8u);
  // ...and every refusal was load shedding, not loss.
  EXPECT_EQ(accepted.load() + rejected.load(), 8u * 64u);
  queue.drain();
  EXPECT_EQ(queue.stats_to_json().at("cancelled").as_uint(), 8u);
}

TEST(JobQueueStress, CancelInterruptsRunningJob) {
  JobQueueOptions options;
  options.num_workers = 1;
  std::atomic<std::uint64_t> started{0};
  JobQueue queue(
      [&started](const json::Value&, const CancelToken& cancel) {
        started.fetch_add(1, std::memory_order_relaxed);
        // Simulated sweep: poll the token at 1ms "item boundaries"; without
        // a cancel this outlives the test's polling budget by design.
        for (int i = 0; i < 4000 && !cancel.should_stop(); ++i) {
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
        json::Object o;
        o.emplace_back("done", json::Value(true));
        return json::Value(std::move(o));
      },
      options);

  const std::optional<std::uint64_t> id = queue.submit(tiny_document(1));
  ASSERT_TRUE(id.has_value());
  for (int i = 0; i < 4000 && started.load(std::memory_order_relaxed) == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_GT(started.load(std::memory_order_relaxed), 0u) << "worker never started the job";

  const JobQueue::CancelResult result = queue.cancel(*id);
  EXPECT_TRUE(result == JobQueue::CancelResult::kCancelling ||
              result == JobQueue::CancelResult::kCancelled);

  // Cooperative cancellation lands within one item boundary (1ms here) —
  // far inside this polling budget.
  std::string state;
  for (int i = 0; i < 4000; ++i) {
    const std::optional<json::Value> status = queue.status(*id);
    ASSERT_TRUE(status.has_value());
    state = status->at("status").as_string();
    if (state == "cancelled") break;
    EXPECT_TRUE(state == "running" || state == "cancelling") << state;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(state, "cancelled");
  // Partial results are discarded: cancelled jobs never expose a response.
  EXPECT_EQ(queue.status(*id)->find("response"), nullptr);
  // Cancelling again is answered consistently (already finished).
  EXPECT_EQ(queue.cancel(*id), JobQueue::CancelResult::kNotCancellable);
  queue.drain();
}

TEST(JobQueueStress, RetentionEvictionRacesDeleteAndPolls) {
  JobQueueOptions options;
  options.num_workers = 2;
  options.max_backlog = 64;
  options.max_retained = 8;  // aggressive eviction while clients still poll
  JobQueue queue(
      [](const json::Value& document, const CancelToken&) {
        json::Object o;
        o.emplace_back("echo", document.at("payload").as_uint());
        return json::Value(std::move(o));
      },
      options);

  std::vector<std::thread> clients;
  for (std::size_t t = 0; t < 4; ++t) {
    clients.emplace_back([&, t] {
      std::mt19937_64 rng(t + 100);
      std::vector<std::uint64_t> mine;
      for (std::size_t op = 0; op < 300; ++op) {
        switch (rng() % 3) {
          case 0: {
            const std::optional<std::uint64_t> id = queue.submit(tiny_document(rng() % 100));
            if (id.has_value()) mine.push_back(*id);
            break;
          }
          case 1: {  // poll: an evicted id is indistinguishable from unknown
            if (!mine.empty()) {
              const std::optional<json::Value> status =
                  queue.status(mine[rng() % mine.size()]);
              if (status.has_value()) {
                const std::string& state = status->at("status").as_string();
                EXPECT_TRUE(state == "queued" || state == "running" ||
                            state == "cancelling" || state == "succeeded" ||
                            state == "failed" || state == "cancelled")
                    << state;
              }
            }
            break;
          }
          default: {  // DELETE races eviction and the running worker
            if (!mine.empty()) (void)queue.cancel(mine[rng() % mine.size()]);
            break;
          }
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();
  queue.drain();

  const json::Value stats = queue.stats_to_json();
  EXPECT_EQ(stats.at("queued").as_uint(), 0u);
  EXPECT_EQ(stats.at("running").as_uint(), 0u);
}

TEST(JobQueueStress, ConcurrentDrainsAreIdempotent) {
  JobQueueOptions options;
  options.num_workers = 2;
  JobQueue queue(
      [](const json::Value&, const CancelToken&) { return json::Value(json::Object{}); },
      options);
  for (std::size_t i = 0; i < 16; ++i) (void)queue.submit(tiny_document(i));
  std::vector<std::thread> drains;
  for (std::size_t t = 0; t < 4; ++t) drains.emplace_back([&] { queue.drain(); });
  for (std::thread& t : drains) t.join();
  EXPECT_EQ(queue.stats_to_json().at("queued").as_uint(), 0u);
  EXPECT_FALSE(queue.submit(tiny_document(0)).has_value());  // drained = closed
}

}  // namespace
}  // namespace qre
