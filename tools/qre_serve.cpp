// qre_serve — the estimation daemon: the same JSON job documents qre_cli
// runs, served over HTTP/1.1 with one long-lived engine so caches stay warm
// across requests (paper Section IV-A positions the estimator as exactly
// this kind of cloud service).
//
// Endpoints (docs/server.md has the full reference and curl examples):
//   POST /v2/estimate     synchronous estimate (NDJSON streaming on
//                         "Accept: application/x-ndjson" for batches)
//   POST /v2/jobs         async submit; GET/DELETE /v2/jobs/{id} poll/cancel
//                         (DELETE cancels queued AND running jobs; running
//                         ones cancel cooperatively at the next item)
//   POST /v2/validate     schema dry-run
//   GET  /v2/profiles     profile registry dump
//   GET  /healthz /version /metrics (JSON or ?format=prometheus)
//   GET  /v2/trace        Chrome-trace export of recorded spans (--trace)
//
// SIGINT/SIGTERM drain gracefully: in-flight requests finish, queued async
// jobs flip to cancelled, then the process exits 0.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "api/api.hpp"
#include "api/schema.hpp"
#include "common/error.hpp"
#include "common/failpoint.hpp"
#include "common/trace.hpp"
#include "common/version.hpp"
#include "server/router.hpp"
#include "server/server.hpp"
#include "store/store.hpp"

namespace {

qre::server::Server* g_server = nullptr;

extern "C" void handle_stop_signal(int) {
  // request_stop is async-signal-safe: an atomic store + self-pipe write.
  if (g_server != nullptr) g_server->request_stop();
}

void print_usage(std::FILE* out) {
  std::fprintf(out,
               "qre_serve — HTTP estimation daemon for JSON job documents\n"
               "\n"
               "usage: qre_serve [options]\n"
               "  --port N            TCP port (default 8080; 0 picks an ephemeral port)\n"
               "  --bind ADDR         IPv4 bind address (default 127.0.0.1)\n"
               "  --port-file PATH    write the bound port to PATH (for scripts and\n"
               "                      ephemeral ports)\n"
               "  --threads N         connection worker threads (default 4)\n"
               "  --job-workers N     async job queue workers (default 2)\n"
               "  --backlog N         async job backlog bound; submits beyond it get\n"
               "                      429 (default 64)\n"
               "  --jobs N            worker threads per batch/sweep request\n"
               "                      (default: hardware concurrency)\n"
               "  --no-batch-kernel   evaluate sweeps on the legacy scalar path instead\n"
               "                      of the SoA batch kernel (docs/performance.md)\n"
               "  --cache-capacity N  shared estimate-cache entry bound (LRU; 0 =\n"
               "                      unbounded; default %zu)\n"
               "  --cache-dir DIR     persistent estimate store: prewarm from\n"
               "                      DIR/estimates.qrestore on startup, write results\n"
               "                      through, persist atomically on drain (the\n"
               "                      directory is created if missing; docs/store.md)\n"
               "  --persist-interval S  with --cache-dir, also persist the store\n"
               "                      every S seconds (default: only on drain)\n"
               "  --profile-pack P    register a JSON profile pack before serving\n"
               "                      (repeatable; packs load BEFORE the first request)\n"
               "  --request-deadline S  bound every POST /v2/estimate run to S seconds:\n"
               "                      sweeps degrade to per-item \"cancelled\" entries,\n"
               "                      single/frontier runs answer 408 deadline-exceeded\n"
               "                      (default: unbounded; docs/robustness.md)\n"
               "  --recv-timeout S    receive timeout on open connections in seconds\n"
               "                      (0 disables; default 30)\n"
               "  --send-timeout S    send timeout in seconds — a reader that stalls\n"
               "                      longer loses its connection instead of wedging a\n"
               "                      worker (0 disables; default 30)\n"
               "  --failpoints SPEC   arm fault-injection sites, e.g.\n"
               "                      'store.persist.before_rename=crash;engine.evaluate\n"
               "                      .before=5%%error' (also via the QRE_FAILPOINTS env\n"
               "                      var; catalog in docs/robustness.md)\n"
               "  --trace             record spans into the in-memory trace ring;\n"
               "                      export live via GET /v2/trace\n"
               "                      (docs/observability.md)\n"
               "  --trace-file PATH   implies --trace; additionally write the ring as\n"
               "                      Chrome-trace JSON to PATH on shutdown (loads in\n"
               "                      Perfetto / chrome://tracing)\n"
               "  --access-log PATH   append one JSON line per request to PATH\n"
               "                      ('-' = stderr): request id, route, status,\n"
               "                      latency, bytes, deadline/cancel flags\n"
               "  --version           print the version and exit\n"
               "  --help              this text\n",
               qre::service::EstimateCache::kDefaultCapacity);
}

struct Options {
  qre::server::ServerOptions server;
  qre::server::ServiceOptions service;
  std::string port_file;
  std::string failpoints;
  std::string trace_file;
  bool trace = false;
  std::vector<std::string> profile_packs;
};

bool parse_size(const char* text, long min_value, long& out) {
  char* end = nullptr;
  out = std::strtol(text, &end, 10);
  return end != nullptr && *end == '\0' && out >= min_value;
}

int parse_args(int argc, char** argv, Options& opts) {
  opts.server.port = 8080;
  opts.service.jobs.num_workers = 2;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](const char* what) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: %s requires a value\n", what);
        return nullptr;
      }
      return argv[++i];
    };
    long n = 0;
    if (arg == "--port") {
      const char* v = next("--port");
      if (v == nullptr || !parse_size(v, 0, n) || n > 65535) return 2;
      opts.server.port = static_cast<std::uint16_t>(n);
    } else if (arg == "--bind") {
      const char* v = next("--bind");
      if (v == nullptr) return 2;
      opts.server.bind_address = v;
    } else if (arg == "--port-file") {
      const char* v = next("--port-file");
      if (v == nullptr) return 2;
      opts.port_file = v;
    } else if (arg == "--threads") {
      const char* v = next("--threads");
      if (v == nullptr || !parse_size(v, 1, n)) return 2;
      opts.server.num_workers = static_cast<std::size_t>(n);
    } else if (arg == "--job-workers") {
      const char* v = next("--job-workers");
      if (v == nullptr || !parse_size(v, 1, n)) return 2;
      opts.service.jobs.num_workers = static_cast<std::size_t>(n);
    } else if (arg == "--backlog") {
      const char* v = next("--backlog");
      if (v == nullptr || !parse_size(v, 1, n)) return 2;
      opts.service.jobs.max_backlog = static_cast<std::size_t>(n);
    } else if (arg == "--jobs") {
      const char* v = next("--jobs");
      if (v == nullptr || !parse_size(v, 1, n)) return 2;
      opts.service.engine.num_workers = static_cast<std::size_t>(n);
    } else if (arg == "--no-batch-kernel") {
      opts.service.engine.use_batch_kernel = false;
    } else if (arg == "--cache-capacity") {
      const char* v = next("--cache-capacity");
      if (v == nullptr || !parse_size(v, 0, n)) return 2;
      opts.service.engine.cache_capacity = static_cast<std::size_t>(n);
    } else if (arg == "--cache-dir") {
      const char* v = next("--cache-dir");
      if (v == nullptr || *v == '\0') return 2;
      opts.service.cache_dir = v;
    } else if (arg == "--persist-interval") {
      const char* v = next("--persist-interval");
      if (v == nullptr) return 2;
      char* end = nullptr;
      const double seconds = std::strtod(v, &end);
      if (end == nullptr || *end != '\0' || !(seconds > 0)) {
        std::fprintf(stderr, "error: --persist-interval expects seconds > 0\n");
        return 2;
      }
      opts.service.persist_interval_s = seconds;
    } else if (arg == "--profile-pack") {
      const char* v = next("--profile-pack");
      if (v == nullptr) return 2;
      opts.profile_packs.emplace_back(v);
    } else if (arg == "--request-deadline") {
      const char* v = next("--request-deadline");
      if (v == nullptr) return 2;
      char* end = nullptr;
      const double seconds = std::strtod(v, &end);
      if (end == nullptr || *end != '\0' || !(seconds > 0)) {
        std::fprintf(stderr, "error: --request-deadline expects seconds > 0\n");
        return 2;
      }
      opts.service.request_deadline_s = seconds;
    } else if (arg == "--recv-timeout") {
      const char* v = next("--recv-timeout");
      if (v == nullptr || !parse_size(v, 0, n)) return 2;
      opts.server.receive_timeout_seconds = static_cast<int>(n);
    } else if (arg == "--send-timeout") {
      const char* v = next("--send-timeout");
      if (v == nullptr || !parse_size(v, 0, n)) return 2;
      opts.server.send_timeout_seconds = static_cast<int>(n);
    } else if (arg == "--failpoints") {
      const char* v = next("--failpoints");
      if (v == nullptr) return 2;
      opts.failpoints = v;
    } else if (arg == "--trace") {
      opts.trace = true;
    } else if (arg == "--trace-file") {
      const char* v = next("--trace-file");
      if (v == nullptr || *v == '\0') return 2;
      opts.trace_file = v;
      opts.trace = true;
    } else if (arg == "--access-log") {
      const char* v = next("--access-log");
      if (v == nullptr || *v == '\0') return 2;
      opts.service.access_log_path = v;
    } else if (arg == "--version") {
      std::printf("qre_serve %s (schema v%d)\n", qre::version_string(),
                  qre::api::kSchemaVersion);
      std::exit(0);
    } else if (arg == "--help" || arg == "-h") {
      print_usage(stdout);
      std::exit(0);
    } else {
      std::fprintf(stderr, "error: unknown option '%s'\n\n", arg.c_str());
      print_usage(stderr);
      return 2;
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Options opts;
  if (int status = parse_args(argc, argv, opts); status != 0) return status;

  try {
    // Fault injection arms before anything runs; a bad spec is a startup
    // error, not a surprise mid-serve.
    qre::failpoint::configure_from_env();
    qre::failpoint::configure(opts.failpoints);

    // All registry mutation happens here, before the first request: the
    // serving phase is read-only per the api::Registry concurrency contract.
    qre::api::Registry& registry = qre::api::Registry::global();
    for (const std::string& pack_path : opts.profile_packs) {
      qre::Diagnostics diags;
      registry.load_profile_pack(qre::json::parse_file(pack_path), diags);
      for (const qre::Diagnostic& d : diags.entries()) {
        std::fprintf(stderr, "%s\n", d.to_json().dump().c_str());
      }
      if (diags.has_errors()) {
        std::fprintf(stderr, "error: profile pack '%s' failed to load\n", pack_path.c_str());
        return 1;
      }
    }

    if (!opts.service.cache_dir.empty()) {
      qre::store::ensure_directory(opts.service.cache_dir);
    }

    if (opts.trace) qre::trace::enable();

    qre::server::Service service(registry, opts.service);
    qre::server::Router router(service);
    opts.server.metrics = &service.metrics();  // transport drives the connection gauge
    opts.server.access_log = service.access_log();  // pre-router rejects log too
    qre::server::Server server(router, opts.server);
    server.start();

    if (!opts.port_file.empty()) {
      std::FILE* f = std::fopen(opts.port_file.c_str(), "w");
      if (f == nullptr) {
        std::fprintf(stderr, "error: cannot write port file '%s'\n", opts.port_file.c_str());
        return 1;
      }
      std::fprintf(f, "%u\n", static_cast<unsigned>(server.port()));
      std::fclose(f);
    }

    std::printf("qre_serve %s listening on http://%s:%u\n", qre::version_string(),
                opts.server.bind_address.c_str(), static_cast<unsigned>(server.port()));
    std::fflush(stdout);

    g_server = &server;
    struct sigaction action{};
    action.sa_handler = handle_stop_signal;
    sigemptyset(&action.sa_mask);
    ::sigaction(SIGINT, &action, nullptr);
    ::sigaction(SIGTERM, &action, nullptr);
    ::signal(SIGPIPE, SIG_IGN);

    server.wait();
    std::fprintf(stderr, "qre_serve: draining (in-flight requests finish, queued jobs cancel)\n");
    server.stop();
    service.jobs().drain();
    service.persist_store();  // final snapshot before the stats line
    g_server = nullptr;

    if (!opts.trace_file.empty()) {
      if (qre::trace::write_chrome_json(opts.trace_file)) {
        std::fprintf(stderr, "qre_serve: wrote trace to %s (%llu dropped)\n",
                     opts.trace_file.c_str(),
                     static_cast<unsigned long long>(qre::trace::dropped()));
      } else {
        std::fprintf(stderr, "qre_serve: cannot write trace file '%s'\n",
                     opts.trace_file.c_str());
      }
    }

    std::fprintf(stderr, "qre_serve: served %llu request(s); bye\n",
                 static_cast<unsigned long long>(service.metrics().requests_total()));
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
