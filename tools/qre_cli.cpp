// qre_cli — command-line front end of the estimator, consuming the same
// JSON job documents the cloud service accepts (paper Section IV-A).
//
// Usage:
//   qre_cli <job.json>           run the job, print the JSON result
//   qre_cli --text <job.json>    single estimates as a human-readable report
//   qre_cli --demo               run a built-in demonstration job
//   qre_cli -                    read the job document from stdin
#include <cstdio>
#include <iostream>
#include <sstream>
#include <string>

#include "common/error.hpp"
#include "core/job.hpp"
#include "report/report.hpp"

namespace {

const char* kDemoJob = R"({
  "logicalCounts": {
    "numQubits": 100,
    "tCount": 1000000,
    "rotationCount": 30000,
    "rotationDepth": 11000,
    "cczCount": 250000,
    "measurementCount": 150000
  },
  "qubitParams": {"name": "qubit_maj_ns_e4"},
  "errorBudget": 0.001,
  "items": [
    {"qubitParams": {"name": "qubit_gate_ns_e3"}},
    {"qubitParams": {"name": "qubit_maj_ns_e6"}},
    {"estimateType": "frontier"}
  ]
})";

void print_usage() {
  std::printf(
      "qre_cli — fault-tolerant quantum resource estimation from JSON jobs\n"
      "\n"
      "usage:\n"
      "  qre_cli <job.json>          run the job, print the JSON result\n"
      "  qre_cli --text <job.json>   print single estimates as a text report\n"
      "  qre_cli --demo              run a built-in demonstration job\n"
      "  qre_cli -                   read the job document from stdin\n"
      "\n"
      "Job documents carry logicalCounts plus optional qubitParams, qecScheme,\n"
      "errorBudget, constraints, distillationUnitSpecifications, estimateType\n"
      "(singlePoint | frontier), and items[] for batched sweeps.\n");
}

}  // namespace

int main(int argc, char** argv) {
  bool text_mode = false;
  std::string path;
  bool demo = false;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--text") {
      text_mode = true;
    } else if (arg == "--demo") {
      demo = true;
    } else if (arg == "--help" || arg == "-h") {
      print_usage();
      return 0;
    } else {
      path = arg;
    }
  }
  if (!demo && path.empty()) {
    print_usage();
    return 0;
  }

  try {
    qre::json::Value job;
    if (demo) {
      job = qre::json::parse(kDemoJob);
    } else if (path == "-") {
      std::ostringstream ss;
      ss << std::cin.rdbuf();
      job = qre::json::parse(ss.str());
    } else {
      job = qre::json::parse_file(path);
    }

    if (text_mode && job.find("items") == nullptr) {
      qre::EstimationInput input = qre::estimation_input_from_json(job);
      qre::ResourceEstimate e = qre::estimate(input);
      std::printf("%s\n%s", qre::report_to_text(e).c_str(),
                  qre::space_diagram(e).c_str());
      return 0;
    }
    std::printf("%s\n", qre::run_job(job).pretty().c_str());
    return 0;
  } catch (const qre::Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
