// qre_cli — command-line front end of the estimator, consuming the same
// JSON job documents the cloud service accepts (paper Section IV-A), built
// on the v2 API façade (src/api/).
//
// Usage:
//   qre_cli <job.json>           run the job, print the JSON result
//   qre_cli --text <job.json>    single estimates as a human-readable report
//   qre_cli --response <job.json> print the full v2 response envelope
//   qre_cli --validate <job.json> dry-run schema check (diagnostics to stderr)
//   qre_cli --list-profiles      dump the profile registry as JSON
//   qre_cli --profile-pack <p.json>  register a profile pack before running
//   qre_cli --jobs N <job.json>  run batch/sweep items on N worker threads
//   qre_cli --stream <job.json>  emit batch results as NDJSON, one item/line
//   qre_cli --sweep <job.json>   expand the sweep grid without estimating
//   qre_cli --frontier <job.json> explore the adaptive Pareto frontier
//   qre_cli --no-cache / --cache-capacity N / --cache-stats   cache control
//   qre_cli --demo               run a built-in demonstration job
//   qre_cli --version            print the build and schema version
//   qre_cli -                    read the job document from stdin
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "api/api.hpp"
#include "common/error.hpp"
#include "common/version.hpp"
#include "core/job.hpp"
#include "report/report.hpp"
#include "service/engine.hpp"
#include "service/sweep.hpp"
#include "tfactory/factory_cache.hpp"

namespace {

const char* kDemoJob = R"({
  "schemaVersion": 2,
  "logicalCounts": {
    "numQubits": 100,
    "tCount": 1000000,
    "rotationCount": 30000,
    "rotationDepth": 11000,
    "cczCount": 250000,
    "measurementCount": 150000
  },
  "qubitParams": {"name": "qubit_maj_ns_e4"},
  "errorBudget": 0.001,
  "items": [
    {"qubitParams": {"name": "qubit_gate_ns_e3"}},
    {"qubitParams": {"name": "qubit_maj_ns_e6"}},
    {"estimateType": "frontier"}
  ]
})";

void print_usage(std::FILE* out) {
  std::fprintf(out,
               "qre_cli — fault-tolerant quantum resource estimation from JSON jobs\n"
               "\n"
               "usage:\n"
               "  qre_cli <job.json>          run the job, print the JSON result\n"
               "  qre_cli --text <job.json>   print single estimates as a text report\n"
               "  qre_cli --response <job.json>  print the full v2 response envelope\n"
               "                              {schemaVersion, success, diagnostics, result}\n"
               "  qre_cli --validate <job.json>  dry-run schema check: structured\n"
               "                              diagnostics to stderr, exit 0 (valid) / 1\n"
               "  qre_cli --list-profiles     dump the registry (qubit profiles, QEC\n"
               "                              schemes, distillation units) as JSON\n"
               "  qre_cli --profile-pack <pack.json>  register a JSON profile pack\n"
               "                              before the job runs (repeatable)\n"
               "  qre_cli --jobs N <job.json> run batch/sweep items on N worker threads\n"
               "  qre_cli --stream <job.json> emit batch results as NDJSON, one item per line\n"
               "  qre_cli --sweep <job.json>  expand the sweep grid and print the items\n"
               "                              without estimating (dry run)\n"
               "  qre_cli --frontier <job.json>  run the job as an adaptive Pareto\n"
               "                              frontier exploration (adds a default\n"
               "                              \"frontier\" section when absent); combine\n"
               "                              with --stream for one NDJSON line per probe\n"
               "  qre_cli --no-cache <job.json>  disable result memoization\n"
               "  qre_cli --cache-capacity N  bound the result cache to N entries\n"
               "                              (LRU eviction; 0 = unbounded)\n"
               "  qre_cli --cache-stats <job.json>  print cache hit/miss/eviction\n"
               "                              counters to stderr after the run\n"
               "  qre_cli --demo              run a built-in demonstration job\n"
               "  qre_cli --version           print the build and schema version\n"
               "  qre_cli --help, -h          print this help\n"
               "  qre_cli -                   read the job document from stdin\n"
               "\n"
               "Job documents follow schema v2 (docs/schema_v2.md): logicalCounts plus\n"
               "optional schemaVersion, qubitParams, qecScheme, errorBudget, constraints,\n"
               "distillationUnitSpecifications, estimateType (singlePoint | frontier),\n"
               "and items[] or a \"sweep\" parameter grid for batches, or a \"frontier\"\n"
               "section for adaptive Pareto exploration (docs/frontier.md). Documents\n"
               "without schemaVersion are treated as v1 and upgraded in place. Validation\n"
               "problems are reported as {severity, code, path, message} diagnostics\n"
               "with JSON-pointer paths.\n");
}

struct Options {
  bool text_mode = false;
  bool demo = false;
  bool stream = false;
  bool frontier = false;
  bool expand_only = false;
  bool use_cache = true;
  bool validate_only = false;
  bool list_profiles = false;
  bool response_envelope = false;
  bool cache_stats = false;
  std::size_t num_workers = 0;
  std::size_t cache_capacity = qre::service::EstimateCache::kDefaultCapacity;
  std::vector<std::string> profile_packs;
  std::string path;
};

/// Parses argv strictly: unknown flags and extra positional paths are
/// usage errors (exit code 2), not silently treated as file names.
int parse_args(int argc, char** argv, Options& opts) {
  bool have_path = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--text") {
      opts.text_mode = true;
    } else if (arg == "--demo") {
      opts.demo = true;
    } else if (arg == "--stream") {
      opts.stream = true;
    } else if (arg == "--sweep") {
      opts.expand_only = true;
    } else if (arg == "--frontier") {
      opts.frontier = true;
    } else if (arg == "--no-cache") {
      opts.use_cache = false;
    } else if (arg == "--cache-stats") {
      opts.cache_stats = true;
    } else if (arg == "--cache-capacity") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: --cache-capacity requires an entry count\n");
        return 2;
      }
      char* end = nullptr;
      const long n = std::strtol(argv[++i], &end, 10);
      if (end == nullptr || *end != '\0' || n < 0) {
        std::fprintf(stderr,
                     "error: --cache-capacity expects a non-negative integer, got '%s'\n",
                     argv[i]);
        return 2;
      }
      opts.cache_capacity = static_cast<std::size_t>(n);
    } else if (arg == "--validate") {
      opts.validate_only = true;
    } else if (arg == "--list-profiles") {
      opts.list_profiles = true;
    } else if (arg == "--response") {
      opts.response_envelope = true;
    } else if (arg == "--profile-pack") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: --profile-pack requires a file path\n");
        return 2;
      }
      opts.profile_packs.emplace_back(argv[++i]);
    } else if (arg == "--jobs") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: --jobs requires a worker count\n");
        return 2;
      }
      char* end = nullptr;
      const long n = std::strtol(argv[++i], &end, 10);
      if (end == nullptr || *end != '\0' || n < 1) {
        std::fprintf(stderr, "error: --jobs expects a positive integer, got '%s'\n",
                     argv[i]);
        return 2;
      }
      opts.num_workers = static_cast<std::size_t>(n);
    } else if (arg == "--version") {
      std::printf("qre_cli %s (schema v%d)\n", qre::version_string(),
                  qre::api::kSchemaVersion);
      std::exit(0);
    } else if (arg == "--help" || arg == "-h") {
      print_usage(stdout);
      std::exit(0);
    } else if (arg.size() > 1 && arg[0] == '-') {
      std::fprintf(stderr, "error: unknown option '%s'\n\n", arg.c_str());
      print_usage(stderr);
      return 2;
    } else {
      if (have_path) {
        std::fprintf(stderr,
                     "error: multiple job paths given ('%s' and '%s'); "
                     "qre_cli runs one job document per invocation\n",
                     opts.path.c_str(), arg.c_str());
        return 2;
      }
      opts.path = arg;
      have_path = true;
    }
  }
  if (!opts.demo && !have_path && !opts.list_profiles) {
    print_usage(stderr);
    return 2;
  }
  if (opts.demo && have_path) {
    std::fprintf(stderr, "error: --demo does not take a job path\n");
    return 2;
  }
  if (opts.validate_only && !opts.demo && !have_path) {
    std::fprintf(stderr, "error: --validate requires a job path\n");
    return 2;
  }
  if (opts.stream && opts.response_envelope) {
    std::fprintf(stderr,
                 "error: --stream and --response are mutually exclusive (both own stdout)\n");
    return 2;
  }
  if (opts.frontier && (opts.expand_only || opts.text_mode)) {
    std::fprintf(stderr,
                 "error: --frontier cannot be combined with --sweep or --text\n");
    return 2;
  }
  if (opts.list_profiles && (have_path || opts.demo || opts.validate_only)) {
    std::fprintf(stderr, "error: --list-profiles does not take a job\n");
    return 2;
  }
  return 0;
}

/// Prints diagnostics (one JSON object per line) to stderr.
void print_diagnostics(const qre::Diagnostics& diags) {
  for (const qre::Diagnostic& d : diags.entries()) {
    std::fprintf(stderr, "%s\n", d.to_json().dump().c_str());
  }
}

/// Prints the run's cache counters to stderr: the batch's estimate-cache
/// deltas (when the result carries batchStats) and the process-level
/// T-factory design cache.
void print_cache_stats(const qre::json::Value* result) {
  if (result != nullptr && result->is_object()) {
    if (const qre::json::Value* stats = result->find("batchStats")) {
      std::fprintf(stderr,
                   "estimate cache: %llu hits, %llu misses, %llu evictions\n",
                   static_cast<unsigned long long>(stats->at("cacheHits").as_uint()),
                   static_cast<unsigned long long>(stats->at("cacheMisses").as_uint()),
                   static_cast<unsigned long long>(stats->at("cacheEvictions").as_uint()));
    }
  }
  const qre::FactoryCache& factories = qre::FactoryCache::global();
  std::fprintf(stderr,
               "factory cache: %llu hits, %llu misses, %llu evictions, %zu/%zu entries%s\n",
               static_cast<unsigned long long>(factories.hits()),
               static_cast<unsigned long long>(factories.misses()),
               static_cast<unsigned long long>(factories.evictions()), factories.size(),
               factories.capacity(), factories.enabled() ? "" : " (disabled)");
}

}  // namespace

int main(int argc, char** argv) {
  Options opts;
  if (int status = parse_args(argc, argv, opts); status != 0) return status;

  try {
    qre::api::Registry& registry = qre::api::Registry::global();
    for (const std::string& pack_path : opts.profile_packs) {
      qre::Diagnostics pack_diags;
      registry.load_profile_pack(qre::json::parse_file(pack_path), pack_diags);
      print_diagnostics(pack_diags);
      if (pack_diags.has_errors()) {
        std::fprintf(stderr, "error: profile pack '%s' failed to load\n",
                     pack_path.c_str());
        return 1;
      }
    }

    if (opts.list_profiles) {
      std::printf("%s\n", registry.to_json().pretty().c_str());
      return 0;
    }

    qre::json::Value job;
    if (opts.demo) {
      job = qre::json::parse(kDemoJob);
    } else if (opts.path == "-") {
      std::ostringstream ss;
      ss << std::cin.rdbuf();
      job = qre::json::parse(ss.str());
    } else {
      job = qre::json::parse_file(opts.path);
    }

    // --frontier turns a plain single-estimate document into a frontier job
    // with default exploration options; documents already carrying a
    // "frontier" section keep theirs.
    if (opts.frontier && job.is_object() && job.find("frontier") == nullptr) {
      job.set("frontier", qre::json::Value(qre::json::Object{}));
    }

    if (opts.validate_only) {
      qre::api::EstimateRequest request = qre::api::EstimateRequest::parse(job, registry);
      if (request.ok()) {
        // Dry runs want everything that will fail, including per-item
        // problems the batch runner would otherwise isolate at run time.
        qre::api::validate_batch_items(request.document, registry, request.diagnostics);
      }
      print_diagnostics(request.diagnostics);
      if (request.ok()) {
        std::printf("valid (schema v2, %zu warning(s))\n",
                    request.diagnostics.size() - request.diagnostics.num_errors());
        return 0;
      }
      std::fprintf(stderr, "invalid: %zu error(s), %zu warning(s)\n",
                   request.diagnostics.num_errors(),
                   request.diagnostics.size() - request.diagnostics.num_errors());
      return 1;
    }

    if (opts.expand_only) {
      for (const qre::json::Value& item : qre::service::expand_sweep(job)) {
        std::printf("%s\n", item.dump().c_str());
      }
      return 0;
    }

    if (opts.text_mode && job.find("items") == nullptr && job.find("sweep") == nullptr &&
        job.find("frontier") == nullptr) {
      // Same leniency as the JSON path: typos warn (on stderr), errors list
      // everything wrong at once.
      qre::api::EstimateRequest request = qre::api::EstimateRequest::parse(job, registry);
      print_diagnostics(request.diagnostics);
      if (!request.ok()) {
        std::fprintf(stderr, "error: job document is invalid (%zu error(s))\n",
                     request.diagnostics.num_errors());
        return 1;
      }
      qre::Diagnostics sink;
      qre::EstimationInput input =
          qre::api::input_from_document(request.document, registry, &sink);
      qre::ResourceEstimate e = qre::estimate(input);
      std::printf("%s\n%s", qre::report_to_text(e).c_str(),
                  qre::space_diagram(e).c_str());
      if (opts.cache_stats) print_cache_stats(nullptr);
      return 0;
    }

    qre::service::EngineOptions engine;
    engine.num_workers = opts.num_workers;
    engine.use_cache = opts.use_cache;
    engine.cache_capacity = opts.cache_capacity;
    if (opts.stream) {
      engine.on_result = [](std::size_t index, const qre::json::Value& result) {
        qre::json::Object line;
        line.emplace_back("item", qre::json::Value(static_cast<std::uint64_t>(index)));
        line.emplace_back("result", result);
        std::printf("%s\n", qre::json::Value(std::move(line)).dump().c_str());
        std::fflush(stdout);
      };
    }

    qre::api::EstimateRequest request = qre::api::EstimateRequest::parse(job, registry);
    if (opts.response_envelope) {
      qre::api::EstimateResponse response = qre::api::run(request, engine, registry);
      std::printf("%s\n", response.to_json().pretty().c_str());
      if (opts.cache_stats) print_cache_stats(&response.result);
      return response.success ? 0 : 1;
    }
    print_diagnostics(request.diagnostics);  // warnings (and errors, below)
    if (!request.ok()) {
      std::fprintf(stderr, "error: job document is invalid (%zu error(s))\n",
                   request.diagnostics.num_errors());
      return 1;
    }
    qre::api::EstimateResponse response = qre::api::run(request, engine, registry);
    if (opts.cache_stats) print_cache_stats(&response.result);
    if (!response.success) {
      std::fprintf(stderr, "error: %s\n", response.diagnostics.summary().c_str());
      return 1;
    }
    if (opts.stream) {
      // Items (or frontier probes) already went to stdout line by line; the
      // run summary goes to stderr so piped NDJSON stays clean. Non-batch
      // jobs have no item lines, so their whole result still belongs on
      // stdout.
      const qre::json::Value* stats = response.result.find("batchStats");
      if (stats == nullptr) stats = response.result.find("frontierStats");
      if (stats != nullptr) {
        std::fprintf(stderr, "%s\n", stats->dump().c_str());
      } else {
        std::printf("%s\n", response.result.dump().c_str());
      }
      return 0;
    }
    std::printf("%s\n", response.result.pretty().c_str());
    return 0;
  } catch (const qre::Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
