// qre_cli — command-line front end of the estimator, consuming the same
// JSON job documents the cloud service accepts (paper Section IV-A).
//
// Usage:
//   qre_cli <job.json>           run the job, print the JSON result
//   qre_cli --text <job.json>    single estimates as a human-readable report
//   qre_cli --jobs N <job.json>  run batch/sweep items on N worker threads
//   qre_cli --stream <job.json>  emit batch results as NDJSON, one item/line
//   qre_cli --sweep <job.json>   expand the sweep grid without estimating
//   qre_cli --demo               run a built-in demonstration job
//   qre_cli -                    read the job document from stdin
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

#include "common/error.hpp"
#include "core/job.hpp"
#include "report/report.hpp"
#include "service/engine.hpp"
#include "service/sweep.hpp"

namespace {

const char* kDemoJob = R"({
  "logicalCounts": {
    "numQubits": 100,
    "tCount": 1000000,
    "rotationCount": 30000,
    "rotationDepth": 11000,
    "cczCount": 250000,
    "measurementCount": 150000
  },
  "qubitParams": {"name": "qubit_maj_ns_e4"},
  "errorBudget": 0.001,
  "items": [
    {"qubitParams": {"name": "qubit_gate_ns_e3"}},
    {"qubitParams": {"name": "qubit_maj_ns_e6"}},
    {"estimateType": "frontier"}
  ]
})";

void print_usage(std::FILE* out) {
  std::fprintf(out,
               "qre_cli — fault-tolerant quantum resource estimation from JSON jobs\n"
               "\n"
               "usage:\n"
               "  qre_cli <job.json>          run the job, print the JSON result\n"
               "  qre_cli --text <job.json>   print single estimates as a text report\n"
               "  qre_cli --jobs N <job.json> run batch/sweep items on N worker threads\n"
               "  qre_cli --stream <job.json> emit batch results as NDJSON, one item per line\n"
               "  qre_cli --sweep <job.json>  expand the sweep grid and print the items\n"
               "                              without estimating (dry run)\n"
               "  qre_cli --no-cache <job.json>  disable result memoization\n"
               "  qre_cli --demo              run a built-in demonstration job\n"
               "  qre_cli -                   read the job document from stdin\n"
               "\n"
               "Job documents carry logicalCounts plus optional qubitParams, qecScheme,\n"
               "errorBudget, constraints, distillationUnitSpecifications, estimateType\n"
               "(singlePoint | frontier), and items[] for batched sweeps. A \"sweep\"\n"
               "object maps field paths to value arrays or {start, stop, steps, scale}\n"
               "ranges and expands to the cartesian grid of items.\n");
}

struct Options {
  bool text_mode = false;
  bool demo = false;
  bool stream = false;
  bool expand_only = false;
  bool use_cache = true;
  std::size_t num_workers = 0;
  std::string path;
};

/// Parses argv strictly: unknown flags and extra positional paths are
/// usage errors (exit code 2), not silently treated as file names.
int parse_args(int argc, char** argv, Options& opts) {
  bool have_path = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--text") {
      opts.text_mode = true;
    } else if (arg == "--demo") {
      opts.demo = true;
    } else if (arg == "--stream") {
      opts.stream = true;
    } else if (arg == "--sweep") {
      opts.expand_only = true;
    } else if (arg == "--no-cache") {
      opts.use_cache = false;
    } else if (arg == "--jobs") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: --jobs requires a worker count\n");
        return 2;
      }
      char* end = nullptr;
      const long n = std::strtol(argv[++i], &end, 10);
      if (end == nullptr || *end != '\0' || n < 1) {
        std::fprintf(stderr, "error: --jobs expects a positive integer, got '%s'\n",
                     argv[i]);
        return 2;
      }
      opts.num_workers = static_cast<std::size_t>(n);
    } else if (arg == "--help" || arg == "-h") {
      print_usage(stdout);
      std::exit(0);
    } else if (arg.size() > 1 && arg[0] == '-') {
      std::fprintf(stderr, "error: unknown option '%s'\n\n", arg.c_str());
      print_usage(stderr);
      return 2;
    } else {
      if (have_path) {
        std::fprintf(stderr,
                     "error: multiple job paths given ('%s' and '%s'); "
                     "qre_cli runs one job document per invocation\n",
                     opts.path.c_str(), arg.c_str());
        return 2;
      }
      opts.path = arg;
      have_path = true;
    }
  }
  if (!opts.demo && !have_path) {
    print_usage(stderr);
    return 2;
  }
  if (opts.demo && have_path) {
    std::fprintf(stderr, "error: --demo does not take a job path\n");
    return 2;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Options opts;
  if (int status = parse_args(argc, argv, opts); status != 0) return status;

  try {
    qre::json::Value job;
    if (opts.demo) {
      job = qre::json::parse(kDemoJob);
    } else if (opts.path == "-") {
      std::ostringstream ss;
      ss << std::cin.rdbuf();
      job = qre::json::parse(ss.str());
    } else {
      job = qre::json::parse_file(opts.path);
    }

    if (opts.expand_only) {
      for (const qre::json::Value& item : qre::service::expand_sweep(job)) {
        std::printf("%s\n", item.dump().c_str());
      }
      return 0;
    }

    if (opts.text_mode && job.find("items") == nullptr && job.find("sweep") == nullptr) {
      qre::EstimationInput input = qre::estimation_input_from_json(job);
      qre::ResourceEstimate e = qre::estimate(input);
      std::printf("%s\n%s", qre::report_to_text(e).c_str(),
                  qre::space_diagram(e).c_str());
      return 0;
    }

    qre::service::EngineOptions engine;
    engine.num_workers = opts.num_workers;
    engine.use_cache = opts.use_cache;
    if (opts.stream) {
      engine.on_result = [](std::size_t index, const qre::json::Value& result) {
        qre::json::Object line;
        line.emplace_back("item", qre::json::Value(static_cast<std::uint64_t>(index)));
        line.emplace_back("result", result);
        std::printf("%s\n", qre::json::Value(std::move(line)).dump().c_str());
        std::fflush(stdout);
      };
    }

    qre::json::Value result = qre::run_job(job, engine);
    if (opts.stream) {
      // Items already went to stdout line by line; the batch summary goes
      // to stderr so piped NDJSON stays clean. Non-batch jobs have no item
      // lines, so their whole result still belongs on stdout.
      if (const qre::json::Value* stats = result.find("batchStats")) {
        std::fprintf(stderr, "%s\n", stats->dump().c_str());
      } else {
        std::printf("%s\n", result.dump().c_str());
      }
      return 0;
    }
    std::printf("%s\n", result.pretty().c_str());
    return 0;
  } catch (const qre::Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
