// qre_cli — command-line front end of the estimator, consuming the same
// JSON job documents the cloud service accepts (paper Section IV-A), built
// on the v2 API façade (src/api/).
//
// Usage:
//   qre_cli <job.json>           run the job, print the JSON result
//   qre_cli --text <job.json>    single estimates as a human-readable report
//   qre_cli --response <job.json> print the full v2 response envelope
//   qre_cli --validate <job.json> dry-run schema check (diagnostics to stderr)
//   qre_cli --list-profiles      dump the profile registry as JSON
//   qre_cli --profile-pack <p.json>  register a profile pack before running
//   qre_cli --jobs N <job.json>  run batch/sweep items on N worker threads
//   qre_cli --stream <job.json>  emit batch results as NDJSON, one item/line
//   qre_cli --sweep <job.json>   expand the sweep grid without estimating
//   qre_cli --frontier <job.json> explore the adaptive Pareto frontier
//   qre_cli --no-cache / --cache-capacity N / --cache-stats   cache control
//   qre_cli --cache-dir DIR      persistent estimate store (read/write-through)
//   qre_cli --timings <job.json> per-phase timing summary to stderr
//   qre_cli --trace-file PATH    write a Chrome-trace JSON of the run
//   qre_cli store <dump|info|merge|gc> ...   offline store tooling
//   qre_cli --demo               run a built-in demonstration job
//   qre_cli --version            print the build and schema version
//   qre_cli -                    read the job document from stdin
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "api/api.hpp"
#include "common/cancel.hpp"
#include "common/error.hpp"
#include "common/failpoint.hpp"
#include "common/trace.hpp"
#include "common/version.hpp"
#include "core/job.hpp"
#include "report/report.hpp"
#include "service/engine.hpp"
#include "service/sweep.hpp"
#include "store/estimate_store.hpp"
#include "tfactory/factory_cache.hpp"

namespace {

const char* kDemoJob = R"({
  "schemaVersion": 2,
  "logicalCounts": {
    "numQubits": 100,
    "tCount": 1000000,
    "rotationCount": 30000,
    "rotationDepth": 11000,
    "cczCount": 250000,
    "measurementCount": 150000
  },
  "qubitParams": {"name": "qubit_maj_ns_e4"},
  "errorBudget": 0.001,
  "items": [
    {"qubitParams": {"name": "qubit_gate_ns_e3"}},
    {"qubitParams": {"name": "qubit_maj_ns_e6"}},
    {"estimateType": "frontier"}
  ]
})";

void print_usage(std::FILE* out) {
  std::fprintf(out,
               "qre_cli — fault-tolerant quantum resource estimation from JSON jobs\n"
               "\n"
               "usage:\n"
               "  qre_cli <job.json>          run the job, print the JSON result\n"
               "  qre_cli --text <job.json>   print single estimates as a text report\n"
               "  qre_cli --response <job.json>  print the full v2 response envelope\n"
               "                              {schemaVersion, success, diagnostics, result}\n"
               "  qre_cli --validate <job.json>  dry-run schema check: structured\n"
               "                              diagnostics to stderr, exit 0 (valid) / 1\n"
               "  qre_cli --list-profiles     dump the registry (qubit profiles, QEC\n"
               "                              schemes, distillation units) as JSON\n"
               "  qre_cli --profile-pack <pack.json>  register a JSON profile pack\n"
               "                              before the job runs (repeatable)\n"
               "  qre_cli --jobs N <job.json> run batch/sweep items on N worker threads\n"
               "  qre_cli --stream <job.json> emit batch results as NDJSON, one item per line\n"
               "  qre_cli --sweep <job.json>  expand the sweep grid and print the items\n"
               "                              without estimating (dry run)\n"
               "  qre_cli --frontier <job.json>  run the job as an adaptive Pareto\n"
               "                              frontier exploration (adds a default\n"
               "                              \"frontier\" section when absent); combine\n"
               "                              with --stream for one NDJSON line per probe\n"
               "  qre_cli --no-cache <job.json>  disable result memoization\n"
               "  qre_cli --no-batch-kernel <job.json>  evaluate sweeps on the legacy\n"
               "                              scalar path instead of the SoA batch\n"
               "                              kernel (docs/performance.md)\n"
               "  qre_cli --cache-capacity N  bound the result cache to N entries\n"
               "                              (LRU eviction; 0 = unbounded)\n"
               "  qre_cli --cache-dir DIR     persistent estimate store: prewarm from\n"
               "                              DIR/estimates.qrestore, write new results\n"
               "                              through, persist atomically after the run\n"
               "                              (created if missing; docs/store.md)\n"
               "  qre_cli --cache-stats <job.json>  print one JSON document with the\n"
               "                              estimate-cache, factory-cache and (with\n"
               "                              --cache-dir) store counters to stderr\n"
               "  qre_cli --deadline S <job.json>  bound the run to S seconds: batch\n"
               "                              items past the deadline become per-item\n"
               "                              \"cancelled\" entries, single/frontier runs\n"
               "                              fail with a deadline-exceeded diagnostic\n"
               "                              (docs/robustness.md)\n"
               "  qre_cli --failpoints SPEC   arm fault-injection sites, e.g.\n"
               "                              'store.persist.before_rename=error' (also\n"
               "                              via QRE_FAILPOINTS; docs/robustness.md)\n"
               "  qre_cli --timings <job.json>  print a one-line JSON timing summary to\n"
               "                              stderr after the run: wall time, items/s,\n"
               "                              cache hit rate, p50/p99 item latency\n"
               "                              (docs/observability.md)\n"
               "  qre_cli --trace-file PATH   record spans during the run and write them\n"
               "                              as Chrome-trace JSON to PATH (loads in\n"
               "                              Perfetto / chrome://tracing)\n"
               "  qre_cli store dump <store>  print store records as NDJSON, one\n"
               "                              {\"key\", \"result\"} object per line\n"
               "  qre_cli store info <store>  print header/record statistics as JSON\n"
               "  qre_cli store merge <a> <b> [...] -o <out>  merge stores\n"
               "                              (last input wins on duplicate keys)\n"
               "  qre_cli store gc --max-bytes N <store> [-o <out>]  bound a store,\n"
               "                              dropping oldest records first (in place\n"
               "                              unless -o names an output)\n"
               "  qre_cli --demo              run a built-in demonstration job\n"
               "  qre_cli --version           print the build and schema version\n"
               "  qre_cli --help, -h          print this help\n"
               "  qre_cli -                   read the job document from stdin\n"
               "\n"
               "Job documents follow schema v2 (docs/schema_v2.md): logicalCounts plus\n"
               "optional schemaVersion, qubitParams, qecScheme, errorBudget, constraints,\n"
               "distillationUnitSpecifications, estimateType (singlePoint | frontier),\n"
               "and items[] or a \"sweep\" parameter grid for batches, or a \"frontier\"\n"
               "section for adaptive Pareto exploration (docs/frontier.md). Documents\n"
               "without schemaVersion are treated as v1 and upgraded in place. Validation\n"
               "problems are reported as {severity, code, path, message} diagnostics\n"
               "with JSON-pointer paths.\n");
}

struct Options {
  bool text_mode = false;
  bool demo = false;
  bool stream = false;
  bool frontier = false;
  bool expand_only = false;
  bool use_cache = true;
  bool use_batch_kernel = true;
  bool validate_only = false;
  bool list_profiles = false;
  bool response_envelope = false;
  bool cache_stats = false;
  std::size_t num_workers = 0;
  std::size_t cache_capacity = qre::service::EstimateCache::kDefaultCapacity;
  bool timings = false;
  double deadline_s = 0;  // 0 = unbounded
  std::string failpoints;
  std::string trace_file;
  std::string cache_dir;
  std::vector<std::string> profile_packs;
  std::string path;
};

/// Parses argv strictly: unknown flags and extra positional paths are
/// usage errors (exit code 2), not silently treated as file names.
int parse_args(int argc, char** argv, Options& opts) {
  bool have_path = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--text") {
      opts.text_mode = true;
    } else if (arg == "--demo") {
      opts.demo = true;
    } else if (arg == "--stream") {
      opts.stream = true;
    } else if (arg == "--sweep") {
      opts.expand_only = true;
    } else if (arg == "--frontier") {
      opts.frontier = true;
    } else if (arg == "--no-cache") {
      opts.use_cache = false;
    } else if (arg == "--no-batch-kernel") {
      opts.use_batch_kernel = false;
    } else if (arg == "--cache-stats") {
      opts.cache_stats = true;
    } else if (arg == "--cache-capacity") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: --cache-capacity requires an entry count\n");
        return 2;
      }
      char* end = nullptr;
      const long n = std::strtol(argv[++i], &end, 10);
      if (end == nullptr || *end != '\0' || n < 0) {
        std::fprintf(stderr,
                     "error: --cache-capacity expects a non-negative integer, got '%s'\n",
                     argv[i]);
        return 2;
      }
      opts.cache_capacity = static_cast<std::size_t>(n);
    } else if (arg == "--cache-dir") {
      if (i + 1 >= argc || argv[i + 1][0] == '\0') {
        std::fprintf(stderr, "error: --cache-dir requires a directory path\n");
        return 2;
      }
      opts.cache_dir = argv[++i];
    } else if (arg == "--validate") {
      opts.validate_only = true;
    } else if (arg == "--list-profiles") {
      opts.list_profiles = true;
    } else if (arg == "--response") {
      opts.response_envelope = true;
    } else if (arg == "--profile-pack") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: --profile-pack requires a file path\n");
        return 2;
      }
      opts.profile_packs.emplace_back(argv[++i]);
    } else if (arg == "--jobs") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: --jobs requires a worker count\n");
        return 2;
      }
      char* end = nullptr;
      const long n = std::strtol(argv[++i], &end, 10);
      if (end == nullptr || *end != '\0' || n < 1) {
        std::fprintf(stderr, "error: --jobs expects a positive integer, got '%s'\n",
                     argv[i]);
        return 2;
      }
      opts.num_workers = static_cast<std::size_t>(n);
    } else if (arg == "--deadline") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: --deadline requires a duration in seconds\n");
        return 2;
      }
      char* end = nullptr;
      const double seconds = std::strtod(argv[++i], &end);
      if (end == nullptr || *end != '\0' || !(seconds > 0)) {
        std::fprintf(stderr, "error: --deadline expects seconds > 0, got '%s'\n",
                     argv[i]);
        return 2;
      }
      opts.deadline_s = seconds;
    } else if (arg == "--failpoints") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: --failpoints requires a spec string\n");
        return 2;
      }
      opts.failpoints = argv[++i];
    } else if (arg == "--timings") {
      opts.timings = true;
    } else if (arg == "--trace-file") {
      if (i + 1 >= argc || argv[i + 1][0] == '\0') {
        std::fprintf(stderr, "error: --trace-file requires a file path\n");
        return 2;
      }
      opts.trace_file = argv[++i];
    } else if (arg == "--version") {
      std::printf("qre_cli %s (schema v%d)\n", qre::version_string(),
                  qre::api::kSchemaVersion);
      std::exit(0);
    } else if (arg == "--help" || arg == "-h") {
      print_usage(stdout);
      std::exit(0);
    } else if (arg.size() > 1 && arg[0] == '-') {
      std::fprintf(stderr, "error: unknown option '%s'\n\n", arg.c_str());
      print_usage(stderr);
      return 2;
    } else {
      if (have_path) {
        std::fprintf(stderr,
                     "error: multiple job paths given ('%s' and '%s'); "
                     "qre_cli runs one job document per invocation\n",
                     opts.path.c_str(), arg.c_str());
        return 2;
      }
      opts.path = arg;
      have_path = true;
    }
  }
  if (!opts.demo && !have_path && !opts.list_profiles) {
    print_usage(stderr);
    return 2;
  }
  if (opts.demo && have_path) {
    std::fprintf(stderr, "error: --demo does not take a job path\n");
    return 2;
  }
  if (opts.validate_only && !opts.demo && !have_path) {
    std::fprintf(stderr, "error: --validate requires a job path\n");
    return 2;
  }
  if (opts.stream && opts.response_envelope) {
    std::fprintf(stderr,
                 "error: --stream and --response are mutually exclusive (both own stdout)\n");
    return 2;
  }
  if (opts.frontier && (opts.expand_only || opts.text_mode)) {
    std::fprintf(stderr,
                 "error: --frontier cannot be combined with --sweep or --text\n");
    return 2;
  }
  if (opts.list_profiles && (have_path || opts.demo || opts.validate_only)) {
    std::fprintf(stderr, "error: --list-profiles does not take a job\n");
    return 2;
  }
  return 0;
}

/// Prints diagnostics (one JSON object per line) to stderr.
void print_diagnostics(const qre::Diagnostics& diags) {
  for (const qre::Diagnostic& d : diags.entries()) {
    std::fprintf(stderr, "%s\n", d.to_json().dump().c_str());
  }
}

/// Prints the run's cache counters to stderr as ONE JSON document covering
/// every caching tier: the engine's estimate cache, the process-level
/// T-factory design cache, and (when --cache-dir wired one) the persistent
/// store.
void print_cache_stats(const qre::service::Engine& engine,
                       const qre::store::EstimateStore* store) {
  const qre::service::EstimateCache& estimates = engine.cache();
  const qre::FactoryCache& factories = qre::FactoryCache::global();

  qre::json::Object out;
  out.emplace_back("estimateCache", qre::service::cache_counters_to_json(
                                        estimates.hits(), estimates.misses(),
                                        estimates.evictions(), estimates.size(),
                                        estimates.capacity()));
  qre::json::Value factory_stats = qre::service::cache_counters_to_json(
      factories.hits(), factories.misses(), factories.evictions(), factories.size(),
      factories.capacity());
  factory_stats.as_object().emplace_back("enabled", qre::json::Value(factories.enabled()));
  out.emplace_back("factoryCache", std::move(factory_stats));
  if (store != nullptr) {
    out.emplace_back("store", store->stats_to_json());
  } else {
    qre::json::Object disabled;
    disabled.emplace_back("enabled", qre::json::Value(false));
    out.emplace_back("store", qre::json::Value(std::move(disabled)));
  }
  std::fprintf(stderr, "%s\n", qre::json::Value(std::move(out)).dump().c_str());
}

/// One JSON line (stderr) summarizing the run for qre_cli --timings:
/// throughput, cache effectiveness, and item-latency percentiles. Batch and
/// sweep runs have "engine.item" samples; single estimates report items: 0
/// (the wall time still covers the whole run).
void print_timings_summary(const qre::trace::Collector& timings,
                           const qre::service::Engine& engine, double wall_ms) {
  const std::vector<std::int64_t> items = timings.samples("engine.item");
  const std::uint64_t hits = engine.cache().hits();
  const std::uint64_t misses = engine.cache().misses();
  const std::uint64_t lookups = hits + misses;
  qre::json::Object out;
  out.emplace_back("wallMs", qre::json::Value(wall_ms));
  out.emplace_back("items",
                   qre::json::Value(static_cast<std::uint64_t>(items.size())));
  out.emplace_back(
      "itemsPerSec",
      qre::json::Value(wall_ms > 0
                           ? static_cast<double>(items.size()) * 1000.0 / wall_ms
                           : 0.0));
  out.emplace_back(
      "cacheHitRate",
      qre::json::Value(lookups > 0
                           ? static_cast<double>(hits) / static_cast<double>(lookups)
                           : 0.0));
  out.emplace_back("p50ItemMs", qre::json::Value(
                                    qre::trace::Collector::percentile(items, 50) / 1e6));
  out.emplace_back("p99ItemMs", qre::json::Value(
                                    qre::trace::Collector::percentile(items, 99) / 1e6));
  std::fprintf(stderr, "timings: %s\n",
               qre::json::Value(std::move(out)).dump().c_str());
}

// ------------------------------------------------------- store tooling ---

void print_store_usage(std::FILE* out) {
  std::fprintf(out,
               "usage:\n"
               "  qre_cli store dump <store>                    NDJSON record dump\n"
               "  qre_cli store info <store>                    header/record stats\n"
               "  qre_cli store merge <a> <b> [...] -o <out>    last-wins merge\n"
               "  qre_cli store gc --max-bytes N <store> [-o <out>]  bound a store\n");
}

/// Dispatches `qre_cli store <subcommand> ...`; argv[0] is "store".
int run_store_command(int argc, char** argv) {
  if (argc < 2) {
    print_store_usage(stderr);
    return 2;
  }
  const std::string sub = argv[1];

  // Shared flag scan: positional paths, -o output, --max-bytes bound.
  std::vector<std::string> paths;
  std::string output;
  long long max_bytes = -1;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "-o") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: -o requires an output path\n");
        return 2;
      }
      output = argv[++i];
    } else if (arg == "--max-bytes") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: --max-bytes requires a byte count\n");
        return 2;
      }
      char* end = nullptr;
      max_bytes = std::strtoll(argv[++i], &end, 10);
      if (end == nullptr || *end != '\0' || max_bytes < 0) {
        std::fprintf(stderr, "error: --max-bytes expects a non-negative integer\n");
        return 2;
      }
    } else if (arg.size() > 1 && arg[0] == '-') {
      std::fprintf(stderr, "error: unknown store option '%s'\n\n", arg.c_str());
      print_store_usage(stderr);
      return 2;
    } else {
      paths.push_back(arg);
    }
  }

  if (sub == "dump") {
    if (paths.size() != 1 || !output.empty() || max_bytes >= 0) {
      print_store_usage(stderr);
      return 2;
    }
    qre::store::StoreReader reader(paths[0]);
    const std::size_t skipped =
        reader.for_each([](std::string_view key, std::string_view value) {
          qre::json::Object line;
          line.emplace_back("key", qre::json::parse(key));
          line.emplace_back("result", qre::json::parse(value));
          std::printf("%s\n", qre::json::Value(std::move(line)).dump().c_str());
        });
    if (skipped != 0) {
      std::fprintf(stderr, "store: skipped %zu corrupt record(s)\n", skipped);
    }
    return 0;
  }

  if (sub == "info") {
    if (paths.size() != 1 || !output.empty() || max_bytes >= 0) {
      print_store_usage(stderr);
      return 2;
    }
    qre::store::StoreReader reader(paths[0]);
    // Full scan so corrupt records are counted, not just declared totals.
    std::size_t intact = 0;
    const std::size_t skipped = reader.for_each(
        [&intact](std::string_view, std::string_view) { ++intact; });
    qre::json::Object info;
    info.emplace_back("path", paths[0]);
    info.emplace_back("formatVersion",
                      qre::json::Value(static_cast<std::uint64_t>(reader.header().version)));
    info.emplace_back("records", qre::json::Value(static_cast<std::uint64_t>(intact)));
    info.emplace_back("corruptRecords",
                      qre::json::Value(static_cast<std::uint64_t>(skipped)));
    info.emplace_back("indexSlots", qre::json::Value(reader.header().slot_count));
    info.emplace_back("fileBytes", qre::json::Value(reader.file_bytes()));
    info.emplace_back("payloadBytes", qre::json::Value(reader.payload_bytes()));
    std::printf("%s\n", qre::json::Value(std::move(info)).pretty().c_str());
    return skipped == 0 ? 0 : 1;
  }

  if (sub == "merge") {
    if (paths.size() < 2 || output.empty() || max_bytes >= 0) {
      std::fprintf(stderr, "error: store merge needs two or more inputs and -o <out>\n");
      return 2;
    }
    const std::size_t records = qre::store::merge_store_files(paths, output);
    std::fprintf(stderr, "store: merged %zu input(s) into %s (%zu record(s))\n",
                 paths.size(), output.c_str(), records);
    return 0;
  }

  if (sub == "gc") {
    if (paths.size() != 1 || max_bytes < 0) {
      std::fprintf(stderr, "error: store gc needs --max-bytes N and one store path\n");
      return 2;
    }
    const std::string out_path = output.empty() ? paths[0] : output;
    const std::size_t kept = qre::store::gc_store_file(
        paths[0], out_path, static_cast<std::uint64_t>(max_bytes));
    std::fprintf(stderr, "store: kept %zu record(s) in %s\n", kept, out_path.c_str());
    return 0;
  }

  std::fprintf(stderr, "error: unknown store subcommand '%s'\n\n", sub.c_str());
  print_store_usage(stderr);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  // `qre_cli store ...` is its own tool family (offline store inspection);
  // it never loads a job document or touches the estimator.
  if (argc >= 2 && std::string(argv[1]) == "store") {
    try {
      return run_store_command(argc - 1, argv + 1);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return 1;
    }
  }

  Options opts;
  if (int status = parse_args(argc, argv, opts); status != 0) return status;

  try {
    // Fault injection arms before the job loads: a bad spec is a usage-time
    // error, and every seam below (store open, engine evaluate) is covered.
    qre::failpoint::configure_from_env();
    qre::failpoint::configure(opts.failpoints);

    // Tracing likewise spans the whole invocation, so profile-pack loading
    // and store prewarming show up in the exported timeline too.
    if (!opts.trace_file.empty()) qre::trace::enable();

    qre::api::Registry& registry = qre::api::Registry::global();
    for (const std::string& pack_path : opts.profile_packs) {
      qre::Diagnostics pack_diags;
      registry.load_profile_pack(qre::json::parse_file(pack_path), pack_diags);
      print_diagnostics(pack_diags);
      if (pack_diags.has_errors()) {
        std::fprintf(stderr, "error: profile pack '%s' failed to load\n",
                     pack_path.c_str());
        return 1;
      }
    }

    if (opts.list_profiles) {
      std::printf("%s\n", registry.to_json().pretty().c_str());
      return 0;
    }

    qre::json::Value job;
    if (opts.demo) {
      job = qre::json::parse(kDemoJob);
    } else if (opts.path == "-") {
      std::ostringstream ss;
      ss << std::cin.rdbuf();
      job = qre::json::parse(ss.str());
    } else {
      job = qre::json::parse_file(opts.path);
    }

    // --frontier turns a plain single-estimate document into a frontier job
    // with default exploration options; documents already carrying a
    // "frontier" section keep theirs.
    if (opts.frontier && job.is_object() && job.find("frontier") == nullptr) {
      job.set("frontier", qre::json::Value(qre::json::Object{}));
    }

    if (opts.validate_only) {
      qre::api::EstimateRequest request = qre::api::EstimateRequest::parse(job, registry);
      if (request.ok()) {
        // Dry runs want everything that will fail, including per-item
        // problems the batch runner would otherwise isolate at run time.
        qre::api::validate_batch_items(request.document, registry, request.diagnostics);
      }
      print_diagnostics(request.diagnostics);
      if (request.ok()) {
        std::printf("valid (schema v2, %zu warning(s))\n",
                    request.diagnostics.size() - request.diagnostics.num_errors());
        return 0;
      }
      std::fprintf(stderr, "invalid: %zu error(s), %zu warning(s)\n",
                   request.diagnostics.num_errors(),
                   request.diagnostics.size() - request.diagnostics.num_errors());
      return 1;
    }

    if (opts.expand_only) {
      for (const qre::json::Value& item : qre::service::expand_sweep(job)) {
        std::printf("%s\n", item.dump().c_str());
      }
      return 0;
    }

    // One engine for the whole invocation, optionally backed by the
    // persistent store: previously seen jobs replay from disk (zero raw
    // estimates), new results are written through and persisted after the
    // run.
    qre::service::EngineOptions engine_options;
    engine_options.num_workers = opts.num_workers;
    engine_options.use_cache = opts.use_cache;
    engine_options.use_batch_kernel = opts.use_batch_kernel;
    engine_options.cache_capacity = opts.cache_capacity;
    qre::service::Engine engine(engine_options);

    std::unique_ptr<qre::store::EstimateStore> store;
    if (!opts.cache_dir.empty()) {
      qre::store::ensure_directory(opts.cache_dir);
      store = std::make_unique<qre::store::EstimateStore>(opts.cache_dir);
      const qre::store::LoadResult loaded = store->load();
      if (!loaded.usable && loaded.file_found) {
        std::fprintf(stderr, "%s — starting cold\n", loaded.message.c_str());
      }
      engine.set_store(store.get());
    }
    // Persists new results (if any), prints --cache-stats / --timings, and
    // writes the --trace-file export; every run path below funnels through
    // here before returning.
    qre::trace::Collector timings;
    const auto run_started = std::chrono::steady_clock::now();
    auto finish_run = [&] {
      if (store != nullptr) store->persist();
      if (opts.cache_stats) print_cache_stats(engine, store.get());
      if (opts.timings) {
        const double wall_ms = std::chrono::duration<double, std::milli>(
                                   std::chrono::steady_clock::now() - run_started)
                                   .count();
        print_timings_summary(timings, engine, wall_ms);
      }
      if (!opts.trace_file.empty() && !qre::trace::write_chrome_json(opts.trace_file)) {
        std::fprintf(stderr, "error: cannot write trace file '%s'\n",
                     opts.trace_file.c_str());
      }
    };

    if (opts.text_mode && job.find("items") == nullptr && job.find("sweep") == nullptr &&
        job.find("frontier") == nullptr) {
      // Same leniency as the JSON path: typos warn (on stderr), errors list
      // everything wrong at once.
      qre::api::EstimateRequest request = qre::api::EstimateRequest::parse(job, registry);
      print_diagnostics(request.diagnostics);
      if (!request.ok()) {
        std::fprintf(stderr, "error: job document is invalid (%zu error(s))\n",
                     request.diagnostics.num_errors());
        return 1;
      }
      qre::Diagnostics sink;
      qre::EstimationInput input =
          qre::api::input_from_document(request.document, registry, &sink);
      qre::ResourceEstimate e = qre::estimate(input);
      std::printf("%s\n%s", qre::report_to_text(e).c_str(),
                  qre::space_diagram(e).c_str());
      finish_run();
      return 0;
    }

    qre::service::EngineOptions run_options = engine.options();
    if (opts.timings) run_options.timings = &timings;
    if (opts.deadline_s > 0) {
      // Offline runs share the server's deadline semantics: batch items past
      // the deadline report per-item "cancelled" entries, single/frontier
      // runs fail with a deadline-exceeded diagnostic (docs/robustness.md).
      run_options.cancel = qre::CancelToken().with_deadline(opts.deadline_s);
    }
    if (opts.stream) {
      run_options.on_result = [](std::size_t index, const qre::json::Value& result) {
        qre::json::Object line;
        line.emplace_back("item", qre::json::Value(static_cast<std::uint64_t>(index)));
        line.emplace_back("result", result);
        std::printf("%s\n", qre::json::Value(std::move(line)).dump().c_str());
        std::fflush(stdout);
      };
    }

    qre::api::EstimateRequest request = qre::api::EstimateRequest::parse(job, registry);
    if (opts.response_envelope) {
      qre::api::EstimateResponse response = qre::api::run(request, run_options, registry);
      std::printf("%s\n", response.to_json().pretty().c_str());
      finish_run();
      return response.success ? 0 : 1;
    }
    print_diagnostics(request.diagnostics);  // warnings (and errors, below)
    if (!request.ok()) {
      std::fprintf(stderr, "error: job document is invalid (%zu error(s))\n",
                   request.diagnostics.num_errors());
      return 1;
    }
    qre::api::EstimateResponse response = qre::api::run(request, run_options, registry);
    finish_run();
    if (!response.success) {
      std::fprintf(stderr, "error: %s\n", response.diagnostics.summary().c_str());
      return 1;
    }
    if (opts.stream) {
      // Items (or frontier probes) already went to stdout line by line; the
      // run summary goes to stderr so piped NDJSON stays clean. Non-batch
      // jobs have no item lines, so their whole result still belongs on
      // stdout.
      const qre::json::Value* stats = response.result.find("batchStats");
      if (stats == nullptr) stats = response.result.find("frontierStats");
      if (stats != nullptr) {
        std::fprintf(stderr, "%s\n", stats->dump().c_str());
      } else {
        std::printf("%s\n", response.result.dump().c_str());
      }
      return 0;
    }
    std::printf("%s\n", response.result.pretty().c_str());
    return 0;
  } catch (const qre::Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
