// qre_lint — project-invariant linter (standard library only).
//
// Checks the cross-file invariants that neither the compiler nor clang-tidy
// can see, because each one spans source, docs, and tests:
//
//   1. Job kinds. The canonical kind table (api::job_kinds in
//      src/api/schema.cpp: "items", "sweep", "frontier") must be handled by
//      the validator, described in docs/schema_v2.md, and exercised by at
//      least one test — adding a kind to the table without teaching all
//      three layers fails the lint.
//   2. Diagnostic codes. The code table in src/common/diagnostics.hpp's
//      header comment is the registry: codes must be unique, every code
//      referenced from a diagnostics/error-response call site must exist in
//      the registry or the server error-code docs, and every registry code
//      must be documented in docs/schema_v2.md.
//   3. Header hygiene. Every header under src/ must start include-guarding
//      with `#pragma once` (whether each header actually compiles
//      standalone is the separate `header_self_containment` ctest target).
//   4. CLI flags. Every long flag parsed by tools/qre_cli.cpp and
//      tools/qre_serve.cpp (the `arg == "--x"` idiom) must appear in that
//      tool's --help text and in README.md or docs/ — the static
//      generalization of scripts/check_cli_help.sh, which checks the same
//      property against the built binaries at test time.
//   5. Failpoints. Every QRE_FAILPOINT("name") site in src/ must use a
//      unique name (one site per seam — a spec term arms exactly one
//      place), and every name must be catalogued with a backticked entry
//      in docs/robustness.md; conversely every catalogued name must still
//      exist in the code.
//   6. Observability names. The trace span/instant names instrumented in
//      src/ (QRE_TRACE_SPAN, QRE_TRACE_INSTANT, record_span, PhaseTimer)
//      and the /metrics → Prometheus rows of kMetricsCatalog
//      (src/server/prometheus.cpp) must each appear in the matching table
//      of docs/observability.md, and every name the doc tables carry must
//      still exist in the code — both directions, so the doc is the
//      registry and can never silently rot.
//
// Usage: qre_lint <repo-root>       (exit 0 clean, 1 findings, 2 usage/IO)
//
// Run via `ctest -R qre_lint`, `scripts/qre_lint.sh`, or the CI
// static-analysis job. Conventions: docs/static_analysis.md.
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <regex>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace {

namespace fs = std::filesystem;

int g_findings = 0;

void finding(const std::string& where, const std::string& message) {
  std::fprintf(stderr, "qre_lint: %s: %s\n", where.c_str(), message.c_str());
  ++g_findings;
}

std::string read_file(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    finding(path.string(), "cannot read file");
    return {};
  }
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

std::vector<fs::path> collect(const fs::path& root, const std::string& extension) {
  std::vector<fs::path> out;
  if (!fs::exists(root)) return out;
  for (const fs::directory_entry& entry : fs::recursive_directory_iterator(root)) {
    if (entry.is_regular_file() && entry.path().extension() == extension) {
      out.push_back(entry.path());
    }
  }
  return out;
}

/// All capture-group-1 matches of `re` in `text`.
std::vector<std::string> find_all(const std::string& text, const std::regex& re) {
  std::vector<std::string> out;
  for (auto it = std::sregex_iterator(text.begin(), text.end(), re);
       it != std::sregex_iterator(); ++it) {
    out.push_back((*it)[1].str());
  }
  return out;
}

// ---------------------------------------------------------------------------
// 1. Job kinds: table parsed from schema.cpp; each kind must reach the
//    validator, the schema docs, and the tests.

std::vector<std::string> parse_job_kinds(const std::string& schema_cpp,
                                         const std::string& where) {
  // Matches the body of: kKinds = {"items", "sweep", "frontier"};
  const std::regex table_re(R"(kKinds\s*=\s*\{([^}]*)\})");
  std::smatch m;
  if (!std::regex_search(schema_cpp, m, table_re)) {
    finding(where, "cannot locate the kKinds job-kind table (job_kinds())");
    return {};
  }
  const std::string body = m[1].str();
  std::vector<std::string> kinds = find_all(body, std::regex(R"#("([a-z]+)")#"));
  if (kinds.empty()) finding(where, "job-kind table parsed empty");
  return kinds;
}

void check_job_kinds(const fs::path& root) {
  const fs::path schema_path = root / "src/api/schema.cpp";
  const std::string schema_cpp = read_file(schema_path);
  const std::vector<std::string> kinds = parse_job_kinds(schema_cpp, schema_path.string());

  const std::string schema_docs = read_file(root / "docs/schema_v2.md");
  std::string all_tests;
  for (const fs::path& test : collect(root / "tests", ".cpp")) all_tests += read_file(test);

  for (const std::string& kind : kinds) {
    const std::string quoted = "\"" + kind + "\"";
    // Validator rule: validate_job must look the section up by name
    // (find("kind")) somewhere beyond the table itself.
    const std::regex lookup_re("find\\(\"" + kind + "\"\\)");
    if (!std::regex_search(schema_cpp, lookup_re)) {
      finding(schema_path.string(),
              "job kind '" + kind + "' has no validator lookup (find(" + quoted + "))");
    }
    if (schema_docs.find("`" + kind + "`") == std::string::npos &&
        schema_docs.find(quoted) == std::string::npos) {
      finding("docs/schema_v2.md", "job kind '" + kind + "' is not documented");
    }
    if (all_tests.find(quoted) == std::string::npos) {
      finding("tests/", "job kind '" + kind + "' appears in no test");
    }
  }
}

// ---------------------------------------------------------------------------
// 2. Diagnostic codes: registry in diagnostics.hpp's header comment; call
//    sites must reference registered (or server-documented) codes only.

std::vector<std::string> parse_code_registry(const std::string& header,
                                             const std::string& where) {
  // Table rows look like: "//   required-missing     a mandatory field ..."
  const std::regex row_re(R"(//   ([a-z][a-z-]*[a-z])\s{2,}\S)");
  std::vector<std::string> codes = find_all(header, row_re);
  if (codes.empty()) {
    finding(where, "cannot parse the diagnostic-code table from the header comment");
  }
  return codes;
}

void check_error_codes(const fs::path& root) {
  const fs::path registry_path = root / "src/common/diagnostics.hpp";
  const std::vector<std::string> registry =
      parse_code_registry(read_file(registry_path), registry_path.string());

  std::set<std::string> known;
  for (const std::string& code : registry) {
    if (!known.insert(code).second) {
      finding(registry_path.string(), "duplicate diagnostic code '" + code + "'");
    }
  }

  // The HTTP layer has its own (documented) code namespace on top of the
  // diagnostics registry: accept codes listed in docs/server.md too.
  const std::string server_docs = read_file(root / "docs/server.md");
  const std::string schema_docs = read_file(root / "docs/schema_v2.md");

  // Literal-code call sites. Multi-line calls are handled by matching the
  // whole file content (\s* spans newlines).
  const std::vector<std::regex> site_res = {
      std::regex(R"#((?:\.|->)(?:error|warning)\(\s*"([a-z][a-z-]*)")#"),
      std::regex(R"#(item_error\(\s*"([a-z][a-z-]*)")#"),
      std::regex(R"#(error_response\(\s*[0-9]+\s*,\s*"([a-z][a-z-]*)")#"),
      std::regex(R"#(error_document\(\s*"([a-z][a-z-]*)")#"),
  };

  std::set<std::string> referenced;
  for (const fs::path& dir : {root / "src", root / "tools"}) {
    for (const fs::path& source : collect(dir, ".cpp")) {
      const std::string text = read_file(source);
      for (const std::regex& re : site_res) {
        for (const std::string& code : find_all(text, re)) {
          referenced.insert(code);
          if (known.count(code) == 0 &&
              server_docs.find("`" + code + "`") == std::string::npos) {
            finding(source.string(),
                    "diagnostic code '" + code +
                        "' is neither in the diagnostics.hpp table nor documented "
                        "in docs/server.md");
          }
        }
      }
    }
  }

  for (const std::string& code : registry) {
    if (schema_docs.find("`" + code + "`") == std::string::npos) {
      finding("docs/schema_v2.md", "registered code '" + code + "' is not documented");
    }
    if (referenced.count(code) == 0) {
      finding(registry_path.string(),
              "registered code '" + code + "' is emitted by no call site (dead code?)");
    }
  }
}

// ---------------------------------------------------------------------------
// 3. Header hygiene: #pragma once in every src/ header.

void check_headers(const fs::path& root) {
  for (const fs::path& header : collect(root / "src", ".hpp")) {
    if (read_file(header).find("#pragma once") == std::string::npos) {
      finding(header.string(), "missing #pragma once");
    }
  }
}

// ---------------------------------------------------------------------------
// 4. CLI flags: parsed => in --help text and in README/docs.

void check_cli_flags(const fs::path& root) {
  std::string docs = read_file(root / "README.md");
  for (const fs::path& doc : collect(root / "docs", ".md")) docs += read_file(doc);

  const std::regex parse_re(R"#(arg == "(--[a-z][a-z0-9-]*)")#");
  for (const char* tool : {"tools/qre_cli.cpp", "tools/qre_serve.cpp"}) {
    const fs::path tool_path = root / tool;
    const std::string text = read_file(tool_path);
    std::set<std::string> flags;
    for (const std::string& flag : find_all(text, parse_re)) flags.insert(flag);
    if (flags.empty()) {
      finding(tool_path.string(), "no parsed flags found (arg == \"--x\" idiom moved?)");
    }
    for (const std::string& flag : flags) {
      // In the help text the flag is followed by a space/metavar, never by
      // the closing quote of an `arg == "--x"` comparison.
      const std::regex help_re(flag + R"([^"a-z0-9-])");
      if (!std::regex_search(text, help_re)) {
        finding(tool_path.string(), "flag " + flag + " is parsed but not in the usage text");
      }
      if (docs.find(flag) == std::string::npos) {
        finding(tool_path.string(),
                "flag " + flag + " is parsed but appears in neither README.md nor docs/");
      }
    }
  }
}

// ---------------------------------------------------------------------------
// 5. Failpoints: QRE_FAILPOINT sites unique and catalogued in
//    docs/robustness.md; no stale catalog entries.

void check_failpoints(const fs::path& root) {
  const std::regex site_re(R"#(QRE_FAILPOINT\(\s*"([a-z0-9_.]+)"\s*\))#");
  std::set<std::string> sites;
  for (const fs::path& source : collect(root / "src", ".cpp")) {
    const std::string text = read_file(source);
    for (const std::string& name : find_all(text, site_re)) {
      if (!sites.insert(name).second) {
        finding(source.string(),
                "failpoint '" + name + "' is defined at more than one site "
                "(names must map to exactly one seam)");
      }
    }
  }

  const fs::path catalog_path = root / "docs/robustness.md";
  const std::string catalog = read_file(catalog_path);
  // Catalogued names lead a markdown table row (| `store.persist...` | ...),
  // which keeps backticked filenames elsewhere in the doc out of the parse.
  const std::regex doc_re(R"#(\|\s*`([a-z0-9_]+(?:\.[a-z0-9_]+)+)`)#");
  std::set<std::string> documented;
  for (const std::string& name : find_all(catalog, doc_re)) documented.insert(name);

  for (const std::string& name : sites) {
    if (documented.count(name) == 0) {
      finding(catalog_path.string(),
              "failpoint '" + name + "' exists in the code but is not catalogued");
    }
  }
  for (const std::string& name : documented) {
    if (sites.count(name) == 0) {
      finding(catalog_path.string(),
              "catalogued failpoint '" + name + "' matches no QRE_FAILPOINT site");
    }
  }
}

// ---------------------------------------------------------------------------
// 6. Observability names: trace spans and Prometheus catalog rows ↔
//    docs/observability.md, both directions.

void check_observability(const fs::path& root) {
  const fs::path doc_path = root / "docs/observability.md";
  const std::string doc = read_file(doc_path);

  // -- trace span/instant names instrumented anywhere under src/ ----------
  const std::vector<std::regex> span_res = {
      std::regex(R"#(QRE_TRACE_SPAN\(\s*"([a-z0-9_.]+)"\s*\))#"),
      std::regex(R"#(QRE_TRACE_INSTANT\(\s*"([a-z0-9_.]+)"\s*\))#"),
      std::regex(R"#(record_span\(\s*"([a-z0-9_.]+)")#"),
      std::regex(R"#(PhaseTimer\s+\w+\(\s*\w+,\s*"([a-z0-9_.]+)")#"),
  };
  std::set<std::string> spans;
  for (const fs::path& source : collect(root / "src", ".cpp")) {
    const std::string text = read_file(source);
    for (const std::regex& re : span_res) {
      for (const std::string& name : find_all(text, re)) spans.insert(name);
    }
  }
  if (spans.empty()) {
    finding("src/", "no trace span names found (instrumentation idiom moved?)");
  }

  // -- kMetricsCatalog rows: {"json.path", "qre_family", ...} -------------
  const fs::path catalog_path = root / "src/server/prometheus.cpp";
  const std::string catalog_cpp = read_file(catalog_path);
  const std::regex row_re(R"#(\{\s*"([A-Za-z0-9_.]+)",\s*"(qre_[a-z_]+)")#");
  std::set<std::string> catalog_paths;
  std::set<std::string> catalog_families;
  std::set<std::string> catalog_pairs;
  for (auto it = std::sregex_iterator(catalog_cpp.begin(), catalog_cpp.end(), row_re);
       it != std::sregex_iterator(); ++it) {
    catalog_paths.insert((*it)[1].str());
    catalog_families.insert((*it)[2].str());
    catalog_pairs.insert((*it)[1].str() + " -> " + (*it)[2].str());
  }
  if (catalog_pairs.empty()) {
    finding(catalog_path.string(), "cannot parse any kMetricsCatalog row");
  }

  // -- the doc's tables ----------------------------------------------------
  // Dotted names leading a table row cover both the span taxonomy and the
  // JSON-path column of the Prometheus mapping (same anchor as the
  // failpoint catalog, so backticked filenames in prose stay out).
  const std::regex doc_dotted_re(R"#(\|\s*`([a-z0-9_]+(?:\.[a-z0-9_]+)+)`)#");
  std::set<std::string> doc_dotted;
  for (const std::string& name : find_all(doc, doc_dotted_re)) doc_dotted.insert(name);
  // Mapping rows pair the path cell with the family cell.
  const std::regex doc_pair_re(R"#(`([A-Za-z0-9_.]+)`\s*\|\s*`(qre_[a-z_]+)`)#");
  std::set<std::string> doc_pairs;
  for (auto it = std::sregex_iterator(doc.begin(), doc.end(), doc_pair_re);
       it != std::sregex_iterator(); ++it) {
    doc_pairs.insert((*it)[1].str() + " -> " + (*it)[2].str());
  }

  for (const std::string& name : spans) {
    if (doc_dotted.count(name) == 0) {
      finding(doc_path.string(),
              "trace span '" + name + "' is instrumented but not in the span table");
    }
  }
  for (const std::string& pair : catalog_pairs) {
    if (doc_pairs.count(pair) == 0) {
      finding(doc_path.string(),
              "metrics mapping '" + pair + "' is in kMetricsCatalog but not in the "
              "Prometheus table");
    }
  }
  for (const std::string& pair : doc_pairs) {
    if (catalog_pairs.count(pair) == 0) {
      finding(doc_path.string(),
              "documented metrics mapping '" + pair + "' matches no kMetricsCatalog row");
    }
  }
  for (const std::string& name : doc_dotted) {
    if (spans.count(name) == 0 && catalog_paths.count(name) == 0) {
      finding(doc_path.string(),
              "documented name '" + name + "' is neither an instrumented span nor a "
              "kMetricsCatalog JSON path");
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: qre_lint <repo-root>\n");
    return 2;
  }
  const fs::path root = argv[1];
  if (!fs::exists(root / "src") || !fs::exists(root / "docs")) {
    std::fprintf(stderr, "qre_lint: %s does not look like the repo root\n", argv[1]);
    return 2;
  }

  check_job_kinds(root);
  check_error_codes(root);
  check_headers(root);
  check_cli_flags(root);
  check_failpoints(root);
  check_observability(root);

  if (g_findings != 0) {
    std::fprintf(stderr, "qre_lint: %d finding(s)\n", g_findings);
    return 1;
  }
  std::printf("qre_lint: clean\n");
  return 0;
}
