#include "service/sweep.hpp"

#include <cmath>
#include <cstdint>
#include <limits>

#include "common/error.hpp"

namespace qre::service {

namespace {

constexpr double kMaxExactInt = 9.0e15;  // below 2^53; int64 round-trips

/// Largest number of steps a single range axis may resolve; anything bigger
/// could never pass expand_sweep's grid cap, so fail before allocating.
constexpr std::int64_t kMaxRangeSteps = 1'000'000;

/// Emits `v` as a JSON integer when it lands on one, so swept counts (code
/// distances, factory caps) keep their integer type. Grid arithmetic like
/// 1 + (9/33)*99 accumulates a few ulps of error, so values within a tight
/// relative tolerance of an integer snap to it; genuinely fractional values
/// (small error budgets included) are far outside the tolerance.
json::Value number_value(double v) {
  const double r = std::round(v);
  const double tolerance = 32.0 * std::numeric_limits<double>::epsilon() * std::fabs(v);
  if (std::fabs(v - r) <= tolerance && std::fabs(r) <= kMaxExactInt) {
    return json::Value(static_cast<std::int64_t>(r));
  }
  return json::Value(v);
}

/// Resolves a {start, stop, steps, scale} range axis to explicit values.
std::vector<json::Value> resolve_range(const json::Value& spec, const std::string& path) {
  for (const auto& [key, value] : spec.as_object()) {
    (void)value;
    QRE_REQUIRE(key == "start" || key == "stop" || key == "steps" || key == "scale",
                "sweep axis '" + path + "': unknown range field '" + key +
                    "' (expected start, stop, steps, scale)");
  }
  const double start = spec.at("start").as_double();
  const double stop = spec.at("stop").as_double();
  const std::int64_t steps = spec.at("steps").as_int();
  QRE_REQUIRE(steps >= 1, "sweep axis '" + path + "': steps must be >= 1");
  QRE_REQUIRE(steps <= kMaxRangeSteps,
              "sweep axis '" + path + "': steps exceeds the maximum axis size");
  std::string scale = "linear";
  if (const json::Value* s = spec.find("scale")) scale = s->as_string();
  QRE_REQUIRE(scale == "linear" || scale == "log",
              "sweep axis '" + path + "': scale must be linear or log");
  if (scale == "log") {
    QRE_REQUIRE(start > 0.0 && stop > 0.0,
                "sweep axis '" + path + "': log scale requires positive start and stop");
  }

  std::vector<json::Value> values;
  values.reserve(static_cast<std::size_t>(steps));
  for (std::int64_t i = 0; i < steps; ++i) {
    // The endpoints must reproduce start/stop bit-exactly: pow(stop/start, t)
    // at t == 1 (and linear interpolation at the last step) can drift by an
    // ulp, which would give range and explicit-array sweeps over the same
    // values divergent canonical cache keys and duplicate store records.
    double v;
    if (i == 0) {
      v = start;
    } else if (i == steps - 1) {
      v = stop;
    } else {
      const double t = static_cast<double>(i) / static_cast<double>(steps - 1);
      v = scale == "linear" ? start + t * (stop - start)
                            : start * std::pow(stop / start, t);
    }
    values.push_back(number_value(v));
  }
  return values;
}

}  // namespace

void set_path(json::Value& root, const std::string& path, json::Value value) {
  QRE_REQUIRE(root.is_object(), "sweep can only set fields on JSON objects");
  const std::size_t dot = path.find('.');
  if (dot == std::string::npos) {
    QRE_REQUIRE(!path.empty(), "sweep field path must not be empty");
    root.set(path, std::move(value));
    return;
  }
  const std::string head = path.substr(0, dot);
  const std::string rest = path.substr(dot + 1);
  QRE_REQUIRE(!head.empty() && !rest.empty(),
              "sweep field path '" + path + "' has an empty segment");
  json::Value child{json::Object{}};
  if (const json::Value* existing = root.find(head)) {
    QRE_REQUIRE(existing->is_object(),
                "sweep axis path '" + path + "': field '" + head +
                    "' exists but is not an object, so the dotted path cannot "
                    "descend through it");
    child = *existing;
  }
  set_path(child, rest, std::move(value));
  root.set(head, std::move(child));
}

std::vector<SweepAxis> sweep_axes(const json::Value& sweep) {
  QRE_REQUIRE(sweep.is_object(), "sweep must be a JSON object");
  std::vector<SweepAxis> axes;
  for (const auto& [path, spec] : sweep.as_object()) {
    SweepAxis axis;
    axis.path = path;
    if (spec.is_array()) {
      axis.values = spec.as_array();
      QRE_REQUIRE(!axis.values.empty(),
                  "sweep axis '" + path + "' must list at least one value");
    } else if (spec.is_object()) {
      axis.values = resolve_range(spec, path);
    } else {
      throw_error("sweep axis '" + path +
                  "' must be an array of values or a {start, stop, steps} range");
    }
    axes.push_back(std::move(axis));
  }
  QRE_REQUIRE(!axes.empty(), "sweep must define at least one axis");
  return axes;
}

std::vector<json::Value> expand_sweep(const json::Value& job, std::size_t max_items) {
  QRE_REQUIRE(job.is_object(), "sweep job must be a JSON object");
  const json::Value* sweep = job.find("sweep");
  QRE_REQUIRE(sweep != nullptr, "job has no sweep to expand");
  const std::vector<SweepAxis> axes = sweep_axes(*sweep);

  std::size_t total = 1;
  for (const SweepAxis& axis : axes) {
    QRE_REQUIRE(axis.values.size() <= max_items / total,
                "sweep grid exceeds the maximum item count");
    total *= axis.values.size();
  }

  // Base document: everything but the sweep specification itself (and any
  // stray "items"; a job cannot carry both).
  json::Object base;
  for (const auto& [key, value] : job.as_object()) {
    if (key != "sweep" && key != "items") base.emplace_back(key, value);
  }
  const json::Value base_value{std::move(base)};

  std::vector<json::Value> items;
  items.reserve(total);
  for (std::size_t index = 0; index < total; ++index) {
    json::Value item = base_value;
    // Row-major: the first declared axis varies slowest.
    std::size_t remainder = index;
    std::size_t stride = total;
    for (const SweepAxis& axis : axes) {
      stride /= axis.values.size();
      const std::size_t pick = remainder / stride;
      remainder %= stride;
      set_path(item, axis.path, axis.values[pick]);
    }
    items.push_back(std::move(item));
  }
  return items;
}

}  // namespace qre::service
