#include "service/cache.hpp"

#include <algorithm>

#include "common/trace.hpp"

namespace qre::service {

namespace {

/// Rebuilds `v` with every object's keys sorted, recursively, so that the
/// standard writer produces a canonical serialization.
json::Value sorted_copy(const json::Value& v) {
  if (v.is_object()) {
    json::Object sorted;
    for (const auto& [key, value] : v.as_object()) {
      sorted.emplace_back(key, sorted_copy(value));
    }
    std::stable_sort(sorted.begin(), sorted.end(),
                     [](const auto& a, const auto& b) { return a.first < b.first; });
    return json::Value(std::move(sorted));
  }
  if (v.is_array()) {
    json::Array sorted;
    for (const json::Value& element : v.as_array()) {
      sorted.push_back(sorted_copy(element));
    }
    return json::Value(std::move(sorted));
  }
  return v;
}

}  // namespace

std::string canonical_key(const json::Value& job) { return sorted_copy(job).dump(); }

json::Value cache_counters_to_json(std::uint64_t hits, std::uint64_t misses,
                                   std::uint64_t evictions, std::size_t size,
                                   std::size_t capacity) {
  json::Object out;
  out.emplace_back("hits", json::Value(hits));
  out.emplace_back("misses", json::Value(misses));
  out.emplace_back("evictions", json::Value(evictions));
  out.emplace_back("size", json::Value(static_cast<std::uint64_t>(size)));
  out.emplace_back("capacity", json::Value(static_cast<std::uint64_t>(capacity)));
  return json::Value(std::move(out));
}

json::Value EstimateCache::get_or_compute(const std::string& key, const Compute& compute) {
  std::shared_future<json::Value> future;
  std::promise<json::Value> promise;
  bool owner = false;
  {
    MutexLock lock(mutex_);
    if (const std::shared_future<json::Value>* found = entries_.find(key)) {
      hits_.fetch_add(1);
      future = *found;
    } else {
      misses_.fetch_add(1);
      future = promise.get_future().share();
      evictions_.fetch_add(entries_.insert(key, future));
      owner = true;
    }
  }
  if (owner) {
    QRE_TRACE_INSTANT("estimate.cache.miss");
  } else {
    QRE_TRACE_INSTANT("estimate.cache.hit");
  }
  if (owner) {
    try {
      // Read-through: the persistent store answers before we compute, and
      // write-through: what we do compute is offered back. Both happen on
      // the single owner thread of this key, outside the cache lock.
      std::optional<json::Value> stored;
      if (backing_ != nullptr) stored = backing_->fetch(key);
      if (stored.has_value()) {
        promise.set_value(std::move(*stored));
      } else {
        json::Value computed = compute();
        if (backing_ != nullptr) backing_->record(key, computed);
        promise.set_value(std::move(computed));
      }
    } catch (...) {
      promise.set_exception(std::current_exception());
    }
  }
  return future.get();
}

std::size_t EstimateCache::size() const {
  MutexLock lock(mutex_);
  return entries_.size();
}

void EstimateCache::clear() {
  MutexLock lock(mutex_);
  entries_.clear();
  hits_.store(0);
  misses_.store(0);
  evictions_.store(0);
}

}  // namespace qre::service
