// Declarative parameter-grid sweeps (service layer).
//
// The paper's batched studies — the Figure 3 multiplication sweep, the
// Figure 4 hardware-profile comparison, the frontier ablations — are
// cartesian grids over a handful of job fields. Instead of hand-writing an
// "items" array with one entry per grid point, a job may carry a "sweep"
// object mapping field paths to value axes:
//
//   {
//     "logicalCounts": { ... },                       // shared base fields
//     "errorBudget": 0.001,
//     "sweep": {
//       "qubitParams": [ {"name": "qubit_gate_ns_e3"},
//                        {"name": "qubit_maj_ns_e4"} ],   // explicit values
//       "errorBudget": {"start": 1e-4, "stop": 1e-2,
//                        "steps": 5, "scale": "log"},     // ranged axis
//       "constraints.maxTFactories": [1, 2, 4]            // dotted path
//     }
//   }
//
// Axis forms:
//  - a JSON array: the listed values, in order;
//  - a range object {start, stop, steps, scale}: `steps` evenly spaced
//    values from start to stop inclusive, on a "linear" (default) or "log"
//    scale; values that land on integers are emitted as JSON integers.
//
// Keys may be dotted paths ("constraints.maxTFactories"): the expansion
// deep-sets the leaf, preserving sibling fields of the base document's
// nested objects — which a shallow item override would clobber.
//
// Expansion order is row-major over the axes in declaration order: the
// first axis varies slowest, the last fastest. Every expanded item is a
// complete job document (base fields inherited, "sweep" removed), ready
// for the engine.
#pragma once

#include <string>
#include <vector>

#include "json/json.hpp"

namespace qre::service {

/// One sweep dimension: a field path and its resolved candidate values.
struct SweepAxis {
  std::string path;                 // field name, possibly dotted
  std::vector<json::Value> values;  // at least one value
};

/// Parses a "sweep" object into axes, in declaration order. Ranged axes are
/// resolved to explicit value lists. Throws qre::Error on malformed axes
/// (empty arrays, non-positive steps, log scale across zero, ...).
std::vector<SweepAxis> sweep_axes(const json::Value& sweep);

/// Deep-sets `value` at the (possibly dotted) field path inside `root`,
/// creating intermediate objects and preserving their sibling fields.
/// Throws qre::Error when a dotted path would descend through an existing
/// non-object field — silently clobbering a scalar would hide a mistyped
/// axis path.
void set_path(json::Value& root, const std::string& path, json::Value value);

/// Expands job["sweep"] into the cartesian grid of complete job documents.
/// Each item inherits every non-swept base field; "sweep" and "items" never
/// appear in the output. Throws qre::Error if "sweep" is missing or the
/// grid exceeds `max_items`.
std::vector<json::Value> expand_sweep(const json::Value& job,
                                      std::size_t max_items = 1'000'000);

}  // namespace qre::service
