// Vectorized batch-estimation kernel (ROADMAP item 1).
//
// Dense sweep grids — the paper's Fig. 3/4 workloads — are cartesian
// products of a handful of axis values over one base document, yet the
// legacy path re-parses and re-validates the full JSON item and rebuilds an
// EstimationInput for every grid point. The kernel removes all per-item JSON
// work:
//
//  * plan_batch_kernel() analyzes the sweep ONCE: it resolves the registry
//    profile set, parses and validates each axis VALUE once (not each grid
//    item), stores the parsed payloads as structure-of-arrays columns in a
//    per-batch Arena (common/arena.hpp), and precomputes the canonical
//    cache-key skeleton so per-item keys are spliced, not re-serialized;
//  * run_batch_kernel() evaluates grid items by writing axis columns into a
//    per-worker scratch EstimationInput and calling estimate_into() — on the
//    steady-state path (plan built, buffers warm) this performs zero heap
//    allocations per item (see docs/performance.md, "allocation contract");
//  * items the plan cannot cover — an axis value whose materialized document
//    fails validation — run through the legacy per-item fallback runner, so
//    mixed batches produce exactly the documents the scalar path would.
//
// Eligibility is conservative; plan_batch_kernel() declines (with a reason
// recorded in batchStats.batchKernel) whenever per-axis-value analysis could
// diverge from per-item semantics:
//
//  * the job must be a sweep (not items/frontier) with estimateType absent
//    or "singlePoint";
//  * every axis must target one of the sections logicalCounts, errorBudget,
//    constraints, or qubitParams (dotted paths into them included), with at
//    most one axis per section;
//  * a qubitParams axis is rejected when the base document pins a qecScheme
//    (the scheme resolution would depend on the combined document);
//  * the spliced key skeleton must round-trip canonical_key() exactly
//    (checked structurally at plan time; degenerate documents decline).
//
// The kernel is asserted bit-identical to the scalar path — same estimate()
// arithmetic, same report rendering, same cache keys — by
// tests/test_batch_kernel.cpp; EngineOptions::use_batch_kernel retains the
// scalar path for comparison (qre_cli --no-batch-kernel).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "api/registry.hpp"
#include "common/arena.hpp"
#include "core/estimator.hpp"
#include "json/json.hpp"
#include "service/engine.hpp"

namespace qre::service {

/// One sweep axis, analyzed: its grid geometry plus the parsed payload of
/// every axis value, laid out as arena-backed structure-of-arrays columns so
/// the evaluation loop touches contiguous typed memory instead of JSON
/// nodes. Only the columns of the axis's section are populated.
struct BatchKernelAxis {
  enum class Section { kLogicalCounts, kErrorBudget, kConstraints, kQubitParams };

  Section section = Section::kLogicalCounts;
  std::string path;        // as declared in the sweep, possibly dotted
  std::size_t size = 0;    // number of values
  std::size_t stride = 1;  // row-major stride in the expanded grid

  /// Per-value: 1 when the materialized probe document validated and parsed
  /// (items picking an invalid value fall back to the legacy runner).
  const std::uint8_t* valid = nullptr;

  /// Per-value canonical dump of the raw axis value, spliced into cache keys.
  std::vector<std::string> key_dumps;

  // kLogicalCounts columns. Keep in sync with struct LogicalCounts.
  const std::uint64_t* lc_num_qubits = nullptr;
  const std::uint64_t* lc_t_count = nullptr;
  const std::uint64_t* lc_rotation_count = nullptr;
  const std::uint64_t* lc_rotation_depth = nullptr;
  const std::uint64_t* lc_ccz_count = nullptr;
  const std::uint64_t* lc_ccix_count = nullptr;
  const std::uint64_t* lc_measurement_count = nullptr;
  const std::uint64_t* lc_clifford_count = nullptr;

  // kErrorBudget / kConstraints: arena arrays of the parsed values (both
  // types are trivially destructible, the Arena requirement).
  const ErrorBudget* budgets = nullptr;
  const Constraints* constraints = nullptr;

  // kQubitParams columns. Keep in sync with struct QubitParams; the
  // bit-identity suite sweeps presets differing in every field, so a column
  // missing here fails tests rather than silently drifting.
  const double* qp_one_qubit_measurement_time_ns = nullptr;
  const double* qp_one_qubit_gate_time_ns = nullptr;
  const double* qp_two_qubit_gate_time_ns = nullptr;
  const double* qp_two_qubit_joint_measurement_time_ns = nullptr;
  const double* qp_t_gate_time_ns = nullptr;
  const double* qp_one_qubit_measurement_error_rate = nullptr;
  const double* qp_one_qubit_gate_error_rate = nullptr;
  const double* qp_two_qubit_gate_error_rate = nullptr;
  const double* qp_two_qubit_joint_measurement_error_rate = nullptr;
  const double* qp_t_gate_error_rate = nullptr;
  const double* qp_idle_error_rate = nullptr;
  const std::int32_t* qp_instruction_set = nullptr;
  /// Non-trivial per-value state lives beside the columns: preset names and
  /// the QEC scheme each qubit value resolves to (registry default for its
  /// instruction set, or the registry scheme the value names).
  std::vector<std::string> qp_names;
  std::vector<QecScheme> qp_qecs;
};

/// Per-worker evaluation scratch. Reusing one scratch per worker slot is
/// what makes the steady-state loop allocation-free: the EstimationInput and
/// ResourceEstimate keep their string/vector capacity across items, and keys
/// are spliced into `key_buf` in place.
struct BatchKernelScratch {
  EstimationInput input;
  ResourceEstimate estimate;
  std::vector<std::uint32_t> picks;
  std::string key_buf;
};

/// The per-sweep analysis result. Move-only: the axis columns point into the
/// plan's own Arena.
class BatchKernelPlan {
 public:
  BatchKernelPlan() = default;
  BatchKernelPlan(const BatchKernelPlan&) = delete;
  BatchKernelPlan& operator=(const BatchKernelPlan&) = delete;
  BatchKernelPlan(BatchKernelPlan&&) = default;
  BatchKernelPlan& operator=(BatchKernelPlan&&) = default;

  /// The kernel can evaluate this sweep; when false, `reason()` says why and
  /// the caller runs the legacy path.
  bool eligible() const { return eligible_; }
  const std::string& reason() const { return reason_; }

  std::size_t num_items() const { return num_items_; }
  std::size_t num_axes() const { return axes_.size(); }
  const std::vector<BatchKernelAxis>& axes() const { return axes_; }

  /// The fully parsed input of the first all-valid grid point; per-item
  /// evaluation starts from a copy of this and overwrites axis sections.
  const EstimationInput& reference_input() const { return reference_input_; }

  /// Splits a row-major grid index into per-axis value picks.
  void decompose(std::size_t index, std::vector<std::uint32_t>& picks) const {
    for (std::size_t j = 0; j < axes_.size(); ++j) {
      picks[j] = static_cast<std::uint32_t>((index / axes_[j].stride) % axes_[j].size);
    }
  }

  /// All picked values passed plan-time validation (else: legacy fallback).
  bool picks_valid(const std::vector<std::uint32_t>& picks) const {
    for (std::size_t j = 0; j < axes_.size(); ++j) {
      if (!axes_[j].valid[picks[j]]) return false;
    }
    return true;
  }

  /// Writes the picked axis values into `input` (all other sections were
  /// fixed by the reference input). Allocation-free at steady state.
  void apply(const std::vector<std::uint32_t>& picks, EstimationInput& input) const;

  /// Builds the canonical cache key for the picked grid point into `out` by
  /// splicing precomputed value dumps into the key skeleton. Byte-identical
  /// to canonical_key() of the expanded item document.
  void splice_key(const std::vector<std::uint32_t>& picks, std::string& out) const;

  /// Convenience (tests, diagnostics): the canonical key of grid item
  /// `index` via decompose + splice_key.
  std::string item_key(std::size_t index) const;

 private:
  friend BatchKernelPlan plan_batch_kernel(const json::Value& job,
                                           const std::vector<json::Value>& items,
                                           const api::Registry& registry);

  Arena arena_;  // declared first: columns must die before their storage
  bool eligible_ = false;
  std::string reason_;
  std::size_t num_items_ = 0;
  std::vector<BatchKernelAxis> axes_;
  EstimationInput reference_input_;
  /// Key skeleton: literals_[0] + dump(axis key_order_[0]) + literals_[1] +
  /// ... + literals_[num_axes].
  std::vector<std::string> key_literals_;
  std::vector<std::size_t> key_order_;
};

/// Analyzes `job` (a sweep document, already expanded to `items` by
/// expand_sweep) against `registry`. Never throws: any analysis failure
/// yields an ineligible plan whose reason() explains it.
BatchKernelPlan plan_batch_kernel(const json::Value& job, const std::vector<json::Value>& items,
                                  const api::Registry& registry);

/// Evaluates the expanded grid through the kernel on the engine's worker
/// pool (run_batch_indexed), so ordering, error isolation, cancellation,
/// streaming, and cache accounting are shared with the legacy path and every
/// counter tallies exactly once. Items with invalid axis values run through
/// `fallback` (the legacy per-item runner). Requires plan.eligible() and
/// items.size() == plan.num_items(). Fills stats->kernel when stats is
/// given.
json::Array run_batch_kernel(const BatchKernelPlan& plan, const std::vector<json::Value>& items,
                             const JobRunner& fallback, const EngineOptions& options = {},
                             BatchStats* stats = nullptr);

}  // namespace qre::service
