#include "service/engine.hpp"

#include <algorithm>
#include <atomic>
#include <thread>

#include "common/error.hpp"
#include "common/failpoint.hpp"
#include "common/mutex.hpp"
#include "common/trace.hpp"
#include "tfactory/factory_cache.hpp"

namespace qre::service {

json::Value BatchStats::to_json() const {
  json::Object o;
  o.emplace_back("numItems", json::Value(static_cast<std::uint64_t>(num_items)));
  o.emplace_back("numWorkers", json::Value(static_cast<std::uint64_t>(num_workers)));
  o.emplace_back("numErrors", json::Value(static_cast<std::uint64_t>(num_errors)));
  o.emplace_back("cacheHits", json::Value(cache_hits));
  o.emplace_back("cacheMisses", json::Value(cache_misses));
  o.emplace_back("cacheEvictions", json::Value(cache_evictions));
  // The factory-cache deltas stay out of the document on purpose: the
  // process-level cache makes them depend on what ran before this batch,
  // and result documents for identical jobs must stay byte-identical.
  if (kernel.has_value()) {
    json::Object k;
    k.emplace_back("engaged", json::Value(kernel->engaged));
    if (!kernel->reason.empty()) k.emplace_back("reason", kernel->reason);
    k.emplace_back("kernelItems", json::Value(kernel->kernel_items));
    k.emplace_back("fallbackItems", json::Value(kernel->fallback_items));
    o.emplace_back("batchKernel", json::Value(std::move(k)));
  }
  return json::Value(std::move(o));
}

json::Value Engine::stats_to_json() const {
  json::Object out;
  out.emplace_back("estimateCache",
                   cache_counters_to_json(cache_.hits(), cache_.misses(), cache_.evictions(),
                                          cache_.size(), cache_.capacity()));
  return json::Value(std::move(out));
}

namespace {

json::Value error_value(const char* code, const std::string& message) {
  json::Object error;
  error.emplace_back("code", code);
  error.emplace_back("message", message);
  json::Object failure;
  failure.emplace_back("error", json::Value(std::move(error)));
  return json::Value(std::move(failure));
}

/// The per-item document for an item skipped because the batch's token said
/// stop. Never cached: a cancelled entry must not shadow a real result for
/// the same grid point in a shared cache.
json::Value cancelled_value(const CancelToken& cancel) {
  return error_value("cancelled", cancel.deadline_exceeded()
                                      ? "item skipped: request deadline exceeded"
                                      : "item skipped: request cancelled");
}

/// Runs one item, memoized when a cache is present. All failures — from the
/// runner directly or replayed out of the cache — collapse to an error
/// document, preserving the batch's isolation contract.
json::Value run_one(std::size_t index, std::size_t worker, const IndexedRunner& runner,
                    const IndexedKeyFn& key_fn, EstimateCache* cache) {
  try {
    QRE_FAILPOINT("engine.evaluate.before");
    if (cache != nullptr) {
      return cache->get_or_compute(key_fn(index, worker), [&] { return runner(index, worker); });
    }
    return runner(index, worker);
  } catch (const std::exception& e) {
    return error_value("estimation-failed", e.what());
  }
}

}  // namespace

std::size_t resolve_num_workers(const EngineOptions& options, std::size_t num_items) {
  std::size_t num_workers = options.num_workers;
  if (num_workers == 0) {
    num_workers = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  return std::max<std::size_t>(1, std::min(num_workers, num_items));
}

json::Array run_batch(const std::vector<json::Value>& items, const JobRunner& runner,
                      const EngineOptions& options, BatchStats* stats) {
  QRE_REQUIRE(runner != nullptr, "run_batch requires a job runner");
  // Per-worker key buffers let the key function hand the cache a reference
  // without a fresh allocation per call site (canonical_key itself still
  // builds a new string; the batch kernel's key splicer does not).
  std::vector<std::string> key_bufs(resolve_num_workers(options, items.size()));
  const IndexedRunner indexed = [&](std::size_t index, std::size_t) {
    return runner(items[index]);
  };
  const IndexedKeyFn key_fn = [&](std::size_t index, std::size_t worker) -> const std::string& {
    key_bufs[worker] = canonical_key(items[index]);
    return key_bufs[worker];
  };
  return run_batch_indexed(items.size(), indexed, key_fn, options, stats);
}

json::Array run_batch_indexed(std::size_t num_items, const IndexedRunner& runner,
                              const IndexedKeyFn& key_fn, const EngineOptions& options,
                              BatchStats* stats) {
  QRE_REQUIRE(runner != nullptr, "run_batch_indexed requires an item runner");
  QRE_REQUIRE(!options.use_cache || key_fn != nullptr,
              "run_batch_indexed requires a key function when caching is enabled");
  const std::size_t n = num_items;
  QRE_TRACE_SPAN("engine.batch");
  // Worker threads re-anchor their span stack on the batch span, so every
  // engine.item links back to this request in the exported trace.
  const std::uint64_t batch_span = trace::current_span();

  EstimateCache local_cache(options.cache_capacity);
  EstimateCache* cache = nullptr;
  if (options.use_cache) cache = options.cache != nullptr ? options.cache : &local_cache;
  const std::uint64_t hits_before = cache != nullptr ? cache->hits() : 0;
  const std::uint64_t misses_before = cache != nullptr ? cache->misses() : 0;
  const std::uint64_t evictions_before = cache != nullptr ? cache->evictions() : 0;
  FactoryCache& factory_cache = FactoryCache::global();
  const std::uint64_t factory_hits_before = factory_cache.hits();
  const std::uint64_t factory_misses_before = factory_cache.misses();

  const std::size_t num_workers = resolve_num_workers(options, n);

  std::vector<json::Value> results(n);
  std::vector<char> done(n, 0);
  std::atomic<std::size_t> next_item{0};
  std::atomic<std::size_t> num_errors{0};
  Mutex emit_mutex;
  std::size_t next_emit = 0;

  // Stores result `i` and streams the contiguous prefix of completed items,
  // so the sink observes results strictly in item order.
  auto complete = [&](std::size_t i, json::Value result) {
    if (result.is_object() && result.find("error") != nullptr) {
      num_errors.fetch_add(1);
    }
    MutexLock lock(emit_mutex);
    results[i] = std::move(result);
    done[i] = 1;
    while (next_emit < n && done[next_emit]) {
      if (options.on_result) options.on_result(next_emit, results[next_emit]);
      ++next_emit;
    }
  };

  auto work = [&](std::size_t worker) {
    // Propagate the request's collector and span parentage onto this
    // thread (restored on exit — the inline num_workers<=1 path runs on
    // the caller's thread, which has its own state to preserve).
    trace::CollectorScope scope(options.timings, batch_span);
    for (;;) {
      const std::size_t i = next_item.fetch_add(1);
      if (i >= n) return;
      // Cancellation is observed at item boundaries: skipped items become
      // structured "cancelled" entries so the output array keeps its shape.
      if (options.cancel.should_stop()) {
        complete(i, cancelled_value(options.cancel));
        continue;
      }
      json::Value result;
      {
        QRE_TRACE_SPAN("engine.item");
        result = run_one(i, worker, runner, key_fn, cache);
      }
      complete(i, std::move(result));
    }
  };

  if (num_workers <= 1) {
    work(0);
  } else {
    std::vector<std::thread> pool;
    pool.reserve(num_workers);
    for (std::size_t w = 0; w < num_workers; ++w) pool.emplace_back(work, w);
    for (std::thread& t : pool) t.join();
  }

  if (stats != nullptr) {
    stats->num_items = n;
    stats->num_workers = num_workers;
    stats->num_errors = num_errors.load();
    stats->cache_hits = cache != nullptr ? cache->hits() - hits_before : 0;
    stats->cache_misses = cache != nullptr ? cache->misses() - misses_before : 0;
    stats->cache_evictions = cache != nullptr ? cache->evictions() - evictions_before : 0;
    stats->factory_cache_hits = factory_cache.hits() - factory_hits_before;
    stats->factory_cache_misses = factory_cache.misses() - factory_misses_before;
  }

  json::Array out;
  out.reserve(n);
  for (json::Value& r : results) out.push_back(std::move(r));
  return out;
}

}  // namespace qre::service
