// Memoized estimation results (service layer).
//
// Batched sweeps routinely revisit the same grid point: frontier ablations
// share their base configuration, Figure 4 style profile sweeps repeat the
// workload counts, and overlapping sweeps duplicate whole items. The cache
// keys results by a canonical serialization of the resolved job document so
// every distinct input is estimated exactly once per engine run.
//
// The cache is concurrency-safe and deduplicates in-flight work: when two
// workers request the same key simultaneously, one computes and the other
// waits on a shared future. Failed computations are cached as exceptions —
// an infeasible input is deterministic, so its error is as memoizable as a
// successful estimate.
//
// Capacity is bounded: entries beyond `capacity` are evicted least-recently
// -used first, so a long-running sweep service cannot grow without limit.
// Evicting an in-flight entry is safe — waiters hold their own copy of the
// shared future — it merely allows the same key to be recomputed later.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <future>
#include <optional>
#include <string>

#include "common/lru_map.hpp"
#include "common/mutex.hpp"
#include "common/thread_annotations.hpp"
#include "json/json.hpp"

namespace qre::service {

/// Canonical cache key for a job document: a compact dump with all object
/// keys recursively sorted, so field order in the source JSON does not
/// affect identity.
std::string canonical_key(const json::Value& job);

/// The common counter document every cache exports (GET /metrics):
/// {"hits": ..., "misses": ..., "evictions": ..., "size": ..., "capacity": ...}.
json::Value cache_counters_to_json(std::uint64_t hits, std::uint64_t misses,
                                   std::uint64_t evictions, std::size_t size,
                                   std::size_t capacity);

/// Second-level backing behind an EstimateCache — the seam the persistent
/// estimate store (store/estimate_store.hpp) plugs into. On an in-memory
/// miss the cache consults fetch() before computing (read-through) and
/// reports freshly computed results to record() (write-through), always
/// from the single owner thread of that key, outside the cache lock.
/// Implementations must be concurrency-safe across keys and must not
/// throw: a failing backing degrades to a plain miss, never a failed
/// lookup.
class StoreBacking {
 public:
  virtual ~StoreBacking() = default;
  /// Returns the stored result document for `key`, or nullopt.
  virtual std::optional<json::Value> fetch(const std::string& key) = 0;
  /// Observes a freshly computed result for `key`.
  virtual void record(const std::string& key, const json::Value& result) = 0;
};

/// Concurrency-safe, LRU-bounded memoization table from canonical job keys
/// to result documents.
class EstimateCache {
 public:
  using Compute = std::function<json::Value()>;

  /// Default entry bound: generous for interactive sweeps (a Figure 4 grid
  /// is 66 entries) while keeping a runaway service's footprint finite.
  static constexpr std::size_t kDefaultCapacity = 4096;

  /// `capacity` == 0 means unbounded.
  explicit EstimateCache(std::size_t capacity = kDefaultCapacity) : entries_(capacity) {}

  /// Returns the result for `key`, invoking `compute` only if no other
  /// caller has. Concurrent callers with the same key block on the single
  /// computation. If `compute` throws, the exception is cached and
  /// rethrown to every caller of this key.
  json::Value get_or_compute(const std::string& key, const Compute& compute);

  /// Attaches (or detaches, with nullptr) the second-level store. Follows
  /// the registry discipline: wire the backing before traffic starts; it
  /// is read concurrently and without synchronization afterwards. The
  /// backing is not owned and must outlive the cache's last lookup.
  void set_backing(StoreBacking* backing) { backing_ = backing; }
  StoreBacking* backing() const { return backing_; }

  /// Lookups that found an existing (or in-flight) entry.
  std::uint64_t hits() const { return hits_.load(); }
  /// Lookups that had to compute.
  std::uint64_t misses() const { return misses_.load(); }
  /// Entries dropped to keep the cache within capacity.
  std::uint64_t evictions() const { return evictions_.load(); }
  /// Number of distinct keys stored.
  std::size_t size() const;
  /// Maximum number of entries retained (0 = unbounded).
  std::size_t capacity() const { return entries_.capacity(); }

  void clear();

 private:
  mutable Mutex mutex_;
  // Deliberately unguarded: wired before traffic starts (see set_backing)
  // and read-only afterwards, like the registry's registration contract.
  StoreBacking* backing_ = nullptr;
  LruMap<std::shared_future<json::Value>> entries_ QRE_GUARDED_BY(mutex_);
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> evictions_{0};
};

}  // namespace qre::service
