// Concurrent batch execution engine (service layer).
//
// Turns the estimator into a service-grade batch executor: expanded sweep
// items (or hand-written "items" entries) run on a std::thread worker pool
// of configurable width, with
//
//  - deterministic output: results are reported in item order regardless of
//    which worker finishes first;
//  - per-item error isolation: a failing item becomes a structured
//    {"error": {"code", "message"}} document instead of aborting the batch
//    (matching the serial run_job contract);
//  - memoization: items are keyed by a canonical serialization of their
//    resolved job document, so duplicated grid points across a batch are
//    estimated once (see service/cache.hpp);
//  - streaming: an optional callback observes each result, invoked strictly
//    in item order as the prefix of completed items grows — the NDJSON
//    emission mode of qre_cli for very large sweeps.
//
// The engine is deliberately decoupled from the job module: it executes any
// JobRunner over any item list, which keeps it unit-testable with synthetic
// runners and lets later PRs plug in remote or multi-backend runners.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "common/cancel.hpp"
#include "common/trace.hpp"
#include "json/json.hpp"
#include "service/cache.hpp"

namespace qre::service {

/// Executes one complete (non-batch) job document.
using JobRunner = std::function<json::Value(const json::Value& job)>;

/// Observes the result of item `index`; called in item order.
using ResultSink = std::function<void(std::size_t index, const json::Value& result)>;

struct EngineOptions {
  /// Worker threads; 0 means std::thread::hardware_concurrency(). The pool
  /// never exceeds the number of items, and width 1 runs inline.
  std::size_t num_workers = 0;
  /// Memoize results by canonical item key (duplicated grid points are
  /// computed once).
  bool use_cache = true;
  /// Entry bound for the batch-private cache (LRU evicted beyond it;
  /// 0 = unbounded). Ignored when an external `cache` is supplied.
  std::size_t cache_capacity = EstimateCache::kDefaultCapacity;
  /// Optional external cache shared across batches; nullptr with use_cache
  /// gives the batch a private cache.
  EstimateCache* cache = nullptr;
  /// Optional streaming sink; see ResultSink.
  ResultSink on_result;
  /// Cooperative cancellation / deadline, checked at item boundaries: once
  /// the token says stop, remaining items become {"error": {"code":
  /// "cancelled", ...}} entries without running (and without touching the
  /// cache). The default token never cancels.
  CancelToken cancel;
  /// Optional per-request timing collector (see common/trace.hpp): when
  /// set, run_batch installs it on every worker thread so "engine.item"
  /// spans and cache-hit/miss instants aggregate into the request's
  /// "timings" block. Not owned; must outlive the run. api::run wires it
  /// from "collectTimings"; qre_cli --timings supplies its own.
  trace::Collector* timings = nullptr;
};

/// Aggregate counters for one batch run, echoed as "batchStats" by run_job.
/// The estimate-cache counters are deltas for this batch. The factory-cache
/// counters are deltas of the process-level FactoryCache; they are exposed
/// to programmatic consumers (benches, the CLI's --cache-stats) but kept
/// out of to_json(), because prior runs change them and result documents
/// for identical jobs must stay byte-identical.
struct BatchStats {
  std::size_t num_items = 0;
  std::size_t num_workers = 1;
  std::size_t num_errors = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t cache_evictions = 0;
  std::uint64_t factory_cache_hits = 0;
  std::uint64_t factory_cache_misses = 0;

  json::Value to_json() const;
};

/// Runs `items` (complete job documents) through `runner` on the worker
/// pool. The returned array preserves item order; item failures (qre::Error
/// or any std::exception from the runner) are isolated as structured
/// {"error": {"code", "message"}} entries. `stats`, when non-null, receives
/// the run's counters.
json::Array run_batch(const std::vector<json::Value>& items, const JobRunner& runner,
                      const EngineOptions& options = {}, BatchStats* stats = nullptr);

/// A long-lived estimation engine: the default EngineOptions plus an owned
/// EstimateCache that persists across runs, so a serving process keeps warm
/// results between requests instead of giving every batch a private cache
/// that dies with it. The Engine itself is concurrency-safe — options()
/// returns a copy and EstimateCache is internally synchronized — so any
/// number of request threads may run through one shared Engine; results are
/// bit-identical to serial execution (the cache replays exact documents).
/// Cached entries are keyed on job documents only: if the profile registry
/// the runs resolve against mutates, call cache().clear() — the serving
/// layer avoids this by completing all registration before serving.
class Engine {
 public:
  /// `defaults.cache`, when set, is ignored: the engine always wires its own
  /// shared cache (that is its purpose).
  explicit Engine(EngineOptions defaults = {})
      : defaults_(defaults), cache_(defaults.cache_capacity) {
    defaults_.cache = nullptr;
  }

  /// The engine's defaults with the shared cache wired in (when caching is
  /// enabled). Callers may further adjust the copy, e.g. attach a sink.
  EngineOptions options() const {
    EngineOptions o = defaults_;
    if (o.use_cache) o.cache = &cache_;
    return o;
  }

  /// options() with a streaming sink attached.
  EngineOptions options(ResultSink sink) const {
    EngineOptions o = options();
    o.on_result = std::move(sink);
    return o;
  }

  EstimateCache& cache() { return cache_; }
  const EstimateCache& cache() const { return cache_; }

  /// Wires a persistent second-level store behind the shared cache (see
  /// StoreBacking in service/cache.hpp): in-memory misses consult the
  /// store before estimating, fresh results are written through. Follow
  /// the registration-before-serve discipline — attach the store before
  /// the first request; it is not owned and must outlive the engine's
  /// last run.
  void set_store(StoreBacking* store) { cache_.set_backing(store); }

  /// Cumulative (process-lifetime) cache counters, the shape GET /metrics
  /// embeds: {"estimateCache": {hits, misses, evictions, size, capacity}}.
  json::Value stats_to_json() const;

 private:
  EngineOptions defaults_;
  mutable EstimateCache cache_;
};

}  // namespace qre::service
