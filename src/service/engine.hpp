// Concurrent batch execution engine (service layer).
//
// Turns the estimator into a service-grade batch executor: expanded sweep
// items (or hand-written "items" entries) run on a std::thread worker pool
// of configurable width, with
//
//  - deterministic output: results are reported in item order regardless of
//    which worker finishes first;
//  - per-item error isolation: a failing item becomes a structured
//    {"error": {"code", "message"}} document instead of aborting the batch
//    (matching the serial run_job contract);
//  - memoization: items are keyed by a canonical serialization of their
//    resolved job document, so duplicated grid points across a batch are
//    estimated once (see service/cache.hpp);
//  - streaming: an optional callback observes each result, invoked strictly
//    in item order as the prefix of completed items grows — the NDJSON
//    emission mode of qre_cli for very large sweeps.
//
// The engine is deliberately decoupled from the job module: it executes any
// JobRunner over any item list, which keeps it unit-testable with synthetic
// runners and lets later PRs plug in remote or multi-backend runners.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "common/cancel.hpp"
#include "common/trace.hpp"
#include "json/json.hpp"
#include "service/cache.hpp"

namespace qre::service {

/// Executes one complete (non-batch) job document.
using JobRunner = std::function<json::Value(const json::Value& job)>;

/// Executes item `index` on worker slot `worker` (in [0, num_workers)).
/// The worker slot lets runners keep per-worker scratch state — the batch
/// kernel's zero-allocation evaluation buffers — without synchronization.
using IndexedRunner = std::function<json::Value(std::size_t index, std::size_t worker)>;

/// Produces the memoization key for item `index` (only called when caching
/// is enabled). Returning a reference lets key builders reuse a per-worker
/// buffer instead of allocating a fresh string per item.
using IndexedKeyFn = std::function<const std::string&(std::size_t index, std::size_t worker)>;

/// Observes the result of item `index`; called in item order.
using ResultSink = std::function<void(std::size_t index, const json::Value& result)>;

struct EngineOptions {
  /// Worker threads; 0 means std::thread::hardware_concurrency(). The pool
  /// never exceeds the number of items, and width 1 runs inline.
  std::size_t num_workers = 0;
  /// Memoize results by canonical item key (duplicated grid points are
  /// computed once).
  bool use_cache = true;
  /// Route eligible sweep batches through the vectorized SoA batch kernel
  /// (service/batch_kernel.hpp). The kernel is bit-identical to the scalar
  /// path; this switch retains the scalar path for comparison and debugging
  /// (qre_cli/qre_serve --no-batch-kernel).
  bool use_batch_kernel = true;
  /// Entry bound for the batch-private cache (LRU evicted beyond it;
  /// 0 = unbounded). Ignored when an external `cache` is supplied.
  std::size_t cache_capacity = EstimateCache::kDefaultCapacity;
  /// Optional external cache shared across batches; nullptr with use_cache
  /// gives the batch a private cache.
  EstimateCache* cache = nullptr;
  /// Optional streaming sink; see ResultSink.
  ResultSink on_result;
  /// Cooperative cancellation / deadline, checked at item boundaries: once
  /// the token says stop, remaining items become {"error": {"code":
  /// "cancelled", ...}} entries without running (and without touching the
  /// cache). The default token never cancels.
  CancelToken cancel;
  /// Optional per-request timing collector (see common/trace.hpp): when
  /// set, run_batch installs it on every worker thread so "engine.item"
  /// spans and cache-hit/miss instants aggregate into the request's
  /// "timings" block. Not owned; must outlive the run. api::run wires it
  /// from "collectTimings"; qre_cli --timings supplies its own.
  trace::Collector* timings = nullptr;
};

/// Aggregate counters for one batch run, echoed as "batchStats" by run_job.
/// The estimate-cache counters are deltas for this batch. The factory-cache
/// counters are deltas of the process-level FactoryCache; they are exposed
/// to programmatic consumers (benches, the CLI's --cache-stats) but kept
/// out of to_json(), because prior runs change them and result documents
/// for identical jobs must stay byte-identical.
/// Batch-kernel engagement counters, nested as "batchKernel" in the
/// "batchStats" document whenever the kernel was consulted for a batch
/// (i.e. the job was a sweep and use_batch_kernel was on). Items the kernel
/// plan could not cover (per-value validation failures, say) run through the
/// legacy per-item fallback and are counted here — their cache hits/misses
/// still tally through the same engine counters as kernel items, so mixed
/// batches never double-count.
struct BatchKernelStats {
  /// The kernel evaluated this batch (false = planning bailed; see reason).
  bool engaged = false;
  /// Why planning declined the batch; empty when engaged.
  std::string reason;
  std::uint64_t kernel_items = 0;
  std::uint64_t fallback_items = 0;
};

struct BatchStats {
  std::size_t num_items = 0;
  std::size_t num_workers = 1;
  std::size_t num_errors = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t cache_evictions = 0;
  std::uint64_t factory_cache_hits = 0;
  std::uint64_t factory_cache_misses = 0;
  /// Present iff the batch kernel was consulted; absent for items batches
  /// and kernel-disabled runs, keeping their documents byte-identical to
  /// earlier releases.
  std::optional<BatchKernelStats> kernel;

  json::Value to_json() const;
};

/// Resolves the worker-pool width run_batch/run_batch_indexed will use for
/// `num_items` items under `options` (0 = hardware concurrency; never wider
/// than the item count, never 0). Exposed so callers pre-sizing per-worker
/// scratch — the batch kernel — agree with the engine's slot numbering.
std::size_t resolve_num_workers(const EngineOptions& options, std::size_t num_items);

/// Runs `items` (complete job documents) through `runner` on the worker
/// pool. The returned array preserves item order; item failures (qre::Error
/// or any std::exception from the runner) are isolated as structured
/// {"error": {"code", "message"}} entries. `stats`, when non-null, receives
/// the run's counters.
json::Array run_batch(const std::vector<json::Value>& items, const JobRunner& runner,
                      const EngineOptions& options = {}, BatchStats* stats = nullptr);

/// The index-based generalization run_batch wraps: items are identified by
/// index, runners receive their worker slot, and the memoization key comes
/// from `key_fn` (may be null when options.use_cache is false). Every batch
/// execution path — legacy scalar items and the SoA batch kernel — funnels
/// through this single implementation, so ordering, error isolation,
/// cancellation, streaming, and cache accounting behave identically and are
/// counted once regardless of which path produced a result.
json::Array run_batch_indexed(std::size_t num_items, const IndexedRunner& runner,
                              const IndexedKeyFn& key_fn, const EngineOptions& options = {},
                              BatchStats* stats = nullptr);

/// A long-lived estimation engine: the default EngineOptions plus an owned
/// EstimateCache that persists across runs, so a serving process keeps warm
/// results between requests instead of giving every batch a private cache
/// that dies with it. The Engine itself is concurrency-safe — options()
/// returns a copy and EstimateCache is internally synchronized — so any
/// number of request threads may run through one shared Engine; results are
/// bit-identical to serial execution (the cache replays exact documents).
/// Cached entries are keyed on job documents only: if the profile registry
/// the runs resolve against mutates, call cache().clear() — the serving
/// layer avoids this by completing all registration before serving.
class Engine {
 public:
  /// `defaults.cache`, when set, is ignored: the engine always wires its own
  /// shared cache (that is its purpose).
  explicit Engine(EngineOptions defaults = {})
      : defaults_(defaults), cache_(defaults.cache_capacity) {
    defaults_.cache = nullptr;
  }

  /// The engine's defaults with the shared cache wired in (when caching is
  /// enabled). Callers may further adjust the copy, e.g. attach a sink.
  EngineOptions options() const {
    EngineOptions o = defaults_;
    if (o.use_cache) o.cache = &cache_;
    return o;
  }

  /// options() with a streaming sink attached.
  EngineOptions options(ResultSink sink) const {
    EngineOptions o = options();
    o.on_result = std::move(sink);
    return o;
  }

  EstimateCache& cache() { return cache_; }
  const EstimateCache& cache() const { return cache_; }

  /// Wires a persistent second-level store behind the shared cache (see
  /// StoreBacking in service/cache.hpp): in-memory misses consult the
  /// store before estimating, fresh results are written through. Follow
  /// the registration-before-serve discipline — attach the store before
  /// the first request; it is not owned and must outlive the engine's
  /// last run.
  void set_store(StoreBacking* store) { cache_.set_backing(store); }

  /// Cumulative (process-lifetime) cache counters, the shape GET /metrics
  /// embeds: {"estimateCache": {hits, misses, evictions, size, capacity}}.
  json::Value stats_to_json() const;

 private:
  EngineOptions defaults_;
  mutable EstimateCache cache_;
};

}  // namespace qre::service
