#include "service/batch_kernel.hpp"

#include <algorithm>
#include <string_view>
#include <utility>

#include "api/api.hpp"
#include "api/schema.hpp"
#include "common/diagnostics.hpp"
#include "common/error.hpp"
#include "report/report.hpp"
#include "service/cache.hpp"
#include "service/sweep.hpp"

namespace qre::service {

namespace {

/// Maps an axis path's head segment to its kernel section; false = the axis
/// targets something the kernel does not model (estimateType, qecScheme,
/// distillation units, ...), so the whole sweep runs the legacy path.
bool head_section(const std::string& path, BatchKernelAxis::Section& out) {
  const std::size_t dot = path.find('.');
  const std::string_view head =
      dot == std::string::npos ? std::string_view(path) : std::string_view(path).substr(0, dot);
  if (head == "logicalCounts") {
    out = BatchKernelAxis::Section::kLogicalCounts;
  } else if (head == "errorBudget") {
    out = BatchKernelAxis::Section::kErrorBudget;
  } else if (head == "constraints") {
    out = BatchKernelAxis::Section::kConstraints;
  } else if (head == "qubitParams") {
    out = BatchKernelAxis::Section::kQubitParams;
  } else {
    return false;
  }
  return true;
}

std::string axis_sentinel(std::size_t axis_index) {
  return "qre.batch-kernel.axis." + std::to_string(axis_index) + ".sentinel";
}

/// Finds the unique occurrence of `needle` in `canon` and checks it sits in
/// string position (surrounded by quotes). Returns npos when the occurrence
/// is not unique or not a whole JSON string — a degenerate document embeds
/// the sentinel text somewhere else, and splicing would be ambiguous.
std::size_t locate_sentinel(const std::string& canon, const std::string& needle) {
  const std::size_t first = canon.find(needle);
  if (first == std::string::npos) return std::string::npos;
  if (canon.find(needle, first + 1) != std::string::npos) return std::string::npos;
  if (first == 0 || canon[first - 1] != '"') return std::string::npos;
  const std::size_t end = first + needle.size();
  if (end >= canon.size() || canon[end] != '"') return std::string::npos;
  return first - 1;  // include the opening quote
}

}  // namespace

void BatchKernelPlan::apply(const std::vector<std::uint32_t>& picks,
                            EstimationInput& input) const {
  for (std::size_t j = 0; j < axes_.size(); ++j) {
    const BatchKernelAxis& a = axes_[j];
    const std::size_t k = picks[j];
    switch (a.section) {
      case BatchKernelAxis::Section::kLogicalCounts:
        input.counts.num_qubits = a.lc_num_qubits[k];
        input.counts.t_count = a.lc_t_count[k];
        input.counts.rotation_count = a.lc_rotation_count[k];
        input.counts.rotation_depth = a.lc_rotation_depth[k];
        input.counts.ccz_count = a.lc_ccz_count[k];
        input.counts.ccix_count = a.lc_ccix_count[k];
        input.counts.measurement_count = a.lc_measurement_count[k];
        input.counts.clifford_count = a.lc_clifford_count[k];
        break;
      case BatchKernelAxis::Section::kErrorBudget:
        input.budget = a.budgets[k];
        break;
      case BatchKernelAxis::Section::kConstraints:
        input.constraints = a.constraints[k];
        break;
      case BatchKernelAxis::Section::kQubitParams:
        input.qubit.name = a.qp_names[k];
        input.qubit.instruction_set = static_cast<InstructionSet>(a.qp_instruction_set[k]);
        input.qubit.one_qubit_measurement_time_ns = a.qp_one_qubit_measurement_time_ns[k];
        input.qubit.one_qubit_gate_time_ns = a.qp_one_qubit_gate_time_ns[k];
        input.qubit.two_qubit_gate_time_ns = a.qp_two_qubit_gate_time_ns[k];
        input.qubit.two_qubit_joint_measurement_time_ns =
            a.qp_two_qubit_joint_measurement_time_ns[k];
        input.qubit.t_gate_time_ns = a.qp_t_gate_time_ns[k];
        input.qubit.one_qubit_measurement_error_rate =
            a.qp_one_qubit_measurement_error_rate[k];
        input.qubit.one_qubit_gate_error_rate = a.qp_one_qubit_gate_error_rate[k];
        input.qubit.two_qubit_gate_error_rate = a.qp_two_qubit_gate_error_rate[k];
        input.qubit.two_qubit_joint_measurement_error_rate =
            a.qp_two_qubit_joint_measurement_error_rate[k];
        input.qubit.t_gate_error_rate = a.qp_t_gate_error_rate[k];
        input.qubit.idle_error_rate = a.qp_idle_error_rate[k];
        input.qec = a.qp_qecs[k];
        break;
    }
  }
}

void BatchKernelPlan::splice_key(const std::vector<std::uint32_t>& picks,
                                 std::string& out) const {
  out.clear();
  for (std::size_t g = 0; g < key_order_.size(); ++g) {
    out.append(key_literals_[g]);
    const std::size_t j = key_order_[g];
    out.append(axes_[j].key_dumps[picks[j]]);
  }
  out.append(key_literals_.back());
}

std::string BatchKernelPlan::item_key(std::size_t index) const {
  std::vector<std::uint32_t> picks(axes_.size());
  decompose(index, picks);
  std::string out;
  splice_key(picks, out);
  return out;
}

BatchKernelPlan plan_batch_kernel(const json::Value& job, const std::vector<json::Value>& items,
                                  const api::Registry& registry) {
  BatchKernelPlan plan;
  auto decline = [&plan](std::string reason) {
    plan.eligible_ = false;
    plan.reason_ = std::move(reason);
    return std::move(plan);
  };
  try {
    if (!job.is_object() || job.find("sweep") == nullptr) {
      return decline("not a sweep job");
    }
    if (job.find("items") != nullptr || job.find("frontier") != nullptr) {
      return decline("sweep is combined with items/frontier");
    }
    if (const json::Value* type = job.find("estimateType")) {
      if (!type->is_string() || type->as_string() != "singlePoint") {
        return decline("estimateType is not singlePoint");
      }
    }

    const std::vector<SweepAxis> declared = sweep_axes(job.at("sweep"));
    bool section_used[4] = {false, false, false, false};
    for (const SweepAxis& axis : declared) {
      BatchKernelAxis::Section section;
      if (!head_section(axis.path, section)) {
        return decline("axis '" + axis.path + "' targets a section outside the kernel");
      }
      if (section_used[static_cast<int>(section)]) {
        return decline("multiple axes target the same section as '" + axis.path + "'");
      }
      section_used[static_cast<int>(section)] = true;
      if (section == BatchKernelAxis::Section::kQubitParams &&
          job.find("qecScheme") != nullptr) {
        return decline("qubitParams axis with a base qecScheme (scheme resolution "
                       "depends on the combined document)");
      }
    }

    std::size_t total = 1;
    for (const SweepAxis& axis : declared) total *= axis.values.size();
    if (total != items.size()) {
      return decline("expanded item count does not match the axis grid");
    }
    plan.num_items_ = total;

    // Row-major geometry, matching expand_sweep: first axis varies slowest.
    plan.axes_.resize(declared.size());
    {
      std::size_t stride = total;
      for (std::size_t j = 0; j < declared.size(); ++j) {
        BatchKernelAxis& a = plan.axes_[j];
        a.path = declared[j].path;
        a.size = declared[j].values.size();
        stride /= a.size;
        a.stride = stride;
        head_section(a.path, a.section);
      }
    }

    // Parse and validate each axis VALUE once, via its materialized probe
    // document (base + this value, every other axis at its first value) —
    // the same parse the legacy path would run for that item, so payloads
    // are exact. A value whose probe fails validation/parsing is marked
    // invalid; grid items picking it run the legacy fallback and produce
    // identical error documents.
    std::vector<std::vector<EstimationInput>> parsed(plan.axes_.size());
    for (std::size_t j = 0; j < plan.axes_.size(); ++j) {
      BatchKernelAxis& a = plan.axes_[j];
      std::uint8_t* valid = plan.arena_.alloc_array<std::uint8_t>(a.size);
      parsed[j].resize(a.size);
      for (std::size_t k = 0; k < a.size; ++k) {
        const json::Value& probe = items[k * a.stride];
        Diagnostics probe_diags;
        api::validate_job(probe, registry, probe_diags);
        if (probe_diags.has_errors()) continue;
        try {
          Diagnostics sink;  // tolerate warnings, as the legacy runner does
          parsed[j][k] = api::input_from_document(probe, registry, &sink);
          valid[k] = 1;
        } catch (const std::exception&) {
          // leave invalid: the fallback runner reports the exact error
        }
      }
      a.valid = valid;
    }

    // Reference input: the first grid point whose picks are all valid; its
    // parse fixes every non-axis section once per sweep.
    {
      std::size_t reference = 0;
      for (std::size_t j = 0; j < plan.axes_.size(); ++j) {
        const BatchKernelAxis& a = plan.axes_[j];
        std::size_t first_valid = a.size;
        for (std::size_t k = 0; k < a.size; ++k) {
          if (a.valid[k]) {
            first_valid = k;
            break;
          }
        }
        if (first_valid == a.size) {
          return decline("axis '" + a.path + "' has no valid values");
        }
        reference += first_valid * a.stride;
      }
      Diagnostics sink;
      plan.reference_input_ = api::input_from_document(items[reference], registry, &sink);
    }

    // Column fill: one tight pass per field over contiguous arena storage.
    for (std::size_t j = 0; j < plan.axes_.size(); ++j) {
      BatchKernelAxis& a = plan.axes_[j];
      const std::vector<EstimationInput>& in = parsed[j];
      const std::size_t n = a.size;
      switch (a.section) {
        case BatchKernelAxis::Section::kLogicalCounts: {
          auto fill = [&](std::uint64_t LogicalCounts::* field) {
            std::uint64_t* col = plan.arena_.alloc_array<std::uint64_t>(n);
            for (std::size_t k = 0; k < n; ++k) col[k] = in[k].counts.*field;
            return static_cast<const std::uint64_t*>(col);
          };
          a.lc_num_qubits = fill(&LogicalCounts::num_qubits);
          a.lc_t_count = fill(&LogicalCounts::t_count);
          a.lc_rotation_count = fill(&LogicalCounts::rotation_count);
          a.lc_rotation_depth = fill(&LogicalCounts::rotation_depth);
          a.lc_ccz_count = fill(&LogicalCounts::ccz_count);
          a.lc_ccix_count = fill(&LogicalCounts::ccix_count);
          a.lc_measurement_count = fill(&LogicalCounts::measurement_count);
          a.lc_clifford_count = fill(&LogicalCounts::clifford_count);
          break;
        }
        case BatchKernelAxis::Section::kErrorBudget: {
          ErrorBudget* col = plan.arena_.alloc_array<ErrorBudget>(n);
          for (std::size_t k = 0; k < n; ++k) col[k] = in[k].budget;
          a.budgets = col;
          break;
        }
        case BatchKernelAxis::Section::kConstraints: {
          Constraints* col = plan.arena_.alloc_array<Constraints>(n);
          for (std::size_t k = 0; k < n; ++k) col[k] = in[k].constraints;
          a.constraints = col;
          break;
        }
        case BatchKernelAxis::Section::kQubitParams: {
          auto fill = [&](double QubitParams::* field) {
            double* col = plan.arena_.alloc_array<double>(n);
            for (std::size_t k = 0; k < n; ++k) col[k] = in[k].qubit.*field;
            return static_cast<const double*>(col);
          };
          a.qp_one_qubit_measurement_time_ns = fill(&QubitParams::one_qubit_measurement_time_ns);
          a.qp_one_qubit_gate_time_ns = fill(&QubitParams::one_qubit_gate_time_ns);
          a.qp_two_qubit_gate_time_ns = fill(&QubitParams::two_qubit_gate_time_ns);
          a.qp_two_qubit_joint_measurement_time_ns =
              fill(&QubitParams::two_qubit_joint_measurement_time_ns);
          a.qp_t_gate_time_ns = fill(&QubitParams::t_gate_time_ns);
          a.qp_one_qubit_measurement_error_rate =
              fill(&QubitParams::one_qubit_measurement_error_rate);
          a.qp_one_qubit_gate_error_rate = fill(&QubitParams::one_qubit_gate_error_rate);
          a.qp_two_qubit_gate_error_rate = fill(&QubitParams::two_qubit_gate_error_rate);
          a.qp_two_qubit_joint_measurement_error_rate =
              fill(&QubitParams::two_qubit_joint_measurement_error_rate);
          a.qp_t_gate_error_rate = fill(&QubitParams::t_gate_error_rate);
          a.qp_idle_error_rate = fill(&QubitParams::idle_error_rate);
          std::int32_t* sets = plan.arena_.alloc_array<std::int32_t>(n);
          for (std::size_t k = 0; k < n; ++k) {
            sets[k] = static_cast<std::int32_t>(in[k].qubit.instruction_set);
          }
          a.qp_instruction_set = sets;
          a.qp_names.resize(n);
          a.qp_qecs.reserve(n);
          for (std::size_t k = 0; k < n; ++k) {
            a.qp_names[k] = in[k].qubit.name;
            a.qp_qecs.push_back(in[k].qec);
          }
          break;
        }
      }
      a.key_dumps.resize(n);
      for (std::size_t k = 0; k < n; ++k) {
        a.key_dumps[k] = canonical_key(declared[j].values[k]);
      }
    }

    // Cache-key skeleton: substitute a unique sentinel string for each axis
    // leaf, canonicalize once, and split at the sentinels. Per-item keys are
    // then literal segments with per-value dumps spliced in — byte-identical
    // to canonical_key(item) without re-serializing the document.
    {
      json::Object base;
      for (const auto& [key, value] : job.as_object()) {
        if (key != "sweep" && key != "items") base.emplace_back(key, value);
      }
      json::Value skeleton{std::move(base)};
      for (std::size_t j = 0; j < plan.axes_.size(); ++j) {
        set_path(skeleton, plan.axes_[j].path, json::Value(axis_sentinel(j)));
      }
      const std::string canon = canonical_key(skeleton);
      std::vector<std::pair<std::size_t, std::size_t>> markers;  // (pos, axis)
      for (std::size_t j = 0; j < plan.axes_.size(); ++j) {
        const std::string sentinel = axis_sentinel(j);
        const std::size_t pos = locate_sentinel(canon, sentinel);
        if (pos == std::string::npos) {
          return decline("cache-key skeleton is ambiguous for axis '" +
                         plan.axes_[j].path + "'");
        }
        markers.emplace_back(pos, j);
      }
      std::sort(markers.begin(), markers.end());
      std::size_t cursor = 0;
      for (const auto& [pos, j] : markers) {
        plan.key_literals_.push_back(canon.substr(cursor, pos - cursor));
        plan.key_order_.push_back(j);
        cursor = pos + axis_sentinel(j).size() + 2;  // skip both quotes
      }
      plan.key_literals_.push_back(canon.substr(cursor));
    }

    plan.eligible_ = true;
    return plan;
  } catch (const std::exception& e) {
    return decline(std::string("plan analysis failed: ") + e.what());
  }
}

json::Array run_batch_kernel(const BatchKernelPlan& plan, const std::vector<json::Value>& items,
                             const JobRunner& fallback, const EngineOptions& options,
                             BatchStats* stats) {
  QRE_REQUIRE(plan.eligible(), "run_batch_kernel requires an eligible plan");
  QRE_REQUIRE(items.size() == plan.num_items(),
              "run_batch_kernel: item count does not match the plan");
  QRE_REQUIRE(fallback != nullptr, "run_batch_kernel requires a fallback runner");

  const std::size_t num_workers = resolve_num_workers(options, items.size());
  std::vector<BatchKernelScratch> scratch(num_workers);
  for (BatchKernelScratch& s : scratch) {
    s.input = plan.reference_input();
    s.picks.resize(plan.num_axes());
  }

  // Classify every grid item up front (cheap: a few divisions each), so the
  // engagement counters partition numItems exactly — a duplicated grid
  // point served from the cache still counts under the path that covers
  // it, and kernelItems + fallbackItems always equals the grid size.
  std::uint64_t kernel_items = 0;
  std::uint64_t fallback_items = 0;
  {
    std::vector<std::uint32_t> picks(plan.num_axes());
    for (std::size_t index = 0; index < items.size(); ++index) {
      plan.decompose(index, picks);
      (plan.picks_valid(picks) ? kernel_items : fallback_items) += 1;
    }
  }

  // Both closures run under run_batch_indexed, so cancellation, ordering,
  // error isolation, and cache counters are the engine's — kernel results
  // and fallback results tally through one code path.
  const IndexedRunner runner = [&](std::size_t index, std::size_t worker) -> json::Value {
    BatchKernelScratch& s = scratch[worker];
    plan.decompose(index, s.picks);
    if (!plan.picks_valid(s.picks)) {
      return fallback(items[index]);
    }
    plan.apply(s.picks, s.input);
    estimate_into(s.input, s.estimate);
    return report_to_json(s.estimate);
  };
  const IndexedKeyFn key_fn = [&](std::size_t index, std::size_t worker) -> const std::string& {
    BatchKernelScratch& s = scratch[worker];
    plan.decompose(index, s.picks);
    plan.splice_key(s.picks, s.key_buf);
    return s.key_buf;
  };

  json::Array out = run_batch_indexed(items.size(), runner, key_fn, options, stats);
  if (stats != nullptr) {
    BatchKernelStats kernel_stats;
    kernel_stats.engaged = true;
    kernel_stats.kernel_items = kernel_items;
    kernel_stats.fallback_items = fallback_items;
    stats->kernel = std::move(kernel_stats);
  }
  return out;
}

}  // namespace qre::service
