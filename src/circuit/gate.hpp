// The planar quantum ISA gate set (paper Section III and Figure 1).
//
// Programs are traced as streams of these operations. The non-Clifford
// operations (T, arbitrary rotations, CCZ, CCiX) and measurements are what
// the logical resource estimates are built from; Clifford operations are
// free at the logical level but are still traced so that the simulator and
// QIR backends can execute/emit complete programs.
#pragma once

#include <cstdint>
#include <string_view>

namespace qre {

using QubitId = std::uint32_t;

enum class Gate : std::uint8_t {
  // Single-qubit Cliffords.
  kX,
  kY,
  kZ,
  kH,
  kS,
  kSdg,
  // Single-qubit non-Cliffords.
  kT,
  kTdg,
  // Arbitrary-angle rotations (non-Clifford for generic angles).
  kRx,
  kRy,
  kRz,
  kR1,  // phase on |1>, diag(1, e^{i*theta})
  // Two-qubit Cliffords.
  kCx,
  kCz,
  kSwap,
  // Three-qubit non-Cliffords. CCiX is the AND-style Toffoli variant the
  // tool counts separately from CCZ; its computational-basis action here is
  // the Toffoli (the relative phase is absorbed into the Clifford frame of
  // the Gidney AND gadget this library uses it for).
  kCcx,
  kCcz,
  kCcix,
  // Measurements and reset.
  kMz,
  kMx,
  kReset,
};

/// Number of qubit operands of the gate (1, 2, or 3).
int gate_arity(Gate g);

/// True for X/Y/Z/H/S/Sdg/CX/CZ/SWAP (free at the logical level).
bool is_clifford(Gate g);

/// True for Rx/Ry/Rz/R1.
bool is_rotation(Gate g);

/// Short lowercase mnemonic ("ccz", "rz", "mz", ...).
std::string_view gate_name(Gate g);

}  // namespace qre
