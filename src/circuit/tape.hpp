// Tape: records a measurement-free region of a program so that it can be
// replayed forward and, crucially, in reverse with inverted gates — the
// adjoint. The Karatsuba multiplier uses this to bulk-uncompute its
// workspace after accumulating the product.
//
// Lifetime events are handled symmetrically: the adjoint re-allocates where
// the forward pass released and releases where the forward pass allocated,
// so ancillas that lived inside the region are rewound correctly and the
// region's surviving workspace is released exactly when the adjoint has
// returned it to |0>. The recording builder's bookkeeping is reconciled via
// ProgramBuilder::reclaim().
#pragma once

#include <cstdint>
#include <vector>

#include "circuit/backend.hpp"

namespace qre {

class Tape final : public Backend {
 public:
  /// `underlying` is the backend the recording will eventually be replayed
  /// onto; the tape mirrors its counting_only() so circuit generators make
  /// the same data-vs-structure decisions while recording.
  explicit Tape(const Backend* underlying = nullptr) : underlying_(underlying) {}

  bool counting_only() const override {
    return underlying_ != nullptr && underlying_->counting_only();
  }

  void on_allocate(QubitId q, std::uint64_t live) override;
  void on_release(QubitId q, std::uint64_t live) override;
  void on_gate1(Gate g, QubitId q) override;
  void on_rotation(Gate g, double angle, QubitId q) override;
  void on_gate2(Gate g, QubitId a, QubitId b) override;
  void on_gate3(Gate g, QubitId a, QubitId b, QubitId c) override;
  bool on_measure(Gate basis, QubitId q) override;  // throws: not reversible
  void on_reset(QubitId q) override;                // throws: not reversible
  void on_gate_batch(Gate g, std::uint64_t count) override;
  void on_measure_batch(Gate basis, std::uint64_t count) override;  // throws

  /// Emits the recorded events (including lifetime events) in order.
  void replay(Backend& backend) const;

  /// Emits the region's adjoint: gates in reverse order and inverted,
  /// releases for forward allocations, allocations for forward releases.
  void replay_adjoint(Backend& backend) const;

  /// Qubits still allocated at the end of the region, in allocation order.
  /// After replay_adjoint() these have been released at the backend level;
  /// the owning builder should reclaim() them.
  std::vector<QubitId> live_at_end() const;

 private:
  enum class Kind : std::uint8_t { kAlloc, kRelease, kGate1, kRotation, kGate2, kGate3, kBatch };
  struct Op {
    Kind kind;
    Gate gate;
    QubitId q[3] = {0, 0, 0};
    double angle = 0.0;       // rotations
    std::uint64_t count = 0;  // live count for alloc/release, count for batches
  };

  std::vector<Op> ops_;
  const Backend* underlying_ = nullptr;
};

/// Inverse of a unitary gate in this library's gate set (T <-> Tdg,
/// S <-> Sdg, everything else self-inverse); rotations are handled by angle
/// negation in Tape.
Gate inverse_gate(Gate g);

}  // namespace qre
