#include "circuit/tape.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace qre {

Gate inverse_gate(Gate g) {
  switch (g) {
    case Gate::kS: return Gate::kSdg;
    case Gate::kSdg: return Gate::kS;
    case Gate::kT: return Gate::kTdg;
    case Gate::kTdg: return Gate::kT;
    default: return g;  // self-inverse in the Toffoli-semantics gate set
  }
}

void Tape::on_allocate(QubitId q, std::uint64_t live) {
  ops_.push_back({Kind::kAlloc, Gate::kX, {q, 0, 0}, 0.0, live});
}

void Tape::on_release(QubitId q, std::uint64_t live) {
  ops_.push_back({Kind::kRelease, Gate::kX, {q, 0, 0}, 0.0, live});
}

void Tape::on_gate1(Gate g, QubitId q) {
  ops_.push_back({Kind::kGate1, g, {q, 0, 0}, 0.0, 0});
}

void Tape::on_rotation(Gate g, double angle, QubitId q) {
  ops_.push_back({Kind::kRotation, g, {q, 0, 0}, angle, 0});
}

void Tape::on_gate2(Gate g, QubitId a, QubitId b) {
  ops_.push_back({Kind::kGate2, g, {a, b, 0}, 0.0, 0});
}

void Tape::on_gate3(Gate g, QubitId a, QubitId b, QubitId c) {
  ops_.push_back({Kind::kGate3, g, {a, b, c}, 0.0, 0});
}

bool Tape::on_measure(Gate, QubitId) {
  throw_error("taped regions must be measurement-free (use unitary uncompute)");
}

void Tape::on_reset(QubitId) { throw_error("taped regions cannot contain reset"); }

void Tape::on_gate_batch(Gate g, std::uint64_t count) {
  ops_.push_back({Kind::kBatch, g, {0, 0, 0}, 0.0, count});
}

void Tape::on_measure_batch(Gate, std::uint64_t) {
  throw_error("taped regions must be measurement-free (use unitary uncompute)");
}

void Tape::replay(Backend& backend) const {
  for (const Op& op : ops_) {
    switch (op.kind) {
      case Kind::kAlloc: backend.on_allocate(op.q[0], op.count); break;
      case Kind::kRelease: backend.on_release(op.q[0], op.count); break;
      case Kind::kGate1: backend.on_gate1(op.gate, op.q[0]); break;
      case Kind::kRotation: backend.on_rotation(op.gate, op.angle, op.q[0]); break;
      case Kind::kGate2: backend.on_gate2(op.gate, op.q[0], op.q[1]); break;
      case Kind::kGate3: backend.on_gate3(op.gate, op.q[0], op.q[1], op.q[2]); break;
      case Kind::kBatch: backend.on_gate_batch(op.gate, op.count); break;
    }
  }
}

void Tape::replay_adjoint(Backend& backend) const {
  for (auto it = ops_.rbegin(); it != ops_.rend(); ++it) {
    const Op& op = *it;
    switch (op.kind) {
      case Kind::kAlloc:
        // Reversing an allocation releases the (now rewound to |0>) qubit.
        backend.on_release(op.q[0], op.count - 1);
        break;
      case Kind::kRelease:
        // Reversing a release brings the ancilla back for the rewind.
        backend.on_allocate(op.q[0], op.count + 1);
        break;
      case Kind::kGate1: backend.on_gate1(inverse_gate(op.gate), op.q[0]); break;
      case Kind::kRotation: backend.on_rotation(op.gate, -op.angle, op.q[0]); break;
      case Kind::kGate2: backend.on_gate2(inverse_gate(op.gate), op.q[0], op.q[1]); break;
      case Kind::kGate3:
        backend.on_gate3(inverse_gate(op.gate), op.q[0], op.q[1], op.q[2]);
        break;
      case Kind::kBatch: backend.on_gate_batch(inverse_gate(op.gate), op.count); break;
    }
  }
}

std::vector<QubitId> Tape::live_at_end() const {
  std::vector<QubitId> live;
  for (const Op& op : ops_) {
    if (op.kind == Kind::kAlloc) {
      live.push_back(op.q[0]);
    } else if (op.kind == Kind::kRelease) {
      auto it = std::find(live.rbegin(), live.rend(), op.q[0]);
      QRE_ASSERT(it != live.rend());
      live.erase(std::next(it).base());
    }
  }
  return live;
}

}  // namespace qre
