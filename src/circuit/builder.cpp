#include "circuit/builder.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace qre {

Register slice(const Register& reg, std::size_t from, std::size_t len) {
  QRE_REQUIRE(from + len <= reg.size(), "register slice out of range");
  return Register(reg.begin() + from, reg.begin() + from + len);
}

QubitId ProgramBuilder::alloc() {
  QubitId q;
  if (!free_list_.empty()) {
    q = free_list_.back();
    free_list_.pop_back();
  } else {
    q = next_id_++;
  }
  ++live_;
  high_water_ = std::max(high_water_, live_);
  backend_->on_allocate(q, live_);
  return q;
}

Register ProgramBuilder::alloc_register(std::size_t size) {
  Register reg;
  reg.reserve(size);
  for (std::size_t i = 0; i < size; ++i) reg.push_back(alloc());
  return reg;
}

void ProgramBuilder::free(QubitId q) {
  QRE_REQUIRE(live_ > 0, "qubit release without matching allocation");
  --live_;
  free_list_.push_back(q);
  backend_->on_release(q, live_);
}

void ProgramBuilder::reclaim(QubitId q) {
  QRE_REQUIRE(live_ > 0, "qubit reclaim without matching allocation");
  --live_;
  free_list_.push_back(q);
}

void ProgramBuilder::free_register(const Register& reg) {
  // Release in reverse so that re-allocation returns ids in the original
  // order, which keeps traces deterministic.
  for (auto it = reg.rbegin(); it != reg.rend(); ++it) free(*it);
}

Backend* ProgramBuilder::swap_backend(Backend* backend) {
  QRE_REQUIRE(backend != nullptr, "swap_backend requires a backend");
  Backend* previous = backend_;
  backend_ = backend;
  return previous;
}

bool ProgramBuilder::set_unitary_uncompute(bool enabled) {
  bool previous = unitary_uncompute_;
  unitary_uncompute_ = enabled;
  return previous;
}

void ProgramBuilder::cphase(double angle, QubitId a, QubitId b) {
  // diag(1,1,1,e^{i*angle}) = R1(angle/2) x R1(angle/2), conjugated:
  // R1(a/2) on both, CX, R1(-a/2) on target, CX.
  r1(angle / 2, a);
  r1(angle / 2, b);
  cx(a, b);
  r1(-angle / 2, b);
  cx(a, b);
}

void ProgramBuilder::cswap(QubitId control, QubitId a, QubitId b) {
  cx(b, a);
  ccx(control, a, b);
  cx(b, a);
}

void ProgramBuilder::uncompute_and(QubitId c1, QubitId c2, QubitId target) {
  if (unitary_uncompute_) {
    ccix(c1, c2, target);
    return;
  }
  h(target);
  if (mz(target)) {
    x(target);  // return the ancilla to |0>
    cz(c1, c2);
  }
}

void ProgramBuilder::xor_constant(const Register& reg, std::uint64_t value) {
  QRE_REQUIRE(reg.size() >= 64 || value < (std::uint64_t{1} << reg.size()),
              "xor_constant: value does not fit the register");
  for (std::size_t i = 0; i < reg.size() && i < 64; ++i) {
    if ((value >> i) & 1) x(reg[i]);
  }
}

}  // namespace qre
