#include "circuit/gate.hpp"

#include "common/error.hpp"

namespace qre {

int gate_arity(Gate g) {
  switch (g) {
    case Gate::kX:
    case Gate::kY:
    case Gate::kZ:
    case Gate::kH:
    case Gate::kS:
    case Gate::kSdg:
    case Gate::kT:
    case Gate::kTdg:
    case Gate::kRx:
    case Gate::kRy:
    case Gate::kRz:
    case Gate::kR1:
    case Gate::kMz:
    case Gate::kMx:
    case Gate::kReset:
      return 1;
    case Gate::kCx:
    case Gate::kCz:
    case Gate::kSwap:
      return 2;
    case Gate::kCcx:
    case Gate::kCcz:
    case Gate::kCcix:
      return 3;
  }
  QRE_ASSERT(false);
}

bool is_clifford(Gate g) {
  switch (g) {
    case Gate::kX:
    case Gate::kY:
    case Gate::kZ:
    case Gate::kH:
    case Gate::kS:
    case Gate::kSdg:
    case Gate::kCx:
    case Gate::kCz:
    case Gate::kSwap:
      return true;
    default:
      return false;
  }
}

bool is_rotation(Gate g) {
  return g == Gate::kRx || g == Gate::kRy || g == Gate::kRz || g == Gate::kR1;
}

std::string_view gate_name(Gate g) {
  switch (g) {
    case Gate::kX: return "x";
    case Gate::kY: return "y";
    case Gate::kZ: return "z";
    case Gate::kH: return "h";
    case Gate::kS: return "s";
    case Gate::kSdg: return "s_adj";
    case Gate::kT: return "t";
    case Gate::kTdg: return "t_adj";
    case Gate::kRx: return "rx";
    case Gate::kRy: return "ry";
    case Gate::kRz: return "rz";
    case Gate::kR1: return "r1";
    case Gate::kCx: return "cnot";
    case Gate::kCz: return "cz";
    case Gate::kSwap: return "swap";
    case Gate::kCcx: return "ccx";
    case Gate::kCcz: return "ccz";
    case Gate::kCcix: return "ccix";
    case Gate::kMz: return "mz";
    case Gate::kMx: return "mx";
    case Gate::kReset: return "reset";
  }
  QRE_ASSERT(false);
}

}  // namespace qre
