// ProgramBuilder: the high-level program specification DSL.
//
// This is the C++ stand-in for the Q#/Qiskit front end of the paper's tool
// (Section IV-B1): the estimator never interprets language semantics, it
// consumes the stream of qubit allocation, gate, and measurement events of
// the compiled program — which is exactly what this builder produces.
//
// The builder manages qubit identities with a free list (released qubits are
// reused, as the tool's QIR tracer does), tracks the live-qubit high-water
// mark, and offers the derived operations the arithmetic library is built
// from, most importantly the Gidney AND gadget with measurement-based
// uncomputation.
#pragma once

#include <cstdint>
#include <vector>

#include "circuit/backend.hpp"
#include "circuit/gate.hpp"

namespace qre {

/// A quantum register: an ordered list of qubit ids, least-significant
/// bit first for arithmetic.
using Register = std::vector<QubitId>;

/// Returns the sub-register reg[from, from+len).
Register slice(const Register& reg, std::size_t from, std::size_t len);

class ProgramBuilder {
 public:
  explicit ProgramBuilder(Backend& backend) : backend_(&backend) {}

  ProgramBuilder(const ProgramBuilder&) = delete;
  ProgramBuilder& operator=(const ProgramBuilder&) = delete;

  // --- Qubit management -------------------------------------------------
  QubitId alloc();
  Register alloc_register(std::size_t size);
  /// Releases a qubit; the caller must have returned it to |0>.
  void free(QubitId q);
  void free_register(const Register& reg);

  /// Marks a qubit as free in the builder's bookkeeping without emitting a
  /// release event — used after Tape::replay_adjoint(), which already
  /// released the region's workspace at the backend level.
  void reclaim(QubitId q);

  std::uint64_t live_qubits() const { return live_; }
  std::uint64_t high_water() const { return high_water_; }

  Backend& backend() { return *backend_; }
  bool counting_only() const { return backend_->counting_only(); }

  /// Redirects subsequent events to another backend (used to record taped
  /// regions for adjoint replay); returns the previous backend.
  Backend* swap_backend(Backend* backend);

  /// When set, uncompute_and() uses a second CCiX instead of the
  /// measurement-based gadget, keeping the region measurement-free so it can
  /// be reversed by Tape::replay_adjoint(). Returns the previous value.
  bool set_unitary_uncompute(bool enabled);
  bool unitary_uncompute() const { return unitary_uncompute_; }

  // --- Single-qubit gates ------------------------------------------------
  void x(QubitId q) { backend_->on_gate1(Gate::kX, q); }
  void y(QubitId q) { backend_->on_gate1(Gate::kY, q); }
  void z(QubitId q) { backend_->on_gate1(Gate::kZ, q); }
  void h(QubitId q) { backend_->on_gate1(Gate::kH, q); }
  void s(QubitId q) { backend_->on_gate1(Gate::kS, q); }
  void sdg(QubitId q) { backend_->on_gate1(Gate::kSdg, q); }
  void t(QubitId q) { backend_->on_gate1(Gate::kT, q); }
  void tdg(QubitId q) { backend_->on_gate1(Gate::kTdg, q); }

  void rx(double angle, QubitId q) { backend_->on_rotation(Gate::kRx, angle, q); }
  void ry(double angle, QubitId q) { backend_->on_rotation(Gate::kRy, angle, q); }
  void rz(double angle, QubitId q) { backend_->on_rotation(Gate::kRz, angle, q); }
  void r1(double angle, QubitId q) { backend_->on_rotation(Gate::kR1, angle, q); }

  // --- Multi-qubit gates ---------------------------------------------------
  void cx(QubitId control, QubitId target) { backend_->on_gate2(Gate::kCx, control, target); }
  void cz(QubitId a, QubitId b) { backend_->on_gate2(Gate::kCz, a, b); }
  void swap(QubitId a, QubitId b) { backend_->on_gate2(Gate::kSwap, a, b); }
  void ccx(QubitId c1, QubitId c2, QubitId target) {
    backend_->on_gate3(Gate::kCcx, c1, c2, target);
  }
  void ccz(QubitId a, QubitId b, QubitId c) { backend_->on_gate3(Gate::kCcz, a, b, c); }
  void ccix(QubitId c1, QubitId c2, QubitId target) {
    backend_->on_gate3(Gate::kCcix, c1, c2, target);
  }

  /// Controlled phase, e^{i*angle} on |11>, decomposed into rotations and
  /// CNOTs (three rotation gates).
  void cphase(double angle, QubitId a, QubitId b);

  /// Controlled swap (Fredkin), decomposed as CX(b,a) CCX(c,a,b) CX(b,a):
  /// one Toffoli plus Cliffords.
  void cswap(QubitId control, QubitId a, QubitId b);

  // --- Measurement, reset, feedback ---------------------------------------
  bool mz(QubitId q) { return backend_->on_measure(Gate::kMz, q); }
  bool mx(QubitId q) { return backend_->on_measure(Gate::kMx, q); }
  void reset(QubitId q) { backend_->on_reset(q); }

  // --- Gidney AND gadget ---------------------------------------------------
  /// target (fresh |0>) becomes |c1 AND c2>. Counted as one CCiX.
  void compute_and(QubitId c1, QubitId c2, QubitId target) { ccix(c1, c2, target); }

  /// Uncomputes an AND ancilla, leaving `target` in |0>. Default: X-basis
  /// measurement plus a classically controlled CZ fix-up (Gidney,
  /// arXiv:1709.06648) — one measurement, no non-Clifford gates. In
  /// unitary-uncompute mode a second CCiX is used instead.
  void uncompute_and(QubitId c1, QubitId c2, QubitId target);

  // --- Classical-constant initialization -----------------------------------
  /// XORs the bits of `value` into the register (X gates on set bits).
  void xor_constant(const Register& reg, std::uint64_t value);

 private:
  Backend* backend_;
  std::vector<QubitId> free_list_;
  QubitId next_id_ = 0;
  std::uint64_t live_ = 0;
  std::uint64_t high_water_ = 0;
  bool unitary_uncompute_ = false;
};

}  // namespace qre
