// Backend interface for traced quantum programs.
//
// A Backend consumes the event stream that a ProgramBuilder (or the QIR
// reader) produces: qubit allocation/release, gate applications, and
// measurements. Three backends ship with the library:
//
//  * counter::LogicalCounter — accumulates pre-layout logical counts
//    (paper Section III-A);
//  * sim::SparseSimulator — executes the program on a sparse state vector
//    (the QDK sparse-simulator equivalent), used to verify circuits;
//  * qir::QirEmitter — writes the program as QIR base-profile text.
//
// Measurements return a classical bit so programs with classical feedback
// (measurement-based uncomputation) can be traced: the simulator returns the
// sampled outcome, while counting backends return false deterministically
// (the skipped branches are Clifford fix-ups, which do not contribute to
// logical resource estimates).
#pragma once

#include <cstdint>

#include "circuit/gate.hpp"

namespace qre {

class Backend {
 public:
  virtual ~Backend();

  /// Qubit lifetime events. `live` is the number of live qubits after the
  /// event, so backends can track the width high-water mark.
  virtual void on_allocate(QubitId q, std::uint64_t live);
  virtual void on_release(QubitId q, std::uint64_t live);

  virtual void on_gate1(Gate g, QubitId q) = 0;
  virtual void on_rotation(Gate g, double angle, QubitId q) = 0;
  virtual void on_gate2(Gate g, QubitId a, QubitId b) = 0;
  virtual void on_gate3(Gate g, QubitId a, QubitId b, QubitId c) = 0;

  /// basis is kMz or kMx; returns the measurement outcome.
  virtual bool on_measure(Gate basis, QubitId q) = 0;
  virtual void on_reset(QubitId q) = 0;

  /// Batched anonymous-operand events, used by cost-model circuit emitters
  /// for very large workloads. Batched gates do not participate in
  /// rotation-depth layering (they model wide, parallel gate groups).
  /// Backends that must execute every gate (the simulator) reject these.
  virtual void on_gate_batch(Gate g, std::uint64_t count);
  virtual void on_measure_batch(Gate basis, std::uint64_t count);

  /// True when the backend only counts events and never inspects classical
  /// data values. Circuit generators may skip expensive data-dependent
  /// Clifford bookkeeping (e.g. lookup-table payload writes) when set, and
  /// emit equivalent batched Clifford events instead.
  virtual bool counting_only() const { return false; }
};

}  // namespace qre
