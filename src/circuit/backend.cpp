#include "circuit/backend.hpp"

#include "common/error.hpp"

namespace qre {

Backend::~Backend() = default;

void Backend::on_allocate(QubitId, std::uint64_t) {}
void Backend::on_release(QubitId, std::uint64_t) {}

void Backend::on_gate_batch(Gate g, std::uint64_t count) {
  // Default: replay as individual events on a scratch operand set. Backends
  // that can handle batches natively (counters) override this; backends that
  // cannot possibly honor anonymous operands must reject it.
  (void)g;
  (void)count;
  throw_error("this backend does not support batched gate events");
}

void Backend::on_measure_batch(Gate basis, std::uint64_t count) {
  (void)basis;
  (void)count;
  throw_error("this backend does not support batched measurement events");
}

}  // namespace qre
