#include "json/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>

#include "common/error.hpp"

namespace qre::json {

Value::Value(std::uint64_t i) {
  if (i <= static_cast<std::uint64_t>(std::numeric_limits<std::int64_t>::max())) {
    data_ = static_cast<std::int64_t>(i);
  } else {
    data_ = static_cast<double>(i);
  }
}

namespace {
[[noreturn]] void type_error(const char* want) {
  throw_error(std::string("JSON value is not of type ") + want);
}
}  // namespace

bool Value::as_bool() const {
  if (const bool* b = std::get_if<bool>(&data_)) return *b;
  type_error("bool");
}

double Value::as_double() const {
  if (const double* d = std::get_if<double>(&data_)) return *d;
  if (const std::int64_t* i = std::get_if<std::int64_t>(&data_)) return static_cast<double>(*i);
  type_error("number");
}

std::int64_t Value::as_int() const {
  if (const std::int64_t* i = std::get_if<std::int64_t>(&data_)) return *i;
  if (const double* d = std::get_if<double>(&data_)) {
    if (std::floor(*d) == *d) return static_cast<std::int64_t>(*d);
  }
  type_error("integer");
}

std::uint64_t Value::as_uint() const {
  std::int64_t v = as_int();
  QRE_REQUIRE(v >= 0, "JSON integer is negative where a count was expected");
  return static_cast<std::uint64_t>(v);
}

const std::string& Value::as_string() const {
  if (const std::string* s = std::get_if<std::string>(&data_)) return *s;
  type_error("string");
}

const Array& Value::as_array() const {
  if (const Array* a = std::get_if<Array>(&data_)) return *a;
  type_error("array");
}

Array& Value::as_array() {
  if (Array* a = std::get_if<Array>(&data_)) return *a;
  type_error("array");
}

const Object& Value::as_object() const {
  if (const Object* o = std::get_if<Object>(&data_)) return *o;
  type_error("object");
}

Object& Value::as_object() {
  if (Object* o = std::get_if<Object>(&data_)) return *o;
  type_error("object");
}

const Value* Value::find(std::string_view key) const {
  const Object* o = std::get_if<Object>(&data_);
  if (o == nullptr) return nullptr;
  for (const auto& [k, v] : *o) {
    if (k == key) return &v;
  }
  return nullptr;
}

const Value& Value::at(std::string_view key) const {
  const Value* v = find(key);
  if (v == nullptr) throw_error("JSON object is missing required key '" + std::string(key) + "'");
  return *v;
}

void Value::set(std::string_view key, Value v) {
  Object& o = as_object();
  for (auto& [k, existing] : o) {
    if (k == key) {
      existing = std::move(v);
      return;
    }
  }
  o.emplace_back(std::string(key), std::move(v));
}

namespace {

void write_escaped(std::string& out, const std::string& s) {
  out.push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

void write_number(std::string& out, double d) {
  if (std::isnan(d) || std::isinf(d)) {
    out += "null";  // JSON has no NaN/Inf; estimator results never produce them
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", d);
  // Use the shortest representation that round-trips.
  for (int prec = 1; prec < 17; ++prec) {
    char shorter[40];
    std::snprintf(shorter, sizeof shorter, "%.*g", prec, d);
    double back = 0.0;
    std::sscanf(shorter, "%lf", &back);
    if (back == d) {
      out += shorter;
      return;
    }
  }
  out += buf;
}

void indent_to(std::string& out, int indent, int depth) {
  if (indent <= 0) return;
  out.push_back('\n');
  out.append(static_cast<std::size_t>(indent) * depth, ' ');
}

}  // namespace

void Value::write(std::string& out, int indent, int depth) const {
  if (is_null()) {
    out += "null";
  } else if (const bool* b = std::get_if<bool>(&data_)) {
    out += *b ? "true" : "false";
  } else if (const std::int64_t* i = std::get_if<std::int64_t>(&data_)) {
    out += std::to_string(*i);
  } else if (const double* d = std::get_if<double>(&data_)) {
    write_number(out, *d);
  } else if (const std::string* s = std::get_if<std::string>(&data_)) {
    write_escaped(out, *s);
  } else if (const Array* a = std::get_if<Array>(&data_)) {
    if (a->empty()) {
      out += "[]";
      return;
    }
    out.push_back('[');
    for (std::size_t i = 0; i < a->size(); ++i) {
      if (i != 0) out.push_back(',');
      indent_to(out, indent, depth + 1);
      (*a)[i].write(out, indent, depth + 1);
    }
    indent_to(out, indent, depth);
    out.push_back(']');
  } else if (const Object* o = std::get_if<Object>(&data_)) {
    if (o->empty()) {
      out += "{}";
      return;
    }
    out.push_back('{');
    bool first = true;
    for (const auto& [k, v] : *o) {
      if (!first) out.push_back(',');
      first = false;
      indent_to(out, indent, depth + 1);
      write_escaped(out, k);
      out.push_back(':');
      if (indent > 0) out.push_back(' ');
      v.write(out, indent, depth + 1);
    }
    indent_to(out, indent, depth);
    out.push_back('}');
  }
}

std::string Value::dump() const {
  std::string out;
  write(out, 0, 0);
  return out;
}

std::string Value::pretty() const {
  std::string out;
  write(out, 2, 0);
  return out;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Value run() {
    Value v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after JSON document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& message) const {
    int line = 1;
    int col = 1;
    for (std::size_t i = 0; i < pos_ && i < text_.size(); ++i) {
      if (text_[i] == '\n') {
        ++line;
        col = 1;
      } else {
        ++col;
      }
    }
    std::ostringstream os;
    os << "JSON parse error at line " << line << ", column " << col << ": " << message;
    throw_error(os.str());
  }

  bool at_end() const { return pos_ >= text_.size(); }
  char peek() const { return at_end() ? '\0' : text_[pos_]; }
  char next() {
    if (at_end()) fail("unexpected end of input");
    return text_[pos_++];
  }

  void skip_ws() {
    while (!at_end()) {
      char c = text_[pos_];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        ++pos_;
      } else {
        break;
      }
    }
  }

  void expect_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) fail("invalid literal");
    pos_ += lit.size();
  }

  Value parse_value() {
    skip_ws();
    if (at_end()) fail("unexpected end of input");
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return Value(parse_string());
      case 't': expect_literal("true"); return Value(true);
      case 'f': expect_literal("false"); return Value(false);
      case 'n': expect_literal("null"); return Value(nullptr);
      default: return parse_number();
    }
  }

  Value parse_object() {
    next();  // '{'
    Object obj;
    skip_ws();
    if (peek() == '}') {
      next();
      return Value(std::move(obj));
    }
    for (;;) {
      skip_ws();
      if (peek() != '"') fail("expected object key string");
      std::string key = parse_string();
      skip_ws();
      if (next() != ':') fail("expected ':' after object key");
      obj.emplace_back(std::move(key), parse_value());
      skip_ws();
      char c = next();
      if (c == ',') continue;
      if (c == '}') break;
      fail("expected ',' or '}' in object");
    }
    return Value(std::move(obj));
  }

  Value parse_array() {
    next();  // '['
    Array arr;
    skip_ws();
    if (peek() == ']') {
      next();
      return Value(std::move(arr));
    }
    for (;;) {
      arr.push_back(parse_value());
      skip_ws();
      char c = next();
      if (c == ',') continue;
      if (c == ']') break;
      fail("expected ',' or ']' in array");
    }
    return Value(std::move(arr));
  }

  std::string parse_string() {
    next();  // '"'
    std::string out;
    for (;;) {
      char c = next();
      if (c == '"') return out;
      if (c == '\\') {
        char esc = next();
        switch (esc) {
          case '"': out.push_back('"'); break;
          case '\\': out.push_back('\\'); break;
          case '/': out.push_back('/'); break;
          case 'n': out.push_back('\n'); break;
          case 't': out.push_back('\t'); break;
          case 'r': out.push_back('\r'); break;
          case 'b': out.push_back('\b'); break;
          case 'f': out.push_back('\f'); break;
          case 'u': {
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              char h = next();
              code <<= 4;
              if (h >= '0' && h <= '9') {
                code |= static_cast<unsigned>(h - '0');
              } else if (h >= 'a' && h <= 'f') {
                code |= static_cast<unsigned>(h - 'a' + 10);
              } else if (h >= 'A' && h <= 'F') {
                code |= static_cast<unsigned>(h - 'A' + 10);
              } else {
                fail("invalid \\u escape");
              }
            }
            // Encode as UTF-8 (surrogate pairs are not combined; estimator
            // inputs are ASCII identifiers and formulas).
            if (code < 0x80) {
              out.push_back(static_cast<char>(code));
            } else if (code < 0x800) {
              out.push_back(static_cast<char>(0xC0 | (code >> 6)));
              out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
            } else {
              out.push_back(static_cast<char>(0xE0 | (code >> 12)));
              out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
              out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
            }
            break;
          }
          default: fail("invalid escape character");
        }
      } else if (static_cast<unsigned char>(c) < 0x20) {
        fail("raw control character in string");
      } else {
        out.push_back(c);
      }
    }
  }

  Value parse_number() {
    std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    bool is_integer = true;
    while (!at_end() && std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    if (peek() == '.') {
      is_integer = false;
      ++pos_;
      while (!at_end() && std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    if (peek() == 'e' || peek() == 'E') {
      is_integer = false;
      ++pos_;
      if (peek() == '+' || peek() == '-') ++pos_;
      while (!at_end() && std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    std::string token(text_.substr(start, pos_ - start));
    if (token.empty() || token == "-") fail("invalid number");
    if (is_integer) {
      try {
        return Value(static_cast<std::int64_t>(std::stoll(token)));
      } catch (const std::exception&) {
        // Falls through to double for out-of-range integers.
      }
    }
    try {
      return Value(std::stod(token));
    } catch (const std::exception&) {
      fail("invalid number '" + token + "'");
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

Value parse(std::string_view text) { return Parser(text).run(); }

Value parse_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  QRE_REQUIRE(in.good(), "cannot open JSON file '" + path + "'");
  std::ostringstream ss;
  ss << in.rdbuf();
  return parse(ss.str());
}

}  // namespace qre::json
