// Minimal JSON value / parser / writer.
//
// The estimator's external interface mirrors the Azure Quantum Resource
// Estimator job schema: job parameters (qubit model, QEC scheme, error
// budget, constraints, distillation units) arrive as JSON, and results are
// emitted as JSON grouped exactly like the tool's output (Section IV-D of
// the paper). This module implements the small JSON subset needed for that,
// with insertion-ordered objects so emitted reports are stable.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <variant>
#include <vector>

namespace qre::json {

class Value;

using Array = std::vector<Value>;
/// Insertion-ordered object representation.
using Object = std::vector<std::pair<std::string, Value>>;

/// A JSON document node. Numbers are stored as double plus an exact-integer
/// flag so counts such as physical qubit numbers round-trip without a
/// trailing ".0".
class Value {
 public:
  Value() : data_(nullptr) {}
  Value(std::nullptr_t) : data_(nullptr) {}
  Value(bool b) : data_(b) {}
  Value(double d) : data_(d) {}
  Value(int i) : data_(static_cast<std::int64_t>(i)) {}
  Value(unsigned int i) : data_(static_cast<std::int64_t>(i)) {}
  Value(std::int64_t i) : data_(i) {}
  Value(std::uint64_t i);
  Value(const char* s) : data_(std::string(s)) {}
  Value(std::string s) : data_(std::move(s)) {}
  Value(Array a) : data_(std::move(a)) {}
  Value(Object o) : data_(std::move(o)) {}

  bool is_null() const { return std::holds_alternative<std::nullptr_t>(data_); }
  bool is_bool() const { return std::holds_alternative<bool>(data_); }
  bool is_number() const {
    return std::holds_alternative<double>(data_) || std::holds_alternative<std::int64_t>(data_);
  }
  bool is_string() const { return std::holds_alternative<std::string>(data_); }
  bool is_array() const { return std::holds_alternative<Array>(data_); }
  bool is_object() const { return std::holds_alternative<Object>(data_); }

  /// Typed accessors; each throws qre::Error on a type mismatch.
  bool as_bool() const;
  double as_double() const;
  std::int64_t as_int() const;
  std::uint64_t as_uint() const;
  const std::string& as_string() const;
  const Array& as_array() const;
  Array& as_array();
  const Object& as_object() const;
  Object& as_object();

  /// Object field lookup; returns nullptr when absent (or when not an object).
  const Value* find(std::string_view key) const;
  /// Object field lookup; throws qre::Error naming the key when absent.
  const Value& at(std::string_view key) const;
  /// Inserts or replaces an object field (value must be an object).
  void set(std::string_view key, Value v);

  /// Serializes compactly (no whitespace).
  std::string dump() const;
  /// Serializes with 2-space indentation.
  std::string pretty() const;

  bool operator==(const Value& other) const { return data_ == other.data_; }

 private:
  void write(std::string& out, int indent, int depth) const;

  std::variant<std::nullptr_t, bool, double, std::int64_t, std::string, Array, Object> data_;
};

/// Parses a complete JSON document; throws qre::Error with line/column info.
Value parse(std::string_view text);

/// Reads and parses a JSON file; throws qre::Error on I/O or parse failure.
Value parse_file(const std::string& path);

}  // namespace qre::json
