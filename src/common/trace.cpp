#include "common/trace.hpp"

#include <time.h>

#include <algorithm>
#include <cstdio>
#include <cstring>

namespace qre::trace {

namespace {

constexpr std::size_t kFlushBatch = 128;  // TLS buffer size before a forced flush

/// The bounded global ring. Storage is preallocated by enable(); writers
/// only touch it under the mutex, and the hot path (Span) batches writes
/// through thread-local buffers so the mutex is taken ~once per kFlushBatch
/// events (or per request root span).
struct Ring {
  Mutex mutex;
  std::vector<Event> events QRE_GUARDED_BY(mutex);
  std::size_t head QRE_GUARDED_BY(mutex) = 0;  // oldest entry once full
  std::size_t size QRE_GUARDED_BY(mutex) = 0;
  std::size_t cap QRE_GUARDED_BY(mutex) = 0;
  std::uint64_t dropped QRE_GUARDED_BY(mutex) = 0;
};

Ring& ring() {
  static Ring* r = new Ring;  // leaked: must outlive thread-exit flushes
  return *r;
}

std::atomic<bool> g_enabled{false};
std::atomic<std::uint64_t> g_next_span_id{1};
std::atomic<std::uint32_t> g_next_tid{1};
std::atomic<std::int64_t> g_epoch_ns{0};  // export origin (steady-clock ns)

std::int64_t steady_ns(std::chrono::steady_clock::time_point t) {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(t.time_since_epoch())
      .count();
}

void push_locked(Ring& r, const Event& e) QRE_REQUIRES(r.mutex) {
  if (r.cap == 0) return;  // never enabled: nowhere to record
  if (r.size < r.cap) {
    r.events[(r.head + r.size) % r.cap] = e;
    ++r.size;
  } else {
    r.events[r.head] = e;  // overwrite the oldest event
    r.head = (r.head + 1) % r.cap;
    ++r.dropped;
  }
}

/// Per-thread tracer state. The destructor flushes whatever the thread
/// buffered, so short-lived engine workers never strand events.
struct ThreadState {
  std::vector<Event> buffer;
  std::uint64_t current_span = 0;
  std::uint32_t open_spans = 0;  // traced spans currently open on this thread
  std::uint32_t tid = 0;
  Collector* collector = nullptr;

  ~ThreadState() { flush(); }

  void flush() {
    if (buffer.empty()) return;
    Ring& r = ring();
    MutexLock lock(r.mutex);
    if (g_enabled.load(std::memory_order_relaxed)) {
      for (const Event& e : buffer) push_locked(r, e);
    }
    buffer.clear();
  }
};

ThreadState& tls() {
  thread_local ThreadState state;
  return state;
}

std::uint32_t thread_id(ThreadState& t) {
  if (t.tid == 0) t.tid = g_next_tid.fetch_add(1, std::memory_order_relaxed);
  return t.tid;
}

std::int64_t clock_ns(clockid_t clock) {
  timespec ts{};
  if (::clock_gettime(clock, &ts) != 0) return 0;
  return static_cast<std::int64_t>(ts.tv_sec) * 1000000000 + ts.tv_nsec;
}

double to_ms(std::int64_t ns) { return static_cast<double>(ns) / 1e6; }

}  // namespace

bool enabled() { return g_enabled.load(std::memory_order_relaxed); }

void enable(std::size_t cap) {
  if (cap == 0) cap = 1;
  Ring& r = ring();
  {
    MutexLock lock(r.mutex);
    r.events.assign(cap, Event{});
    r.cap = cap;
    r.head = 0;
    r.size = 0;
    r.dropped = 0;
  }
  g_epoch_ns.store(steady_ns(std::chrono::steady_clock::now()),
                   std::memory_order_relaxed);
  g_enabled.store(true, std::memory_order_release);
}

void disable() { g_enabled.store(false, std::memory_order_release); }

void clear() {
  Ring& r = ring();
  MutexLock lock(r.mutex);
  r.head = 0;
  r.size = 0;
  r.dropped = 0;
}

std::uint64_t dropped() {
  Ring& r = ring();
  MutexLock lock(r.mutex);
  return r.dropped;
}

std::size_t capacity() {
  Ring& r = ring();
  MutexLock lock(r.mutex);
  return r.cap;
}

std::vector<Event> snapshot() {
  tls().flush();
  Ring& r = ring();
  MutexLock lock(r.mutex);
  std::vector<Event> out;
  out.reserve(r.size);
  for (std::size_t i = 0; i < r.size; ++i) out.push_back(r.events[(r.head + i) % r.cap]);
  return out;
}

json::Value stats_to_json() {
  Ring& r = ring();
  std::size_t events = 0;
  std::size_t cap = 0;
  std::uint64_t drops = 0;
  {
    MutexLock lock(r.mutex);
    events = r.size;
    cap = r.cap;
    drops = r.dropped;
  }
  json::Object out;
  out.emplace_back("enabled", json::Value(enabled()));
  out.emplace_back("events", json::Value(static_cast<std::uint64_t>(events)));
  out.emplace_back("dropped", json::Value(drops));
  out.emplace_back("capacity", json::Value(static_cast<std::uint64_t>(cap)));
  return json::Value(std::move(out));
}

std::string to_chrome_json() {
  const std::vector<Event> events = snapshot();
  const std::int64_t epoch = g_epoch_ns.load(std::memory_order_relaxed);
  std::string out = "[\n";
  char line[256];
  bool first = true;
  for (const Event& e : events) {
    if (!first) out += ",\n";
    first = false;
    const double ts_us = static_cast<double>(e.start_ns - epoch) / 1e3;
    if (e.dur_ns >= 0) {
      std::snprintf(line, sizeof line,
                    R"({"name":"%s","cat":"qre","ph":"X","pid":0,"tid":%u,"ts":%.3f,)"
                    R"("dur":%.3f,"args":{"span":%llu,"parent":%llu,"cpuUs":%.3f}})",
                    e.name, e.tid, ts_us, static_cast<double>(e.dur_ns) / 1e3,
                    static_cast<unsigned long long>(e.id),
                    static_cast<unsigned long long>(e.parent),
                    e.cpu_ns >= 0 ? static_cast<double>(e.cpu_ns) / 1e3 : -1.0);
    } else {
      std::snprintf(line, sizeof line,
                    R"({"name":"%s","cat":"qre","ph":"i","s":"t","pid":0,"tid":%u,)"
                    R"("ts":%.3f,"args":{"parent":%llu}})",
                    e.name, e.tid, ts_us, static_cast<unsigned long long>(e.parent));
    }
    out += line;
  }
  out += "\n]\n";
  return out;
}

bool write_chrome_json(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string body = to_chrome_json();
  const bool ok = std::fwrite(body.data(), 1, body.size(), f) == body.size();
  return (std::fclose(f) == 0) && ok;
}

std::uint64_t current_span() { return tls().current_span; }

void record_span(const char* name, std::chrono::steady_clock::time_point start,
                 std::chrono::steady_clock::time_point end, std::uint64_t parent) {
  if (!g_enabled.load(std::memory_order_relaxed)) return;
  Event e;
  e.name = name;
  e.id = g_next_span_id.fetch_add(1, std::memory_order_relaxed);
  e.parent = parent;
  e.tid = thread_id(tls());
  e.start_ns = steady_ns(start);
  e.dur_ns = std::max<std::int64_t>(0, steady_ns(end) - e.start_ns);
  Ring& r = ring();
  MutexLock lock(r.mutex);
  push_locked(r, e);
}

void instant(const char* name) {
  ThreadState& t = tls();
  if (t.collector != nullptr) t.collector->count(name);
  if (!g_enabled.load(std::memory_order_relaxed)) return;
  Event e;
  e.name = name;
  e.parent = t.current_span;
  e.tid = thread_id(t);
  e.start_ns = steady_ns(std::chrono::steady_clock::now());
  t.buffer.push_back(e);
  if (t.buffer.size() >= kFlushBatch) t.flush();
}

std::int64_t thread_cpu_ns() { return clock_ns(CLOCK_THREAD_CPUTIME_ID); }

std::int64_t process_cpu_ns() { return clock_ns(CLOCK_PROCESS_CPUTIME_ID); }

// ---------------------------------------------------------------------------
// Collector

Collector::Entry& Collector::entry_locked(std::vector<Entry>& entries, const char* name) {
  for (Entry& e : entries) {
    if (e.name == name) return e;
  }
  entries.emplace_back();
  entries.back().name = name;
  return entries.back();
}

void Collector::phase(const char* name, std::int64_t wall_ns, std::int64_t cpu_ns) {
  MutexLock lock(mutex_);
  Entry& e = entry_locked(phases_, name);
  ++e.count;
  e.wall_ns += wall_ns;
  e.cpu_ns += cpu_ns;
}

void Collector::add(const char* name, std::int64_t wall_ns, std::int64_t cpu_ns) {
  MutexLock lock(mutex_);
  Entry& e = entry_locked(detail_, name);
  ++e.count;
  e.wall_ns += wall_ns;
  e.cpu_ns += cpu_ns;
  if (e.samples.size() < kMaxSamples) e.samples.push_back(wall_ns);
}

void Collector::count(const char* name, std::uint64_t n) {
  MutexLock lock(mutex_);
  for (auto& [existing, value] : counters_) {
    if (existing == name) {
      value += n;
      return;
    }
  }
  counters_.emplace_back(name, n);
}

std::vector<std::int64_t> Collector::samples(const char* name) const {
  MutexLock lock(mutex_);
  for (const Entry& e : detail_) {
    if (e.name == name) {
      std::vector<std::int64_t> out = e.samples;
      std::sort(out.begin(), out.end());
      return out;
    }
  }
  return {};
}

double Collector::percentile(const std::vector<std::int64_t>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return static_cast<double>(sorted[lo]) * (1.0 - frac) +
         static_cast<double>(sorted[hi]) * frac;
}

json::Value Collector::to_json(std::int64_t total_wall_ns,
                               std::int64_t total_cpu_ns) const {
  MutexLock lock(mutex_);
  json::Object out;
  out.emplace_back("totalWallMs", json::Value(to_ms(total_wall_ns)));
  out.emplace_back("totalCpuMs", json::Value(to_ms(total_cpu_ns)));

  json::Array phases;
  for (const Entry& e : phases_) {
    json::Object p;
    p.emplace_back("name", e.name);
    p.emplace_back("wallMs", json::Value(to_ms(e.wall_ns)));
    p.emplace_back("cpuMs", json::Value(to_ms(e.cpu_ns)));
    phases.push_back(json::Value(std::move(p)));
  }
  out.emplace_back("phases", json::Value(std::move(phases)));

  json::Array detail;
  for (const Entry& e : detail_) {
    json::Object d;
    d.emplace_back("name", e.name);
    d.emplace_back("count", json::Value(e.count));
    d.emplace_back("wallMs", json::Value(to_ms(e.wall_ns)));
    d.emplace_back("cpuMs", json::Value(to_ms(e.cpu_ns)));
    std::vector<std::int64_t> sorted = e.samples;
    std::sort(sorted.begin(), sorted.end());
    d.emplace_back("p50Ms", json::Value(percentile(sorted, 50) / 1e6));
    d.emplace_back("p99Ms", json::Value(percentile(sorted, 99) / 1e6));
    detail.push_back(json::Value(std::move(d)));
  }
  out.emplace_back("detail", json::Value(std::move(detail)));

  json::Object counters;
  for (const auto& [name, value] : counters_) {
    counters.emplace_back(name, json::Value(value));
  }
  out.emplace_back("counters", json::Value(std::move(counters)));
  return json::Value(std::move(out));
}

Collector* current_collector() { return tls().collector; }

CollectorScope::CollectorScope(Collector* collector) {
  ThreadState& t = tls();
  prev_collector_ = t.collector;
  t.collector = collector;
}

CollectorScope::CollectorScope(Collector* collector, std::uint64_t parent_span) {
  ThreadState& t = tls();
  prev_collector_ = t.collector;
  prev_span_ = t.current_span;
  restore_span_ = true;
  t.collector = collector;
  t.current_span = parent_span;
}

CollectorScope::~CollectorScope() {
  ThreadState& t = tls();
  t.collector = prev_collector_;
  if (restore_span_) t.current_span = prev_span_;
}

// ---------------------------------------------------------------------------
// Span / PhaseTimer

Span::Span(const char* name, bool collect) {
  ThreadState& t = tls();
  if (collect) collector_ = t.collector;
  const bool tracing = g_enabled.load(std::memory_order_relaxed);
  if (!tracing && collector_ == nullptr) return;  // inactive: name_ stays null
  name_ = name;
  start_ = std::chrono::steady_clock::now();
  cpu_start_ = thread_cpu_ns();
  if (tracing) {
    id_ = g_next_span_id.fetch_add(1, std::memory_order_relaxed);
    parent_ = t.current_span;
    t.current_span = id_;
    ++t.open_spans;
  }
}

Span::~Span() {
  if (name_ == nullptr) return;
  const std::int64_t wall =
      steady_ns(std::chrono::steady_clock::now()) - steady_ns(start_);
  const std::int64_t cpu = thread_cpu_ns() - cpu_start_;
  if (id_ != 0) {
    ThreadState& t = tls();
    t.current_span = parent_;
    --t.open_spans;
    if (g_enabled.load(std::memory_order_relaxed)) {
      Event e;
      e.name = name_;
      e.id = id_;
      e.parent = parent_;
      e.tid = thread_id(t);
      e.start_ns = steady_ns(start_);
      e.dur_ns = wall;
      e.cpu_ns = cpu;
      t.buffer.push_back(e);
      // Flush when the batch is full or this thread just closed its
      // outermost span (end of a request / batch item run on this thread).
      if (t.buffer.size() >= kFlushBatch || t.open_spans == 0) t.flush();
    } else {
      t.buffer.clear();  // tracer turned off mid-span: drop stale events
    }
  }
  if (collector_ != nullptr) collector_->add(name_, wall, cpu);
}

PhaseTimer::PhaseTimer(Collector* collector, const char* name)
    : collector_(collector),
      name_(name),
      span_(name, /*collect=*/false),
      start_(std::chrono::steady_clock::now()),
      cpu_start_(thread_cpu_ns()) {}

PhaseTimer::~PhaseTimer() {
  if (collector_ == nullptr) return;
  const std::int64_t wall =
      steady_ns(std::chrono::steady_clock::now()) - steady_ns(start_);
  collector_->phase(name_, wall, thread_cpu_ns() - cpu_start_);
}

}  // namespace qre::trace
