// Small integer/floating-point helpers shared across modules.
#pragma once

#include <cmath>
#include <cstdint>
#include <limits>

#include "common/error.hpp"

namespace qre {

/// Ceiling division for non-negative integers.
constexpr std::uint64_t ceil_div(std::uint64_t a, std::uint64_t b) {
  return b == 0 ? 0 : (a + b - 1) / b;
}

/// Number of bits needed to represent v (bit_length(0) == 0).
constexpr int bit_length(std::uint64_t v) {
  int n = 0;
  while (v != 0) {
    ++n;
    v >>= 1;
  }
  return n;
}

/// floor(log2(v)) for v >= 1.
constexpr int ilog2_floor(std::uint64_t v) { return bit_length(v) - 1; }

/// ceil(log2(v)) for v >= 1.
constexpr int ilog2_ceil(std::uint64_t v) {
  if (v <= 1) return 0;
  return bit_length(v - 1);
}

constexpr bool is_pow2(std::uint64_t v) { return v != 0 && (v & (v - 1)) == 0; }

/// Smallest power of two >= v (v >= 1).
constexpr std::uint64_t next_pow2(std::uint64_t v) {
  std::uint64_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

/// Rounds an integer up to the next odd value (odd inputs unchanged).
constexpr std::uint64_t next_odd(std::uint64_t v) { return (v % 2 == 0) ? v + 1 : v; }

/// ceil() that is robust against values that are integral up to fp noise.
inline std::uint64_t ceil_to_u64(double v) {
  QRE_REQUIRE(v >= 0.0 && std::isfinite(v), "ceil_to_u64: value must be finite and non-negative");
  const double eps = 1e-9;
  double c = std::ceil(v - eps);
  if (c < 0.0) c = 0.0;
  QRE_REQUIRE(c <= static_cast<double>(std::numeric_limits<std::uint64_t>::max()),
              "ceil_to_u64: value out of range");
  return static_cast<std::uint64_t>(c);
}

}  // namespace qre
