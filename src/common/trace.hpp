// Lock-cheap span/event tracer + per-request timing collector.
//
// Two cooperating facilities behind one instrumentation macro set:
//
//  * A process-global TRACER: `QRE_TRACE_SPAN("engine.item")` opens a RAII
//    span with a monotonic start timestamp, a process-unique span id, and a
//    parent link to the enclosing span on the same thread. Finished events
//    land in a thread-local buffer that is flushed into ONE bounded global
//    ring (overwrite-oldest, with a dropped counter) when the buffer fills,
//    when the thread's root span ends, or when the thread exits — so the
//    hot path never takes the ring mutex per span. Off by default; when
//    disabled the whole span costs one relaxed atomic load plus a TLS read
//    (the microbench in bench/microbench_trace.cpp keeps this honest).
//    snapshot()/to_chrome_json() export the ring in the Chrome Trace Event
//    ("JSON array") format that chrome://tracing and Perfetto load directly.
//
//  * A per-request COLLECTOR: api::run (opt-in via "collectTimings": true
//    or qre_cli --timings) installs a trace::Collector as a thread-local
//    for the request thread and every engine worker. The same spans then
//    also aggregate per-name wall/CPU totals, bounded latency samples (for
//    p50/p99), and counter instants (cache hits/misses) into the collector,
//    which renders the "timings" block of the result document. Collectors
//    work even while the global tracer is off, and vice versa.
//
// Span names are static string literals from the taxonomy documented in
// docs/observability.md; qre_lint check #6 keeps code and docs in sync.
// Compile-time opt-out mirrors QRE_FAILPOINT: building with -DQRE_TRACING=OFF
// defines QRE_TRACING_DISABLED and the macros expand to nothing.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/mutex.hpp"
#include "common/thread_annotations.hpp"
#include "json/json.hpp"

namespace qre::trace {

/// One finished span (dur_ns >= 0) or instant marker (dur_ns < 0).
/// Timestamps are absolute steady-clock nanoseconds; exports subtract the
/// enable() epoch. `name` is a static literal and is never freed.
struct Event {
  const char* name = nullptr;
  std::uint64_t id = 0;      // span id; 0 for instants
  std::uint64_t parent = 0;  // enclosing span id; 0 at root
  std::uint32_t tid = 0;     // small sequential per-thread id (export-friendly)
  std::int64_t start_ns = 0;
  std::int64_t dur_ns = -1;
  std::int64_t cpu_ns = -1;  // CLOCK_THREAD_CPUTIME_ID delta; -1 unknown
};

inline constexpr std::size_t kDefaultCapacity = 64 * 1024;  // events in the ring

/// Whether the global tracer is recording (relaxed; instrumentation-grade).
bool enabled();

/// Clears the ring, (re)sizes it to `capacity` events, resets the dropped
/// counter, re-anchors the export epoch at "now", and starts recording.
void enable(std::size_t capacity = kDefaultCapacity);

/// Stops recording. Already-buffered events stay exportable.
void disable();

/// Empties the ring and resets the dropped counter (recording state is
/// unchanged).
void clear();

/// Events overwritten because the ring was full since the last enable/clear.
std::uint64_t dropped();

/// Ring capacity in events (0 until the first enable()).
std::size_t capacity();

/// Flushes the calling thread's buffer and copies the ring, oldest first.
std::vector<Event> snapshot();

/// {"enabled", "events", "dropped", "capacity"} — the /metrics "trace" block.
json::Value stats_to_json();

/// The ring as a Chrome Trace Event JSON array (one event per line): load
/// the bytes directly in chrome://tracing or Perfetto. Valid JSON.
std::string to_chrome_json();

/// Writes to_chrome_json() to `path` (qre_serve/qre_cli --trace-file).
/// Returns false when the file cannot be written.
bool write_chrome_json(const std::string& path);

/// The calling thread's innermost open span id (0 outside any span).
std::uint64_t current_span();

/// Records a completed span directly into the ring, bypassing thread-local
/// buffers — for durations measured across threads, e.g. the job queue's
/// queued/running intervals. No-op while the tracer is disabled.
void record_span(const char* name, std::chrono::steady_clock::time_point start,
                 std::chrono::steady_clock::time_point end, std::uint64_t parent = 0);

/// Emits an instant event under the current span, and bumps the same-named
/// counter on the thread's collector (if one is installed). Use through
/// QRE_TRACE_INSTANT.
void instant(const char* name);

/// CLOCK_THREAD_CPUTIME_ID in nanoseconds (0 where unsupported).
std::int64_t thread_cpu_ns();

/// CLOCK_PROCESS_CPUTIME_ID in nanoseconds (0 where unsupported).
std::int64_t process_cpu_ns();

/// Per-request timing aggregation, rendered as the "timings" block. Two
/// tiers: `phase()` entries are the request thread's non-overlapping
/// top-level stages (their wall times sum to ~the request wall time),
/// `add()` entries are per-span-name aggregates that may nest and overlap
/// across worker threads (so their sum can exceed wall time). Thread-safe;
/// one instance serves the request thread and all its engine workers.
class Collector {
 public:
  struct Entry {
    std::string name;
    std::uint64_t count = 0;
    std::int64_t wall_ns = 0;
    std::int64_t cpu_ns = 0;
    std::vector<std::int64_t> samples;  // per-call wall ns, capped at kMaxSamples
  };

  /// Bound on retained per-entry latency samples; beyond it totals keep
  /// accumulating but percentiles describe the first kMaxSamples calls.
  static constexpr std::size_t kMaxSamples = 4096;

  /// Adds one top-level phase (insertion-ordered; repeated names accumulate).
  void phase(const char* name, std::int64_t wall_ns, std::int64_t cpu_ns);

  /// Adds one span occurrence to the per-name detail aggregate.
  void add(const char* name, std::int64_t wall_ns, std::int64_t cpu_ns);

  /// Bumps a named counter (cache hits/misses and similar instants).
  void count(const char* name, std::uint64_t n = 1);

  /// Sorted wall-time samples (ns) of detail entry `name`; empty if absent.
  std::vector<std::int64_t> samples(const char* name) const;

  /// The `p`-th percentile (0..100) of sorted samples; 0 when empty.
  static double percentile(const std::vector<std::int64_t>& sorted, double p);

  /// {"totalWallMs", "totalCpuMs", "phases": [...], "detail": [...],
  ///  "counters": {...}} — see docs/observability.md for field semantics.
  json::Value to_json(std::int64_t total_wall_ns, std::int64_t total_cpu_ns) const;

 private:
  Entry& entry_locked(std::vector<Entry>& entries, const char* name)
      QRE_REQUIRES(mutex_);

  mutable Mutex mutex_;
  std::vector<Entry> phases_ QRE_GUARDED_BY(mutex_);
  std::vector<Entry> detail_ QRE_GUARDED_BY(mutex_);
  std::vector<std::pair<std::string, std::uint64_t>> counters_ QRE_GUARDED_BY(mutex_);
};

/// The collector installed on the calling thread (nullptr outside a timed
/// request).
Collector* current_collector();

/// RAII install of a collector as the calling thread's thread-local, with
/// an optional parent-span base so worker-thread spans link back to the
/// span that launched the batch. Restores the previous state on scope exit;
/// `collector` may be nullptr (explicitly un-installs within the scope).
class CollectorScope {
 public:
  explicit CollectorScope(Collector* collector);
  CollectorScope(Collector* collector, std::uint64_t parent_span);
  ~CollectorScope();

  CollectorScope(const CollectorScope&) = delete;
  CollectorScope& operator=(const CollectorScope&) = delete;

 private:
  Collector* prev_collector_;
  std::uint64_t prev_span_ = 0;
  bool restore_span_ = false;
};

/// RAII span. Prefer the QRE_TRACE_SPAN macro; construct directly only when
/// the macro's scoping does not fit. `collect=false` keeps the span out of
/// the thread's collector detail (used by PhaseTimer, whose time is already
/// reported as a phase).
class Span {
 public:
  explicit Span(const char* name, bool collect = true);
  ~Span();

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  const char* name_ = nullptr;  // nullptr = inactive (tracer off, no collector)
  Collector* collector_ = nullptr;
  std::uint64_t id_ = 0;
  std::uint64_t parent_ = 0;
  std::chrono::steady_clock::time_point start_;
  std::int64_t cpu_start_ = 0;
};

/// RAII top-level phase: a trace span named `name` plus a Collector::phase
/// entry on destruction. `collector` may be nullptr (span only).
class PhaseTimer {
 public:
  PhaseTimer(Collector* collector, const char* name);
  ~PhaseTimer();

  PhaseTimer(const PhaseTimer&) = delete;
  PhaseTimer& operator=(const PhaseTimer&) = delete;

 private:
  Collector* collector_;
  const char* name_;
  Span span_;
  std::chrono::steady_clock::time_point start_;
  std::int64_t cpu_start_;
};

}  // namespace qre::trace

#if defined(QRE_TRACING_DISABLED)

#define QRE_TRACE_SPAN(name)
#define QRE_TRACE_INSTANT(name) ((void)0)

#else

#define QRE_TRACE_CONCAT_INNER(a, b) a##b
#define QRE_TRACE_CONCAT(a, b) QRE_TRACE_CONCAT_INNER(a, b)
/// Opens a span covering the rest of the enclosing scope.
#define QRE_TRACE_SPAN(name) \
  ::qre::trace::Span QRE_TRACE_CONCAT(qre_trace_span_, __LINE__)(name)
/// Marks an instant under the current span (and a collector counter).
#define QRE_TRACE_INSTANT(name) ::qre::trace::instant(name)

#endif  // QRE_TRACING_DISABLED
