// Human-readable formatting of physical quantities used in reports and
// benchmark tables: durations given in nanoseconds, large counts, SI powers.
#pragma once

#include <cstdint>
#include <string>

namespace qre {

/// Formats a duration in nanoseconds as the most natural unit
/// ("340 ns", "12.4 ms", "1.3 hours", "2.1 days").
std::string format_duration_ns(double nanoseconds);

/// Formats a count with thousands separators ("20597" -> "20,597").
std::string format_count(std::uint64_t count);

/// Formats a value in engineering style with the given number of significant
/// digits ("1.12e11", "0.000100").
std::string format_sci(double value, int significant_digits = 3);

}  // namespace qre
