// Error handling for the qre library.
//
// All user-facing failures (bad input programs, infeasible hardware
// specifications, malformed formulas/JSON) throw qre::Error with a message
// that names the offending input. Internal invariant violations use
// QRE_ASSERT and indicate a library bug.
#pragma once

#include <stdexcept>
#include <string>

namespace qre {

/// Exception thrown for all recoverable, user-facing failures.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

[[noreturn]] void throw_error(const std::string& message);

namespace detail {
[[noreturn]] void assertion_failed(const char* expr, const char* file, int line);
}  // namespace detail

}  // namespace qre

/// Validates a user-facing precondition; throws qre::Error on failure.
#define QRE_REQUIRE(cond, message)        \
  do {                                    \
    if (!(cond)) ::qre::throw_error(message); \
  } while (false)

/// Internal invariant check; failure indicates a bug in qre itself.
#define QRE_ASSERT(expr)                                                  \
  do {                                                                    \
    if (!(expr)) ::qre::detail::assertion_failed(#expr, __FILE__, __LINE__); \
  } while (false)
