#include "common/failpoint.hpp"

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "common/mutex.hpp"

namespace qre::failpoint {

namespace detail {
std::atomic<int> g_active_count{0};
}  // namespace detail

namespace {

enum class Action { kError, kDelay, kCrash };

struct Site {
  Action action = Action::kError;
  int delay_ms = 0;
  int percent = 100;      // fire on roughly this fraction of hits
  std::uint32_t rng = 1;  // per-site LCG state: deterministic, not wall-clock seeded
  std::uint64_t hits = 0;
};

Mutex g_mutex;
std::unordered_map<std::string, Site> g_sites QRE_GUARDED_BY(g_mutex);

void sync_active_count() QRE_REQUIRES(g_mutex) {
  detail::g_active_count.store(static_cast<int>(g_sites.size()), std::memory_order_relaxed);
}

std::string_view trim(std::string_view text) {
  while (!text.empty() && (text.front() == ' ' || text.front() == '\t')) text.remove_prefix(1);
  while (!text.empty() && (text.back() == ' ' || text.back() == '\t')) text.remove_suffix(1);
  return text;
}

bool valid_name(std::string_view name) {
  if (name.empty()) return false;
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c == '_' || c == '.';
    if (!ok) return false;
  }
  return true;
}

// Parses one `name=[N%]action[(arg)]` term and applies it to the registry.
void apply_term(std::string_view term) QRE_REQUIRES(g_mutex) {
  const std::size_t eq = term.find('=');
  QRE_REQUIRE(eq != std::string_view::npos,
              "failpoint spec term '" + std::string(term) + "' is missing '='");
  const std::string name(trim(term.substr(0, eq)));
  QRE_REQUIRE(valid_name(name),
              "failpoint name '" + name + "' is invalid (want [a-z0-9_.]+)");
  std::string_view action = trim(term.substr(eq + 1));
  QRE_REQUIRE(!action.empty(), "failpoint '" + name + "' has an empty action");

  Site site;
  const std::size_t percent = action.find('%');
  if (percent != std::string_view::npos) {
    int value = 0;
    const std::string digits(action.substr(0, percent));
    QRE_REQUIRE(!digits.empty() && digits.find_first_not_of("0123456789") == std::string::npos,
                "failpoint '" + name + "': bad percentage '" + digits + "%'");
    value = std::atoi(digits.c_str());
    QRE_REQUIRE(value >= 0 && value <= 100,
                "failpoint '" + name + "': percentage must be 0..100");
    site.percent = value;
    action = trim(action.substr(percent + 1));
  }

  if (action == "off") {
    g_sites.erase(name);
    sync_active_count();
    return;
  }
  if (action == "error") {
    site.action = Action::kError;
  } else if (action == "crash") {
    site.action = Action::kCrash;
  } else if (action.rfind("delay(", 0) == 0 && action.back() == ')') {
    const std::string digits(action.substr(6, action.size() - 7));
    QRE_REQUIRE(!digits.empty() && digits.find_first_not_of("0123456789") == std::string::npos,
                "failpoint '" + name + "': bad delay '" + std::string(action) + "'");
    site.action = Action::kDelay;
    site.delay_ms = std::atoi(digits.c_str());
  } else {
    throw_error("failpoint '" + name + "': unknown action '" + std::string(action) +
                "' (want error, delay(MS), crash, or off)");
  }
  g_sites[name] = site;
  sync_active_count();
}

}  // namespace

namespace detail {

void hit(const char* name) {
  Action action = Action::kError;
  int delay_ms = 0;
  {
    MutexLock lock(g_mutex);
    const auto it = g_sites.find(name);
    if (it == g_sites.end()) return;
    Site& site = it->second;
    if (site.percent < 100) {
      site.rng = site.rng * 1664525u + 1013904223u;
      if (static_cast<int>((site.rng >> 16) % 100u) >= site.percent) return;
    }
    ++site.hits;
    action = site.action;
    delay_ms = site.delay_ms;
  }
  switch (action) {
    case Action::kError:
      throw Error(std::string("failpoint '") + name + "' injected error");
    case Action::kDelay:
      std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms));
      return;
    case Action::kCrash:
      std::fprintf(stderr, "failpoint '%s': injected crash, _exit(42)\n", name);
      std::fflush(stderr);
      ::_exit(42);
  }
}

}  // namespace detail

bool compiled_in() {
#if defined(QRE_FAILPOINTS_DISABLED)
  return false;
#else
  return true;
#endif
}

void configure(const std::string& spec) {
  if (trim(spec).empty()) return;
  QRE_REQUIRE(compiled_in(),
              "failpoints are compiled out; rebuild with -DQRE_FAILPOINTS=ON");
  MutexLock lock(g_mutex);
  std::string_view rest = spec;
  while (!rest.empty()) {
    const std::size_t semi = rest.find(';');
    const std::string_view term =
        trim(semi == std::string_view::npos ? rest : rest.substr(0, semi));
    rest = semi == std::string_view::npos ? std::string_view() : rest.substr(semi + 1);
    if (!term.empty()) apply_term(term);
  }
}

void configure_from_env() {
  const char* spec = std::getenv("QRE_FAILPOINTS");
  if (spec == nullptr || *spec == '\0') return;
  if (!compiled_in()) {
    std::fprintf(stderr,
                 "warning: QRE_FAILPOINTS is set but failpoints are compiled out; ignoring\n");
    return;
  }
  configure(spec);
}

void reset() {
  MutexLock lock(g_mutex);
  g_sites.clear();
  sync_active_count();
}

std::uint64_t hits(const std::string& name) {
  MutexLock lock(g_mutex);
  const auto it = g_sites.find(name);
  return it == g_sites.end() ? 0 : it->second.hits;
}

json::Value stats_to_json() {
  json::Object triggered;
  int active = 0;
  {
    MutexLock lock(g_mutex);
    active = static_cast<int>(g_sites.size());
    std::vector<std::pair<std::string, std::uint64_t>> rows;
    rows.reserve(g_sites.size());
    for (const auto& [name, site] : g_sites) rows.emplace_back(name, site.hits);
    std::sort(rows.begin(), rows.end());
    for (auto& [name, count] : rows) triggered.emplace_back(name, json::Value(count));
  }
  json::Object body;
  body.emplace_back("compiledIn", json::Value(compiled_in()));
  body.emplace_back("active", json::Value(active));
  body.emplace_back("triggered", json::Value(std::move(triggered)));
  return json::Value(std::move(body));
}

}  // namespace qre::failpoint
