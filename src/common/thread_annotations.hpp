// Clang thread-safety-analysis annotations (compile-time lock discipline).
//
// These macros expand to Clang's capability attributes when compiling with
// Clang and to nothing elsewhere, so annotated code builds unchanged under
// GCC. Under `cmake -DQRE_THREAD_SAFETY=ON` (Clang only) the whole tree is
// compiled with `-Wthread-safety -Werror=thread-safety`, turning the lock
// contracts written with these macros into build errors instead of TSan
// findings that depend on which interleavings the stress tests happen to
// hit. The CI `static-analysis` job runs that configuration on every push;
// tests/static/ proves the analysis actually fires (a seeded violation must
// fail to compile).
//
// The annotations only bite on capability-annotated types, so all qre code
// synchronizes through the wrappers in common/mutex.hpp (qre::Mutex,
// qre::SharedMutex, qre::CondVar and the scoped locks) instead of the
// unannotated std:: primitives. Conventions, the full macro table, and the
// suppression policy are documented in docs/static_analysis.md.
#pragma once

#if defined(__clang__)
#define QRE_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define QRE_THREAD_ANNOTATION(x)  // no-op outside Clang
#endif

/// Declares a class to be a capability (a lockable type). The string names
/// the capability kind in diagnostics, e.g. QRE_CAPABILITY("mutex").
#define QRE_CAPABILITY(x) QRE_THREAD_ANNOTATION(capability(x))

/// Declares an RAII class that acquires a capability in its constructor and
/// releases it in its destructor.
#define QRE_SCOPED_CAPABILITY QRE_THREAD_ANNOTATION(scoped_lockable)

/// Data member readable/writable only while holding the given capability.
#define QRE_GUARDED_BY(x) QRE_THREAD_ANNOTATION(guarded_by(x))

/// Pointer member whose pointee is guarded by the given capability (the
/// pointer itself may be read freely).
#define QRE_PT_GUARDED_BY(x) QRE_THREAD_ANNOTATION(pt_guarded_by(x))

/// Lock-ordering declarations between capabilities (deadlock prevention).
#define QRE_ACQUIRED_BEFORE(...) QRE_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define QRE_ACQUIRED_AFTER(...) QRE_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))

/// The calling thread must hold the capability (exclusively / shared) on
/// entry, and still holds it on exit.
#define QRE_REQUIRES(...) QRE_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define QRE_REQUIRES_SHARED(...) QRE_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

/// The function acquires the capability (exclusively / shared); it must not
/// be held on entry and is held on exit.
#define QRE_ACQUIRE(...) QRE_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define QRE_ACQUIRE_SHARED(...) QRE_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))

/// The function releases the capability; it must be held on entry.
/// QRE_RELEASE_GENERIC releases either an exclusive or a shared hold —
/// destructors of scoped locks that support both use it.
#define QRE_RELEASE(...) QRE_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define QRE_RELEASE_SHARED(...) QRE_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))
#define QRE_RELEASE_GENERIC(...) QRE_THREAD_ANNOTATION(release_generic_capability(__VA_ARGS__))

/// The function acquires the capability if and only if it returns the given
/// value, e.g. QRE_TRY_ACQUIRE(true) on a try_lock.
#define QRE_TRY_ACQUIRE(...) QRE_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define QRE_TRY_ACQUIRE_SHARED(...) \
  QRE_THREAD_ANNOTATION(try_acquire_shared_capability(__VA_ARGS__))

/// The capability must NOT be held when calling (non-reentrancy contract).
#define QRE_EXCLUDES(...) QRE_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Asserts (at runtime, from the analysis' view) that the capability is
/// held; for code reached only from holders the analysis cannot see.
#define QRE_ASSERT_CAPABILITY(x) QRE_THREAD_ANNOTATION(assert_capability(x))
#define QRE_ASSERT_SHARED_CAPABILITY(x) QRE_THREAD_ANNOTATION(assert_shared_capability(x))

/// The function returns a reference to the given capability.
#define QRE_RETURN_CAPABILITY(x) QRE_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch: the function body is not analyzed. Every use must carry a
/// justification comment (docs/static_analysis.md).
#define QRE_NO_THREAD_SAFETY_ANALYSIS QRE_THREAD_ANNOTATION(no_thread_safety_analysis)
