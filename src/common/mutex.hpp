// Capability-annotated synchronization primitives (see thread_annotations.hpp).
//
// Thin zero-overhead wrappers over the std:: primitives that carry Clang
// thread-safety attributes, because the analysis only tracks types declared
// as capabilities — libstdc++'s std::mutex is invisible to it. All mutex-
// bearing qre types lock through these so `-Wthread-safety` can prove their
// lock discipline at compile time:
//
//   qre::Mutex mutex_;
//   int value_ QRE_GUARDED_BY(mutex_);
//
//   void touch() {
//     MutexLock lock(mutex_);   // scoped: released at end of scope
//     ++value_;                 // OK; without the lock: compile error
//   }
//
// CondVar pairs with Mutex the way std::condition_variable pairs with
// std::mutex, but takes the already-held qre::Mutex directly (the caller
// keeps holding it through a MutexLock), so waiting code stays fully
// visible to the analysis:
//
//   MutexLock lock(mutex_);
//   while (!ready_) cv_.wait(mutex_);
#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <shared_mutex>

#include "common/thread_annotations.hpp"

namespace qre {

class CondVar;

/// std::mutex as a Clang capability.
class QRE_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() QRE_ACQUIRE() { m_.lock(); }
  void unlock() QRE_RELEASE() { m_.unlock(); }
  bool try_lock() QRE_TRY_ACQUIRE(true) { return m_.try_lock(); }

 private:
  friend class CondVar;  // waits on the underlying std::mutex
  std::mutex m_;
};

/// std::shared_mutex as a Clang capability (exclusive + shared modes).
class QRE_CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void lock() QRE_ACQUIRE() { m_.lock(); }
  void unlock() QRE_RELEASE() { m_.unlock(); }
  void lock_shared() QRE_ACQUIRE_SHARED() { m_.lock_shared(); }
  void unlock_shared() QRE_RELEASE_SHARED() { m_.unlock_shared(); }

 private:
  std::shared_mutex m_;
};

/// Scoped exclusive lock of a Mutex (std::lock_guard shape).
class QRE_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mutex) QRE_ACQUIRE(mutex) : mutex_(mutex) { mutex_.lock(); }
  ~MutexLock() QRE_RELEASE() { mutex_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mutex_;
};

/// Scoped exclusive lock of a SharedMutex (writer side).
class QRE_SCOPED_CAPABILITY WriterLock {
 public:
  explicit WriterLock(SharedMutex& mutex) QRE_ACQUIRE(mutex) : mutex_(mutex) { mutex_.lock(); }
  ~WriterLock() QRE_RELEASE() { mutex_.unlock(); }

  WriterLock(const WriterLock&) = delete;
  WriterLock& operator=(const WriterLock&) = delete;

 private:
  SharedMutex& mutex_;
};

/// Scoped shared lock of a SharedMutex (reader side).
class QRE_SCOPED_CAPABILITY ReaderLock {
 public:
  explicit ReaderLock(SharedMutex& mutex) QRE_ACQUIRE_SHARED(mutex) : mutex_(mutex) {
    mutex_.lock_shared();
  }
  ~ReaderLock() QRE_RELEASE_GENERIC() { mutex_.unlock_shared(); }

  ReaderLock(const ReaderLock&) = delete;
  ReaderLock& operator=(const ReaderLock&) = delete;

 private:
  SharedMutex& mutex_;
};

/// Condition variable over qre::Mutex. Waits take the held Mutex itself
/// (not a lock object), which keeps the wait visible to the analysis as
/// "requires the capability"; predicates are deliberately not accepted —
/// callers loop over guarded state themselves, in analyzed code:
///
///   MutexLock lock(mutex_);
///   while (!draining_ && pending_.empty()) cv_.wait(mutex_);
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

  /// Atomically releases `mutex`, blocks, and reacquires before returning
  /// (may wake spuriously — always re-check the condition in a loop).
  void wait(Mutex& mutex) QRE_REQUIRES(mutex) {
    // The caller's scoped lock keeps logical ownership: adopt the held
    // std::mutex for the wait, then release the unique_lock's claim so the
    // destructor of the caller's MutexLock remains the one unlock.
    std::unique_lock<std::mutex> inner(mutex.m_, std::adopt_lock);
    cv_.wait(inner);
    inner.release();
  }

  /// wait() with a timeout; std::cv_status::timeout when it elapsed.
  template <typename Rep, typename Period>
  std::cv_status wait_for(Mutex& mutex, const std::chrono::duration<Rep, Period>& timeout)
      QRE_REQUIRES(mutex) {
    std::unique_lock<std::mutex> inner(mutex.m_, std::adopt_lock);
    const std::cv_status status = cv_.wait_for(inner, timeout);
    inner.release();
    return status;
  }

 private:
  std::condition_variable cv_;
};

}  // namespace qre
