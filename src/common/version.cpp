#include "common/version.hpp"

#include "common/version_info.hpp"

namespace qre {

const char* version_string() { return QRE_VERSION_STRING; }

}  // namespace qre
