// Build identification.
//
// The version string is captured once, at CMake configure time, from
// `git describe --always --dirty --tags` and baked into a single generated
// header (common/version_info.hpp under the build tree). Every surface that
// reports a version — `qre_cli --version`, `qre_serve --version`, and the
// server's GET /version endpoint — reads it from here, so the binaries can
// never disagree about what build they are. Builds from a tarball (no git)
// report "unknown".
#pragma once

namespace qre {

/// `git describe --always --dirty --tags` at configure time, or "unknown".
const char* version_string();

}  // namespace qre
