// Cooperative cancellation and deadlines (resilience layer).
//
// A CancelToken is a cheap, copyable handle to shared cancellation state —
// an optional atomic "cancel requested" flag plus an optional monotonic
// deadline. Tokens propagate BY VALUE through EngineOptions into every
// long-running path (sweep worker loops, frontier probe waves, api::run),
// which check should_stop() at item boundaries: cancellation is observed
// within one item, never mid-estimate, so results stay deterministic and a
// cancelled run simply stops producing new items.
//
//   CancelToken token = CancelToken::cancellable().with_deadline(2.5);
//   ... hand copies to workers ...
//   token.request_cancel();            // from any thread
//   ... workers: if (token.should_stop()) bail at the next item boundary
//
// The default-constructed token is the null token: it never cancels and
// costs nothing to check, so code paths that never need cancellation pass
// it through untouched. request_cancel() on the null token is a no-op.
//
// Two exception types give cancellation a structured diagnostics shape:
// throw_if_cancelled() raises DeadlineExceededError (code
// "deadline-exceeded") or CancelledError (code "cancelled"), which api::run
// maps onto the response envelope and the HTTP layer onto 408.
#pragma once

#include <atomic>
#include <chrono>
#include <memory>

#include "common/error.hpp"

namespace qre {

/// Raised when a run is abandoned because its CancelToken was cancelled.
class CancelledError : public Error {
 public:
  explicit CancelledError(const std::string& what) : Error(what) {}
};

/// Raised when a run is abandoned because its deadline elapsed.
class DeadlineExceededError : public CancelledError {
 public:
  explicit DeadlineExceededError(const std::string& what) : CancelledError(what) {}
};

class CancelToken {
 public:
  /// The null token: never cancels, never expires, free to copy and check.
  CancelToken() = default;

  /// A token whose request_cancel() actually works (allocates the shared
  /// flag). Copies share the flag: cancelling any copy cancels them all.
  static CancelToken cancellable() {
    CancelToken token;
    token.flag_ = std::make_shared<std::atomic<bool>>(false);
    return token;
  }

  /// A copy of this token that additionally expires `seconds` from now
  /// (monotonic clock). The cancel flag stays shared; the deadline is part
  /// of the copy, so derived scopes can be bounded independently.
  CancelToken with_deadline(double seconds) const {
    CancelToken token = *this;
    token.has_deadline_ = true;
    token.deadline_ = std::chrono::steady_clock::now() +
                      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                          std::chrono::duration<double>(seconds));
    return token;
  }

  /// Flags every copy of this token as cancelled. Safe from any thread and
  /// more than once; a no-op on the null token.
  void request_cancel() const {
    if (flag_ != nullptr) flag_->store(true, std::memory_order_relaxed);
  }

  bool cancel_requested() const {
    return flag_ != nullptr && flag_->load(std::memory_order_relaxed);
  }

  bool deadline_exceeded() const {
    return has_deadline_ && std::chrono::steady_clock::now() >= deadline_;
  }

  /// The item-boundary check: cancelled or past the deadline.
  bool should_stop() const { return cancel_requested() || deadline_exceeded(); }

  /// Raises DeadlineExceededError / CancelledError naming `what` when the
  /// token says to stop; the deadline is reported in preference to the flag
  /// (a drain may set both, and "deadline exceeded" is the more actionable
  /// diagnostic).
  void throw_if_cancelled(const char* what) const {
    if (deadline_exceeded()) {
      throw DeadlineExceededError(std::string(what) + ": request deadline exceeded");
    }
    if (cancel_requested()) {
      throw CancelledError(std::string(what) + ": request cancelled");
    }
  }

 private:
  std::shared_ptr<std::atomic<bool>> flag_;  // null = never cancelled
  std::chrono::steady_clock::time_point deadline_{};
  bool has_deadline_ = false;
};

}  // namespace qre
