// String-keyed LRU map: the one implementation of the list + index + evict
// bookkeeping shared by the service's EstimateCache and the T-factory
// design cache. Not thread-safe — callers hold their own lock, because
// what happens around a miss (dedup futures, compute outside the lock)
// differs per cache.
#pragma once

#include <cstddef>
#include <list>
#include <string>
#include <unordered_map>
#include <utility>

namespace qre {

template <typename Value>
class LruMap {
 public:
  /// `capacity` == 0 means unbounded.
  explicit LruMap(std::size_t capacity) : capacity_(capacity) {}

  /// Returns the value for `key` (marking it most recently used), or
  /// nullptr. The pointer is stable until the entry is evicted or cleared.
  Value* find(const std::string& key) {
    auto it = index_.find(key);
    if (it == index_.end()) return nullptr;
    lru_.splice(lru_.begin(), lru_, it->second);
    return &it->second->second;
  }

  bool contains(const std::string& key) const { return index_.count(key) != 0; }

  /// Inserts `key` as most recently used (the key must not be present) and
  /// returns how many least-recently-used entries were evicted to stay
  /// within capacity (never the just-inserted one).
  std::size_t insert(const std::string& key, Value value) {
    lru_.emplace_front(key, std::move(value));
    index_.emplace(key, lru_.begin());
    std::size_t evicted = 0;
    while (capacity_ != 0 && index_.size() > capacity_) {
      index_.erase(lru_.back().first);
      lru_.pop_back();
      ++evicted;
    }
    return evicted;
  }

  std::size_t size() const { return index_.size(); }
  std::size_t capacity() const { return capacity_; }

  void clear() {
    lru_.clear();
    index_.clear();
  }

 private:
  using Entry = std::pair<std::string, Value>;

  std::size_t capacity_;
  std::list<Entry> lru_;  // front = most recently used
  std::unordered_map<std::string, typename std::list<Entry>::iterator> index_;
};

}  // namespace qre
