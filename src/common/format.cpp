#include "common/format.hpp"

#include <cmath>
#include <cstdio>

namespace qre {

std::string format_duration_ns(double nanoseconds) {
  struct Unit {
    double scale;
    const char* name;
  };
  static constexpr Unit kUnits[] = {
      {1.0, "ns"},      {1e3, "us"},         {1e6, "ms"},
      {1e9, "s"},       {60e9, "mins"},      {3600e9, "hours"},
      {86400e9, "days"}, {31557600e9, "years"},
  };
  const Unit* best = &kUnits[0];
  for (const Unit& u : kUnits) {
    if (nanoseconds >= u.scale) best = &u;
  }
  char buf[64];
  double v = nanoseconds / best->scale;
  if (v >= 100.0) {
    std::snprintf(buf, sizeof buf, "%.0f %s", v, best->name);
  } else {
    std::snprintf(buf, sizeof buf, "%.2f %s", v, best->name);
  }
  return buf;
}

std::string format_count(std::uint64_t count) {
  std::string digits = std::to_string(count);
  std::string out;
  int pos = static_cast<int>(digits.size());
  for (char c : digits) {
    out.push_back(c);
    --pos;
    if (pos > 0 && pos % 3 == 0) out.push_back(',');
  }
  return out;
}

std::string format_sci(double value, int significant_digits) {
  char buf[64];
  if (value == 0.0) return "0";
  double mag = std::fabs(value);
  if (mag >= 1e-3 && mag < 1e6) {
    std::snprintf(buf, sizeof buf, "%.*g", significant_digits, value);
  } else {
    std::snprintf(buf, sizeof buf, "%.*e", significant_digits - 1, value);
  }
  return buf;
}

}  // namespace qre
