#include "common/diagnostics.hpp"

#include <algorithm>

namespace qre {

std::string_view to_string(Severity s) {
  return s == Severity::kError ? "error" : "warning";
}

json::Value Diagnostic::to_json() const {
  json::Object o;
  o.emplace_back("severity", std::string(to_string(severity)));
  o.emplace_back("code", code);
  o.emplace_back("path", path);
  o.emplace_back("message", message);
  return json::Value(std::move(o));
}

void Diagnostics::error(std::string code, std::string path, std::string message) {
  entries_.push_back({Severity::kError, std::move(code), std::move(path), std::move(message)});
}

void Diagnostics::warning(std::string code, std::string path, std::string message) {
  entries_.push_back({Severity::kWarning, std::move(code), std::move(path), std::move(message)});
}

void Diagnostics::add(Diagnostic d) { entries_.push_back(std::move(d)); }

void Diagnostics::append(const Diagnostics& other) {
  entries_.insert(entries_.end(), other.entries_.begin(), other.entries_.end());
}

bool Diagnostics::has_errors() const { return num_errors() > 0; }

std::size_t Diagnostics::num_errors() const {
  return static_cast<std::size_t>(
      std::count_if(entries_.begin(), entries_.end(),
                    [](const Diagnostic& d) { return d.severity == Severity::kError; }));
}

json::Value Diagnostics::to_json() const {
  json::Array a;
  a.reserve(entries_.size());
  for (const Diagnostic& d : entries_) a.push_back(d.to_json());
  return json::Value(std::move(a));
}

std::string Diagnostics::summary() const {
  std::string out;
  for (const Diagnostic& d : entries_) {
    if (d.severity != Severity::kError) continue;
    if (!out.empty()) out += "; ";
    if (!d.path.empty()) {
      out += d.path;
      out += ": ";
    }
    out += d.message;
  }
  return out.empty() ? "document is valid" : out;
}

ValidationError::ValidationError(Diagnostics diagnostics)
    : Error("invalid job document: " + diagnostics.summary()),
      diagnostics_(std::move(diagnostics)) {}

std::string pointer_join(std::string_view base, std::string_view token) {
  std::string out(base);
  out += '/';
  for (char c : token) {
    if (c == '~') {
      out += "~0";
    } else if (c == '/') {
      out += "~1";
    } else {
      out += c;
    }
  }
  return out;
}

std::string pointer_join(std::string_view base, std::size_t index) {
  return std::string(base) + "/" + std::to_string(index);
}

void check_known_keys(const json::Value& v, const std::vector<std::string_view>& allowed,
                      std::string_view base_path, Diagnostics* diags) {
  if (!v.is_object()) return;
  std::string unknown;
  for (const auto& [key, value] : v.as_object()) {
    (void)value;
    if (std::find(allowed.begin(), allowed.end(), key) != allowed.end()) continue;
    if (diags != nullptr) {
      diags->warning("unknown-key", pointer_join(base_path, key),
                     "unknown key '" + key + "'");
    } else {
      if (!unknown.empty()) unknown += ", ";
      unknown += "'" + key + "'";
    }
  }
  if (unknown.empty()) return;
  std::string where = base_path.empty() ? std::string("document")
                                        : "object at " + std::string(base_path);
  throw_error(where + " carries unknown key(s) " + unknown +
              " (typo? unknown keys are rejected since schema v2)");
}

}  // namespace qre
