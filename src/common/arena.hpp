#pragma once

// Chunked bump allocator for per-batch transient state.
//
// The batch-estimation kernel (src/service/batch_kernel.*) pre-sizes all of
// its per-sweep columns and scratch buffers out of one Arena so that the
// steady-state evaluation loop performs no heap allocations at all: memory is
// carved out of large chunks with a pointer bump, and the whole batch is
// released in O(#chunks) by `reset()` (which keeps the chunks for reuse by
// the next batch).
//
// Contract:
//  * `allocate` never returns nullptr — it grows by appending chunks and
//    throws std::bad_alloc only if the underlying `new` does.
//  * Individual allocations cannot be freed; `reset()` releases everything
//    at once. Objects with non-trivial destructors must be destroyed by the
//    caller before reset (the kernel only places trivially-destructible data
//    in the arena, enforced by `alloc_array`).
//  * Not thread-safe; each worker/batch owns its own Arena.

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <type_traits>
#include <vector>

namespace qre {

class Arena {
 public:
  static constexpr std::size_t kDefaultChunkBytes = 64 * 1024;

  explicit Arena(std::size_t chunk_bytes = kDefaultChunkBytes)
      : chunk_bytes_(chunk_bytes == 0 ? kDefaultChunkBytes : chunk_bytes) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;
  Arena(Arena&&) = default;
  Arena& operator=(Arena&&) = default;

  /// Returns `bytes` bytes aligned to `alignment` (a power of two). The
  /// memory is uninitialised and stays valid until `reset()` or destruction.
  void* allocate(std::size_t bytes,
                 std::size_t alignment = alignof(std::max_align_t)) {
    if (bytes == 0) bytes = 1;
    if (active_ < chunks_.size()) {
      if (void* p = try_bump(chunks_[active_], bytes, alignment)) {
        bytes_allocated_ += bytes;
        return p;
      }
      // The active chunk is exhausted; later chunks (kept by reset) may
      // still have room.
      for (std::size_t i = active_ + 1; i < chunks_.size(); ++i) {
        if (void* p = try_bump(chunks_[i], bytes, alignment)) {
          active_ = i;
          bytes_allocated_ += bytes;
          return p;
        }
      }
    }
    // Need a fresh chunk. Oversized requests get a dedicated chunk so the
    // common chunk size stays bounded.
    const std::size_t needed = bytes + alignment;
    Chunk chunk;
    chunk.size = needed > chunk_bytes_ ? needed : chunk_bytes_;
    chunk.data = std::make_unique<std::byte[]>(chunk.size);
    chunks_.push_back(std::move(chunk));
    active_ = chunks_.size() - 1;
    void* p = try_bump(chunks_.back(), bytes, alignment);
    bytes_allocated_ += bytes;
    return p;
  }

  /// Typed array allocation. Restricted to trivially destructible T because
  /// reset() never runs destructors. Elements are value-initialised.
  template <typename T>
  T* alloc_array(std::size_t count) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "Arena::alloc_array requires trivially destructible types");
    T* data = static_cast<T*>(allocate(count * sizeof(T), alignof(T)));
    for (std::size_t i = 0; i < count; ++i) ::new (data + i) T();
    return data;
  }

  /// Releases every allocation at once but keeps the chunks, so the next
  /// batch of identical shape allocates without touching the heap.
  void reset() {
    for (Chunk& chunk : chunks_) chunk.used = 0;
    active_ = 0;
    bytes_allocated_ = 0;
  }

  /// Live bytes handed out since the last reset (excludes alignment padding).
  std::size_t bytes_allocated() const { return bytes_allocated_; }

  /// Total heap footprint currently reserved by the arena's chunks.
  std::size_t bytes_reserved() const {
    std::size_t total = 0;
    for (const Chunk& chunk : chunks_) total += chunk.size;
    return total;
  }

  std::size_t num_chunks() const { return chunks_.size(); }

 private:
  struct Chunk {
    std::unique_ptr<std::byte[]> data;
    std::size_t size = 0;
    std::size_t used = 0;
  };

  static void* try_bump(Chunk& chunk, std::size_t bytes,
                        std::size_t alignment) {
    const std::uintptr_t base =
        reinterpret_cast<std::uintptr_t>(chunk.data.get());
    std::uintptr_t cursor = base + chunk.used;
    const std::uintptr_t aligned = (cursor + alignment - 1) & ~(alignment - 1);
    const std::size_t end_offset = (aligned - base) + bytes;
    if (end_offset > chunk.size) return nullptr;
    chunk.used = end_offset;
    return reinterpret_cast<void*>(aligned);
  }

  std::vector<Chunk> chunks_;
  std::size_t active_ = 0;
  std::size_t chunk_bytes_;
  std::size_t bytes_allocated_ = 0;
};

/// Minimal std-compatible allocator over an Arena, for containers whose
/// lifetime is bounded by one batch. Deallocation is a no-op — memory is
/// reclaimed wholesale by Arena::reset().
template <typename T>
class ArenaAllocator {
 public:
  using value_type = T;

  explicit ArenaAllocator(Arena& arena) : arena_(&arena) {}

  template <typename U>
  ArenaAllocator(const ArenaAllocator<U>& other) : arena_(other.arena()) {}

  T* allocate(std::size_t n) {
    return static_cast<T*>(arena_->allocate(n * sizeof(T), alignof(T)));
  }

  void deallocate(T*, std::size_t) {}

  Arena* arena() const { return arena_; }

  template <typename U>
  bool operator==(const ArenaAllocator<U>& other) const {
    return arena_ == other.arena();
  }
  template <typename U>
  bool operator!=(const ArenaAllocator<U>& other) const {
    return arena_ != other.arena();
  }

 private:
  Arena* arena_;
};

}  // namespace qre
