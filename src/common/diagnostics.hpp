// Structured validation diagnostics (API v2).
//
// The estimator's service surface reports input problems as a list of
// {severity, code, path, message} records instead of a single thrown string:
// a strict validation pass collects *all* problems of a job document —
// including unknown-key warnings, the silent-typo class of bugs — and
// returns them together, each anchored to the offending field by a JSON
// pointer (RFC 6901) such as "/qubitParams/tGateErrorRate".
//
// Codes are stable kebab-case identifiers meant for programmatic handling:
//
//   required-missing     a mandatory field is absent
//   type-mismatch        a field has the wrong JSON type
//   value-range          a value is outside its legal range
//   unknown-key          an object carries a key the schema does not define
//   unknown-name         a name does not resolve against the registry
//   invalid-value        an enumerated field has an unknown value
//   invalid-formula      a formula string does not parse
//   mutually-exclusive   two fields cannot be combined
//   unsupported-version  the document's schemaVersion is not handled
//   invalid-sweep        a sweep grid does not expand
//   invalid-item         a batch item failed validation
//   estimation-failed    a structurally valid input was infeasible at runtime
//   cancelled            the run was abandoned on a cancellation request
//   deadline-exceeded    the run was abandoned because its deadline elapsed
//
// This lives in common/ (not api/) so the per-module from_json parsers can
// feed the same channel without depending on the API layer.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "common/error.hpp"
#include "json/json.hpp"

namespace qre {

enum class Severity { kWarning, kError };

std::string_view to_string(Severity s);

/// One validation finding, anchored by a JSON pointer into the document.
struct Diagnostic {
  Severity severity = Severity::kError;
  std::string code;     // stable identifier, see the table above
  std::string path;     // JSON pointer ("" addresses the whole document)
  std::string message;  // human-readable explanation

  json::Value to_json() const;
};

/// An ordered collection of diagnostics: the result of a validation pass.
class Diagnostics {
 public:
  void error(std::string code, std::string path, std::string message);
  void warning(std::string code, std::string path, std::string message);
  void add(Diagnostic d);
  void append(const Diagnostics& other);

  bool empty() const { return entries_.empty(); }
  std::size_t size() const { return entries_.size(); }
  bool has_errors() const;
  std::size_t num_errors() const;
  const std::vector<Diagnostic>& entries() const { return entries_; }

  /// Serializes as a JSON array of diagnostic objects.
  json::Value to_json() const;

  /// One-line rendition ("path: message; path: message; ...") of the
  /// error-severity entries, used for ValidationError::what().
  std::string summary() const;

 private:
  std::vector<Diagnostic> entries_;
};

/// Thrown when a document fails validation; carries the full diagnostic
/// list so callers can render structured output instead of a flat string.
class ValidationError : public Error {
 public:
  explicit ValidationError(Diagnostics diagnostics);

  const Diagnostics& diagnostics() const { return diagnostics_; }

 private:
  Diagnostics diagnostics_;
};

/// Appends an escaped JSON-pointer token to `base` (RFC 6901: "~" -> "~0",
/// "/" -> "~1").
std::string pointer_join(std::string_view base, std::string_view token);
std::string pointer_join(std::string_view base, std::size_t index);

/// Scans object `v` for keys outside `allowed`. Each unknown key becomes an
/// "unknown-key" warning on `diags` when a sink is given; with diags ==
/// nullptr a single qre::Error listing every unknown key is thrown instead.
/// Non-objects pass through silently (their type is someone else's check).
void check_known_keys(const json::Value& v, const std::vector<std::string_view>& allowed,
                      std::string_view base_path, Diagnostics* diags);

}  // namespace qre
