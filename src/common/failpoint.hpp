// Failpoint registry: named fault-injection sites (resilience layer).
//
// A failpoint is a named hook compiled into a production code path:
//
//   QRE_FAILPOINT("store.persist.before_rename");
//
// Inactive failpoints cost one relaxed atomic load and a predictable
// branch. When the build compiles them out (-DQRE_FAILPOINTS=OFF defines
// QRE_FAILPOINTS_DISABLED), the macro expands to nothing at all.
//
// Sites are armed at process start from the QRE_FAILPOINTS environment
// variable or a --failpoints flag, using a gofail-style spec — a
// semicolon-separated list of `name=[N%]action`:
//
//   store.persist.before_rename=crash          crash (_exit(42)) at the site
//   engine.evaluate.before=delay(50)           sleep 50 ms at the site
//   server.conn.before_read=25%error           throw qre::Error 25% of hits
//   jobqueue.worker.before_run=off             explicitly disarm
//
// Actions: `error` (throw qre::Error — the site's normal failure path
// handles it), `delay(MS)` (sleep, for latency/deadline drills), `crash`
// (immediate _exit(42), for crash-recovery drills), `off`. An optional
// `N%` prefix triggers the action on roughly N% of hits (deterministic
// per-registry LCG, not wall-clock seeded, so runs are reproducible).
//
// Every site name must be unique in the tree and documented in
// docs/robustness.md — `qre_lint` enforces both.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

#include "json/json.hpp"

namespace qre::failpoint {

namespace detail {

// Count of currently armed failpoints; the macro's fast path reads this
// once and skips the registry entirely when zero.
extern std::atomic<int> g_active_count;

inline bool any_active() { return g_active_count.load(std::memory_order_relaxed) > 0; }

// Slow path: look up `name` in the registry and perform its action
// (throw / sleep / _exit). No-op when the site is not armed.
void hit(const char* name);

}  // namespace detail

/// True when the build carries failpoint hooks (QRE_FAILPOINTS=ON).
/// Tests use this to skip injection drills in compiled-out builds.
bool compiled_in();

/// Arms failpoints from a spec string (grammar above). Replaces the
/// configuration of every site named in the spec; sites not named keep
/// their state. Throws qre::Error on a malformed spec, an unknown action,
/// or when called with a non-empty spec in a compiled-out build.
void configure(const std::string& spec);

/// Arms failpoints from the QRE_FAILPOINTS environment variable. A
/// malformed spec throws; a non-empty variable in a compiled-out build
/// warns on stderr instead of throwing (so exported chaos env vars do not
/// break production binaries).
void configure_from_env();

/// Disarms every failpoint and clears hit counters.
void reset();

/// Number of times the named site performed its action (0 if never armed
/// or unknown).
std::uint64_t hits(const std::string& name);

/// Currently armed failpoint terms (the /metrics "active" gauge; the
/// access log records it per request as "failpointsArmed").
inline int active_count() {
  return detail::g_active_count.load(std::memory_order_relaxed);
}

/// Observability snapshot for /metrics: {"compiledIn": bool,
/// "active": N, "triggered": {site: count, ...}}.
json::Value stats_to_json();

}  // namespace qre::failpoint

#if defined(QRE_FAILPOINTS_DISABLED)
#define QRE_FAILPOINT(name) \
  do {                      \
  } while (false)
#else
#define QRE_FAILPOINT(name)                       \
  do {                                            \
    if (::qre::failpoint::detail::any_active()) { \
      ::qre::failpoint::detail::hit(name);        \
    }                                             \
  } while (false)
#endif
