#include "common/error.hpp"

#include <sstream>

namespace qre {

void throw_error(const std::string& message) { throw Error(message); }

namespace detail {

void assertion_failed(const char* expr, const char* file, int line) {
  std::ostringstream os;
  os << "qre internal assertion failed: " << expr << " at " << file << ":" << line;
  throw std::logic_error(os.str());
}

}  // namespace detail
}  // namespace qre
