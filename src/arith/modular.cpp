#include "arith/modular.hpp"

#include <algorithm>

#include "arith/comparators.hpp"
#include "arith/lookup.hpp"
#include "arith/multipliers.hpp"
#include "circuit/tape.hpp"
#include "common/error.hpp"
#include "counter/logical_counter.hpp"

namespace qre {

std::uint64_t mod_pow(std::uint64_t base, std::uint64_t exp, std::uint64_t modulus) {
  QRE_REQUIRE(modulus >= 1, "mod_pow: modulus must be positive");
  unsigned __int128 result = 1 % modulus;
  unsigned __int128 b = base % modulus;
  while (exp > 0) {
    if (exp & 1) result = (result * b) % modulus;
    b = (b * b) % modulus;
    exp >>= 1;
  }
  return static_cast<std::uint64_t>(result);
}

std::uint64_t mod_inverse(std::uint64_t value, std::uint64_t modulus) {
  // Extended Euclid on (value, modulus).
  std::int64_t t = 0;
  std::int64_t new_t = 1;
  std::int64_t r = static_cast<std::int64_t>(modulus);
  std::int64_t new_r = static_cast<std::int64_t>(value % modulus);
  while (new_r != 0) {
    std::int64_t q = r / new_r;
    std::int64_t tmp = t - q * new_t;
    t = new_t;
    new_t = tmp;
    tmp = r - q * new_r;
    r = new_r;
    new_r = tmp;
  }
  QRE_REQUIRE(r == 1, "mod_inverse: value is not invertible modulo the modulus");
  if (t < 0) t += static_cast<std::int64_t>(modulus);
  return static_cast<std::uint64_t>(t);
}

void mod_add_constant(ProgramBuilder& bld, std::uint64_t k, std::uint64_t modulus,
                      const Register& reg) {
  const std::size_t n = reg.size();
  const bool counting = bld.counting_only();
  if (!counting) {
    QRE_REQUIRE(n <= 60, "executing backends support modular registers up to 60 bits");
    QRE_REQUIRE(modulus >= 1 && modulus <= (std::uint64_t{1} << n),
                "mod_add_constant: modulus does not fit the register");
    QRE_REQUIRE(k < modulus, "mod_add_constant: addend must be reduced");
    if (k == 0) return;
  }

  QubitId flag = bld.alloc();
  // flag = [reg + k >= N]  <=>  [reg >= N - k].
  compare_geq_constant(bld, reg, Constant{modulus - k, n}, flag);
  // reg += k, and additionally += 2^n - N when wrapping; both mod 2^n.
  add_constant(bld, Constant{k, n}, reg);
  std::uint64_t wrap = counting ? 0
                                : (((std::uint64_t{1} << n) - modulus) &
                                   ((n >= 64) ? ~std::uint64_t{0}
                                              : (std::uint64_t{1} << n) - 1));
  add_constant_controlled(bld, flag, Constant{wrap, n}, reg);
  // Uncompute: the sum wrapped exactly when the result is below k.
  compare_geq_constant(bld, reg, Constant{k, n}, flag);
  bld.x(flag);
  bld.free(flag);
}

void mod_add_into(ProgramBuilder& bld, const Register& t, std::uint64_t modulus,
                  const Register& acc) {
  const std::size_t n = acc.size();
  QRE_REQUIRE(t.size() == n, "mod_add_into: operands must have equal width");
  const bool counting = bld.counting_only();
  if (!counting) {
    QRE_REQUIRE(n <= 60, "executing backends support modular registers up to 60 bits");
    QRE_REQUIRE(modulus >= 1 && modulus <= (std::uint64_t{1} << n),
                "mod_add_into: modulus does not fit the register");
  }

  QubitId top = bld.alloc();
  Register acc_ext = acc;
  acc_ext.push_back(top);

  add_into(bld, t, acc_ext);  // exact: acc + t < 2N <= 2^(n+1)
  QubitId flag = bld.alloc();
  compare_geq_constant(bld, acc_ext, Constant{modulus, n}, flag);
  std::uint64_t wrap = counting ? 0 : ((std::uint64_t{1} << (n + 1)) - modulus);
  add_constant_controlled(bld, flag, Constant{wrap, n + 1}, acc_ext);
  // The reduced sum is below t exactly when the subtraction fired.
  compare_less(bld, slice(acc_ext, 0, n), t, flag);
  bld.free(flag);
  bld.free(top);  // result < N <= 2^n, so the extension bit ends in |0>
}

void windowed_mod_mult_add(ProgramBuilder& bld, std::optional<QubitId> control,
                           std::uint64_t c, std::uint64_t modulus, const Register& y,
                           const Register& target, std::size_t window_bits) {
  const std::size_t n = target.size();
  const bool counting = bld.counting_only();
  if (!counting) {
    QRE_REQUIRE(modulus >= 1 && c < modulus,
                "windowed_mod_mult_add: constant must be reduced mod N");
  }
  const std::size_t w = window_bits != 0 ? window_bits : default_window_bits(y.size());

  for (std::size_t i = 0; i < y.size(); i += w) {
    const std::size_t wa = std::min(w, y.size() - i);
    Register address = slice(y, i, wa);
    if (control.has_value()) address.push_back(*control);

    LookupData data;
    data.data_width = n;
    if (!counting) {
      std::uint64_t shift = mod_pow(2, i, modulus);
      std::size_t entries = std::size_t{1} << address.size();
      data.values.assign(entries, 0);
      for (std::uint64_t k = 0; k < (std::uint64_t{1} << wa); ++k) {
        unsigned __int128 value =
            (static_cast<unsigned __int128>(c) * k) % modulus * shift % modulus;
        std::size_t slot = control.has_value() ? static_cast<std::size_t>(k) +
                                                     (std::size_t{1} << wa)
                                               : static_cast<std::size_t>(k);
        data.values[slot] = static_cast<std::uint64_t>(value);
      }
    }

    Register tt = bld.alloc_register(n);
    lookup_xor(bld, address, tt, data);
    mod_add_into(bld, tt, modulus, target);
    if (bld.unitary_uncompute()) {
      lookup_xor(bld, address, tt, data);  // XOR twice clears, measurement-free
    } else {
      unlookup(bld, address, tt, data);
    }
    bld.free_register(tt);
  }
}

void mod_mul_constant_inplace(ProgramBuilder& bld, std::optional<QubitId> control,
                              std::uint64_t c, std::uint64_t c_inverse, std::uint64_t modulus,
                              const Register& acc, std::size_t window_bits) {
  const std::size_t n = acc.size();
  const bool counting = bld.counting_only();
  if (!counting) {
    QRE_REQUIRE(static_cast<unsigned __int128>(c) * c_inverse % modulus == 1,
                "mod_mul_constant_inplace: c_inverse is not the inverse of c");
  }

  Register t = bld.alloc_register(n);
  windowed_mod_mult_add(bld, control, c, modulus, acc, t, window_bits);

  if (control.has_value()) {
    for (std::size_t i = 0; i < n; ++i) bld.cswap(*control, acc[i], t[i]);
  } else {
    for (std::size_t i = 0; i < n; ++i) bld.swap(acc[i], t[i]);
  }

  // t -= (c^{-1} * acc) mod N, realized as the adjoint of a windowed
  // multiply-add recorded on a tape (unitary uncompute keeps the region
  // measurement-free).
  Tape tape(&bld.backend());
  Backend* real = bld.swap_backend(&tape);
  bool previous = bld.set_unitary_uncompute(true);
  windowed_mod_mult_add(bld, control, c_inverse, modulus, acc, t, window_bits);
  bld.set_unitary_uncompute(previous);
  bld.swap_backend(real);
  QRE_ASSERT(tape.live_at_end().empty());
  tape.replay_adjoint(*real);

  bld.free_register(t);
}

void mod_exp(ProgramBuilder& bld, std::uint64_t g, std::uint64_t modulus,
             const Register& exponent, const Register& acc, std::size_t window_bits) {
  const bool counting = bld.counting_only();
  std::uint64_t c = counting ? 0 : (g % modulus);
  for (std::size_t i = 0; i < exponent.size(); ++i) {
    std::uint64_t inverse = counting ? 0 : mod_inverse(c, modulus);
    mod_mul_constant_inplace(bld, exponent[i], c, inverse, modulus, acc, window_bits);
    if (!counting) {
      c = static_cast<std::uint64_t>(static_cast<unsigned __int128>(c) * c % modulus);
    }
  }
}

LogicalCounts factoring_counts(std::uint64_t modulus_bits, std::size_t window_bits) {
  QRE_REQUIRE(modulus_bits >= 2, "factoring_counts: modulus must have at least 2 bits");
  // Trace one controlled modular multiplication, then compose 2n of them
  // (the AccountForEstimates pattern) and account for the exponent register.
  LogicalCounter counter;
  ProgramBuilder bld(counter);
  QubitId ctrl = bld.alloc();
  Register acc = bld.alloc_register(static_cast<std::size_t>(modulus_bits));
  mod_mul_constant_inplace(bld, ctrl, 0, 0, 0, acc, window_bits);
  bld.free_register(acc);
  bld.free(ctrl);

  LogicalCounts one_multiplication = counter.counts();
  LogicalCounts total = one_multiplication.repeated(2 * modulus_bits);
  total.num_qubits = one_multiplication.num_qubits - 1 + 2 * modulus_bits;
  return total;
}

}  // namespace qre
