// Karatsuba multiplication.
//
// Two implementations:
//
//  * karatsuba_product / karatsuba_mult_add — an exact, simulator-verified
//    recursive circuit. The product recursion computes each half-product
//    out-of-place with three recursive calls and O(n) in-place combination
//    adds (the subtractive middle term is applied as slice additions and
//    subtractions on the output register, exact by modular arithmetic), and
//    keeps all workspace alive; the caller's single adjoint pass (via Tape)
//    uncomputes everything at a uniform factor of two in Toffolis. Toffoli
//    count follows T(n) = 3 T(ceil(n/2)) + Theta(n); workspace is
//    Theta(n^{log2 3}), which is why this variant targets small and medium
//    operand sizes (tests, examples, verification).
//
//  * emit_karatsuba_model — a cost-model circuit emitter for large-n
//    estimation, standing in for Gidney's carry-runway construction
//    (arXiv:1904.07356) that achieves the same Toffoli recurrence in O(n)
//    space. It emits batched CCiX/measurement events following
//    T(n) = 3 T(ceil(n/2)) + linear_factor*n, T(b <= cutoff) =
//    base_factor*b^2, over a qubit_factor*n workspace. The default constants
//    are calibrated so the standard-vs-Karatsuba runtime crossover lands
//    where the paper reports it (~4096 bits); see DESIGN.md.
#pragma once

#include <cstdint>

#include "circuit/builder.hpp"

namespace qre {

struct KaratsubaOptions {
  /// Operand width at and below which the recursion falls back to the
  /// schoolbook product. Clamped to >= 5: the combination-step slice
  /// arithmetic requires operand width >= 6 to recurse.
  std::size_t cutoff = 8;
};

/// p ^= x * y, with p clean on entry; requires |x| == |y| and |p| >= 2|x|.
/// Must run in unitary-uncompute mode (measurement-free) so the caller can
/// reverse it; karatsuba_mult_add handles that automatically.
void karatsuba_product(ProgramBuilder& bld, const Register& x, const Register& y,
                       const Register& p, const KaratsubaOptions& options = {});

/// acc += x * y using the exact Karatsuba circuit and a taped adjoint for
/// workspace cleanup. Requires |x| == |y| and |acc| >= |x| + |y|.
void karatsuba_mult_add(ProgramBuilder& bld, const Register& x, const Register& y,
                        const Register& acc, const KaratsubaOptions& options = {});

/// Cost-model parameters for large-n Karatsuba estimation.
struct KaratsubaModel {
  std::uint64_t cutoff = 32;
  double base_factor = 5.5;
  double linear_factor = 20.0;
  double qubit_factor = 8.0;

  /// T(n) = 3 T(ceil(n/2)) + linear_factor*n; T(n <= cutoff) = base_factor*n^2.
  double toffoli_count(std::uint64_t n) const;
};

/// Emits the cost-model event stream (batched CCiX + measurements + Clifford
/// bookkeeping over a qubit_factor*n workspace) onto a counting backend.
void emit_karatsuba_model(ProgramBuilder& bld, std::uint64_t n_bits,
                          const KaratsubaModel& model = {});

}  // namespace qre
