#include "arith/multipliers.hpp"

#include <algorithm>

#include "arith/karatsuba.hpp"
#include "arith/lookup.hpp"
#include "common/error.hpp"
#include "common/math.hpp"
#include "counter/logical_counter.hpp"

namespace qre {

void long_mult_add_constant(ProgramBuilder& bld, const Constant& k, const Register& y,
                            const Register& acc) {
  QRE_REQUIRE(acc.size() >= k.bits + y.size(),
              "long_mult_add_constant: accumulator too narrow for the product");
  if (k.bits == 0 || y.empty()) return;
  for (std::size_t i = 0; i < y.size(); ++i) {
    // Partial sums stay below 2^(k.bits + i), so the window [i, i + k.bits)
    // plus one carry bit absorbs the addition exactly.
    std::size_t len = std::min(k.bits, acc.size() - i - 1);
    Register window = slice(acc, i, len);
    std::optional<QubitId> carry;
    if (i + len < acc.size()) carry = acc[i + len];
    add_constant_controlled(bld, y[i], k, window, carry);
  }
}

std::size_t default_window_bits(std::size_t n) {
  std::size_t w = n <= 1 ? 1 : static_cast<std::size_t>(ilog2_floor(n));
  return std::clamp<std::size_t>(w, 1, 16);
}

void windowed_mult_add_constant(ProgramBuilder& bld, const Constant& k, const Register& y,
                                const Register& acc, std::size_t window_bits) {
  QRE_REQUIRE(acc.size() >= k.bits + y.size(),
              "windowed_mult_add_constant: accumulator too narrow for the product");
  if (k.bits == 0 || y.empty()) return;
  const std::size_t w = window_bits != 0 ? window_bits : default_window_bits(y.size());
  const bool counting = bld.counting_only();

  for (std::size_t i = 0; i < y.size(); i += w) {
    const std::size_t wa = std::min(w, y.size() - i);
    Register address = slice(y, i, wa);

    // Table entry for window value v is k*v, of width k.bits + wa.
    LookupData data;
    data.data_width = std::min(k.bits + wa, acc.size() - i);
    if (!counting) {
      QRE_REQUIRE(k.bits + wa <= 64,
                  "windowed multiplication: executing backends need k*window <= 64 bits");
      data.values.resize(std::uint64_t{1} << wa);
      for (std::uint64_t v = 0; v < data.values.size(); ++v) data.values[v] = k.value * v;
    }

    Register t = bld.alloc_register(data.data_width);
    lookup_xor(bld, address, t, data);

    // acc[i..] bits at and above i + k.bits are zero before this addition
    // (partial sum < 2^(k.bits + i)), so the window plus carry is exact.
    std::size_t len = std::min(data.data_width, acc.size() - i - 1);
    Register window = slice(acc, i, len);
    std::optional<QubitId> carry;
    if (i + len < acc.size()) carry = acc[i + len];
    add_into(bld, slice(t, 0, len), window, carry);
    if (len < t.size()) {
      // The top table bit coincides with the carry position; fold it in.
      QRE_REQUIRE(carry.has_value(), "windowed multiplication: accumulator sizing bug");
      bld.cx(t[len], *carry);
    }

    unlookup(bld, address, t, data);
    bld.free_register(t);
  }
}

void schoolbook_mult_add(ProgramBuilder& bld, const Register& x, const Register& y,
                         const Register& acc) {
  QRE_REQUIRE(acc.size() >= x.size() + y.size(),
              "schoolbook_mult_add: accumulator too narrow for the product");
  if (x.empty() || y.empty()) return;
  for (std::size_t i = 0; i < y.size(); ++i) {
    std::size_t len = std::min(x.size(), acc.size() - i - 1);
    Register window = slice(acc, i, len);
    std::optional<QubitId> carry;
    if (i + len < acc.size()) carry = acc[i + len];
    add_into_controlled(bld, y[i], x, window, carry);
  }
}

std::string_view to_string(MultiplierKind kind) {
  switch (kind) {
    case MultiplierKind::kStandard: return "standard";
    case MultiplierKind::kWindowed: return "windowed";
    case MultiplierKind::kKaratsuba: return "karatsuba";
    case MultiplierKind::kSchoolbookQQ: return "schoolbook-qq";
    case MultiplierKind::kKaratsubaExact: return "karatsuba-exact";
  }
  return "?";
}

LogicalCounts multiplier_counts(MultiplierKind kind, std::uint64_t n_bits,
                                const MultiplierOptions& options) {
  QRE_REQUIRE(n_bits >= 1, "multiplier_counts: operand width must be positive");
  LogicalCounter counter;
  ProgramBuilder bld(counter);
  const auto n = static_cast<std::size_t>(n_bits);

  // A fixed pseudo-random constant pattern; counting backends never read it.
  Constant k{0x9E3779B97F4A7C15ull, n};

  switch (kind) {
    case MultiplierKind::kStandard: {
      Register y = bld.alloc_register(n);
      Register acc = bld.alloc_register(2 * n);
      long_mult_add_constant(bld, k, y, acc);
      bld.free_register(acc);
      bld.free_register(y);
      break;
    }
    case MultiplierKind::kWindowed: {
      Register y = bld.alloc_register(n);
      Register acc = bld.alloc_register(2 * n);
      windowed_mult_add_constant(bld, k, y, acc, options.window_bits);
      bld.free_register(acc);
      bld.free_register(y);
      break;
    }
    case MultiplierKind::kKaratsuba: {
      emit_karatsuba_model(bld, n_bits, KaratsubaModel{});
      break;
    }
    case MultiplierKind::kSchoolbookQQ: {
      Register x = bld.alloc_register(n);
      Register y = bld.alloc_register(n);
      Register acc = bld.alloc_register(2 * n);
      schoolbook_mult_add(bld, x, y, acc);
      bld.free_register(acc);
      bld.free_register(y);
      bld.free_register(x);
      break;
    }
    case MultiplierKind::kKaratsubaExact: {
      Register x = bld.alloc_register(n);
      Register y = bld.alloc_register(n);
      Register acc = bld.alloc_register(2 * n);
      KaratsubaOptions kopts;
      kopts.cutoff = options.cutoff;
      karatsuba_mult_add(bld, x, y, acc, kopts);
      bld.free_register(acc);
      bld.free_register(y);
      bld.free_register(x);
      break;
    }
  }
  return counter.counts();
}

}  // namespace qre
