// QROM-style table lookup and measurement-based unlookup
// (Babbush et al. unary iteration; Gidney, arXiv:1905.07682).
//
// lookup_xor writes target ^= data[address] using a select tree with one AND
// per internal node (~2^w - 2 ANDs for a w-bit address); the data writes are
// CNOT fan-outs (Clifford). unlookup erases the looked-up value with X-basis
// measurements of the target and a phase fix-up that costs only
// ~2*2^(w/2) + 2^(w-w/2) ANDs: the measured mask m leaves a residual phase
// (-1)^{<m, data[k]>} on each address branch |k>, which is cancelled by a
// one-hot phase lookup over the low address half.
//
// Counting backends never read the table values (LookupData::values may stay
// empty); the structural ANDs and measurements are emitted either way, and
// the Clifford payload writes are approximated with batched events.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "circuit/builder.hpp"

namespace qre {

struct LookupData {
  /// Entry k of the table (LSB-first bits). May be empty for counting-only
  /// backends; executing backends require exactly 2^|address| entries.
  std::vector<std::uint64_t> values;
  /// Width of each entry in bits (= |target| for lookup_xor).
  std::size_t data_width = 0;
};

/// target ^= data[address].
void lookup_xor(ProgramBuilder& bld, const Register& address, const Register& target,
                const LookupData& data);

/// Erases target (holding data[address]) and returns it to |0>.
void unlookup(ProgramBuilder& bld, const Register& address, const Register& target,
              const LookupData& data);

/// Unary iteration: invokes leaf(ctrl, k) for every address value k, where
/// ctrl (when present) is a qubit that is 1 exactly on the |k> branch.
/// Exposed for tests and for building other select-style primitives.
void select_walk(ProgramBuilder& bld, const Register& address,
                 const std::function<void(std::optional<QubitId>, std::uint64_t)>& leaf);

}  // namespace qre
