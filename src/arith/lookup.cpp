#include "arith/lookup.hpp"

#include "common/error.hpp"
#include "common/math.hpp"

namespace qre {

namespace {

void walk(ProgramBuilder& bld, const Register& address,
          const std::function<void(std::optional<QubitId>, std::uint64_t)>& leaf,
          std::optional<QubitId> ctrl, int bit, std::uint64_t prefix) {
  if (bit < 0) {
    leaf(ctrl, prefix);
    return;
  }
  QubitId b = address[static_cast<std::size_t>(bit)];
  std::uint64_t high = prefix | (std::uint64_t{1} << bit);
  if (!ctrl.has_value()) {
    // Root level: control directly on the address bit (no AND needed).
    bld.x(b);
    walk(bld, address, leaf, b, bit - 1, prefix);  // b == 0 half
    bld.x(b);
    walk(bld, address, leaf, b, bit - 1, high);  // b == 1 half
    return;
  }
  QubitId u = bld.alloc();
  bld.compute_and(*ctrl, b, u);  // u = ctrl & b
  walk(bld, address, leaf, u, bit - 1, high);
  bld.cx(*ctrl, u);  // u = ctrl & ~b
  walk(bld, address, leaf, u, bit - 1, prefix);
  bld.cx(*ctrl, u);  // back to ctrl & b
  bld.uncompute_and(*ctrl, b, u);
  bld.free(u);
}

}  // namespace

void select_walk(ProgramBuilder& bld, const Register& address,
                 const std::function<void(std::optional<QubitId>, std::uint64_t)>& leaf) {
  walk(bld, address, leaf, std::nullopt, static_cast<int>(address.size()) - 1, 0);
}

void lookup_xor(ProgramBuilder& bld, const Register& address, const Register& target,
                const LookupData& data) {
  QRE_REQUIRE(target.size() == data.data_width || bld.counting_only(),
              "lookup_xor: target width does not match the table data width");
  const bool counting = bld.counting_only();
  if (!counting) {
    QRE_REQUIRE(address.size() < 64, "lookup_xor: address register too wide to execute");
    QRE_REQUIRE(data.values.size() == (std::uint64_t{1} << address.size()),
                "lookup_xor: table must have exactly 2^|address| entries");
    QRE_REQUIRE(data.data_width <= 64, "lookup_xor: executing backends support <= 64-bit data");
  }
  select_walk(bld, address, [&](std::optional<QubitId> ctrl, std::uint64_t k) {
    if (counting) {
      // Data-independent Clifford estimate: half the payload bits set.
      bld.backend().on_gate_batch(ctrl.has_value() ? Gate::kCx : Gate::kX,
                                  std::max<std::uint64_t>(data.data_width / 2, 1));
      return;
    }
    std::uint64_t value = data.values[k];
    for (std::size_t j = 0; j < target.size(); ++j) {
      if ((value >> j) & 1) {
        if (ctrl.has_value()) {
          bld.cx(*ctrl, target[j]);
        } else {
          bld.x(target[j]);
        }
      }
    }
  });
}

void unlookup(ProgramBuilder& bld, const Register& address, const Register& target,
              const LookupData& data) {
  const bool counting = bld.counting_only();
  // X-basis measurement of every target bit; reset leaves the register |0>.
  std::vector<bool> mask(target.size(), false);
  for (std::size_t j = 0; j < target.size(); ++j) {
    bld.h(target[j]);
    bool m = bld.mz(target[j]);
    mask[j] = m;
    if (m) bld.x(target[j]);
  }

  const std::size_t w = address.size();
  if (w == 0) return;  // single-entry table: the residual phase is global

  // Residual phase on branch |k> is (-1)^{<mask, data[k]>}; cancel it with a
  // phase lookup split across the address halves (Gidney, arXiv:1905.07682).
  auto fixup_bit = [&](std::uint64_t k) -> bool {
    if (counting) return false;  // mask is all-false on counting backends
    std::uint64_t v = data.values[k];
    bool parity = false;
    for (std::size_t j = 0; j < target.size(); ++j) {
      if (((v >> j) & 1) && mask[j]) parity = !parity;
    }
    return parity;
  };

  const std::size_t w1 = (w + 1) / 2;  // low half drives the one-hot register
  Register addr_lo = slice(address, 0, w1);
  Register addr_hi = slice(address, w1, w - w1);

  const std::uint64_t onehot_size = std::uint64_t{1} << w1;
  QRE_REQUIRE(counting || onehot_size <= 64,
              "unlookup: executing backends support address halves of <= 6 bits");
  Register onehot = bld.alloc_register(onehot_size);
  LookupData identity;
  identity.data_width = onehot_size;
  if (!counting) {
    identity.values.resize(onehot_size);
    for (std::uint64_t j = 0; j < onehot_size; ++j) {
      identity.values[j] = std::uint64_t{1} << j;
    }
  }
  lookup_xor(bld, addr_lo, onehot, identity);  // onehot[j] ^= [addr_lo == j]

  select_walk(bld, addr_hi, [&](std::optional<QubitId> ctrl, std::uint64_t hi) {
    for (std::uint64_t j = 0; j < onehot_size; ++j) {
      if (fixup_bit((hi << w1) | j)) {
        if (ctrl.has_value()) {
          bld.cz(*ctrl, onehot[j]);
        } else {
          bld.z(onehot[j]);
        }
      }
    }
  });

  lookup_xor(bld, addr_lo, onehot, identity);  // XOR twice clears the one-hot
  bld.free_register(onehot);
}

}  // namespace qre
