#include "arith/qft.hpp"

namespace qre {

namespace {
constexpr double kPi = 3.14159265358979323846;
}

void qft(ProgramBuilder& bld, const Register& reg) {
  const std::size_t n = reg.size();
  for (std::size_t i = n; i-- > 0;) {
    bld.h(reg[i]);
    for (std::size_t j = i; j-- > 0;) {
      double angle = kPi / static_cast<double>(std::uint64_t{1} << (i - j));
      bld.cphase(angle, reg[j], reg[i]);
    }
  }
  for (std::size_t i = 0; i < n / 2; ++i) bld.swap(reg[i], reg[n - 1 - i]);
}

void qft_adjoint(ProgramBuilder& bld, const Register& reg) {
  const std::size_t n = reg.size();
  for (std::size_t i = 0; i < n / 2; ++i) bld.swap(reg[i], reg[n - 1 - i]);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < i; ++j) {
      double angle = -kPi / static_cast<double>(std::uint64_t{1} << (i - j));
      bld.cphase(angle, reg[j], reg[i]);
    }
    bld.h(reg[i]);
  }
}

}  // namespace qre
