// Non-destructive comparators built from a carry-only ripple sweep: the
// forward sweep of the Gidney adder computes the carry chain into ancillas,
// the carry-out is copied to the flag, and the sweep is rewound without
// writing sum bits — leaving both operands untouched. One AND per bit
// position. These are the building blocks of modular reduction.
#pragma once

#include "arith/adders.hpp"
#include "circuit/builder.hpp"

namespace qre {

/// flag ^= carry_out(a + b + carry_in); a and b are left unchanged.
/// Requires |a| == |b| >= 1.
void carry_of_sum(ProgramBuilder& bld, const Register& a, const Register& b, QubitId flag,
                  bool carry_in = false);

/// flag ^= [a < b] (unsigned); requires |a| == |b|.
void compare_less(ProgramBuilder& bld, const Register& a, const Register& b, QubitId flag);

/// flag ^= [reg >= k] for a classical constant 1 <= k <= 2^|reg|.
void compare_geq_constant(ProgramBuilder& bld, const Register& reg, const Constant& k,
                          QubitId flag);

}  // namespace qre
