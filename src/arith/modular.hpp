// Modular arithmetic and modular exponentiation — the Shor-style workload
// windowed arithmetic was designed for (Gidney, arXiv:1905.07682), provided
// both as verifiable circuits and as an estimation workload generator.
//
// Registers hold values in [0, N); the modulus N is classical with
// 2^(n-1) <= N <= 2^n for n-bit registers (any N < 2^n works). Executing
// backends require n <= ~60; counting backends work at any width (constants
// and table payloads are emitted as batched Cliffords).
//
// The in-place modular multiply follows the standard structure:
//   t = (c * acc) mod N  (windowed lookups + modular additions),
//   swap acc <-> t       (optionally controlled),
//   t -= (c^{-1} * acc) mod N  (the adjoint of a windowed multiply),
// so the scratch register returns to |0>. Modular exponentiation chains one
// controlled multiply per exponent bit with c_i = g^(2^i) mod N.
#pragma once

#include <cstdint>
#include <optional>

#include "arith/adders.hpp"
#include "circuit/builder.hpp"
#include "counter/logical_counts.hpp"

namespace qre {

/// reg = (reg + k) mod N, for classical 0 <= k < N. Uses one comparator, a
/// constant addition, and a flag uncomputation (two more comparators).
void mod_add_constant(ProgramBuilder& bld, std::uint64_t k, std::uint64_t modulus,
                      const Register& reg);

/// acc = (acc + t) mod N for quantum t, acc (both < N).
void mod_add_into(ProgramBuilder& bld, const Register& t, std::uint64_t modulus,
                  const Register& acc);

/// target = (target + c * y) mod N, windowed over y (classical constant c).
/// When `control` is given the whole operation is controlled — the control
/// simply extends the lookup address, so the overhead is one address bit.
/// window_bits = 0 picks ~log2 |y|.
void windowed_mod_mult_add(ProgramBuilder& bld, std::optional<QubitId> control,
                           std::uint64_t c, std::uint64_t modulus, const Register& y,
                           const Register& target, std::size_t window_bits = 0);

/// acc = (c * acc) mod N in place (controlled when `control` is given);
/// c_inverse must be the modular inverse of c mod N. gcd(c, N) = 1.
void mod_mul_constant_inplace(ProgramBuilder& bld, std::optional<QubitId> control,
                              std::uint64_t c, std::uint64_t c_inverse, std::uint64_t modulus,
                              const Register& acc, std::size_t window_bits = 0);

/// acc = (g^e * acc) mod N for a quantum exponent register e: one controlled
/// modular multiplication per exponent bit.
void mod_exp(ProgramBuilder& bld, std::uint64_t g, std::uint64_t modulus,
             const Register& exponent, const Register& acc, std::size_t window_bits = 0);

/// Classical helpers (used by the circuits and their tests).
std::uint64_t mod_pow(std::uint64_t base, std::uint64_t exp, std::uint64_t modulus);
std::uint64_t mod_inverse(std::uint64_t value, std::uint64_t modulus);  // throws if none

/// Estimation workload: logical counts for a full n-bit modular
/// exponentiation with a 2n-bit exponent (the factoring kernel). One
/// controlled modular multiplication is traced and composed 2n times via
/// LogicalCounts (the AccountForEstimates pattern), so this scales to
/// RSA-sized moduli in seconds.
LogicalCounts factoring_counts(std::uint64_t modulus_bits, std::size_t window_bits = 0);

}  // namespace qre
