#include "arith/dynamics.hpp"

#include "common/error.hpp"
#include "counter/logical_counter.hpp"

namespace qre {

namespace {

/// exp(-i * theta/2 * Z.Z) on (a, b).
void zz_interaction(ProgramBuilder& bld, double theta, QubitId a, QubitId b) {
  bld.cx(a, b);
  bld.rz(theta, b);
  bld.cx(a, b);
}

}  // namespace

void ising_trotter_evolution(ProgramBuilder& bld, const Register& sites,
                             const IsingModelSpec& spec) {
  QRE_REQUIRE(sites.size() == spec.num_sites(),
              "ising_trotter_evolution: register does not match the lattice");
  QRE_REQUIRE(spec.trotter_steps >= 1, "ising_trotter_evolution: needs at least one step");
  const std::size_t w = spec.lattice_width;
  const std::size_t h = spec.lattice_height;
  auto site = [&](std::size_t x, std::size_t y) { return sites[y * w + x]; };
  const double theta_x = 2.0 * spec.dt * spec.transverse_field;
  const double theta_zz = 2.0 * spec.dt * spec.coupling;

  for (std::size_t step = 0; step < spec.trotter_steps; ++step) {
    // Transverse field: one parallel rotation layer.
    for (QubitId q : sites) bld.rx(theta_x, q);
    // Horizontal then vertical edges, even/odd interleaved so that each
    // sweep touches disjoint qubit pairs (parallel rotation layers).
    for (std::size_t parity = 0; parity < 2; ++parity) {
      for (std::size_t y = 0; y < h; ++y) {
        for (std::size_t x = parity; x + 1 < w; x += 2) {
          zz_interaction(bld, theta_zz, site(x, y), site(x + 1, y));
        }
      }
    }
    for (std::size_t parity = 0; parity < 2; ++parity) {
      for (std::size_t y = parity; y + 1 < h; y += 2) {
        for (std::size_t x = 0; x < w; ++x) {
          zz_interaction(bld, theta_zz, site(x, y), site(x, y + 1));
        }
      }
    }
  }
}

LogicalCounts ising_counts(const IsingModelSpec& spec) {
  LogicalCounter counter;
  ProgramBuilder bld(counter);
  Register sites = bld.alloc_register(spec.num_sites());
  for (QubitId q : sites) bld.h(q);  // prepare |+...+>
  ising_trotter_evolution(bld, sites, spec);
  for (QubitId q : sites) bld.mz(q);
  bld.free_register(sites);
  return counter.counts();
}

}  // namespace qre
