// Quantum dynamics workload: first-order Trotter simulation of the 2D
// transverse-field Ising model — the rotation-dominated application class
// the estimator's rotation-synthesis path (paper Section III-B) exists for,
// and one of the three applications the paper's companion study evaluates.
//
// Each Trotter step applies Rx(2*dt*h) to every site and
// exp(-i*dt*J Z.Z) = CX - Rz(2*dt*J) - CX across every lattice edge, with
// edges ordered so disjoint pairs share rotation layers.
#pragma once

#include <cstdint>

#include "circuit/builder.hpp"
#include "counter/logical_counts.hpp"

namespace qre {

struct IsingModelSpec {
  std::size_t lattice_width = 10;
  std::size_t lattice_height = 10;
  std::size_t trotter_steps = 100;
  double dt = 0.1;
  double transverse_field = 1.0;  // h
  double coupling = 1.0;          // J

  std::size_t num_sites() const { return lattice_width * lattice_height; }
};

/// Applies the full Trotterized evolution to `sites` (row-major lattice,
/// |sites| == spec.num_sites()).
void ising_trotter_evolution(ProgramBuilder& bld, const Register& sites,
                             const IsingModelSpec& spec);

/// Traces the evolution (plus a final measurement of every site) and
/// returns its pre-layout counts.
LogicalCounts ising_counts(const IsingModelSpec& spec);

}  // namespace qre
