// Quantum adders built from the Gidney AND gadget (arXiv:1709.06648).
//
// The in-place ripple adder uses one AND (CCiX) per bit position below the
// top: n-1 ANDs for an n-bit modular addition, n with carry-out. AND
// ancillas are uncomputed measurement-based (one measurement each, no
// non-Clifford gates), or unitarily inside taped regions.
//
// All registers are least-significant-bit first. Classical constants are
// described by `Constant` (value + width); counting-only backends never read
// the value, so constants wider than 64 bits are usable for counting.
#pragma once

#include <cstdint>
#include <optional>

#include "circuit/builder.hpp"

namespace qre {

/// A classical constant operand. `bits` may exceed 64 for counting-only
/// backends (the value is then ignored); executing backends require
/// bits <= 64.
struct Constant {
  std::uint64_t value = 0;
  std::size_t bits = 0;

  bool bit(std::size_t i) const { return i < 64 && ((value >> i) & 1) != 0; }
};

/// b += a (mod 2^|b|); requires |a| <= |b|. With `carry_out` the exact sum
/// extends into the extra qubit (which must be |0>).
void add_into(ProgramBuilder& bld, const Register& a, const Register& b,
              std::optional<QubitId> carry_out = std::nullopt);

/// b -= a (mod 2^|b|); requires |a| <= |b|.
void sub_into(ProgramBuilder& bld, const Register& a, const Register& b);

/// b += a when ctrl is set; costs |a| extra ANDs for the masked copy of a.
void add_into_controlled(ProgramBuilder& bld, QubitId ctrl, const Register& a,
                         const Register& b, std::optional<QubitId> carry_out = std::nullopt);

/// b += k (mod 2^|b|, or exact with carry_out).
void add_constant(ProgramBuilder& bld, const Constant& k, const Register& b,
                  std::optional<QubitId> carry_out = std::nullopt);

/// b += k when ctrl is set. The masked constant is fanned out with CNOTs
/// (Clifford), so this costs the same number of ANDs as a plain addition.
void add_constant_controlled(ProgramBuilder& bld, QubitId ctrl, const Constant& k,
                             const Register& b,
                             std::optional<QubitId> carry_out = std::nullopt);

}  // namespace qre
