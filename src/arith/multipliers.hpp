// The three integer multipliers of the paper's Section V use case, plus a
// quantum-times-quantum schoolbook used by tests and the exact Karatsuba.
//
// The paper's comparison (after Hansen, Joshi, and Rarick [15]) covers:
//
//  * standard long multiplication — one bit-controlled addition of the
//    multiplicand per multiplier bit: ~n^2 Toffolis (ANDs);
//  * windowed multiplication (Gidney, arXiv:1905.07682) — the multiplier is
//    processed w bits at a time; each window drives a table lookup of a
//    precomputed multiple of the multiplicand followed by one wide addition:
//    ~n^2/w + (n/w)*2^w Toffolis;
//  * Karatsuba multiplication (Gidney, arXiv:1904.07356) — a three-way
//    recursion with O(n^{log2 3}) Toffolis.
//
// The standard and windowed circuits here take a classical multiplicand and
// a quantum multiplier (acc += k * y), the setting where windowing applies
// (the lookup tables must be classical). Quantum-times-quantum schoolbook
// and an exact, simulator-verified Karatsuba (karatsuba.hpp) are provided as
// well; for large-n Karatsuba estimates a calibrated cost-model emitter
// reproduces Gidney's published scaling (see DESIGN.md for the calibration).
#pragma once

#include <cstdint>

#include "arith/adders.hpp"
#include "circuit/builder.hpp"
#include "counter/logical_counts.hpp"

namespace qre {

/// acc += k * y (standard long multiplication). Requires
/// |acc| >= k.bits + |y|.
void long_mult_add_constant(ProgramBuilder& bld, const Constant& k, const Register& y,
                            const Register& acc);

/// acc += k * y via windowed lookups; window_bits = 0 picks ~log2|y|.
/// Requires |acc| >= k.bits + |y|.
void windowed_mult_add_constant(ProgramBuilder& bld, const Constant& k, const Register& y,
                                const Register& acc, std::size_t window_bits = 0);

/// acc += x * y (schoolbook, both operands quantum). Requires
/// |acc| >= |x| + |y|.
void schoolbook_mult_add(ProgramBuilder& bld, const Register& x, const Register& y,
                         const Register& acc);

/// Default window size used by windowed_mult_add_constant when
/// window_bits == 0: floor(log2 n), clamped to [1, 16].
std::size_t default_window_bits(std::size_t n);

// --- Estimation drivers ----------------------------------------------------

enum class MultiplierKind {
  kStandard,        // long multiplication, classical constant times quantum
  kWindowed,        // windowed, classical constant times quantum
  kKaratsuba,       // Karatsuba cost model (Gidney scaling, calibrated)
  kSchoolbookQQ,    // schoolbook, quantum times quantum
  kKaratsubaExact,  // exact recursive Karatsuba circuit (small/medium n)
};

std::string_view to_string(MultiplierKind kind);

struct MultiplierOptions {
  std::size_t window_bits = 0;  // 0 = automatic (windowed)
  std::size_t cutoff = 8;       // recursion cutoff (exact Karatsuba)
};

/// Traces the multiplier for n-bit operands through a LogicalCounter and
/// returns the pre-layout counts. This is the workload generator behind the
/// paper's Figures 3 and 4.
LogicalCounts multiplier_counts(MultiplierKind kind, std::uint64_t n_bits,
                                const MultiplierOptions& options = {});

}  // namespace qre
