#include "arith/karatsuba.hpp"

#include <algorithm>
#include <cmath>

#include "arith/adders.hpp"
#include "arith/multipliers.hpp"
#include "circuit/tape.hpp"
#include "common/error.hpp"
#include "common/math.hpp"

namespace qre {

void karatsuba_product(ProgramBuilder& bld, const Register& x, const Register& y,
                       const Register& p, const KaratsubaOptions& options) {
  const std::size_t n = x.size();
  QRE_REQUIRE(y.size() == n, "karatsuba_product: operands must have equal width");
  QRE_REQUIRE(p.size() >= 2 * n, "karatsuba_product: product register too narrow");
  const std::size_t cutoff = std::max<std::size_t>(options.cutoff, 5);

  // The combination-step slice arithmetic needs 2n >= 3*ceil(n/2) + 2,
  // which holds for all n >= 6 (n = 5 must not recurse).
  if (n <= cutoff) {
    schoolbook_mult_add(bld, x, y, slice(p, 0, 2 * n));
    return;
  }

  const std::size_t m = (n + 1) / 2;
  Register x0 = slice(x, 0, m);
  Register x1 = slice(x, m, n - m);
  Register y0 = slice(y, 0, m);
  Register y1 = slice(y, m, n - m);

  // t1 = x0 + x1, t2 = y0 + y1 (each fits in m+1 bits).
  Register t1 = bld.alloc_register(m + 1);
  for (std::size_t j = 0; j < m; ++j) bld.cx(x0[j], t1[j]);
  add_into(bld, x1, t1);
  Register t2 = bld.alloc_register(m + 1);
  for (std::size_t j = 0; j < m; ++j) bld.cx(y0[j], t2[j]);
  add_into(bld, y1, t2);

  // z1 = (x0+x1)(y0+y1) lands at offset m. p is still clean there, and
  // z1 < 2^(2m+2), so the window addition is exact without a carry-out.
  Register pm = bld.alloc_register(2 * m + 2);
  karatsuba_product(bld, t1, t2, pm, options);
  add_into(bld, pm, slice(p, m, 2 * m + 2));

  // p += z0 * (1 - 2^m): slice operations with carry propagation to the top
  // of p implement p +/- z * 2^offset exactly, modulo 2^|p|.
  Register p0 = bld.alloc_register(2 * m);
  karatsuba_product(bld, x0, y0, p0, options);
  add_into(bld, p0, p);
  sub_into(bld, p0, slice(p, m, p.size() - m));

  // p += z2 * (2^2m - 2^m).
  Register p2 = bld.alloc_register(2 * (n - m));
  karatsuba_product(bld, x1, y1, p2, options);
  add_into(bld, p2, slice(p, 2 * m, p.size() - 2 * m));
  sub_into(bld, p2, slice(p, m, p.size() - m));

  // t1, t2, pm, p0, p2 intentionally stay allocated: the caller's adjoint
  // replay rewinds and releases them (keep-alive recursion, see header).
}

void karatsuba_mult_add(ProgramBuilder& bld, const Register& x, const Register& y,
                        const Register& acc, const KaratsubaOptions& options) {
  const std::size_t n = x.size();
  QRE_REQUIRE(y.size() == n, "karatsuba_mult_add: operands must have equal width");
  QRE_REQUIRE(acc.size() >= 2 * n, "karatsuba_mult_add: accumulator too narrow");
  if (n == 0) return;
  if (n <= std::max<std::size_t>(options.cutoff, 5)) {
    schoolbook_mult_add(bld, x, y, acc);
    return;
  }

  Tape tape(&bld.backend());
  Backend* real = bld.swap_backend(&tape);
  bool previous_mode = bld.set_unitary_uncompute(true);
  Register p = bld.alloc_register(2 * n);
  karatsuba_product(bld, x, y, p, options);
  bld.set_unitary_uncompute(previous_mode);
  bld.swap_backend(real);

  tape.replay(*real);
  add_into(bld, p, acc);
  tape.replay_adjoint(*real);

  // The adjoint released the region's surviving workspace at the backend
  // level; reconcile the builder's bookkeeping.
  std::vector<QubitId> survivors = tape.live_at_end();
  for (auto it = survivors.rbegin(); it != survivors.rend(); ++it) bld.reclaim(*it);
}

double KaratsubaModel::toffoli_count(std::uint64_t n) const {
  if (n <= cutoff) return base_factor * static_cast<double>(n) * static_cast<double>(n);
  return 3.0 * toffoli_count((n + 1) / 2) + linear_factor * static_cast<double>(n);
}

void emit_karatsuba_model(ProgramBuilder& bld, std::uint64_t n_bits,
                          const KaratsubaModel& model) {
  QRE_REQUIRE(bld.counting_only(),
              "the Karatsuba cost model emits batched events and requires a counting backend");
  auto workspace_size = static_cast<std::size_t>(
      std::ceil(model.qubit_factor * static_cast<double>(n_bits)));
  Register workspace = bld.alloc_register(workspace_size);
  auto toffolis = ceil_to_u64(model.toffoli_count(n_bits));
  bld.backend().on_gate_batch(Gate::kCcix, toffolis);
  bld.backend().on_measure_batch(Gate::kMz, toffolis);  // measurement-based unands
  bld.backend().on_gate_batch(Gate::kCx, 4 * toffolis);  // Clifford bookkeeping estimate
  bld.free_register(workspace);
}

}  // namespace qre
