#include "arith/comparators.hpp"

#include "common/error.hpp"

namespace qre {

void carry_of_sum(ProgramBuilder& bld, const Register& a, const Register& b, QubitId flag,
                  bool carry_in) {
  const std::size_t n = a.size();
  QRE_REQUIRE(b.size() == n, "carry_of_sum: operands must have equal width");
  QRE_REQUIRE(n >= 1, "carry_of_sum: empty operands");

  // carries[i] holds the carry into position i+1; the final entry is the
  // carry-out that feeds the flag.
  Register carries = bld.alloc_register(n);

  // Cell 0. With carry-in the carry into position 1 is MAJ(a0, b0, 1)
  // = a0 OR b0 = NOT(AND(~a0, ~b0)).
  if (carry_in) {
    bld.x(a[0]);
    bld.x(b[0]);
    bld.compute_and(a[0], b[0], carries[0]);
    bld.x(carries[0]);
    bld.x(a[0]);
    bld.x(b[0]);
  } else {
    bld.compute_and(a[0], b[0], carries[0]);
  }

  // Cells 1..n-1: c[i+1] = AND(a_i ^ c_i, b_i ^ c_i) ^ c_i.
  for (std::size_t i = 1; i < n; ++i) {
    QubitId c_in = carries[i - 1];
    bld.cx(c_in, a[i]);
    bld.cx(c_in, b[i]);
    bld.compute_and(a[i], b[i], carries[i]);
    bld.cx(c_in, carries[i]);
  }

  bld.cx(carries[n - 1], flag);

  // Rewind everything; no sum bits are written, so a and b are restored.
  for (std::size_t i = n; i-- > 1;) {
    QubitId c_in = carries[i - 1];
    bld.cx(c_in, carries[i]);
    bld.uncompute_and(a[i], b[i], carries[i]);
    bld.cx(c_in, b[i]);
    bld.cx(c_in, a[i]);
  }
  if (carry_in) {
    bld.x(a[0]);
    bld.x(b[0]);
    bld.x(carries[0]);
    bld.uncompute_and(a[0], b[0], carries[0]);
    bld.x(a[0]);
    bld.x(b[0]);
  } else {
    bld.uncompute_and(a[0], b[0], carries[0]);
  }
  bld.free_register(carries);
}

void compare_less(ProgramBuilder& bld, const Register& a, const Register& b, QubitId flag) {
  QRE_REQUIRE(a.size() == b.size(), "compare_less: operands must have equal width");
  // [a < b] = NOT carry(a + ~b + 1).
  for (QubitId q : b) bld.x(q);
  carry_of_sum(bld, a, b, flag, /*carry_in=*/true);
  bld.x(flag);
  for (QubitId q : b) bld.x(q);
}

void compare_geq_constant(ProgramBuilder& bld, const Register& reg, const Constant& k,
                          QubitId flag) {
  const std::size_t n = reg.size();
  QRE_REQUIRE(k.bits <= n, "compare_geq_constant: constant wider than the register");
  // [reg >= k] = carry(reg + (2^n - k)) for k >= 1.
  Register temp = bld.alloc_register(n);
  auto load = [&]() {
    if (bld.counting_only()) {
      bld.backend().on_gate_batch(Gate::kX, std::max<std::uint64_t>(n / 2, 1));
      return;
    }
    QRE_REQUIRE(n <= 63, "executing backends support comparators up to 63 bits");
    std::uint64_t complement = ((std::uint64_t{1} << n) - k.value) & ((std::uint64_t{1} << n) - 1);
    bld.xor_constant(temp, complement);
  };
  load();
  carry_of_sum(bld, temp, reg, flag);
  load();
  bld.free_register(temp);
}

}  // namespace qre
