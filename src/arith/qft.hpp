// Quantum Fourier transform — the library's rotation-heavy workload, used to
// exercise the rotation-synthesis path of the estimator (paper Sections
// III-B2/III-B4): n(n-1)/2 controlled phases, each decomposed into three
// arbitrary rotations, plus the usual trailing swaps.
#pragma once

#include "circuit/builder.hpp"

namespace qre {

/// Applies the QFT to the register (LSB-first convention).
void qft(ProgramBuilder& bld, const Register& reg);

/// Inverse QFT.
void qft_adjoint(ProgramBuilder& bld, const Register& reg);

}  // namespace qre
