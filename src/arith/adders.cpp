#include "arith/adders.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace qre {

namespace {

/// Shared ripple-carry core. Positions [0, |a|) are full adder cells,
/// positions [|a|, |b|) are half cells (the a operand is an implicit 0).
/// Cell i computes the carry into position i+1 as
///   c[i+1] = MAJ(a_i, b_i, c_i) = AND(a_i ^ c_i, b_i ^ c_i) ^ c_i
/// using one AND; the uncompute sweep rewinds the ANDs and writes the sum
/// bits b_i ^= a_i ^ c_i.
void ripple_add(ProgramBuilder& bld, const Register& a, const Register& b,
                std::optional<QubitId> carry_out) {
  const std::size_t m = a.size();
  const std::size_t n = b.size();
  QRE_REQUIRE(m <= n, "add_into: addend register is wider than the target");
  if (m == 0) return;

  if (n == 1) {
    if (carry_out.has_value()) {
      bld.compute_and(a[0], b[0], *carry_out);  // exact carry (no incoming carry)
    }
    bld.cx(a[0], b[0]);
    return;
  }

  // carries[i] = carry into position i+1, for i in [0, n-1); the final carry
  // (out of position n-1) goes to *carry_out when requested.
  Register carries = bld.alloc_register(n - 1);

  // --- Forward sweep: compute carries -------------------------------------
  bld.compute_and(a[0], b[0], carries[0]);
  for (std::size_t i = 1; i + 1 < n; ++i) {
    QubitId c_in = carries[i - 1];
    if (i < m) {
      bld.cx(c_in, a[i]);
      bld.cx(c_in, b[i]);
      bld.compute_and(a[i], b[i], carries[i]);
      bld.cx(c_in, carries[i]);
    } else {
      bld.compute_and(c_in, b[i], carries[i]);
    }
  }
  if (carry_out.has_value()) {
    QubitId c_in = carries[n - 2];
    std::size_t i = n - 1;
    if (i < m) {
      bld.cx(c_in, a[i]);
      bld.cx(c_in, b[i]);
      bld.compute_and(a[i], b[i], *carry_out);
      bld.cx(c_in, *carry_out);
    } else {
      bld.compute_and(c_in, b[i], *carry_out);
    }
  }

  // --- Backward sweep: uncompute carries and write sums -------------------
  {
    std::size_t i = n - 1;
    QubitId c_in = carries[n - 2];
    if (carry_out.has_value()) {
      // a_i/b_i currently hold the primed values (for full cells); restore a
      // and finish the sum. The carry-out ancilla keeps the true carry.
      if (i < m) {
        bld.cx(c_in, a[i]);
        bld.cx(a[i], b[i]);
      } else {
        bld.cx(c_in, b[i]);
      }
    } else {
      if (i < m) {
        bld.cx(c_in, b[i]);
        bld.cx(a[i], b[i]);
      } else {
        bld.cx(c_in, b[i]);
      }
    }
  }
  for (std::size_t i = n - 2; i >= 1; --i) {
    QubitId c_in = carries[i - 1];
    if (i < m) {
      bld.cx(c_in, carries[i]);
      bld.uncompute_and(a[i], b[i], carries[i]);
      bld.cx(c_in, a[i]);
      bld.cx(a[i], b[i]);
    } else {
      bld.uncompute_and(c_in, b[i], carries[i]);
      bld.cx(c_in, b[i]);
    }
  }
  bld.uncompute_and(a[0], b[0], carries[0]);
  bld.cx(a[0], b[0]);

  bld.free_register(carries);
}

}  // namespace

void add_into(ProgramBuilder& bld, const Register& a, const Register& b,
              std::optional<QubitId> carry_out) {
  ripple_add(bld, a, b, carry_out);
}

void sub_into(ProgramBuilder& bld, const Register& a, const Register& b) {
  // b - a = ~(~b + a) (two's complement identity).
  for (QubitId q : b) bld.x(q);
  ripple_add(bld, a, b, std::nullopt);
  for (QubitId q : b) bld.x(q);
}

void add_into_controlled(ProgramBuilder& bld, QubitId ctrl, const Register& a,
                         const Register& b, std::optional<QubitId> carry_out) {
  // Mask the addend with the control (|a| ANDs), add, unmask.
  Register masked = bld.alloc_register(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) bld.compute_and(ctrl, a[i], masked[i]);
  ripple_add(bld, masked, b, carry_out);
  for (std::size_t i = 0; i < a.size(); ++i) bld.uncompute_and(ctrl, a[i], masked[i]);
  bld.free_register(masked);
}

namespace {

/// Loads ctrl-masked (or plain) constant bits into a temp register and adds.
void constant_add_impl(ProgramBuilder& bld, std::optional<QubitId> ctrl, const Constant& k,
                       const Register& b, std::optional<QubitId> carry_out) {
  if (k.bits == 0) return;
  std::size_t width = std::min(k.bits, b.size());
  QRE_REQUIRE(bld.counting_only() || k.bits <= 64,
              "executing backends require constants of at most 64 bits");
  Register temp = bld.alloc_register(width);
  auto load = [&]() {
    if (bld.counting_only()) {
      // Data-independent Clifford count estimate: half the bits set.
      bld.backend().on_gate_batch(ctrl.has_value() ? Gate::kCx : Gate::kX,
                                  std::max<std::uint64_t>(width / 2, 1));
      return;
    }
    for (std::size_t i = 0; i < width; ++i) {
      if (k.bit(i)) {
        if (ctrl.has_value()) {
          bld.cx(*ctrl, temp[i]);
        } else {
          bld.x(temp[i]);
        }
      }
    }
  };
  load();
  ripple_add(bld, temp, b, carry_out);
  load();  // XOR-loading twice restores the temp to |0>
  bld.free_register(temp);
}

}  // namespace

void add_constant(ProgramBuilder& bld, const Constant& k, const Register& b,
                  std::optional<QubitId> carry_out) {
  constant_add_impl(bld, std::nullopt, k, b, carry_out);
}

void add_constant_controlled(ProgramBuilder& bld, QubitId ctrl, const Constant& k,
                             const Register& b, std::optional<QubitId> carry_out) {
  constant_add_impl(bld, ctrl, k, b, carry_out);
}

}  // namespace qre
