#include "layout/layout.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/math.hpp"

namespace qre {

std::uint64_t post_layout_logical_qubits(std::uint64_t algorithmic_qubits) {
  QRE_REQUIRE(algorithmic_qubits > 0, "layout requires at least one algorithmic qubit");
  double root = std::sqrt(8.0 * static_cast<double>(algorithmic_qubits));
  return 2 * algorithmic_qubits + ceil_to_u64(root) + 1;
}

}  // namespace qre
