// Planar-ISA layout overhead (paper Section III-B1).
//
// The estimator assumes 2D nearest-neighbor connectivity. To emulate the
// all-to-all connectivity a program requires, rows of algorithmic logical
// qubits alternate with rows of auxiliary logical qubits used to route
// multi-qubit Pauli measurements, giving (Beverland et al., arXiv:2211.07629)
//
//     Q_logical = 2 * Q_alg + ceil(sqrt(8 * Q_alg)) + 1.
//
// The tool does not analyze program connectivity to shrink this bound
// (paper: "does not (yet) analyze the qubit connectivity used in the
// algorithm"), and neither do we.
#pragma once

#include <cstdint>

namespace qre {

/// Number of logical qubits after layout for a program using
/// `algorithmic_qubits` logical qubits before layout.
std::uint64_t post_layout_logical_qubits(std::uint64_t algorithmic_qubits);

}  // namespace qre
