#include "server/server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/error.hpp"
#include "common/failpoint.hpp"

namespace qre::server {

namespace {

void close_quietly(int& fd) {
  if (fd >= 0) {
    ::close(fd);
    fd = -1;
  }
}

[[noreturn]] void throw_errno(const std::string& what) {
  throw_error(what + ": " + std::strerror(errno));
}

/// Blocking send of the whole buffer; MSG_NOSIGNAL so a dead peer surfaces
/// as an error instead of SIGPIPE. EAGAIN/EWOULDBLOCK — SO_SNDTIMEO fired
/// because the peer stopped reading — also returns false: the caller
/// abandons the response and closes, freeing the worker.
bool send_all(int fd, std::string_view data) {
  while (!data.empty()) {
    const ssize_t n = ::send(fd, data.data(), data.size(), MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    data.remove_prefix(static_cast<std::size_t>(n));
  }
  return true;
}

}  // namespace

Server::Server(Router& router, ServerOptions options)
    : router_(router), options_(options) {
  if (options_.num_workers == 0) options_.num_workers = 1;
  active_fds_.assign(options_.num_workers, -1);
}

Server::~Server() { stop(); }

void Server::start() {
  QRE_REQUIRE(!started_, "server already started");
  // A stopped Server may be started again: clear the previous run's
  // shutdown state or the new acceptor/workers would exit immediately.
  stop_requested_.store(false);
  {
    MutexLock lock(mutex_);
    acceptor_done_ = false;
  }

  int pipe_fds[2];
  if (::pipe(pipe_fds) != 0) throw_errno("self-pipe");
  wake_read_fd_ = pipe_fds[0];
  wake_write_fd_ = pipe_fds[1];

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) throw_errno("socket");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) != 1) {
    throw_error("invalid bind address '" + options_.bind_address + "' (IPv4 only)");
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    throw_errno("bind " + options_.bind_address + ":" + std::to_string(options_.port));
  }
  if (::listen(listen_fd_, 128) != 0) throw_errno("listen");

  sockaddr_in bound{};
  socklen_t bound_len = sizeof bound;
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &bound_len) != 0) {
    throw_errno("getsockname");
  }
  port_ = ntohs(bound.sin_port);

  started_ = true;
  acceptor_ = std::thread([this] { acceptor_loop(); });
  workers_.reserve(options_.num_workers);
  for (std::size_t slot = 0; slot < options_.num_workers; ++slot) {
    workers_.emplace_back([this, slot] { worker_loop(slot); });
  }
}

void Server::request_stop() {
  stop_requested_.store(true);
  if (wake_write_fd_ >= 0) {
    const char byte = 'x';
    // A full pipe just means a wakeup is already pending; ignore the result.
    [[maybe_unused]] ssize_t n = ::write(wake_write_fd_, &byte, 1);
  }
}

void Server::wait() {
  MutexLock lock(mutex_);
  while (!acceptor_done_ && started_) acceptor_done_cv_.wait(mutex_);
}

void Server::stop() {
  if (!started_) return;
  request_stop();
  if (acceptor_.joinable()) acceptor_.join();
  {
    MutexLock lock(mutex_);
    // Connections that never reached a worker are closed unserved — serving
    // them now could block shutdown behind clients that never send a byte.
    for (int fd : pending_connections_) ::close(fd);
    pending_connections_.clear();
    // Wake workers blocked in recv on idle keep-alive connections. Writes
    // of in-flight responses are unaffected (read side only).
    for (int fd : active_fds_) {
      if (fd >= 0) ::shutdown(fd, SHUT_RD);
    }
  }
  connections_available_.notify_all();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
  close_quietly(wake_read_fd_);
  close_quietly(wake_write_fd_);
  started_ = false;
}

void Server::acceptor_loop() {
  for (;;) {
    pollfd fds[2] = {{listen_fd_, POLLIN, 0}, {wake_read_fd_, POLLIN, 0}};
    const int ready = ::poll(fds, 2, -1);
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (stop_requested_.load() || (fds[1].revents & POLLIN) != 0) break;
    if ((fds[0].revents & POLLIN) == 0) continue;

    const int conn = ::accept(listen_fd_, nullptr, nullptr);
    if (conn < 0) continue;

    if (options_.receive_timeout_seconds > 0) {
      timeval timeout{};
      timeout.tv_sec = options_.receive_timeout_seconds;
      ::setsockopt(conn, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof timeout);
    }
    if (options_.send_timeout_seconds > 0) {
      timeval timeout{};
      timeout.tv_sec = options_.send_timeout_seconds;
      ::setsockopt(conn, SOL_SOCKET, SO_SNDTIMEO, &timeout, sizeof timeout);
    }
    const int one = 1;
    ::setsockopt(conn, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);

    {
      MutexLock lock(mutex_);
      pending_connections_.push_back(conn);
    }
    connections_available_.notify_one();
  }

  close_quietly(listen_fd_);
  {
    MutexLock lock(mutex_);
    acceptor_done_ = true;
  }
  acceptor_done_cv_.notify_all();
  connections_available_.notify_all();
}

void Server::worker_loop(std::size_t slot) {
  for (;;) {
    int fd = -1;
    {
      MutexLock lock(mutex_);
      while (pending_connections_.empty() && !stop_requested_.load()) {
        connections_available_.wait(mutex_);
      }
      if (pending_connections_.empty()) return;  // stopping and drained
      fd = pending_connections_.front();
      pending_connections_.pop_front();
      active_fds_[slot] = fd;
    }
    if (options_.metrics != nullptr) options_.metrics->connection_opened();
    serve_connection(fd);
    if (options_.metrics != nullptr) options_.metrics->connection_closed();
    {
      MutexLock lock(mutex_);
      active_fds_[slot] = -1;
    }
    ::close(fd);
  }
}

void Server::serve_connection(int fd) {
  const ByteSource source = [fd](char* buf, std::size_t len) -> long {
    for (;;) {
      const ssize_t n = ::recv(fd, buf, len, 0);
      if (n >= 0) return static_cast<long>(n);
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return -2;  // SO_RCVTIMEO
      return -1;
    }
  };
  const ByteSink sink = [fd](std::string_view data) {
    // Injected write fault = the peer became unwritable: abandon the
    // response, report failure so the connection closes.
    try {
      QRE_FAILPOINT("server.conn.before_write");
    } catch (const Error&) {
      return false;
    }
    return send_all(fd, data);
  };

  std::string buffer;
  for (;;) {
    // Injected read fault = the peer vanished mid-stream: drop the
    // connection without a response, like a real half-open socket.
    try {
      QRE_FAILPOINT("server.conn.before_read");
    } catch (const Error&) {
      break;
    }
    Request request;
    const ReadStatus status = read_request(source, buffer, request, options_.limits);
    if (status == ReadStatus::kClosed || status == ReadStatus::kTimeout) break;
    if (status == ReadStatus::kBadRequest || status == ReadStatus::kTooLarge) {
      // Rejected before router dispatch — still observable: the reject is
      // counted in Metrics, carries an X-Request-Id, and lands in the
      // access log, so abusive traffic shows up like any other traffic.
      const bool too_large = status == ReadStatus::kTooLarge;
      const char* route = too_large ? "(too-large)" : "(malformed)";
      Response reject;
      reject.status = too_large ? 413 : 400;
      reject.body =
          too_large
              ? R"({"error": {"code": "too-large", "message": "request exceeds size limits"}})"
                "\n"
              : R"({"error": {"code": "bad-request", "message": "malformed HTTP request"}})"
                "\n";
      reject.close = true;
      const std::string request_id = next_request_id();
      reject.extra_headers.push_back({"X-Request-Id", request_id});
      std::uint64_t bytes_out = 0;
      const ByteSink counting_sink = [&](std::string_view data) {
        bytes_out += data.size();
        return sink(data);
      };
      write_response(counting_sink, reject, false);
      if (options_.metrics != nullptr) {
        options_.metrics->record(route, reject.status, 0.0);
      }
      if (options_.access_log != nullptr) {
        AccessEntry entry;
        entry.id = request_id;
        entry.method = request.method;  // usually empty: nothing parsed
        entry.path = request.method.empty() ? std::string() : request.path();
        entry.route = route;
        entry.status = reject.status;
        entry.bytes_out = bytes_out;
        entry.failpoints_armed = failpoint::active_count();
        options_.access_log->record(entry);
      }
      break;
    }
    const bool alive = router_.handle(request, sink);
    // Graceful drain: finish the request that was in flight, then close
    // even if the client asked for keep-alive.
    if (!alive || stop_requested_.load()) break;
  }
}

}  // namespace qre::server
