// Structured access log + request-id correlation helpers.
//
// One JSON object per line per request (qre_serve --access-log), written
// after the response went out — including requests rejected before router
// dispatch (malformed framing, oversized bodies). The line carries the
// request id that was echoed to the client in X-Request-Id, so a client
// report ("request qre-17 failed") greps straight to the server-side record
// and, with tracing on, to the matching server.request span window. Schema:
// docs/observability.md.
//
// Request ids: clients may supply their own via an X-Request-Id header
// (sanitized — see sanitize_request_id); otherwise the server assigns
// "qre-<n>" from a process-local counter (unique per process, not across
// restarts; clients needing global uniqueness send their own).
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>

#include "common/mutex.hpp"
#include "common/thread_annotations.hpp"
#include "server/http.hpp"

namespace qre::server {

/// Everything one access-log line records. latency/bytes are best effort
/// for pre-dispatch rejects (no parsed request to measure).
struct AccessEntry {
  std::string id;          // request id, as echoed in X-Request-Id
  std::string method;      // "" when the request never parsed
  std::string path;        // target path (query stripped); "" when unparsed
  std::string route;       // bounded-cardinality route label (metrics key)
  int status = 0;
  double latency_ms = 0;
  std::uint64_t bytes_in = 0;   // request body bytes
  std::uint64_t bytes_out = 0;  // response bytes written (headers + body)
  bool deadline = false;        // request hit the server-side deadline
  bool cancelled = false;       // request asked for / performed a cancel
  int failpoints_armed = 0;     // active failpoint terms while serving
};

/// Line-buffered JSON-lines sink; concurrency-safe ("-" logs to stderr).
/// Write failures are silent after construction: losing a log line must
/// never fail a request.
class AccessLog {
 public:
  explicit AccessLog(const std::string& path);
  ~AccessLog();

  AccessLog(const AccessLog&) = delete;
  AccessLog& operator=(const AccessLog&) = delete;

  /// Whether the sink opened; when false, record() is a no-op.
  bool ok() const { return file_ != nullptr; }

  /// Appends one line: {"ts": "...Z", "id": ..., ...}\n, flushed.
  void record(const AccessEntry& entry);

 private:
  Mutex mutex_;
  std::FILE* file_ QRE_GUARDED_BY(mutex_) = nullptr;
  bool owned_ = false;  // false for the stderr sink
};

/// A fresh server-assigned request id ("qre-<counter>").
std::string next_request_id();

/// `candidate` when it is a well-formed client id (1-64 chars from
/// [A-Za-z0-9._-]), empty otherwise (caller falls back to next_request_id).
std::string sanitize_request_id(const std::string& candidate);

/// The id to use for `request`: its sanitized X-Request-Id, else a fresh
/// server-assigned one.
std::string request_id_for(const Request& request);

}  // namespace qre::server
