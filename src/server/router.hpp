// Endpoint routing for the estimation server.
//
// Service bundles everything that lives for the whole serving process and
// is shared by every request thread: the profile registry, ONE
// service::Engine (so the estimate cache — and, transitively, the
// process-level T-factory cache — stay warm across requests), the async
// JobQueue, and the Metrics sink. Router maps parsed HTTP requests onto it:
//
//   POST   /v2/estimate   synchronous estimate; full v2 envelope.
//                         "Accept: application/x-ndjson" streams batch and
//                         sweep results one item per line (chunked).
//   POST   /v2/jobs       async submit -> 202 {"id", "status"}; 429 when
//                         the backlog is full
//   GET    /v2/jobs/{id}  job status (+ response envelope when finished)
//   DELETE /v2/jobs/{id}  cancel a queued job (200) or a running one
//                         (202 "cancelling", cooperative — see job_queue.hpp)
//   POST   /v2/validate   schema dry-run; never estimates
//   GET    /v2/profiles   registry dump (qubits, QEC schemes, units)
//   GET    /healthz       liveness probe
//   GET    /version       build + schema version
//   GET    /metrics       request counts, latency histogram, cache and
//                         job-queue counters; "?format=prometheus" renders
//                         the same document as text exposition
//   GET    /v2/trace      Chrome-trace JSON export of the span ring (409
//                         "tracing-disabled" unless the tracer is on)
//
// Every response carries an X-Request-Id header (the client's sanitized id
// or a server-assigned "qre-<n>"), the same id appears in router-level
// error documents as "requestId", and — with --access-log — one JSON line
// per request lands in the access log. See docs/observability.md.
//
// The router is transport-free (it writes through a ByteSink), so the full
// endpoint surface is exercised in-process by tests/test_server.cpp.
#pragma once

#include <chrono>
#include <memory>
#include <string>
#include <thread>

#include "api/registry.hpp"
#include "common/mutex.hpp"
#include "common/thread_annotations.hpp"
#include "server/access_log.hpp"
#include "server/http.hpp"
#include "server/job_queue.hpp"
#include "server/metrics.hpp"
#include "service/engine.hpp"
#include "store/estimate_store.hpp"

namespace qre::server {

struct ServiceOptions {
  /// Engine defaults for every request: worker width for batch items,
  /// shared-cache capacity, etc. (EngineOptions::cache is ignored — the
  /// Service's engine always owns the shared cache.)
  service::EngineOptions engine;
  JobQueueOptions jobs;
  /// Directory of the persistent estimate store (qre_serve --cache-dir);
  /// empty disables persistence. Must exist (the daemon creates it). The
  /// Service prewarms the engine from <dir>/estimates.qrestore on
  /// construction and persists on drain (see Service::persist_store).
  std::string cache_dir;
  /// Seconds between periodic persists of the store (qre_serve
  /// --persist-interval); 0 persists only on drain. Ignored without
  /// cache_dir.
  double persist_interval_s = 0;
  /// Deadline applied to every POST /v2/estimate run (qre_serve
  /// --request-deadline); 0 disables. A run past its deadline stops at the
  /// next item boundary: batch responses keep per-item "cancelled" entries
  /// (isolation semantics), single/frontier runs answer HTTP 408 with a
  /// "deadline-exceeded" diagnostic. Async jobs are not bounded — they are
  /// cancelled explicitly via DELETE.
  double request_deadline_s = 0;
  /// Path of the structured access log (qre_serve --access-log); "-" logs
  /// to stderr, empty disables. One JSON line per request — schema in
  /// docs/observability.md.
  std::string access_log_path;
};

/// The process-wide serving state. `registry` must outlive the Service and
/// must not be mutated once requests are in flight (see the thread-safety
/// contract in api/registry.hpp): load profile packs first, then serve.
class Service {
 public:
  explicit Service(api::Registry& registry, ServiceOptions options = {});
  ~Service();

  api::Registry& registry() { return registry_; }
  service::Engine& engine() { return engine_; }
  JobQueue& jobs() { return jobs_; }
  Metrics& metrics() { return metrics_; }
  /// The persistent estimate store, or nullptr when cache_dir was empty.
  store::EstimateStore* store() { return store_.get(); }
  /// The structured access log, or nullptr when access_log_path was empty
  /// (or the file failed to open — logging must never fail serving).
  AccessLog* access_log() { return access_log_.get(); }

  /// Persists the store now (no-op without one); called on graceful drain
  /// and by the periodic persist thread.
  void persist_store();

  /// Parses + runs one job document on the shared engine; returns the full
  /// v2 response envelope. This is the job-queue runner and the body of
  /// POST /v2/estimate. `cancel` propagates into the engine's item loop;
  /// pass the default token for an unbounded run.
  json::Value run_document(const json::Value& document, const CancelToken& cancel = {});

  /// ServiceOptions::request_deadline_s (0 = no deadline).
  double request_deadline_s() const { return request_deadline_s_; }

 private:
  api::Registry& registry_;
  double request_deadline_s_ = 0;
  std::unique_ptr<AccessLog> access_log_;
  std::unique_ptr<store::EstimateStore> store_;  // before engine_: wired into it
  service::Engine engine_;
  Metrics metrics_;

  void persist_thread_loop(std::chrono::duration<double> interval);

  // Periodic persistence (started only with cache_dir + a positive
  // interval); the cv lets the destructor stop a long sleep immediately.
  Mutex persist_thread_mutex_;
  CondVar persist_thread_cv_;
  bool stop_persist_thread_ QRE_GUARDED_BY(persist_thread_mutex_) = false;
  std::thread persist_thread_;

  JobQueue jobs_;  // declared last: workers use engine_/registry_ via run_document
};

/// Per-request bookkeeping threaded through dispatch: the correlation id,
/// the metrics route label, and the flags the access-log line reports.
struct RequestContext {
  std::string id;           // echoed as X-Request-Id on every response
  std::string route_label;  // bounded-cardinality metrics key
  int status = 500;
  bool deadline = false;   // the run hit the server-side deadline (408)
  bool cancelled = false;  // the request asked for a job cancellation
};

class Router {
 public:
  explicit Router(Service& service) : service_(service) {}

  /// Handles one request: writes exactly one response through `sink`
  /// (Content-Length or chunked) with an X-Request-Id header, records
  /// metrics, and appends an access-log line when the Service has a log.
  /// Returns whether the connection may be kept alive (request wished it
  /// and all writes succeeded).
  bool handle(const Request& request, const ByteSink& sink);

 private:
  bool dispatch(const Request& request, const ByteSink& sink, RequestContext& ctx);

  Service& service_;
};

}  // namespace qre::server
