// Prometheus text exposition of the /metrics JSON document.
//
// GET /metrics?format=prometheus renders the same document GET /metrics
// returns as JSON into the Prometheus text format (version 0.0.4): counters
// and gauges as single samples, the request-latency histogram with
// cumulative `_bucket{le=...}` counts plus `_sum`/`_count`, and the
// per-route/per-status-class/per-failpoint maps as labeled families. The
// JSON-path → metric-name mapping is the kMetricsCatalog table in
// prometheus.cpp — the single source of truth that qre_lint check #6 keeps
// in sync with docs/observability.md.
#pragma once

#include <string>

#include "json/json.hpp"

namespace qre::server {

/// The Content-Type the exposition format requires.
inline constexpr const char* kPrometheusContentType =
    "text/plain; version=0.0.4; charset=utf-8";

/// Renders the /metrics JSON document (router's shape: server / caches /
/// store / jobs / client / failpoints / trace blocks) as Prometheus text.
/// Fields absent from the document (e.g. store counters when the store is
/// disabled) are simply omitted from the output.
std::string to_prometheus_text(const json::Value& metrics_document);

}  // namespace qre::server
