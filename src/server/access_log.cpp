#include "server/access_log.hpp"

#include <atomic>
#include <chrono>
#include <ctime>

#include "json/json.hpp"

namespace qre::server {

namespace {

/// Wall-clock timestamp as ISO-8601 UTC with milliseconds.
std::string iso_timestamp() {
  const auto now = std::chrono::system_clock::now();
  const std::time_t seconds = std::chrono::system_clock::to_time_t(now);
  const auto millis = std::chrono::duration_cast<std::chrono::milliseconds>(
                          now.time_since_epoch())
                          .count() %
                      1000;
  std::tm utc{};
  ::gmtime_r(&seconds, &utc);
  char buffer[40];
  std::snprintf(buffer, sizeof buffer, "%04d-%02d-%02dT%02d:%02d:%02d.%03dZ",
                utc.tm_year + 1900, utc.tm_mon + 1, utc.tm_mday, utc.tm_hour,
                utc.tm_min, utc.tm_sec, static_cast<int>(millis));
  return buffer;
}

std::atomic<std::uint64_t> g_next_request_id{1};

}  // namespace

AccessLog::AccessLog(const std::string& path) {
  MutexLock lock(mutex_);
  if (path == "-") {
    file_ = stderr;
  } else {
    file_ = std::fopen(path.c_str(), "a");
    owned_ = file_ != nullptr;
  }
}

AccessLog::~AccessLog() {
  MutexLock lock(mutex_);
  if (owned_ && file_ != nullptr) std::fclose(file_);
  file_ = nullptr;
}

void AccessLog::record(const AccessEntry& entry) {
  // The line is assembled outside the lock; only the write serializes.
  json::Object line;
  line.emplace_back("ts", iso_timestamp());
  line.emplace_back("id", entry.id);
  line.emplace_back("method", entry.method);
  line.emplace_back("path", entry.path);
  line.emplace_back("route", entry.route);
  line.emplace_back("status", json::Value(static_cast<std::int64_t>(entry.status)));
  line.emplace_back("latencyMs", json::Value(entry.latency_ms));
  line.emplace_back("bytesIn", json::Value(entry.bytes_in));
  line.emplace_back("bytesOut", json::Value(entry.bytes_out));
  line.emplace_back("deadline", json::Value(entry.deadline));
  line.emplace_back("cancelled", json::Value(entry.cancelled));
  line.emplace_back("failpointsArmed",
                    json::Value(static_cast<std::int64_t>(entry.failpoints_armed)));
  const std::string text = json::Value(std::move(line)).dump() + "\n";

  MutexLock lock(mutex_);
  if (file_ == nullptr) return;
  std::fwrite(text.data(), 1, text.size(), file_);
  std::fflush(file_);
}

std::string next_request_id() {
  return "qre-" + std::to_string(g_next_request_id.fetch_add(1));
}

std::string sanitize_request_id(const std::string& candidate) {
  if (candidate.empty() || candidate.size() > 64) return {};
  for (char c : candidate) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '.' || c == '_' || c == '-';
    if (!ok) return {};
  }
  return candidate;
}

std::string request_id_for(const Request& request) {
  if (const std::string* supplied = request.header("X-Request-Id")) {
    std::string id = sanitize_request_id(*supplied);
    if (!id.empty()) return id;
  }
  return next_request_id();
}

}  // namespace qre::server
