#include "server/client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace qre::server {

Client::~Client() { disconnect(); }

void Client::disconnect() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  buffer_.clear();
}

bool Client::connect_if_needed(std::string& error) {
  if (fd_ >= 0) {
    // Reused keep-alive connection: a non-blocking peek detects a FIN the
    // server already sent (idle timeout, graceful stop), so the request is
    // written to a live socket instead of discovering the close afterwards
    // — which matters for POSTs, where a blind resend could double-submit.
    char probe;
    const ssize_t n = ::recv(fd_, &probe, 1, MSG_PEEK | MSG_DONTWAIT);
    if (n == 0 || (n < 0 && errno != EAGAIN && errno != EWOULDBLOCK)) {
      disconnect();
    } else {
      return true;
    }
  }
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) {
    error = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port_);
  if (::inet_pton(AF_INET, host_.c_str(), &addr.sin_addr) != 1) {
    error = "invalid host address '" + host_ + "' (IPv4 only)";
    disconnect();
    return false;
  }
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    error = std::string("connect: ") + std::strerror(errno);
    disconnect();
    return false;
  }
  return true;
}

Client::Result Client::request(const std::string& method, const std::string& target,
                               const std::string& body,
                               const std::vector<Header>& headers) {
  Result result;

  std::string message = method + " " + target + " HTTP/1.1\r\n";
  message += "Host: " + host_ + ":" + std::to_string(port_) + "\r\n";
  for (const Header& h : headers) message += h.name + ": " + h.value + "\r\n";
  if (!body.empty() || method == "POST" || method == "PUT") {
    message += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  }
  message += "\r\n";
  message += body;

  // One transparent retry for the keep-alive race the pre-send peek cannot
  // fully close (the server finishes our connection between peek and send).
  // Non-idempotent methods only retry when NO request byte reached the
  // wire — a consumed-but-unanswered POST must not be blindly resent (it
  // could, e.g., double-submit an async job).
  const bool idempotent = method == "GET" || method == "HEAD";
  for (int attempt = 0; attempt < 2; ++attempt) {
    if (!connect_if_needed(result.error)) return result;

    bool write_ok = true;
    std::string_view remaining = message;
    while (!remaining.empty()) {
      const ssize_t n = ::send(fd_, remaining.data(), remaining.size(), MSG_NOSIGNAL);
      if (n <= 0) {
        if (n < 0 && errno == EINTR) continue;
        write_ok = false;
        break;
      }
      remaining.remove_prefix(static_cast<std::size_t>(n));
    }
    if (!write_ok) {
      const bool untouched = remaining.size() == message.size();
      disconnect();
      result.error = "send failed";
      if (idempotent || untouched) continue;  // retry on a fresh connection
      return result;
    }

    const int fd = fd_;
    const ByteSource source = [fd](char* buf, std::size_t len) -> long {
      for (;;) {
        const ssize_t n = ::recv(fd, buf, len, 0);
        if (n >= 0) return static_cast<long>(n);
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) return -2;
        return -1;
      }
    };

    ParsedResponse response;
    const ReadStatus status = read_response(source, buffer_, response, {});
    if (status == ReadStatus::kClosed && attempt == 0 && idempotent) {
      disconnect();
      result.error = "connection closed before response";
      continue;
    }
    if (status != ReadStatus::kOk) {
      disconnect();
      if (result.error.empty()) result.error = "failed to read response";
      return result;
    }

    result.ok = true;
    result.error.clear();
    result.status = response.status;
    result.headers = std::move(response.headers);
    result.body = std::move(response.body);

    const std::string* connection = find_header(result.headers, "Connection");
    if (connection != nullptr && *connection == "close") disconnect();
    return result;
  }
  return result;
}

}  // namespace qre::server
