#include "server/client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <random>
#include <thread>

namespace qre::server {

namespace {

std::atomic<std::uint64_t> g_process_retries{0};

/// Uniform jitter in [backoff/2, backoff]: desynchronizes clients that
/// failed together so they do not retry together.
int jittered_ms(int backoff_ms) {
  if (backoff_ms <= 1) return backoff_ms;
  thread_local std::minstd_rand rng{std::random_device{}()};
  const int half = backoff_ms / 2;
  return half + static_cast<int>(rng() % static_cast<unsigned>(backoff_ms - half + 1));
}

/// Retry-After in whole seconds (the HTTP-date form is not supported);
/// -1 when absent or unparseable.
int retry_after_ms(const std::vector<Header>& headers) {
  const std::string* value = find_header(headers, "Retry-After");
  if (value == nullptr || value->empty() ||
      value->find_first_not_of("0123456789") != std::string::npos) {
    return -1;
  }
  if (value->size() > 4) return -1;  // > 9999 s: treat as hostile/garbage
  return std::atoi(value->c_str()) * 1000;
}

}  // namespace

std::uint64_t Client::process_retries() {
  return g_process_retries.load(std::memory_order_relaxed);
}

Client::~Client() { disconnect(); }

void Client::disconnect() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  buffer_.clear();
}

bool Client::connect_if_needed(std::string& error) {
  if (fd_ >= 0) {
    // Reused keep-alive connection: a non-blocking peek detects a FIN the
    // server already sent (idle timeout, graceful stop), so the request is
    // written to a live socket instead of discovering the close afterwards
    // — which matters for POSTs, where a blind resend could double-submit.
    char probe;
    const ssize_t n = ::recv(fd_, &probe, 1, MSG_PEEK | MSG_DONTWAIT);
    if (n == 0 || (n < 0 && errno != EAGAIN && errno != EWOULDBLOCK)) {
      disconnect();
    } else {
      return true;
    }
  }
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) {
    error = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port_);
  if (::inet_pton(AF_INET, host_.c_str(), &addr.sin_addr) != 1) {
    error = "invalid host address '" + host_ + "' (IPv4 only)";
    disconnect();
    return false;
  }
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    error = std::string("connect: ") + std::strerror(errno);
    disconnect();
    return false;
  }
  return true;
}

Client::Result Client::request(const std::string& method, const std::string& target,
                               const std::string& body,
                               const std::vector<Header>& headers) {
  // DELETE is idempotent here by the server's own contract: repeating a
  // cancel is answered consistently (cancelling/409), never doubly applied.
  const bool idempotent = method == "GET" || method == "HEAD" || method == "DELETE";
  int backoff_ms = policy_.initial_backoff_ms;
  for (int attempt = 0;; ++attempt) {
    bool transport_retriable = false;
    Result result = request_once(method, target, body, headers, idempotent, transport_retriable);

    int wait_ms = -1;
    if (!result.ok) {
      if (transport_retriable) wait_ms = jittered_ms(backoff_ms);
    } else if (idempotent &&
               (result.status == 408 || result.status == 429 || result.status == 503)) {
      const int hinted = retry_after_ms(result.headers);
      wait_ms = hinted >= 0 ? std::min(hinted, policy_.max_retry_after_ms)
                            : jittered_ms(backoff_ms);
    }
    if (wait_ms < 0 || attempt + 1 >= policy_.max_attempts) return result;

    ++retries_;
    g_process_retries.fetch_add(1, std::memory_order_relaxed);
    if (wait_ms > 0) std::this_thread::sleep_for(std::chrono::milliseconds(wait_ms));
    backoff_ms = std::min(backoff_ms * 2, policy_.max_backoff_ms);
  }
}

Client::Result Client::request_once(const std::string& method, const std::string& target,
                                    const std::string& body,
                                    const std::vector<Header>& headers, bool idempotent,
                                    bool& transport_retriable) {
  Result result;

  std::string message = method + " " + target + " HTTP/1.1\r\n";
  message += "Host: " + host_ + ":" + std::to_string(port_) + "\r\n";
  for (const Header& h : headers) message += h.name + ": " + h.value + "\r\n";
  if (!body.empty() || method == "POST" || method == "PUT") {
    message += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  }
  message += "\r\n";
  message += body;

  // One transparent retry for the keep-alive race the pre-send peek cannot
  // fully close (the server finishes our connection between peek and send).
  // Non-idempotent methods only retry when NO request byte reached the
  // wire — a consumed-but-unanswered POST must not be blindly resent (it
  // could, e.g., double-submit an async job).
  for (int attempt = 0; attempt < 2; ++attempt) {
    if (!connect_if_needed(result.error)) {
      // Nothing reached the wire, so even a POST may retry — except on a
      // malformed address, which no amount of retrying fixes.
      transport_retriable = result.error.rfind("invalid host", 0) != 0;
      return result;
    }

    bool write_ok = true;
    std::string_view remaining = message;
    while (!remaining.empty()) {
      const ssize_t n = ::send(fd_, remaining.data(), remaining.size(), MSG_NOSIGNAL);
      if (n <= 0) {
        if (n < 0 && errno == EINTR) continue;
        write_ok = false;
        break;
      }
      remaining.remove_prefix(static_cast<std::size_t>(n));
    }
    if (!write_ok) {
      const bool untouched = remaining.size() == message.size();
      disconnect();
      result.error = "send failed";
      transport_retriable = idempotent || untouched;
      if (transport_retriable) continue;  // retry on a fresh connection
      return result;
    }

    const int fd = fd_;
    const ByteSource source = [fd](char* buf, std::size_t len) -> long {
      for (;;) {
        const ssize_t n = ::recv(fd, buf, len, 0);
        if (n >= 0) return static_cast<long>(n);
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) return -2;
        return -1;
      }
    };

    ParsedResponse response;
    const ReadStatus status = read_response(source, buffer_, response, {});
    if (status == ReadStatus::kClosed && attempt == 0 && idempotent) {
      disconnect();
      result.error = "connection closed before response";
      continue;
    }
    if (status != ReadStatus::kOk) {
      disconnect();
      if (result.error.empty()) result.error = "failed to read response";
      // The request reached the wire but no response came back: safe to
      // retry only when re-execution is harmless.
      transport_retriable = idempotent;
      return result;
    }

    result.ok = true;
    result.error.clear();
    result.status = response.status;
    result.headers = std::move(response.headers);
    result.body = std::move(response.body);

    const std::string* connection = find_header(result.headers, "Connection");
    if (connection != nullptr && *connection == "close") disconnect();
    return result;
  }
  // Both keep-alive-race attempts failed; every path that lands here was a
  // retriable transport failure.
  transport_retriable = true;
  return result;
}

}  // namespace qre::server
