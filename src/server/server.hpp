// POSIX-socket HTTP server (estimation daemon).
//
// A fixed-size acceptor/worker pool with no external dependencies: one
// acceptor thread multiplexes accept() against a self-pipe wakeup, and a
// configurable number of worker threads each own one connection at a time,
// serving keep-alive request sequences through the Router. The design goals
// are the ROADMAP's serving ones, scaled to a single process:
//
//  * shared hot state — all workers run on one Service, so the estimate
//    cache and T-factory cache warm up across requests and clients;
//  * bounded resources — fixed thread count, bounded header/body limits,
//    receive timeouts on idle keep-alive connections, bounded job backlog
//    (the queue's own limit) behind the async endpoints;
//  * graceful drain — request_stop() is async-signal-safe (the qre_serve
//    SIGINT/SIGTERM handlers call it): the listener closes first, in-flight
//    requests complete, idle connections are shut down, queued async jobs
//    flip to cancelled, and stop() joins every thread.
//
// Binding to port 0 selects an ephemeral port (port() reports it), which is
// how tests run a real loopback server without port collisions.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <string>
#include <thread>
#include <vector>

#include "common/mutex.hpp"
#include "common/thread_annotations.hpp"
#include "server/http.hpp"
#include "server/router.hpp"

namespace qre::server {

struct ServerOptions {
  /// IPv4 address to bind. Loopback by default: exposing an estimation
  /// daemon beyond localhost is a deployment decision (docs/server.md).
  std::string bind_address = "127.0.0.1";
  /// TCP port; 0 picks an ephemeral port, reported by port().
  std::uint16_t port = 0;
  /// Connection worker threads (each owns one connection at a time).
  std::size_t num_workers = 4;
  /// recv timeout on an open connection; bounds how long an idle keep-alive
  /// socket can pin a worker.
  int receive_timeout_seconds = 30;
  /// send timeout (SO_SNDTIMEO); bounds how long a slow or stalled reader
  /// can wedge a worker mid-response. A timed-out write closes the
  /// connection. 0 disables.
  int send_timeout_seconds = 30;
  /// Header/body size bounds for request parsing.
  ReadLimits limits;
  /// Optional serving-metrics sink (not owned): when set, workers drive the
  /// in-flight connection gauge, and requests rejected before router
  /// dispatch (malformed framing → 400, oversized → 413) are counted under
  /// the "(malformed)" / "(too-large)" route labels. qre_serve wires the
  /// Service's instance so GET /metrics sees the transport.
  Metrics* metrics = nullptr;
  /// Optional access log (not owned): when set, pre-router rejects are
  /// logged too — the router logs everything that reaches dispatch.
  AccessLog* access_log = nullptr;
};

class Server {
 public:
  Server(Router& router, ServerOptions options = {});
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens, and spawns the acceptor + workers. Throws qre::Error
  /// when the socket cannot be set up (address in use, bad address, ...).
  void start();

  /// The bound port (after start()); resolves port 0 to the real one.
  std::uint16_t port() const { return port_; }

  /// Requests a graceful shutdown. Async-signal-safe: an atomic store plus
  /// a self-pipe write, nothing else — safe to call from SIGINT/SIGTERM
  /// handlers, from any thread, and more than once.
  void request_stop();

  /// Blocks until a shutdown was requested and the acceptor wound down.
  /// Does not join the workers; call stop() after.
  void wait();

  /// Full graceful shutdown: request_stop(), join the acceptor, complete
  /// in-flight requests, shut down idle connections, join the workers.
  /// Idempotent; the destructor calls it as a backstop.
  void stop();

 private:
  void acceptor_loop();
  void worker_loop(std::size_t slot);
  void serve_connection(int fd);

  Router& router_;
  ServerOptions options_;

  int listen_fd_ = -1;
  int wake_read_fd_ = -1;
  int wake_write_fd_ = -1;
  std::uint16_t port_ = 0;
  bool started_ = false;

  std::atomic<bool> stop_requested_{false};

  Mutex mutex_;
  CondVar connections_available_;
  CondVar acceptor_done_cv_;
  std::deque<int> pending_connections_ QRE_GUARDED_BY(mutex_);
  bool acceptor_done_ QRE_GUARDED_BY(mutex_) = false;
  // per worker slot; -1 when idle
  std::vector<int> active_fds_ QRE_GUARDED_BY(mutex_);

  std::thread acceptor_;
  std::vector<std::thread> workers_;
};

}  // namespace qre::server
