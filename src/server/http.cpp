#include "server/http.hpp"

#include <algorithm>
#include <cctype>
#include <cstdint>
#include <cstdio>

namespace qre::server {

namespace {

bool iequals(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) s.remove_prefix(1);
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) s.remove_suffix(1);
  return s;
}

/// Grows `buffer` until it holds at least `want` bytes (or the source
/// drains). Returns kOk, kClosed (EOF before `want`), kTimeout, or
/// kBadRequest (hard read error).
ReadStatus fill_until(const ByteSource& src, std::string& buffer, std::size_t want) {
  char chunk[8192];
  while (buffer.size() < want) {
    const long n = src(chunk, sizeof chunk);
    if (n == 0) return ReadStatus::kClosed;
    if (n == -2) return ReadStatus::kTimeout;
    if (n < 0) return ReadStatus::kBadRequest;
    buffer.append(chunk, static_cast<std::size_t>(n));
  }
  return ReadStatus::kOk;
}

/// Grows `buffer` until `delim` appears (search starts from 0; the buffer
/// is small at this point). Caps the scan at `limit` bytes.
ReadStatus fill_until_delim(const ByteSource& src, std::string& buffer,
                            std::string_view delim, std::size_t limit,
                            std::size_t* pos_out) {
  char chunk[8192];
  for (;;) {
    const std::size_t pos = buffer.find(delim);
    if (pos != std::string::npos) {
      *pos_out = pos;
      return ReadStatus::kOk;
    }
    if (buffer.size() > limit) return ReadStatus::kTooLarge;
    const long n = src(chunk, sizeof chunk);
    if (n == 0) return ReadStatus::kClosed;
    if (n == -2) return ReadStatus::kTimeout;
    if (n < 0) return ReadStatus::kBadRequest;
    buffer.append(chunk, static_cast<std::size_t>(n));
  }
}

/// Splits a header block (between start line and blank line) into Headers.
bool parse_headers(std::string_view block, std::vector<Header>& out) {
  while (!block.empty()) {
    std::size_t eol = block.find('\n');
    std::string_view line = block.substr(0, eol == std::string_view::npos ? block.size() : eol);
    block.remove_prefix(eol == std::string_view::npos ? block.size() : eol + 1);
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    if (line.empty()) continue;
    const std::size_t colon = line.find(':');
    if (colon == std::string_view::npos || colon == 0) return false;
    out.push_back({std::string(trim(line.substr(0, colon))),
                   std::string(trim(line.substr(colon + 1)))});
  }
  return true;
}

bool parse_content_length(std::string_view text, std::size_t& out) {
  if (text.empty()) return false;
  std::size_t value = 0;
  for (char c : text) {
    if (c < '0' || c > '9') return false;
    if (value > (SIZE_MAX - 9) / 10) return false;
    value = value * 10 + static_cast<std::size_t>(c - '0');
  }
  out = value;
  return true;
}

bool is_chunked(const std::vector<Header>& headers) {
  const std::string* te = find_header(headers, "Transfer-Encoding");
  if (te == nullptr) return false;
  // The only coding we produce or accept is "chunked" (possibly last in a
  // list); a case-insensitive substring check covers both.
  std::string lower;
  lower.reserve(te->size());
  for (char c : *te) lower.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  return lower.find("chunked") != std::string::npos;
}

/// Consumes a chunked body from buffer+src into `body`. The buffer is left
/// holding any bytes after the terminating trailer (keep-alive pipelining).
ReadStatus read_chunked_body(const ByteSource& src, std::string& buffer, std::string& body,
                             const ReadLimits& limits) {
  for (;;) {
    std::size_t eol = 0;
    ReadStatus status = fill_until_delim(src, buffer, "\n", limits.max_header_bytes, &eol);
    if (status != ReadStatus::kOk) {
      return status == ReadStatus::kClosed ? ReadStatus::kBadRequest : status;
    }
    std::string_view size_line(buffer.data(), eol);
    if (!size_line.empty() && size_line.back() == '\r') size_line.remove_suffix(1);
    // Chunk extensions (";...") are legal; ignore them.
    if (const std::size_t semi = size_line.find(';'); semi != std::string_view::npos) {
      size_line = size_line.substr(0, semi);
    }
    size_line = trim(size_line);
    if (size_line.empty()) return ReadStatus::kBadRequest;
    std::size_t chunk_size = 0;
    for (char c : size_line) {
      int digit;
      if (c >= '0' && c <= '9') digit = c - '0';
      else if (c >= 'a' && c <= 'f') digit = c - 'a' + 10;
      else if (c >= 'A' && c <= 'F') digit = c - 'A' + 10;
      else return ReadStatus::kBadRequest;
      if (chunk_size > (SIZE_MAX >> 4)) return ReadStatus::kBadRequest;
      chunk_size = (chunk_size << 4) | static_cast<std::size_t>(digit);
    }
    buffer.erase(0, eol + 1);

    if (chunk_size == 0) {
      // Trailer section: lines until a blank one.
      for (;;) {
        std::size_t teol = 0;
        status = fill_until_delim(src, buffer, "\n", limits.max_header_bytes, &teol);
        if (status != ReadStatus::kOk) {
          return status == ReadStatus::kClosed ? ReadStatus::kBadRequest : status;
        }
        std::string_view line(buffer.data(), teol);
        if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
        buffer.erase(0, teol + 1);
        if (line.empty()) return ReadStatus::kOk;
      }
    }

    if (body.size() + chunk_size > limits.max_body_bytes) return ReadStatus::kTooLarge;
    status = fill_until(src, buffer, chunk_size + 1);  // data + at least the LF
    if (status != ReadStatus::kOk) {
      return status == ReadStatus::kClosed ? ReadStatus::kBadRequest : status;
    }
    body.append(buffer, 0, chunk_size);
    buffer.erase(0, chunk_size);
    // Consume the CRLF (or LF) that closes the chunk.
    if (buffer[0] == '\r') {
      if (fill_until(src, buffer, 2) != ReadStatus::kOk) return ReadStatus::kBadRequest;
      if (buffer[1] != '\n') return ReadStatus::kBadRequest;
      buffer.erase(0, 2);
    } else if (buffer[0] == '\n') {
      buffer.erase(0, 1);
    } else {
      return ReadStatus::kBadRequest;
    }
  }
}

/// Shared header-block + body framing for requests and responses.
/// `start_line` receives the first line (CR stripped); `headers`/`body` are
/// filled in. `allow_eof_body` enables close-delimited bodies (responses).
ReadStatus read_message(const ByteSource& src, std::string& buffer, const ReadLimits& limits,
                        bool allow_eof_body, std::string& start_line,
                        std::vector<Header>& headers, std::string& body) {
  // Locate the end of the header block: CRLFCRLF, tolerating bare LFs.
  std::size_t header_end = 0;
  std::size_t body_start = 0;
  {
    char chunk[8192];
    for (;;) {
      std::size_t pos = buffer.find("\r\n\r\n");
      std::size_t alt = buffer.find("\n\n");
      if (pos != std::string::npos && (alt == std::string::npos || pos < alt)) {
        header_end = pos;
        body_start = pos + 4;
        break;
      }
      if (alt != std::string::npos) {
        header_end = alt;
        body_start = alt + 2;
        break;
      }
      if (buffer.size() > limits.max_header_bytes) return ReadStatus::kTooLarge;
      const long n = src(chunk, sizeof chunk);
      if (n == 0) return buffer.empty() ? ReadStatus::kClosed : ReadStatus::kBadRequest;
      if (n == -2) return ReadStatus::kTimeout;
      if (n < 0) return ReadStatus::kBadRequest;
      buffer.append(chunk, static_cast<std::size_t>(n));
    }
  }

  std::string_view head(buffer.data(), header_end);
  const std::size_t first_eol = head.find('\n');
  std::string_view first =
      head.substr(0, first_eol == std::string_view::npos ? head.size() : first_eol);
  if (!first.empty() && first.back() == '\r') first.remove_suffix(1);
  start_line.assign(first);
  std::string_view header_block =
      first_eol == std::string_view::npos ? std::string_view() : head.substr(first_eol + 1);
  if (!parse_headers(header_block, headers)) return ReadStatus::kBadRequest;
  buffer.erase(0, body_start);

  if (is_chunked(headers)) {
    return read_chunked_body(src, buffer, body, limits);
  }
  if (const std::string* length = find_header(headers, "Content-Length")) {
    std::size_t n = 0;
    if (!parse_content_length(*length, n)) return ReadStatus::kBadRequest;
    if (n > limits.max_body_bytes) return ReadStatus::kTooLarge;
    const ReadStatus status = fill_until(src, buffer, n);
    if (status != ReadStatus::kOk) {
      return status == ReadStatus::kClosed ? ReadStatus::kBadRequest : status;
    }
    body.assign(buffer, 0, n);
    buffer.erase(0, n);
    return ReadStatus::kOk;
  }
  if (allow_eof_body) {
    // Close-delimited body: drain to EOF.
    char chunk[8192];
    for (;;) {
      if (buffer.size() > limits.max_body_bytes) return ReadStatus::kTooLarge;
      const long n = src(chunk, sizeof chunk);
      if (n == 0) break;
      if (n == -2) return ReadStatus::kTimeout;
      if (n < 0) return ReadStatus::kBadRequest;
      buffer.append(chunk, static_cast<std::size_t>(n));
    }
    body = std::move(buffer);
    buffer.clear();
  }
  return ReadStatus::kOk;
}

}  // namespace

const std::string* find_header(const std::vector<Header>& headers, std::string_view name) {
  for (const Header& h : headers) {
    if (iequals(h.name, name)) return &h.value;
  }
  return nullptr;
}

std::string Request::path() const {
  const std::size_t q = target.find('?');
  return q == std::string::npos ? target : target.substr(0, q);
}

std::string Request::query() const {
  const std::size_t q = target.find('?');
  return q == std::string::npos ? std::string() : target.substr(q + 1);
}

bool Request::keep_alive() const {
  if (const std::string* connection = header("Connection")) {
    if (iequals(*connection, "close")) return false;
    if (iequals(*connection, "keep-alive")) return true;
  }
  return version == "HTTP/1.1";  // HTTP/1.0 defaults to close
}

bool Request::accepts(std::string_view mime) const {
  const std::string* accept = header("Accept");
  return accept != nullptr && accept->find(mime) != std::string::npos;
}

ReadStatus read_request(const ByteSource& src, std::string& buffer, Request& out,
                        const ReadLimits& limits) {
  std::string start_line;
  const ReadStatus status =
      read_message(src, buffer, limits, /*allow_eof_body=*/false, start_line, out.headers,
                   out.body);
  if (status != ReadStatus::kOk) return status;

  // "METHOD SP target SP HTTP/x.y"
  const std::size_t sp1 = start_line.find(' ');
  const std::size_t sp2 = start_line.rfind(' ');
  if (sp1 == std::string::npos || sp2 == sp1) return ReadStatus::kBadRequest;
  out.method = start_line.substr(0, sp1);
  out.target = start_line.substr(sp1 + 1, sp2 - sp1 - 1);
  out.version = start_line.substr(sp2 + 1);
  if (out.method.empty() || out.target.empty() || out.version.rfind("HTTP/", 0) != 0) {
    return ReadStatus::kBadRequest;
  }
  return ReadStatus::kOk;
}

ReadStatus read_response(const ByteSource& src, std::string& buffer, ParsedResponse& out,
                         const ReadLimits& limits) {
  std::string start_line;
  const ReadStatus status =
      read_message(src, buffer, limits, /*allow_eof_body=*/true, start_line, out.headers,
                   out.body);
  if (status != ReadStatus::kOk) return status;

  // "HTTP/x.y SP status SP reason"
  const std::size_t sp1 = start_line.find(' ');
  if (sp1 == std::string::npos || start_line.rfind("HTTP/", 0) != 0) {
    return ReadStatus::kBadRequest;
  }
  const std::size_t sp2 = start_line.find(' ', sp1 + 1);
  const std::string code = start_line.substr(
      sp1 + 1, sp2 == std::string::npos ? std::string::npos : sp2 - sp1 - 1);
  if (code.size() != 3 || !std::isdigit(static_cast<unsigned char>(code[0]))) {
    return ReadStatus::kBadRequest;
  }
  out.status = (code[0] - '0') * 100 + (code[1] - '0') * 10 + (code[2] - '0');
  out.reason = sp2 == std::string::npos ? std::string() : start_line.substr(sp2 + 1);
  return ReadStatus::kOk;
}

std::string_view status_text(int status) {
  switch (status) {
    case 200: return "OK";
    case 202: return "Accepted";
    case 204: return "No Content";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 409: return "Conflict";
    case 413: return "Payload Too Large";
    case 422: return "Unprocessable Entity";
    case 429: return "Too Many Requests";
    case 431: return "Request Header Fields Too Large";
    case 500: return "Internal Server Error";
    case 503: return "Service Unavailable";
    default: return status >= 200 && status < 300 ? "OK" : "Error";
  }
}

namespace {

std::string head_lines(int status, const std::string& content_type, bool close,
                       const std::vector<Header>& extra) {
  std::string head = "HTTP/1.1 " + std::to_string(status) + " " +
                     std::string(status_text(status)) + "\r\n";
  head += "Content-Type: " + content_type + "\r\n";
  head += close ? "Connection: close\r\n" : "Connection: keep-alive\r\n";
  for (const Header& h : extra) head += h.name + ": " + h.value + "\r\n";
  return head;
}

}  // namespace

bool write_response(const ByteSink& sink, const Response& r, bool keep_alive) {
  const bool close = r.close || !keep_alive;
  std::string message = head_lines(r.status, r.content_type, close, r.extra_headers);
  message += "Content-Length: " + std::to_string(r.body.size()) + "\r\n\r\n";
  message += r.body;
  return sink(message);
}

bool ChunkedWriter::begin(int status, const std::string& content_type, bool keep_alive) {
  return begin(status, content_type, keep_alive, {});
}

bool ChunkedWriter::begin(int status, const std::string& content_type, bool keep_alive,
                          const std::vector<Header>& extra_headers) {
  std::string head = head_lines(status, content_type, !keep_alive, extra_headers);
  head += "Transfer-Encoding: chunked\r\n\r\n";
  begun_ = true;
  return sink_(head);
}

bool ChunkedWriter::write(std::string_view data) {
  if (data.empty()) return true;  // a zero-size chunk would terminate the body
  char size[32];
  std::snprintf(size, sizeof size, "%zx\r\n", data.size());
  std::string chunk(size);
  chunk.append(data);
  chunk += "\r\n";
  return sink_(chunk);
}

bool ChunkedWriter::end() { return sink_("0\r\n\r\n"); }

}  // namespace qre::server
