// Asynchronous estimation job queue (estimation server).
//
// POST /v2/jobs mirrors the cloud workflow of the paper: a job document is
// accepted immediately with a monotonically increasing id, executed on a
// dedicated worker pool, and polled via GET /v2/jobs/{id} until it reaches
// a terminal state. The lifecycle is
//
//     queued -> running -> succeeded | failed
//     queued -> cancelled                     (DELETE while still queued)
//     queued -> running -> cancelling -> cancelled
//                                             (DELETE while running)
//
// Cancelling a RUNNING job is cooperative: the job's CancelToken is
// flagged, the estimation engine observes it at the next item boundary,
// and the worker marks the job cancelled when the runner returns — partial
// results are discarded (cancel wins even when the runner happened to
// finish). "cancelling" is the observable in-between state.
//
// The backlog is bounded: submit() refuses new work once `max_backlog` jobs
// are queued (the HTTP layer turns that into 429 Too Many Requests), which
// is the server's load-shedding mechanism — memory stays bounded no matter
// how fast clients submit. Finished jobs are retained for polling, also up
// to a bound (`max_retained`, oldest evicted first), so a poll after
// eviction is indistinguishable from an unknown id (404).
//
// All public methods are concurrency-safe. drain() stops the workers
// gracefully: running jobs are asked to cancel (their tokens are flagged,
// so shutdown is bounded by one item, not a whole sweep), still-queued
// jobs flip to cancelled.
#pragma once

#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <optional>
#include <string_view>
#include <thread>
#include <vector>

#include "common/cancel.hpp"
#include "common/mutex.hpp"
#include "common/thread_annotations.hpp"
#include "json/json.hpp"

namespace qre::server {

enum class JobState { kQueued, kRunning, kCancelling, kSucceeded, kFailed, kCancelled };

std::string_view to_string(JobState state);

struct JobQueueOptions {
  /// Worker threads executing queued jobs. 0 is allowed and means "never
  /// run anything" — jobs stay queued forever, which the tests use to
  /// exercise cancel and backlog behavior deterministically.
  std::size_t num_workers = 1;
  /// Queued-job bound; submit() refuses beyond it (HTTP 429).
  std::size_t max_backlog = 64;
  /// Finished (succeeded/failed/cancelled) jobs retained for polling.
  std::size_t max_retained = 1024;
};

class JobQueue {
 public:
  /// Runs one job document and returns the full v2 response envelope.
  /// Invoked on queue workers; exceptions become state kFailed. The token
  /// is this job's cancellation handle — runners thread it into the engine
  /// so DELETE can interrupt running work at item boundaries.
  using Runner = std::function<json::Value(const json::Value& document, const CancelToken& cancel)>;

  JobQueue(Runner runner, JobQueueOptions options = {});
  ~JobQueue();

  JobQueue(const JobQueue&) = delete;
  JobQueue& operator=(const JobQueue&) = delete;

  /// Enqueues `document`; returns the job id, or nullopt when the backlog
  /// is full (or the queue is draining).
  std::optional<std::uint64_t> submit(json::Value document);

  /// The job's status document:
  ///   {"id": ..., "status":
  ///        "queued|running|cancelling|succeeded|failed|cancelled",
  ///    "response": {...}}            // succeeded / failed runs only
  ///   {"id": ..., "status": "failed", "error": "..."}  // runner threw
  /// nullopt = unknown (or evicted) id -> 404. Cancelled jobs carry no
  /// response: partial results are discarded.
  std::optional<json::Value> status(std::uint64_t id) const;

  enum class CancelResult { kCancelled, kCancelling, kNotFound, kNotCancellable };

  /// Cancels a job. Queued jobs cancel immediately (kCancelled); running
  /// jobs are cancelled cooperatively — the job's token is flagged, the
  /// state becomes kCancelling, and the worker finishes the transition to
  /// kCancelled at the next item boundary. Repeating the request while
  /// cancelling returns kCancelling again. Only finished jobs are
  /// kNotCancellable.
  CancelResult cancel(std::uint64_t id);

  /// {"queued": ..., "running": ..., "succeeded": ..., "failed": ...,
  ///  "cancelled": ..., "backlogLimit": ...} — lifetime counters for
  /// terminal states, instantaneous gauges for queued/running (the running
  /// gauge includes jobs in the cancelling state).
  json::Value stats_to_json() const;

  /// Graceful shutdown: stop accepting, request cancellation of running
  /// jobs (they terminate as cancelled at the next item boundary), mark the
  /// remaining queue cancelled, join the workers. Idempotent.
  void drain();

 private:
  struct Job {
    std::uint64_t id = 0;
    JobState state = JobState::kQueued;
    json::Value document;
    json::Value response;  // set in kSucceeded / kFailed (when the runner returned)
    std::string error;     // set when the runner threw
    CancelToken cancel;    // armed while running; shared with the runner
    // Lifecycle instants for the exported job.queued / job.run trace spans.
    std::chrono::steady_clock::time_point submitted_at;
    std::chrono::steady_clock::time_point started_at;
  };

  void worker_loop();
  void retire_locked(std::uint64_t id) QRE_REQUIRES(mutex_);

  Runner runner_;
  JobQueueOptions options_;

  mutable Mutex mutex_;
  CondVar work_available_;
  bool draining_ QRE_GUARDED_BY(mutex_) = false;
  std::uint64_t next_id_ QRE_GUARDED_BY(mutex_) = 1;
  std::deque<std::uint64_t> pending_ QRE_GUARDED_BY(mutex_);
  // id -> record (ordered: eviction scans old ids first)
  std::map<std::uint64_t, Job> jobs_ QRE_GUARDED_BY(mutex_);
  std::deque<std::uint64_t> finished_ QRE_GUARDED_BY(mutex_);  // retention order
  std::uint64_t num_succeeded_ QRE_GUARDED_BY(mutex_) = 0;
  std::uint64_t num_failed_ QRE_GUARDED_BY(mutex_) = 0;
  std::uint64_t num_cancelled_ QRE_GUARDED_BY(mutex_) = 0;
  std::size_t num_running_ QRE_GUARDED_BY(mutex_) = 0;
  std::vector<std::thread> workers_ QRE_GUARDED_BY(mutex_);
};

}  // namespace qre::server
