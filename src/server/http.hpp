// Dependency-free HTTP/1.1 message layer (estimation server).
//
// The paper frames the estimator as a cloud service consuming JSON job
// documents over HTTP; this module is the wire format for our serving layer.
// It is deliberately transport-agnostic: messages are read from a ByteSource
// and written to a ByteSink (plain callables), so the same parser serves the
// socket server, the in-process test client, and unit tests that replay
// captured byte streams — no mocking of file descriptors anywhere.
//
// Supported framing, both directions:
//   * request line / status line + headers (case-insensitive names),
//   * Content-Length bodies,
//   * Transfer-Encoding: chunked bodies (sizes in hex, trailers skipped),
//   * keep-alive semantics (HTTP/1.1 default, "Connection: close" honored).
//
// Limits are explicit (ReadLimits): oversized headers or bodies abort the
// read with kTooLarge so a misbehaving client cannot balloon the process.
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

namespace qre::server {

struct Header {
  std::string name;
  std::string value;
};

/// Case-insensitive lookup; returns nullptr when absent.
const std::string* find_header(const std::vector<Header>& headers, std::string_view name);

/// Pulls at most `len` bytes into `buf`. Returns the byte count, 0 on EOF,
/// -1 on a hard error, and -2 on a timeout (the socket source maps
/// EAGAIN/EWOULDBLOCK from SO_RCVTIMEO to -2).
using ByteSource = std::function<long(char* buf, std::size_t len)>;

/// Pushes bytes to the peer; false means the connection is gone.
using ByteSink = std::function<bool(std::string_view data)>;

struct ReadLimits {
  std::size_t max_header_bytes = 64 * 1024;
  std::size_t max_body_bytes = 64 * 1024 * 1024;
};

enum class ReadStatus {
  kOk,          // a complete message was parsed
  kClosed,      // peer closed cleanly before the first byte of a message
  kTimeout,     // the source timed out (idle keep-alive connection)
  kBadRequest,  // malformed framing; respond 400 and close
  kTooLarge,    // a ReadLimits bound was exceeded; respond 431/413 and close
};

struct Request {
  std::string method;   // "GET", "POST", ...
  std::string target;   // origin-form, query string included
  std::string version;  // "HTTP/1.1"
  std::vector<Header> headers;
  std::string body;

  /// Target with any "?query" suffix removed.
  std::string path() const;
  /// The text after the first '?' in the target ("" when absent).
  std::string query() const;
  const std::string* header(std::string_view name) const {
    return find_header(headers, name);
  }
  /// HTTP/1.1 defaults to keep-alive unless "Connection: close".
  bool keep_alive() const;
  /// True when the Accept header lists `mime` (substring match is enough
  /// for our two media types).
  bool accepts(std::string_view mime) const;
};

struct ParsedResponse {
  int status = 0;
  std::string reason;
  std::vector<Header> headers;
  std::string body;  // de-chunked

  const std::string* header(std::string_view name) const {
    return find_header(headers, name);
  }
};

/// Reads one request from `src`. `buffer` carries bytes left over from the
/// previous message on the same connection (keep-alive) and must persist
/// across calls.
ReadStatus read_request(const ByteSource& src, std::string& buffer, Request& out,
                        const ReadLimits& limits = {});

/// Reads one response (client side). A body with neither Content-Length nor
/// chunked framing is read until EOF, per HTTP/1.1 close-delimited framing.
ReadStatus read_response(const ByteSource& src, std::string& buffer, ParsedResponse& out,
                         const ReadLimits& limits = {});

/// The canonical reason phrase for `status` ("OK", "Not Found", ...).
std::string_view status_text(int status);

struct Response {
  int status = 200;
  std::string content_type = "application/json";
  std::string body;
  std::vector<Header> extra_headers;
  bool close = false;  // force "Connection: close" regardless of the request
};

/// Serializes `r` with Content-Length framing. `keep_alive` is the
/// request's wish; the connection closes when either side says so.
/// Returns false when the sink reports a dead connection.
bool write_response(const ByteSink& sink, const Response& r, bool keep_alive);

/// Streaming response writer (Transfer-Encoding: chunked) for NDJSON
/// bodies whose length is unknown up front. begin() is idempotent-free:
/// call once, then write() per chunk, then end().
class ChunkedWriter {
 public:
  explicit ChunkedWriter(ByteSink sink) : sink_(std::move(sink)) {}

  bool begin(int status, const std::string& content_type, bool keep_alive);
  bool begin(int status, const std::string& content_type, bool keep_alive,
             const std::vector<Header>& extra_headers);
  bool write(std::string_view data);
  bool end();
  /// Whether begin() ran (i.e. headers are already on the wire).
  bool begun() const { return begun_; }

 private:
  ByteSink sink_;
  bool begun_ = false;
};

}  // namespace qre::server
