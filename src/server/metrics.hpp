// Live serving metrics (estimation server).
//
// One Metrics instance aggregates everything GET /metrics reports about the
// HTTP layer: total and per-route request counts, response counts by status
// class, and a fixed-bucket latency histogram. The route label is the
// normalized pattern ("POST /v2/jobs", "GET /v2/jobs/{id}"), not the raw
// target, so the cardinality is bounded by the route table.
//
// Cache counters (estimate cache, T-factory cache) and job-queue state are
// deliberately NOT stored here — they live with their owners and are merged
// into the /metrics document by the router, so this module stays a plain
// request-accounting sink with no dependency on the estimation stack.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/mutex.hpp"
#include "common/thread_annotations.hpp"
#include "json/json.hpp"

namespace qre::server {

class Metrics {
 public:
  Metrics() : start_(std::chrono::steady_clock::now()) {}

  /// Upper bucket bounds of the latency histogram, in milliseconds; the
  /// implicit final bucket is +inf.
  static const std::vector<double>& latency_buckets_ms();

  /// Records one completed request.
  void record(std::string_view route, int status, double latency_ms);

  /// In-flight connection gauge, driven by the transport's worker loop
  /// (Server wires its ServerOptions::metrics to the service's instance).
  void connection_opened() { connections_in_flight_.fetch_add(1, std::memory_order_relaxed); }
  void connection_closed() { connections_in_flight_.fetch_sub(1, std::memory_order_relaxed); }
  std::int64_t connections_in_flight() const {
    return connections_in_flight_.load(std::memory_order_relaxed);
  }

  /// Resilience counters: estimate runs abandoned at the request deadline,
  /// and accepted DELETE /v2/jobs/{id} cancellations (queued or running).
  void record_deadline_exceeded() {
    deadline_exceeded_total_.fetch_add(1, std::memory_order_relaxed);
  }
  void record_cancel_request() {
    cancel_requests_total_.fetch_add(1, std::memory_order_relaxed);
  }
  std::uint64_t deadline_exceeded_total() const {
    return deadline_exceeded_total_.load(std::memory_order_relaxed);
  }
  std::uint64_t cancel_requests_total() const {
    return cancel_requests_total_.load(std::memory_order_relaxed);
  }

  std::uint64_t requests_total() const;

  /// {"requestsTotal": ..., "requestsByRoute": {...},
  ///  "responsesByStatus": {"2xx": ..., ...},
  ///  "uptimeSeconds": ..., "connectionsInFlight": ...,
  ///  "deadlineExceededTotal": ..., "cancelRequestsTotal": ...,
  ///  "latencyMs": {"bucketUpperBounds": [...], "counts": [...],
  ///                "totalMs": ..., "count": ...}}
  json::Value to_json() const;

 private:
  const std::chrono::steady_clock::time_point start_;
  std::atomic<std::int64_t> connections_in_flight_{0};
  std::atomic<std::uint64_t> deadline_exceeded_total_{0};
  std::atomic<std::uint64_t> cancel_requests_total_{0};
  mutable Mutex mutex_;
  std::uint64_t total_ QRE_GUARDED_BY(mutex_) = 0;
  double latency_total_ms_ QRE_GUARDED_BY(mutex_) = 0.0;
  // insertion order
  std::vector<std::pair<std::string, std::uint64_t>> by_route_ QRE_GUARDED_BY(mutex_);
  std::array<std::uint64_t, 5> by_status_class_ QRE_GUARDED_BY(mutex_) = {};  // 1xx..5xx
  // buckets + overflow
  std::vector<std::uint64_t> bucket_counts_ QRE_GUARDED_BY(mutex_);
};

}  // namespace qre::server
