#include "server/job_queue.hpp"

#include "common/failpoint.hpp"
#include "common/trace.hpp"

namespace qre::server {

std::string_view to_string(JobState state) {
  switch (state) {
    case JobState::kQueued: return "queued";
    case JobState::kRunning: return "running";
    case JobState::kCancelling: return "cancelling";
    case JobState::kSucceeded: return "succeeded";
    case JobState::kFailed: return "failed";
    case JobState::kCancelled: return "cancelled";
  }
  return "unknown";
}

JobQueue::JobQueue(Runner runner, JobQueueOptions options)
    : runner_(std::move(runner)), options_(options) {
  workers_.reserve(options_.num_workers);
  for (std::size_t i = 0; i < options_.num_workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

JobQueue::~JobQueue() { drain(); }

std::optional<std::uint64_t> JobQueue::submit(json::Value document) {
  std::uint64_t id = 0;
  {
    MutexLock lock(mutex_);
    if (draining_ || pending_.size() >= options_.max_backlog) return std::nullopt;
    id = next_id_++;
    Job job;
    job.id = id;
    job.submitted_at = std::chrono::steady_clock::now();
    job.document = std::move(document);
    jobs_.emplace(id, std::move(job));
    pending_.push_back(id);
  }
  work_available_.notify_one();
  return id;
}

std::optional<json::Value> JobQueue::status(std::uint64_t id) const {
  MutexLock lock(mutex_);
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) return std::nullopt;
  const Job& job = it->second;
  json::Object out;
  out.emplace_back("id", json::Value(job.id));
  out.emplace_back("status", std::string(to_string(job.state)));
  if (job.state == JobState::kSucceeded || job.state == JobState::kFailed) {
    if (!job.error.empty()) {
      out.emplace_back("error", job.error);
    } else {
      out.emplace_back("response", job.response);
    }
  }
  return json::Value(std::move(out));
}

JobQueue::CancelResult JobQueue::cancel(std::uint64_t id) {
  MutexLock lock(mutex_);
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) return CancelResult::kNotFound;
  Job& job = it->second;
  if (job.state == JobState::kQueued) {
    for (auto pending_it = pending_.begin(); pending_it != pending_.end(); ++pending_it) {
      if (*pending_it == id) {
        pending_.erase(pending_it);
        break;
      }
    }
    job.state = JobState::kCancelled;
    job.document = json::Value();  // the document is dead weight from here on
    ++num_cancelled_;
    retire_locked(id);
    return CancelResult::kCancelled;
  }
  if (job.state == JobState::kRunning || job.state == JobState::kCancelling) {
    // Cooperative: flag the token; the worker observes it at the next item
    // boundary and completes the transition to kCancelled. Idempotent.
    job.state = JobState::kCancelling;
    job.cancel.request_cancel();
    return CancelResult::kCancelling;
  }
  return CancelResult::kNotCancellable;
}

json::Value JobQueue::stats_to_json() const {
  MutexLock lock(mutex_);
  json::Object out;
  out.emplace_back("queued", json::Value(static_cast<std::uint64_t>(pending_.size())));
  out.emplace_back("running", json::Value(static_cast<std::uint64_t>(num_running_)));
  out.emplace_back("succeeded", json::Value(num_succeeded_));
  out.emplace_back("failed", json::Value(num_failed_));
  out.emplace_back("cancelled", json::Value(num_cancelled_));
  out.emplace_back("backlogLimit", json::Value(static_cast<std::uint64_t>(options_.max_backlog)));
  out.emplace_back("workers", json::Value(static_cast<std::uint64_t>(workers_.size())));
  return json::Value(std::move(out));
}

void JobQueue::drain() {
  {
    MutexLock lock(mutex_);
    if (draining_ && workers_.empty()) return;
    draining_ = true;
    // Ask running jobs to stop: their tokens are flagged, the engine bails
    // at the next item boundary, and the worker marks them cancelled —
    // shutdown waits for one item, not a whole sweep.
    for (auto& entry : jobs_) {
      Job& job = entry.second;
      if (job.state == JobState::kRunning || job.state == JobState::kCancelling) {
        job.state = JobState::kCancelling;
        job.cancel.request_cancel();
      }
    }
    // Everything still queued will never run: flip it to cancelled so
    // pollers see a terminal state instead of an eternal "queued".
    for (std::uint64_t id : pending_) {
      const auto it = jobs_.find(id);
      if (it != jobs_.end() && it->second.state == JobState::kQueued) {
        it->second.state = JobState::kCancelled;
        ++num_cancelled_;
        retire_locked(id);
      }
    }
    pending_.clear();
  }
  work_available_.notify_all();
  std::vector<std::thread> workers;
  {
    MutexLock lock(mutex_);
    workers.swap(workers_);
  }
  for (std::thread& t : workers) t.join();
}

void JobQueue::worker_loop() {
  for (;;) {
    std::uint64_t id = 0;
    json::Value document;
    CancelToken token;
    std::chrono::steady_clock::time_point submitted_at;
    std::chrono::steady_clock::time_point started_at;
    {
      MutexLock lock(mutex_);
      while (!draining_ && pending_.empty()) work_available_.wait(mutex_);
      if (pending_.empty()) return;  // draining and nothing left
      id = pending_.front();
      pending_.pop_front();
      Job& job = jobs_.at(id);
      job.state = JobState::kRunning;
      job.started_at = std::chrono::steady_clock::now();
      job.cancel = CancelToken::cancellable();
      token = job.cancel;
      document = std::move(job.document);
      job.document = json::Value();
      submitted_at = job.submitted_at;
      started_at = job.started_at;
      ++num_running_;
    }
    // The wait the job spent queued, recorded once the interval is known.
    trace::record_span("job.queued", submitted_at, started_at);

    json::Value response;
    std::string error;
    try {
      QRE_FAILPOINT("jobqueue.worker.before_run");
      response = runner_(document, token);
    } catch (const std::exception& e) {
      error = e.what();
    } catch (...) {
      error = "unknown error";
    }
    trace::record_span("job.run", started_at, std::chrono::steady_clock::now());

    {
      MutexLock lock(mutex_);
      Job& job = jobs_.at(id);
      --num_running_;
      if (token.cancel_requested()) {
        // Cancel wins even when the runner happened to finish: the client
        // was told "cancelling", so the terminal state is cancelled and
        // partial results are discarded.
        job.state = JobState::kCancelled;
        job.error.clear();
        ++num_cancelled_;
      } else if (!error.empty()) {
        job.state = JobState::kFailed;
        job.error = std::move(error);
        ++num_failed_;
      } else {
        // The runner returns the v2 envelope; "success": false (an invalid
        // or infeasible document) is a failed job with a full diagnostic
        // payload, not a transport error.
        const json::Value* success = response.find("success");
        const bool ok = success != nullptr && success->is_bool() && success->as_bool();
        job.state = ok ? JobState::kSucceeded : JobState::kFailed;
        job.response = std::move(response);
        ok ? ++num_succeeded_ : ++num_failed_;
      }
      job.cancel = CancelToken();  // drop the shared flag
      retire_locked(id);
    }
  }
}

void JobQueue::retire_locked(std::uint64_t id) {
  finished_.push_back(id);
  while (finished_.size() > options_.max_retained) {
    jobs_.erase(finished_.front());
    finished_.pop_front();
  }
}

}  // namespace qre::server
