#include "server/metrics.hpp"

namespace qre::server {

const std::vector<double>& Metrics::latency_buckets_ms() {
  static const std::vector<double> buckets = {0.5,  1,    2.5,  5,    10,   25,  50,
                                              100,  250,  500,  1000, 2500, 5000, 10000};
  return buckets;
}

void Metrics::record(std::string_view route, int status, double latency_ms) {
  const std::vector<double>& buckets = latency_buckets_ms();
  MutexLock lock(mutex_);
  if (bucket_counts_.empty()) bucket_counts_.assign(buckets.size() + 1, 0);
  ++total_;
  latency_total_ms_ += latency_ms;

  bool found = false;
  for (auto& [name, count] : by_route_) {
    if (name == route) {
      ++count;
      found = true;
      break;
    }
  }
  if (!found) by_route_.emplace_back(std::string(route), 1);

  const int status_class = status / 100;
  if (status_class >= 1 && status_class <= 5) ++by_status_class_[status_class - 1];

  std::size_t bucket = buckets.size();  // overflow bucket
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    if (latency_ms <= buckets[i]) {
      bucket = i;
      break;
    }
  }
  ++bucket_counts_[bucket];
}

std::uint64_t Metrics::requests_total() const {
  MutexLock lock(mutex_);
  return total_;
}

json::Value Metrics::to_json() const {
  const std::vector<double>& buckets = latency_buckets_ms();
  MutexLock lock(mutex_);

  json::Object out;
  out.emplace_back("requestsTotal", json::Value(total_));
  out.emplace_back("uptimeSeconds",
                   json::Value(std::chrono::duration<double>(
                                   std::chrono::steady_clock::now() - start_)
                                   .count()));
  out.emplace_back("connectionsInFlight", json::Value(connections_in_flight()));
  out.emplace_back("deadlineExceededTotal", json::Value(deadline_exceeded_total()));
  out.emplace_back("cancelRequestsTotal", json::Value(cancel_requests_total()));

  json::Object by_route;
  for (const auto& [name, count] : by_route_) by_route.emplace_back(name, json::Value(count));
  out.emplace_back("requestsByRoute", json::Value(std::move(by_route)));

  json::Object by_status;
  static const char* kClasses[] = {"1xx", "2xx", "3xx", "4xx", "5xx"};
  for (std::size_t i = 0; i < by_status_class_.size(); ++i) {
    by_status.emplace_back(kClasses[i], json::Value(by_status_class_[i]));
  }
  out.emplace_back("responsesByStatus", json::Value(std::move(by_status)));

  json::Object latency;
  json::Array bounds;
  for (double b : buckets) bounds.push_back(json::Value(b));
  latency.emplace_back("bucketUpperBoundsMs", json::Value(std::move(bounds)));
  json::Array counts;
  if (bucket_counts_.empty()) {
    for (std::size_t i = 0; i < buckets.size() + 1; ++i) counts.push_back(json::Value(std::uint64_t{0}));
  } else {
    for (std::uint64_t c : bucket_counts_) counts.push_back(json::Value(c));
  }
  latency.emplace_back("counts", json::Value(std::move(counts)));
  latency.emplace_back("totalMs", json::Value(latency_total_ms_));
  latency.emplace_back("count", json::Value(total_));
  out.emplace_back("latencyMs", json::Value(std::move(latency)));

  return json::Value(std::move(out));
}

}  // namespace qre::server
