#include "server/router.hpp"

#include <chrono>
#include <cstdint>
#include <cstdio>

#include "api/api.hpp"
#include "api/schema.hpp"
#include "common/error.hpp"
#include "common/failpoint.hpp"
#include "common/trace.hpp"
#include "common/version.hpp"
#include "server/client.hpp"
#include "server/prometheus.hpp"
#include "tfactory/factory_cache.hpp"

namespace qre::server {

namespace {

/// Router-level error envelope. The request id rides along so a client
/// holding only the error body can still quote the correlation id.
json::Value error_document(const char* code, const std::string& message,
                           const std::string& request_id) {
  json::Object error;
  error.emplace_back("code", std::string(code));
  error.emplace_back("message", message);
  json::Object out;
  out.emplace_back("error", json::Value(std::move(error)));
  if (!request_id.empty()) out.emplace_back("requestId", request_id);
  return json::Value(std::move(out));
}

Response json_response(int status, const json::Value& body) {
  Response r;
  r.status = status;
  r.body = body.dump() + "\n";
  return r;
}

Response error_response(int status, const char* code, const std::string& message,
                        const std::string& request_id) {
  return json_response(status, error_document(code, message, request_id));
}

/// Parses "/v2/jobs/{id}"; false when the suffix is not a plain integer.
bool parse_job_id(const std::string& path, std::uint64_t& id) {
  const std::string_view prefix = "/v2/jobs/";
  std::string_view digits(path);
  digits.remove_prefix(prefix.size());
  if (digits.empty() || digits.size() > 19) return false;
  id = 0;
  for (char c : digits) {
    if (c < '0' || c > '9') return false;
    id = id * 10 + static_cast<std::uint64_t>(c - '0');
  }
  return true;
}

json::Value factory_cache_stats() {
  const FactoryCache& cache = FactoryCache::global();
  json::Value stats = service::cache_counters_to_json(
      cache.hits(), cache.misses(), cache.evictions(), cache.size(), cache.capacity());
  stats.as_object().emplace_back("enabled", json::Value(cache.enabled()));
  return stats;
}

/// Metrics route labels must have bounded cardinality: the method part is
/// client-supplied, so anything outside the standard set collapses to one
/// label instead of growing the per-route table per distinct string.
std::string method_label(const std::string& method) {
  static const char* kKnown[] = {"GET", "HEAD", "POST", "PUT", "DELETE", "OPTIONS", "PATCH"};
  for (const char* known : kKnown) {
    if (method == known) return method;
  }
  return "OTHER";
}

}  // namespace

Service::Service(api::Registry& registry, ServiceOptions options)
    : registry_(registry),
      request_deadline_s_(options.request_deadline_s),
      engine_(options.engine),
      jobs_([this](const json::Value& document,
                   const CancelToken& cancel) { return run_document(document, cancel); },
            options.jobs) {
  if (!options.access_log_path.empty()) {
    access_log_ = std::make_unique<AccessLog>(options.access_log_path);
    if (!access_log_->ok()) {
      std::fprintf(stderr, "access-log: cannot open %s — logging disabled\n",
                   options.access_log_path.c_str());
      access_log_.reset();
    }
  }
  if (options.cache_dir.empty()) return;

  // Prewarm: a usable store file fills the read-through tier, an unusable
  // one is a logged cold start — never a failed construction.
  store_ = std::make_unique<store::EstimateStore>(options.cache_dir);
  const store::LoadResult loaded = store_->load();
  if (loaded.usable) {
    std::fprintf(stderr, "store: prewarmed %zu record(s) from %s (%zu corrupt skipped)\n",
                 loaded.records_loaded, store_->path().c_str(), loaded.records_skipped);
  } else if (loaded.file_found) {
    std::fprintf(stderr, "store: %s — starting cold\n", loaded.message.c_str());
  } else {
    std::fprintf(stderr, "store: no store file at %s yet — starting cold\n",
                 store_->path().c_str());
  }
  engine_.set_store(store_.get());

  if (options.persist_interval_s > 0) {
    const auto interval = std::chrono::duration<double>(options.persist_interval_s);
    persist_thread_ = std::thread([this, interval] { persist_thread_loop(interval); });
  }
}

void Service::persist_thread_loop(std::chrono::duration<double> interval) {
  for (;;) {
    {
      MutexLock lock(persist_thread_mutex_);
      while (!stop_persist_thread_) {
        if (persist_thread_cv_.wait_for(persist_thread_mutex_, interval) ==
            std::cv_status::timeout) {
          break;  // interval elapsed: persist below, outside the lock
        }
        // Woken early: either the destructor set the stop flag (checked by
        // the loop condition) or a spurious wakeup (wait again).
      }
      if (stop_persist_thread_) return;
    }
    persist_store();
  }
}

Service::~Service() {
  if (persist_thread_.joinable()) {
    {
      MutexLock lock(persist_thread_mutex_);
      stop_persist_thread_ = true;
    }
    persist_thread_cv_.notify_all();
    persist_thread_.join();
  }
  persist_store();  // final snapshot; persist() itself never throws
}

void Service::persist_store() {
  if (store_ != nullptr) store_->persist();
}

json::Value Service::run_document(const json::Value& document, const CancelToken& cancel) {
  api::EstimateRequest request = api::EstimateRequest::parse(document, registry_);
  service::EngineOptions options = engine_.options();
  options.cancel = cancel;
  api::EstimateResponse response = api::run(request, options, registry_);
  return response.to_json();
}

bool Router::handle(const Request& request, const ByteSink& sink) {
  QRE_TRACE_SPAN("server.request");
  const auto start = std::chrono::steady_clock::now();
  RequestContext ctx;
  ctx.id = request_id_for(request);
  ctx.route_label = method_label(request.method) + " (error)";
  // Count every byte that actually reaches the sink (headers + body +
  // chunk framing) for the access log's bytesOut.
  std::uint64_t bytes_out = 0;
  const ByteSink counting_sink = [&](std::string_view data) {
    bytes_out += data.size();
    return sink(data);
  };
  bool alive;
  try {
    alive = dispatch(request, counting_sink, ctx);
  } catch (const std::exception& e) {
    // Handlers map expected failures themselves; anything arriving here is
    // a server bug, reported as 500 without killing the worker.
    ctx.status = 500;
    alive = write_response(counting_sink,
                           error_response(500, "internal-error", e.what(), ctx.id),
                           request.keep_alive()) &&
            request.keep_alive();
  }
  const double latency_ms =
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - start)
          .count();
  service_.metrics().record(ctx.route_label, ctx.status, latency_ms);
  if (AccessLog* log = service_.access_log()) {
    AccessEntry entry;
    entry.id = ctx.id;
    entry.method = request.method;
    entry.path = request.path();
    entry.route = ctx.route_label;
    entry.status = ctx.status;
    entry.latency_ms = latency_ms;
    entry.bytes_in = request.body.size();
    entry.bytes_out = bytes_out;
    entry.deadline = ctx.deadline;
    entry.cancelled = ctx.cancelled;
    entry.failpoints_armed = failpoint::active_count();
    log->record(entry);
  }
  return alive;
}

bool Router::dispatch(const Request& request, const ByteSink& sink, RequestContext& ctx) {
  const std::string path = request.path();
  const bool keep_alive = request.keep_alive();

  auto send = [&](Response r) {
    ctx.status = r.status;
    r.extra_headers.push_back({"X-Request-Id", ctx.id});
    return write_response(sink, r, keep_alive) && keep_alive;
  };
  auto method_not_allowed = [&](const char* allow) {
    Response r = error_response(405, "method-not-allowed",
                                "method " + request.method + " is not supported here",
                                ctx.id);
    r.extra_headers.push_back({"Allow", allow});
    return send(std::move(r));
  };

  // ------------------------------------------------------------- probes --
  if (path == "/healthz") {
    ctx.route_label = method_label(request.method) + " /healthz";
    if (request.method != "GET") return method_not_allowed("GET");
    json::Object body;
    body.emplace_back("status", "ok");
    return send(json_response(200, json::Value(std::move(body))));
  }
  if (path == "/version") {
    ctx.route_label = method_label(request.method) + " /version";
    if (request.method != "GET") return method_not_allowed("GET");
    json::Object body;
    body.emplace_back("version", std::string(version_string()));
    body.emplace_back("schemaVersion", api::kSchemaVersion);
    return send(json_response(200, json::Value(std::move(body))));
  }
  if (path == "/metrics") {
    ctx.route_label = method_label(request.method) + " /metrics";
    if (request.method != "GET") return method_not_allowed("GET");
    const bool prometheus =
        request.query().find("format=prometheus") != std::string::npos;
    json::Object body;
    body.emplace_back("server", service_.metrics().to_json());
    // Engine stats arrive as {"estimateCache": {...}}; splice its entries
    // so the document reads flat: estimateCache / factoryCache / jobs.
    json::Value engine_stats = service_.engine().stats_to_json();
    for (auto& [key, value] : engine_stats.as_object()) {
      body.emplace_back(key, std::move(value));
    }
    body.emplace_back("factoryCache", factory_cache_stats());
    if (service_.store() != nullptr) {
      body.emplace_back("store", service_.store()->stats_to_json());
    } else {
      json::Object disabled;
      disabled.emplace_back("enabled", json::Value(false));
      body.emplace_back("store", json::Value(std::move(disabled)));
    }
    body.emplace_back("jobs", service_.jobs().stats_to_json());
    // Resilience observability: retries performed by in-process clients
    // (loopback health checks, tests) and the fault-injection registry.
    json::Object client_stats;
    client_stats.emplace_back("retriesTotal", json::Value(Client::process_retries()));
    body.emplace_back("client", json::Value(std::move(client_stats)));
    body.emplace_back("failpoints", failpoint::stats_to_json());
    body.emplace_back("trace", trace::stats_to_json());
    if (prometheus) {
      // Same document, text exposition: see src/server/prometheus.cpp for
      // the field → family mapping.
      Response r;
      r.status = 200;
      r.content_type = kPrometheusContentType;
      r.body = to_prometheus_text(json::Value(std::move(body)));
      return send(std::move(r));
    }
    return send(json_response(200, json::Value(std::move(body))));
  }
  if (path == "/v2/trace") {
    ctx.route_label = method_label(request.method) + " /v2/trace";
    if (request.method != "GET") return method_not_allowed("GET");
    if (!trace::enabled()) {
      return send(error_response(
          409, "tracing-disabled",
          "tracing is off; start qre_serve with --trace or --trace-file", ctx.id));
    }
    // Chrome Trace Event JSON array — loads directly in Perfetto /
    // chrome://tracing. The export flushes this thread's buffer, so the
    // request's own spans up to this point are included.
    Response r;
    r.status = 200;
    r.body = trace::to_chrome_json();
    return send(std::move(r));
  }

  // ----------------------------------------------------------- registry --
  if (path == "/v2/profiles") {
    ctx.route_label = method_label(request.method) + " /v2/profiles";
    if (request.method != "GET") return method_not_allowed("GET");
    return send(json_response(200, service_.registry().to_json()));
  }

  // ----------------------------------------------------------- validate --
  if (path == "/v2/validate") {
    ctx.route_label = method_label(request.method) + " /v2/validate";
    if (request.method != "POST") return method_not_allowed("POST");
    json::Value document;
    try {
      document = json::parse(request.body);
    } catch (const Error& e) {
      return send(error_response(400, "invalid-json", e.what(), ctx.id));
    }
    api::EstimateRequest parsed = api::EstimateRequest::parse(document, service_.registry());
    if (parsed.ok()) {
      // Same deep pass as qre_cli --validate: surface per-item problems the
      // batch runner would otherwise defer to run time.
      api::validate_batch_items(parsed.document, service_.registry(), parsed.diagnostics);
    }
    json::Object body;
    body.emplace_back("schemaVersion", api::kSchemaVersion);
    body.emplace_back("valid", !parsed.diagnostics.has_errors());
    body.emplace_back("errors",
                      json::Value(static_cast<std::uint64_t>(parsed.diagnostics.num_errors())));
    body.emplace_back("warnings",
                      json::Value(static_cast<std::uint64_t>(parsed.diagnostics.size() -
                                                             parsed.diagnostics.num_errors())));
    body.emplace_back("diagnostics", parsed.diagnostics.to_json());
    return send(json_response(parsed.diagnostics.has_errors() ? 422 : 200,
                              json::Value(std::move(body))));
  }

  // ----------------------------------------------------------- estimate --
  if (path == "/v2/estimate") {
    ctx.route_label = method_label(request.method) + " /v2/estimate";
    if (request.method != "POST") return method_not_allowed("POST");
    json::Value document;
    try {
      document = json::parse(request.body);
    } catch (const Error& e) {
      return send(error_response(400, "invalid-json", e.what(), ctx.id));
    }
    api::EstimateRequest parsed = api::EstimateRequest::parse(document, service_.registry());
    const bool is_streamable = parsed.document.find("items") != nullptr ||
                               parsed.document.find("sweep") != nullptr ||
                               parsed.document.find("frontier") != nullptr;

    // The per-request deadline (qre_serve --request-deadline): once it
    // elapses, the engine stops at the next item boundary. Sweeps degrade
    // to per-item "cancelled" entries; single/frontier runs answer 408.
    CancelToken cancel;
    if (service_.request_deadline_s() > 0) {
      cancel = cancel.with_deadline(service_.request_deadline_s());
    }
    auto deadline_status = [&](const api::EstimateResponse& response, int fallback) {
      for (const Diagnostic& d : response.diagnostics.entries()) {
        if (d.code == "deadline-exceeded") {
          service_.metrics().record_deadline_exceeded();
          ctx.deadline = true;
          return 408;
        }
      }
      return fallback;
    };

    if (parsed.ok() && is_streamable && request.accepts("application/x-ndjson")) {
      // Streaming: one NDJSON line per item (or frontier probe), strictly
      // in item order, then a final batchStats/frontierStats line. Headers
      // go out lazily with the first item so a pre-run failure still gets a
      // proper JSON error response.
      ChunkedWriter chunked(sink);
      bool sink_ok = true;
      service::EngineOptions options = service_.engine().options(
          [&](std::size_t index, const json::Value& result) {
            if (!chunked.begun()) {
              sink_ok = chunked.begin(200, "application/x-ndjson", keep_alive,
                                      {{"X-Request-Id", ctx.id}}) &&
                        sink_ok;
            }
            json::Object line;
            line.emplace_back("item", json::Value(static_cast<std::uint64_t>(index)));
            line.emplace_back("result", result);
            sink_ok = chunked.write(json::Value(std::move(line)).dump() + "\n") && sink_ok;
          });
      options.cancel = cancel;
      api::EstimateResponse response = api::run(parsed, options, service_.registry());
      if (!chunked.begun()) {
        // Nothing streamed: empty expansion or a failure before the batch
        // ran. Fall back to a plain envelope.
        return send(json_response(deadline_status(response, response.success ? 200 : 422),
                                  response.to_json()));
      }
      if (!response.success) {
        // The run failed after lines went out (e.g. a frontier whose every
        // probe was infeasible). Headers are committed, so the failure is
        // reported in-stream as a final error line instead of a summary —
        // the client must never mistake a truncated stream for success.
        json::Value error_line = error_document(
            "estimation-failed", response.diagnostics.summary(), ctx.id);
        sink_ok = chunked.write(error_line.dump() + "\n") && sink_ok;
      } else {
        const char* stats_key = "batchStats";
        const json::Value* stats = response.result.find(stats_key);
        if (stats == nullptr) {
          stats_key = "frontierStats";
          stats = response.result.find(stats_key);
        }
        if (stats != nullptr) {
          json::Object line;
          line.emplace_back(stats_key, *stats);
          sink_ok = chunked.write(json::Value(std::move(line)).dump() + "\n") && sink_ok;
        }
      }
      sink_ok = chunked.end() && sink_ok;
      ctx.status = 200;
      return keep_alive && sink_ok;
    }

    service::EngineOptions options = service_.engine().options();
    options.cancel = cancel;
    api::EstimateResponse response = api::run(parsed, options, service_.registry());
    int http_status = parsed.ok() ? (response.success ? 200 : 422) : 400;
    if (parsed.ok() && !response.success) http_status = deadline_status(response, http_status);
    return send(json_response(http_status, response.to_json()));
  }

  // ---------------------------------------------------------- job queue --
  if (path == "/v2/jobs") {
    ctx.route_label = method_label(request.method) + " /v2/jobs";
    if (request.method != "POST") return method_not_allowed("POST");
    json::Value document;
    try {
      document = json::parse(request.body);
    } catch (const Error& e) {
      return send(error_response(400, "invalid-json", e.what(), ctx.id));
    }
    const std::optional<std::uint64_t> id = service_.jobs().submit(std::move(document));
    if (!id.has_value()) {
      return send(error_response(429, "backlog-full",
                                 "job backlog is full; retry after queued jobs finish",
                                 ctx.id));
    }
    json::Object body;
    body.emplace_back("id", json::Value(*id));
    body.emplace_back("status", std::string(to_string(JobState::kQueued)));
    return send(json_response(202, json::Value(std::move(body))));
  }
  if (path.rfind("/v2/jobs/", 0) == 0) {
    ctx.route_label = method_label(request.method) + " /v2/jobs/{id}";
    if (request.method != "GET" && request.method != "DELETE") {
      return method_not_allowed("GET, DELETE");
    }
    std::uint64_t id = 0;
    if (!parse_job_id(path, id)) {
      return send(error_response(400, "invalid-job-id",
                                 "job ids are the decimal integers POST /v2/jobs returned",
                                 ctx.id));
    }
    if (request.method == "GET") {
      const std::optional<json::Value> job = service_.jobs().status(id);
      if (!job.has_value()) {
        return send(error_response(404, "unknown-job",
                                   "no job " + std::to_string(id) + " (unknown or evicted)",
                                   ctx.id));
      }
      return send(json_response(200, *job));
    }
    switch (service_.jobs().cancel(id)) {
      case JobQueue::CancelResult::kNotFound:
        return send(error_response(404, "unknown-job",
                                   "no job " + std::to_string(id) + " (unknown or evicted)",
                                   ctx.id));
      case JobQueue::CancelResult::kNotCancellable:
        return send(error_response(409, "not-cancellable",
                                   "job " + std::to_string(id) +
                                       " already finished; finished jobs cannot be cancelled",
                                   ctx.id));
      case JobQueue::CancelResult::kCancelling: {
        // Running: cancellation is cooperative. 202 = accepted, in
        // progress; poll GET /v2/jobs/{id} for the terminal "cancelled".
        service_.metrics().record_cancel_request();
        ctx.cancelled = true;
        json::Object body;
        body.emplace_back("id", json::Value(id));
        body.emplace_back("status", std::string(to_string(JobState::kCancelling)));
        return send(json_response(202, json::Value(std::move(body))));
      }
      case JobQueue::CancelResult::kCancelled:
        break;
    }
    service_.metrics().record_cancel_request();
    ctx.cancelled = true;
    json::Object body;
    body.emplace_back("id", json::Value(id));
    body.emplace_back("status", std::string(to_string(JobState::kCancelled)));
    return send(json_response(200, json::Value(std::move(body))));
  }

  ctx.route_label = method_label(request.method) + " (unmatched)";
  return send(error_response(404, "unknown-endpoint",
                             "no endpoint " + path + "; see docs/server.md", ctx.id));
}

}  // namespace qre::server
