#include "server/prometheus.hpp"

#include <cmath>
#include <cstdio>
#include <set>
#include <string>
#include <vector>

namespace qre::server {

namespace {

/// Canonical JSON-field → Prometheus-family mapping for the /metrics
/// document. This table is the registry qre_lint check #6 parses: every
/// row's JSON path and family name must be documented in
/// docs/observability.md (and every documented name must still have a row).
/// kind: "counter"/"gauge" read one scalar at the path; "route-map",
/// "class-map", and "site-map" expand an object into one labeled sample per
/// key; "histogram" renders the bucketed latency block cumulatively.
struct MetricRow {
  const char* path;    // dotted path into the /metrics JSON document
  const char* name;    // Prometheus family name
  const char* labels;  // fixed label set, e.g. cache="estimate" ("" = none)
  const char* kind;
  const char* help;
};

const MetricRow kMetricsCatalog[] = {
    {"server.requestsTotal", "qre_requests_total", "", "counter",
     "HTTP requests handled, including pre-router rejects"},
    {"server.uptimeSeconds", "qre_uptime_seconds", "", "gauge",
     "Seconds since the metrics sink was constructed"},
    {"server.connectionsInFlight", "qre_connections_in_flight", "", "gauge",
     "Connections currently held by worker threads"},
    {"server.deadlineExceededTotal", "qre_deadline_exceeded_total", "", "counter",
     "Requests answered 408 after the per-request deadline"},
    {"server.cancelRequestsTotal", "qre_cancel_requests_total", "", "counter",
     "Accepted job cancellation requests"},
    {"server.requestsByRoute", "qre_requests_by_route_total", "", "route-map",
     "Requests by bounded-cardinality route label"},
    {"server.responsesByStatus", "qre_responses_total", "", "class-map",
     "Responses by status class (1xx..5xx)"},
    {"server.latencyMs", "qre_request_latency_ms", "", "histogram",
     "Request latency in milliseconds"},
    {"estimateCache.hits", "qre_cache_hits_total", R"(cache="estimate")", "counter",
     "Cache hits"},
    {"estimateCache.misses", "qre_cache_misses_total", R"(cache="estimate")", "counter",
     "Cache misses"},
    {"estimateCache.evictions", "qre_cache_evictions_total", R"(cache="estimate")",
     "counter", "Cache evictions"},
    {"estimateCache.size", "qre_cache_size", R"(cache="estimate")", "gauge",
     "Entries currently cached"},
    {"estimateCache.capacity", "qre_cache_capacity", R"(cache="estimate")", "gauge",
     "Entry bound (0 = unbounded)"},
    {"factoryCache.hits", "qre_cache_hits_total", R"(cache="factory")", "counter",
     "Cache hits"},
    {"factoryCache.misses", "qre_cache_misses_total", R"(cache="factory")", "counter",
     "Cache misses"},
    {"factoryCache.evictions", "qre_cache_evictions_total", R"(cache="factory")",
     "counter", "Cache evictions"},
    {"factoryCache.size", "qre_cache_size", R"(cache="factory")", "gauge",
     "Entries currently cached"},
    {"factoryCache.capacity", "qre_cache_capacity", R"(cache="factory")", "gauge",
     "Entry bound (0 = unbounded)"},
    {"factoryCache.enabled", "qre_cache_enabled", R"(cache="factory")", "gauge",
     "Whether the cache is enabled"},
    {"store.enabled", "qre_store_enabled", "", "gauge",
     "Whether a persistent estimate store is attached"},
    {"store.hits", "qre_store_hits_total", "", "counter", "Store read-through hits"},
    {"store.misses", "qre_store_misses_total", "", "counter", "Store read-through misses"},
    {"store.records", "qre_store_records", "", "gauge", "Records held by the store"},
    {"store.payloadBytes", "qre_store_payload_bytes", "", "gauge",
     "Payload bytes held by the store"},
    {"store.loaded", "qre_store_loaded_records", "", "gauge",
     "Records loaded at the last restart"},
    {"store.loadSkipped", "qre_store_load_skipped_records", "", "gauge",
     "Corrupt records skipped at the last load"},
    {"store.persists", "qre_store_persists_total", "", "counter",
     "Completed store persists"},
    {"jobs.queued", "qre_jobs_queued", "", "gauge", "Jobs waiting in the backlog"},
    {"jobs.running", "qre_jobs_running", "", "gauge", "Jobs currently running"},
    {"jobs.succeeded", "qre_jobs_succeeded_total", "", "counter", "Jobs that succeeded"},
    {"jobs.failed", "qre_jobs_failed_total", "", "counter", "Jobs that failed"},
    {"jobs.cancelled", "qre_jobs_cancelled_total", "", "counter", "Jobs cancelled"},
    {"jobs.backlogLimit", "qre_jobs_backlog_limit", "", "gauge",
     "Backlog bound that makes POST /v2/jobs answer 429"},
    {"jobs.workers", "qre_jobs_workers", "", "gauge", "Job-queue worker threads"},
    {"client.retriesTotal", "qre_client_retries_total", "", "counter",
     "Retries performed by in-process HTTP clients"},
    {"failpoints.compiledIn", "qre_failpoints_compiled_in", "", "gauge",
     "Whether QRE_FAILPOINT hooks are compiled in"},
    {"failpoints.active", "qre_failpoints_active", "", "gauge",
     "Currently armed failpoint terms"},
    {"failpoints.triggered", "qre_failpoint_triggered_total", "", "site-map",
     "Failpoint triggers by site"},
    {"trace.enabled", "qre_trace_enabled", "", "gauge",
     "Whether the span tracer is recording"},
    {"trace.events", "qre_trace_events", "", "gauge", "Events held in the trace ring"},
    {"trace.dropped", "qre_trace_dropped_total", "", "counter",
     "Trace events overwritten because the ring was full"},
    {"trace.capacity", "qre_trace_capacity", "", "gauge", "Trace ring capacity"},
};

/// Walks a dotted path ("server.requestsTotal") into the document.
const json::Value* find_path(const json::Value& doc, const std::string& path) {
  const json::Value* node = &doc;
  std::size_t begin = 0;
  while (begin <= path.size()) {
    const std::size_t dot = path.find('.', begin);
    const std::string key =
        path.substr(begin, dot == std::string::npos ? std::string::npos : dot - begin);
    if (!node->is_object()) return nullptr;
    node = node->find(key);
    if (node == nullptr) return nullptr;
    if (dot == std::string::npos) break;
    begin = dot + 1;
  }
  return node;
}

/// Sample value formatting: integral values print exactly, the rest as %g
/// (both are legal exposition-format floats). Booleans are 1/0.
std::string format_number(const json::Value& v) {
  double d = 0;
  if (v.is_bool()) {
    d = v.as_bool() ? 1 : 0;
  } else if (v.is_number()) {
    d = v.as_double();
  } else {
    return {};
  }
  if (std::nearbyint(d) == d && std::fabs(d) < 9e15) {
    char buffer[32];
    std::snprintf(buffer, sizeof buffer, "%lld", static_cast<long long>(d));
    return buffer;
  }
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%g", d);
  return buffer;
}

/// Label-value escaping per the exposition format: \\, \", \n.
std::string escape_label(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    if (c == '\\' || c == '"') {
      out += '\\';
      out += c;
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

/// # HELP / # TYPE once per family, however many catalog rows share it.
void family_header(std::string& out, std::set<std::string>& emitted, const char* name,
                   const char* type, const char* help) {
  if (!emitted.insert(name).second) return;
  out += "# HELP ";
  out += name;
  out += ' ';
  out += help;
  out += "\n# TYPE ";
  out += name;
  out += ' ';
  out += type;
  out += '\n';
}

void sample(std::string& out, const char* name, const std::string& labels,
            const std::string& value) {
  out += name;
  if (!labels.empty()) {
    out += '{';
    out += labels;
    out += '}';
  }
  out += ' ';
  out += value;
  out += '\n';
}

void emit_map(std::string& out, std::set<std::string>& emitted, const MetricRow& row,
              const json::Value& object, const char* label_key) {
  if (!object.is_object()) return;
  family_header(out, emitted, row.name, "counter", row.help);
  for (const auto& [key, value] : object.as_object()) {
    const std::string number = format_number(value);
    if (number.empty()) continue;
    sample(out, row.name,
           std::string(label_key) + "=\"" + escape_label(key) + "\"", number);
  }
}

void emit_histogram(std::string& out, std::set<std::string>& emitted,
                    const MetricRow& row, const json::Value& block) {
  if (!block.is_object()) return;
  const json::Value* bounds = block.find("bucketUpperBoundsMs");
  const json::Value* counts = block.find("counts");
  const json::Value* sum = block.find("totalMs");
  const json::Value* count = block.find("count");
  if (bounds == nullptr || counts == nullptr || !bounds->is_array() ||
      !counts->is_array()) {
    return;
  }
  family_header(out, emitted, row.name, "histogram", row.help);
  const std::string name = row.name;
  // The JSON counts are per-bucket (last = overflow); Prometheus buckets
  // are cumulative and end at +Inf.
  std::uint64_t cumulative = 0;
  const json::Array& count_array = counts->as_array();
  const json::Array& bound_array = bounds->as_array();
  for (std::size_t i = 0; i < bound_array.size() && i < count_array.size(); ++i) {
    cumulative += count_array[i].as_uint();
    char bound[32];
    std::snprintf(bound, sizeof bound, "%g", bound_array[i].as_double());
    sample(out, (name + "_bucket").c_str(), std::string("le=\"") + bound + "\"",
           std::to_string(cumulative));
  }
  for (std::size_t i = bound_array.size(); i < count_array.size(); ++i) {
    cumulative += count_array[i].as_uint();
  }
  sample(out, (name + "_bucket").c_str(), "le=\"+Inf\"", std::to_string(cumulative));
  if (sum != nullptr) sample(out, (name + "_sum").c_str(), "", format_number(*sum));
  if (count != nullptr) {
    sample(out, (name + "_count").c_str(), "", format_number(*count));
  }
}

}  // namespace

std::string to_prometheus_text(const json::Value& metrics_document) {
  std::string out;
  out.reserve(4096);
  std::set<std::string> emitted;
  for (const MetricRow& row : kMetricsCatalog) {
    const json::Value* value = find_path(metrics_document, row.path);
    if (value == nullptr) continue;  // e.g. store counters with the store off
    const std::string kind = row.kind;
    if (kind == "route-map") {
      emit_map(out, emitted, row, *value, "route");
    } else if (kind == "class-map") {
      emit_map(out, emitted, row, *value, "class");
    } else if (kind == "site-map") {
      emit_map(out, emitted, row, *value, "site");
    } else if (kind == "histogram") {
      emit_histogram(out, emitted, row, *value);
    } else {
      const std::string number = format_number(*value);
      if (number.empty()) continue;
      family_header(out, emitted, row.name, row.kind, row.help);
      sample(out, row.name, row.labels, number);
    }
  }
  return out;
}

}  // namespace qre::server
