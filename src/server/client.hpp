// Minimal blocking HTTP client (loopback test helper).
//
// tests/test_server.cpp exercises the full serving stack — sockets, the
// HTTP parser, the router, the job queue — without curl or any external
// tooling: the client connects over loopback TCP, speaks the same http.hpp
// message layer the server does, and hands back status/headers/body with
// chunked responses already reassembled. qre_serve's smoke mode could use
// it too; it is a real client, just a deliberately small one.
//
// Connections are reused across request() calls (keep-alive) and
// transparently re-opened when the server closed in between. Not
// concurrency-safe; give each test thread its own Client.
//
// Resilience: idempotent requests (GET/HEAD/DELETE) — plus any request
// that failed before a byte reached the wire — are retried with bounded
// exponential backoff and jitter on connect failures and on 408/429/503
// responses, honoring a server-sent Retry-After (seconds). A POST that
// may have reached the server is never blindly resent.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "server/http.hpp"

namespace qre::server {

/// Bounded-exponential-backoff retry schedule. The wait before retry k is
/// uniformly jittered in [backoff/2, backoff], backoff doubling from
/// initial_backoff_ms up to max_backoff_ms; a Retry-After response header
/// overrides it (capped by max_retry_after_ms so a hostile header cannot
/// stall the caller).
struct RetryPolicy {
  int max_attempts = 3;  // total tries, including the first; 1 disables retry
  int initial_backoff_ms = 25;
  int max_backoff_ms = 1000;
  int max_retry_after_ms = 5000;
};

class Client {
 public:
  Client(std::string host, std::uint16_t port, RetryPolicy policy = {})
      : host_(std::move(host)), port_(port), policy_(policy) {}
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  struct Result {
    bool ok = false;        // transport-level success (response fully parsed)
    std::string error;      // transport failure description when !ok
    int status = 0;
    std::vector<Header> headers;
    std::string body;       // de-chunked

    const std::string* header(std::string_view name) const {
      return find_header(headers, name);
    }
  };

  /// Sends one request and reads the response. `headers` are appended after
  /// the generated Host/Content-Length ones.
  Result request(const std::string& method, const std::string& target,
                 const std::string& body = "", const std::vector<Header>& headers = {});

  Result get(const std::string& target, const std::vector<Header>& headers = {}) {
    return request("GET", target, "", headers);
  }
  Result post(const std::string& target, const std::string& body,
              const std::vector<Header>& headers = {}) {
    return request("POST", target, body, headers);
  }
  Result del(const std::string& target) { return request("DELETE", target); }

  /// Retries this client performed (each backoff wait counts one).
  std::uint64_t retries() const { return retries_; }

  /// Process-wide retry counter across every Client instance; surfaced as
  /// client.retriesTotal in GET /metrics.
  static std::uint64_t process_retries();

 private:
  Result request_once(const std::string& method, const std::string& target,
                      const std::string& body, const std::vector<Header>& headers,
                      bool idempotent, bool& transport_retriable);
  bool connect_if_needed(std::string& error);
  void disconnect();

  std::string host_;
  std::uint16_t port_;
  RetryPolicy policy_;
  std::uint64_t retries_ = 0;
  int fd_ = -1;
  std::string buffer_;  // leftover bytes between keep-alive responses
};

}  // namespace qre::server
