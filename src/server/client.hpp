// Minimal blocking HTTP client (loopback test helper).
//
// tests/test_server.cpp exercises the full serving stack — sockets, the
// HTTP parser, the router, the job queue — without curl or any external
// tooling: the client connects over loopback TCP, speaks the same http.hpp
// message layer the server does, and hands back status/headers/body with
// chunked responses already reassembled. qre_serve's smoke mode could use
// it too; it is a real client, just a deliberately small one.
//
// Connections are reused across request() calls (keep-alive) and
// transparently re-opened when the server closed in between. Not
// concurrency-safe; give each test thread its own Client.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "server/http.hpp"

namespace qre::server {

class Client {
 public:
  Client(std::string host, std::uint16_t port) : host_(std::move(host)), port_(port) {}
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  struct Result {
    bool ok = false;        // transport-level success (response fully parsed)
    std::string error;      // transport failure description when !ok
    int status = 0;
    std::vector<Header> headers;
    std::string body;       // de-chunked

    const std::string* header(std::string_view name) const {
      return find_header(headers, name);
    }
  };

  /// Sends one request and reads the response. `headers` are appended after
  /// the generated Host/Content-Length ones.
  Result request(const std::string& method, const std::string& target,
                 const std::string& body = "", const std::vector<Header>& headers = {});

  Result get(const std::string& target, const std::vector<Header>& headers = {}) {
    return request("GET", target, "", headers);
  }
  Result post(const std::string& target, const std::string& body,
              const std::vector<Header>& headers = {}) {
    return request("POST", target, body, headers);
  }
  Result del(const std::string& target) { return request("DELETE", target); }

 private:
  bool connect_if_needed(std::string& error);
  void disconnect();

  std::string host_;
  std::uint16_t port_;
  int fd_ = -1;
  std::string buffer_;  // leftover bytes between keep-alive responses
};

}  // namespace qre::server
