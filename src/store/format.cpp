#include "store/format.hpp"

#include <array>
#include <cstring>

#include "common/error.hpp"

namespace qre::store {

namespace {

/// CRC-32 lookup table for the reflected IEEE polynomial 0xEDB88320,
/// generated once at first use.
const std::array<std::uint32_t, 256>& crc_table() {
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int bit = 0; bit < 8; ++bit) {
        c = (c & 1u) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
      }
      t[i] = c;
    }
    return t;
  }();
  return table;
}

}  // namespace

std::uint32_t crc32(std::string_view data) {
  const auto& table = crc_table();
  std::uint32_t crc = 0xFFFFFFFFu;
  for (unsigned char byte : data) {
    crc = table[(crc ^ byte) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

std::uint64_t fingerprint(std::string_view key) {
  std::uint64_t h = 1469598103934665603ull;  // FNV-1a offset basis
  for (unsigned char byte : key) {
    h ^= byte;
    h *= 1099511628211ull;  // FNV prime
  }
  return h;
}

std::uint64_t index_slot_count(std::uint64_t records) {
  std::uint64_t want = records < 4 ? 8 : records * 2;
  std::uint64_t slots = 8;
  while (slots < want) slots <<= 1;
  return slots;
}

void append_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<char>((v >> (8 * i)) & 0xFFu));
}

void append_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<char>((v >> (8 * i)) & 0xFFu));
}

std::uint32_t read_u32(const unsigned char* p) {
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

std::uint64_t read_u64(const unsigned char* p) {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

Header parse_header(std::string_view image) {
  if (image.size() < kHeaderSize) {
    throw Error("store: file truncated (" + std::to_string(image.size()) +
                " bytes is smaller than the " + std::to_string(kHeaderSize) +
                "-byte header)");
  }
  if (std::memcmp(image.data(), kMagic, sizeof kMagic) != 0) {
    throw Error("store: bad magic (not a qre estimate store)");
  }
  const auto* bytes = reinterpret_cast<const unsigned char*>(image.data());
  Header h;
  h.version = read_u32(bytes + 8);
  h.flags = read_u32(bytes + 12);
  h.record_count = read_u64(bytes + 16);
  h.index_offset = read_u64(bytes + 24);
  h.slot_count = read_u64(bytes + 32);
  h.payload_offset = read_u64(bytes + 40);
  h.file_size = read_u64(bytes + 48);
  const std::uint32_t stored_crc = read_u32(bytes + 56);

  if (h.version != kFormatVersion) {
    throw Error("store: unsupported format version " + std::to_string(h.version) +
                " (this build reads version " + std::to_string(kFormatVersion) + ")");
  }
  if (h.flags != 0) {
    throw Error("store: unknown flags 0x" + std::to_string(h.flags) +
                " (version 1 defines none)");
  }
  const std::uint32_t actual_crc = crc32(image.substr(0, 56));
  if (stored_crc != actual_crc) {
    throw Error("store: header checksum mismatch (file header is corrupt)");
  }
  if (h.file_size != image.size()) {
    throw Error("store: file truncated (header says " + std::to_string(h.file_size) +
                " bytes, file has " + std::to_string(image.size()) + ")");
  }
  // Structural bounds: the index must sit inside the file and the payload
  // must follow it. slot_count is bounded before the multiply so a corrupt
  // (but CRC-colliding) header cannot overflow the range check.
  if (h.slot_count == 0 || (h.slot_count & (h.slot_count - 1)) != 0 ||
      h.slot_count > image.size() / kSlotSize + 1) {
    throw Error("store: corrupt index geometry (slot count " +
                std::to_string(h.slot_count) + ")");
  }
  if (h.index_offset != kHeaderSize ||
      h.index_offset + h.slot_count * kSlotSize != h.payload_offset ||
      h.payload_offset > image.size()) {
    throw Error("store: corrupt section offsets");
  }
  return h;
}

}  // namespace qre::store
