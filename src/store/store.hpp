// Persistent estimate store: file reader/writer (mid-level layer).
//
// StoreReader is a read-only, mmap-backed view of one store file: a single
// lookup touches the header, a handful of index slots, and one payload
// record — never the whole file. Per-record corruption (a flipped payload
// byte, a bad length) is detected by CRC/bounds checks and skipped with a
// count; only an unusable header (bad magic, wrong version, truncation,
// header CRC) rejects the file as a whole, by throwing qre::Error.
//
// write_store_file builds the complete image in memory and publishes it
// with write-to-temp + fsync + rename, so a crash mid-persist leaves the
// previous file intact and a concurrent writer to the same path can at
// worst win the rename race with its own complete snapshot — never
// interleave bytes with ours. Record order in the payload region is the
// order given (callers preserve insertion order, which `for_each` and the
// offline gc treat as oldest-first).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "store/format.hpp"

namespace qre::store {

/// One key -> value pair (canonical job key, compact result dump).
struct Record {
  std::string key;
  std::string value;
};

/// Serializes `records` into a complete store image (header + index +
/// payload). Duplicate keys must already be resolved by the caller.
std::string encode_store(const std::vector<Record>& records);

/// Atomically (re)writes `path`: the image goes to a uniquely named temp
/// file in the same directory, is fsync'd, then renamed over `path`.
/// Throws qre::Error on I/O failure (the temp file is cleaned up).
void write_store_file(const std::string& path, const std::vector<Record>& records);

/// Read-only view of one store file. The constructor validates the header
/// and throws qre::Error if the file cannot be a usable store; per-record
/// problems surface later as skipped records, not construction failures.
class StoreReader {
 public:
  explicit StoreReader(const std::string& path);
  ~StoreReader();

  StoreReader(const StoreReader&) = delete;
  StoreReader& operator=(const StoreReader&) = delete;

  /// Index lookup by canonical key. Returns the record's value, or nullopt
  /// when absent — including when the matching record failed its checksum
  /// (counted in corrupt_skipped()).
  std::optional<std::string> lookup(std::string_view key) const;

  /// Visits every intact record in payload (insertion) order; returns the
  /// number of corrupt records skipped.
  std::size_t for_each(
      const std::function<void(std::string_view key, std::string_view value)>& fn) const;

  const Header& header() const { return header_; }
  std::uint64_t record_count() const { return header_.record_count; }
  std::uint64_t file_bytes() const { return header_.file_size; }
  std::uint64_t payload_bytes() const { return header_.file_size - header_.payload_offset; }
  /// Corrupt records encountered (and skipped) by lookups so far.
  std::uint64_t corrupt_skipped() const { return corrupt_skipped_.load(); }

 private:
  /// Decodes the record at `offset`; false when out of bounds or CRC-bad.
  bool read_record(std::uint64_t offset, std::string_view& key,
                   std::string_view& value) const;

  std::string_view image() const { return {data_, size_}; }

  Header header_;
  const char* data_ = nullptr;
  std::size_t size_ = 0;
  bool mapped_ = false;     // mmap'd (else owned_ holds the bytes)
  std::string owned_;       // fallback when mmap is unavailable
  mutable std::atomic<std::uint64_t> corrupt_skipped_{0};
};

/// Reads every intact record of `path` into memory, newest-wins per key
/// — the prewarm/merge primitive. Appends records in insertion order
/// (later files and later records override earlier ones in `out`).
/// Returns the number of corrupt records skipped. Throws qre::Error when
/// the header is unusable.
std::size_t read_store_records(const std::string& path, std::vector<Record>& out);

/// Last-wins merge of whole files: records of later `inputs` override
/// earlier ones. The result is written atomically to `output`. Returns the
/// merged record count.
std::size_t merge_store_files(const std::vector<std::string>& inputs,
                              const std::string& output);

/// Bounds `input` to at most `max_bytes` on disk by dropping oldest
/// records first, writing the result atomically to `output` (which may be
/// `input` itself). Returns the number of records retained.
std::size_t gc_store_file(const std::string& input, const std::string& output,
                          std::uint64_t max_bytes);

/// Creates `dir` (and missing parents) like `mkdir -p`. Throws qre::Error
/// when a component exists but is not a directory or creation fails.
void ensure_directory(const std::string& dir);

}  // namespace qre::store
