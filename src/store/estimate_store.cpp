#include "store/estimate_store.hpp"

#include <cstdio>
#include <utility>

#include "common/error.hpp"
#include "common/failpoint.hpp"

namespace qre::store {

namespace {

/// Error documents ({"error": {...}} results of failed batch items) are
/// deterministic but registry-shaped and cheap to recompute; keeping them
/// out of the store means a persisted corpus only ever contains real
/// estimates.
bool is_error_document(const json::Value& result) {
  return result.is_object() && result.find("error") != nullptr;
}

}  // namespace

EstimateStore::EstimateStore(const std::string& dir)
    : path_(dir + "/" + kStoreFileName) {}

LoadResult EstimateStore::load() {
  LoadResult result;
  std::vector<Record> from_disk;
  try {
    // Injected open/read faults degrade to the cold-start path below, the
    // same way a rejected or unreadable file does.
    QRE_FAILPOINT("store.open.before_read");
    result.records_skipped = read_store_records(path_, from_disk);
    result.file_found = true;
    result.usable = true;
  } catch (const Error& e) {
    // Missing file or unusable header: either way, a cold start. errno-
    // style "cannot open" is the missing-file case; everything else means
    // the file existed but was rejected (bad magic / version / truncation).
    result.message = e.what();
    result.file_found = result.message.find("cannot open") == std::string::npos;
    MutexLock lock(mutex_);
    last_load_ = result;
    return result;
  }

  MutexLock lock(mutex_);
  for (Record& r : from_disk) {
    if (index_.count(r.key) != 0) continue;  // in-memory entries win
    payload_bytes_ += kRecordHeaderSize + r.key.size() + r.value.size();
    index_.emplace(r.key, records_.size());
    records_.push_back(std::move(r));
    ++result.records_loaded;
  }
  last_load_ = result;
  return result;
}

std::optional<json::Value> EstimateStore::fetch(const std::string& key) {
  MutexLock lock(mutex_);
  auto it = index_.find(key);
  if (it == index_.end()) {
    ++misses_;
    return std::nullopt;
  }
  try {
    json::Value parsed = json::parse(records_[it->second].value);
    ++hits_;
    return parsed;
  } catch (const std::exception&) {
    // A record that fails to parse (should be impossible past the CRC
    // check) degrades to a miss: the result is recomputed and rewritten.
    ++misses_;
    return std::nullopt;
  }
}

void EstimateStore::record(const std::string& key, const json::Value& result) {
  if (is_error_document(result)) return;
  std::string value;
  try {
    value = result.dump();
  } catch (const std::exception&) {
    return;  // un-serializable results are simply not persisted
  }
  MutexLock lock(mutex_);
  if (index_.count(key) != 0) return;  // deterministic: first write is final
  payload_bytes_ += kRecordHeaderSize + key.size() + value.size();
  index_.emplace(key, records_.size());
  records_.push_back({key, std::move(value)});
  ++dirty_adds_;
}

bool EstimateStore::persist(bool force) {
  // One persist at a time per process; snapshot under the data lock, write
  // outside it so serving threads never wait on disk I/O.
  MutexLock persist_lock(persist_mutex_);
  std::vector<Record> snapshot;
  std::size_t adds_at_snapshot;
  {
    MutexLock lock(mutex_);
    if (dirty_adds_ == 0 && !force) return false;
    snapshot = records_;
    adds_at_snapshot = dirty_adds_;
  }
  try {
    write_store_file(path_, snapshot);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "store: persist to '%s' failed: %s\n", path_.c_str(), e.what());
    return false;
  }
  MutexLock lock(mutex_);
  dirty_adds_ -= adds_at_snapshot;
  ++persists_;
  return true;
}

json::Value EstimateStore::stats_to_json() const {
  MutexLock lock(mutex_);
  json::Object out;
  out.emplace_back("enabled", json::Value(true));
  out.emplace_back("hits", json::Value(hits_));
  out.emplace_back("misses", json::Value(misses_));
  out.emplace_back("records", json::Value(static_cast<std::uint64_t>(records_.size())));
  out.emplace_back("payloadBytes", json::Value(payload_bytes_));
  out.emplace_back("loaded", json::Value(static_cast<std::uint64_t>(last_load_.records_loaded)));
  out.emplace_back("loadSkipped",
                   json::Value(static_cast<std::uint64_t>(last_load_.records_skipped)));
  out.emplace_back("persists", json::Value(persists_));
  out.emplace_back("path", json::Value(path_));
  return json::Value(std::move(out));
}

std::uint64_t EstimateStore::hits() const {
  MutexLock lock(mutex_);
  return hits_;
}

std::uint64_t EstimateStore::misses() const {
  MutexLock lock(mutex_);
  return misses_;
}

std::size_t EstimateStore::records() const {
  MutexLock lock(mutex_);
  return records_.size();
}

}  // namespace qre::store
