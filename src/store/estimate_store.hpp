// Persistent estimate store (top layer): the object an engine serves from.
//
// EstimateStore owns the in-memory mirror of one on-disk store file
// (`<dir>/estimates.qrestore`) and implements service::StoreBacking, so a
// service::Engine wired to it answers previously seen jobs from disk after
// a process restart — byte-identically, because values are the canonical
// compact dumps of the exact result documents and the JSON writer is a
// pure function of the parsed value.
//
// Lifecycle:
//   EstimateStore store(dir);
//   store.load();          // prewarm: merge the existing file, if usable
//   engine.set_store(&store);
//   ... serve ...
//   store.persist();       // atomic snapshot (periodic and/or on drain)
//
// load() never fails the process: a missing file is a cold start, a file
// with an unusable header (bad magic, wrong version, truncation) is a
// logged cold start, and individually corrupt records are skipped and
// counted. persist() writes the complete current map through the atomic
// temp-and-rename path, so two processes persisting into one directory
// race only on whole-file snapshots.
//
// Stores are registry-dependent the same way the in-memory cache is: keys
// cover job documents only, so reuse a --cache-dir only with the same
// profile packs the store was written under (docs/store.md).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/mutex.hpp"
#include "common/thread_annotations.hpp"
#include "json/json.hpp"
#include "service/cache.hpp"
#include "store/store.hpp"

namespace qre::store {

/// Outcome of a load() prewarm, for logging and /metrics.
struct LoadResult {
  bool file_found = false;     // a store file existed at the path
  bool usable = false;         // ... and had a valid header
  std::size_t records_loaded = 0;
  std::size_t records_skipped = 0;  // per-record corruption
  std::string message;         // human-readable reason when !usable
};

class EstimateStore : public service::StoreBacking {
 public:
  /// `dir` must already exist; the store file lives at dir/estimates.qrestore.
  explicit EstimateStore(const std::string& dir);

  const std::string& path() const { return path_; }

  /// Prewarms the in-memory map from the store file. Safe to call on a
  /// missing or damaged file — both degrade to a cold start described by
  /// the returned LoadResult. Existing in-memory entries win over loaded
  /// ones (load after construction is the expected order).
  LoadResult load();

  // service::StoreBacking — read-through / write-through (never throws).
  std::optional<json::Value> fetch(const std::string& key) override;
  void record(const std::string& key, const json::Value& result) override;

  /// Atomically writes the current map when it changed since the last
  /// persist (or `force`). Returns whether a file was written. I/O
  /// failures are reported by returning false, never by throwing: a
  /// persistence problem must not take down serving.
  bool persist(bool force = false);

  /// Store counters for /metrics and --cache-stats:
  /// {"enabled": true, "hits", "misses", "records", "payloadBytes",
  ///  "loaded", "loadSkipped", "persists", "path"}.
  json::Value stats_to_json() const;

  std::uint64_t hits() const;
  std::uint64_t misses() const;
  std::size_t records() const;

 private:
  const std::string path_;

  mutable Mutex mutex_;
  // insertion order (oldest first)
  std::vector<Record> records_ QRE_GUARDED_BY(mutex_);
  // key -> records_ position
  std::unordered_map<std::string, std::size_t> index_ QRE_GUARDED_BY(mutex_);
  // adds since the last successful persist
  std::size_t dirty_adds_ QRE_GUARDED_BY(mutex_) = 0;
  std::uint64_t hits_ QRE_GUARDED_BY(mutex_) = 0;
  std::uint64_t misses_ QRE_GUARDED_BY(mutex_) = 0;
  std::uint64_t payload_bytes_ QRE_GUARDED_BY(mutex_) = 0;
  std::uint64_t persists_ QRE_GUARDED_BY(mutex_) = 0;
  LoadResult last_load_ QRE_GUARDED_BY(mutex_);

  // Serializes in-process persist() calls; always acquired before mutex_.
  Mutex persist_mutex_ QRE_ACQUIRED_BEFORE(mutex_);
};

}  // namespace qre::store
