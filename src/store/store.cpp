#include "store/store.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <unordered_map>

#include "common/error.hpp"
#include "common/failpoint.hpp"

namespace qre::store {

namespace {

std::size_t encoded_record_size(const Record& r) {
  return kRecordHeaderSize + r.key.size() + r.value.size();
}

/// Total on-disk size of a store holding `records` entries whose payload
/// bytes sum to `payload`: header + index + payload.
std::uint64_t encoded_store_size(std::uint64_t records, std::uint64_t payload) {
  return kHeaderSize + index_slot_count(records) * kSlotSize + payload;
}

/// Last-wins key dedup preserving first-insertion order: repeated keys keep
/// their original (oldest) position but take the latest value.
void dedupe_records(std::vector<Record>& records) {
  std::unordered_map<std::string_view, std::size_t> position;
  std::vector<Record> unique;
  unique.reserve(records.size());
  for (Record& r : records) {
    auto it = position.find(r.key);
    if (it != position.end()) {
      unique[it->second].value = std::move(r.value);
    } else {
      unique.push_back(std::move(r));
      position.emplace(unique.back().key, unique.size() - 1);
    }
  }
  records = std::move(unique);
}

void throw_errno(const std::string& what, const std::string& path) {
  throw Error("store: " + what + " '" + path + "': " + std::strerror(errno));
}

}  // namespace

std::string encode_store(const std::vector<Record>& records) {
  const std::uint64_t slots = index_slot_count(records.size());
  const std::uint64_t index_offset = kHeaderSize;
  const std::uint64_t payload_offset = index_offset + slots * kSlotSize;

  // Payload region + the offset every record lands at.
  std::string payload;
  std::vector<std::uint64_t> offsets;
  offsets.reserve(records.size());
  for (const Record& r : records) {
    offsets.push_back(payload_offset + payload.size());
    append_u32(payload, static_cast<std::uint32_t>(r.key.size()));
    append_u32(payload, static_cast<std::uint32_t>(r.value.size()));
    std::string body = r.key + r.value;
    append_u32(payload, crc32(body));
    payload += body;
  }

  // Open-addressed index with linear probing. Offset 0 marks an empty slot
  // (the payload region starts beyond the header, so 0 is never a record).
  std::vector<std::pair<std::uint64_t, std::uint64_t>> index(slots, {0, 0});
  const std::uint64_t mask = slots - 1;
  for (std::size_t i = 0; i < records.size(); ++i) {
    std::uint64_t fp = fingerprint(records[i].key);
    std::uint64_t slot = fp & mask;
    while (index[slot].second != 0) slot = (slot + 1) & mask;
    index[slot] = {fp, offsets[i]};
  }

  const std::uint64_t file_size = payload_offset + payload.size();
  std::string image;
  image.reserve(file_size);
  image.append(kMagic, sizeof kMagic);
  append_u32(image, kFormatVersion);
  append_u32(image, 0);  // flags
  append_u64(image, records.size());
  append_u64(image, index_offset);
  append_u64(image, slots);
  append_u64(image, payload_offset);
  append_u64(image, file_size);
  append_u32(image, crc32(std::string_view(image.data(), 56)));
  append_u32(image, 0);  // reserved padding
  for (const auto& [fp, offset] : index) {
    append_u64(image, fp);
    append_u64(image, offset);
  }
  image += payload;
  return image;
}

void write_store_file(const std::string& path, const std::vector<Record>& records) {
  const std::string image = encode_store(records);

  // The crash-safety contract drilled by tests/test_resilience.cpp: a crash
  // anywhere before the rename leaves at most a torn `.tmp.*` file behind —
  // the previous snapshot at `path` is untouched and fully readable.
  QRE_FAILPOINT("store.persist.before_write");

  // Unique temp name per process: two engines persisting into the same
  // directory each write their own complete snapshot and race only on the
  // atomic rename — last one wins, neither corrupts the other.
  static std::atomic<std::uint64_t> counter{0};
  const std::string tmp = path + ".tmp." + std::to_string(::getpid()) + "." +
                          std::to_string(counter.fetch_add(1));

  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_EXCL, 0644);
  if (fd < 0) throw_errno("cannot create temp file", tmp);
  // Bounded chunks (not one giant write) give the mid-write failpoint a
  // real torn-write window between syscalls; the cost is negligible.
  constexpr std::size_t kWriteChunk = 64 * 1024;
  std::size_t written = 0;
  while (written < image.size()) {
    if (written > 0) {
      try {
        QRE_FAILPOINT("store.persist.mid_write");
      } catch (...) {
        ::close(fd);
        ::unlink(tmp.c_str());
        throw;
      }
    }
    const std::size_t chunk = std::min(image.size() - written, kWriteChunk);
    const ssize_t n = ::write(fd, image.data() + written, chunk);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      ::unlink(tmp.c_str());
      throw_errno("write failed for", tmp);
    }
    written += static_cast<std::size_t>(n);
  }
  if (::fsync(fd) != 0 || ::close(fd) != 0) {
    ::unlink(tmp.c_str());
    throw_errno("fsync/close failed for", tmp);
  }
  try {
    QRE_FAILPOINT("store.persist.before_rename");
  } catch (...) {
    ::unlink(tmp.c_str());
    throw;
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    ::unlink(tmp.c_str());
    throw_errno("rename failed onto", path);
  }
}

StoreReader::StoreReader(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) throw_errno("cannot open", path);
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    throw_errno("cannot stat", path);
  }
  size_ = static_cast<std::size_t>(st.st_size);
  if (size_ > 0) {
    void* mapping = ::mmap(nullptr, size_, PROT_READ, MAP_PRIVATE, fd, 0);
    if (mapping != MAP_FAILED) {
      data_ = static_cast<const char*>(mapping);
      mapped_ = true;
    }
  }
  if (!mapped_) {
    // Empty file or a filesystem without mmap: fall back to a plain read.
    owned_.resize(size_);
    std::size_t got = 0;
    while (got < size_) {
      const ssize_t n = ::read(fd, owned_.data() + got, size_ - got);
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) break;
      got += static_cast<std::size_t>(n);
    }
    if (got != size_) {
      ::close(fd);
      throw_errno("short read of", path);
    }
    data_ = owned_.data();
  }
  ::close(fd);
  try {
    header_ = parse_header(image());
  } catch (...) {
    if (mapped_) ::munmap(const_cast<char*>(data_), size_);
    throw;
  }
}

StoreReader::~StoreReader() {
  if (mapped_) ::munmap(const_cast<char*>(data_), size_);
}

bool StoreReader::read_record(std::uint64_t offset, std::string_view& key,
                              std::string_view& value) const {
  if (offset < header_.payload_offset || offset + kRecordHeaderSize > size_) return false;
  const auto* bytes = reinterpret_cast<const unsigned char*>(data_ + offset);
  const std::uint64_t key_len = read_u32(bytes);
  const std::uint64_t value_len = read_u32(bytes + 4);
  const std::uint32_t stored_crc = read_u32(bytes + 8);
  if (key_len + value_len > size_ - offset - kRecordHeaderSize) return false;
  const std::string_view body(data_ + offset + kRecordHeaderSize, key_len + value_len);
  if (crc32(body) != stored_crc) return false;
  key = body.substr(0, key_len);
  value = body.substr(key_len);
  return true;
}

std::optional<std::string> StoreReader::lookup(std::string_view needle) const {
  const std::uint64_t fp = fingerprint(needle);
  const std::uint64_t mask = header_.slot_count - 1;
  std::uint64_t slot = fp & mask;
  for (std::uint64_t probes = 0; probes < header_.slot_count; ++probes) {
    const auto* bytes =
        reinterpret_cast<const unsigned char*>(data_ + header_.index_offset + slot * kSlotSize);
    const std::uint64_t slot_fp = read_u64(bytes);
    const std::uint64_t offset = read_u64(bytes + 8);
    if (offset == 0) return std::nullopt;  // empty slot terminates the probe
    if (slot_fp == fp) {
      std::string_view key, value;
      if (!read_record(offset, key, value)) {
        corrupt_skipped_.fetch_add(1);
      } else if (key == needle) {
        return std::string(value);
      }
      // Fingerprint collision (or corrupt record): keep probing.
    }
    slot = (slot + 1) & mask;
  }
  return std::nullopt;
}

std::size_t StoreReader::for_each(
    const std::function<void(std::string_view key, std::string_view value)>& fn) const {
  // Walk index slots, then visit records in payload (insertion) order so
  // dump/merge/gc observe oldest-first.
  std::vector<std::uint64_t> offsets;
  offsets.reserve(header_.record_count);
  for (std::uint64_t slot = 0; slot < header_.slot_count; ++slot) {
    const auto* bytes =
        reinterpret_cast<const unsigned char*>(data_ + header_.index_offset + slot * kSlotSize);
    const std::uint64_t offset = read_u64(bytes + 8);
    if (offset != 0) offsets.push_back(offset);
  }
  std::sort(offsets.begin(), offsets.end());
  std::size_t skipped = 0;
  for (std::uint64_t offset : offsets) {
    std::string_view key, value;
    if (read_record(offset, key, value)) {
      fn(key, value);
    } else {
      ++skipped;
    }
  }
  return skipped;
}

std::size_t read_store_records(const std::string& path, std::vector<Record>& out) {
  StoreReader reader(path);
  return reader.for_each([&out](std::string_view key, std::string_view value) {
    out.push_back({std::string(key), std::string(value)});
  });
}

std::size_t merge_store_files(const std::vector<std::string>& inputs,
                              const std::string& output) {
  std::vector<Record> records;
  for (const std::string& input : inputs) {
    read_store_records(input, records);
  }
  dedupe_records(records);
  write_store_file(output, records);
  return records.size();
}

std::size_t gc_store_file(const std::string& input, const std::string& output,
                          std::uint64_t max_bytes) {
  std::vector<Record> records;
  read_store_records(input, records);
  dedupe_records(records);

  std::uint64_t payload = 0;
  for (const Record& r : records) payload += encoded_record_size(r);

  // Drop oldest-first until the encoded file fits. An empty store still
  // costs header + minimum index, so very small bounds floor there.
  std::size_t first = 0;
  std::uint64_t kept = records.size();
  while (kept > 0 && encoded_store_size(kept, payload) > max_bytes) {
    payload -= encoded_record_size(records[first]);
    ++first;
    --kept;
  }
  records.erase(records.begin(), records.begin() + static_cast<std::ptrdiff_t>(first));
  write_store_file(output, records);
  return records.size();
}

void ensure_directory(const std::string& dir) {
  if (dir.empty()) throw Error("store: cache directory path is empty");
  // Walk the path left to right, creating each missing component.
  std::size_t pos = 0;
  while (pos != std::string::npos) {
    pos = dir.find('/', pos + 1);
    const std::string prefix = pos == std::string::npos ? dir : dir.substr(0, pos);
    if (prefix.empty() || prefix == "/" || prefix == ".") continue;
    if (::mkdir(prefix.c_str(), 0755) != 0 && errno != EEXIST) {
      throw_errno("cannot create directory", prefix);
    }
  }
  struct stat st{};
  if (::stat(dir.c_str(), &st) != 0 || !S_ISDIR(st.st_mode)) {
    throw Error("store: '" + dir + "' is not a directory");
  }
}

}  // namespace qre::store
