// On-disk format of the persistent estimate store (low-level layer).
//
// A store file maps 64-bit job fingerprints to checksummed result blobs in
// a layout a reader can mmap and answer one lookup from without parsing the
// whole file:
//
//   offset  size  field
//   ------  ----  -----------------------------------------------------
//        0     8  magic "QREstor\n"
//        8     4  format version (u32, little-endian; readers reject
//                 versions they do not understand)
//       12     4  flags (u32, reserved; must be 0 in version 1)
//       16     8  record count (u64)
//       24     8  index offset (u64, bytes from file start)
//       32     8  index slot count (u64, power of two)
//       40     8  payload offset (u64)
//       48     8  total file size (u64; truncation detector)
//       56     4  CRC32 of header bytes [0, 56)
//       60     4  reserved padding (0)
//       64        index: slot_count x { fingerprint u64, offset u64 }
//                 (offset 0 = empty slot; linear probing)
//       ...      payload: records, each
//                 { key_len u32, value_len u32, crc u32 of key||value,
//                   key bytes, value bytes }
//
// Keys are canonical job serializations (service::canonical_key); values
// are compact result-document dumps. The full key is stored with every
// record so a 64-bit fingerprint collision degrades to a probe step, never
// a wrong result. All integers are little-endian; the encoder writes
// explicitly byte-by-byte so the format is portable across hosts.
//
// Versioning policy (docs/store.md): bump kFormatVersion on any layout
// change; readers reject other versions cleanly (the caller degrades to a
// cold start) rather than guessing. Flags are reserved for forward-
// compatible hints; version-1 readers require 0.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace qre::store {

/// First eight bytes of every store file.
inline constexpr char kMagic[8] = {'Q', 'R', 'E', 's', 't', 'o', 'r', '\n'};

/// Current format version; see the versioning policy above.
inline constexpr std::uint32_t kFormatVersion = 1;

/// Fixed header size in bytes (index follows immediately).
inline constexpr std::size_t kHeaderSize = 64;

/// Bytes per index slot: fingerprint (u64) + payload offset (u64).
inline constexpr std::size_t kSlotSize = 16;

/// Per-record framing overhead: key_len + value_len + crc (3 x u32).
inline constexpr std::size_t kRecordHeaderSize = 12;

/// Conventional file name inside a --cache-dir.
inline constexpr const char* kStoreFileName = "estimates.qrestore";

/// CRC-32 (IEEE 802.3 polynomial, the zlib crc32) of `data`.
std::uint32_t crc32(std::string_view data);

/// FNV-1a 64-bit fingerprint of a canonical job key.
std::uint64_t fingerprint(std::string_view key);

/// Smallest power of two >= max(8, 2 * records): open-addressing table
/// size, keeping the load factor at or below one half.
std::uint64_t index_slot_count(std::uint64_t records);

/// Little-endian scalar append/read helpers shared by encoder and reader.
void append_u32(std::string& out, std::uint32_t v);
void append_u64(std::string& out, std::uint64_t v);
std::uint32_t read_u32(const unsigned char* p);
std::uint64_t read_u64(const unsigned char* p);

/// Parsed, validated header of a store image.
struct Header {
  std::uint32_t version = 0;
  std::uint32_t flags = 0;
  std::uint64_t record_count = 0;
  std::uint64_t index_offset = 0;
  std::uint64_t slot_count = 0;
  std::uint64_t payload_offset = 0;
  std::uint64_t file_size = 0;
};

/// Validates the fixed header of `image` (magic, version, CRC, size and
/// bound consistency). Throws qre::Error describing the first problem; the
/// error code distinguishes bad-magic / bad-version / truncation / CRC so
/// tooling can report why a store was rejected.
Header parse_header(std::string_view image);

}  // namespace qre::store
