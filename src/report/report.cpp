#include "report/report.hpp"

#include <cmath>
#include <sstream>

#include "common/format.hpp"

namespace qre {

const std::vector<std::string>& estimator_assumptions() {
  static const std::vector<std::string> kAssumptions = {
      "Uniform, independent physical noise at the specified rates.",
      "Planar quantum ISA: 2D nearest-neighbor connectivity with alternating "
      "algorithmic and auxiliary logical qubit rows; program connectivity is "
      "not analyzed to reduce the layout overhead.",
      "Logical error rate model P(d) = a * (p/p*)^((d+1)/2).",
      "Each CCZ/CCiX consumes 4 T states and 3 logical cycles; T gates and "
      "measurements take 1 logical cycle each.",
      "Arbitrary rotations are synthesized with ceil(0.53*log2(R/eps) + 5.3) "
      "T gates per rotation.",
      "T factories run in parallel with the algorithm and rounds reuse "
      "qubits; unit failures are handled in expectation.",
      "Distillation unit footprints are the reconstructed defaults described "
      "in DESIGN.md.",
  };
  return kAssumptions;
}

json::Value report_to_json(const ResourceEstimate& e) {
  json::Object root;

  json::Object physical;
  physical.emplace_back("physicalQubits", e.total_physical_qubits);
  physical.emplace_back("runtime", e.runtime_ns);
  physical.emplace_back("rqops", e.rqops);
  root.emplace_back("physicalCounts", json::Value(std::move(physical)));

  json::Object breakdown;
  breakdown.emplace_back("algorithmicLogicalQubits", e.algorithmic_logical_qubits);
  breakdown.emplace_back("algorithmicLogicalDepth", e.algorithmic_logical_depth);
  breakdown.emplace_back("logicalDepth", e.logical_depth);
  breakdown.emplace_back("logicalDepthFactor", e.logical_depth_factor);
  breakdown.emplace_back("numTstates", e.num_tstates);
  breakdown.emplace_back("numTfactories", e.num_t_factories);
  breakdown.emplace_back("numTfactoryRuns", e.num_t_factory_invocations);
  breakdown.emplace_back("numInvocationsPerTfactory", e.num_invocations_per_factory);
  breakdown.emplace_back("physicalQubitsForAlgorithm", e.physical_qubits_for_algorithm);
  breakdown.emplace_back("physicalQubitsForTfactories", e.physical_qubits_for_tfactories);
  breakdown.emplace_back("requiredLogicalQubitErrorRate", e.required_logical_qubit_error_rate);
  breakdown.emplace_back("requiredTstateErrorRate", e.required_tstate_error_rate);
  breakdown.emplace_back("numTsPerRotation", e.num_ts_per_rotation);
  breakdown.emplace_back("clockFrequency", e.clock_frequency_hz);
  breakdown.emplace_back("logicalOperations", e.logical_operations);
  root.emplace_back("physicalCountsBreakdown", json::Value(std::move(breakdown)));

  root.emplace_back("logicalQubit", e.logical_qubit.to_json());
  if (e.tfactory.has_value()) {
    root.emplace_back("tfactory", e.tfactory->to_json());
  } else {
    root.emplace_back("tfactory", json::Value(nullptr));
  }
  root.emplace_back("logicalCounts", e.pre_layout.to_json());

  json::Object budget;
  budget.emplace_back("logical", e.budget.logical);
  budget.emplace_back("tstates", e.budget.tstates);
  budget.emplace_back("rotations", e.budget.rotations);
  budget.emplace_back("achievedLogical", e.achieved_logical_error);
  budget.emplace_back("achievedTstates", e.achieved_tstate_error);
  root.emplace_back("errorBudget", json::Value(std::move(budget)));

  root.emplace_back("physicalQubitParameters", e.qubit.to_json());
  root.emplace_back("qecScheme", e.qec.to_json());

  json::Array assumptions;
  for (const std::string& a : estimator_assumptions()) assumptions.emplace_back(a);
  root.emplace_back("assumptions", json::Value(std::move(assumptions)));

  return json::Value(std::move(root));
}

std::string report_to_text(const ResourceEstimate& e) {
  std::ostringstream os;
  os << "=== Physical resource estimates ===\n";
  os << "  Physical qubits:           " << format_count(e.total_physical_qubits) << "\n";
  os << "  Runtime:                   " << format_duration_ns(e.runtime_ns) << "\n";
  os << "  rQOPS:                     " << format_sci(e.rqops) << "\n";

  os << "=== Resource estimates breakdown ===\n";
  os << "  Logical qubits (layout):   " << format_count(e.algorithmic_logical_qubits) << "\n";
  os << "  Algorithmic depth:         " << format_count(e.algorithmic_logical_depth) << "\n";
  os << "  Logical depth:             " << format_count(e.logical_depth) << "\n";
  os << "  Logical operations:        " << format_sci(e.logical_operations) << "\n";
  os << "  Clock frequency:           " << format_sci(e.clock_frequency_hz) << " Hz\n";
  os << "  T states:                  " << format_count(e.num_tstates) << "\n";
  os << "  T factories:               " << format_count(e.num_t_factories) << "\n";
  os << "  T factory runs:            " << format_count(e.num_t_factory_invocations) << "\n";
  os << "  Qubits (algorithm):        " << format_count(e.physical_qubits_for_algorithm) << "\n";
  os << "  Qubits (T factories):      " << format_count(e.physical_qubits_for_tfactories)
     << "\n";
  if (e.num_ts_per_rotation > 0) {
    os << "  T states per rotation:     " << e.num_ts_per_rotation << "\n";
  }

  os << "=== Logical qubit parameters ===\n";
  os << "  QEC scheme:                " << e.qec.name() << "\n";
  os << "  Code distance:             " << e.logical_qubit.code_distance << "\n";
  os << "  Physical qubits/logical:   " << format_count(e.logical_qubit.physical_qubits)
     << "\n";
  os << "  Logical cycle time:        " << format_duration_ns(e.logical_qubit.cycle_time_ns)
     << "\n";
  os << "  Logical error rate:        " << format_sci(e.logical_qubit.logical_error_rate)
     << "\n";

  if (e.tfactory.has_value() && !e.tfactory->no_distillation()) {
    const TFactory& f = *e.tfactory;
    os << "=== T factory parameters ===\n";
    os << "  Rounds:                    " << f.rounds.size() << "\n";
    for (std::size_t i = 0; i < f.rounds.size(); ++i) {
      const DistillationRound& r = f.rounds[i];
      os << "    round " << (i + 1) << ": " << r.unit_name << " x" << r.num_units
         << (r.physical ? " [physical]" : " [d=" + std::to_string(r.code_distance) + "]")
         << ", " << format_count(r.physical_qubits) << " qubits, "
         << format_duration_ns(r.duration_ns) << "\n";
    }
    os << "  Factory qubits:            " << format_count(f.physical_qubits) << "\n";
    os << "  Factory duration:          " << format_duration_ns(f.duration_ns) << "\n";
    os << "  Output T error rate:       " << format_sci(f.output_error_rate) << "\n";
  }

  os << "=== Pre-layout logical resources ===\n";
  os << "  Logical qubits (pre):      " << format_count(e.pre_layout.num_qubits) << "\n";
  os << "  T gates:                   " << format_count(e.pre_layout.t_count) << "\n";
  os << "  Rotation gates:            " << format_count(e.pre_layout.rotation_count) << "\n";
  os << "  Rotation depth:            " << format_count(e.pre_layout.rotation_depth) << "\n";
  os << "  CCZ gates:                 " << format_count(e.pre_layout.ccz_count) << "\n";
  os << "  CCiX gates:                " << format_count(e.pre_layout.ccix_count) << "\n";
  os << "  Measurements:              " << format_count(e.pre_layout.measurement_count) << "\n";

  os << "=== Assumed error budget ===\n";
  os << "  Logical:                   " << format_sci(e.budget.logical) << " (achieved "
     << format_sci(e.achieved_logical_error) << ")\n";
  os << "  T states:                  " << format_sci(e.budget.tstates) << " (achieved "
     << format_sci(e.achieved_tstate_error) << ")\n";
  os << "  Rotation synthesis:        " << format_sci(e.budget.rotations) << "\n";

  os << "=== Physical qubit parameters ===\n";
  os << "  Model:                     " << e.qubit.name << " ("
     << to_string(e.qubit.instruction_set) << ")\n";
  os << "  Clifford error rate:       " << format_sci(e.qubit.clifford_error_rate()) << "\n";
  os << "  T gate error rate:         " << format_sci(e.qubit.t_gate_error_rate) << "\n";
  return os.str();
}

std::string space_diagram(const ResourceEstimate& e) {
  std::ostringstream os;
  double total = static_cast<double>(e.total_physical_qubits);
  double alg = static_cast<double>(e.physical_qubits_for_algorithm);
  double fac = static_cast<double>(e.physical_qubits_for_tfactories);
  int alg_cells = total > 0 ? static_cast<int>(std::lround(40.0 * alg / total)) : 0;
  os << "physical qubits: " << format_count(e.total_physical_qubits) << "\n";
  os << "[";
  for (int i = 0; i < 40; ++i) os << (i < alg_cells ? '#' : '.');
  os << "]\n";
  os << "# algorithm   " << format_count(e.physical_qubits_for_algorithm) << " ("
     << format_sci(total > 0 ? 100.0 * alg / total : 0.0, 3) << "%)\n";
  os << ". T factories " << format_count(e.physical_qubits_for_tfactories) << " ("
     << format_sci(total > 0 ? 100.0 * fac / total : 0.0, 3) << "%)\n";
  return os.str();
}

}  // namespace qre
