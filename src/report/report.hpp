// Result reporting (paper Section IV-D).
//
// Renders a ResourceEstimate into the tool's eight output groups:
//   1. physical resource estimates (runtime, rQOPS, physical qubits),
//   2. resource estimates breakdown,
//   3. logical qubit parameters,
//   4. T factory parameters,
//   5. pre-layout logical resources,
//   6. assumed error budget,
//   7. physical qubit parameters,
//   8. assumptions.
// Output is available as JSON (the service response shape) and as a
// human-readable text report; space_diagram() summarizes the physical qubit
// split between algorithm and T factories.
#pragma once

#include <string>

#include "core/estimator.hpp"
#include "json/json.hpp"

namespace qre {

json::Value report_to_json(const ResourceEstimate& estimate);
std::string report_to_text(const ResourceEstimate& estimate);
std::string space_diagram(const ResourceEstimate& estimate);

/// The fixed list of modeling assumptions (output group 8).
const std::vector<std::string>& estimator_assumptions();

}  // namespace qre
