#include "tfactory/tfactory.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/math.hpp"

namespace qre {

double TFactory::normalized_volume() const {
  if (no_distillation()) return 0.0;
  QRE_ASSERT(tstates_per_invocation > 0.0);
  return static_cast<double>(physical_qubits) * (duration_ns * 1e-9) / tstates_per_invocation;
}

json::Value TFactory::to_json() const {
  json::Object o;
  o.emplace_back("numRounds", static_cast<std::uint64_t>(rounds.size()));
  json::Array names, distances, units, qubits, durations, failures, errors;
  for (const DistillationRound& r : rounds) {
    names.emplace_back(r.unit_name + (r.physical ? " (physical)" : " (logical)"));
    distances.emplace_back(r.code_distance);
    units.emplace_back(r.num_units);
    qubits.emplace_back(r.physical_qubits);
    durations.emplace_back(r.duration_ns);
    failures.emplace_back(r.failure_probability);
    errors.emplace_back(r.output_error_rate);
  }
  o.emplace_back("unitNamePerRound", std::move(names));
  o.emplace_back("codeDistancePerRound", std::move(distances));
  o.emplace_back("numUnitsPerRound", std::move(units));
  o.emplace_back("physicalQubitsPerRound", std::move(qubits));
  o.emplace_back("runtimePerRound", std::move(durations));
  o.emplace_back("failureProbabilityPerRound", std::move(failures));
  o.emplace_back("outputErrorRatePerRound", std::move(errors));
  o.emplace_back("physicalQubits", physical_qubits);
  o.emplace_back("runtime", duration_ns);
  o.emplace_back("inputTErrorRate", input_t_error_rate);
  o.emplace_back("outputTErrorRate", output_error_rate);
  o.emplace_back("tstatesPerInvocation", tstates_per_invocation);
  return json::Value(std::move(o));
}

namespace {

/// One candidate round configuration prior to unit-count assignment.
struct RoundChoice {
  const DistillationUnit* unit = nullptr;
  bool physical = false;
  std::uint64_t code_distance = 0;
};

/// Evaluates a full pipeline; returns nullopt when any round is infeasible
/// (failure probability too high, not error-reducing) or the final error
/// misses the requirement.
std::optional<TFactory> evaluate_pipeline(const std::vector<RoundChoice>& choices,
                                          double required_output_error,
                                          const QubitParams& qubit, const QecScheme& scheme,
                                          const TFactoryOptions& options) {
  TFactory factory;
  factory.input_t_error_rate = qubit.t_gate_error_rate;

  double input_error = qubit.t_gate_error_rate;
  for (const RoundChoice& choice : choices) {
    const DistillationUnit& unit = *choice.unit;
    DistillationRound round;
    round.unit_name = unit.name;
    round.physical = choice.physical;
    round.code_distance = choice.code_distance;

    double clifford_error;
    double readout_error;
    if (choice.physical) {
      clifford_error = qubit.clifford_error_rate();
      readout_error = qubit.readout_error_rate();
      Environment env = qec_formula_environment(qubit, /*code_distance=*/1);
      round.duration_ns = unit.duration_at_physical_ns.evaluate(env);
      round.physical_qubits_per_unit = unit.physical_qubits_at_physical;
    } else {
      clifford_error =
          scheme.logical_error_rate(qubit.clifford_error_rate(), choice.code_distance);
      readout_error = clifford_error;
      double cycle = scheme.logical_cycle_time_ns(qubit, choice.code_distance);
      round.duration_ns = static_cast<double>(unit.duration_in_logical_cycles) * cycle;
      round.physical_qubits_per_unit =
          unit.logical_qubits_at_logical *
          scheme.physical_qubits_per_logical_qubit(choice.code_distance);
    }

    DistillationOutcome outcome = evaluate_unit(unit, input_error, clifford_error, readout_error);
    if (outcome.failure_probability >= options.max_round_failure_probability) {
      return std::nullopt;
    }
    if (outcome.output_error_rate >= input_error) return std::nullopt;  // not error-reducing

    round.failure_probability = outcome.failure_probability;
    round.output_error_rate = outcome.output_error_rate;
    factory.rounds.push_back(std::move(round));
    input_error = outcome.output_error_rate;
  }

  factory.output_error_rate = input_error;
  if (factory.output_error_rate > required_output_error) return std::nullopt;

  // Assign unit counts top-down: the final round runs one unit; each earlier
  // round must produce the next round's inputs in expectation.
  const std::size_t n = factory.rounds.size();
  factory.rounds[n - 1].num_units = 1;
  for (std::size_t r = n - 1; r-- > 0;) {
    const DistillationRound& next = factory.rounds[r + 1];
    double inputs_needed = static_cast<double>(next.num_units) *
                           static_cast<double>(choices[r + 1].unit->num_input_ts);
    double per_unit = static_cast<double>(choices[r].unit->num_output_ts) *
                      (1.0 - factory.rounds[r].failure_probability);
    factory.rounds[r].num_units = ceil_to_u64(inputs_needed / per_unit);
  }

  for (DistillationRound& round : factory.rounds) {
    round.physical_qubits = round.num_units * round.physical_qubits_per_unit;
    factory.physical_qubits = std::max(factory.physical_qubits, round.physical_qubits);
    factory.duration_ns += round.duration_ns;
  }
  factory.tstates_per_invocation =
      static_cast<double>(choices[n - 1].unit->num_output_ts) *
      (1.0 - factory.rounds[n - 1].failure_probability);
  if (factory.tstates_per_invocation < 0.1) return std::nullopt;
  return factory;
}

/// Recursively enumerates pipelines, invoking `visit` on each feasible one.
template <typename Visitor>
void enumerate(std::vector<RoundChoice>& current, std::size_t rounds_left,
               std::uint64_t min_distance, const std::vector<DistillationUnit>& units,
               const TFactoryOptions& options, Visitor&& visit) {
  if (!current.empty()) visit(current);
  if (rounds_left == 0) return;
  for (const DistillationUnit& unit : units) {
    if (current.empty() && unit.allow_physical) {
      current.push_back({&unit, /*physical=*/true, 0});
      enumerate(current, rounds_left - 1, options.min_code_distance, units, options, visit);
      current.pop_back();
    }
    if (unit.allow_logical) {
      for (std::uint64_t d = next_odd(min_distance); d <= options.max_code_distance; d += 2) {
        current.push_back({&unit, /*physical=*/false, d});
        enumerate(current, rounds_left - 1, d, units, options, visit);
        current.pop_back();
      }
    }
  }
}

}  // namespace

std::optional<TFactory> design_tfactory(double required_output_error, const QubitParams& qubit,
                                        const QecScheme& scheme,
                                        const std::vector<DistillationUnit>& units,
                                        const TFactoryOptions& options) {
  QRE_REQUIRE(required_output_error > 0.0, "required T-state error rate must be positive");
  if (qubit.t_gate_error_rate <= required_output_error) {
    TFactory raw;
    raw.input_t_error_rate = qubit.t_gate_error_rate;
    raw.output_error_rate = qubit.t_gate_error_rate;
    raw.tstates_per_invocation = 1.0;
    return raw;
  }
  QRE_REQUIRE(!units.empty(), "T-factory design requires at least one distillation unit");

  std::optional<TFactory> best;
  auto better = [&options](const TFactory& a, const TFactory& b) {
    switch (options.objective) {
      case TFactoryOptions::Objective::kMinQubits:
        if (a.physical_qubits != b.physical_qubits) {
          return a.physical_qubits < b.physical_qubits;
        }
        return a.duration_ns < b.duration_ns;
      case TFactoryOptions::Objective::kMinDuration:
        if (a.duration_ns != b.duration_ns) return a.duration_ns < b.duration_ns;
        return a.physical_qubits < b.physical_qubits;
      case TFactoryOptions::Objective::kMinVolume:
      default:
        return a.normalized_volume() < b.normalized_volume();
    }
  };

  std::vector<RoundChoice> current;
  enumerate(current, options.max_rounds, options.min_code_distance, units, options,
            [&](const std::vector<RoundChoice>& choices) {
              std::optional<TFactory> candidate =
                  evaluate_pipeline(choices, required_output_error, qubit, scheme, options);
              if (candidate.has_value() && (!best.has_value() || better(*candidate, *best))) {
                best = std::move(candidate);
              }
            });
  return best;
}

std::vector<TFactory> tfactory_pareto_frontier(double required_output_error,
                                               const QubitParams& qubit,
                                               const QecScheme& scheme,
                                               const std::vector<DistillationUnit>& units,
                                               const TFactoryOptions& options) {
  std::vector<TFactory> feasible;
  std::vector<RoundChoice> current;
  enumerate(current, options.max_rounds, options.min_code_distance, units, options,
            [&](const std::vector<RoundChoice>& choices) {
              std::optional<TFactory> candidate =
                  evaluate_pipeline(choices, required_output_error, qubit, scheme, options);
              if (candidate.has_value()) feasible.push_back(std::move(*candidate));
            });
  // Pareto filter on (physical_qubits, duration).
  std::sort(feasible.begin(), feasible.end(), [](const TFactory& a, const TFactory& b) {
    if (a.physical_qubits != b.physical_qubits) return a.physical_qubits < b.physical_qubits;
    return a.duration_ns < b.duration_ns;
  });
  std::vector<TFactory> frontier;
  double best_duration = std::numeric_limits<double>::infinity();
  for (TFactory& f : feasible) {
    if (f.duration_ns < best_duration) {
      best_duration = f.duration_ns;
      frontier.push_back(std::move(f));
    }
  }
  return frontier;
}

}  // namespace qre
