#include "tfactory/tfactory.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <unordered_map>

#include "common/error.hpp"
#include "common/math.hpp"
#include "common/trace.hpp"

namespace qre {

double TFactory::normalized_volume() const {
  if (no_distillation()) return 0.0;
  QRE_ASSERT(tstates_per_invocation > 0.0);
  return static_cast<double>(physical_qubits) * (duration_ns * 1e-9) / tstates_per_invocation;
}

json::Value TFactory::to_json() const {
  json::Object o;
  o.emplace_back("numRounds", static_cast<std::uint64_t>(rounds.size()));
  json::Array names, distances, units, qubits, durations, failures, errors;
  for (const DistillationRound& r : rounds) {
    names.emplace_back(r.unit_name + (r.physical ? " (physical)" : " (logical)"));
    distances.emplace_back(r.code_distance);
    units.emplace_back(r.num_units);
    qubits.emplace_back(r.physical_qubits);
    durations.emplace_back(r.duration_ns);
    failures.emplace_back(r.failure_probability);
    errors.emplace_back(r.output_error_rate);
  }
  o.emplace_back("unitNamePerRound", std::move(names));
  o.emplace_back("codeDistancePerRound", std::move(distances));
  o.emplace_back("numUnitsPerRound", std::move(units));
  o.emplace_back("physicalQubitsPerRound", std::move(qubits));
  o.emplace_back("runtimePerRound", std::move(durations));
  o.emplace_back("failureProbabilityPerRound", std::move(failures));
  o.emplace_back("outputErrorRatePerRound", std::move(errors));
  o.emplace_back("physicalQubits", physical_qubits);
  o.emplace_back("runtime", duration_ns);
  o.emplace_back("inputTErrorRate", input_t_error_rate);
  o.emplace_back("outputTErrorRate", output_error_rate);
  o.emplace_back("tstatesPerInvocation", tstates_per_invocation);
  return json::Value(std::move(o));
}

namespace {

/// One candidate round configuration prior to unit-count assignment.
struct RoundChoice {
  const DistillationUnit* unit = nullptr;
  bool physical = false;
  std::uint64_t code_distance = 0;
};

/// Evaluates a full pipeline; returns nullopt when any round is infeasible
/// (failure probability too high, not error-reducing) or the final error
/// misses the requirement.
std::optional<TFactory> evaluate_pipeline(const std::vector<RoundChoice>& choices,
                                          double required_output_error,
                                          const QubitParams& qubit, const QecScheme& scheme,
                                          const TFactoryOptions& options) {
  TFactory factory;
  factory.input_t_error_rate = qubit.t_gate_error_rate;

  double input_error = qubit.t_gate_error_rate;
  for (const RoundChoice& choice : choices) {
    const DistillationUnit& unit = *choice.unit;
    DistillationRound round;
    round.unit_name = unit.name;
    round.physical = choice.physical;
    round.code_distance = choice.code_distance;

    double clifford_error;
    double readout_error;
    if (choice.physical) {
      clifford_error = qubit.clifford_error_rate();
      readout_error = qubit.readout_error_rate();
      Environment env = qec_formula_environment(qubit, /*code_distance=*/1);
      round.duration_ns = unit.duration_at_physical_ns.evaluate(env);
      round.physical_qubits_per_unit = unit.physical_qubits_at_physical;
    } else {
      clifford_error =
          scheme.logical_error_rate(qubit.clifford_error_rate(), choice.code_distance);
      readout_error = clifford_error;
      double cycle = scheme.logical_cycle_time_ns(qubit, choice.code_distance);
      round.duration_ns = static_cast<double>(unit.duration_in_logical_cycles) * cycle;
      round.physical_qubits_per_unit =
          unit.logical_qubits_at_logical *
          scheme.physical_qubits_per_logical_qubit(choice.code_distance);
    }

    DistillationOutcome outcome = evaluate_unit(unit, input_error, clifford_error, readout_error);
    if (outcome.failure_probability >= options.max_round_failure_probability) {
      return std::nullopt;
    }
    if (outcome.output_error_rate >= input_error) return std::nullopt;  // not error-reducing

    round.failure_probability = outcome.failure_probability;
    round.output_error_rate = outcome.output_error_rate;
    factory.rounds.push_back(std::move(round));
    input_error = outcome.output_error_rate;
  }

  factory.output_error_rate = input_error;
  if (factory.output_error_rate > required_output_error) return std::nullopt;

  // Assign unit counts top-down: the final round runs one unit; each earlier
  // round must produce the next round's inputs in expectation.
  const std::size_t n = factory.rounds.size();
  factory.rounds[n - 1].num_units = 1;
  for (std::size_t r = n - 1; r-- > 0;) {
    const DistillationRound& next = factory.rounds[r + 1];
    double inputs_needed = static_cast<double>(next.num_units) *
                           static_cast<double>(choices[r + 1].unit->num_input_ts);
    double per_unit = static_cast<double>(choices[r].unit->num_output_ts) *
                      (1.0 - factory.rounds[r].failure_probability);
    factory.rounds[r].num_units = ceil_to_u64(inputs_needed / per_unit);
  }

  for (DistillationRound& round : factory.rounds) {
    round.physical_qubits = round.num_units * round.physical_qubits_per_unit;
    factory.physical_qubits = std::max(factory.physical_qubits, round.physical_qubits);
    factory.duration_ns += round.duration_ns;
  }
  factory.tstates_per_invocation =
      static_cast<double>(choices[n - 1].unit->num_output_ts) *
      (1.0 - factory.rounds[n - 1].failure_probability);
  if (factory.tstates_per_invocation < 0.1) return std::nullopt;
  return factory;
}

/// Recursively enumerates pipelines, invoking `visit` on each feasible one.
template <typename Visitor>
void enumerate(std::vector<RoundChoice>& current, std::size_t rounds_left,
               std::uint64_t min_distance, const std::vector<DistillationUnit>& units,
               const TFactoryOptions& options, Visitor&& visit) {
  if (!current.empty()) visit(current);
  if (rounds_left == 0) return;
  for (const DistillationUnit& unit : units) {
    if (current.empty() && unit.allow_physical) {
      current.push_back({&unit, /*physical=*/true, 0});
      enumerate(current, rounds_left - 1, options.min_code_distance, units, options, visit);
      current.pop_back();
    }
    if (unit.allow_logical) {
      for (std::uint64_t d = next_odd(min_distance); d <= options.max_code_distance; d += 2) {
        current.push_back({&unit, /*physical=*/false, d});
        enumerate(current, rounds_left - 1, d, units, options, visit);
        current.pop_back();
      }
    }
  }
}

/// Ranks two factories under the active objective; strict ("better than"),
/// so ties keep the first-enumerated candidate.
bool better_factory(const TFactory& a, const TFactory& b, const TFactoryOptions& options) {
  switch (options.objective) {
    case TFactoryOptions::Objective::kMinQubits:
      if (a.physical_qubits != b.physical_qubits) {
        return a.physical_qubits < b.physical_qubits;
      }
      return a.duration_ns < b.duration_ns;
    case TFactoryOptions::Objective::kMinDuration:
      if (a.duration_ns != b.duration_ns) return a.duration_ns < b.duration_ns;
      return a.physical_qubits < b.physical_qubits;
    case TFactoryOptions::Objective::kMinVolume:
    default:
      return a.normalized_volume() < b.normalized_volume();
  }
}

// ---------------------------------------------------------------------------
// Pruned branch-and-bound search.
//
// The brute-force enumeration above re-evaluates every pipeline prefix from
// scratch at every tree node. The pruned search walks the same tree in the
// same order but (a) evaluates each round once, incrementally, on top of its
// parent prefix, (b) precomputes every per-distance quantity (logical error,
// cycle time, patch footprint, unit durations) before the walk, (c) memoizes
// unit-formula evaluations per (unit, level, input error), (d) abandons a
// subtree as soon as one round is infeasible (every extension repeats that
// round, so the whole subtree is infeasible), and (e) abandons a subtree
// when a lower bound on the cost of any completion is already strictly worse
// than the incumbent best for the active objective.
//
// The bounds are: duration >= the prefix's duration sum (rounds only add
// time); physical qubits >= the widest per-unit footprint in the prefix
// (every round runs at least one unit); tstates_per_invocation <= the
// largest output count any unit offers. Pruning only on *strictly* worse
// bounds preserves the brute force's first-wins tie-breaking, so both
// searches return bit-identical factories.
// ---------------------------------------------------------------------------

/// One evaluated candidate round in the DFS stack.
struct SearchRound {
  std::uint32_t unit_index = 0;
  std::uint32_t level = 0;  // 0 = physical, 1 + di = logical at distances[di]
  double duration_ns = 0.0;
  std::uint64_t qubits_per_unit = 0;
  double failure_probability = 0.0;
  double output_error_rate = 0.0;
};

struct RoundEvalKey {
  std::uint32_t unit_index;
  std::uint32_t level;
  std::uint64_t input_bits;  // bit pattern of the input error rate
  bool operator==(const RoundEvalKey& o) const {
    return unit_index == o.unit_index && level == o.level && input_bits == o.input_bits;
  }
};

struct RoundEvalKeyHash {
  std::size_t operator()(const RoundEvalKey& k) const {
    std::uint64_t h = k.input_bits;
    h ^= (static_cast<std::uint64_t>(k.unit_index) << 32) ^ k.level;
    h *= 0x9e3779b97f4a7c15ull;
    return static_cast<std::size_t>(h ^ (h >> 32));
  }
};

struct RoundEval {
  double failure_probability = 0.0;
  double output_error_rate = 0.0;
  bool feasible = false;
};

class PrunedSearch {
 public:
  PrunedSearch(double required_output_error, const QubitParams& qubit, const QecScheme& scheme,
               const std::vector<DistillationUnit>& units, const TFactoryOptions& options)
      : required_(required_output_error), qubit_(qubit), units_(units), options_(options) {
    for (std::uint64_t d = next_odd(options.min_code_distance); d <= options.max_code_distance;
         d += 2) {
      distances_.push_back(d);
    }
    const double physical_error = qubit.clifford_error_rate();
    const std::size_t nd = distances_.size();
    logical_clifford_error_.reserve(nd);
    cycle_ns_.reserve(nd);
    for (std::uint64_t d : distances_) {
      logical_clifford_error_.push_back(scheme.logical_error_rate(physical_error, d));
      cycle_ns_.push_back(scheme.logical_cycle_time_ns(qubit, d));
    }
    physical_clifford_error_ = physical_error;
    physical_readout_error_ = qubit.readout_error_rate();

    levels_.resize(units.size());
    max_output_ts_ = 0.0;
    for (std::size_t u = 0; u < units.size(); ++u) {
      const DistillationUnit& unit = units[u];
      max_output_ts_ = std::max(max_output_ts_, static_cast<double>(unit.num_output_ts));
      UnitLevels& lv = levels_[u];
      if (unit.allow_physical) {
        Environment env = qec_formula_environment(qubit, /*code_distance=*/1);
        lv.physical_duration_ns = unit.duration_at_physical_ns.evaluate(env);
      }
      if (unit.allow_logical) {
        lv.logical_duration_ns.reserve(nd);
        lv.logical_qubits_per_unit.reserve(nd);
        for (std::size_t di = 0; di < nd; ++di) {
          lv.logical_duration_ns.push_back(
              static_cast<double>(unit.duration_in_logical_cycles) * cycle_ns_[di]);
          lv.logical_qubits_per_unit.push_back(
              unit.logical_qubits_at_logical *
              scheme.physical_qubits_per_logical_qubit(distances_[di]));
        }
        // Monotone footprints let the distance loop break (not just skip)
        // once a cost bound prunes: every larger distance only costs more.
        lv.monotone = true;
        for (std::size_t di = 1; di < nd; ++di) {
          if (lv.logical_duration_ns[di] < lv.logical_duration_ns[di - 1] ||
              lv.logical_qubits_per_unit[di] < lv.logical_qubits_per_unit[di - 1]) {
            lv.monotone = false;
            break;
          }
        }
      }
    }
  }

  std::optional<TFactory> run() {
    stack_.reserve(options_.max_rounds);
    expand(options_.max_rounds, /*min_distance_index=*/0, qubit_.t_gate_error_rate,
           /*partial_duration=*/0.0, /*qubit_floor=*/0);
    if (!best_rounds_.has_value()) return std::nullopt;
    return materialize(*best_rounds_);
  }

 private:
  struct UnitLevels {
    double physical_duration_ns = 0.0;
    std::vector<double> logical_duration_ns;
    std::vector<std::uint64_t> logical_qubits_per_unit;
    bool monotone = false;
  };

  /// Evaluates a unit's error formulas at one level for one input error —
  /// through evaluate_unit(), so both searches share one implementation —
  /// memoized per (unit, level, input-error-bits).
  const RoundEval& eval_round(std::uint32_t unit_index, std::uint32_t level,
                              double input_error) {
    RoundEvalKey key{unit_index, level, 0};
    static_assert(sizeof(key.input_bits) == sizeof(input_error));
    std::memcpy(&key.input_bits, &input_error, sizeof(input_error));
    auto it = eval_memo_.find(key);
    if (it != eval_memo_.end()) return it->second;

    double clifford_error;
    double readout_error;
    if (level == 0) {
      clifford_error = physical_clifford_error_;
      readout_error = physical_readout_error_;
    } else {
      clifford_error = logical_clifford_error_[level - 1];
      readout_error = clifford_error;
    }
    DistillationOutcome outcome =
        evaluate_unit(units_[unit_index], input_error, clifford_error, readout_error);
    RoundEval eval;
    eval.failure_probability = outcome.failure_probability;
    eval.output_error_rate = outcome.output_error_rate;
    eval.feasible = eval.failure_probability < options_.max_round_failure_probability &&
                    eval.output_error_rate < input_error;
    return eval_memo_.emplace(key, eval).first->second;
  }

  /// True when every completion of the prefix (including the prefix itself
  /// taken as a complete pipeline) is strictly worse than the incumbent.
  bool bound_pruned(double partial_duration, std::uint64_t qubit_floor) const {
    if (!best_rounds_.has_value()) return false;
    switch (options_.objective) {
      case TFactoryOptions::Objective::kMinQubits:
        return qubit_floor > best_qubits_ ||
               (qubit_floor == best_qubits_ && partial_duration > best_duration_);
      case TFactoryOptions::Objective::kMinDuration:
        return partial_duration > best_duration_ ||
               (partial_duration == best_duration_ && qubit_floor > best_qubits_);
      case TFactoryOptions::Objective::kMinVolume:
      default:
        return max_output_ts_ > 0.0 &&
               static_cast<double>(qubit_floor) * (partial_duration * 1e-9) / max_output_ts_ >
                   best_volume_;
    }
  }

  /// Tries to finalize the current stack as a complete pipeline; updates the
  /// incumbent when it wins. Unit counts are assigned top-down exactly as in
  /// evaluate_pipeline().
  void visit(double partial_duration) {
    const std::size_t n = stack_.size();
    if (stack_[n - 1].output_error_rate > required_) return;

    num_units_.resize(n);
    num_units_[n - 1] = 1;
    for (std::size_t r = n - 1; r-- > 0;) {
      double inputs_needed =
          static_cast<double>(num_units_[r + 1]) *
          static_cast<double>(units_[stack_[r + 1].unit_index].num_input_ts);
      double per_unit = static_cast<double>(units_[stack_[r].unit_index].num_output_ts) *
                        (1.0 - stack_[r].failure_probability);
      num_units_[r] = ceil_to_u64(inputs_needed / per_unit);
    }

    std::uint64_t physical_qubits = 0;
    for (std::size_t r = 0; r < n; ++r) {
      physical_qubits = std::max(physical_qubits, num_units_[r] * stack_[r].qubits_per_unit);
    }
    double tstates =
        static_cast<double>(units_[stack_[n - 1].unit_index].num_output_ts) *
        (1.0 - stack_[n - 1].failure_probability);
    if (tstates < 0.1) return;
    double volume =
        static_cast<double>(physical_qubits) * (partial_duration * 1e-9) / tstates;

    bool wins;
    if (!best_rounds_.has_value()) {
      wins = true;
    } else {
      switch (options_.objective) {
        case TFactoryOptions::Objective::kMinQubits:
          wins = physical_qubits != best_qubits_ ? physical_qubits < best_qubits_
                                                 : partial_duration < best_duration_;
          break;
        case TFactoryOptions::Objective::kMinDuration:
          wins = partial_duration != best_duration_ ? partial_duration < best_duration_
                                                    : physical_qubits < best_qubits_;
          break;
        case TFactoryOptions::Objective::kMinVolume:
        default:
          wins = volume < best_volume_;
          break;
      }
    }
    if (wins) {
      best_rounds_ = stack_;
      best_num_units_ = num_units_;
      best_qubits_ = physical_qubits;
      best_duration_ = partial_duration;
      best_volume_ = volume;
      best_tstates_ = tstates;
    }
  }

  /// DFS over round choices, mirroring enumerate()'s visit order: a prefix
  /// is visited before any of its extensions, units in declaration order,
  /// the physical level before logical levels, distances ascending.
  void expand(std::uint64_t rounds_left, std::size_t min_distance_index, double input_error,
              double partial_duration, std::uint64_t qubit_floor) {
    if (!stack_.empty()) visit(partial_duration);
    if (rounds_left == 0) return;
    for (std::uint32_t u = 0; u < units_.size(); ++u) {
      const DistillationUnit& unit = units_[u];
      const UnitLevels& lv = levels_[u];
      if (stack_.empty() && unit.allow_physical) {
        descend(u, /*level=*/0, lv.physical_duration_ns, unit.physical_qubits_at_physical,
                rounds_left, /*child_min_distance_index=*/0, input_error, partial_duration,
                qubit_floor);
      }
      if (unit.allow_logical) {
        for (std::size_t di = min_distance_index; di < distances_.size(); ++di) {
          if (!descend(u, static_cast<std::uint32_t>(1 + di), lv.logical_duration_ns[di],
                       lv.logical_qubits_per_unit[di], rounds_left, di, input_error,
                       partial_duration, qubit_floor) &&
              lv.monotone) {
            break;  // dominated distance prefix: larger d only costs more
          }
        }
      }
    }
  }

  /// Evaluates one child round and recurses into it unless the round is
  /// infeasible (the whole subtree repeats it) or the cost bound prunes.
  /// Returns false exactly when the subtree was cost-pruned, so monotone
  /// distance loops can break early.
  bool descend(std::uint32_t unit_index, std::uint32_t level, double duration_ns,
               std::uint64_t qubits_per_unit, std::uint64_t rounds_left,
               std::size_t child_min_distance_index, double input_error,
               double partial_duration, std::uint64_t qubit_floor) {
    double child_duration = partial_duration + duration_ns;
    std::uint64_t child_floor = std::max(qubit_floor, qubits_per_unit);
    if (bound_pruned(child_duration, child_floor)) return false;
    const RoundEval& eval = eval_round(unit_index, level, input_error);
    if (!eval.feasible) return true;  // dead subtree, but not by cost
    SearchRound round;
    round.unit_index = unit_index;
    round.level = level;
    round.duration_ns = duration_ns;
    round.qubits_per_unit = qubits_per_unit;
    round.failure_probability = eval.failure_probability;
    round.output_error_rate = eval.output_error_rate;
    stack_.push_back(round);
    expand(rounds_left - 1, child_min_distance_index, eval.output_error_rate, child_duration,
           child_floor);
    stack_.pop_back();
    return true;
  }

  /// Builds the full TFactory for the winning pipeline, reproducing
  /// evaluate_pipeline()'s arithmetic (and hence its exact doubles).
  TFactory materialize(const std::vector<SearchRound>& rounds) const {
    TFactory factory;
    factory.input_t_error_rate = qubit_.t_gate_error_rate;
    for (std::size_t r = 0; r < rounds.size(); ++r) {
      const SearchRound& sr = rounds[r];
      DistillationRound round;
      round.unit_name = units_[sr.unit_index].name;
      round.physical = sr.level == 0;
      round.code_distance = sr.level == 0 ? 0 : distances_[sr.level - 1];
      round.num_units = best_num_units_[r];
      round.duration_ns = sr.duration_ns;
      round.failure_probability = sr.failure_probability;
      round.output_error_rate = sr.output_error_rate;
      round.physical_qubits_per_unit = sr.qubits_per_unit;
      round.physical_qubits = round.num_units * round.physical_qubits_per_unit;
      factory.physical_qubits = std::max(factory.physical_qubits, round.physical_qubits);
      factory.duration_ns += round.duration_ns;
      factory.rounds.push_back(std::move(round));
    }
    factory.output_error_rate = rounds.back().output_error_rate;
    factory.tstates_per_invocation = best_tstates_;
    return factory;
  }

  double required_;
  const QubitParams& qubit_;
  const std::vector<DistillationUnit>& units_;
  const TFactoryOptions& options_;

  std::vector<std::uint64_t> distances_;
  std::vector<double> logical_clifford_error_;
  std::vector<double> cycle_ns_;
  std::vector<UnitLevels> levels_;
  double physical_clifford_error_ = 0.0;
  double physical_readout_error_ = 0.0;
  double max_output_ts_ = 0.0;

  std::unordered_map<RoundEvalKey, RoundEval, RoundEvalKeyHash> eval_memo_;

  std::vector<SearchRound> stack_;
  std::vector<std::uint64_t> num_units_;

  std::optional<std::vector<SearchRound>> best_rounds_;
  std::vector<std::uint64_t> best_num_units_;
  std::uint64_t best_qubits_ = 0;
  double best_duration_ = 0.0;
  double best_volume_ = 0.0;
  double best_tstates_ = 0.0;
};

bool exhaustive_search_forced() {
  const char* env = std::getenv("QRE_EXHAUSTIVE_SEARCH");
  return env != nullptr && std::strcmp(env, "0") != 0;
}

}  // namespace

std::optional<TFactory> design_tfactory(double required_output_error, const QubitParams& qubit,
                                        const QecScheme& scheme,
                                        const std::vector<DistillationUnit>& units,
                                        const TFactoryOptions& options) {
  QRE_TRACE_SPAN("tfactory.search");
  QRE_REQUIRE(required_output_error > 0.0, "required T-state error rate must be positive");
  if (qubit.t_gate_error_rate <= required_output_error) {
    TFactory raw;
    raw.input_t_error_rate = qubit.t_gate_error_rate;
    raw.output_error_rate = qubit.t_gate_error_rate;
    raw.tstates_per_invocation = 1.0;
    return raw;
  }
  QRE_REQUIRE(!units.empty(), "T-factory design requires at least one distillation unit");

  if (options.exhaustive || exhaustive_search_forced()) {
    std::optional<TFactory> best;
    std::vector<RoundChoice> current;
    enumerate(current, options.max_rounds, options.min_code_distance, units, options,
              [&](const std::vector<RoundChoice>& choices) {
                std::optional<TFactory> candidate =
                    evaluate_pipeline(choices, required_output_error, qubit, scheme, options);
                if (candidate.has_value() &&
                    (!best.has_value() || better_factory(*candidate, *best, options))) {
                  best = std::move(candidate);
                }
              });
    return best;
  }

  return PrunedSearch(required_output_error, qubit, scheme, units, options).run();
}

std::vector<TFactory> tfactory_pareto_frontier(double required_output_error,
                                               const QubitParams& qubit,
                                               const QecScheme& scheme,
                                               const std::vector<DistillationUnit>& units,
                                               const TFactoryOptions& options) {
  std::vector<TFactory> feasible;
  std::vector<RoundChoice> current;
  enumerate(current, options.max_rounds, options.min_code_distance, units, options,
            [&](const std::vector<RoundChoice>& choices) {
              std::optional<TFactory> candidate =
                  evaluate_pipeline(choices, required_output_error, qubit, scheme, options);
              if (candidate.has_value()) feasible.push_back(std::move(*candidate));
            });
  // Pareto filter on (physical_qubits, duration).
  std::sort(feasible.begin(), feasible.end(), [](const TFactory& a, const TFactory& b) {
    if (a.physical_qubits != b.physical_qubits) return a.physical_qubits < b.physical_qubits;
    return a.duration_ns < b.duration_ns;
  });
  std::vector<TFactory> frontier;
  double best_duration = std::numeric_limits<double>::infinity();
  for (TFactory& f : feasible) {
    if (f.duration_ns < best_duration) {
      best_duration = f.duration_ns;
      frontier.push_back(std::move(f));
    }
  }
  return frontier;
}

}  // namespace qre
