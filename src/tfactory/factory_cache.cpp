#include "tfactory/factory_cache.hpp"

#include <charconv>
#include <cstdlib>
#include <cstring>

#include "common/trace.hpp"

namespace qre {

namespace {

/// Appends an integer in the given base without touching the heap (beyond
/// the buffer's own growth, which amortizes to zero on a reused buffer).
template <typename T>
void append_int(std::string& out, T v, int base = 10) {
  char digits[32];
  const std::to_chars_result r = std::to_chars(digits, digits + sizeof(digits), v, base);
  out.append(digits, r.ptr);
}

/// Appends a double's exact bit pattern (hex), so fingerprints distinguish
/// values that would collide after decimal formatting.
void append_bits(std::string& out, double v) {
  std::uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(v));
  append_int(out, bits, 16);
  out.push_back(';');
}

/// Appends a user-controlled string (unit name, formula text)
/// length-prefixed, so embedded delimiter characters cannot make two
/// distinct problems fingerprint identically.
void append_string(std::string& out, const std::string& s) {
  append_int(out, s.size());
  out.push_back(':');
  out.append(s);
  out.push_back(';');
}

/// Canonical fingerprint of one design problem: the required error and
/// options, then every field of the qubit model, QEC scheme, and units
/// that design_tfactory() can observe (numerics bit-exactly, formulas by
/// source text). Computed on every lookup, so it deliberately avoids JSON
/// serialization and streams — the fingerprint is appended into a reusable
/// buffer with to_chars so a warm lookup allocates nothing. Keep the field
/// lists in sync with the structs.
void fingerprint_into(std::string& out, double required_output_error, const QubitParams& qubit,
                      const QecScheme& scheme, const std::vector<DistillationUnit>& units,
                      const TFactoryOptions& options) {
  out.clear();
  append_bits(out, required_output_error);
  append_int(out, options.max_rounds);
  out.push_back(';');
  append_int(out, options.min_code_distance);
  out.push_back(';');
  append_int(out, options.max_code_distance);
  out.push_back(';');
  append_int(out, static_cast<int>(options.objective));
  out.push_back(';');
  append_int(out, options.exhaustive ? 1 : 0);
  out.push_back(';');
  append_bits(out, options.max_round_failure_probability);

  append_int(out, static_cast<int>(qubit.instruction_set));
  out.push_back(';');
  append_bits(out, qubit.one_qubit_measurement_time_ns);
  append_bits(out, qubit.one_qubit_gate_time_ns);
  append_bits(out, qubit.two_qubit_gate_time_ns);
  append_bits(out, qubit.two_qubit_joint_measurement_time_ns);
  append_bits(out, qubit.t_gate_time_ns);
  append_bits(out, qubit.one_qubit_measurement_error_rate);
  append_bits(out, qubit.one_qubit_gate_error_rate);
  append_bits(out, qubit.two_qubit_gate_error_rate);
  append_bits(out, qubit.two_qubit_joint_measurement_error_rate);
  append_bits(out, qubit.t_gate_error_rate);
  append_bits(out, qubit.idle_error_rate);

  append_bits(out, scheme.threshold());
  append_bits(out, scheme.crossing_prefactor());
  append_string(out, scheme.logical_cycle_time_text());
  append_string(out, scheme.physical_qubits_text());

  for (const DistillationUnit& unit : units) {
    append_string(out, unit.name);
    append_int(out, unit.num_input_ts);
    out.push_back(';');
    append_int(out, unit.num_output_ts);
    out.push_back(';');
    append_int(out, unit.allow_physical ? 1 : 0);
    append_int(out, unit.allow_logical ? 1 : 0);
    out.push_back(';');
    append_string(out, unit.failure_probability.text());
    append_string(out, unit.output_error_rate.text());
    append_int(out, unit.physical_qubits_at_physical);
    out.push_back(';');
    append_string(out, unit.duration_at_physical_ns.text());
    append_int(out, unit.logical_qubits_at_logical);
    out.push_back(';');
    append_int(out, unit.duration_in_logical_cycles);
    out.push_back(';');
  }
}

std::shared_ptr<const TFactory> wrap(std::optional<TFactory> designed) {
  if (!designed.has_value()) return nullptr;
  return std::make_shared<const TFactory>(std::move(*designed));
}

}  // namespace

// A process-level cache is never unbounded (unlike EstimateCache, where
// capacity 0 opts a batch out of eviction), so 0 clamps to the minimum.
FactoryCache::FactoryCache(std::size_t capacity)
    : entries_(capacity == 0 ? 1 : capacity) {}

FactoryCache& FactoryCache::global() {
  static FactoryCache cache;
  static const bool configured = [] {
    const char* env = std::getenv("QRE_NO_FACTORY_CACHE");
    if (env != nullptr && std::strcmp(env, "0") != 0) cache.set_enabled(false);
    return true;
  }();
  (void)configured;
  return cache;
}

std::optional<TFactory> FactoryCache::design(double required_output_error,
                                             const QubitParams& qubit, const QecScheme& scheme,
                                             const std::vector<DistillationUnit>& units,
                                             const TFactoryOptions& options) {
  if (!enabled_.load()) {
    return design_tfactory(required_output_error, qubit, scheme, units, options);
  }
  std::shared_ptr<const TFactory> found =
      design_shared(required_output_error, qubit, scheme, units, options);
  if (found == nullptr) return std::nullopt;
  return *found;
}

std::shared_ptr<const TFactory> FactoryCache::design_shared(
    double required_output_error, const QubitParams& qubit, const QecScheme& scheme,
    const std::vector<DistillationUnit>& units, const TFactoryOptions& options) {
  if (!enabled_.load()) {
    return wrap(design_tfactory(required_output_error, qubit, scheme, units, options));
  }
  // The QRE_EXHAUSTIVE_SEARCH override changes which search runs without
  // changing the options fingerprint; both searches return bit-identical
  // factories, so cached entries stay valid across the toggle.
  thread_local std::string key;
  fingerprint_into(key, required_output_error, qubit, scheme, units, options);
  {
    MutexLock lock(mutex_);
    if (const std::shared_ptr<const TFactory>* found = entries_.find(key)) {
      hits_.fetch_add(1);
      QRE_TRACE_INSTANT("factory.cache.hit");
      return *found;
    }
  }
  misses_.fetch_add(1);
  QRE_TRACE_INSTANT("factory.cache.miss");
  // Design outside the lock: searches take orders of magnitude longer than
  // a map probe, and concurrent misses on the same key just compute the
  // same (deterministic) design twice.
  std::shared_ptr<const TFactory> designed =
      wrap(design_tfactory(required_output_error, qubit, scheme, units, options));
  MutexLock lock(mutex_);
  if (!entries_.contains(key)) {
    evictions_.fetch_add(entries_.insert(key, designed));
  }
  return designed;
}

std::size_t FactoryCache::size() const {
  MutexLock lock(mutex_);
  return entries_.size();
}

void FactoryCache::clear() {
  MutexLock lock(mutex_);
  entries_.clear();
  hits_.store(0);
  misses_.store(0);
  evictions_.store(0);
}

}  // namespace qre
