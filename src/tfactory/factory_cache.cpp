#include "tfactory/factory_cache.hpp"

#include <cstdlib>
#include <cstring>
#include <sstream>

#include "common/trace.hpp"

namespace qre {

namespace {

/// Appends a double's exact bit pattern (hex), so fingerprints distinguish
/// values that would collide after decimal formatting.
void append_bits(std::ostringstream& os, double v) {
  std::uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(v));
  os << std::hex << bits << std::dec << ';';
}

/// Appends a user-controlled string (unit name, formula text)
/// length-prefixed, so embedded delimiter characters cannot make two
/// distinct problems fingerprint identically.
void append_string(std::ostringstream& os, const std::string& s) {
  os << s.size() << ':' << s << ';';
}

/// Canonical fingerprint of one design problem: the required error and
/// options, then every field of the qubit model, QEC scheme, and units
/// that design_tfactory() can observe (numerics bit-exactly, formulas by
/// source text). Computed on every lookup, so it deliberately avoids JSON
/// serialization — the shortest-round-trip double formatting would cost
/// more than the cache hit it keys. Keep the field lists in sync with the
/// structs.
std::string fingerprint(double required_output_error, const QubitParams& qubit,
                        const QecScheme& scheme, const std::vector<DistillationUnit>& units,
                        const TFactoryOptions& options) {
  std::ostringstream os;
  append_bits(os, required_output_error);
  os << options.max_rounds << ';' << options.min_code_distance << ';'
     << options.max_code_distance << ';' << static_cast<int>(options.objective) << ';'
     << (options.exhaustive ? 1 : 0) << ';';
  append_bits(os, options.max_round_failure_probability);

  os << static_cast<int>(qubit.instruction_set) << ';';
  append_bits(os, qubit.one_qubit_measurement_time_ns);
  append_bits(os, qubit.one_qubit_gate_time_ns);
  append_bits(os, qubit.two_qubit_gate_time_ns);
  append_bits(os, qubit.two_qubit_joint_measurement_time_ns);
  append_bits(os, qubit.t_gate_time_ns);
  append_bits(os, qubit.one_qubit_measurement_error_rate);
  append_bits(os, qubit.one_qubit_gate_error_rate);
  append_bits(os, qubit.two_qubit_gate_error_rate);
  append_bits(os, qubit.two_qubit_joint_measurement_error_rate);
  append_bits(os, qubit.t_gate_error_rate);
  append_bits(os, qubit.idle_error_rate);

  append_bits(os, scheme.threshold());
  append_bits(os, scheme.crossing_prefactor());
  append_string(os, scheme.logical_cycle_time_text());
  append_string(os, scheme.physical_qubits_text());

  for (const DistillationUnit& unit : units) {
    append_string(os, unit.name);
    os << unit.num_input_ts << ';' << unit.num_output_ts << ';'
       << (unit.allow_physical ? 1 : 0) << (unit.allow_logical ? 1 : 0) << ';';
    append_string(os, unit.failure_probability.text());
    append_string(os, unit.output_error_rate.text());
    os << unit.physical_qubits_at_physical << ';';
    append_string(os, unit.duration_at_physical_ns.text());
    os << unit.logical_qubits_at_logical << ';' << unit.duration_in_logical_cycles << ';';
  }
  return std::move(os).str();
}

}  // namespace

// A process-level cache is never unbounded (unlike EstimateCache, where
// capacity 0 opts a batch out of eviction), so 0 clamps to the minimum.
FactoryCache::FactoryCache(std::size_t capacity)
    : entries_(capacity == 0 ? 1 : capacity) {}

FactoryCache& FactoryCache::global() {
  static FactoryCache cache;
  static const bool configured = [] {
    const char* env = std::getenv("QRE_NO_FACTORY_CACHE");
    if (env != nullptr && std::strcmp(env, "0") != 0) cache.set_enabled(false);
    return true;
  }();
  (void)configured;
  return cache;
}

std::optional<TFactory> FactoryCache::design(double required_output_error,
                                             const QubitParams& qubit, const QecScheme& scheme,
                                             const std::vector<DistillationUnit>& units,
                                             const TFactoryOptions& options) {
  if (!enabled_.load()) {
    return design_tfactory(required_output_error, qubit, scheme, units, options);
  }
  // The QRE_EXHAUSTIVE_SEARCH override changes which search runs without
  // changing the options fingerprint; both searches return bit-identical
  // factories, so cached entries stay valid across the toggle.
  const std::string key = fingerprint(required_output_error, qubit, scheme, units, options);
  {
    MutexLock lock(mutex_);
    if (const std::optional<TFactory>* found = entries_.find(key)) {
      hits_.fetch_add(1);
      QRE_TRACE_INSTANT("factory.cache.hit");
      return *found;
    }
  }
  misses_.fetch_add(1);
  QRE_TRACE_INSTANT("factory.cache.miss");
  // Design outside the lock: searches take orders of magnitude longer than
  // a map probe, and concurrent misses on the same key just compute the
  // same (deterministic) design twice.
  std::optional<TFactory> designed =
      design_tfactory(required_output_error, qubit, scheme, units, options);
  MutexLock lock(mutex_);
  if (!entries_.contains(key)) {
    evictions_.fetch_add(entries_.insert(key, designed));
  }
  return designed;
}

std::size_t FactoryCache::size() const {
  MutexLock lock(mutex_);
  return entries_.size();
}

void FactoryCache::clear() {
  MutexLock lock(mutex_);
  entries_.clear();
  hits_.store(0);
  misses_.store(0);
  evictions_.store(0);
}

}  // namespace qre
