// Distillation unit specifications (paper Section IV-C5).
//
// A distillation unit consumes noisy T states and produces fewer,
// better T states. A unit is described by its input/output counts, two
// formulas — the failure probability and the output T-state error rate, over
// the variables inputErrorRate, cliffordErrorRate, readoutErrorRate — and
// footprint/duration specifications for the levels it can run at:
//
//  * at the physical level (round 1 only): raw physical qubits and a
//    duration formula over the physical operation times;
//  * at the logical level: a number of logical patches and a duration in
//    logical cycles, both scaled by the code distance chosen for the round.
//
// The default units are the 15-to-1 Reed-Muller preparation unit (physical
// or logical) and the 15-to-1 space-efficient logical unit, with formulas
// from Beverland et al. (arXiv:2211.07629, Appendix C):
//
//    failure     = 15 * inputErrorRate + 356 * cliffordErrorRate
//    outputError = 35 * inputErrorRate^3 + 7.1 * cliffordErrorRate
//
// The footprint constants (31 qubits / 23 measurement times for the RM
// preparation; 20 logical qubits / 13 cycles for the space-efficient unit,
// after Litinski 2019) are reconstructions — see DESIGN.md.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/diagnostics.hpp"
#include "formula/formula.hpp"
#include "json/json.hpp"
#include "profiles/qubit_params.hpp"

namespace qre {

struct DistillationUnit {
  std::string name;
  std::uint64_t num_input_ts = 0;
  std::uint64_t num_output_ts = 0;
  bool allow_physical = false;
  bool allow_logical = false;

  Formula failure_probability = Formula::parse("0");
  Formula output_error_rate = Formula::parse("0");

  /// Physical-level footprint (valid when allow_physical).
  std::uint64_t physical_qubits_at_physical = 0;
  Formula duration_at_physical_ns = Formula::parse("0");

  /// Logical-level footprint (valid when allow_logical).
  std::uint64_t logical_qubits_at_logical = 0;
  std::uint64_t duration_in_logical_cycles = 0;

  /// 15-to-1 Reed-Muller preparation unit, usable physically or logically.
  static DistillationUnit rm_prep_15_to_1();
  /// 15-to-1 space-efficient unit (logical level only).
  static DistillationUnit space_efficient_15_to_1();
  /// The default unit set used when none is specified.
  static std::vector<DistillationUnit> default_units();

  /// JSON customization; see tests/test_tfactory.cpp for the schema.
  /// Unknown keys warn on `diags` when a sink is given, reject otherwise;
  /// `base_path` anchors those warnings (callers that know the unit's array
  /// index pass e.g. "/distillationUnitSpecifications/2").
  static DistillationUnit from_json(const json::Value& v, Diagnostics* diags = nullptr,
                                    std::string_view base_path =
                                        "/distillationUnitSpecifications");
  json::Value to_json() const;

  /// The keys from_json understands (top level and the two nested level
  /// specifications); shared with the schema validator.
  static const std::vector<std::string_view>& json_keys();
  static const std::vector<std::string_view>& physical_spec_keys();
  static const std::vector<std::string_view>& logical_spec_keys();

  void validate() const;
};

/// Evaluates a unit's error formulas for the given input/Clifford/readout
/// error rates. Exposed for tests and ablation benches.
struct DistillationOutcome {
  double failure_probability = 0.0;
  double output_error_rate = 0.0;
};
DistillationOutcome evaluate_unit(const DistillationUnit& unit, double input_error_rate,
                                  double clifford_error_rate, double readout_error_rate);

}  // namespace qre
