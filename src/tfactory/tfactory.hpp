// T factories: multi-round distillation pipelines (paper Section III-D).
//
// A T factory is a sequence of distillation rounds. Round 1 may run directly
// on physical qubits (for units that allow it) or on logical patches at a
// chosen code distance; later rounds run on logical patches with
// non-decreasing distances. Each round runs enough unit copies in parallel —
// inflated by the units' failure probabilities — to feed the next round.
//
// The factory's physical footprint is the maximum round footprint (rounds
// execute sequentially and reuse qubits), its duration is the sum of round
// durations, and its per-invocation output is the final round's output count
// discounted by the final failure probability.
//
// design_tfactory() searches unit choices and per-round code distances for
// the pipeline that reaches a required output T-state error rate, optimizing
// a configurable objective (default: qubit-seconds per produced T state).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "json/json.hpp"
#include "profiles/qubit_params.hpp"
#include "qec/qec_scheme.hpp"
#include "tfactory/distillation_unit.hpp"

namespace qre {

struct DistillationRound {
  std::string unit_name;
  bool physical = false;           // round runs on raw physical qubits
  std::uint64_t code_distance = 0; // 0 for physical rounds
  std::uint64_t num_units = 0;     // parallel unit copies in this round
  double duration_ns = 0.0;
  double failure_probability = 0.0;
  double output_error_rate = 0.0;  // per output T state after this round
  std::uint64_t physical_qubits_per_unit = 0;
  std::uint64_t physical_qubits = 0;
};

struct TFactory {
  std::vector<DistillationRound> rounds;
  std::uint64_t physical_qubits = 0;
  double duration_ns = 0.0;
  double input_t_error_rate = 0.0;
  double output_error_rate = 0.0;
  /// Expected accepted T states per factory invocation.
  double tstates_per_invocation = 0.0;

  /// True when the raw physical T states already meet the requirement and
  /// no distillation runs (zero qubits, zero duration).
  bool no_distillation() const { return rounds.empty(); }

  /// Qubit-seconds consumed per produced T state; the default search
  /// objective.
  double normalized_volume() const;

  json::Value to_json() const;
};

struct TFactoryOptions {
  /// Maximum number of distillation rounds to consider.
  std::uint64_t max_rounds = 3;
  /// Distance search range for logical rounds (odd values).
  std::uint64_t min_code_distance = 1;
  std::uint64_t max_code_distance = 31;
  /// Candidate rounds whose failure probability exceeds this are rejected.
  double max_round_failure_probability = 0.9;

  enum class Objective { kMinVolume, kMinQubits, kMinDuration };
  Objective objective = Objective::kMinVolume;

  /// Force the brute-force pipeline enumeration instead of the pruned
  /// branch-and-bound search. Both return bit-identical factories (the
  /// pruned search only skips subtrees that cannot beat the incumbent);
  /// the exhaustive mode exists so tests can prove that equivalence and
  /// as an escape hatch. The QRE_EXHAUSTIVE_SEARCH environment variable
  /// (any value other than "0") forces it globally.
  bool exhaustive = false;
};

/// Finds the best factory producing T states with error <= required, or
/// std::nullopt when no pipeline within the options reaches it. When the raw
/// physical T-state error already meets the requirement a no-distillation
/// factory is returned.
std::optional<TFactory> design_tfactory(double required_output_error, const QubitParams& qubit,
                                        const QecScheme& scheme,
                                        const std::vector<DistillationUnit>& units,
                                        const TFactoryOptions& options = {});

/// All feasible factories that are Pareto-optimal in (physical qubits,
/// duration). Used by the frontier bench and tests.
std::vector<TFactory> tfactory_pareto_frontier(double required_output_error,
                                               const QubitParams& qubit,
                                               const QecScheme& scheme,
                                               const std::vector<DistillationUnit>& units,
                                               const TFactoryOptions& options = {});

}  // namespace qre
