#include "tfactory/distillation_unit.hpp"

#include "common/error.hpp"

namespace qre {

DistillationUnit DistillationUnit::rm_prep_15_to_1() {
  DistillationUnit u;
  u.name = "15-to-1 RM prep";
  u.num_input_ts = 15;
  u.num_output_ts = 1;
  u.allow_physical = true;
  u.allow_logical = true;
  u.failure_probability = Formula::parse("15 * inputErrorRate + 356 * cliffordErrorRate");
  u.output_error_rate = Formula::parse("35 * inputErrorRate ^ 3 + 7.1 * cliffordErrorRate");
  u.physical_qubits_at_physical = 31;
  u.duration_at_physical_ns = Formula::parse("23 * oneQubitMeasurementTime");
  u.logical_qubits_at_logical = 31;
  u.duration_in_logical_cycles = 11;
  return u;
}

DistillationUnit DistillationUnit::space_efficient_15_to_1() {
  DistillationUnit u;
  u.name = "15-to-1 space efficient";
  u.num_input_ts = 15;
  u.num_output_ts = 1;
  u.allow_physical = false;
  u.allow_logical = true;
  u.failure_probability = Formula::parse("15 * inputErrorRate + 356 * cliffordErrorRate");
  u.output_error_rate = Formula::parse("35 * inputErrorRate ^ 3 + 7.1 * cliffordErrorRate");
  u.logical_qubits_at_logical = 20;
  u.duration_in_logical_cycles = 13;
  return u;
}

std::vector<DistillationUnit> DistillationUnit::default_units() {
  return {rm_prep_15_to_1(), space_efficient_15_to_1()};
}

const std::vector<std::string_view>& DistillationUnit::json_keys() {
  static const std::vector<std::string_view> kKeys = {
      "name",
      "numInputTs",
      "numOutputTs",
      "failureProbabilityFormula",
      "outputErrorRateFormula",
      "physicalQubitSpecification",
      "logicalQubitSpecification",
  };
  return kKeys;
}

const std::vector<std::string_view>& DistillationUnit::physical_spec_keys() {
  static const std::vector<std::string_view> kKeys = {"numUnitQubits", "durationFormula"};
  return kKeys;
}

const std::vector<std::string_view>& DistillationUnit::logical_spec_keys() {
  static const std::vector<std::string_view> kKeys = {"numUnitQubits",
                                                      "durationInLogicalCycles"};
  return kKeys;
}

DistillationUnit DistillationUnit::from_json(const json::Value& v, Diagnostics* diags,
                                             std::string_view base_path) {
  check_known_keys(v, json_keys(), base_path, diags);
  DistillationUnit u;
  u.name = v.at("name").as_string();
  u.num_input_ts = v.at("numInputTs").as_uint();
  u.num_output_ts = v.at("numOutputTs").as_uint();
  u.failure_probability = Formula::parse(v.at("failureProbabilityFormula").as_string());
  u.output_error_rate = Formula::parse(v.at("outputErrorRateFormula").as_string());
  if (const json::Value* phys = v.find("physicalQubitSpecification")) {
    check_known_keys(*phys, physical_spec_keys(),
                     pointer_join(base_path, "physicalQubitSpecification"), diags);
    u.allow_physical = true;
    u.physical_qubits_at_physical = phys->at("numUnitQubits").as_uint();
    u.duration_at_physical_ns = Formula::parse(phys->at("durationFormula").as_string());
  }
  if (const json::Value* log = v.find("logicalQubitSpecification")) {
    check_known_keys(*log, logical_spec_keys(),
                     pointer_join(base_path, "logicalQubitSpecification"), diags);
    u.allow_logical = true;
    u.logical_qubits_at_logical = log->at("numUnitQubits").as_uint();
    u.duration_in_logical_cycles = log->at("durationInLogicalCycles").as_uint();
  }
  u.validate();
  return u;
}

json::Value DistillationUnit::to_json() const {
  json::Object o;
  o.emplace_back("name", name);
  o.emplace_back("numInputTs", num_input_ts);
  o.emplace_back("numOutputTs", num_output_ts);
  o.emplace_back("failureProbabilityFormula", failure_probability.text());
  o.emplace_back("outputErrorRateFormula", output_error_rate.text());
  if (allow_physical) {
    json::Object phys;
    phys.emplace_back("numUnitQubits", physical_qubits_at_physical);
    phys.emplace_back("durationFormula", duration_at_physical_ns.text());
    o.emplace_back("physicalQubitSpecification", json::Value(std::move(phys)));
  }
  if (allow_logical) {
    json::Object log;
    log.emplace_back("numUnitQubits", logical_qubits_at_logical);
    log.emplace_back("durationInLogicalCycles", duration_in_logical_cycles);
    o.emplace_back("logicalQubitSpecification", json::Value(std::move(log)));
  }
  return json::Value(std::move(o));
}

void DistillationUnit::validate() const {
  QRE_REQUIRE(num_input_ts > 0, "distillation unit '" + name + "': numInputTs must be positive");
  QRE_REQUIRE(num_output_ts > 0,
              "distillation unit '" + name + "': numOutputTs must be positive");
  QRE_REQUIRE(num_output_ts < num_input_ts,
              "distillation unit '" + name + "': must output fewer T states than it consumes");
  QRE_REQUIRE(allow_physical || allow_logical,
              "distillation unit '" + name + "': needs at least one level specification");
}

DistillationOutcome evaluate_unit(const DistillationUnit& unit, double input_error_rate,
                                  double clifford_error_rate, double readout_error_rate) {
  Environment env;
  env.set("inputErrorRate", input_error_rate);
  env.set("cliffordErrorRate", clifford_error_rate);
  env.set("readoutErrorRate", readout_error_rate);
  DistillationOutcome out;
  out.failure_probability = unit.failure_probability.evaluate(env);
  out.output_error_rate = unit.output_error_rate.evaluate(env);
  if (out.failure_probability < 0.0) out.failure_probability = 0.0;
  if (out.output_error_rate < 1e-30) out.output_error_rate = 1e-30;
  return out;
}

}  // namespace qre
