// Process-level memoization of T-factory designs.
//
// A factory design depends only on the required output error rate, the
// qubit model, the QEC scheme, the distillation unit set, and the search
// options — and the estimator re-derives identical designs constantly:
// every point of a qubit/runtime frontier shares the base point's factory,
// the maxPhysicalQubits fallback probes re-design it once per probe, and
// sweep grids repeat (qubit, budget) combinations across items. The cache
// keys designs on a fingerprint of all five inputs so each distinct design
// problem is solved once per process.
//
// The cache is bounded (LRU, kDefaultCapacity entries), concurrency-safe,
// and transparent: a hit returns the exact factory a fresh search would
// produce, so estimation results are bit-identical with the cache on or
// off. QRE_NO_FACTORY_CACHE (any value other than "0") disables the global
// instance, as does set_enabled(false) — both exist for benchmarking the
// uncached path and for debugging.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/lru_map.hpp"
#include "common/mutex.hpp"
#include "common/thread_annotations.hpp"
#include "profiles/qubit_params.hpp"
#include "qec/qec_scheme.hpp"
#include "tfactory/distillation_unit.hpp"
#include "tfactory/tfactory.hpp"

namespace qre {

class FactoryCache {
 public:
  static constexpr std::size_t kDefaultCapacity = 512;

  explicit FactoryCache(std::size_t capacity = kDefaultCapacity);

  /// The shared process-wide instance the estimator uses. Honors
  /// QRE_NO_FACTORY_CACHE (checked once, at first use).
  static FactoryCache& global();

  /// design_tfactory() with memoization: returns the cached design when the
  /// same problem fingerprint was solved before, and solves + stores it
  /// otherwise. Infeasible designs (nullopt) are cached too — infeasibility
  /// is as deterministic as success.
  std::optional<TFactory> design(double required_output_error, const QubitParams& qubit,
                                 const QecScheme& scheme,
                                 const std::vector<DistillationUnit>& units,
                                 const TFactoryOptions& options);

  /// The allocation-free variant design() wraps: a cache hit bumps a
  /// shared_ptr refcount instead of copying the factory (the rounds vector
  /// and unit-name strings stay shared), and the fingerprint is built into a
  /// thread-local reusable buffer. nullptr means "cached as infeasible" —
  /// the same answer design() reports as nullopt. The batch kernel's
  /// steady-state path calls this on every item.
  std::shared_ptr<const TFactory> design_shared(double required_output_error,
                                                const QubitParams& qubit,
                                                const QecScheme& scheme,
                                                const std::vector<DistillationUnit>& units,
                                                const TFactoryOptions& options);

  /// Lookups answered from the cache.
  std::uint64_t hits() const { return hits_.load(); }
  /// Lookups that had to run the search.
  std::uint64_t misses() const { return misses_.load(); }
  /// Entries dropped to keep the cache within capacity.
  std::uint64_t evictions() const { return evictions_.load(); }
  std::size_t size() const;
  std::size_t capacity() const { return entries_.capacity(); }

  /// Disabling makes design() always run the search (no stats recorded).
  void set_enabled(bool enabled) { enabled_.store(enabled); }
  bool enabled() const { return enabled_.load(); }

  void clear();

 private:
  std::atomic<bool> enabled_{true};
  mutable Mutex mutex_;
  LruMap<std::shared_ptr<const TFactory>> entries_ QRE_GUARDED_BY(mutex_);
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> evictions_{0};
};

}  // namespace qre
