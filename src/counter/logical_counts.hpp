// Pre-layout logical resource counts (paper Sections III-A and IV-B3).
//
// These are the numbers the first estimation step extracts from a program:
// circuit width and counts of T gates, arbitrary rotations, CCZ/CCiX gates,
// and measurements, plus the rotation depth. They are also the third input
// format of the tool ("known logical estimates", the Q# AccountForEstimates /
// Python LogicalCounts path), so they can be constructed directly or loaded
// from JSON without any program.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "common/diagnostics.hpp"
#include "json/json.hpp"

namespace qre {

struct LogicalCounts {
  /// Number of logical qubits the program uses (live high-water mark).
  std::uint64_t num_qubits = 0;
  /// T and T† gates invoked explicitly.
  std::uint64_t t_count = 0;
  /// Arbitrary-angle rotation gates (Rx/Ry/Rz/R1).
  std::uint64_t rotation_count = 0;
  /// Number of non-Clifford layers containing at least one rotation
  /// (paper Section III-B2).
  std::uint64_t rotation_depth = 0;
  /// CCZ gates (Toffoli up to Cliffords).
  std::uint64_t ccz_count = 0;
  /// CCiX gates (the AND-gadget Toffoli variant, counted separately).
  std::uint64_t ccix_count = 0;
  /// Single-qubit measurements (Z or X basis).
  std::uint64_t measurement_count = 0;
  /// Clifford gates; informational only, not used by the estimate.
  std::uint64_t clifford_count = 0;

  bool has_non_clifford() const {
    return t_count + rotation_count + ccz_count + ccix_count != 0;
  }

  /// Parses {"numQubits": ..., "tCount": ..., "rotationCount": ...,
  /// "rotationDepth": ..., "cczCount": ..., "ccixCount": ...,
  /// "measurementCount": ...}; all fields except numQubits default to 0.
  /// Unknown keys are reported as warnings on `diags` when a sink is given
  /// and rejected (qre::Error) otherwise.
  static LogicalCounts from_json(const json::Value& v, Diagnostics* diags = nullptr);
  json::Value to_json() const;

  /// The keys from_json understands; shared with the schema validator.
  static const std::vector<std::string_view>& json_keys();

  /// Composes subroutines executed one after another on a shared machine —
  /// the AccountForEstimates pattern (paper Section IV-B3): gate and
  /// measurement counts add, rotation depths add, and the width is the
  /// widest subroutine.
  static LogicalCounts sequential(const std::vector<LogicalCounts>& parts);

  /// This subroutine repeated `times` in sequence.
  LogicalCounts repeated(std::uint64_t times) const;

  bool operator==(const LogicalCounts&) const = default;
};

}  // namespace qre
