// The logical resource counter backend (paper Section III-A).
//
// Consumes a program's event stream and accumulates LogicalCounts. This is
// the step the tool performs when it "goes through the code and tracks qubit
// allocation, qubit release, gate application, and measurement events"
// (Section IV-B1).
//
// Rotation depth is computed with an ASAP layering of the non-transparent
// operations: Clifford gates are transparent; T gates, rotations, CCZ/CCiX
// gates, and measurements occupy a layer one past the last layer of any of
// their operands. The rotation depth is the number of distinct layers that
// contain at least one rotation — "the number of non-Clifford layers of
// gates in which each layer contains at least one arbitrary rotation gate"
// (Section III-B2).
//
// Measurements return false deterministically, so classically controlled
// fix-ups (all Clifford in the supported gadgets) are skipped and counts are
// reproducible.
#pragma once

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "circuit/backend.hpp"
#include "counter/logical_counts.hpp"

namespace qre {

class LogicalCounter final : public Backend {
 public:
  LogicalCounter() = default;

  void on_allocate(QubitId q, std::uint64_t live) override;
  void on_release(QubitId q, std::uint64_t live) override;
  void on_gate1(Gate g, QubitId q) override;
  void on_rotation(Gate g, double angle, QubitId q) override;
  void on_gate2(Gate g, QubitId a, QubitId b) override;
  void on_gate3(Gate g, QubitId a, QubitId b, QubitId c) override;
  bool on_measure(Gate basis, QubitId q) override;
  void on_reset(QubitId q) override;
  void on_gate_batch(Gate g, std::uint64_t count) override;
  void on_measure_batch(Gate basis, std::uint64_t count) override;
  bool counting_only() const override { return true; }

  const LogicalCounts& counts() const { return counts_; }

 private:
  /// Advances the layer clock for a counted (non-transparent) operation and
  /// returns the layer it lands in.
  std::uint64_t advance_layer(const QubitId* qubits, int n);
  void count_gate(Gate g, const QubitId* qubits, int n);

  LogicalCounts counts_;
  std::vector<std::uint64_t> layer_of_qubit_;
  std::unordered_set<std::uint64_t> rotation_layers_;
};

}  // namespace qre
