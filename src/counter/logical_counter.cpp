#include "counter/logical_counter.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace qre {

void LogicalCounter::on_allocate(QubitId q, std::uint64_t live) {
  counts_.num_qubits = std::max(counts_.num_qubits, live);
  if (q >= layer_of_qubit_.size()) layer_of_qubit_.resize(q + 1, 0);
}

void LogicalCounter::on_release(QubitId, std::uint64_t) {}

std::uint64_t LogicalCounter::advance_layer(const QubitId* qubits, int n) {
  std::uint64_t layer = 0;
  for (int i = 0; i < n; ++i) {
    QubitId q = qubits[i];
    if (q >= layer_of_qubit_.size()) layer_of_qubit_.resize(q + 1, 0);
    layer = std::max(layer, layer_of_qubit_[q]);
  }
  ++layer;
  for (int i = 0; i < n; ++i) layer_of_qubit_[qubits[i]] = layer;
  return layer;
}

void LogicalCounter::count_gate(Gate g, const QubitId* qubits, int n) {
  if (is_clifford(g)) {
    ++counts_.clifford_count;
    return;
  }
  std::uint64_t layer = advance_layer(qubits, n);
  switch (g) {
    case Gate::kT:
    case Gate::kTdg:
      ++counts_.t_count;
      break;
    case Gate::kRx:
    case Gate::kRy:
    case Gate::kRz:
    case Gate::kR1:
      ++counts_.rotation_count;
      rotation_layers_.insert(layer);
      counts_.rotation_depth = rotation_layers_.size();
      break;
    case Gate::kCcx:  // Toffoli is costed as a CCZ (H-conjugate on the target)
    case Gate::kCcz:
      ++counts_.ccz_count;
      break;
    case Gate::kCcix:
      ++counts_.ccix_count;
      break;
    default:
      QRE_ASSERT(false);
  }
}

void LogicalCounter::on_gate1(Gate g, QubitId q) { count_gate(g, &q, 1); }

void LogicalCounter::on_rotation(Gate g, double, QubitId q) { count_gate(g, &q, 1); }

void LogicalCounter::on_gate2(Gate g, QubitId a, QubitId b) {
  QubitId qs[2] = {a, b};
  count_gate(g, qs, 2);
}

void LogicalCounter::on_gate3(Gate g, QubitId a, QubitId b, QubitId c) {
  QubitId qs[3] = {a, b, c};
  count_gate(g, qs, 3);
}

bool LogicalCounter::on_measure(Gate, QubitId q) {
  ++counts_.measurement_count;
  advance_layer(&q, 1);
  return false;
}

void LogicalCounter::on_reset(QubitId) {}

void LogicalCounter::on_gate_batch(Gate g, std::uint64_t count) {
  if (is_clifford(g)) {
    counts_.clifford_count += count;
    return;
  }
  switch (g) {
    case Gate::kT:
    case Gate::kTdg:
      counts_.t_count += count;
      break;
    case Gate::kCcx:
    case Gate::kCcz:
      counts_.ccz_count += count;
      break;
    case Gate::kCcix:
      counts_.ccix_count += count;
      break;
    default:
      throw_error("batched gate events support only T/CCZ/CCiX/Clifford gates");
  }
}

void LogicalCounter::on_measure_batch(Gate, std::uint64_t count) {
  counts_.measurement_count += count;
}

}  // namespace qre
