#include "counter/logical_counts.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace qre {

const std::vector<std::string_view>& LogicalCounts::json_keys() {
  static const std::vector<std::string_view> kKeys = {
      "numQubits", "tCount",           "rotationCount", "rotationDepth",
      "cczCount",  "ccixCount",        "measurementCount", "cliffordCount",
  };
  return kKeys;
}

LogicalCounts LogicalCounts::from_json(const json::Value& v, Diagnostics* diags) {
  check_known_keys(v, json_keys(), "/logicalCounts", diags);
  LogicalCounts c;
  c.num_qubits = v.at("numQubits").as_uint();
  QRE_REQUIRE(c.num_qubits > 0, "LogicalCounts: numQubits must be positive");
  auto field = [&v](const char* key) -> std::uint64_t {
    const json::Value* f = v.find(key);
    return f != nullptr ? f->as_uint() : 0;
  };
  c.t_count = field("tCount");
  c.rotation_count = field("rotationCount");
  c.rotation_depth = field("rotationDepth");
  c.ccz_count = field("cczCount");
  c.ccix_count = field("ccixCount");
  c.measurement_count = field("measurementCount");
  c.clifford_count = field("cliffordCount");
  QRE_REQUIRE(c.rotation_depth <= c.rotation_count,
              "LogicalCounts: rotationDepth cannot exceed rotationCount");
  QRE_REQUIRE(c.rotation_count == 0 || c.rotation_depth > 0,
              "LogicalCounts: rotationDepth must be positive when rotations are present");
  return c;
}

LogicalCounts LogicalCounts::sequential(const std::vector<LogicalCounts>& parts) {
  QRE_REQUIRE(!parts.empty(), "LogicalCounts::sequential requires at least one part");
  LogicalCounts total;
  for (const LogicalCounts& p : parts) {
    total.num_qubits = std::max(total.num_qubits, p.num_qubits);
    total.t_count += p.t_count;
    total.rotation_count += p.rotation_count;
    total.rotation_depth += p.rotation_depth;
    total.ccz_count += p.ccz_count;
    total.ccix_count += p.ccix_count;
    total.measurement_count += p.measurement_count;
    total.clifford_count += p.clifford_count;
  }
  return total;
}

LogicalCounts LogicalCounts::repeated(std::uint64_t times) const {
  QRE_REQUIRE(times >= 1, "LogicalCounts::repeated requires times >= 1");
  LogicalCounts total = *this;
  total.t_count *= times;
  total.rotation_count *= times;
  total.rotation_depth *= times;
  total.ccz_count *= times;
  total.ccix_count *= times;
  total.measurement_count *= times;
  total.clifford_count *= times;
  return total;
}

json::Value LogicalCounts::to_json() const {
  json::Object o;
  o.emplace_back("numQubits", num_qubits);
  o.emplace_back("tCount", t_count);
  o.emplace_back("rotationCount", rotation_count);
  o.emplace_back("rotationDepth", rotation_depth);
  o.emplace_back("cczCount", ccz_count);
  o.emplace_back("ccixCount", ccix_count);
  o.emplace_back("measurementCount", measurement_count);
  o.emplace_back("cliffordCount", clifford_count);
  return json::Value(std::move(o));
}

}  // namespace qre
