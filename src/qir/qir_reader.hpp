// QIR reader (paper Section IV-B2).
//
// The tool accepts programs as Quantum Intermediate Representation; this
// reader consumes the QIR *base profile* textual form — fully unrolled
// modules whose bodies are sequences of `call @__quantum__qis__*` intrinsic
// invocations with pointer-literal qubit/result operands — and replays them
// onto a Backend. That covers QIR emitted by PyQIR-style generators and by
// this library's own QirEmitter.
//
// Recognized intrinsics: x, y, z, h, s, s__adj, t, t__adj, rx, ry, rz, r1,
// cnot/cx, cz, swap, ccx, ccz, ccix, mz/m/mresetz, mx, reset.
// Lines that are not intrinsic calls (declarations, attributes, labels,
// comments) are ignored, as are `__quantum__rt__` runtime calls.
#pragma once

#include <string>
#include <string_view>

#include "circuit/backend.hpp"

namespace qre::qir {

/// Replays QIR text onto the backend: allocates the module's qubits,
/// replays all intrinsic calls, then releases the qubits. Throws qre::Error
/// on malformed intrinsic calls or unknown __quantum__qis__ intrinsics.
void replay(std::string_view qir_text, Backend& backend);

/// Reads the file and replays it.
void replay_file(const std::string& path, Backend& backend);

}  // namespace qre::qir
