#include "qir/qir_emitter.hpp"

#include <algorithm>
#include <cstdio>
#include <set>
#include <sstream>

#include "common/error.hpp"

namespace qre::qir {

QirEmitter::QirEmitter(std::string entry_name) : entry_name_(std::move(entry_name)) {}

std::string QirEmitter::qubit_arg(QubitId q) {
  num_qubits_ = std::max<std::uint64_t>(num_qubits_, static_cast<std::uint64_t>(q) + 1);
  std::ostringstream os;
  os << "%Qubit* inttoptr (i64 " << q << " to %Qubit*)";
  return os.str();
}

void QirEmitter::call(std::string_view intrinsic, std::string_view args) {
  body_ += "  call void @__quantum__qis__";
  body_ += intrinsic;
  body_ += "(";
  body_ += args;
  body_ += ")\n";
}

void QirEmitter::on_gate1(Gate g, QubitId q) {
  std::string name;
  switch (g) {
    case Gate::kX: name = "x__body"; break;
    case Gate::kY: name = "y__body"; break;
    case Gate::kZ: name = "z__body"; break;
    case Gate::kH: name = "h__body"; break;
    case Gate::kS: name = "s__body"; break;
    case Gate::kSdg: name = "s__adj"; break;
    case Gate::kT: name = "t__body"; break;
    case Gate::kTdg: name = "t__adj"; break;
    default: throw_error("QIR emitter: unsupported single-qubit gate");
  }
  call(name, qubit_arg(q));
}

void QirEmitter::on_rotation(Gate g, double angle, QubitId q) {
  std::string name;
  switch (g) {
    case Gate::kRx: name = "rx__body"; break;
    case Gate::kRy: name = "ry__body"; break;
    case Gate::kRz: name = "rz__body"; break;
    case Gate::kR1: name = "r1__body"; break;
    default: throw_error("QIR emitter: unsupported rotation gate");
  }
  char buf[64];
  std::snprintf(buf, sizeof buf, "double %.17g, ", angle);
  call(name, buf + qubit_arg(q));
}

void QirEmitter::on_gate2(Gate g, QubitId a, QubitId b) {
  std::string name;
  switch (g) {
    case Gate::kCx: name = "cnot__body"; break;
    case Gate::kCz: name = "cz__body"; break;
    case Gate::kSwap: name = "swap__body"; break;
    default: throw_error("QIR emitter: unsupported two-qubit gate");
  }
  call(name, qubit_arg(a) + ", " + qubit_arg(b));
}

void QirEmitter::on_gate3(Gate g, QubitId a, QubitId b, QubitId c) {
  std::string name;
  switch (g) {
    case Gate::kCcx: name = "ccx__body"; break;
    case Gate::kCcz: name = "ccz__body"; break;
    case Gate::kCcix: name = "ccix__body"; break;
    default: throw_error("QIR emitter: unsupported three-qubit gate");
  }
  call(name, qubit_arg(a) + ", " + qubit_arg(b) + ", " + qubit_arg(c));
}

bool QirEmitter::on_measure(Gate basis, QubitId q) {
  std::ostringstream result;
  result << ", %Result* inttoptr (i64 " << num_results_++ << " to %Result*)";
  call(basis == Gate::kMz ? "mz__body" : "mx__body", qubit_arg(q) + result.str());
  return false;
}

void QirEmitter::on_reset(QubitId q) { call("reset__body", qubit_arg(q)); }

std::string QirEmitter::finish() const {
  std::ostringstream os;
  os << "; QIR base-profile module emitted by qre\n";
  os << "%Qubit = type opaque\n%Result = type opaque\n\n";
  os << "define void @" << entry_name_ << "() #0 {\nentry:\n";
  os << body_;
  os << "  ret void\n}\n\n";
  // Declarations for every intrinsic referenced in the body.
  std::set<std::string> intrinsics;
  std::size_t pos = 0;
  static constexpr std::string_view kPrefix = "@__quantum__qis__";
  while ((pos = body_.find(kPrefix, pos)) != std::string::npos) {
    std::size_t name_start = pos + 1;  // include "__quantum..." without '@'
    std::size_t paren = body_.find('(', pos);
    intrinsics.insert(body_.substr(name_start, paren - name_start));
    pos = paren;
  }
  for (const std::string& name : intrinsics) {
    os << "declare void @" << name << "(";
    bool has_angle = name.find("rx") != std::string::npos ||
                     name.find("ry") != std::string::npos ||
                     name.find("rz") != std::string::npos ||
                     name.find("r1") != std::string::npos;
    bool has_result =
        name.find("mz") != std::string::npos || name.find("mx") != std::string::npos;
    if (has_angle) os << "double, ";
    os << "%Qubit*";
    std::string short_name = name;
    if (name.find("cnot") != std::string::npos || name.find("cz__") != std::string::npos ||
        name.find("swap") != std::string::npos) {
      os << ", %Qubit*";
    }
    if (name.find("ccx") != std::string::npos || name.find("ccz") != std::string::npos ||
        name.find("ccix") != std::string::npos) {
      os << ", %Qubit*, %Qubit*";
    }
    if (has_result) os << ", %Result*";
    os << ")\n";
  }
  os << "\nattributes #0 = { \"entry_point\" \"required_num_qubits\"=\"" << num_qubits_
     << "\" \"required_num_results\"=\"" << num_results_ << "\" }\n";
  return os.str();
}

}  // namespace qre::qir
