#include "qir/qir_reader.hpp"

#include <cctype>
#include <fstream>
#include <optional>
#include <sstream>
#include <vector>

#include "common/error.hpp"

namespace qre::qir {

namespace {

struct Call {
  std::string name;                 // intrinsic short name, e.g. "cnot"
  std::vector<QubitId> qubits;      // qubit operands in order
  std::optional<double> angle;      // first double operand if present
};

/// Extracts the next intrinsic call from a line, if any.
std::optional<Call> parse_line(std::string_view line, std::size_t line_no) {
  static constexpr std::string_view kPrefix = "@__quantum__qis__";
  std::size_t at = line.find(kPrefix);
  if (at == std::string_view::npos) return std::nullopt;
  std::size_t name_start = at + kPrefix.size();
  std::size_t paren = line.find('(', name_start);
  QRE_REQUIRE(paren != std::string_view::npos,
              "QIR line " + std::to_string(line_no) + ": intrinsic call without '('");
  std::string name(line.substr(name_start, paren - name_start));
  // Strip the __body suffix; keep __adj distinct (t__adj, s__adj).
  static constexpr std::string_view kBody = "__body";
  if (name.size() > kBody.size() &&
      name.compare(name.size() - kBody.size(), kBody.size(), kBody) == 0) {
    name.resize(name.size() - kBody.size());
  }

  // Find the matching close paren (args may contain nested parens from
  // inttoptr expressions).
  int depth = 1;
  std::size_t pos = paren + 1;
  std::size_t args_end = std::string_view::npos;
  for (; pos < line.size(); ++pos) {
    if (line[pos] == '(') ++depth;
    if (line[pos] == ')') {
      --depth;
      if (depth == 0) {
        args_end = pos;
        break;
      }
    }
  }
  QRE_REQUIRE(args_end != std::string_view::npos,
              "QIR line " + std::to_string(line_no) + ": unterminated argument list");
  std::string_view args = line.substr(paren + 1, args_end - paren - 1);

  Call call;
  call.name = std::move(name);

  // Split on top-level commas.
  depth = 0;
  std::size_t start = 0;
  std::vector<std::string_view> parts;
  for (std::size_t i = 0; i <= args.size(); ++i) {
    if (i == args.size() || (args[i] == ',' && depth == 0)) {
      if (i > start) parts.push_back(args.substr(start, i - start));
      start = i + 1;
    } else if (args[i] == '(') {
      ++depth;
    } else if (args[i] == ')') {
      --depth;
    }
  }

  for (std::string_view part : parts) {
    if (part.find("%Result") != std::string_view::npos) continue;  // result operand
    if (part.find("%Qubit") != std::string_view::npos) {
      std::uint64_t id = 0;
      std::size_t ip = part.find("inttoptr");
      if (ip == std::string_view::npos) {
        // "%Qubit* null" denotes qubit 0.
        QRE_REQUIRE(part.find("null") != std::string_view::npos,
                    "QIR line " + std::to_string(line_no) + ": unsupported qubit operand");
      } else {
        std::size_t i64 = part.find("i64", ip);
        QRE_REQUIRE(i64 != std::string_view::npos,
                    "QIR line " + std::to_string(line_no) + ": malformed inttoptr operand");
        std::size_t p = i64 + 3;
        while (p < part.size() && std::isspace(static_cast<unsigned char>(part[p]))) ++p;
        std::size_t digits_start = p;
        while (p < part.size() && std::isdigit(static_cast<unsigned char>(part[p]))) ++p;
        QRE_REQUIRE(p > digits_start,
                    "QIR line " + std::to_string(line_no) + ": missing qubit index");
        id = std::stoull(std::string(part.substr(digits_start, p - digits_start)));
      }
      call.qubits.push_back(static_cast<QubitId>(id));
      continue;
    }
    std::size_t dbl = part.find("double");
    if (dbl != std::string_view::npos) {
      std::string text(part.substr(dbl + 6));
      try {
        call.angle = std::stod(text);
      } catch (const std::exception&) {
        throw_error("QIR line " + std::to_string(line_no) + ": malformed double operand '" +
                    text + "'");
      }
      continue;
    }
    // Other operand kinds (i64 immediates etc.) are not used by the
    // recognized intrinsics.
  }
  return call;
}

void require_qubits(const Call& c, std::size_t n, std::size_t line_no) {
  QRE_REQUIRE(c.qubits.size() == n, "QIR line " + std::to_string(line_no) + ": intrinsic '" +
                                        c.name + "' expects " + std::to_string(n) +
                                        " qubit operand(s)");
}

}  // namespace

void replay(std::string_view qir_text, Backend& backend) {
  // First pass: collect calls and the maximum qubit id.
  std::vector<std::pair<Call, std::size_t>> calls;
  std::uint64_t max_qubit = 0;
  bool any_qubit = false;
  std::size_t line_no = 0;
  std::size_t pos = 0;
  while (pos <= qir_text.size()) {
    std::size_t eol = qir_text.find('\n', pos);
    if (eol == std::string_view::npos) eol = qir_text.size();
    std::string_view line = qir_text.substr(pos, eol - pos);
    ++line_no;
    pos = eol + 1;
    // Runtime calls (array/result bookkeeping) are transport, not gates, and
    // declarations merely name intrinsics without invoking them.
    if (line.find("@__quantum__rt__") != std::string_view::npos) continue;
    std::size_t first = line.find_first_not_of(" \t");
    if (first != std::string_view::npos && line.substr(first, 8) == "declare ") continue;
    std::optional<Call> call = parse_line(line, line_no);
    if (!call.has_value()) continue;
    for (QubitId q : call->qubits) {
      max_qubit = std::max<std::uint64_t>(max_qubit, q);
      any_qubit = true;
    }
    calls.emplace_back(std::move(*call), line_no);
    if (pos > qir_text.size()) break;
  }

  std::uint64_t num_qubits = any_qubit ? max_qubit + 1 : 0;
  for (std::uint64_t q = 0; q < num_qubits; ++q) {
    backend.on_allocate(static_cast<QubitId>(q), q + 1);
  }

  for (const auto& [c, ln] : calls) {
    const std::string& n = c.name;
    auto q = [&](std::size_t i) { return c.qubits[i]; };
    if (n == "x" || n == "y" || n == "z" || n == "h" || n == "s" || n == "t") {
      require_qubits(c, 1, ln);
      Gate g = n == "x"   ? Gate::kX
               : n == "y" ? Gate::kY
               : n == "z" ? Gate::kZ
               : n == "h" ? Gate::kH
               : n == "s" ? Gate::kS
                          : Gate::kT;
      backend.on_gate1(g, q(0));
    } else if (n == "s__adj") {
      require_qubits(c, 1, ln);
      backend.on_gate1(Gate::kSdg, q(0));
    } else if (n == "t__adj") {
      require_qubits(c, 1, ln);
      backend.on_gate1(Gate::kTdg, q(0));
    } else if (n == "rx" || n == "ry" || n == "rz" || n == "r1") {
      require_qubits(c, 1, ln);
      QRE_REQUIRE(c.angle.has_value(),
                  "QIR line " + std::to_string(ln) + ": rotation without angle");
      Gate g = n == "rx"   ? Gate::kRx
               : n == "ry" ? Gate::kRy
               : n == "rz" ? Gate::kRz
                           : Gate::kR1;
      backend.on_rotation(g, *c.angle, q(0));
    } else if (n == "cnot" || n == "cx") {
      require_qubits(c, 2, ln);
      backend.on_gate2(Gate::kCx, q(0), q(1));
    } else if (n == "cz") {
      require_qubits(c, 2, ln);
      backend.on_gate2(Gate::kCz, q(0), q(1));
    } else if (n == "swap") {
      require_qubits(c, 2, ln);
      backend.on_gate2(Gate::kSwap, q(0), q(1));
    } else if (n == "ccx" || n == "toffoli") {
      require_qubits(c, 3, ln);
      backend.on_gate3(Gate::kCcx, q(0), q(1), q(2));
    } else if (n == "ccz") {
      require_qubits(c, 3, ln);
      backend.on_gate3(Gate::kCcz, q(0), q(1), q(2));
    } else if (n == "ccix") {
      require_qubits(c, 3, ln);
      backend.on_gate3(Gate::kCcix, q(0), q(1), q(2));
    } else if (n == "mz" || n == "m" || n == "measure") {
      require_qubits(c, 1, ln);
      backend.on_measure(Gate::kMz, q(0));
    } else if (n == "mresetz") {
      require_qubits(c, 1, ln);
      backend.on_measure(Gate::kMz, q(0));
      backend.on_reset(q(0));
    } else if (n == "mx") {
      require_qubits(c, 1, ln);
      backend.on_measure(Gate::kMx, q(0));
    } else if (n == "reset") {
      require_qubits(c, 1, ln);
      backend.on_reset(q(0));
    } else {
      throw_error("QIR line " + std::to_string(ln) + ": unknown intrinsic '__quantum__qis__" +
                  n + "'");
    }
  }

  for (std::uint64_t q = num_qubits; q > 0; --q) {
    backend.on_release(static_cast<QubitId>(q - 1), q - 1);
  }
}

void replay_file(const std::string& path, Backend& backend) {
  std::ifstream in(path, std::ios::binary);
  QRE_REQUIRE(in.good(), "cannot open QIR file '" + path + "'");
  std::ostringstream ss;
  ss << in.rdbuf();
  std::string text = ss.str();
  replay(text, backend);
}

}  // namespace qre::qir
