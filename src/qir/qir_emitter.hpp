// QIR emitter: writes a traced program as QIR base-profile text.
//
// Together with the reader this round-trips programs through the
// intermediate representation, mirroring how the tool lowers high-level
// programs to QIR before counting (paper Section IV-B1). Measurements are
// emitted with fresh %Result operands and report outcome `false` to the
// caller (like the counting backend), so classically controlled fix-ups are
// skipped — they are Clifford-only in this library's gadgets and do not
// affect estimates.
#pragma once

#include <cstdint>
#include <string>

#include "circuit/backend.hpp"

namespace qre::qir {

class QirEmitter final : public Backend {
 public:
  /// `entry_name` is the LLVM function name of the entry point.
  explicit QirEmitter(std::string entry_name = "main");

  void on_gate1(Gate g, QubitId q) override;
  void on_rotation(Gate g, double angle, QubitId q) override;
  void on_gate2(Gate g, QubitId a, QubitId b) override;
  void on_gate3(Gate g, QubitId a, QubitId b, QubitId c) override;
  bool on_measure(Gate basis, QubitId q) override;
  void on_reset(QubitId q) override;
  bool counting_only() const override { return true; }

  /// Assembles the complete module text.
  std::string finish() const;

 private:
  void call(std::string_view intrinsic, std::string_view args);
  std::string qubit_arg(QubitId q);

  std::string entry_name_;
  std::string body_;
  std::uint64_t num_qubits_ = 0;
  std::uint64_t num_results_ = 0;
};

}  // namespace qre::qir
