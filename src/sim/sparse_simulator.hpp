// Sparse state-vector simulator backend.
//
// The Azure Quantum Development Kit ships a sparse simulator alongside the
// resource estimator (paper Section IV-A); this is its counterpart here. The
// state is a hash map from basis states to amplitudes, so circuits that stay
// close to computational basis states — arithmetic circuits in particular —
// simulate in time proportional to the number of nonzero amplitudes rather
// than 2^n. Up to 128 simultaneously-live qubits are supported.
//
// The simulator executes the full traced event stream, including
// measurement-based uncomputation with classical feedback, which is how the
// arithmetic library's circuits are verified against classical arithmetic.
//
// Semantics note: CCiX is simulated as the Toffoli. The library only emits
// CCiX inside the Gidney AND gadget, where the relative phase is absorbed by
// the gadget's Clifford frame; measurement statistics are unaffected.
#pragma once

#include <complex>
#include <cstdint>
#include <random>
#include <unordered_map>
#include <vector>

#include "circuit/backend.hpp"
#include "circuit/builder.hpp"

namespace qre {

/// A computational basis state over up to 128 qubits.
struct BasisState {
  std::uint64_t lo = 0;
  std::uint64_t hi = 0;

  friend bool operator==(const BasisState&, const BasisState&) = default;

  BasisState operator^(const BasisState& o) const { return {lo ^ o.lo, hi ^ o.hi}; }
  BasisState operator&(const BasisState& o) const { return {lo & o.lo, hi & o.hi}; }
  BasisState operator|(const BasisState& o) const { return {lo | o.lo, hi | o.hi}; }
  bool none() const { return lo == 0 && hi == 0; }

  static BasisState bit(int index) {
    return index < 64 ? BasisState{std::uint64_t{1} << index, 0}
                      : BasisState{0, std::uint64_t{1} << (index - 64)};
  }
  bool covers(const BasisState& mask) const { return ((*this) & mask) == mask; }
  bool any(const BasisState& mask) const { return !((*this) & mask).none(); }
};

struct BasisStateHash {
  std::size_t operator()(const BasisState& b) const {
    // splitmix-style combine.
    std::uint64_t x = b.lo * 0x9E3779B97F4A7C15ull;
    x ^= (x >> 32);
    x += b.hi * 0xBF58476D1CE4E5B9ull;
    x ^= (x >> 29);
    return static_cast<std::size_t>(x);
  }
};

class SparseSimulator final : public Backend {
 public:
  explicit SparseSimulator(std::uint64_t seed = 0x243F6A8885A308D3ull);

  void on_allocate(QubitId q, std::uint64_t live) override;
  void on_release(QubitId q, std::uint64_t live) override;
  void on_gate1(Gate g, QubitId q) override;
  void on_rotation(Gate g, double angle, QubitId q) override;
  void on_gate2(Gate g, QubitId a, QubitId b) override;
  void on_gate3(Gate g, QubitId a, QubitId b, QubitId c) override;
  bool on_measure(Gate basis, QubitId q) override;
  void on_reset(QubitId q) override;

  // --- Test/inspection helpers -------------------------------------------
  /// Number of basis states with nonzero amplitude.
  std::size_t num_states() const { return state_.size(); }

  /// Probability that measuring `q` yields 1 (no collapse).
  double probability_one(QubitId q) const;

  /// Reads a register whose bits are classical (identical across all basis
  /// states); throws qre::Error if any bit is in superposition. Bit 0 of the
  /// result is reg[0]. Registers up to 64 bits.
  std::uint64_t peek_classical(const Register& reg) const;

  /// L2 norm of the state (should remain 1 within numerical tolerance).
  double norm() const;

 private:
  using Amp = std::complex<double>;
  using StateMap = std::unordered_map<BasisState, Amp, BasisStateHash>;

  int bit_of(QubitId q) const;
  BasisState mask_of(QubitId q) const { return BasisState::bit(bit_of(q)); }

  /// Applies a general single-qubit unitary {{m00, m01}, {m10, m11}}.
  void apply_1q(QubitId q, Amp m00, Amp m01, Amp m10, Amp m11);
  /// Multiplies amplitudes of states where `mask` bits are all set by phase.
  void apply_phase(const BasisState& mask, Amp phase);
  /// Flips `flip_mask` bits on states where `ctrl_mask` bits are all set.
  void apply_controlled_flip(const BasisState& ctrl_mask, const BasisState& flip_mask);
  void prune();
  bool project(QubitId q);  // Z measurement with collapse

  StateMap state_;
  std::vector<int> bit_map_;  // qubit id -> bit index, -1 when unmapped
  std::vector<int> free_bits_;
  int next_bit_ = 0;
  std::mt19937_64 rng_;
};

}  // namespace qre
