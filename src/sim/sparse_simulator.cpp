#include "sim/sparse_simulator.hpp"

#include <cmath>

#include "common/error.hpp"

namespace qre {

namespace {
constexpr double kPruneEps = 1e-14;  // squared-amplitude cutoff
constexpr double kPi = 3.14159265358979323846;
}  // namespace

SparseSimulator::SparseSimulator(std::uint64_t seed) : rng_(seed) {
  state_.emplace(BasisState{}, Amp(1.0, 0.0));
}

int SparseSimulator::bit_of(QubitId q) const {
  QRE_REQUIRE(q < bit_map_.size() && bit_map_[q] >= 0,
              "simulator: operation on an unallocated qubit");
  return bit_map_[q];
}

void SparseSimulator::on_allocate(QubitId q, std::uint64_t) {
  if (q >= bit_map_.size()) bit_map_.resize(q + 1, -1);
  QRE_REQUIRE(bit_map_[q] < 0, "simulator: qubit allocated twice");
  int bit;
  if (!free_bits_.empty()) {
    bit = free_bits_.back();
    free_bits_.pop_back();
  } else {
    QRE_REQUIRE(next_bit_ < 128, "simulator: more than 128 simultaneously live qubits");
    bit = next_bit_++;
  }
  bit_map_[q] = bit;
}

void SparseSimulator::on_release(QubitId q, std::uint64_t) {
  int bit = bit_of(q);
  BasisState mask = BasisState::bit(bit);
  for (const auto& [k, a] : state_) {
    if (k.any(mask) && std::norm(a) > kPruneEps) {
      throw_error("simulator: qubit released while not in |0> (uncomputation bug)");
    }
  }
  bit_map_[q] = -1;
  free_bits_.push_back(bit);
}

void SparseSimulator::prune() {
  for (auto it = state_.begin(); it != state_.end();) {
    if (std::norm(it->second) < kPruneEps) {
      it = state_.erase(it);
    } else {
      ++it;
    }
  }
}

void SparseSimulator::apply_1q(QubitId q, Amp m00, Amp m01, Amp m10, Amp m11) {
  BasisState mask = mask_of(q);
  StateMap next;
  next.reserve(state_.size() * 2);
  for (const auto& [k, a] : state_) {
    if (!k.any(mask)) {
      if (std::norm(m00) > 0) next[k] += m00 * a;
      if (std::norm(m10) > 0) next[k ^ mask] += m10 * a;
    } else {
      if (std::norm(m01) > 0) next[k ^ mask] += m01 * a;
      if (std::norm(m11) > 0) next[k] += m11 * a;
    }
  }
  state_ = std::move(next);
  prune();
}

void SparseSimulator::apply_phase(const BasisState& mask, Amp phase) {
  for (auto& [k, a] : state_) {
    if (k.covers(mask)) a *= phase;
  }
}

void SparseSimulator::apply_controlled_flip(const BasisState& ctrl_mask,
                                            const BasisState& flip_mask) {
  StateMap next;
  next.reserve(state_.size());
  for (const auto& [k, a] : state_) {
    if (k.covers(ctrl_mask)) {
      next[k ^ flip_mask] += a;
    } else {
      next[k] += a;
    }
  }
  state_ = std::move(next);
}

void SparseSimulator::on_gate1(Gate g, QubitId q) {
  const double inv_sqrt2 = 1.0 / std::sqrt(2.0);
  BasisState mask = mask_of(q);
  switch (g) {
    case Gate::kX:
      apply_controlled_flip(BasisState{}, mask);
      break;
    case Gate::kY:
      apply_1q(q, 0, Amp(0, -1), Amp(0, 1), 0);
      break;
    case Gate::kZ:
      apply_phase(mask, Amp(-1, 0));
      break;
    case Gate::kH:
      apply_1q(q, inv_sqrt2, inv_sqrt2, inv_sqrt2, -inv_sqrt2);
      break;
    case Gate::kS:
      apply_phase(mask, Amp(0, 1));
      break;
    case Gate::kSdg:
      apply_phase(mask, Amp(0, -1));
      break;
    case Gate::kT:
      apply_phase(mask, std::polar(1.0, kPi / 4));
      break;
    case Gate::kTdg:
      apply_phase(mask, std::polar(1.0, -kPi / 4));
      break;
    default:
      throw_error("simulator: unsupported single-qubit gate");
  }
}

void SparseSimulator::on_rotation(Gate g, double angle, QubitId q) {
  double half = angle / 2.0;
  switch (g) {
    case Gate::kRz:
      apply_1q(q, std::polar(1.0, -half), 0, 0, std::polar(1.0, half));
      break;
    case Gate::kR1:
      apply_phase(mask_of(q), std::polar(1.0, angle));
      break;
    case Gate::kRx:
      apply_1q(q, std::cos(half), Amp(0, -std::sin(half)), Amp(0, -std::sin(half)),
               std::cos(half));
      break;
    case Gate::kRy:
      apply_1q(q, std::cos(half), -std::sin(half), std::sin(half), std::cos(half));
      break;
    default:
      throw_error("simulator: unsupported rotation gate");
  }
}

void SparseSimulator::on_gate2(Gate g, QubitId a, QubitId b) {
  switch (g) {
    case Gate::kCx:
      apply_controlled_flip(mask_of(a), mask_of(b));
      break;
    case Gate::kCz:
      apply_phase(mask_of(a) | mask_of(b), Amp(-1, 0));
      break;
    case Gate::kSwap: {
      BasisState ma = mask_of(a);
      BasisState mb = mask_of(b);
      StateMap next;
      next.reserve(state_.size());
      for (const auto& [k, amp] : state_) {
        bool va = k.any(ma);
        bool vb = k.any(mb);
        BasisState key = k;
        if (va != vb) key = key ^ (ma | mb);
        next[key] += amp;
      }
      state_ = std::move(next);
      break;
    }
    default:
      throw_error("simulator: unsupported two-qubit gate");
  }
}

void SparseSimulator::on_gate3(Gate g, QubitId a, QubitId b, QubitId c) {
  switch (g) {
    case Gate::kCcx:
    case Gate::kCcix:  // Toffoli semantics; see header note
      apply_controlled_flip(mask_of(a) | mask_of(b), mask_of(c));
      break;
    case Gate::kCcz:
      apply_phase(mask_of(a) | mask_of(b) | mask_of(c), Amp(-1, 0));
      break;
    default:
      throw_error("simulator: unsupported three-qubit gate");
  }
}

bool SparseSimulator::project(QubitId q) {
  BasisState mask = mask_of(q);
  double p1 = 0.0;
  for (const auto& [k, a] : state_) {
    if (k.any(mask)) p1 += std::norm(a);
  }
  std::uniform_real_distribution<double> uniform(0.0, 1.0);
  bool outcome = uniform(rng_) < p1;
  double keep_prob = outcome ? p1 : 1.0 - p1;
  QRE_REQUIRE(keep_prob > 0.0, "simulator: measurement of an impossible outcome");
  double scale = 1.0 / std::sqrt(keep_prob);
  for (auto it = state_.begin(); it != state_.end();) {
    bool bit = it->first.any(mask);
    if (bit != outcome) {
      it = state_.erase(it);
    } else {
      it->second *= scale;
      ++it;
    }
  }
  return outcome;
}

bool SparseSimulator::on_measure(Gate basis, QubitId q) {
  if (basis == Gate::kMz) return project(q);
  QRE_REQUIRE(basis == Gate::kMx, "simulator: unsupported measurement basis");
  on_gate1(Gate::kH, q);
  bool outcome = project(q);
  on_gate1(Gate::kH, q);  // leave the qubit in the X eigenstate |+>/|->
  return outcome;
}

void SparseSimulator::on_reset(QubitId q) {
  if (project(q)) apply_controlled_flip(BasisState{}, mask_of(q));
}

double SparseSimulator::probability_one(QubitId q) const {
  BasisState mask = BasisState::bit(bit_of(q));
  double p1 = 0.0;
  for (const auto& [k, a] : state_) {
    if (k.any(mask)) p1 += std::norm(a);
  }
  return p1;
}

std::uint64_t SparseSimulator::peek_classical(const Register& reg) const {
  QRE_REQUIRE(reg.size() <= 64, "peek_classical: register wider than 64 bits");
  std::uint64_t value = 0;
  for (std::size_t i = 0; i < reg.size(); ++i) {
    double p1 = probability_one(reg[i]);
    if (p1 > 1.0 - 1e-9) {
      value |= std::uint64_t{1} << i;
    } else if (p1 > 1e-9) {
      throw_error("peek_classical: register bit is in superposition");
    }
  }
  return value;
}

double SparseSimulator::norm() const {
  double n = 0.0;
  for (const auto& [k, a] : state_) n += std::norm(a);
  return std::sqrt(n);
}

}  // namespace qre
