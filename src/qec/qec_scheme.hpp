// Quantum error correction schemes (paper Sections III-C and IV-C2).
//
// A QEC scheme is described by two numeric parameters — the error-correction
// threshold p* and the crossing pre-factor a — and two formula parameters:
// the logical cycle time and the number of physical qubits per logical
// qubit, both functions of the code distance and the physical operation
// times. The logical error rate per logical qubit per logical cycle at code
// distance d is modelled as
//
//     P(d) = a * (p / p*) ^ ((d + 1) / 2)
//
// where p is the representative physical (Clifford) error rate. Given a
// target logical error rate, the scheme computes the smallest odd code
// distance d with P(d) <= target.
//
// Defaults match the tool's presets: the surface code for both instruction
// sets and the floquet (Hastings-Haah) code for Majorana hardware.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/diagnostics.hpp"
#include "formula/formula.hpp"
#include "json/json.hpp"
#include "profiles/qubit_params.hpp"

namespace qre {

/// A quantum error correction scheme with formula-driven overheads.
class QecScheme {
 public:
  /// Gate-based surface code: p* = 0.01, a = 0.03,
  /// cycle = (4*t_2q + 2*t_meas)*d, qubits = 2*d^2.
  static QecScheme surface_code_gate_based();

  /// Majorana surface code: p* = 0.0015, a = 0.08,
  /// cycle = 20*t_meas*d, qubits = 2*d^2.
  static QecScheme surface_code_majorana();

  /// Floquet / Hastings-Haah code (Majorana hardware): p* = 0.01, a = 0.07,
  /// cycle = 3*t_meas*d, qubits = 4*d^2 + 8*(d-1).
  static QecScheme floquet_code();

  /// Default scheme for an instruction set: surface code for gate-based,
  /// floquet code for Majorana (as used in the paper's Figures 3 and 4).
  static QecScheme default_for(InstructionSet set);

  /// Lookup by name: "surface_code" (instruction-set dependent) or
  /// "floquet_code" (Majorana only; throws for gate-based).
  static QecScheme from_name(std::string_view name, InstructionSet set);

  /// Customization from JSON: an optional "name" preset plus any of
  /// "errorCorrectionThreshold", "crossingPrefactor", "logicalCycleTime",
  /// "physicalQubitsPerLogicalQubit", "maxCodeDistance" overrides. Unknown
  /// keys warn on `diags` when a sink is given and are rejected otherwise.
  static QecScheme from_json(const json::Value& v, InstructionSet set,
                             Diagnostics* diags = nullptr);

  /// Applies the JSON override keys (everything but "name") onto `base` and
  /// range-checks the result. Used by from_json after preset resolution and
  /// by the API registry after scheme lookup.
  static QecScheme customize(QecScheme base, const json::Value& v);

  /// A copy of this scheme under a different name (profile-pack loading).
  QecScheme with_name(std::string name) const;

  json::Value to_json() const;

  /// The keys from_json understands; shared with the schema validator.
  static const std::vector<std::string_view>& json_keys();

  const std::string& name() const { return name_; }
  double threshold() const { return threshold_; }
  double crossing_prefactor() const { return crossing_prefactor_; }
  std::uint64_t max_code_distance() const { return max_code_distance_; }
  /// Source texts of the two overhead formulas (cache fingerprinting).
  const std::string& logical_cycle_time_text() const { return logical_cycle_time_.text(); }
  const std::string& physical_qubits_text() const {
    return physical_qubits_per_logical_qubit_.text();
  }

  /// P(d) for the given physical error rate; requires p < p*.
  double logical_error_rate(double physical_error_rate, std::uint64_t code_distance) const;

  /// Smallest odd distance d with P(d) <= required; throws qre::Error when
  /// the physical error rate is at/above threshold or when the distance
  /// would exceed max_code_distance().
  std::uint64_t code_distance_for(double physical_error_rate,
                                  double required_logical_error_rate) const;

  /// Logical cycle duration in nanoseconds at the given distance.
  /// Memoized per (qubit operation times, distance): the formulas are
  /// invariant, and the estimator's search loops re-ask for the same few
  /// distances thousands of times.
  double logical_cycle_time_ns(const QubitParams& qubit, std::uint64_t code_distance) const;

  /// Physical qubits making up one logical qubit at the given distance.
  /// Memoized per distance (the formula sees only the code distance).
  std::uint64_t physical_qubits_per_logical_qubit(std::uint64_t code_distance) const;

 private:
  QecScheme(std::string name, double threshold, double prefactor, Formula cycle_time,
            Formula physical_qubits);

  std::string name_;
  double threshold_;
  double crossing_prefactor_;
  Formula logical_cycle_time_;
  Formula physical_qubits_per_logical_qubit_;
  std::uint64_t max_code_distance_ = 51;

  /// Formula-evaluation memo, shared by copies of this scheme (copies keep
  /// the same formulas; customize() re-seats it before changing any).
  /// Concurrency-safe: results are plain doubles guarded by a mutex.
  struct EvalCache;
  std::shared_ptr<EvalCache> eval_cache_;
};

/// One logical qubit patch: the QEC parameters the estimator reports
/// (paper Section IV-D3).
struct LogicalQubit {
  std::uint64_t code_distance = 0;
  std::uint64_t physical_qubits = 0;
  double cycle_time_ns = 0.0;
  /// Error rate per logical qubit per logical cycle.
  double logical_error_rate = 0.0;

  /// Logical clock frequency in Hz (inverse cycle time).
  double clock_frequency_hz() const { return 1e9 / cycle_time_ns; }

  static LogicalQubit create(const QubitParams& qubit, const QecScheme& scheme,
                             std::uint64_t code_distance);

  json::Value to_json() const;
};

/// Binds the formula variables (operation times and code distance) for a
/// qubit model; exposed for custom formulas in tests and examples.
Environment qec_formula_environment(const QubitParams& qubit, std::uint64_t code_distance);

}  // namespace qre
