#include "qec/qec_scheme.hpp"

#include <cmath>
#include <sstream>
#include <utility>

#include "common/error.hpp"
#include "common/math.hpp"
#include "common/mutex.hpp"
#include "common/thread_annotations.hpp"

namespace qre {

/// Small bounded memo for the two formula-driven overheads. Keys compare
/// the exact inputs the formulas can observe, so a hit returns the exact
/// double a fresh evaluation would produce.
struct QecScheme::EvalCache {
  static constexpr std::size_t kMaxEntries = 256;

  struct CycleKey {
    std::uint64_t distance;
    int instruction_set;
    double one_qubit_measurement_time_ns;
    double one_qubit_gate_time_ns;
    double two_qubit_gate_time_ns;
    double two_qubit_joint_measurement_time_ns;
    double t_gate_time_ns;
    bool operator==(const CycleKey&) const = default;
  };

  Mutex mutex;
  std::vector<std::pair<CycleKey, double>> cycle_times QRE_GUARDED_BY(mutex);
  std::vector<std::pair<std::uint64_t, std::uint64_t>> patch_qubits QRE_GUARDED_BY(mutex);
};

QecScheme::QecScheme(std::string name, double threshold, double prefactor, Formula cycle_time,
                     Formula physical_qubits)
    : name_(std::move(name)),
      threshold_(threshold),
      crossing_prefactor_(prefactor),
      logical_cycle_time_(std::move(cycle_time)),
      physical_qubits_per_logical_qubit_(std::move(physical_qubits)),
      eval_cache_(std::make_shared<EvalCache>()) {}

QecScheme QecScheme::surface_code_gate_based() {
  return QecScheme(
      "surface_code", 0.01, 0.03,
      Formula::parse("(4 * twoQubitGateTime + 2 * oneQubitMeasurementTime) * codeDistance"),
      Formula::parse("2 * codeDistance * codeDistance"));
}

QecScheme QecScheme::surface_code_majorana() {
  return QecScheme("surface_code", 0.0015, 0.08,
                   Formula::parse("20 * oneQubitMeasurementTime * codeDistance"),
                   Formula::parse("2 * codeDistance * codeDistance"));
}

QecScheme QecScheme::floquet_code() {
  return QecScheme("floquet_code", 0.01, 0.07,
                   Formula::parse("3 * oneQubitMeasurementTime * codeDistance"),
                   Formula::parse("4 * codeDistance * codeDistance + 8 * (codeDistance - 1)"));
}

QecScheme QecScheme::default_for(InstructionSet set) {
  return set == InstructionSet::kGateBased ? surface_code_gate_based() : floquet_code();
}

QecScheme QecScheme::from_name(std::string_view name, InstructionSet set) {
  if (name == "surface_code") {
    return set == InstructionSet::kGateBased ? surface_code_gate_based()
                                             : surface_code_majorana();
  }
  if (name == "floquet_code") {
    QRE_REQUIRE(set == InstructionSet::kMajorana,
                "the floquet_code QEC scheme requires Majorana hardware");
    return floquet_code();
  }
  throw_error("unknown QEC scheme '" + std::string(name) +
              "'; known schemes: surface_code, floquet_code");
}

const std::vector<std::string_view>& QecScheme::json_keys() {
  static const std::vector<std::string_view> kKeys = {
      "name",
      "errorCorrectionThreshold",
      "crossingPrefactor",
      "logicalCycleTime",
      "physicalQubitsPerLogicalQubit",
      "maxCodeDistance",
  };
  return kKeys;
}

QecScheme QecScheme::from_json(const json::Value& v, InstructionSet set, Diagnostics* diags) {
  check_known_keys(v, json_keys(), "/qecScheme", diags);
  QecScheme scheme = default_for(set);
  if (const json::Value* name = v.find("name")) {
    scheme = from_name(name->as_string(), set);
  }
  return customize(std::move(scheme), v);
}

QecScheme QecScheme::customize(QecScheme base, const json::Value& v) {
  if (const json::Value* t = v.find("errorCorrectionThreshold")) {
    base.threshold_ = t->as_double();
  }
  if (const json::Value* a = v.find("crossingPrefactor")) {
    base.crossing_prefactor_ = a->as_double();
  }
  if (const json::Value* f = v.find("logicalCycleTime")) {
    base.logical_cycle_time_ = Formula::parse(f->as_string());
  }
  if (const json::Value* f = v.find("physicalQubitsPerLogicalQubit")) {
    base.physical_qubits_per_logical_qubit_ = Formula::parse(f->as_string());
  }
  if (const json::Value* m = v.find("maxCodeDistance")) {
    base.max_code_distance_ = m->as_uint();
  }
  QRE_REQUIRE(base.threshold_ > 0.0 && base.threshold_ < 1.0,
              "QEC errorCorrectionThreshold must be in (0, 1)");
  QRE_REQUIRE(base.crossing_prefactor_ > 0.0, "QEC crossingPrefactor must be positive");
  // The copy shares the source scheme's memo; the formulas may just have
  // changed, so give the customized scheme a cache of its own.
  base.eval_cache_ = std::make_shared<EvalCache>();
  return base;
}

QecScheme QecScheme::with_name(std::string name) const {
  QecScheme copy = *this;
  copy.name_ = std::move(name);
  return copy;
}

json::Value QecScheme::to_json() const {
  json::Object o;
  o.emplace_back("name", name_);
  o.emplace_back("errorCorrectionThreshold", threshold_);
  o.emplace_back("crossingPrefactor", crossing_prefactor_);
  o.emplace_back("logicalCycleTime", logical_cycle_time_.text());
  o.emplace_back("physicalQubitsPerLogicalQubit", physical_qubits_per_logical_qubit_.text());
  o.emplace_back("maxCodeDistance", max_code_distance_);
  return json::Value(std::move(o));
}

double QecScheme::logical_error_rate(double physical_error_rate,
                                     std::uint64_t code_distance) const {
  QRE_REQUIRE(physical_error_rate > 0.0, "physical error rate must be positive");
  double ratio = physical_error_rate / threshold_;
  double exponent = static_cast<double>(code_distance + 1) / 2.0;
  return crossing_prefactor_ * std::pow(ratio, exponent);
}

std::uint64_t QecScheme::code_distance_for(double physical_error_rate,
                                           double required_logical_error_rate) const {
  QRE_REQUIRE(required_logical_error_rate > 0.0, "required logical error rate must be positive");
  if (physical_error_rate >= threshold_) {
    std::ostringstream os;
    os << "QEC scheme '" << name_ << "': physical error rate " << physical_error_rate
       << " is not below the threshold " << threshold_
       << "; error correction cannot reach the target logical error rate";
    throw_error(os.str());
  }
  for (std::uint64_t d = 1; d <= max_code_distance_; d += 2) {
    if (logical_error_rate(physical_error_rate, d) <= required_logical_error_rate) return d;
  }
  std::ostringstream os;
  os << "QEC scheme '" << name_ << "': required logical error rate "
     << required_logical_error_rate << " needs a code distance above the maximum "
     << max_code_distance_;
  throw_error(os.str());
}

Environment qec_formula_environment(const QubitParams& qubit, std::uint64_t code_distance) {
  Environment env;
  env.set("codeDistance", static_cast<double>(code_distance));
  env.set("oneQubitMeasurementTime", qubit.one_qubit_measurement_time_ns);
  env.set("tGateTime", qubit.t_gate_time_ns);
  if (qubit.instruction_set == InstructionSet::kGateBased) {
    env.set("oneQubitGateTime", qubit.one_qubit_gate_time_ns);
    env.set("twoQubitGateTime", qubit.two_qubit_gate_time_ns);
  } else {
    env.set("twoQubitJointMeasurementTime", qubit.two_qubit_joint_measurement_time_ns);
  }
  return env;
}

double QecScheme::logical_cycle_time_ns(const QubitParams& qubit,
                                        std::uint64_t code_distance) const {
  const EvalCache::CycleKey key{code_distance,
                                static_cast<int>(qubit.instruction_set),
                                qubit.one_qubit_measurement_time_ns,
                                qubit.one_qubit_gate_time_ns,
                                qubit.two_qubit_gate_time_ns,
                                qubit.two_qubit_joint_measurement_time_ns,
                                qubit.t_gate_time_ns};
  {
    MutexLock lock(eval_cache_->mutex);
    for (const auto& [k, v] : eval_cache_->cycle_times) {
      if (k == key) return v;
    }
  }
  Environment env = qec_formula_environment(qubit, code_distance);
  double t = logical_cycle_time_.evaluate(env);
  QRE_REQUIRE(t > 0.0, "QEC scheme '" + name_ + "': logical cycle time must be positive");
  MutexLock lock(eval_cache_->mutex);
  if (eval_cache_->cycle_times.size() < EvalCache::kMaxEntries) {
    eval_cache_->cycle_times.emplace_back(key, t);
  }
  return t;
}

std::uint64_t QecScheme::physical_qubits_per_logical_qubit(std::uint64_t code_distance) const {
  {
    MutexLock lock(eval_cache_->mutex);
    for (const auto& [d, q] : eval_cache_->patch_qubits) {
      if (d == code_distance) return q;
    }
  }
  Environment env;
  env.set("codeDistance", static_cast<double>(code_distance));
  double q = physical_qubits_per_logical_qubit_.evaluate(env);
  QRE_REQUIRE(q >= 1.0,
              "QEC scheme '" + name_ + "': physical qubits per logical qubit must be >= 1");
  std::uint64_t rounded = ceil_to_u64(q);
  MutexLock lock(eval_cache_->mutex);
  if (eval_cache_->patch_qubits.size() < EvalCache::kMaxEntries) {
    eval_cache_->patch_qubits.emplace_back(code_distance, rounded);
  }
  return rounded;
}

LogicalQubit LogicalQubit::create(const QubitParams& qubit, const QecScheme& scheme,
                                  std::uint64_t code_distance) {
  LogicalQubit lq;
  lq.code_distance = code_distance;
  lq.physical_qubits = scheme.physical_qubits_per_logical_qubit(code_distance);
  lq.cycle_time_ns = scheme.logical_cycle_time_ns(qubit, code_distance);
  lq.logical_error_rate = scheme.logical_error_rate(qubit.clifford_error_rate(), code_distance);
  return lq;
}

json::Value LogicalQubit::to_json() const {
  json::Object o;
  o.emplace_back("codeDistance", code_distance);
  o.emplace_back("physicalQubits", physical_qubits);
  o.emplace_back("logicalCycleTime", cycle_time_ns);
  o.emplace_back("logicalErrorRate", logical_error_rate);
  o.emplace_back("logicalClockFrequency", clock_frequency_hz());
  return json::Value(std::move(o));
}

}  // namespace qre
